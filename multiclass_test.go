package graphssl

import (
	"errors"
	"testing"

	"repro/internal/randx"
)

// threeBlobs builds three separated clusters; the first nLabeled points
// (interleaved across clusters) are labeled with class ids 0..2.
func threeBlobs(seed int64, perCluster, nLabeled int) (x [][]float64, labels []int, truth []int) {
	rng := randx.New(seed)
	centers := [][2]float64{{-4, 0}, {4, 0}, {0, 5}}
	for i := 0; i < perCluster; i++ {
		for c, ctr := range centers {
			x = append(x, []float64{ctr[0] + rng.Norm()*0.4, ctr[1] + rng.Norm()*0.4})
			truth = append(truth, c)
		}
	}
	return x, truth[:nLabeled], truth
}

func TestFitMulticlassSeparable(t *testing.T) {
	x, labels, truth := threeBlobs(31, 20, 9)
	res, err := FitMulticlass(x, labels, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Classes) != 3 {
		t.Fatalf("classes = %v", res.Classes)
	}
	correct := 0
	for i, idx := range res.Unlabeled {
		if res.Predicted[i] == truth[idx] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(res.Unlabeled)); acc < 0.95 {
		t.Fatalf("multiclass accuracy %v", acc)
	}
	if r, c := res.Scores.Dims(); r != len(res.Unlabeled) || c != 3 {
		t.Fatalf("scores dims (%d,%d)", r, c)
	}
}

func TestFitMulticlassWithCMNAndSoft(t *testing.T) {
	x, labels, truth := threeBlobs(33, 15, 9)
	res, err := FitMulticlass(x, labels, nil, true, WithLambda(0.01))
	if err != nil {
		t.Fatal(err)
	}
	if res.Lambda != 0.01 {
		t.Fatal("lambda not recorded")
	}
	correct := 0
	for i, idx := range res.Unlabeled {
		if res.Predicted[i] == truth[idx] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(res.Unlabeled)); acc < 0.9 {
		t.Fatalf("CMN multiclass accuracy %v", acc)
	}
}

func TestFitMulticlassValidation(t *testing.T) {
	x, labels, _ := threeBlobs(35, 10, 6)
	if _, err := FitMulticlass(nil, labels, nil, false); !errors.Is(err, ErrParam) {
		t.Fatal("empty x must error")
	}
	if _, err := FitMulticlass(x, labels, nil, false, WithDistributed(2)); !errors.Is(err, ErrParam) {
		t.Fatal("distributed must error")
	}
	single := make([]int, len(labels)) // one class only
	if _, err := FitMulticlass(x, single, nil, false); !errors.Is(err, ErrParam) {
		t.Fatal("single class must error")
	}
}

func TestDiagnoseFacade(t *testing.T) {
	x, y := twoClusters(37, 20, 8)
	d, err := Diagnose(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.MaxUnlabeledMassRatio <= 0 || d.MaxUnlabeledMassRatio >= 1 {
		t.Fatalf("mass ratio %v implausible", d.MaxUnlabeledMassRatio)
	}
	if d.MaxHardNWGap < 0 {
		t.Fatal("negative gap")
	}
}

func TestDiagnoseFacadeErrors(t *testing.T) {
	if _, err := Diagnose(nil, nil, nil); !errors.Is(err, ErrParam) {
		t.Fatal("empty must error")
	}
	x := [][]float64{{0}, {0.1}, {100}}
	if _, err := Diagnose(x, []float64{1, 0}, nil, WithKernel(Uniform), WithBandwidth(1)); !errors.Is(err, ErrIsolated) {
		t.Fatal("isolated must error")
	}
}
