package serve

import (
	"errors"
	"strings"
	"sync"
	"testing"

	graphssl "repro"
)

// smallModel builds a trivial servable model for registry and batcher tests.
func smallModel(t *testing.T) *Model {
	t.Helper()
	snap := &graphssl.ModelSnapshot{
		X:         [][]float64{{0, 0}, {1, 1}, {2, 2}},
		Y:         []float64{1, 0},
		Labeled:   []int{0, 2},
		Scores:    []float64{1, 0.5, 0},
		Kernel:    graphssl.Gaussian,
		Bandwidth: 1,
	}
	m, err := NewModel(snap)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRegistryVersioning(t *testing.T) {
	var r Registry
	m := smallModel(t)
	if r.Len() != 0 {
		t.Fatalf("fresh registry has %d entries", r.Len())
	}
	if _, err := r.Load("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("load missing: %v", err)
	}
	e1, err := r.Store("a", m)
	if err != nil || e1.Version != 1 {
		t.Fatalf("first store: %+v, %v", e1, err)
	}
	e2, err := r.Store("a", smallModel(t))
	if err != nil || e2.Version != 2 {
		t.Fatalf("replace: %+v, %v", e2, err)
	}
	got, err := r.Load("a")
	if err != nil || got.Version != 2 || got.Model != e2.Model {
		t.Fatalf("load after swap: %+v, %v", got, err)
	}
	// Old entry keeps serving for holders.
	if e1.Model == nil || e1.Version != 1 {
		t.Fatalf("old entry mutated: %+v", e1)
	}
	if _, err := r.Store("b", m); err != nil {
		t.Fatal(err)
	}
	names := []string{}
	for _, e := range r.Entries() {
		names = append(names, e.Name)
	}
	if strings.Join(names, ",") != "a,b" {
		t.Fatalf("entries = %v", names)
	}
	if err := r.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	if r.Len() != 1 {
		t.Fatalf("len = %d", r.Len())
	}
}

// TestRegistryVersionMonotonicAcrossDelete pins the property the prediction
// cache depends on: a name's versions never restart after Delete, so one
// (name, version) pair can never identify two different models.
func TestRegistryVersionMonotonicAcrossDelete(t *testing.T) {
	var r Registry
	e, err := r.Store("a", smallModel(t))
	if err != nil || e.Version != 1 {
		t.Fatalf("store: %+v, %v", e, err)
	}
	if err := r.Delete("a"); err != nil {
		t.Fatal(err)
	}
	e, err = r.Store("a", smallModel(t))
	if err != nil || e.Version != 2 {
		t.Fatalf("store after delete: %+v, %v — version must not restart at 1", e, err)
	}
	if err := r.Delete("a"); err != nil {
		t.Fatal(err)
	}
	e, err = r.Store("a", smallModel(t))
	if err != nil || e.Version != 3 {
		t.Fatalf("second delete/store cycle: %+v, %v", e, err)
	}
	if err := r.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	if r.Len() != 0 {
		t.Fatalf("len = %d", r.Len())
	}
}

func TestRegistryNameValidation(t *testing.T) {
	var r Registry
	m := smallModel(t)
	for _, name := range []string{"", ".hidden", "a b", "a/b", "a\n", strings.Repeat("x", maxNameLen+1)} {
		if _, err := r.Store(name, m); !errors.Is(err, ErrName) {
			t.Fatalf("name %q: %v", name, err)
		}
	}
	for _, name := range []string{"a", "model-v2.1", "A_B", strings.Repeat("x", maxNameLen)} {
		if _, err := r.Store(name, m); err != nil {
			t.Fatalf("name %q: %v", name, err)
		}
	}
	if _, err := r.Store("ok", nil); !errors.Is(err, ErrSnapshot) {
		t.Fatalf("nil model: %v", err)
	}
}

// TestRegistryConcurrentSwap hammers Load from many readers while writers
// hot-swap and delete; run under -race this checks the lock-free read path.
func TestRegistryConcurrentSwap(t *testing.T) {
	var r Registry
	m := smallModel(t)
	if _, err := r.Store("hot", m); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				e, err := r.Load("hot")
				if err == nil && (e.Model == nil || e.Version < 1) {
					panic("torn entry")
				}
				r.Entries()
			}
		}()
	}
	for i := 0; i < 200; i++ {
		if _, err := r.Store("hot", m); err != nil {
			t.Fatal(err)
		}
		if i%10 == 9 {
			_ = r.Delete("hot")
			if _, err := r.Store("hot", m); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	e, err := r.Load("hot")
	if err != nil {
		t.Fatal(err)
	}
	if e.Version < 1 {
		t.Fatalf("final version %d", e.Version)
	}
}
