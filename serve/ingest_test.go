package serve

import (
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	graphssl "repro"
	"repro/stream"
)

// streamData builds a well-connected 2-d point set for streaming tests:
// a jittered grid with the first nl points labeled.
func streamData(seed int64, n, nl int) (x [][]float64, y []float64, labeled []int) {
	rng := rand.New(rand.NewSource(seed))
	side := int(math.Ceil(math.Sqrt(float64(n))))
	for i := 0; i < n; i++ {
		px := float64(i%side)/float64(side) + 0.02*rng.Float64()
		py := float64(i/side)/float64(side) + 0.02*rng.Float64()
		x = append(x, []float64{px, py})
	}
	for i := 0; i < nl; i++ {
		labeled = append(labeled, i)
		y = append(y, math.Sin(float64(i)))
	}
	return x, y, labeled
}

// TestModelApplyDeltaBitwise checks the roll-forward identity the ingest
// worker relies on: Model.ApplyDelta(d) must predict bitwise-identically
// to NewModel(snap.ApplyDelta(d)) — appending delta anchors in place is
// indistinguishable from rebuilding the model on the extended snapshot.
func TestModelApplyDeltaBitwise(t *testing.T) {
	x, y, labeled := testData(7, 90, 3, 30)
	res, err := graphssl.Fit(x, y, labeled, graphssl.WithBandwidth(1.2))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := res.Snapshot(x, y)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(snap)
	if err != nil {
		t.Fatal(err)
	}

	d := &graphssl.SnapshotDelta{
		X: [][]float64{{0.1, 0.2, 0.3}, {-0.4, 0.5, -0.6}, {0.7, -0.8, 0.9}},
		Y: []float64{2.5, -1.5, 0.5},
	}
	rolled, err := m.ApplyDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	snap2, err := snap.ApplyDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := NewModel(snap2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rolled.Info(), rebuilt.Info(); got != want {
		t.Fatalf("info mismatch: rolled %+v rebuilt %+v", got, want)
	}

	rng := rand.New(rand.NewSource(99))
	qs := make([][]float64, 200)
	for i := range qs {
		qs[i] = []float64{3 * rng.NormFloat64(), 3 * rng.NormFloat64(), 3 * rng.NormFloat64()}
	}
	errAt := func(errs []error, i int) error {
		if errs == nil {
			return nil
		}
		return errs[i]
	}
	a, aerrs := rolled.PredictBatch(qs)
	b, berrs := rebuilt.PredictBatch(qs)
	for i := range qs {
		ae, be := errAt(aerrs, i), errAt(berrs, i)
		if (ae == nil) != (be == nil) {
			t.Fatalf("query %d: error mismatch %v vs %v", i, ae, be)
		}
		if ae == nil && math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("query %d: rolled %v != rebuilt %v", i, a[i], b[i])
		}
	}

	// The original model is immutable: its predictions are unchanged.
	before, _ := m.PredictBatch(qs[:10])
	m2, err := NewModel(snap)
	if err != nil {
		t.Fatal(err)
	}
	after, _ := m2.PredictBatch(qs[:10])
	for i := range before {
		if math.Float64bits(before[i]) != math.Float64bits(after[i]) {
			t.Fatalf("base model mutated at query %d", i)
		}
	}

	// Validation: empty delta is the same model; malformed deltas reject.
	if same, err := m.ApplyDelta(nil); err != nil || same != m {
		t.Fatalf("nil delta: %v %v", same, err)
	}
	bad := []*graphssl.SnapshotDelta{
		{X: [][]float64{{1, 2}}, Y: []float64{1}},               // dim mismatch
		{X: [][]float64{{1, 2, math.NaN()}}, Y: []float64{1}},   // non-finite point
		{X: [][]float64{{1, 2, 3}}, Y: []float64{math.Inf(1)}},  // non-finite response
		{X: [][]float64{{1, 2, 3}, {4, 5, 6}}, Y: []float64{1}}, // length mismatch
	}
	for i, d := range bad {
		if _, err := m.ApplyDelta(d); err == nil {
			t.Fatalf("bad delta %d accepted", i)
		}
	}
}

// streamFit publishes a streaming model over HTTP.
func streamFit(t *testing.T, base, name string, x [][]float64, y []float64, labeled []int, h float64) fitResponse {
	t.Helper()
	resp, body := postJSON(t, base+"/v1/models/"+name, fitRequest{
		X: x, Y: y, Labeled: labeled,
		Kernel: "epanechnikov", Bandwidth: h, Stream: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream fit: %d %s", resp.StatusCode, body)
	}
	var fr fitResponse
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatal(err)
	}
	return fr
}

// waitForVersion polls the model endpoint until its version reaches v.
func waitForVersion(t *testing.T, base, name string, v int64) modelEntry {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, body := getJSON(t, base+"/v1/models/"+name)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("get: %d %s", resp.StatusCode, body)
		}
		var e modelEntry
		if err := json.Unmarshal(body, &e); err != nil {
			t.Fatal(err)
		}
		if e.Version >= v {
			return e
		}
		if time.Now().After(deadline) {
			t.Fatalf("model %q stuck at version %d, want %d", name, e.Version, v)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestIngestE2E drives the streaming loop over HTTP: fit with
// "stream": true, trickle labeled points through POST /v1/ingest, and
// check the rolled-forward model serves predictions bitwise-identical to
// an in-process ingestor fed the same edits — including through the
// version-keyed prediction cache.
func TestIngestE2E(t *testing.T) {
	srv, ts := testServer(t, Config{Workers: 1})
	x, y, labeled := streamData(11, 64, 16)
	const h = 0.35

	fr := streamFit(t, ts.URL, "live", x, y, labeled, h)
	if fr.Version != 1 || fr.Info.Anchors != 16 {
		t.Fatalf("stream fit response: %+v", fr)
	}

	// Twin ingestor fed the identical edit sequence, for the expected
	// served bits.
	twin, err := stream.New(x, y, labeled, stream.Config{
		Kernel: graphssl.Epanechnikov, Bandwidth: h, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	q := []float64{0.31, 0.29}
	resp, body := postJSON(t, ts.URL+"/v1/predict", predictRequest{Model: "live", Points: [][]float64{q}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d %s", resp.StatusCode, body)
	}
	var pr predictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Version != 1 {
		t.Fatalf("predict version = %d", pr.Version)
	}

	// Trickle three labeled points in one request; the worker folds them
	// into one refresh and rolls the model forward.
	pts := [][]float64{{0.30, 0.30}, {0.62, 0.18}, {0.15, 0.77}}
	ys := []float64{3, -3, 1.5}
	resp, body = postJSON(t, ts.URL+"/v1/ingest", ingestRequest{Model: "live", Points: pts, Y: ys})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest: %d %s", resp.StatusCode, body)
	}
	var ir ingestResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Accepted != 3 {
		t.Fatalf("ingest response: %+v", ir)
	}

	e := waitForVersion(t, ts.URL, "live", 2)
	if e.Info.Anchors != 19 {
		t.Fatalf("rolled model anchors = %d, want 19", e.Info.Anchors)
	}

	for i, p := range pts {
		if _, err := twin.InsertLabeled(p, ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := twin.Refresh(); err != nil {
		t.Fatal(err)
	}
	snap, err := twin.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewModel(snap, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}

	// The same cached query must now answer from the new version with the
	// new bits: the version-keyed cache can never serve the stale score.
	resp, body = postJSON(t, ts.URL+"/v1/predict", predictRequest{Model: "live", Points: [][]float64{q}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Version != 2 {
		t.Fatalf("post-ingest predict version = %d", pr.Version)
	}
	ws, err := want.Predict(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(pr.Scores[0]) != math.Float64bits(ws) {
		t.Fatalf("served %v != twin %v", pr.Scores[0], ws)
	}

	// Unlabeled points refresh the transductive state without changing the
	// anchors, so no republish happens and the version holds.
	resp, _ = postJSON(t, ts.URL+"/v1/ingest", ingestRequest{Model: "live", Points: [][]float64{{0.5, 0.5}}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("unlabeled ingest: %d", resp.StatusCode)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.ingestStateFor("live").pending.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("unlabeled ingest never drained")
		}
		time.Sleep(time.Millisecond)
	}
	if e := waitForVersion(t, ts.URL, "live", 2); e.Version != 2 {
		t.Fatalf("unlabeled ingest bumped version to %d", e.Version)
	}

	// Delete tears the ingest state down; further ingests 404.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/models/live", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	resp, _ = postJSON(t, ts.URL+"/v1/ingest", ingestRequest{Model: "live", Points: pts[:1], Y: ys[:1]})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ingest after delete: %d", resp.StatusCode)
	}
	if srv.ingestStateFor("live") != nil {
		t.Fatal("ingest state survived delete")
	}
}

// TestIngestValidation covers the request-shape and configuration errors
// of the streaming surface.
func TestIngestValidation(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, IngestQueue: 2})
	x, y, labeled := streamData(13, 48, 12)
	const h = 0.35

	// Streaming fit constraints.
	for name, req := range map[string]fitRequest{
		"gaussian kernel": {X: x, Y: y, Labeled: labeled, Bandwidth: h, Stream: true},
		"no bandwidth":    {X: x, Y: y, Labeled: labeled, Kernel: "epanechnikov", Stream: true},
		"knn":             {X: x, Y: y, Labeled: labeled, Kernel: "epanechnikov", Bandwidth: h, KNN: 4, Stream: true},
		"top_m":           {X: x, Y: y, Labeled: labeled, Kernel: "epanechnikov", Bandwidth: h, TopM: 4, Stream: true},
		"anchor all":      {X: x, Y: y, Labeled: labeled, Kernel: "epanechnikov", Bandwidth: h, AnchorSet: "all", Stream: true},
	} {
		resp, body := postJSON(t, ts.URL+"/v1/models/bad", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: %d %s", name, resp.StatusCode, body)
		}
	}
	lam := 0.5
	resp, _ := postJSON(t, ts.URL+"/v1/models/bad", fitRequest{
		X: x, Y: y, Labeled: labeled, Kernel: "epanechnikov", Bandwidth: h, Lambda: &lam, Stream: true,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("lambda: %d", resp.StatusCode)
	}

	streamFit(t, ts.URL, "live", x, y, labeled, h)
	fitOverHTTP(t, ts.URL, "plain", x, y, labeled, 1.0)

	// Ingest request shapes.
	for name, req := range map[string]ingestRequest{
		"no points":  {Model: "live"},
		"y mismatch": {Model: "live", Points: [][]float64{{0.1, 0.1}}, Y: []float64{1, 2}},
		"non-stream": {Model: "plain", Points: [][]float64{{0.1, 0.1}}},
	} {
		resp, body := postJSON(t, ts.URL+"/v1/ingest", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: %d %s", name, resp.StatusCode, body)
		}
	}
	resp, _ = postJSON(t, ts.URL+"/v1/ingest", ingestRequest{Model: "ghost", Points: [][]float64{{0.1, 0.1}}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model: %d", resp.StatusCode)
	}

	// Backpressure: IngestQueue is 2 points, so a 3-point request is shed
	// with 429 before touching the queue.
	resp, body := postJSON(t, ts.URL+"/v1/ingest", ingestRequest{
		Model:  "live",
		Points: [][]float64{{0.1, 0.1}, {0.2, 0.2}, {0.3, 0.3}},
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overfull ingest: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

// TestIngestRejectedOnFleet pins the single-server contract: a fleet fit
// with "stream": true is rejected, and the fleet surface has no
// /v1/ingest route.
func TestIngestRejectedOnFleet(t *testing.T) {
	f, err := NewFleet(3, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	x, y, labeled := streamData(17, 48, 12)
	resp, body := postJSON(t, ts.URL+"/v1/models/live", fitRequest{
		X: x, Y: y, Labeled: labeled, Kernel: "epanechnikov", Bandwidth: 0.35, Stream: true,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("fleet stream fit: %d %s", resp.StatusCode, body)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/ingest", ingestRequest{Model: "live", Points: [][]float64{{0.1, 0.1}}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("fleet ingest route: %d", resp.StatusCode)
	}
}

// TestRegistryRollForwardUnderLoad hammers the registry with concurrent
// predictions while the in-process roll-forward loop (refresh, TakeDelta,
// ApplyDelta, Store) hot-swaps the model, then deletes and refits under
// the same name. Versions must be strictly monotonic across the whole
// run, every observed (version, score) pair must match the model that
// carried that version, and the race detector must stay quiet.
func TestRegistryRollForwardUnderLoad(t *testing.T) {
	x, y, labeled := streamData(19, 64, 16)
	const h = 0.35
	ing, err := stream.New(x, y, labeled, stream.Config{
		Kernel: graphssl.Epanechnikov, Bandwidth: h, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := ing.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(snap, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	reg := &Registry{}
	if _, err := reg.Store("live", m); err != nil {
		t.Fatal(err)
	}

	// Every published version's expected score at the probe point, for
	// readers to check their (version, score) observations against.
	q := []float64{0.4, 0.4}
	var mu sync.Mutex
	wantByVersion := map[int64]uint64{}
	record := func(v int64, m *Model) {
		s, err := m.Predict(q)
		if err != nil {
			t.Errorf("version %d: %v", v, err)
			return
		}
		mu.Lock()
		wantByVersion[v] = math.Float64bits(s)
		mu.Unlock()
	}
	record(1, m)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last int64
			for !stop.Load() {
				e, err := reg.Load("live")
				if err != nil {
					continue // deleted window mid-run
				}
				if e.Version < last {
					t.Errorf("version went backwards: %d after %d", e.Version, last)
					return
				}
				last = e.Version
				s, err := e.Model.Predict(q)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				want, ok := wantByVersion[e.Version]
				mu.Unlock()
				if ok && math.Float64bits(s) != want {
					t.Errorf("version %d served stale bits", e.Version)
					return
				}
			}
		}()
	}

	// Writer: 20 delta roll-forwards, then delete + refit, then 5 more.
	rng := rand.New(rand.NewSource(23))
	cur := m
	rollForward := func() {
		p := []float64{rng.Float64(), rng.Float64()}
		if _, err := ing.InsertLabeled(p, rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
		if _, err := ing.Refresh(); err != nil {
			t.Fatal(err)
		}
		d, ok := ing.TakeDelta()
		if !ok {
			t.Fatal("delta not available")
		}
		next, err := cur.ApplyDelta(d)
		if err != nil {
			t.Fatal(err)
		}
		e, err := reg.Store("live", next)
		if err != nil {
			t.Fatal(err)
		}
		cur = next
		record(e.Version, next)
	}
	for i := 0; i < 20; i++ {
		rollForward()
	}
	if err := reg.Delete("live"); err != nil {
		t.Fatal(err)
	}
	// Refit under the same name: the version must keep climbing past the
	// deleted generation so cached or remembered versions can never alias.
	snap2, err := ing.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ing.MarkPublished()
	m2, err := NewModel(snap2, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	e, err := reg.Store("live", m2)
	if err != nil {
		t.Fatal(err)
	}
	if e.Version != 22 {
		t.Fatalf("post-delete version = %d, want 22", e.Version)
	}
	cur = m2
	record(e.Version, m2)
	for i := 0; i < 5; i++ {
		rollForward()
	}

	stop.Store(true)
	wg.Wait()

	if e, err := reg.Load("live"); err != nil || e.Version != 27 {
		t.Fatalf("final entry: %+v %v", e, err)
	}
}
