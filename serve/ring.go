package serve

import (
	"fmt"
	"sort"
)

// defaultVnodes is the virtual-node count per replica: enough to keep the
// key-space share of each replica within a few percent of uniform without
// making ring construction or lookup noticeably slower.
const defaultVnodes = 64

// Ring is a consistent-hash router over replica indices. Each replica owns
// vnodes points on a 64-bit FNV-1a hash circle; a key routes to the replica
// owning the first point at or clockwise of the key's hash. Routing is a
// pure function of (key, replica count, vnodes): the same request body
// always lands on the same replica — the cache-affinity property the fleet's
// predict path is built on — and resizing the fleet moves only ~1/n of the
// key space.
//
// A Ring is immutable after NewRing and safe for unbounded concurrent
// lookups.
type Ring struct {
	points []ringPoint // sorted by hash
	n      int
}

type ringPoint struct {
	hash    uint64
	replica int
}

// NewRing builds a ring over n replicas with the given virtual-node count
// per replica (vnodes <= 0 selects the default).
func NewRing(n, vnodes int) (*Ring, error) {
	if n < 1 {
		return nil, fmt.Errorf("serve: ring needs at least one replica, got %d: %w", n, ErrFleet)
	}
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	r := &Ring{points: make([]ringPoint, 0, n*vnodes), n: n}
	var label [32]byte
	for rep := 0; rep < n; rep++ {
		for v := 0; v < vnodes; v++ {
			key := label[:0]
			key = appendUint(key, uint64(rep))
			key = append(key, ':')
			key = appendUint(key, uint64(v))
			r.points = append(r.points, ringPoint{hash: fnv64a(key), replica: rep})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].replica < r.points[b].replica
	})
	return r, nil
}

// Replicas returns the replica count the ring was built over.
func (r *Ring) Replicas() int { return r.n }

// Lookup routes a key to its owning replica index. It never allocates.
func (r *Ring) Lookup(key []byte) int {
	return r.lookupHash(fnv64a(key))
}

// LookupString routes a string key; see Lookup.
func (r *Ring) LookupString(key string) int {
	h := uint64(fnvOffset)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * fnvPrime
	}
	return r.lookupHash(h)
}

// lookupHash finds the first ring point at or clockwise of h, wrapping to
// the start of the circle.
func (r *Ring) lookupHash(h uint64) int {
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.points[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.points) {
		lo = 0
	}
	return r.points[lo].replica
}

// fnv64a is FNV-1a 64-bit over a byte slice (constants shared with the
// prediction cache), inlined so the predict hot path hashes request bodies
// without the hash.Hash allocation.
func fnv64a(b []byte) uint64 {
	h := uint64(fnvOffset)
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime
	}
	return h
}

// appendUint appends the decimal digits of v.
func appendUint(b []byte, v uint64) []byte {
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(b, tmp[i:]...)
}
