package serve

import (
	"fmt"
	"math"
	"sort"
	"sync"

	graphssl "repro"
	"repro/internal/core"
	"repro/internal/kernel"
)

// AnchorSet selects which training points a served model anchors its
// inductive Nadaraya–Watson extension on.
type AnchorSet uint8

const (
	// AnchorLabeled anchors on the labeled points with their fitted
	// scores. Under the hard criterion the fitted labeled scores are
	// exactly the observed responses, so Predict at an in-sample point is
	// bitwise-identical to the NadarayaWatson baseline on a default-built
	// graph. This is the default.
	AnchorLabeled AnchorSet = iota
	// AnchorAll anchors on every training point with its fitted score —
	// the Delalleau-style induction, which also propagates the structure
	// the fit extracted from the unlabeled points.
	AnchorAll
)

// String names the anchor set for reports and the HTTP API.
func (a AnchorSet) String() string {
	if a == AnchorAll {
		return "all"
	}
	return "labeled"
}

// Model is an immutable serving snapshot: a frozen inductive predictor plus
// the hyperparameters it was fitted with. It is safe for unbounded
// concurrent use; all mutable prediction state is per-call.
type Model struct {
	dim         int
	kind        kernel.Kind
	bandwidth   float64
	knn         int
	topM        int
	lambda      float64
	anchorSet   AnchorSet
	trainN      int
	labeledN    int
	approxBound float64
	pred        *core.NWPredictor
	workers     int
}

// ModelOption configures NewModel.
type ModelOption func(*modelConfig)

type modelConfig struct {
	anchorSet AnchorSet
	workers   int
	topM      int
}

// WithAnchorSet selects the anchor set (default AnchorLabeled).
func WithAnchorSet(a AnchorSet) ModelOption {
	return func(c *modelConfig) { c.anchorSet = a }
}

// WithWorkers bounds the parallelism of batch predictions made through this
// model (<= 0 selects GOMAXPROCS, 1 runs serially). Worker count never
// changes results.
func WithWorkers(w int) ModelOption {
	return func(c *modelConfig) { c.workers = w }
}

// WithTopM truncates every prediction to its m nearest anchors. Unlike the
// exact compact-kernel pruning (which only skips anchors the kernel already
// weighs zero), top-m is an approximation: each response carries a
// residual-mass bound quantifying the kernel mass the truncation could have
// dropped — see Result.Bounds and the per-point residual_bound in the HTTP
// API. m <= 0 disables truncation (the default). Snapshots fitted with a
// kNN graph are already truncated and reject the option.
func WithTopM(m int) ModelOption {
	return func(c *modelConfig) { c.topM = m }
}

// NewModel freezes a fitted snapshot into a servable model. The snapshot's
// anchor points are deep-copied out, so the caller may keep mutating its
// own data afterwards.
func NewModel(snap *graphssl.ModelSnapshot, opts ...ModelOption) (*Model, error) {
	if snap == nil {
		return nil, fmt.Errorf("serve: nil snapshot: %w", ErrSnapshot)
	}
	cfg := modelConfig{anchorSet: AnchorLabeled, workers: 1}
	for _, o := range opts {
		o(&cfg)
	}
	dim := snap.Dim()
	if dim == 0 {
		return nil, fmt.Errorf("serve: empty snapshot: %w", ErrSnapshot)
	}
	if len(snap.Scores) != len(snap.X) {
		return nil, fmt.Errorf("serve: %d scores for %d points: %w", len(snap.Scores), len(snap.X), ErrSnapshot)
	}
	k, err := kernel.New(snap.Kernel, snap.Bandwidth)
	if err != nil {
		return nil, fmt.Errorf("serve: snapshot kernel: %w", ErrSnapshot)
	}

	// Anchor points in ascending node order with their fitted scores —
	// the accumulation order that keeps Predict bitwise-identical to the
	// transductive estimators.
	var nodes []int
	switch cfg.anchorSet {
	case AnchorLabeled:
		if len(snap.Labeled) == 0 {
			return nil, fmt.Errorf("serve: snapshot has no labeled points: %w", ErrSnapshot)
		}
		nodes = append([]int(nil), snap.Labeled...)
		sort.Ints(nodes)
	case AnchorAll:
		nodes = make([]int, len(snap.X))
		for i := range nodes {
			nodes[i] = i
		}
	default:
		return nil, fmt.Errorf("serve: anchor set %d: %w", cfg.anchorSet, ErrSnapshot)
	}
	anchors := make([][]float64, len(nodes))
	values := make([]float64, len(nodes))
	for p, node := range nodes {
		if node < 0 || node >= len(snap.X) {
			return nil, fmt.Errorf("serve: snapshot labeled index %d outside [0,%d): %w", node, len(snap.X), ErrSnapshot)
		}
		if len(snap.X[node]) != dim {
			return nil, fmt.Errorf("serve: snapshot point %d has dim %d, want %d: %w", node, len(snap.X[node]), dim, ErrSnapshot)
		}
		anchors[p] = append([]float64(nil), snap.X[node]...)
		values[p] = snap.Scores[node]
	}
	knn := snap.KNN
	if cfg.topM > 0 {
		if snap.KNN > 0 {
			return nil, fmt.Errorf("serve: top-m truncation on a kNN-fitted snapshot (knn=%d): %w", snap.KNN, ErrSnapshot)
		}
		knn = cfg.topM
	}
	pred, err := core.NewNWPredictor(anchors, values, k, knn, cfg.workers)
	if err != nil {
		return nil, fmt.Errorf("serve: snapshot predictor: %w", ErrSnapshot)
	}
	return &Model{
		dim:         dim,
		kind:        snap.Kernel,
		bandwidth:   snap.Bandwidth,
		knn:         snap.KNN,
		topM:        cfg.topM,
		lambda:      snap.Lambda,
		anchorSet:   cfg.anchorSet,
		trainN:      len(snap.X),
		labeledN:    len(snap.Labeled),
		approxBound: snap.ApproxBound,
		pred:        pred,
		workers:     cfg.workers,
	}, nil
}

// ApplyDelta rolls the model forward by a streaming snapshot delta:
// the newly labeled points become additional anchors appended after the
// existing ones, without republishing (or re-copying) the anchors
// already served. The receiver is unchanged; the returned model shares
// its anchor storage and is bitwise prediction-identical to
// NewModel(snap.ApplyDelta(d), ...) with the options this model was
// built with: delta points carry node indices past every existing one,
// so appending preserves the ascending-node-order accumulation contract.
//
// Only hard-criterion (lambda = 0) labeled-anchor models can roll
// forward — exactly the models whose labeled scores are pinned to the
// responses a delta carries. Anything else needs a full republish.
func (m *Model) ApplyDelta(d *graphssl.SnapshotDelta) (*Model, error) {
	if d == nil || d.Len() == 0 {
		return m, nil
	}
	if m.lambda != 0 {
		return nil, fmt.Errorf("serve: delta roll-forward needs the hard criterion (lambda=0), got %v: %w", m.lambda, ErrSnapshot)
	}
	if m.anchorSet != AnchorLabeled {
		return nil, fmt.Errorf("serve: delta roll-forward needs labeled anchors, got %q: %w", m.anchorSet, ErrSnapshot)
	}
	if len(d.X) != len(d.Y) {
		return nil, fmt.Errorf("serve: delta has %d points, %d responses: %w", len(d.X), len(d.Y), ErrSnapshot)
	}
	anchors := make([][]float64, len(d.X))
	values := make([]float64, len(d.Y))
	for i, xi := range d.X {
		if len(xi) != m.dim {
			return nil, fmt.Errorf("serve: delta point %d has dim %d, want %d: %w", i, len(xi), m.dim, ErrSnapshot)
		}
		for j, v := range xi {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("serve: delta point %d coordinate %d is %v: %w", i, j, v, ErrSnapshot)
			}
		}
		if math.IsNaN(d.Y[i]) || math.IsInf(d.Y[i], 0) {
			return nil, fmt.Errorf("serve: delta response %d is %v: %w", i, d.Y[i], ErrSnapshot)
		}
		anchors[i] = append([]float64(nil), xi...)
		values[i] = d.Y[i]
	}
	pred, err := m.pred.AppendAnchors(anchors, values, m.workers)
	if err != nil {
		return nil, fmt.Errorf("serve: delta predictor: %w", ErrSnapshot)
	}
	next := *m
	next.pred = pred
	next.trainN += len(d.X)
	next.labeledN += len(d.X)
	return &next, nil
}

// Dim returns the input dimension query points must have.
func (m *Model) Dim() int { return m.dim }

// NumAnchors returns the number of anchor points the model predicts from.
func (m *Model) NumAnchors() int { return m.pred.NumAnchors() }

// Info describes the model for the HTTP API and reports.
type Info struct {
	Dim       int     `json:"dim"`
	Kernel    string  `json:"kernel"`
	Bandwidth float64 `json:"bandwidth"`
	KNN       int     `json:"knn,omitempty"`
	TopM      int     `json:"top_m,omitempty"`
	Lambda    float64 `json:"lambda"`
	AnchorSet string  `json:"anchor_set"`
	Anchors   int     `json:"anchors"`
	TrainN    int     `json:"train_n"`
	LabeledN  int     `json:"labeled_n"`
	// Pruning names the anchor-lookup path the predictor selected: "brute"
	// (full SIMD scan), "grid" or "kdtree" (exact compact-kernel ball
	// rejection), or "knn" (top-m truncation with residual bounds).
	Pruning string `json:"pruning"`
	// ApproxBound is the certified sup-norm error bound of the snapshot's
	// approximate (Nyström) fit; 0 for exactly fitted models.
	ApproxBound float64 `json:"approx_bound,omitempty"`
}

// Info returns the model's hyperparameters and sizes.
func (m *Model) Info() Info {
	return Info{
		Dim:         m.dim,
		Kernel:      m.kind.String(),
		Bandwidth:   m.bandwidth,
		KNN:         m.knn,
		TopM:        m.topM,
		Lambda:      m.lambda,
		AnchorSet:   m.anchorSet.String(),
		Anchors:     m.pred.NumAnchors(),
		TrainN:      m.trainN,
		LabeledN:    m.labeledN,
		Pruning:     m.pred.Path(),
		ApproxBound: m.approxBound,
	}
}

// pointStatus is the per-point outcome of a batched prediction.
type pointStatus uint8

const (
	psOK pointStatus = iota
	psBadPoint
	psIsolated
)

// err maps a non-OK status to its sentinel.
func (s pointStatus) err() error {
	switch s {
	case psBadPoint:
		return ErrPoint
	case psIsolated:
		return ErrIsolated
	default:
		return nil
	}
}

// checkPoint validates one query point against the model.
func (m *Model) checkPoint(q []float64) bool {
	if len(q) != m.dim {
		return false
	}
	for _, v := range q {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Predict evaluates the inductive estimator at one query point. It returns
// ErrPoint for a malformed point and ErrIsolated when the point has zero
// similarity mass to every anchor.
func (m *Model) Predict(q []float64) (float64, error) {
	if !m.checkPoint(q) {
		return 0, fmt.Errorf("serve: point has dim %d, want %d finite coordinates: %w", len(q), m.dim, ErrPoint)
	}
	v, err := m.pred.Predict(q, nil)
	if err != nil {
		return 0, fmt.Errorf("serve: no anchor within kernel support: %w", ErrIsolated)
	}
	return v, nil
}

// PredictBatch evaluates the estimator at every query point, returning the
// estimates and, when some points fail, a per-point error slice (nil
// entries mark successes). The batch path tiles queries against anchor
// blocks, so large batches run substantially faster per point than repeated
// Predict calls while staying bitwise-identical to them.
func (m *Model) PredictBatch(qs [][]float64) ([]float64, []error) {
	dst := make([]float64, len(qs))
	st := make([]pointStatus, len(qs))
	m.predictInto(dst, st, nil, qs, m.workers)
	var errs []error
	for i, s := range st {
		if s != psOK {
			if errs == nil {
				errs = make([]error, len(qs))
			}
			errs[i] = s.err()
		}
	}
	return dst, errs
}

// predictSerial evaluates qs one point at a time through the per-point
// path — the unbatched serving baseline. Results are bitwise-identical to
// predictInto; only the throughput differs. bounds may be nil.
func (m *Model) predictSerial(dst []float64, st []pointStatus, bounds []float64, qs [][]float64) {
	s := m.pred.GetScratch()
	var pruned int64
	for i, q := range qs {
		dst[i] = 0
		if bounds != nil {
			bounds[i] = 0
		}
		st[i] = psOK
		if !m.checkPoint(q) {
			st[i] = psBadPoint
			continue
		}
		v, err := m.pred.Predict(q, s)
		p, bound := s.LastStats()
		pruned += int64(p)
		if err != nil {
			st[i] = psIsolated
			continue
		}
		dst[i] = v
		if bounds != nil {
			bounds[i] = bound
		}
	}
	m.pred.PutScratch(s)
	countPruned(pruned)
}

// predictScratch holds the reusable buffers of one predictInto call; pooled
// so the warm batch path stays allocation-free.
type predictScratch struct {
	cst     []core.NWStatus
	good    [][]float64
	pos     []int
	gdst    []float64
	gbounds []float64
	// stats lives in the pooled scratch (not on the stack) because its
	// address crosses into the predictor's worker closure, which would
	// otherwise heap-allocate it per call.
	stats core.NWBatchStats
}

var predictPool = sync.Pool{New: func() any { return new(predictScratch) }}

func (ps *predictScratch) size(n int) {
	if cap(ps.cst) < n {
		ps.cst = make([]core.NWStatus, n)
		ps.good = make([][]float64, n)
		ps.pos = make([]int, n)
		ps.gdst = make([]float64, n)
		ps.gbounds = make([]float64, n)
	}
}

// predictInto is the allocation-free batch core used by the batcher: dst,
// st, and (optionally nil) bounds are caller-owned slices sized len(qs).
// Malformed points are screened before the compute pass and never reach the
// predictor. Every entry of dst/st/bounds is written, so callers may hand
// in dirty pooled buffers.
func (m *Model) predictInto(dst []float64, st []pointStatus, bounds []float64, qs [][]float64, workers int) {
	n := len(qs)
	ps := predictPool.Get().(*predictScratch)
	ps.size(n)
	ps.stats.AnchorsPruned = 0
	bad := false
	for i, q := range qs {
		if m.checkPoint(q) {
			st[i] = psOK
		} else {
			st[i] = psBadPoint
			bad = true
		}
	}
	if bad {
		// Compact the good points so the tiled kernel sees a clean batch.
		good, pos := ps.good[:0], ps.pos[:0]
		for i, q := range qs {
			if st[i] == psOK {
				good = append(good, q)
				pos = append(pos, i)
			}
		}
		for i := range qs {
			dst[i] = 0
			if bounds != nil {
				bounds[i] = 0
			}
		}
		if len(good) > 0 {
			gdst, gst := ps.gdst[:len(good)], ps.cst[:len(good)]
			var gbounds []float64
			if bounds != nil {
				gbounds = ps.gbounds[:len(good)]
			}
			m.pred.PredictBatchBounds(gdst, gst, gbounds, good, workers, &ps.stats)
			for r, i := range pos {
				switch gst[r] {
				case core.NWOK:
					dst[i] = gdst[r]
					if bounds != nil {
						bounds[i] = gbounds[r]
					}
				default:
					st[i] = psIsolated
				}
			}
		}
		// Drop the caller's query references before pooling.
		for i := range good {
			good[i] = nil
		}
	} else {
		cst := ps.cst[:n]
		m.pred.PredictBatchBounds(dst, cst, bounds, qs, workers, &ps.stats)
		for i, s := range cst {
			if s != core.NWOK {
				st[i] = psIsolated
				dst[i] = 0
				if bounds != nil {
					bounds[i] = 0
				}
			}
		}
	}
	pruned := ps.stats.AnchorsPruned
	predictPool.Put(ps)
	countPruned(pruned)
}
