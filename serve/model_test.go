package serve

import (
	"errors"
	"math"
	"testing"

	graphssl "repro"
	"repro/internal/randx"
)

// testData draws an n-point, d-dimensional training set with a scattered
// labeled subset of size nl.
func testData(seed int64, n, d, nl int) (x [][]float64, y []float64, labeled []int) {
	rng := randx.New(seed)
	x = make([][]float64, n)
	for i := range x {
		xi := make([]float64, d)
		for j := range xi {
			xi[j] = rng.Norm()
		}
		x[i] = xi
	}
	labeled = rng.Perm(n)[:nl]
	y = make([]float64, nl)
	for i, l := range labeled {
		s := 0.0
		for _, v := range x[l] {
			s += v
		}
		y[i] = randx.Logistic(s) + 0.1*rng.Norm()
	}
	return x, y, labeled
}

// fitSnapshot runs a hard-criterion fit and freezes it.
func fitSnapshot(t *testing.T, x [][]float64, y []float64, labeled []int, opts ...graphssl.Option) *graphssl.ModelSnapshot {
	t.Helper()
	res, err := graphssl.Fit(x, y, labeled, opts...)
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	snap, err := res.Snapshot(x, y)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return snap
}

// TestModelPredictMatchesNadarayaWatson is the serving acceptance contract:
// with labeled anchors, Predict at an in-sample unlabeled point is
// bitwise-identical to the NadarayaWatson baseline, per point and batched,
// at every worker count, for every kernel family (and so every spatial
// lookup path).
func TestModelPredictMatchesNadarayaWatson(t *testing.T) {
	cases := []struct {
		name   string
		kernel graphssl.Kernel
		h      float64
		n, d   int
	}{
		{"gaussian-brute", graphssl.Gaussian, 1.2, 160, 7},
		{"epanechnikov-grid", graphssl.Epanechnikov, 2.5, 150, 3},
		{"tricube-kdtree", graphssl.Tricube, 6.5, 150, 9},
		{"triangular-highdim", graphssl.Triangular, 9.0, 150, 18},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			x, y, labeled := testData(3, tc.n, tc.d, tc.n/4)
			want, unl, err := graphssl.NadarayaWatson(x, y, labeled,
				graphssl.WithKernel(tc.kernel), graphssl.WithBandwidth(tc.h))
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			snap := fitSnapshot(t, x, y, labeled,
				graphssl.WithKernel(tc.kernel), graphssl.WithBandwidth(tc.h))
			for _, workers := range []int{1, 2, 3, 0} {
				m, err := NewModel(snap, WithWorkers(workers))
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if m.Dim() != tc.d || m.NumAnchors() != len(labeled) {
					t.Fatalf("workers=%d: dim=%d anchors=%d", workers, m.Dim(), m.NumAnchors())
				}
				qs := make([][]float64, len(unl))
				for i, u := range unl {
					qs[i] = x[u]
				}
				got, errs := m.PredictBatch(qs)
				if errs != nil {
					t.Fatalf("workers=%d: batch errors: %v", workers, errs)
				}
				for i := range qs {
					if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
						t.Fatalf("workers=%d point %d: batch %v != baseline %v", workers, unl[i], got[i], want[i])
					}
					one, err := m.Predict(qs[i])
					if err != nil {
						t.Fatalf("workers=%d point %d: %v", workers, unl[i], err)
					}
					if math.Float64bits(one) != math.Float64bits(want[i]) {
						t.Fatalf("workers=%d point %d: predict %v != baseline %v", workers, unl[i], one, want[i])
					}
				}
			}
		})
	}
}

// TestModelAnchorAll checks the Delalleau-style anchor set: every training
// point anchors with its fitted score, so in-sample predictions reproduce
// the transductive fit's neighbourhood averages deterministically.
func TestModelAnchorAll(t *testing.T) {
	x, y, labeled := testData(5, 120, 4, 30)
	snap := fitSnapshot(t, x, y, labeled, graphssl.WithBandwidth(1.5))
	m, err := NewModel(snap, WithAnchorSet(AnchorAll))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumAnchors() != len(x) {
		t.Fatalf("anchors = %d, want %d", m.NumAnchors(), len(x))
	}
	info := m.Info()
	if info.AnchorSet != "all" || info.TrainN != 120 || info.LabeledN != 30 || info.Kernel != "gaussian" {
		t.Fatalf("info = %+v", info)
	}
	// Deterministic across repeated calls and worker counts.
	qs := [][]float64{x[0], x[7], {0.1, -0.2, 0.3, 0.4}}
	base, errs := m.PredictBatch(qs)
	if errs != nil {
		t.Fatalf("errors: %v", errs)
	}
	for _, workers := range []int{2, 0} {
		mw, err := NewModel(snap, WithAnchorSet(AnchorAll), WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		got, errs := mw.PredictBatch(qs)
		if errs != nil {
			t.Fatalf("workers=%d errors: %v", workers, errs)
		}
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(base[i]) {
				t.Fatalf("workers=%d point %d: %v != %v", workers, i, got[i], base[i])
			}
		}
	}
}

// TestModelKNNSnapshot checks that a k-NN-built fit round-trips its
// sparsification into the predictor.
func TestModelKNNSnapshot(t *testing.T) {
	x, y, labeled := testData(9, 140, 5, 60)
	snap := fitSnapshot(t, x, y, labeled, graphssl.WithBandwidth(2.0), graphssl.WithKNN(8))
	if snap.KNN != 8 {
		t.Fatalf("snapshot KNN = %d", snap.KNN)
	}
	m, err := NewModel(snap)
	if err != nil {
		t.Fatal(err)
	}
	if m.Info().KNN != 8 {
		t.Fatalf("info KNN = %d", m.Info().KNN)
	}
	if _, err := m.Predict(x[labeled[0]]); err != nil {
		t.Fatal(err)
	}
}

// TestModelErrors covers snapshot and query validation.
func TestModelErrors(t *testing.T) {
	if _, err := NewModel(nil); !errors.Is(err, ErrSnapshot) {
		t.Fatalf("nil snapshot: %v", err)
	}
	if _, err := NewModel(&graphssl.ModelSnapshot{}); !errors.Is(err, ErrSnapshot) {
		t.Fatalf("empty snapshot: %v", err)
	}
	good := &graphssl.ModelSnapshot{
		X:         [][]float64{{0, 0}, {1, 1}, {2, 2}},
		Y:         []float64{1, 0},
		Labeled:   []int{0, 2},
		Scores:    []float64{1, 0.5, 0},
		Kernel:    graphssl.Uniform,
		Bandwidth: 1,
	}
	bad := *good
	bad.Bandwidth = -1
	if _, err := NewModel(&bad); !errors.Is(err, ErrSnapshot) {
		t.Fatalf("bad bandwidth: %v", err)
	}
	bad = *good
	bad.Scores = bad.Scores[:2]
	if _, err := NewModel(&bad); !errors.Is(err, ErrSnapshot) {
		t.Fatalf("score mismatch: %v", err)
	}
	bad = *good
	bad.Labeled = nil
	if _, err := NewModel(&bad); !errors.Is(err, ErrSnapshot) {
		t.Fatalf("no labeled: %v", err)
	}
	bad = *good
	bad.Labeled = []int{0, 5}
	if _, err := NewModel(&bad); !errors.Is(err, ErrSnapshot) {
		t.Fatalf("labeled out of range: %v", err)
	}
	bad = *good
	bad.KNN = -1
	if _, err := NewModel(&bad); !errors.Is(err, ErrSnapshot) {
		t.Fatalf("negative knn: %v", err)
	}
	if _, err := NewModel(good, WithAnchorSet(AnchorSet(9))); !errors.Is(err, ErrSnapshot) {
		t.Fatalf("bad anchor set: %v", err)
	}

	m, err := NewModel(good)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict([]float64{1}); !errors.Is(err, ErrPoint) {
		t.Fatalf("dim mismatch: %v", err)
	}
	if _, err := m.Predict([]float64{math.NaN(), 0}); !errors.Is(err, ErrPoint) {
		t.Fatalf("NaN point: %v", err)
	}
	if _, err := m.Predict([]float64{50, 50}); !errors.Is(err, ErrIsolated) {
		t.Fatalf("isolated: %v", err)
	}
	v, err := m.Predict([]float64{0.1, 0.1})
	if err != nil || v != 1 {
		t.Fatalf("near anchor 0: %v, %v", v, err)
	}
}

// TestModelPredictBatchMixed checks the bad-point compaction path: good
// points still get exactly the values they would alone, bad points get
// per-point errors.
func TestModelPredictBatchMixed(t *testing.T) {
	x, y, labeled := testData(13, 100, 4, 40)
	snap := fitSnapshot(t, x, y, labeled, graphssl.WithKernel(graphssl.Epanechnikov), graphssl.WithBandwidth(3.0))
	m, err := NewModel(snap, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	qs := [][]float64{
		x[1],
		{math.Inf(1), 0, 0, 0}, // bad
		x[2],
		{0, 0, 0},      // wrong dim
		{200, 0, 0, 0}, // isolated (compact kernel)
		x[3],
	}
	got, errs := m.PredictBatch(qs)
	if errs == nil {
		t.Fatal("expected per-point errors")
	}
	for _, i := range []int{0, 2, 5} {
		if errs[i] != nil {
			t.Fatalf("point %d: %v", i, errs[i])
		}
		want, err := m.Predict(qs[i])
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got[i]) != math.Float64bits(want) {
			t.Fatalf("point %d: %v != %v", i, got[i], want)
		}
	}
	if !errors.Is(errs[1], ErrPoint) || !errors.Is(errs[3], ErrPoint) {
		t.Fatalf("bad points: %v, %v", errs[1], errs[3])
	}
	if !errors.Is(errs[4], ErrIsolated) {
		t.Fatalf("isolated point: %v", errs[4])
	}
}

// TestModelInfoCarriesApproxBound: a model built from an approximate fit
// serves its certified error bound through Info, and exact fits serve
// zero — a consumer can always see the certified quality of the scores
// behind the endpoint.
func TestModelInfoCarriesApproxBound(t *testing.T) {
	rng := randx.New(21)
	n := 2000
	x := make([][]float64, n)
	for i := range x {
		x[i] = []float64{rng.Float64(), rng.Float64()}
	}
	var labeled []int
	var y []float64
	for i := 0; i < n; i += 40 {
		labeled = append(labeled, i)
		y = append(y, math.Sin(4*x[i][0])*math.Cos(3*x[i][1]))
	}
	base := []graphssl.Option{graphssl.WithBandwidth(0.12), graphssl.WithKNN(10)}
	snap := fitSnapshot(t, x, y, labeled, append([]graphssl.Option{graphssl.WithApprox(50)}, base...)...)
	if snap.ApproxBound == 0 {
		t.Skip("approximate answer rejected; nothing to serve")
	}
	m, err := NewModel(snap)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Info().ApproxBound; got != snap.ApproxBound {
		t.Fatalf("Info().ApproxBound = %v, want %v", got, snap.ApproxBound)
	}
	exact := fitSnapshot(t, x, y, labeled, base...)
	me, err := NewModel(exact)
	if err != nil {
		t.Fatal(err)
	}
	if got := me.Info().ApproxBound; got != 0 {
		t.Fatalf("exact fit served ApproxBound = %v, want 0", got)
	}
}
