package serve

import (
	"bytes"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Fleet is a replicated serving tier: n identical Servers behind a
// consistent-hash router, on one HTTP surface.
//
// Writes are leader-coordinated: a fit runs ONCE on the leader (replica 0)
// and the resulting immutable model is published to every replica's
// registry, so the fleet never burns n fits for one model and every replica
// answers from the same model bits. Deletes fan out the same way.
//
// Reads are routed: a predict request is routed by the FNV-1a hash of its
// body over the ring, so identical requests always land on the same replica
// and its prediction cache — cache affinity without any shared cache state.
// Models are immutable and replicated, so every routing choice returns the
// same scores; the ring only decides whose cache warms up.
//
// The fleet serves the same API as a single Server plus GET /v1/fleet, a
// JSON description of the topology. Readiness aggregates: /readyz is 200
// only while every replica is accepting work.
type Fleet struct {
	replicas []*Server
	ring     *Ring
	mux      *http.ServeMux
}

// NewFleet builds a fleet of n freshly created replicas sharing one
// configuration.
func NewFleet(n int, cfg Config) (*Fleet, error) {
	if n < 1 {
		return nil, fmt.Errorf("serve: fleet needs at least one replica, got %d: %w", n, ErrFleet)
	}
	ring, err := NewRing(n, 0)
	if err != nil {
		return nil, err
	}
	f := &Fleet{ring: ring}
	for i := 0; i < n; i++ {
		s := NewServer(cfg)
		// Streaming ingest mutates per-server state a fleet cannot
		// replicate; fleet fits reject "stream": true.
		s.inFleet = true
		f.replicas = append(f.replicas, s)
	}
	leader := f.replicas[0]
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", f.handlePredict)
	mux.HandleFunc("POST /v1/models/{name}", f.handleFit)
	mux.HandleFunc("DELETE /v1/models/{name}", f.handleDelete)
	mux.HandleFunc("GET /v1/models", leader.handleList)
	mux.HandleFunc("GET /v1/models/{name}", leader.handleGet)
	mux.HandleFunc("GET /v1/fleet", f.handleFleet)
	mux.HandleFunc("GET /healthz", leader.handleHealthz)
	mux.HandleFunc("GET /readyz", f.handleReadyz)
	mux.Handle("GET /debug/vars", expvar.Handler())
	f.mux = mux
	return f, nil
}

// Handler returns the HTTP handler to mount.
func (f *Fleet) Handler() http.Handler { return f.mux }

// Len returns the replica count.
func (f *Fleet) Len() int { return len(f.replicas) }

// Replica returns replica i (0 is the leader), for direct registry access
// and tests.
func (f *Fleet) Replica(i int) *Server { return f.replicas[i] }

// Ring returns the fleet's router.
func (f *Fleet) Ring() *Ring { return f.ring }

// BeginDrain flips every replica to draining; see Server.BeginDrain.
func (f *Fleet) BeginDrain() {
	for _, s := range f.replicas {
		s.BeginDrain()
	}
}

// Close drains and stops every replica; see Server.Close.
func (f *Fleet) Close() {
	for _, s := range f.replicas {
		s.Close()
	}
}

// handleFit fits once on the leader and publishes the model to every
// replica. Registry versions stay aligned across replicas because every
// write goes through the fleet.
func (f *Fleet) handleFit(w http.ResponseWriter, r *http.Request) {
	leader := f.replicas[0]
	name, m, _, start, ok := leader.buildModel(w, r)
	if !ok {
		return
	}
	var lead *Entry
	for i, s := range f.replicas {
		e, err := s.registry.Store(name, m)
		if err != nil {
			fail(w, err)
			return
		}
		if i == 0 {
			lead = e
		}
	}
	setModelVersion(lead.Name, lead.Version)
	writeJSON(w, http.StatusOK, fitResponse{
		Model:   lead.Name,
		Version: lead.Version,
		Info:    m.Info(),
		Seconds: time.Since(start).Seconds(),
	})
}

// handleDelete unpublishes the model from every replica.
func (f *Fleet) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var firstErr error
	deleted := false
	for _, s := range f.replicas {
		if err := s.registry.Delete(name); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		s.budgets.Delete(name)
		deleted = true
	}
	if !deleted {
		fail(w, firstErr)
		return
	}
	clearModelVersion(name)
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

// handlePredict routes the request to the replica owning the body's hash
// and delegates; the body is re-materialized for the replica's decoder.
func (f *Fleet) handlePredict(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, f.replicas[0].cfg.MaxBodyBytes))
	if err != nil {
		fail(w, fmt.Errorf("serve: bad request body: %v: %w", err, ErrPoint))
		return
	}
	i := f.ring.Lookup(body)
	countFleetRoute(i)
	r.Body = io.NopCloser(bytes.NewReader(body))
	f.replicas[i].handlePredict(w, r)
}

// handleReadyz aggregates readiness: ready only when every replica is.
func (f *Fleet) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	for _, s := range f.replicas {
		if s.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ready",
		"replicas": len(f.replicas),
		"models":   f.replicas[0].registry.Len(),
	})
}

// fleetReplica describes one replica in GET /v1/fleet.
type fleetReplica struct {
	Replica  int  `json:"replica"`
	Leader   bool `json:"leader"`
	Models   int  `json:"models"`
	Draining bool `json:"draining"`
}

func (f *Fleet) handleFleet(w http.ResponseWriter, _ *http.Request) {
	reps := make([]fleetReplica, len(f.replicas))
	for i, s := range f.replicas {
		reps[i] = fleetReplica{
			Replica:  i,
			Leader:   i == 0,
			Models:   s.registry.Len(),
			Draining: s.Draining(),
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"replicas": reps,
		"routing":  "consistent-hash(fnv64a(body))",
		"vnodes":   len(f.ring.points),
	})
}
