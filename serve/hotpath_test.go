package serve

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"testing"
	"time"

	graphssl "repro"
)

// TestPredCache covers the cache container itself: exact hits, version and
// point keying, the FIFO bound, and the disabled (nil) form.
func TestPredCache(t *testing.T) {
	c := newPredCache(32) // 2 entries per shard
	p1 := []float64{1.5, -2.25}
	p2 := []float64{1.5, -2.25000001}
	c.put("m", 1, p1, 3.5, 0.25, psOK)

	if v, b, st, ok := c.get("m", 1, p1); !ok || v != 3.5 || b != 0.25 || st != psOK {
		t.Fatalf("hit = %v %v %v %v", v, b, st, ok)
	}
	if _, _, _, ok := c.get("m", 2, p1); ok {
		t.Fatal("stale version hit")
	}
	if _, _, _, ok := c.get("other", 1, p1); ok {
		t.Fatal("wrong model hit")
	}
	if _, _, _, ok := c.get("m", 1, p2); ok {
		t.Fatal("near-miss point hit")
	}
	if _, _, _, ok := c.get("m", 1, p1[:1]); ok {
		t.Fatal("prefix point hit")
	}

	// Isolated outcomes cache too.
	c.put("m", 1, p2, 0, 0, psIsolated)
	if _, _, st, ok := c.get("m", 1, p2); !ok || st != psIsolated {
		t.Fatalf("isolated entry: %v %v", st, ok)
	}

	// The bound holds: insert far more than capacity, size stays capped.
	for i := 0; i < 500; i++ {
		c.put("m", 1, []float64{float64(i), 0}, float64(i), 0, psOK)
	}
	if n := c.len(); n > 32 {
		t.Fatalf("cache grew to %d entries, cap 32", n)
	}

	// Overwrite in place keeps the newest value.
	c.put("m", 3, p1, 1, 0, psOK)
	c.put("m", 3, p1, 2, 0, psOK)
	if v, _, _, ok := c.get("m", 3, p1); !ok || v != 2 {
		t.Fatalf("overwrite: %v %v", v, ok)
	}

	var nilCache *predCache
	if _, _, _, ok := nilCache.get("m", 1, p1); ok {
		t.Fatal("nil cache hit")
	}
	nilCache.put("m", 1, p1, 0, 0, psOK) // must not panic
	if nilCache.len() != 0 {
		t.Fatal("nil cache len")
	}
	if newPredCache(0) != nil || newPredCache(-1) != nil {
		t.Fatal("disabled cache not nil")
	}
}

// TestServerCacheExactness drives the cache through the HTTP path: repeated
// predictions hit the cache and stay bitwise-identical to the first
// (computed) response, hot-swapping the model invalidates by version, and
// the expvar counters move.
func TestServerCacheExactness(t *testing.T) {
	_, ts := testServer(t, Config{})
	x, y, labeled := testData(53, 100, 4, 30)
	fitOverHTTP(t, ts.URL, "c", x, y, labeled, 1.3)

	qs := [][]float64{x[labeled[0]], {0.1, 0.2, 0.3, 0.4}, {1, 0, -1, 0.5}}
	predict := func() predictResponse {
		t.Helper()
		resp, body := postJSON(t, ts.URL+"/v1/predict", predictRequest{Model: "c", Points: qs})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict: %d %s", resp.StatusCode, body)
		}
		var pr predictResponse
		if err := json.Unmarshal(body, &pr); err != nil {
			t.Fatal(err)
		}
		return pr
	}

	hits0, miss0 := srvCacheHits.Value(), srvCacheMisses.Value()
	first := predict()
	if srvCacheMisses.Value()-miss0 != int64(len(qs)) {
		t.Fatalf("cold misses = %d, want %d", srvCacheMisses.Value()-miss0, len(qs))
	}
	second := predict()
	if srvCacheHits.Value()-hits0 != int64(len(qs)) {
		t.Fatalf("warm hits = %d, want %d", srvCacheHits.Value()-hits0, len(qs))
	}
	for i := range first.Scores {
		if math.Float64bits(first.Scores[i]) != math.Float64bits(second.Scores[i]) {
			t.Fatalf("point %d: cached %v != computed %v", i, second.Scores[i], first.Scores[i])
		}
	}

	// Hot swap: the version bump makes every old entry unreachable; the same
	// query misses, recomputes, and (same data, same hyperparameters) agrees.
	fitOverHTTP(t, ts.URL, "c", x, y, labeled, 1.3)
	miss1 := srvCacheMisses.Value()
	third := predict()
	if third.Version != 2 {
		t.Fatalf("version = %d after refit", third.Version)
	}
	if srvCacheMisses.Value()-miss1 != int64(len(qs)) {
		t.Fatalf("post-swap misses = %d, want %d", srvCacheMisses.Value()-miss1, len(qs))
	}
	for i := range first.Scores {
		if math.Float64bits(first.Scores[i]) != math.Float64bits(third.Scores[i]) {
			t.Fatalf("point %d: post-swap %v != %v", i, third.Scores[i], first.Scores[i])
		}
	}

	// Mixed hit/miss requests scatter correctly: one cached point plus one
	// fresh point in a single request.
	mixed := [][]float64{qs[0], {2, 2, 2, 2}}
	resp, body := postJSON(t, ts.URL+"/v1/predict", predictRequest{Model: "c", Points: mixed})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mixed: %d %s", resp.StatusCode, body)
	}
	var pr predictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(pr.Scores[0]) != math.Float64bits(third.Scores[0]) {
		t.Fatalf("mixed point 0: %v != %v", pr.Scores[0], third.Scores[0])
	}
}

// TestServerCacheDeleteRefit pins the stale-cache hazard: predictions cached
// for a model must not be served after DELETE + refit under the same name.
// The registry keeps per-name versions monotonic across deletion, so the
// refit model's cache keys can never collide with the dead model's — a point
// cached for the old "d" must recompute under the new "d" and agree bitwise
// with a from-scratch evaluation of the new labels.
func TestServerCacheDeleteRefit(t *testing.T) {
	_, ts := testServer(t, Config{})
	x, y, labeled := testData(71, 90, 4, 30)
	const h = 1.3

	fitOverHTTP(t, ts.URL, "d", x, y, labeled, h)

	// Query the in-sample unlabeled points so predictions are fully
	// determined by the labels the model was fit on.
	want1, unl, err := graphssl.NadarayaWatson(x, y, labeled, graphssl.WithBandwidth(h))
	if err != nil {
		t.Fatal(err)
	}
	qs := make([][]float64, len(unl))
	for i, u := range unl {
		qs[i] = x[u]
	}
	predict := func() predictResponse {
		t.Helper()
		resp, body := postJSON(t, ts.URL+"/v1/predict", predictRequest{Model: "d", Points: qs})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict: %d %s", resp.StatusCode, body)
		}
		var pr predictResponse
		if err := json.Unmarshal(body, &pr); err != nil {
			t.Fatal(err)
		}
		return pr
	}

	// Populate the cache (first call computes, second hits it).
	predict()
	first := predict()
	for i := range want1 {
		if math.Float64bits(first.Scores[i]) != math.Float64bits(want1[i]) {
			t.Fatalf("point %d: cached %v != baseline %v", i, first.Scores[i], want1[i])
		}
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/models/d", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d", dresp.StatusCode)
	}

	// Refit the same name with inverted labels: same anchors, same query
	// coordinates (so the cache keys match byte-for-byte if versions ever
	// restarted), different predictions.
	y2 := make([]float64, len(y))
	for i := range y {
		y2[i] = 2 - y[i]
	}
	fr := fitOverHTTP(t, ts.URL, "d", x, y2, labeled, h)
	if fr.Version != 2 {
		t.Fatalf("refit after delete: version = %d, want 2 (monotonic)", fr.Version)
	}
	want2, _, err := graphssl.NadarayaWatson(x, y2, labeled, graphssl.WithBandwidth(h))
	if err != nil {
		t.Fatal(err)
	}
	differ := 0
	for i := range want1 {
		if math.Float64bits(want1[i]) != math.Float64bits(want2[i]) {
			differ++
		}
	}
	if differ == 0 {
		t.Fatal("test is toothless: old and new models predict identically")
	}

	third := predict()
	if third.Version != 2 {
		t.Fatalf("post-refit predict version = %d", third.Version)
	}
	for i := range want2 {
		if math.Float64bits(third.Scores[i]) != math.Float64bits(want2[i]) {
			t.Fatalf("point %d: served %v != new model's %v (stale cache from deleted model)",
				i, third.Scores[i], want2[i])
		}
	}
}

// TestServerShedQueue forces the queue-wait estimate over the limit and
// checks the 429 + counter. White-box: the EWMA and depth are seeded
// directly so the test is deterministic.
func TestServerShedQueue(t *testing.T) {
	srv, ts := testServer(t, Config{MaxQueueWait: time.Millisecond, QueueDepth: 1 << 20})
	x, y, labeled := testData(59, 60, 3, 20)
	fitOverHTTP(t, ts.URL, "q", x, y, labeled, 1.2)

	// Seed: 1µs/point EWMA at depth 100000 => 100ms estimated wait >> 1ms.
	srv.batcher.perPointNs.Store(math.Float64bits(1000))
	srv.batcher.depth.Add(100000)
	defer srv.batcher.depth.Add(-100000)

	shed0 := srvShedQueue.Value()
	resp, body := postJSON(t, ts.URL+"/v1/predict", predictRequest{Model: "q", Points: [][]float64{{9, 9, 9}}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded queue: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if srvShedQueue.Value() != shed0+1 {
		t.Fatal("shed_queue counter did not move")
	}

	// A fully cached request bypasses shedding: warm one point with the
	// queue healthy, then re-request it with the queue saturated.
	srv.batcher.depth.Add(-100000)
	warm := [][]float64{x[0]}
	resp, _ = postJSON(t, ts.URL+"/v1/predict", predictRequest{Model: "q", Points: warm})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup: %d", resp.StatusCode)
	}
	srv.batcher.depth.Add(100000)
	resp, body = postJSON(t, ts.URL+"/v1/predict", predictRequest{Model: "q", Points: warm})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached request shed: %d %s", resp.StatusCode, body)
	}
}

// TestServerShedBudget checks the per-model point budget: one request with
// more uncached points than the model's budget is rejected, cached points
// do not count against it, and other models are unaffected.
func TestServerShedBudget(t *testing.T) {
	_, ts := testServer(t, Config{ModelBudget: 2, NoBatch: true})
	x, y, labeled := testData(61, 60, 3, 20)
	fitOverHTTP(t, ts.URL, "b1", x, y, labeled, 1.2)
	fitOverHTTP(t, ts.URL, "b2", x, y, labeled, 1.2)

	big := [][]float64{{1, 1, 1}, {2, 2, 2}, {3, 3, 3}}
	shed0 := srvShedBudget.Value()
	resp, body := postJSON(t, ts.URL+"/v1/predict", predictRequest{Model: "b1", Points: big})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over budget: %d %s", resp.StatusCode, body)
	}
	if srvShedBudget.Value() != shed0+1 {
		t.Fatal("shed_budget counter did not move")
	}

	// Within budget succeeds, fills the cache, and releases its points.
	resp, _ = postJSON(t, ts.URL+"/v1/predict", predictRequest{Model: "b1", Points: big[:2]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("within budget: %d", resp.StatusCode)
	}
	// The same 3 points now carry 2 cached + 1 uncached: under budget.
	resp, _ = postJSON(t, ts.URL+"/v1/predict", predictRequest{Model: "b1", Points: big})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached points counted against budget: %d", resp.StatusCode)
	}
	// Budgets are per model.
	resp, _ = postJSON(t, ts.URL+"/v1/predict", predictRequest{Model: "b2", Points: big[:2]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("other model: %d", resp.StatusCode)
	}
}

// TestServerTopM exercises top-m truncation end to end: the fit response
// reports the knn lookup path, predictions carry a nonzero residual bound,
// and combining top_m with a knn fit is rejected.
func TestServerTopM(t *testing.T) {
	_, ts := testServer(t, Config{})
	x, y, labeled := testData(67, 120, 4, 60)

	resp, body := postJSON(t, ts.URL+"/v1/models/t", fitRequest{
		X: x, Y: y, Labeled: labeled, Bandwidth: 1.5, TopM: 7,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fit top_m: %d %s", resp.StatusCode, body)
	}
	var fr fitResponse
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Info.TopM != 7 || fr.Info.Pruning != "knn" {
		t.Fatalf("info: %+v", fr.Info)
	}

	resp, body = postJSON(t, ts.URL+"/v1/predict", predictRequest{Model: "t", Points: [][]float64{{0.3, -0.2, 0.8, 0.1}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d %s", resp.StatusCode, body)
	}
	var pr predictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if !(pr.ResidualBound > 0 && pr.ResidualBound < 1) {
		t.Fatalf("residual_bound = %v, want (0,1)", pr.ResidualBound)
	}
	prunedBefore := srvAnchorsPruned.Value()
	if prunedBefore <= 0 {
		t.Fatal("anchors_pruned counter never moved")
	}

	// Untruncated models report no residual bound on the wire.
	fitOverHTTP(t, ts.URL, "exact", x, y, labeled, 1.5)
	resp, body = postJSON(t, ts.URL+"/v1/predict", predictRequest{Model: "exact", Points: [][]float64{{0.3, -0.2, 0.8, 0.1}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exact predict: %d", resp.StatusCode)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	if _, present := raw["residual_bound"]; present {
		t.Fatalf("exact model leaked residual_bound: %s", body)
	}

	// top_m on a knn-sparsified fit is contradictory.
	resp, _ = postJSON(t, ts.URL+"/v1/models/bad", fitRequest{
		X: x, Y: y, Labeled: labeled, Bandwidth: 1.5, KNN: 5, TopM: 7,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("knn+top_m fit: %d", resp.StatusCode)
	}
}

// TestBatcherAdaptiveFlush pins the lone-client latency fix: with a long
// flush window, a solitary request must still complete promptly because the
// dispatcher flushes as soon as the queue is idle and nothing else is
// admitted — it must not sit out the delay window.
func TestBatcherAdaptiveFlush(t *testing.T) {
	m := batchModel(t)
	b := NewBatcher(64, 200*time.Millisecond, 1024, 1)
	defer b.Close()
	qs := [][]float64{make([]float64, m.Dim())}
	// Warm one round trip, then time.
	res, err := b.Do(context.Background(), m, qs)
	if err != nil {
		t.Fatal(err)
	}
	res.Release()
	start := time.Now()
	for i := 0; i < 5; i++ {
		res, err := b.Do(context.Background(), m, qs)
		if err != nil {
			t.Fatal(err)
		}
		res.Release()
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("5 solo requests took %v with a 200ms window — adaptive flush broken", elapsed)
	}
	if b.EstimatedWait() != 0 {
		t.Fatalf("EstimatedWait = %v with an empty queue", b.EstimatedWait())
	}
}

// TestZeroAllocServe gates the serving hot path at zero heap allocations
// per operation: the model's batch core and the batcher round trip (run by
// the CI alloc gate).
func TestZeroAllocServe(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are meaningless under the race detector (sync.Pool drops puts)")
	}
	m := batchModel(t)
	qs := make([][]float64, 8)
	for i := range qs {
		qs[i] = make([]float64, m.Dim())
		for j := range qs[i] {
			qs[i][j] = 0.05 * float64(i+j)
		}
	}
	dst := make([]float64, len(qs))
	st := make([]pointStatus, len(qs))
	bounds := make([]float64, len(qs))

	t.Run("predictInto", func(t *testing.T) {
		m.predictInto(dst, st, bounds, qs, 1) // warm the pools
		if n := testing.AllocsPerRun(100, func() {
			m.predictInto(dst, st, bounds, qs, 1)
		}); n != 0 {
			t.Fatalf("predictInto: %v allocs/op", n)
		}
	})

	t.Run("predictSerial", func(t *testing.T) {
		m.predictSerial(dst, st, bounds, qs)
		if n := testing.AllocsPerRun(100, func() {
			m.predictSerial(dst, st, bounds, qs)
		}); n != 0 {
			t.Fatalf("predictSerial: %v allocs/op", n)
		}
	})

	t.Run("batcherDo", func(t *testing.T) {
		b := NewBatcher(64, 100*time.Millisecond, 1024, 1)
		defer b.Close()
		ctx := context.Background()
		res, err := b.Do(ctx, m, qs) // warm job pool + dispatcher buffers
		if err != nil {
			t.Fatal(err)
		}
		res.Release()
		if n := testing.AllocsPerRun(100, func() {
			res, err := b.Do(ctx, m, qs)
			if err != nil {
				t.Fatal(err)
			}
			res.Release()
		}); n != 0 {
			t.Fatalf("batcher Do: %v allocs/op", n)
		}
	})
}

// TestModelPredictBounds checks PredictBatch parity after the bounds
// refactor: public batch results equal the serial path bit for bit, and
// malformed points still compact correctly around good ones.
func TestModelPredictBounds(t *testing.T) {
	x, y, labeled := testData(71, 90, 4, 40)
	snap := fitSnapshot(t, x, y, labeled, graphssl.WithBandwidth(1.4))
	m, err := NewModel(snap)
	if err != nil {
		t.Fatal(err)
	}
	qs := [][]float64{
		x[labeled[0]],
		{math.NaN(), 0, 0, 0},
		{0.5, -0.5, 0.25, 0},
		{0, 0}, // bad dim
		{1, 1, 1, 1},
	}
	dst := make([]float64, len(qs))
	st := make([]pointStatus, len(qs))
	bounds := make([]float64, len(qs))
	m.predictInto(dst, st, bounds, qs, 1)
	if st[1] != psBadPoint || st[3] != psBadPoint {
		t.Fatalf("statuses: %v", st)
	}
	sdst := make([]float64, len(qs))
	sst := make([]pointStatus, len(qs))
	sbounds := make([]float64, len(qs))
	m.predictSerial(sdst, sst, sbounds, qs)
	for i := range qs {
		if st[i] != sst[i] {
			t.Fatalf("point %d: batch status %d != serial %d", i, st[i], sst[i])
		}
		if math.Float64bits(dst[i]) != math.Float64bits(sdst[i]) {
			t.Fatalf("point %d: batch %v != serial %v", i, dst[i], sdst[i])
		}
		if bounds[i] != sbounds[i] {
			t.Fatalf("point %d: batch bound %v != serial %v", i, bounds[i], sbounds[i])
		}
		if bounds[i] != 0 {
			t.Fatalf("point %d: exact model reported bound %v", i, bounds[i])
		}
	}
}
