package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// testFleet boots an n-replica fleet over httptest.
func testFleet(t *testing.T, n int, cfg Config) (*Fleet, *httptest.Server) {
	t.Helper()
	f, err := NewFleet(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(f.Handler())
	t.Cleanup(func() {
		ts.Close()
		f.Close()
	})
	return f, ts
}

func TestRingDeterministicAndCovering(t *testing.T) {
	if _, err := NewRing(0, 0); err == nil {
		t.Fatal("zero replicas must error")
	}
	ring, err := NewRing(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ring.Replicas() != 3 {
		t.Fatalf("replicas = %d", ring.Replicas())
	}
	// Deterministic: a rebuilt ring routes every key identically.
	ring2, err := NewRing(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	hits := make([]int, 3)
	for i := 0; i < 1000; i++ {
		key := []byte(fmt.Sprintf("request-body-%d", i))
		r1, r2 := ring.Lookup(key), ring2.Lookup(key)
		if r1 != r2 {
			t.Fatalf("key %d routes to %d and %d on identical rings", i, r1, r2)
		}
		if rs := ring.LookupString(fmt.Sprintf("request-body-%d", i)); rs != r1 {
			t.Fatalf("key %d: LookupString %d != Lookup %d", i, rs, r1)
		}
		if r1 < 0 || r1 >= 3 {
			t.Fatalf("route %d out of range", r1)
		}
		hits[r1]++
	}
	// Coverage and rough balance: every replica owns a real share.
	for i, h := range hits {
		if h < 100 {
			t.Fatalf("replica %d owns only %d/1000 keys: %v", i, h, hits)
		}
	}
}

// TestFleetFitReplicatesOnce proves the leader-fit-once contract: one HTTP
// fit populates every replica's registry with the SAME immutable model at
// the same version.
func TestFleetFitReplicatesOnce(t *testing.T) {
	f, ts := testFleet(t, 3, Config{Workers: 1})
	x, y, labeled := testData(71, 60, 3, 20)
	fr := fitOverHTTP(t, ts.URL, "rep", x, y, labeled, 0.8)
	if fr.Version != 1 {
		t.Fatalf("version = %d", fr.Version)
	}
	lead, err := f.Replica(0).Registry().Load("rep")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < f.Len(); i++ {
		e, err := f.Replica(i).Registry().Load("rep")
		if err != nil {
			t.Fatalf("replica %d missing the model: %v", i, err)
		}
		if e.Model != lead.Model {
			t.Fatalf("replica %d holds a different model instance", i)
		}
		if e.Version != lead.Version {
			t.Fatalf("replica %d at version %d, leader at %d", i, e.Version, lead.Version)
		}
	}
	// Refit bumps every replica in lockstep.
	if fr2 := fitOverHTTP(t, ts.URL, "rep", x, y, labeled, 0.8); fr2.Version != 2 {
		t.Fatalf("refit version = %d", fr2.Version)
	}
	for i := 0; i < f.Len(); i++ {
		if e, _ := f.Replica(i).Registry().Load("rep"); e == nil || e.Version != 2 {
			t.Fatalf("replica %d not at version 2", i)
		}
	}
}

// TestFleetPredictRoutesAndAgrees sends predictions through the router:
// every response must carry the same scores as a single server (the models
// are replicated bits), and identical bodies must hit one replica's cache.
func TestFleetPredictRoutesAndAgrees(t *testing.T) {
	f, ts := testFleet(t, 3, Config{Workers: 1})
	x, y, labeled := testData(73, 80, 3, 30)
	fitOverHTTP(t, ts.URL, "m", x, y, labeled, 0.9)

	srv, single := testServer(t, Config{Workers: 1})
	_ = srv
	fitOverHTTP(t, single.URL, "m", x, y, labeled, 0.9)

	q := [][]float64{{0.1, -0.2, 0.3}, {-1, 0.5, 0}, {2, 0, -1}}
	var fleetResp, singleResp predictResponse
	resp, body := postJSON(t, ts.URL+"/v1/predict", predictRequest{Model: "m", Points: q})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet predict: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &fleetResp); err != nil {
		t.Fatal(err)
	}
	resp, body = postJSON(t, single.URL+"/v1/predict", predictRequest{Model: "m", Points: q})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single predict: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &singleResp); err != nil {
		t.Fatal(err)
	}
	if len(fleetResp.Scores) != len(q) {
		t.Fatalf("fleet scores: %d", len(fleetResp.Scores))
	}
	for i := range q {
		if fleetResp.Scores[i] != singleResp.Scores[i] {
			t.Fatalf("fleet and single server disagree at %d: %v vs %v", i, fleetResp.Scores[i], singleResp.Scores[i])
		}
	}
	// Identical bodies route identically (cache affinity): re-sending the
	// request is answered from the owning replica's cache.
	buf, err := json.Marshal(predictRequest{Model: "m", Points: q})
	if err != nil {
		t.Fatal(err)
	}
	owner := f.Ring().Lookup(buf)
	before := cacheLen(f.Replica(owner))
	if before == 0 {
		t.Fatal("owning replica's cache is cold after the first request")
	}
	for i := 0; i < f.Len(); i++ {
		if i != owner && cacheLen(f.Replica(i)) != 0 {
			t.Fatalf("replica %d warmed its cache for a body it does not own", i)
		}
	}
}

// cacheLen counts live prediction-cache entries on a server.
func cacheLen(s *Server) int {
	if s.cache == nil {
		return 0
	}
	n := 0
	for i := range s.cache.shards {
		sh := &s.cache.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// TestFleetDeleteFansOut removes a model from every replica.
func TestFleetDeleteFansOut(t *testing.T) {
	f, ts := testFleet(t, 3, Config{Workers: 1})
	x, y, labeled := testData(75, 50, 3, 18)
	fitOverHTTP(t, ts.URL, "gone", x, y, labeled, 0.8)
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/models/gone", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	for i := 0; i < f.Len(); i++ {
		if _, err := f.Replica(i).Registry().Load("gone"); err == nil {
			t.Fatalf("replica %d still serves the deleted model", i)
		}
	}
	// Deleting again is a clean 404.
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete: %d", resp2.StatusCode)
	}
}

// TestFleetReadyzAggregates flips one replica to draining: the fleet must
// stop reporting ready.
func TestFleetReadyzAggregates(t *testing.T) {
	f, ts := testFleet(t, 3, Config{Workers: 1})
	resp, _ := getJSON(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh fleet readyz: %d", resp.StatusCode)
	}
	resp, body := getJSON(t, ts.URL+"/v1/fleet")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet topology: %d", resp.StatusCode)
	}
	var topo struct {
		Replicas []fleetReplica `json:"replicas"`
		Vnodes   int            `json:"vnodes"`
	}
	if err := json.Unmarshal(body, &topo); err != nil {
		t.Fatal(err)
	}
	if len(topo.Replicas) != 3 || !topo.Replicas[0].Leader || topo.Replicas[1].Leader {
		t.Fatalf("topology wrong: %+v", topo)
	}
	if topo.Vnodes != 3*defaultVnodes {
		t.Fatalf("vnodes = %d", topo.Vnodes)
	}
	f.Replica(2).BeginDrain()
	resp, _ = getJSON(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining fleet readyz: %d", resp.StatusCode)
	}
	// A draining replica also rejects fleet fits (the leader is fine, but
	// publication must not silently skip a replica — drain first).
	x, y, labeled := testData(77, 40, 3, 14)
	f.Replica(0).BeginDrain()
	resp2, _ := postJSON(t, ts.URL+"/v1/models/late", fitRequest{X: x, Y: y, Labeled: labeled, Bandwidth: 0.8})
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("fit on draining fleet: %d", resp2.StatusCode)
	}
}

func TestNewFleetValidation(t *testing.T) {
	if _, err := NewFleet(0, Config{}); err == nil {
		t.Fatal("zero replicas must error")
	}
}
