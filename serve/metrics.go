package serve

import (
	"expvar"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Serving metrics, published under the repo-wide "graphssl." expvar
// namespace (see report.go at the root) and served by the HTTP server at
// /debug/vars. Registration happens at package init, once per process, so
// multiple servers or tests in one binary share the counters instead of
// panicking on duplicate names.
var (
	srvRequests      = expvar.NewInt("graphssl.serve.requests_total")
	srvPoints        = expvar.NewInt("graphssl.serve.points_total")
	srvErrors        = expvar.NewInt("graphssl.serve.errors_total")
	srvRejected      = expvar.NewInt("graphssl.serve.rejected_total")
	srvBatches       = expvar.NewInt("graphssl.serve.batches_total")
	srvBatchedPoints = expvar.NewInt("graphssl.serve.batched_points_total")
	srvCacheHits     = expvar.NewInt("graphssl.serve.cache_hits")
	srvCacheMisses   = expvar.NewInt("graphssl.serve.cache_misses")
	srvShedQueue     = expvar.NewInt("graphssl.serve.shed_queue")
	srvShedBudget    = expvar.NewInt("graphssl.serve.shed_budget")
	srvAnchorsPruned = expvar.NewInt("graphssl.serve.anchors_pruned")
	srvModelVersion  = expvar.NewMap("graphssl.serve.model_version")
	srvFleetRoutes   = expvar.NewMap("graphssl.serve.fleet_routes")

	// liveBatchers tracks every open Batcher so queue depth can be
	// reported as a live gauge.
	liveBatchers sync.Map // *Batcher -> struct{}

	qpsWin slidingRate
	latWin latencyRing
)

func init() {
	expvar.Publish("graphssl.serve.qps", expvar.Func(func() any { return qpsWin.rate(time.Now()) }))
	expvar.Publish("graphssl.serve.latency_us", expvar.Func(func() any {
		p50, p99 := latWin.quantiles()
		return map[string]float64{"p50": p50, "p99": p99}
	}))
	expvar.Publish("graphssl.serve.queue_depth", expvar.Func(func() any {
		var total int64
		liveBatchers.Range(func(k, _ any) bool {
			total += k.(*Batcher).Depth()
			return true
		})
		return total
	}))
	expvar.Publish("graphssl.serve.batch_occupancy", expvar.Func(func() any {
		b, p := srvBatches.Value(), srvBatchedPoints.Value()
		if b == 0 {
			return 0.0
		}
		return float64(p) / float64(b)
	}))
}

// countRequest records one predict request carrying n points, and its
// latency.
func countRequest(n int, d time.Duration) {
	srvRequests.Add(1)
	srvPoints.Add(int64(n))
	qpsWin.add(time.Now(), 1)
	latWin.observe(float64(d.Microseconds()))
}

// countError records one failed request.
func countError() { srvErrors.Add(1) }

// countRejected records one request turned away by admission control.
func countRejected() { srvRejected.Add(1) }

// countBatch records one dispatched batch of jobs carrying points in total.
func countBatch(jobs, points int) {
	srvBatches.Add(1)
	srvBatchedPoints.Add(int64(points))
	_ = jobs
}

// countCache records the cache outcome split of one predict request.
func countCache(hits, misses int) {
	if hits > 0 {
		srvCacheHits.Add(int64(hits))
	}
	if misses > 0 {
		srvCacheMisses.Add(int64(misses))
	}
}

// countShedQueue records one request shed by the queue-wait estimate.
func countShedQueue() { srvShedQueue.Add(1) }

// countShedBudget records one request shed by a per-model point budget.
func countShedBudget() { srvShedBudget.Add(1) }

// countPruned records anchors skipped without evaluation by the spatial
// index or top-m truncation.
func countPruned(n int64) {
	if n > 0 {
		srvAnchorsPruned.Add(n)
	}
}

// countFleetRoute records one predict request routed to a fleet replica.
func countFleetRoute(replica int) {
	srvFleetRoutes.Add(fmt.Sprintf("replica-%d", replica), 1)
}

// setModelVersion publishes the current version of a named model.
func setModelVersion(name string, version int64) {
	v := new(expvar.Int)
	v.Set(version)
	srvModelVersion.Set(name, v)
}

// clearModelVersion removes a deleted model from the version map.
func clearModelVersion(name string) {
	srvModelVersion.Delete(name)
}

// rateBuckets is the sliding-window width, in one-second buckets.
const rateBuckets = 8

// slidingRate is a per-second sliding-window counter: adds land in the
// bucket of their wall-clock second, rate averages the previous (complete)
// seconds of the window.
type slidingRate struct {
	mu      sync.Mutex
	counts  [rateBuckets]int64
	seconds [rateBuckets]int64
}

func (s *slidingRate) add(now time.Time, n int64) {
	sec := now.Unix()
	i := sec % rateBuckets
	s.mu.Lock()
	if s.seconds[i] != sec {
		s.seconds[i] = sec
		s.counts[i] = 0
	}
	s.counts[i] += n
	s.mu.Unlock()
}

func (s *slidingRate) rate(now time.Time) float64 {
	sec := now.Unix()
	var total int64
	s.mu.Lock()
	for i := range s.counts {
		if age := sec - s.seconds[i]; age >= 1 && age < rateBuckets {
			total += s.counts[i]
		}
	}
	s.mu.Unlock()
	return float64(total) / float64(rateBuckets-1)
}

// latencySamples is the quantile ring size.
const latencySamples = 1024

// latencyRing keeps the last latencySamples request latencies (µs) for
// streaming p50/p99 estimates.
type latencyRing struct {
	mu  sync.Mutex
	buf [latencySamples]float64
	n   int // total observations (saturates the ring at latencySamples)
	idx int
}

func (l *latencyRing) observe(us float64) {
	l.mu.Lock()
	l.buf[l.idx] = us
	l.idx = (l.idx + 1) % latencySamples
	if l.n < latencySamples {
		l.n++
	}
	l.mu.Unlock()
}

func (l *latencyRing) quantiles() (p50, p99 float64) {
	l.mu.Lock()
	n := l.n
	tmp := make([]float64, n)
	copy(tmp, l.buf[:n])
	l.mu.Unlock()
	if n == 0 {
		return 0, 0
	}
	sort.Float64s(tmp)
	q := func(p float64) float64 {
		i := int(p * float64(n-1))
		return tmp[i]
	}
	return q(0.50), q(0.99)
}
