// Package serve is the model-serving subsystem: it freezes fitted
// graph-SSL models into immutable snapshots with an inductive out-of-sample
// Predict, keeps them in a concurrency-safe registry with atomic hot-swap,
// and exposes them over an HTTP JSON API with request-coalescing
// micro-batching, admission control, and graceful drain.
//
// The inductive extension is the Nadaraya–Watson form of paper Eq. 6,
//
//	f(x*) = Σ_j K_h(x*, X_j) f_j / Σ_j K_h(x*, X_j),
//
// over a frozen anchor set. Theorem II.1 justifies it: the hard-criterion
// solution converges to exactly this estimator over the labeled points, so
// extending a fit beyond its training set with the same kernel and
// bandwidth is consistent whenever the transductive fit is. By default the
// anchors are the labeled points with their fitted scores (under the hard
// criterion, exactly the observed responses), which makes Predict at an
// in-sample unlabeled point bitwise-identical to the NadarayaWatson
// baseline on a default-built graph. AnchorAll instead anchors on every
// training point with its fitted score — the Delalleau-style induction that
// also exploits the unlabeled data's fitted structure.
//
// Concurrency model: a Model is immutable and safe for unbounded concurrent
// readers. The Registry publishes a copy-on-write map through an atomic
// pointer, so lookups on the request path never take a lock and Swap
// replaces a model under traffic with zero downtime. The Batcher coalesces
// concurrent predict requests into tiled batch evaluations — the cache- and
// SIMD-level batching win — behind a bounded queue whose overflow surfaces
// as HTTP 429.
package serve

import "errors"

var (
	// ErrSnapshot is returned for invalid or incoherent model snapshots.
	ErrSnapshot = errors.New("serve: invalid model snapshot")
	// ErrPoint is returned for malformed query points (wrong dimension or
	// non-finite coordinates).
	ErrPoint = errors.New("serve: invalid query point")
	// ErrIsolated is returned when a query point has zero similarity mass
	// to every anchor, leaving the estimator undefined there. Enlarging
	// the bandwidth usually fixes it.
	ErrIsolated = errors.New("serve: query point isolated from all anchors")
	// ErrName is returned for invalid model names.
	ErrName = errors.New("serve: invalid model name")
	// ErrNotFound is returned when a named model is not in the registry.
	ErrNotFound = errors.New("serve: model not found")
	// ErrOverloaded is returned when the batcher's admission queue is
	// full; callers should retry after backing off (HTTP 429).
	ErrOverloaded = errors.New("serve: prediction queue full")
	// ErrDraining is returned for work submitted after shutdown began.
	ErrDraining = errors.New("serve: server draining")
	// ErrFleet is returned for invalid fleet or ring configuration.
	ErrFleet = errors.New("serve: invalid fleet configuration")
)
