package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Entry is one published model: a name, a monotonically increasing version
// (bumped on every Store under the same name), and the immutable model.
type Entry struct {
	Name    string
	Version int64
	Model   *Model
}

// Registry maps names to models with atomic hot-swap semantics: Store
// publishes a new model under a name without disturbing in-flight requests
// against the old one (which keep their *Model and finish on it), and Load
// on the request path is a single atomic pointer read — no locks, no
// contention with writers. Internally the registry is copy-on-write: writers
// serialize on a mutex, build a fresh map, and publish it atomically.
//
// Versions are monotonic per name for the registry's lifetime, surviving
// Delete: re-storing a deleted name continues from the highest version ever
// assigned to it, never back at 1. Anything keyed on (name, version) — the
// server's prediction cache in particular — therefore can never confuse a
// new model with a same-named predecessor.
//
// The zero Registry is ready to use.
type Registry struct {
	mu   sync.Mutex // serializes writers and guards last
	cur  atomic.Pointer[map[string]*Entry]
	last map[string]int64 // highest version ever assigned per name
}

// maxNameLen bounds model names (they appear in URLs and metrics).
const maxNameLen = 128

// validName reports whether a model name is acceptable: non-empty, at most
// maxNameLen bytes, drawn from [A-Za-z0-9._-], not starting with a dot.
func validName(name string) bool {
	if name == "" || len(name) > maxNameLen || name[0] == '.' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// snapshot returns the current published map (possibly nil).
func (r *Registry) snapshot() map[string]*Entry {
	if m := r.cur.Load(); m != nil {
		return *m
	}
	return nil
}

// Load returns the entry currently published under name. It is safe to call
// from any number of goroutines concurrently with Store/Delete and never
// blocks on writers.
func (r *Registry) Load(name string) (*Entry, error) {
	if e, ok := r.snapshot()[name]; ok {
		return e, nil
	}
	return nil, fmt.Errorf("serve: model %q: %w", name, ErrNotFound)
}

// Store publishes model under name, replacing any previous model atomically
// (hot swap: concurrent Loads see either the old entry or the new one,
// never a torn state). It returns the published entry; its Version is 1 for
// a never-before-seen name and highest-ever+1 otherwise — including after a
// Delete, so a (name, version) pair uniquely identifies one stored model for
// the registry's lifetime.
func (r *Registry) Store(name string, m *Model) (*Entry, error) {
	if !validName(name) {
		return nil, fmt.Errorf("serve: model name %q: %w", name, ErrName)
	}
	if m == nil {
		return nil, fmt.Errorf("serve: nil model for %q: %w", name, ErrSnapshot)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.snapshot()
	next := make(map[string]*Entry, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	if r.last == nil {
		r.last = make(map[string]int64)
	}
	version := r.last[name] + 1
	r.last[name] = version
	e := &Entry{Name: name, Version: version, Model: m}
	next[name] = e
	r.cur.Store(&next)
	return e, nil
}

// Delete removes the model published under name. In-flight requests that
// already loaded the entry finish normally. The name's version watermark is
// retained, so a later Store under the same name continues the sequence
// instead of restarting at 1.
func (r *Registry) Delete(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.snapshot()
	if _, ok := old[name]; !ok {
		return fmt.Errorf("serve: model %q: %w", name, ErrNotFound)
	}
	next := make(map[string]*Entry, len(old))
	for k, v := range old {
		if k != name {
			next[k] = v
		}
	}
	r.cur.Store(&next)
	return nil
}

// Entries returns the published entries sorted by name.
func (r *Registry) Entries() []*Entry {
	cur := r.snapshot()
	out := make([]*Entry, 0, len(cur))
	for _, e := range cur {
		out = append(out, e)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// Len returns the number of published models.
func (r *Registry) Len() int { return len(r.snapshot()) }
