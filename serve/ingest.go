package serve

import (
	"expvar"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"repro/stream"
)

// Streaming ingest: a model fitted with "stream": true keeps a live
// stream.Ingestor behind the served snapshot. POST /v1/ingest enqueues
// labeled (or unlabeled) points; a single background worker per model
// drains the queue in batches, refreshes the transductive solution
// through the incremental ladder, and rolls the served model forward —
// via Model.ApplyDelta when the new labels are purely appendable, via a
// full snapshot republish otherwise. Every roll-forward goes through
// Registry.Store, so the version bumps and cached predictions of the
// old model can never be confused with the new one.
//
// Ingest is a single-server feature: a Fleet replicates immutable
// models from its leader and has no channel for continuous deltas, so
// fleet fits reject "stream": true.

// Ingest metrics, alongside the serving counters in metrics.go.
var (
	ingPoints    = expvar.NewInt("graphssl.serve.ingest.points_total")
	ingRejected  = expvar.NewInt("graphssl.serve.ingest.rejected_total")
	ingErrors    = expvar.NewInt("graphssl.serve.ingest.errors_total")
	ingDeltaRoll = expvar.NewInt("graphssl.serve.ingest.delta_rollforwards")
	ingFullRoll  = expvar.NewInt("graphssl.serve.ingest.full_rollforwards")

	stalenessWin latencyRing
)

func init() {
	expvar.Publish("graphssl.serve.ingest.staleness_us", expvar.Func(func() any {
		p50, p99 := stalenessWin.quantiles()
		return map[string]float64{"p50": p50, "p99": p99}
	}))
}

// ingestJob is one enqueued ingest request: points with aligned
// responses (nil y = unlabeled), stamped on arrival so the publish loop
// can measure label-to-servable staleness.
type ingestJob struct {
	pts     [][]float64
	y       []float64
	arrival time.Time
}

// ingestState is the mutable half of a streaming model: the ingestor
// (owned exclusively by the worker goroutine), the bounded queue, and
// the in-flight point count that backs admission control.
type ingestState struct {
	name    string
	ing     *stream.Ingestor
	ch      chan ingestJob
	pending atomic.Int64 // points admitted but not yet applied
	stop    chan struct{}
	done    chan struct{}
	closed  atomic.Bool
}

func newIngestState(name string, ing *stream.Ingestor, queue int) *ingestState {
	return &ingestState{
		name: name,
		ing:  ing,
		ch:   make(chan ingestJob, queue),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// close stops the worker; safe to call more than once. Does not wait.
func (st *ingestState) close() {
	if st.closed.CompareAndSwap(false, true) {
		close(st.stop)
	}
}

// ingestStateFor returns the ingest state of a streaming model, nil for
// batch-fitted models.
func (s *Server) ingestStateFor(name string) *ingestState {
	if v, ok := s.ingests.Load(name); ok {
		return v.(*ingestState)
	}
	return nil
}

// registerIngest installs the state for a (re)fitted streaming model,
// stopping any predecessor's worker, and starts the new worker.
func (s *Server) registerIngest(st *ingestState) {
	if old, ok := s.ingests.Load(st.name); ok {
		old.(*ingestState).close()
	}
	s.ingests.Store(st.name, st)
	go s.runIngest(st)
}

// dropIngest stops and removes a model's ingest state, if any.
func (s *Server) dropIngest(name string) {
	if v, ok := s.ingests.LoadAndDelete(name); ok {
		v.(*ingestState).close()
	}
}

// closeIngests stops every ingest worker and waits for them to exit.
func (s *Server) closeIngests() {
	var states []*ingestState
	s.ingests.Range(func(_, v any) bool {
		states = append(states, v.(*ingestState))
		return true
	})
	for _, st := range states {
		st.close()
	}
	for _, st := range states {
		<-st.done
	}
}

// runIngest is the per-model worker: block for work, drain a bounded
// batch, apply and publish. Exactly one goroutine per state owns the
// ingestor, so the (deliberately unsynchronized) Ingestor never sees
// concurrent calls.
func (s *Server) runIngest(st *ingestState) {
	defer close(st.done)
	jobs := make([]ingestJob, 0, s.cfg.IngestBatch)
	for {
		jobs = jobs[:0]
		select {
		case j := <-st.ch:
			jobs = append(jobs, j)
		case <-st.stop:
			return
		}
		npts := len(jobs[0].pts)
	drain:
		for npts < s.cfg.IngestBatch {
			select {
			case j := <-st.ch:
				jobs = append(jobs, j)
				npts += len(j.pts)
			default:
				break drain
			}
		}
		s.applyIngest(st, jobs)
	}
}

// applyIngest folds one batch of jobs into the ingestor and rolls the
// served model forward. Individual bad points are counted and skipped;
// a refresh failure (e.g. an isolated unlabeled point) leaves the edits
// pending for a later batch to repair and the served model unchanged.
func (s *Server) applyIngest(st *ingestState, jobs []ingestJob) {
	applied := 0
	for _, j := range jobs {
		for i, p := range j.pts {
			var err error
			if j.y != nil {
				_, err = st.ing.InsertLabeled(p, j.y[i])
			} else {
				_, err = st.ing.Insert(p)
			}
			if err != nil {
				ingErrors.Add(1)
				continue
			}
			applied++
		}
		st.pending.Add(-int64(len(j.pts)))
	}
	ingPoints.Add(int64(applied))
	if _, err := st.ing.Refresh(); err != nil {
		ingErrors.Add(1)
		return
	}

	if err := s.publishIngest(st); err != nil {
		ingErrors.Add(1)
		return
	}
	now := time.Now()
	for _, j := range jobs {
		stalenessWin.observe(float64(now.Sub(j.arrival).Microseconds()))
	}
}

// publishIngest rolls the registry entry forward to the ingestor's
// refreshed state: by appending a snapshot delta when the new labels
// are purely appendable (no relabels, labeled deletes, or compactions
// since the last publish), by a full snapshot republish otherwise. An
// empty delta publishes nothing — unlabeled inserts don't change the
// served anchors.
func (s *Server) publishIngest(st *ingestState) error {
	e, err := s.registry.Load(st.name)
	if err != nil {
		// Model deleted under the worker; nothing to publish onto.
		return err
	}
	if d, ok := st.ing.TakeDelta(); ok {
		if d.Len() == 0 {
			return nil
		}
		m2, err := e.Model.ApplyDelta(d)
		if err == nil {
			e2, err := s.registry.Store(st.name, m2)
			if err != nil {
				return err
			}
			setModelVersion(e2.Name, e2.Version)
			ingDeltaRoll.Add(1)
			return nil
		}
		// Fall through to the full republish.
	}
	snap, err := st.ing.Snapshot()
	if err != nil {
		return err
	}
	m2, err := NewModel(snap, WithWorkers(s.cfg.Workers))
	if err != nil {
		return err
	}
	e2, err := s.registry.Store(st.name, m2)
	if err != nil {
		return err
	}
	st.ing.MarkPublished()
	setModelVersion(e2.Name, e2.Version)
	ingFullRoll.Add(1)
	return nil
}

// ingestRequest is the body of POST /v1/ingest. Y, when present, aligns
// with Points and labels every point; omitted, the points are ingested
// unlabeled (they refine future refreshed scores but add no anchors).
type ingestRequest struct {
	Model  string      `json:"model"`
	Points [][]float64 `json:"points"`
	Y      []float64   `json:"y,omitempty"`
}

// ingestResponse acknowledges enqueued work. Pending counts points
// admitted but not yet applied, across all requests for the model.
type ingestResponse struct {
	Model    string `json:"model"`
	Accepted int    `json:"accepted"`
	Pending  int64  `json:"pending"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		fail(w, ErrDraining)
		return
	}
	var req ingestRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		fail(w, err)
		return
	}
	n := len(req.Points)
	if n == 0 {
		fail(w, fmt.Errorf("serve: no points: %w", ErrPoint))
		return
	}
	if n > s.cfg.MaxPoints {
		fail(w, fmt.Errorf("serve: %d points exceeds the per-request limit %d: %w", n, s.cfg.MaxPoints, ErrPoint))
		return
	}
	if req.Y != nil && len(req.Y) != n {
		fail(w, fmt.Errorf("serve: %d responses for %d points: %w", len(req.Y), n, ErrPoint))
		return
	}
	if _, err := s.registry.Load(req.Model); err != nil {
		fail(w, err)
		return
	}
	st := s.ingestStateFor(req.Model)
	if st == nil {
		fail(w, fmt.Errorf("serve: model %q was not fitted with \"stream\": true: %w", req.Model, ErrPoint))
		return
	}
	// Backpressure: admission is bounded in points, not requests, so a
	// burst of large bodies cannot grow the in-flight state without
	// limit.
	if st.pending.Add(int64(n)) > int64(s.cfg.IngestQueue) {
		st.pending.Add(-int64(n))
		ingRejected.Add(int64(n))
		fail(w, fmt.Errorf("serve: ingest queue for %q is full: %w", req.Model, ErrOverloaded))
		return
	}
	job := ingestJob{pts: req.Points, y: req.Y, arrival: time.Now()}
	select {
	case st.ch <- job:
	default:
		st.pending.Add(-int64(n))
		ingRejected.Add(int64(n))
		fail(w, fmt.Errorf("serve: ingest queue for %q is full: %w", req.Model, ErrOverloaded))
		return
	}
	writeJSON(w, http.StatusAccepted, ingestResponse{
		Model:    req.Model,
		Accepted: n,
		Pending:  st.pending.Load(),
	})
}
