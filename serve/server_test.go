package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	graphssl "repro"
)

// testServer boots a server over httptest. Callers own ts.Close and
// srv.Close ordering (handlers first, batcher second).
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// fitOverHTTP publishes a model via the API and returns the fit response.
func fitOverHTTP(t *testing.T, base, name string, x [][]float64, y []float64, labeled []int, h float64) fitResponse {
	t.Helper()
	resp, body := postJSON(t, base+"/v1/models/"+name, fitRequest{
		X: x, Y: y, Labeled: labeled, Bandwidth: h,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fit: %d %s", resp.StatusCode, body)
	}
	var fr fitResponse
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatal(err)
	}
	return fr
}

// TestServerFitPredictE2E drives the full loop: fit over HTTP, predict
// in-sample points, and check the scores are bitwise-identical to the
// NadarayaWatson baseline computed in-process.
func TestServerFitPredictE2E(t *testing.T) {
	_, ts := testServer(t, Config{})
	x, y, labeled := testData(31, 120, 5, 40)
	const h = 1.4

	fr := fitOverHTTP(t, ts.URL, "demo", x, y, labeled, h)
	if fr.Version != 1 || fr.Info.Dim != 5 || fr.Info.Anchors != 40 || fr.Info.Kernel != "gaussian" {
		t.Fatalf("fit response: %+v", fr)
	}

	want, unl, err := graphssl.NadarayaWatson(x, y, labeled, graphssl.WithBandwidth(h))
	if err != nil {
		t.Fatal(err)
	}
	qs := make([][]float64, len(unl))
	for i, u := range unl {
		qs[i] = x[u]
	}
	resp, body := postJSON(t, ts.URL+"/v1/predict", predictRequest{Model: "demo", Points: qs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d %s", resp.StatusCode, body)
	}
	var pr predictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Model != "demo" || pr.Version != 1 || pr.Errors != nil {
		t.Fatalf("predict response: %+v", pr)
	}
	for i := range want {
		if math.Float64bits(pr.Scores[i]) != math.Float64bits(want[i]) {
			t.Fatalf("point %d: served %v != baseline %v", unl[i], pr.Scores[i], want[i])
		}
	}

	// Refit bumps the version atomically.
	if fr2 := fitOverHTTP(t, ts.URL, "demo", x, y, labeled, h); fr2.Version != 2 {
		t.Fatalf("refit version = %d", fr2.Version)
	}

	// Listing and single-model lookup.
	resp, body = getJSON(t, ts.URL+"/v1/models")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"demo"`)) {
		t.Fatalf("list: %d %s", resp.StatusCode, body)
	}
	resp, _ = getJSON(t, ts.URL+"/v1/models/demo")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get: %d", resp.StatusCode)
	}

	// Delete, then predict must 404.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/models/demo", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d", dresp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/predict", predictRequest{Model: "demo", Points: qs[:1]})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("predict after delete: %d", resp.StatusCode)
	}
}

// TestServerErrorMapping checks every HTTP error translation.
func TestServerErrorMapping(t *testing.T) {
	_, ts := testServer(t, Config{MaxPoints: 4})
	x, y, labeled := testData(37, 60, 3, 20)
	// Compact kernel so isolation is reachable.
	resp, body := postJSON(t, ts.URL+"/v1/models/m", fitRequest{
		X: x, Y: y, Labeled: labeled, Kernel: "epanechnikov", Bandwidth: 3.5,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fit: %d %s", resp.StatusCode, body)
	}

	cases := []struct {
		name string
		do   func() *http.Response
		code int
	}{
		{"bad-json", func() *http.Response {
			r, _ := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader([]byte("{")))
			return r
		}, http.StatusBadRequest},
		{"unknown-field", func() *http.Response {
			r, _ := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader([]byte(`{"nope":1}`)))
			return r
		}, http.StatusBadRequest},
		{"no-points", func() *http.Response {
			r, _ := postJSON(t, ts.URL+"/v1/predict", predictRequest{Model: "m"})
			return r
		}, http.StatusBadRequest},
		{"too-many-points", func() *http.Response {
			r, _ := postJSON(t, ts.URL+"/v1/predict", predictRequest{Model: "m", Points: make([][]float64, 5)})
			return r
		}, http.StatusBadRequest},
		{"unknown-model", func() *http.Response {
			r, _ := postJSON(t, ts.URL+"/v1/predict", predictRequest{Model: "ghost", Points: [][]float64{{0, 0, 0}}})
			return r
		}, http.StatusNotFound},
		{"bad-model-name", func() *http.Response {
			r, _ := postJSON(t, ts.URL+"/v1/models/bad%20name", fitRequest{X: x, Y: y, Labeled: labeled})
			return r
		}, http.StatusBadRequest},
		{"bad-kernel", func() *http.Response {
			r, _ := postJSON(t, ts.URL+"/v1/models/k", fitRequest{X: x, Y: y, Labeled: labeled, Kernel: "nope"})
			return r
		}, http.StatusBadRequest},
		{"bad-anchor-set", func() *http.Response {
			r, _ := postJSON(t, ts.URL+"/v1/models/k", fitRequest{X: x, Y: y, Labeled: labeled, AnchorSet: "some"})
			return r
		}, http.StatusBadRequest},
		{"bad-fit-data", func() *http.Response {
			r, _ := postJSON(t, ts.URL+"/v1/models/k", fitRequest{X: x, Y: y, Labeled: []int{0, 0}})
			return r
		}, http.StatusBadRequest},
		{"get-missing", func() *http.Response {
			r, _ := getJSON(t, ts.URL+"/v1/models/ghost")
			return r
		}, http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := tc.do()
			if resp == nil {
				t.Fatal("no response")
			}
			resp.Body.Close()
			if resp.StatusCode != tc.code {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.code)
			}
		})
	}

	// Per-point failures ride a 200 with an aligned errors array.
	resp, body = postJSON(t, ts.URL+"/v1/predict", predictRequest{
		Model:  "m",
		Points: [][]float64{x[0], {500, 500, 500}, {0, 0}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mixed predict: %d %s", resp.StatusCode, body)
	}
	var pr predictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatalf("%v in %s", err, body)
	}
	if len(pr.Errors) != 3 || pr.Errors[0] != "" || pr.Errors[1] == "" || pr.Errors[2] == "" {
		t.Fatalf("per-point errors: %+v", pr.Errors)
	}
}

// TestServerDrain checks the readiness flip and fit refusal while draining,
// with predictions still served for in-flight traffic.
func TestServerDrain(t *testing.T) {
	srv, ts := testServer(t, Config{})
	x, y, labeled := testData(41, 60, 3, 20)
	fitOverHTTP(t, ts.URL, "m", x, y, labeled, 1.2)

	resp, _ := getJSON(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: %d", resp.StatusCode)
	}
	resp, _ = getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	srv.BeginDrain()
	resp, _ = getJSON(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d", resp.StatusCode)
	}
	resp, _ = getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain: %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/models/late", fitRequest{X: x, Y: y, Labeled: labeled})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("fit during drain: %d", resp.StatusCode)
	}
	// In-flight prediction traffic still completes.
	resp, body := postJSON(t, ts.URL+"/v1/predict", predictRequest{Model: "m", Points: [][]float64{x[0]}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict during drain: %d %s", resp.StatusCode, body)
	}
}

// TestServerConcurrentClients runs 64 concurrent clients against one hot
// model while it is refit mid-stream; every response must be a coherent
// version with the right scores for that version's model. Run under -race
// in CI this is the zero-downtime hot-swap acceptance check.
func TestServerConcurrentClients(t *testing.T) {
	srv, ts := testServer(t, Config{QueueDepth: 1 << 16})
	x, y, labeled := testData(43, 150, 4, 50)
	fitOverHTTP(t, ts.URL, "hot", x, y, labeled, 1.3)

	want, unl, err := graphssl.NadarayaWatson(x, y, labeled, graphssl.WithBandwidth(1.3))
	if err != nil {
		t.Fatal(err)
	}
	byPoint := map[int]float64{}
	for i, u := range unl {
		byPoint[u] = want[i]
	}

	const clients = 64
	const perClient = 6
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				u := unl[(c*perClient+k)%len(unl)]
				resp, body := postJSON(t, ts.URL+"/v1/predict", predictRequest{Model: "hot", Points: [][]float64{x[u]}})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d: %d %s", c, resp.StatusCode, body)
					return
				}
				var pr predictResponse
				if err := json.Unmarshal(body, &pr); err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				// Same data and hyperparameters on every version, so the
				// scores are version-independent and bitwise-checkable.
				if math.Float64bits(pr.Scores[0]) != math.Float64bits(byPoint[u]) {
					t.Errorf("client %d point %d: %v != %v", c, u, pr.Scores[0], byPoint[u])
					return
				}
			}
		}(c)
	}
	// Hot-swap the model under load.
	for i := 0; i < 4; i++ {
		fitOverHTTP(t, ts.URL, "hot", x, y, labeled, 1.3)
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()

	// Metrics surface through the expvar endpoint.
	resp, body := getJSON(t, ts.URL+"/debug/vars")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/vars: %d", resp.StatusCode)
	}
	for _, key := range []string{
		"graphssl.serve.requests_total",
		"graphssl.serve.batches_total",
		"graphssl.serve.qps",
		"graphssl.serve.latency_us",
		"graphssl.serve.model_version",
		"graphssl.serve.queue_depth",
		"graphssl.serve.batch_occupancy",
		"graphssl.serve.cache_hits",
		"graphssl.serve.cache_misses",
		"graphssl.serve.shed_queue",
		"graphssl.serve.shed_budget",
		"graphssl.serve.anchors_pruned",
	} {
		if !bytes.Contains(body, []byte(fmt.Sprintf("%q", key))) {
			t.Fatalf("metric %s missing from /debug/vars", key)
		}
	}
	if srv.Registry().Len() != 1 {
		t.Fatalf("registry len = %d", srv.Registry().Len())
	}
}

// TestServerNoBatch checks the unbatched path used by benchmarking.
func TestServerNoBatch(t *testing.T) {
	_, ts := testServer(t, Config{NoBatch: true})
	x, y, labeled := testData(47, 80, 3, 30)
	fitOverHTTP(t, ts.URL, "nb", x, y, labeled, 1.2)
	want, unl, err := graphssl.NadarayaWatson(x, y, labeled, graphssl.WithBandwidth(1.2))
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/v1/predict", predictRequest{Model: "nb", Points: [][]float64{x[unl[0]]}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d %s", resp.StatusCode, body)
	}
	var pr predictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(pr.Scores[0]) != math.Float64bits(want[0]) {
		t.Fatalf("unbatched: %v != %v", pr.Scores[0], want[0])
	}
}
