package serve

import (
	"math"
	"sync"
)

// predCache is a bounded, sharded, version-keyed prediction cache. Keys are
// (model name, model version, query point bits), so a Registry hot-swap —
// which bumps the version — invalidates every cached prediction of the old
// model implicitly: stale entries can never be returned (the version no
// longer matches) and age out of the bounded shards FIFO-style as new
// traffic fills them. This relies on Registry versions being monotonic per
// name for the process lifetime, including across Delete: a deleted name
// refit later resumes from its highest version ever, so orphaned entries of
// the dead model can never match the new one's key.
//
// Exactness contract: a hit returns the stored score verbatim, and the
// store only ever holds scores the predictor computed for bit-identical
// points under the same model version. Hash collisions are resolved by a
// full key comparison (name, version, and every coordinate's bits), so a
// cached prediction is always bitwise-identical to recomputing it.
//
// Reads take one shard mutex for a map lookup plus a key compare — no
// allocation — so the hot path stays cheap under concurrency; writes (miss
// path only) copy the point once.
type predCache struct {
	shards []cacheShard
	mask   uint64
}

// cacheShards is the shard count (power of two, indexed by hash bits).
const cacheShards = 16

// cacheEntry is one cached per-point prediction.
type cacheEntry struct {
	name    string
	version int64
	pt      []float64
	score   float64
	bound   float64
	st      pointStatus
}

// cacheShard is one FIFO-bounded segment of the cache.
type cacheShard struct {
	mu   sync.Mutex
	m    map[uint64]*cacheEntry
	keys []uint64 // FIFO ring of inserted hashes; len(m) == len(keys) once warm
	head int      // next eviction position once the ring is full
	cap  int
}

// newPredCache builds a cache bounded at totalCap entries; totalCap <= 0
// returns nil (cache disabled — all lookups miss).
func newPredCache(totalCap int) *predCache {
	if totalCap <= 0 {
		return nil
	}
	perShard := (totalCap + cacheShards - 1) / cacheShards
	if perShard < 1 {
		perShard = 1
	}
	c := &predCache{shards: make([]cacheShard, cacheShards), mask: cacheShards - 1}
	for i := range c.shards {
		c.shards[i].m = make(map[uint64]*cacheEntry, perShard)
		c.shards[i].keys = make([]uint64, 0, perShard)
		c.shards[i].cap = perShard
	}
	return c
}

// fnv-1a constants.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// cacheKey hashes (name, version, point bits) with FNV-1a. Distinct bit
// patterns of the same value (-0 vs +0, NaN payloads) key separately, which
// duplicates entries at worst — never returns the wrong score.
func cacheKey(name string, version int64, pt []float64) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= fnvPrime
	}
	v := uint64(version)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	for _, c := range pt {
		b := math.Float64bits(c)
		for i := 0; i < 8; i++ {
			h ^= b & 0xff
			h *= fnvPrime
			b >>= 8
		}
	}
	return h
}

// matches reports whether the entry is exactly the requested key.
func (e *cacheEntry) matches(name string, version int64, pt []float64) bool {
	if e.version != version || e.name != name || len(e.pt) != len(pt) {
		return false
	}
	for i, c := range pt {
		if math.Float64bits(e.pt[i]) != math.Float64bits(c) {
			return false
		}
	}
	return true
}

// get looks up one point's cached prediction. It never allocates.
func (c *predCache) get(name string, version int64, pt []float64) (score, bound float64, st pointStatus, ok bool) {
	if c == nil {
		return 0, 0, psOK, false
	}
	h := cacheKey(name, version, pt)
	sh := &c.shards[h&c.mask]
	sh.mu.Lock()
	e := sh.m[h]
	if e != nil && e.matches(name, version, pt) {
		score, bound, st, ok = e.score, e.bound, e.st, true
	}
	sh.mu.Unlock()
	return score, bound, st, ok
}

// put stores one computed prediction, evicting the shard's oldest insertion
// when full. The point is copied, so callers may reuse their buffers.
func (c *predCache) put(name string, version int64, pt []float64, score, bound float64, st pointStatus) {
	if c == nil {
		return
	}
	h := cacheKey(name, version, pt)
	sh := &c.shards[h&c.mask]
	sh.mu.Lock()
	if e := sh.m[h]; e != nil {
		// Hash already present: overwrite in place (collision loses the
		// older entry; the FIFO ring already tracks this hash).
		e.name, e.version = name, version
		e.pt = append(e.pt[:0], pt...)
		e.score, e.bound, e.st = score, bound, st
		sh.mu.Unlock()
		return
	}
	if len(sh.keys) < sh.cap {
		sh.keys = append(sh.keys, h)
	} else {
		victim := sh.keys[sh.head]
		delete(sh.m, victim)
		sh.keys[sh.head] = h
		sh.head++
		if sh.head == sh.cap {
			sh.head = 0
		}
	}
	sh.m[h] = &cacheEntry{
		name:    name,
		version: version,
		pt:      append([]float64(nil), pt...),
		score:   score,
		bound:   bound,
		st:      st,
	}
	sh.mu.Unlock()
}

// len returns the cached entry count (for tests and diagnostics).
func (c *predCache) len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}
