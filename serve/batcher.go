package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// job is one caller's prediction request, parked until the dispatcher folds
// it into a batch. Results land in dst/st (owned by the job, so a caller
// that abandons the wait cannot race the dispatcher), then done closes.
type job struct {
	m    *Model
	pts  [][]float64
	dst  []float64
	st   []pointStatus
	done chan struct{}
}

// Batcher coalesces concurrent prediction requests into tiled batch
// evaluations. On a single core the win is mechanical, not parallel: the
// batch path streams anchor blocks through the SIMD multi-row distance
// kernel against a cache-resident query tile, which measures ~3x faster per
// point than the per-point scan. Admission is bounded in points, not
// requests: work beyond Capacity is rejected with ErrOverloaded so latency
// stays bounded under overload (HTTP 429 at the server layer).
type Batcher struct {
	maxBatch int           // flush when a batch reaches this many points
	maxDelay time.Duration // flush a partial batch after this long
	capacity int64         // max points admitted (queued + in flight)
	workers  int

	depth atomic.Int64 // admitted points not yet completed

	mu     sync.RWMutex // guards closed and the queue send
	closed bool
	queue  chan *job

	dispatcherDone chan struct{}
}

// NewBatcher starts a batcher flushing at maxBatch points or after maxDelay,
// whichever comes first, and admitting at most capacity points at a time.
// Non-positive arguments select the defaults (64 points, 500µs, 1024
// points). Close must be called to release the dispatcher.
func NewBatcher(maxBatch int, maxDelay time.Duration, capacity, workers int) *Batcher {
	if maxBatch <= 0 {
		maxBatch = 64
	}
	if maxDelay <= 0 {
		maxDelay = 500 * time.Microsecond
	}
	if capacity < maxBatch {
		if capacity > 0 {
			capacity = maxBatch
		} else {
			capacity = 1024
		}
	}
	b := &Batcher{
		maxBatch: maxBatch,
		maxDelay: maxDelay,
		capacity: int64(capacity),
		workers:  workers,
		// Every admitted job carries >= 1 point, so at most capacity jobs
		// are ever queued and a send under the admission budget never
		// blocks.
		queue:          make(chan *job, capacity),
		dispatcherDone: make(chan struct{}),
	}
	liveBatchers.Store(b, struct{}{})
	go b.dispatch()
	return b
}

// Depth returns the number of admitted points not yet completed.
func (b *Batcher) Depth() int64 { return b.depth.Load() }

// admit reserves n points of queue budget, failing without blocking when
// the budget is exhausted.
func (b *Batcher) admit(n int64) bool {
	for {
		cur := b.depth.Load()
		if cur+n > b.capacity {
			return false
		}
		if b.depth.CompareAndSwap(cur, cur+n) {
			return true
		}
	}
}

// Do submits pts for batched prediction against m and waits for the result
// (or ctx). It returns ErrOverloaded when the queue budget is exhausted and
// ErrDraining after Close. On ctx expiry the batch still completes in the
// background; the returned slices are never written after Do returns.
func (b *Batcher) Do(ctx context.Context, m *Model, pts [][]float64) ([]float64, []pointStatus, error) {
	n := int64(len(pts))
	if n == 0 {
		return nil, nil, nil
	}
	if !b.admit(n) {
		return nil, nil, ErrOverloaded
	}
	j := &job{
		m:    m,
		pts:  pts,
		dst:  make([]float64, len(pts)),
		st:   make([]pointStatus, len(pts)),
		done: make(chan struct{}),
	}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		b.depth.Add(-n)
		return nil, nil, ErrDraining
	}
	b.queue <- j
	b.mu.RUnlock()
	select {
	case <-j.done:
		return j.dst, j.st, nil
	case <-ctx.Done():
		return nil, nil, ctx.Err()
	}
}

// Close stops admission and waits for the dispatcher to drain every
// admitted job. It is idempotent.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		<-b.dispatcherDone
		return
	}
	b.closed = true
	close(b.queue)
	b.mu.Unlock()
	<-b.dispatcherDone
	liveBatchers.Delete(b)
}

// dispatch coalesces queued jobs: it blocks for the first job of a batch,
// then keeps folding jobs in until the batch holds maxBatch points or
// maxDelay has passed, then evaluates. A closed queue drains fully before
// the dispatcher exits, so Close never drops admitted work.
func (b *Batcher) dispatch() {
	defer close(b.dispatcherDone)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		j, ok := <-b.queue
		if !ok {
			return
		}
		batch := []*job{j}
		points := len(j.pts)
		timer.Reset(b.maxDelay)
	fill:
		for points < b.maxBatch {
			select {
			case nj, ok := <-b.queue:
				if !ok {
					break fill
				}
				batch = append(batch, nj)
				points += len(nj.pts)
			case <-timer.C:
				break fill
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		b.run(batch, points)
	}
}

// run evaluates one coalesced batch. Jobs against the same model are
// concatenated (in arrival order) into a single tiled evaluation, then
// results scatter back to each job.
func (b *Batcher) run(batch []*job, points int) {
	countBatch(len(batch), points)
	for lo := 0; lo < len(batch); {
		m := batch[lo].m
		hi := lo + 1
		n := len(batch[lo].pts)
		for hi < len(batch) && batch[hi].m == m {
			n += len(batch[hi].pts)
			hi++
		}
		if hi == lo+1 {
			j := batch[lo]
			m.predictInto(j.dst, j.st, j.pts, b.workers)
		} else {
			qs := make([][]float64, 0, n)
			dst := make([]float64, n)
			st := make([]pointStatus, n)
			for _, j := range batch[lo:hi] {
				qs = append(qs, j.pts...)
			}
			m.predictInto(dst, st, qs, b.workers)
			off := 0
			for _, j := range batch[lo:hi] {
				copy(j.dst, dst[off:off+len(j.pts)])
				copy(j.st, st[off:off+len(j.pts)])
				off += len(j.pts)
			}
		}
		lo = hi
	}
	for _, j := range batch {
		close(j.done)
	}
	b.depth.Add(-int64(points))
}
