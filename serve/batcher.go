package serve

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Result state machine: a job starts pending; exactly one of the caller
// (on ctx expiry) or the dispatcher (on completion) wins the CAS away from
// pending, which decides who owns the job afterwards. The loser follows the
// winner's protocol, so pooled jobs are never touched by two goroutines.
const (
	jobPending int32 = iota
	jobAbandoned
	jobDelivered
)

// Result is one Do call's pooled result: scores, per-point statuses, and
// truncation residual bounds, all sized to the submitted points. The slices
// are owned by the batcher's pool — read them, then call Release to recycle
// the buffers (do not retain them past Release). A Result whose Do returned
// an error is never handed to the caller, so only success paths release.
type Result struct {
	m      *Model
	pts    [][]float64
	dst    []float64
	st     []pointStatus
	bounds []float64
	done   chan struct{}
	state  atomic.Int32
	b      *Batcher
}

// Scores returns the per-point estimates (aligned with the submitted
// points).
func (r *Result) Scores() []float64 { return r.dst }

// Status returns the per-point outcomes.
func (r *Result) Status() []pointStatus { return r.st }

// Bounds returns the per-point truncation residual-mass bounds (0 = exact).
func (r *Result) Bounds() []float64 { return r.bounds }

// Release recycles the result's buffers. The Result and every slice it
// returned become invalid.
func (r *Result) Release() {
	r.m = nil
	r.pts = nil
	r.b.pool.Put(r)
}

// Batcher coalesces concurrent prediction requests into tiled batch
// evaluations. On a single core the win is mechanical, not parallel: the
// batch path streams anchor blocks through the SIMD multi-row distance
// kernel against a cache-resident query tile, which measures ~3x faster per
// point than the per-point scan. Admission is bounded in points, not
// requests: work beyond Capacity is rejected with ErrOverloaded so latency
// stays bounded under overload (HTTP 429 at the server layer).
//
// The dispatcher flushes adaptively: when the queue is idle and nothing
// else is in flight, a batch evaluates immediately instead of waiting out
// the maxDelay window, so a lone client never pays the coalescing latency;
// under concurrency the window still fills batches to maxBatch points.
//
// The whole warm request path — job admission, dispatch, evaluation, and
// result delivery — runs at zero heap allocations: jobs (with their result
// buffers) are pooled, the dispatcher reuses its batch and merge buffers,
// and the model layer's scratch is pooled beneath it. CI gates this with
// testing.AllocsPerRun.
type Batcher struct {
	maxBatch int           // flush when a batch reaches this many points
	maxDelay time.Duration // flush a partial batch after this long
	capacity int64         // max points admitted (queued + in flight)
	workers  int

	depth atomic.Int64 // admitted points not yet completed

	// inline counts admitted points currently being evaluated on their
	// caller's goroutine (the solo fast path). Those never reach the queue,
	// so the dispatcher's adaptive flush must not wait for them: depth minus
	// inline is the work that can still arrive for coalescing.
	inline atomic.Int64

	// perPointNs is an EWMA of evaluation nanoseconds per point (float64
	// bits), fed by both dispatcher batches and inline evaluations (hence
	// CAS updates) and read lock-free by the server's queue-wait shedding
	// estimate.
	perPointNs atomic.Uint64

	pool sync.Pool // *Result

	mu     sync.RWMutex // guards closed and the queue send
	closed bool
	queue  chan *Result

	// Dispatcher-owned reusable buffers (only the dispatch goroutine
	// touches them).
	batch       []*Result
	mergeQS     [][]float64
	mergeDst    []float64
	mergeSt     []pointStatus
	mergeBounds []float64

	dispatcherDone chan struct{}
}

// NewBatcher starts a batcher flushing at maxBatch points or after maxDelay,
// whichever comes first, and admitting at most capacity points at a time.
// Non-positive arguments select the defaults (64 points, 500µs, 1024
// points). Close must be called to release the dispatcher.
func NewBatcher(maxBatch int, maxDelay time.Duration, capacity, workers int) *Batcher {
	if maxBatch <= 0 {
		maxBatch = 64
	}
	if maxDelay <= 0 {
		maxDelay = 500 * time.Microsecond
	}
	if capacity < maxBatch {
		if capacity > 0 {
			capacity = maxBatch
		} else {
			capacity = 1024
		}
	}
	b := &Batcher{
		maxBatch: maxBatch,
		maxDelay: maxDelay,
		capacity: int64(capacity),
		workers:  workers,
		// Every admitted job carries >= 1 point, so at most capacity jobs
		// are ever queued and a send under the admission budget never
		// blocks.
		queue:          make(chan *Result, capacity),
		dispatcherDone: make(chan struct{}),
	}
	liveBatchers.Store(b, struct{}{})
	go b.dispatch()
	return b
}

// Depth returns the number of admitted points not yet completed.
func (b *Batcher) Depth() int64 { return b.depth.Load() }

// EstimatedWait returns the predicted time the current queue needs to
// drain: admitted-but-unfinished points times the per-point service-time
// EWMA. Zero until the first batch has been measured.
func (b *Batcher) EstimatedWait() time.Duration {
	ns := math.Float64frombits(b.perPointNs.Load())
	return time.Duration(ns * float64(b.depth.Load()))
}

// admit reserves n points of queue budget, failing without blocking when
// the budget is exhausted.
func (b *Batcher) admit(n int64) bool {
	for {
		cur := b.depth.Load()
		if cur+n > b.capacity {
			return false
		}
		if b.depth.CompareAndSwap(cur, cur+n) {
			return true
		}
	}
}

// getResult pulls a job from the pool and sizes its buffers for n points.
func (b *Batcher) getResult(n int) *Result {
	j, ok := b.pool.Get().(*Result)
	if !ok {
		j = &Result{done: make(chan struct{}, 1), b: b}
	}
	if cap(j.dst) < n {
		j.dst = make([]float64, n)
		j.st = make([]pointStatus, n)
		j.bounds = make([]float64, n)
	}
	j.dst = j.dst[:n]
	j.st = j.st[:n]
	j.bounds = j.bounds[:n]
	j.state.Store(jobPending)
	return j
}

// Do submits pts for batched prediction against m and waits for the result
// (or ctx). It returns ErrOverloaded when the queue budget is exhausted and
// ErrDraining after Close. On ctx expiry the batch still completes in the
// background on job-owned buffers, so the abandoned caller can never race
// the dispatcher; the job is recycled by whichever side loses the handoff.
//
// A submission that is the only admitted work evaluates inline on the
// caller's goroutine: with nothing to coalesce against, routing through the
// dispatcher would cost two scheduler handoffs for an unavoidable
// batch-of-one — the lone-client case must not pay for batching it cannot
// benefit from. The read lock held across the inline evaluation keeps Close
// from completing with the job in flight.
func (b *Batcher) Do(ctx context.Context, m *Model, pts [][]float64) (*Result, error) {
	n := int64(len(pts))
	if n == 0 {
		return nil, nil
	}
	if !b.admit(n) {
		return nil, ErrOverloaded
	}
	j := b.getResult(len(pts))
	j.m, j.pts = m, pts
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		b.depth.Add(-n)
		j.Release()
		return nil, ErrDraining
	}
	if b.depth.Load() == n {
		countBatch(1, len(pts))
		b.inline.Add(n)
		start := time.Now()
		m.predictInto(j.dst, j.st, j.bounds, pts, b.workers)
		b.observePerPoint(time.Since(start), len(pts))
		j.state.Store(jobDelivered)
		// Drop inline before depth so depth >= inline always holds for the
		// dispatcher's queued-work estimate.
		b.inline.Add(-n)
		b.depth.Add(-n)
		b.mu.RUnlock()
		return j, nil
	}
	b.queue <- j
	b.mu.RUnlock()
	select {
	case <-j.done:
		return j, nil
	case <-ctx.Done():
		if j.state.CompareAndSwap(jobPending, jobAbandoned) {
			// The dispatcher will see the abandonment and recycle the job.
			return nil, ctx.Err()
		}
		// Delivery won the race: consume the signal and recycle here.
		<-j.done
		j.Release()
		return nil, ctx.Err()
	}
}

// Close stops admission and waits for the dispatcher to drain every
// admitted job. It is idempotent.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		<-b.dispatcherDone
		return
	}
	b.closed = true
	close(b.queue)
	b.mu.Unlock()
	<-b.dispatcherDone
	liveBatchers.Delete(b)
}

// dispatch coalesces queued jobs: it blocks for the first job of a batch,
// then keeps folding jobs in until the batch holds maxBatch points, the
// queue goes idle with nothing else in flight (adaptive flush), or maxDelay
// has passed. A closed queue drains fully before the dispatcher exits, so
// Close never drops admitted work.
func (b *Batcher) dispatch() {
	defer close(b.dispatcherDone)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		j, ok := <-b.queue
		if !ok {
			return
		}
		b.batch = append(b.batch[:0], j)
		points := len(j.pts)
		armed := false
	fill:
		for points < b.maxBatch {
			// Fast path: fold in whatever is already queued.
			select {
			case nj, ok := <-b.queue:
				if !ok {
					break fill
				}
				b.batch = append(b.batch, nj)
				points += len(nj.pts)
				continue
			default:
			}
			// Queue idle. If every admitted point is either in this batch or
			// being evaluated inline (and thus will never be queued), nothing
			// can arrive that coalescing would help — flush now rather than
			// taxing a lone client with the delay window.
			if b.depth.Load()-b.inline.Load() <= int64(points) {
				break fill
			}
			// Admitted-but-not-yet-queued work is in flight; wait for it,
			// bounded by the flush window.
			if !armed {
				timer.Reset(b.maxDelay)
				armed = true
			}
			select {
			case nj, ok := <-b.queue:
				if !ok {
					break fill
				}
				b.batch = append(b.batch, nj)
				points += len(nj.pts)
			case <-timer.C:
				armed = false
				break fill
			}
		}
		if armed && !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		b.run(b.batch, points)
		// Drop job references so the pool, not the batch buffer, owns them.
		for i := range b.batch {
			b.batch[i] = nil
		}
	}
}

// observePerPoint folds one evaluation's per-point service time into the
// EWMA behind EstimatedWait. Dispatcher batches and inline evaluations both
// report samples concurrently, so the update is a CAS loop; the first sample
// seeds the average directly.
func (b *Batcher) observePerPoint(elapsed time.Duration, points int) {
	if points <= 0 {
		return
	}
	sample := float64(elapsed.Nanoseconds()) / float64(points)
	for {
		old := b.perPointNs.Load()
		next := sample
		if prev := math.Float64frombits(old); prev != 0 {
			next = prev + 0.2*(sample-prev)
		}
		if b.perPointNs.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// run evaluates one coalesced batch. Jobs against the same model are
// concatenated (in arrival order) into a single tiled evaluation, then
// results scatter back to each job. Afterwards each job is either delivered
// to its waiting caller or — when the caller abandoned the wait — recycled
// straight back to the pool.
func (b *Batcher) run(batch []*Result, points int) {
	countBatch(len(batch), points)
	start := time.Now()
	for lo := 0; lo < len(batch); {
		m := batch[lo].m
		hi := lo + 1
		n := len(batch[lo].pts)
		for hi < len(batch) && batch[hi].m == m {
			n += len(batch[hi].pts)
			hi++
		}
		if hi == lo+1 {
			j := batch[lo]
			m.predictInto(j.dst, j.st, j.bounds, j.pts, b.workers)
		} else {
			if cap(b.mergeQS) < n {
				b.mergeQS = make([][]float64, n)
				b.mergeDst = make([]float64, n)
				b.mergeSt = make([]pointStatus, n)
				b.mergeBounds = make([]float64, n)
			}
			qs := b.mergeQS[:n]
			off := 0
			for _, j := range batch[lo:hi] {
				off += copy(qs[off:], j.pts)
			}
			m.predictInto(b.mergeDst[:n], b.mergeSt[:n], b.mergeBounds[:n], qs, b.workers)
			off = 0
			for _, j := range batch[lo:hi] {
				copy(j.dst, b.mergeDst[off:off+len(j.pts)])
				copy(j.st, b.mergeSt[off:off+len(j.pts)])
				copy(j.bounds, b.mergeBounds[off:off+len(j.pts)])
				off += len(j.pts)
			}
			// Drop the query references: they belong to callers.
			for i := range qs {
				qs[i] = nil
			}
		}
		lo = hi
	}
	b.observePerPoint(time.Since(start), points)
	for _, j := range batch {
		if j.state.CompareAndSwap(jobPending, jobDelivered) {
			j.done <- struct{}{}
		} else {
			// Caller abandoned on ctx; the buffers are ours to recycle.
			j.Release()
		}
	}
	b.depth.Add(-int64(points))
}
