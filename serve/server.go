package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	graphssl "repro"
	"repro/internal/kernel"
	"repro/stream"
)

// Config tunes a Server. The zero value selects the defaults noted on each
// field.
type Config struct {
	// MaxBatch is the batch flush size in points (default 64).
	MaxBatch int
	// BatchDelay is how long a partial batch waits for company before it
	// flushes anyway (default 500µs).
	BatchDelay time.Duration
	// QueueDepth bounds the admitted-but-unfinished points; requests
	// beyond it get 429 (default 1024).
	QueueDepth int
	// Workers bounds batch-evaluation parallelism (default 1; <= 0
	// selects GOMAXPROCS). Worker count never changes results.
	Workers int
	// NoBatch disables the micro-batcher: every request is evaluated
	// inline, point by point, without the tiled batch kernel — the
	// baseline the batching win is measured against.
	NoBatch bool
	// PredictTimeout bounds one predict request (default 10s).
	PredictTimeout time.Duration
	// FitTimeout bounds one fit request (default 120s).
	FitTimeout time.Duration
	// MaxBodyBytes bounds request bodies (default 64 MiB).
	MaxBodyBytes int64
	// MaxPoints bounds the points in one predict request (default 4096).
	MaxPoints int
	// CacheSize bounds the version-keyed prediction cache, in entries
	// (default 8192; negative disables caching). A registry hot-swap bumps
	// the model version, which invalidates its cached predictions
	// implicitly.
	CacheSize int
	// ModelBudget bounds the uncached points one model may have in flight;
	// requests beyond it get 429 (default 0 = unlimited).
	ModelBudget int
	// MaxQueueWait sheds predict requests when the batch queue's estimated
	// drain time (depth x measured per-point service time) exceeds it
	// (default PredictTimeout). Shedding early returns a cheap 429 instead
	// of queueing work that would time out anyway.
	MaxQueueWait time.Duration
	// IngestQueue bounds the in-flight (admitted but not yet applied)
	// points per streaming model; ingest requests beyond it get 429
	// (default 4096).
	IngestQueue int
	// IngestBatch bounds how many queued points one refresh cycle folds
	// in before publishing (default 256). Larger batches amortize the
	// refresh; smaller ones lower label-to-servable staleness.
	IngestBatch int
}

func (c *Config) fillDefaults() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.BatchDelay <= 0 {
		c.BatchDelay = 500 * time.Microsecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.PredictTimeout <= 0 {
		c.PredictTimeout = 10 * time.Second
	}
	if c.FitTimeout <= 0 {
		c.FitTimeout = 120 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.MaxPoints <= 0 {
		c.MaxPoints = 4096
	}
	if c.CacheSize == 0 {
		c.CacheSize = 8192
	}
	if c.MaxQueueWait <= 0 {
		c.MaxQueueWait = c.PredictTimeout
	}
	if c.IngestQueue <= 0 {
		c.IngestQueue = 4096
	}
	if c.IngestBatch <= 0 {
		c.IngestBatch = 256
	}
}

// Server is the HTTP serving layer: a model registry behind a JSON API with
// micro-batched prediction, admission control, and a drain switch for
// graceful shutdown. Create with NewServer, mount Handler on an
// http.Server, and on shutdown call BeginDrain, then http.Server.Shutdown,
// then Close.
type Server struct {
	cfg      Config
	registry *Registry
	batcher  *Batcher
	cache    *predCache
	budgets  sync.Map // model name -> *atomic.Int64 in-flight uncached points
	ingests  sync.Map // model name -> *ingestState for streaming models
	inFleet  bool     // set by NewFleet: streaming fits are single-server only
	draining atomic.Bool
	mux      *http.ServeMux
}

// NewServer builds a server around an empty registry.
func NewServer(cfg Config) *Server {
	cfg.fillDefaults()
	s := &Server{cfg: cfg, registry: &Registry{}, cache: newPredCache(cfg.CacheSize)}
	if !cfg.NoBatch {
		s.batcher = NewBatcher(cfg.MaxBatch, cfg.BatchDelay, cfg.QueueDepth, cfg.Workers)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", s.handlePredict)
	mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	mux.HandleFunc("POST /v1/models/{name}", s.handleFit)
	mux.HandleFunc("GET /v1/models", s.handleList)
	mux.HandleFunc("GET /v1/models/{name}", s.handleGet)
	mux.HandleFunc("DELETE /v1/models/{name}", s.handleDelete)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.Handle("GET /debug/vars", expvar.Handler())
	s.mux = mux
	return s
}

// Registry exposes the server's model registry (for in-process publication,
// e.g. pre-loading a model before listening).
func (s *Server) Registry() *Registry { return s.registry }

// Handler returns the HTTP handler to mount.
func (s *Server) Handler() http.Handler { return s.mux }

// BeginDrain flips readiness to 503 and rejects new fits, while predictions
// keep flowing so a load balancer can cut traffic over without dropping
// in-flight work. Call before http.Server.Shutdown.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close drains and stops the batcher and every ingest worker, waiting
// for every admitted job. Call after http.Server.Shutdown has returned
// (no handlers in flight).
func (s *Server) Close() {
	s.BeginDrain()
	if s.batcher != nil {
		s.batcher.Close()
	}
	s.closeIngests()
}

// httpError is the JSON error envelope.
type httpError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// fail maps a serving error to its HTTP status and writes the envelope.
func fail(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrIsolated):
		code = http.StatusUnprocessableEntity
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		code = http.StatusTooManyRequests
		countRejected()
	case errors.Is(err, ErrDraining):
		code = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		code = http.StatusGatewayTimeout
	}
	if code != http.StatusTooManyRequests {
		countError()
	}
	writeJSON(w, code, httpError{Error: err.Error()})
}

// decodeBody JSON-decodes a size-capped request body into v.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("serve: bad request body: %v: %w", err, ErrPoint)
	}
	return nil
}

// predictRequest is the body of POST /v1/predict.
type predictRequest struct {
	Model  string      `json:"model"`
	Points [][]float64 `json:"points"`
}

// predictResponse answers a predict request. Errors, when present, aligns
// with Points; empty strings mark successes. ResidualBound, when present,
// is the largest top-m truncation residual-mass bound over the request's
// points: the fraction of total kernel mass the truncation could have
// dropped (0 = every prediction exact; see Info.Pruning).
type predictResponse struct {
	Model         string    `json:"model"`
	Version       int64     `json:"version"`
	Scores        []float64 `json:"scores"`
	ResidualBound float64   `json:"residual_bound,omitempty"`
	Errors        []string  `json:"errors,omitempty"`
}

// reqScratch pools one predict request's working buffers — the
// cache-scatter and miss-compaction state — so the warm request path does
// not grow the heap per call.
type reqScratch struct {
	scores  []float64
	bounds  []float64
	st      []pointStatus
	missPts [][]float64
	missIdx []int
	mdst    []float64
	mbounds []float64
	mst     []pointStatus
}

var reqPool = sync.Pool{New: func() any { return new(reqScratch) }}

func (sc *reqScratch) size(n int) {
	if cap(sc.scores) < n {
		sc.scores = make([]float64, n)
		sc.bounds = make([]float64, n)
		sc.st = make([]pointStatus, n)
		sc.missPts = make([][]float64, 0, n)
		sc.missIdx = make([]int, 0, n)
		sc.mdst = make([]float64, n)
		sc.mbounds = make([]float64, n)
		sc.mst = make([]pointStatus, n)
	}
}

func (sc *reqScratch) release() {
	// Query points belong to the request; drop the references.
	for i := range sc.missPts {
		sc.missPts[i] = nil
	}
	sc.missPts = sc.missPts[:0]
	reqPool.Put(sc)
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req predictRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		fail(w, err)
		return
	}
	n := len(req.Points)
	if n == 0 {
		fail(w, fmt.Errorf("serve: no points: %w", ErrPoint))
		return
	}
	if n > s.cfg.MaxPoints {
		fail(w, fmt.Errorf("serve: %d points exceeds the per-request limit %d: %w", n, s.cfg.MaxPoints, ErrPoint))
		return
	}
	e, err := s.registry.Load(req.Model)
	if err != nil {
		fail(w, err)
		return
	}
	sc := reqPool.Get().(*reqScratch)
	defer sc.release()
	sc.size(n)
	scores, bounds, st := sc.scores[:n], sc.bounds[:n], sc.st[:n]
	missPts, missIdx := sc.missPts[:0], sc.missIdx[:0]
	for i, pt := range req.Points {
		if v, b, cst, ok := s.cache.get(e.Name, e.Version, pt); ok {
			scores[i], bounds[i], st[i] = v, b, cst
		} else {
			missPts = append(missPts, pt)
			missIdx = append(missIdx, i)
		}
	}
	sc.missPts = missPts // keep the grown slice pooled
	countCache(n-len(missPts), len(missPts))

	if len(missPts) > 0 {
		// Admission control gates only uncached work: a full cache hit costs
		// nothing worth shedding.
		if s.batcher != nil {
			if wait := s.batcher.EstimatedWait(); wait > s.cfg.MaxQueueWait {
				countShedQueue()
				fail(w, fmt.Errorf("serve: estimated queue wait %v exceeds %v: %w", wait.Round(time.Millisecond), s.cfg.MaxQueueWait, ErrOverloaded))
				return
			}
		}
		if s.cfg.ModelBudget > 0 {
			ctr := s.modelCounter(e.Name)
			if ctr.Add(int64(len(missPts))) > int64(s.cfg.ModelBudget) {
				ctr.Add(-int64(len(missPts)))
				countShedBudget()
				fail(w, fmt.Errorf("serve: model %q exceeds its in-flight budget of %d points: %w", e.Name, s.cfg.ModelBudget, ErrOverloaded))
				return
			}
			defer ctr.Add(-int64(len(missPts)))
		}
		mdst, mbounds, mst := sc.mdst[:len(missPts)], sc.mbounds[:len(missPts)], sc.mst[:len(missPts)]
		if s.batcher != nil {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.PredictTimeout)
			res, err := s.batcher.Do(ctx, e.Model, missPts)
			cancel()
			if err != nil {
				if errors.Is(err, context.Canceled) {
					err = fmt.Errorf("serve: request canceled: %w", err)
				}
				fail(w, err)
				return
			}
			copy(mdst, res.Scores())
			copy(mst, res.Status())
			copy(mbounds, res.Bounds())
			res.Release()
		} else {
			e.Model.predictSerial(mdst, mst, mbounds, missPts)
		}
		for k, i := range missIdx {
			scores[i], bounds[i], st[i] = mdst[k], mbounds[k], mst[k]
			// Bad points are request-shaped, not model-shaped; don't cache
			// them.
			if mst[k] != psBadPoint {
				s.cache.put(e.Name, e.Version, missPts[k], mdst[k], mbounds[k], mst[k])
			}
		}
	}

	resp := predictResponse{Model: e.Name, Version: e.Version, Scores: scores}
	for i, ps := range st {
		if ps != psOK {
			if resp.Errors == nil {
				resp.Errors = make([]string, n)
			}
			resp.Errors[i] = ps.err().Error()
		}
		if bounds[i] > resp.ResidualBound {
			resp.ResidualBound = bounds[i]
		}
	}
	countRequest(n, time.Since(start))
	writeJSON(w, http.StatusOK, resp)
}

// modelCounter returns the in-flight point counter for a model name,
// creating it on first use.
func (s *Server) modelCounter(name string) *atomic.Int64 {
	if c, ok := s.budgets.Load(name); ok {
		return c.(*atomic.Int64)
	}
	c, _ := s.budgets.LoadOrStore(name, new(atomic.Int64))
	return c.(*atomic.Int64)
}

// fitRequest is the body of POST /v1/models/{name}: training data plus the
// fit hyperparameters. Zero values select the library defaults (Gaussian
// kernel, paper bandwidth, dense graph, hard criterion).
type fitRequest struct {
	X       [][]float64 `json:"x"`
	Y       []float64   `json:"y"`
	Labeled []int       `json:"labeled,omitempty"`
	Kernel  string      `json:"kernel,omitempty"`
	// Bandwidth > 0 fixes h; otherwise the paper rule is used.
	Bandwidth float64  `json:"bandwidth,omitempty"`
	KNN       int      `json:"knn,omitempty"`
	Lambda    *float64 `json:"lambda,omitempty"`
	// AnchorSet is "labeled" (default) or "all".
	AnchorSet string `json:"anchor_set,omitempty"`
	// TopM > 0 serves the model with top-m anchor truncation; responses
	// then carry residual_bound. Incompatible with KNN > 0.
	TopM int `json:"top_m,omitempty"`
	// Stream keeps a live ingestor behind the model so POST /v1/ingest
	// can append points continuously. Requires a compact-support kernel,
	// a fixed bandwidth, the hard criterion (lambda 0), labeled anchors,
	// and no knn/top_m truncation; rejected on fleets.
	Stream bool `json:"stream,omitempty"`
}

// fitResponse answers a fit request.
type fitResponse struct {
	Model   string  `json:"model"`
	Version int64   `json:"version"`
	Info    Info    `json:"info"`
	Seconds float64 `json:"seconds"`
}

func (s *Server) handleFit(w http.ResponseWriter, r *http.Request) {
	name, m, ing, start, ok := s.buildModel(w, r)
	if !ok {
		return
	}
	e, err := s.registry.Store(name, m)
	if err != nil {
		fail(w, err)
		return
	}
	setModelVersion(e.Name, e.Version)
	// A streaming fit registers its ingestor only after the initial
	// publication, so the worker can never race the first Store; a plain
	// refit under the same name retires any previous ingestor.
	if ing != nil {
		s.registerIngest(newIngestState(e.Name, ing, s.cfg.IngestQueue))
	} else {
		s.dropIngest(e.Name)
	}
	writeJSON(w, http.StatusOK, fitResponse{
		Model:   e.Name,
		Version: e.Version,
		Info:    m.Info(),
		Seconds: time.Since(start).Seconds(),
	})
}

// buildModel runs the fit pipeline of POST /v1/models/{name} — validation,
// the transductive fit, the snapshot, and the inductive model build — up to
// but not including registry publication, so single servers and replicated
// fleets share one fit path (a fleet fits once on the leader and publishes
// the immutable model to every replica). For "stream": true fits, ing is the
// live ingestor the caller must register after the initial publication. On
// failure the error response has been written and ok is false.
func (s *Server) buildModel(w http.ResponseWriter, r *http.Request) (name string, m *Model, ing *stream.Ingestor, start time.Time, ok bool) {
	if s.draining.Load() {
		fail(w, ErrDraining)
		return
	}
	name = r.PathValue("name")
	if !validName(name) {
		fail(w, fmt.Errorf("serve: model name %q: %w", name, ErrName))
		return
	}
	var req fitRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		fail(w, err)
		return
	}
	var anchorSet AnchorSet
	switch req.AnchorSet {
	case "", "labeled":
		anchorSet = AnchorLabeled
	case "all":
		anchorSet = AnchorAll
	default:
		fail(w, fmt.Errorf("serve: anchor_set %q (want \"labeled\" or \"all\"): %w", req.AnchorSet, ErrPoint))
		return
	}
	if req.Stream {
		m, ing, start, ok = s.buildStreamModel(w, &req, anchorSet)
		return name, m, ing, start, ok
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.FitTimeout)
	defer cancel()
	opts := []graphssl.Option{graphssl.WithContext(ctx), graphssl.WithWorkers(s.cfg.Workers)}
	if req.Kernel != "" {
		kind, err := kernel.Parse(req.Kernel)
		if err != nil {
			fail(w, fmt.Errorf("serve: %v: %w", err, ErrPoint))
			return
		}
		opts = append(opts, graphssl.WithKernel(kind))
	}
	if req.Bandwidth != 0 {
		opts = append(opts, graphssl.WithBandwidth(req.Bandwidth))
	}
	if req.KNN != 0 {
		opts = append(opts, graphssl.WithKNN(req.KNN))
	}
	if req.Lambda != nil {
		opts = append(opts, graphssl.WithLambda(*req.Lambda))
	}
	start = time.Now()
	res, err := graphssl.Fit(req.X, req.Y, req.Labeled, opts...)
	if err != nil {
		if ctx.Err() != nil {
			fail(w, context.DeadlineExceeded)
			return
		}
		fail(w, fmt.Errorf("serve: fit: %v: %w", err, ErrPoint))
		return
	}
	snap, err := res.Snapshot(req.X, req.Y)
	if err != nil {
		fail(w, fmt.Errorf("serve: snapshot: %v: %w", err, ErrPoint))
		return
	}
	mopts := []ModelOption{WithAnchorSet(anchorSet), WithWorkers(s.cfg.Workers)}
	if req.TopM > 0 {
		mopts = append(mopts, WithTopM(req.TopM))
	}
	m, err = NewModel(snap, mopts...)
	if err != nil {
		fail(w, err)
		return
	}
	return name, m, nil, start, true
}

// buildStreamModel is the "stream": true branch of the fit pipeline: it
// validates the streaming constraints, fits through stream.New (bitwise
// the same solution as graphssl.Fit), and returns the initial model
// together with the live ingestor.
func (s *Server) buildStreamModel(w http.ResponseWriter, req *fitRequest, anchorSet AnchorSet) (m *Model, ing *stream.Ingestor, start time.Time, ok bool) {
	if s.inFleet {
		fail(w, fmt.Errorf("serve: streaming ingest is single-server only: %w", ErrFleet))
		return
	}
	if anchorSet != AnchorLabeled {
		fail(w, fmt.Errorf("serve: streaming fits require labeled anchors: %w", ErrPoint))
		return
	}
	if req.TopM > 0 || req.KNN != 0 {
		fail(w, fmt.Errorf("serve: streaming fits take no knn or top_m truncation: %w", ErrPoint))
		return
	}
	if req.Lambda != nil && *req.Lambda != 0 {
		fail(w, fmt.Errorf("serve: streaming fits require the hard criterion (lambda 0): %w", ErrPoint))
		return
	}
	if req.Bandwidth <= 0 {
		fail(w, fmt.Errorf("serve: streaming fits require a fixed bandwidth: %w", ErrPoint))
		return
	}
	if req.Kernel == "" {
		fail(w, fmt.Errorf("serve: streaming fits require an explicit compact-support kernel: %w", ErrPoint))
		return
	}
	kind, err := kernel.Parse(req.Kernel)
	if err != nil {
		fail(w, fmt.Errorf("serve: %v: %w", err, ErrPoint))
		return
	}
	labeled := req.Labeled
	if labeled == nil {
		// The graphssl.Fit convention: nil labeled means the first len(y)
		// points.
		labeled = make([]int, len(req.Y))
		for i := range labeled {
			labeled[i] = i
		}
	}
	start = time.Now()
	ing, err = stream.New(req.X, req.Y, labeled, stream.Config{
		Kernel:    kind,
		Bandwidth: req.Bandwidth,
		Workers:   s.cfg.Workers,
	})
	if err != nil {
		fail(w, fmt.Errorf("serve: stream fit: %v: %w", err, ErrPoint))
		return
	}
	snap, err := ing.Snapshot()
	if err != nil {
		fail(w, fmt.Errorf("serve: snapshot: %v: %w", err, ErrPoint))
		return
	}
	m, err = NewModel(snap, WithAnchorSet(AnchorLabeled), WithWorkers(s.cfg.Workers))
	if err != nil {
		fail(w, err)
		return
	}
	return m, ing, start, true
}

// modelEntry lists one registry entry.
type modelEntry struct {
	Model   string `json:"model"`
	Version int64  `json:"version"`
	Info    Info   `json:"info"`
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	entries := s.registry.Entries()
	out := make([]modelEntry, len(entries))
	for i, e := range entries {
		out[i] = modelEntry{Model: e.Name, Version: e.Version, Info: e.Model.Info()}
	}
	writeJSON(w, http.StatusOK, map[string]any{"models": out})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	e, err := s.registry.Load(r.PathValue("name"))
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, modelEntry{Model: e.Name, Version: e.Version, Info: e.Model.Info()})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.registry.Delete(name); err != nil {
		fail(w, err)
		return
	}
	clearModelVersion(name)
	s.dropIngest(name)
	// Drop the budget counter; in-flight requests holding it keep their
	// reference and still release correctly. Cached predictions need no
	// purge: Registry versions are monotonic across Delete, so a refit under
	// this name gets a fresh version and the dead entries can never match.
	s.budgets.Delete(name)
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "models": s.registry.Len()})
}
