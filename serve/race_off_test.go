//go:build !race

package serve

// raceEnabled reports whether this binary was built with the race detector.
const raceEnabled = false
