package serve

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	graphssl "repro"
)

// batchModel builds a model big enough that batched evaluation does real
// work, with well-spread anchors so nothing is isolated.
func batchModel(t *testing.T) *Model {
	t.Helper()
	x, y, labeled := testData(21, 200, 6, 80)
	snap := fitSnapshot(t, x, y, labeled, graphssl.WithBandwidth(1.5))
	m, err := NewModel(snap)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestBatcherCoalesces checks that concurrent submissions fold into shared
// batches and every caller gets exactly the values a direct evaluation
// produces.
func TestBatcherCoalesces(t *testing.T) {
	m := batchModel(t)
	b := NewBatcher(64, 2*time.Millisecond, 1024, 1)
	defer b.Close()
	batches0, points0 := srvBatches.Value(), srvBatchedPoints.Value()

	const callers = 16
	const perCall = 4
	queries := make([][][]float64, callers)
	for c := range queries {
		qs := make([][]float64, perCall)
		for i := range qs {
			qs[i] = make([]float64, m.Dim())
			for j := range qs[i] {
				qs[i][j] = 0.1 * float64(c+i+j)
			}
		}
		queries[c] = qs
	}
	var wg sync.WaitGroup
	results := make([][]float64, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			res, err := b.Do(context.Background(), m, queries[c])
			if err != nil {
				t.Errorf("caller %d: %v", c, err)
				return
			}
			for i, s := range res.Status() {
				if s != psOK {
					t.Errorf("caller %d point %d: status %d", c, i, s)
				}
			}
			results[c] = append([]float64(nil), res.Scores()...)
			res.Release()
		}(c)
	}
	wg.Wait()
	for c := 0; c < callers; c++ {
		want, errs := m.PredictBatch(queries[c])
		if errs != nil {
			t.Fatalf("caller %d direct: %v", c, errs)
		}
		for i := range want {
			if math.Float64bits(results[c][i]) != math.Float64bits(want[i]) {
				t.Fatalf("caller %d point %d: %v != %v", c, i, results[c][i], want[i])
			}
		}
	}
	batches := srvBatches.Value() - batches0
	points := srvBatchedPoints.Value() - points0
	if points != callers*perCall {
		t.Fatalf("batched points = %d, want %d", points, callers*perCall)
	}
	if batches < 1 || batches > callers {
		t.Fatalf("batches = %d", batches)
	}
	if b.Depth() != 0 {
		t.Fatalf("depth = %d after drain", b.Depth())
	}
}

// TestBatcherOverload checks points-bounded admission: one request larger
// than the budget is rejected without blocking.
func TestBatcherOverload(t *testing.T) {
	m := batchModel(t)
	b := NewBatcher(4, time.Millisecond, 8, 1)
	defer b.Close()
	big := make([][]float64, 16)
	for i := range big {
		big[i] = make([]float64, m.Dim())
	}
	if _, err := b.Do(context.Background(), m, big); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("oversized request: %v", err)
	}
	if b.Depth() != 0 {
		t.Fatalf("rejected request leaked depth %d", b.Depth())
	}
	// Within budget still works.
	res, err := b.Do(context.Background(), m, big[:8])
	if err != nil {
		t.Fatal(err)
	}
	res.Release()
}

// TestBatcherDrain checks Close semantics: admitted work completes, late
// work is refused, Close is idempotent.
func TestBatcherDrain(t *testing.T) {
	m := batchModel(t)
	b := NewBatcher(8, 5*time.Millisecond, 256, 1)
	qs := [][]float64{make([]float64, m.Dim()), make([]float64, m.Dim())}

	const callers = 8
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := b.Do(context.Background(), m, qs)
			if err != nil {
				if !errors.Is(err, ErrDraining) {
					t.Errorf("unexpected error: %v", err)
				}
				return
			}
			for i, s := range res.Status() {
				if s != psOK {
					t.Errorf("point %d: status %d", i, s)
				}
			}
			res.Release()
		}()
	}
	b.Close()
	wg.Wait()
	if _, err := b.Do(context.Background(), m, qs); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-close: %v", err)
	}
	if b.Depth() != 0 {
		t.Fatalf("depth = %d after close", b.Depth())
	}
	b.Close() // idempotent
}

// TestBatcherContext checks that an expired context releases the caller.
func TestBatcherContext(t *testing.T) {
	m := batchModel(t)
	b := NewBatcher(64, 50*time.Millisecond, 256, 1)
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	qs := [][]float64{make([]float64, m.Dim())}
	// The job may complete before the select observes cancellation; both
	// outcomes are legal, hanging is not.
	done := make(chan struct{})
	go func() {
		defer close(done)
		res, err := b.Do(ctx, m, qs)
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("canceled ctx: %v", err)
		}
		if res != nil {
			res.Release()
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Do hung on canceled context")
	}
	// Empty submissions are no-ops.
	if _, err := b.Do(context.Background(), m, nil); err != nil {
		t.Fatal(err)
	}
}

// TestBatcherMixedModels checks that one coalesced batch spanning several
// models scatters each caller's results against its own model.
func TestBatcherMixedModels(t *testing.T) {
	m1, m2 := batchModel(t), smallModel(t)
	b := NewBatcher(64, 5*time.Millisecond, 1024, 1)
	defer b.Close()
	qs1 := [][]float64{make([]float64, m1.Dim())}
	qs2 := [][]float64{{0.2, 0.1}}
	var wg sync.WaitGroup
	var r1, r2 []float64
	wg.Add(2)
	go func() {
		defer wg.Done()
		res, err := b.Do(context.Background(), m1, qs1)
		if err != nil {
			t.Error(err)
			return
		}
		r1 = append([]float64(nil), res.Scores()...)
		res.Release()
	}()
	go func() {
		defer wg.Done()
		res, err := b.Do(context.Background(), m2, qs2)
		if err != nil {
			t.Error(err)
			return
		}
		r2 = append([]float64(nil), res.Scores()...)
		res.Release()
	}()
	wg.Wait()
	w1, _ := m1.PredictBatch(qs1)
	w2, _ := m2.PredictBatch(qs2)
	if math.Float64bits(r1[0]) != math.Float64bits(w1[0]) {
		t.Fatalf("model 1: %v != %v", r1[0], w1[0])
	}
	if math.Float64bits(r2[0]) != math.Float64bits(w2[0]) {
		t.Fatalf("model 2: %v != %v", r2[0], w2[0])
	}
}

// TestBatcherInlineFeedsEWMA checks the solo fast path against the shedding
// estimator: an inline evaluation must fold its per-point service time into
// the EWMA behind EstimatedWait (otherwise purely-solo traffic leaves the
// estimate stale at zero) and must leave no inline/depth points accounted
// once it returns, so the dispatcher's adaptive flush never waits on it.
func TestBatcherInlineFeedsEWMA(t *testing.T) {
	m := batchModel(t)
	b := NewBatcher(64, 500*time.Microsecond, 1024, 1)
	defer b.Close()
	if got := math.Float64frombits(b.perPointNs.Load()); got != 0 {
		t.Fatalf("fresh EWMA = %v, want 0", got)
	}
	res, err := b.Do(context.Background(), m, [][]float64{make([]float64, m.Dim())})
	if err != nil {
		t.Fatal(err)
	}
	res.Release()
	if got := math.Float64frombits(b.perPointNs.Load()); !(got > 0) {
		t.Fatalf("EWMA after inline evaluation = %v, want > 0", got)
	}
	if in, d := b.inline.Load(), b.depth.Load(); in != 0 || d != 0 {
		t.Fatalf("leftover accounting after inline evaluation: inline=%d depth=%d", in, d)
	}
}
