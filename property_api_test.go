package graphssl

import (
	"math"
	"math/rand"
	"testing"
)

func propTestData(seed int64, n, m int) ([][]float64, []float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n+m)
	for i := range x {
		x[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	y := make([]float64, n)
	labeled := make([]int, n)
	for i := range y {
		y[i] = rng.Float64()
		labeled[i] = i
	}
	return x, y, labeled
}

// TestPropII1SoftConvergesToHard checks the paper's Proposition II.1 at the
// public API: as λ→0 the soft criterion's minimizer converges to the hard
// (harmonic) solution. At λ=1e-11 the two must agree to 1e-10.
func TestPropII1SoftConvergesToHard(t *testing.T) {
	x, y, labeled := propTestData(101, 25, 40)
	hard, err := Fit(x, y, labeled, WithBandwidth(1))
	if err != nil {
		t.Fatal(err)
	}
	soft, err := Fit(x, y, labeled, WithBandwidth(1), WithLambda(1e-11))
	if err != nil {
		t.Fatal(err)
	}
	var maxGap float64
	for i := range hard.UnlabeledScores {
		if gap := math.Abs(hard.UnlabeledScores[i] - soft.UnlabeledScores[i]); gap > maxGap {
			maxGap = gap
		}
	}
	if maxGap > 1e-10 {
		t.Fatalf("sup|soft(λ=1e-11) − hard| = %g, want ≤ 1e-10", maxGap)
	}
}

// TestPropII2SoftCollapsesToLabelMean checks Proposition II.2: as λ→∞ the
// soft criterion collapses to the constant ȳ_n. The deviation is O(1/λ), so
// λ=1e8 must pin every score to the label mean within 1e-5.
func TestPropII2SoftCollapsesToLabelMean(t *testing.T) {
	x, y, labeled := propTestData(103, 20, 35)
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))

	res, err := Fit(x, y, labeled, WithBandwidth(1), WithLambda(1e8))
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Scores {
		if math.Abs(s-mean) > 1e-5 {
			t.Fatalf("score[%d] = %v, want ȳ = %v within 1e-5 at λ=1e8", i, s, mean)
		}
	}
}

// TestToyIdenticalInputsGiveLabelMean pins the toy sanity case from the
// paper's discussion: when every input is the same point, the graph carries
// no geometric information and the hard criterion returns exactly the label
// mean at every unlabeled node.
func TestToyIdenticalInputsGiveLabelMean(t *testing.T) {
	const n, m = 8, 12
	x := make([][]float64, n+m)
	for i := range x {
		x[i] = []float64{0.5, -1.5}
	}
	y := []float64{1, 0, 1, 1, 0, 1, 0, 1}
	labeled := make([]int, n)
	for i := range labeled {
		labeled[i] = i
	}
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))

	// The median bandwidth heuristic is undefined on all-zero distances, so
	// the bandwidth must be fixed explicitly.
	res, err := Fit(x, y, labeled, WithBandwidth(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.UnlabeledScores {
		if math.Abs(s-mean) > 1e-12 {
			t.Fatalf("unlabeled score %v, want exactly ȳ = %v", s, mean)
		}
	}
	// And the soft criterion agrees at any λ: the Laplacian penalty is
	// already zero on constants.
	soft, err := Fit(x, y, labeled, WithBandwidth(1), WithLambda(0.7))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range soft.UnlabeledScores {
		if math.Abs(s-mean) > 1e-10 {
			t.Fatalf("soft unlabeled score %v, want ȳ = %v", s, mean)
		}
	}
}
