// Package graphssl is a Go implementation of graph-based semi-supervised
// learning, reproducing "On Consistency of Graph-based Semi-supervised
// Learning" (Du, Zhao, Wang; ICDCS 2019, arXiv:1703.06177).
//
// The package exposes the two criteria the paper studies over a similarity
// graph built from input points:
//
//   - the hard criterion (λ = 0): the harmonic solution that interpolates
//     the observed labels exactly and is proven consistent (Theorem II.1);
//   - the soft criterion (λ > 0): Laplacian-regularized least squares,
//     shown inconsistent for large λ (Proposition II.2).
//
// A minimal classification session:
//
//	res, err := graphssl.Fit(x, y, nil) // first len(y) points are labeled
//	if err != nil { ... }
//	for i, idx := range res.Unlabeled {
//	    fmt.Println(idx, res.UnlabeledScores[i] > 0.5)
//	}
//
// Fit defaults to the hard criterion with a Gaussian kernel whose bandwidth
// comes from the median heuristic; options select the soft criterion's λ,
// other kernels and bandwidth rules, and k-NN sparsification. The
// Nadaraya–Watson kernel-regression baseline from the paper's analysis is
// also exported.
//
// # Solvers and parallelism
//
// WithSolver picks the linear-system backend: dense Cholesky/LU, sparse
// conjugate gradient, or iterative label propagation. The default
// (SolverAuto) plans a deterministic escalation chain from a pre-solve
// health probe — preconditioned CG first on large systems, with a
// multilevel (aggregation V-cycle) retry and dense fallbacks behind it.
// WithPreconditioner selects the CG preconditioner (Jacobi, zero-fill incomplete
// Cholesky with RCM reordering, or the multilevel hierarchy) when the
// automatic choice is not wanted. WithWorkers bounds the worker goroutines
// used by graph construction, SpMV, and batch prediction; results are
// bitwise identical for every worker count. WithDiagnostics fills a Report
// with stage timings, the solver trace, and any fallbacks taken.
//
// # Approximate large-n engine
//
// WithApprox(tol) admits a Nyström-style approximate fit for the hard
// criterion: the engine coarsens the point set to m ≪ n anchors, solves
// the reduced harmonic system, extends by Nadaraya–Watson estimation, and
// certifies the result with a computable sup-norm error bound (an M-matrix
// barrier certificate). The approximate answer is kept only when the
// certified bound is at most tol — otherwise the fit transparently falls
// back to the exact path and records the rejection in the Report. Every
// accepted fit carries its bound in Result.ApproxBound and serves it
// through ModelSnapshot. WithApprox(0), the default, disables the engine
// and is bitwise identical to the exact path.
//
// # Serving
//
// Result.Snapshot freezes a fit (scores, kernel, bandwidth, anchors, and
// any approximation certificate) into a ModelSnapshot; the serve
// subpackage turns snapshots into HTTP prediction services with SIMD
// batch scoring, anchor pruning, a prediction cache, and load shedding.
//
// # Distributed fits
//
// WithDistributed(p) runs label propagation across p in-process partitions.
// FitDistributed with WithClusterShards(s) shards graph construction and
// the solve across TCP worker processes, for fits that exceed one machine;
// the serve package's Fleet replicates the resulting snapshots behind a
// router.
//
// The experiment harnesses that regenerate the paper's figures live in
// internal/experiments and are driven by cmd/sslrepro; cmd/perfbench
// benchmarks the hot paths (run it with -list for the suite registry).
package graphssl
