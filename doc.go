// Package graphssl is a Go implementation of graph-based semi-supervised
// learning, reproducing "On Consistency of Graph-based Semi-supervised
// Learning" (Du, Zhao, Wang; ICDCS 2019, arXiv:1703.06177).
//
// The package exposes the two criteria the paper studies over a similarity
// graph built from input points:
//
//   - the hard criterion (λ = 0): the harmonic solution that interpolates
//     the observed labels exactly and is proven consistent (Theorem II.1);
//   - the soft criterion (λ > 0): Laplacian-regularized least squares,
//     shown inconsistent for large λ (Proposition II.2).
//
// A minimal classification session:
//
//	res, err := graphssl.Fit(x, y, nil) // first len(y) points are labeled
//	if err != nil { ... }
//	for i, idx := range res.Unlabeled {
//	    fmt.Println(idx, res.UnlabeledScores[i] > 0.5)
//	}
//
// Fit defaults to the hard criterion with a Gaussian kernel whose bandwidth
// comes from the median heuristic; options select the soft criterion's λ,
// other kernels and bandwidth rules, k-NN sparsification, and the solver
// backend (dense factorizations, conjugate gradient, or distributed label
// propagation). The Nadaraya–Watson kernel-regression baseline from the
// paper's analysis is also exported.
//
// The experiment harnesses that regenerate the paper's figures live in
// internal/experiments and are driven by cmd/sslrepro.
package graphssl
