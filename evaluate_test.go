package graphssl

import (
	"math"
	"testing"
)

func fittedResult(t *testing.T) (*Result, []float64) {
	t.Helper()
	x, y := twoClusters(51, 25, 10)
	res, err := Fit(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	truth := make([]float64, len(res.Unlabeled))
	for i, idx := range res.Unlabeled {
		if idx%2 == 0 {
			truth[i] = 1
		}
	}
	return res, truth
}

func TestResultClassify(t *testing.T) {
	res, truth := fittedResult(t)
	pred := res.Classify(0.5)
	if len(pred) != len(res.Unlabeled) {
		t.Fatal("length wrong")
	}
	for i := range pred {
		if pred[i] != truth[i] {
			t.Fatalf("separable clusters misclassified at %d", i)
		}
	}
}

func TestResultAUCAndAccuracy(t *testing.T) {
	res, truth := fittedResult(t)
	auc, err := res.AUC(truth)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 1 {
		t.Fatalf("AUC = %v on separable clusters", auc)
	}
	acc, err := res.Accuracy(truth)
	if err != nil {
		t.Fatal(err)
	}
	if acc != 1 {
		t.Fatalf("accuracy = %v", acc)
	}
	if _, err := res.AUC(truth[:1]); err == nil {
		t.Fatal("mismatched truth must error")
	}
}

func TestResultRMSE(t *testing.T) {
	res, truth := fittedResult(t)
	rmse, err := res.RMSE(truth)
	if err != nil {
		t.Fatal(err)
	}
	if rmse < 0 || rmse > 0.5 || math.IsNaN(rmse) {
		t.Fatalf("RMSE = %v implausible for separable clusters", rmse)
	}
	if _, err := res.RMSE(truth[:2]); err == nil {
		t.Fatal("mismatched truth must error")
	}
}
