package graphssl

import (
	"errors"
	"math"
	"testing"

	"repro/internal/sparse"
)

func chainWeights(t *testing.T, n int) *sparse.CSR {
	t.Helper()
	coo := sparse.NewCOO(n, n)
	for i := 0; i+1 < n; i++ {
		if err := coo.AddSym(i, i+1, 1); err != nil {
			t.Fatal(err)
		}
	}
	return coo.ToCSR()
}

func TestFitGraphChainInterpolation(t *testing.T) {
	w := chainWeights(t, 5)
	res, err := FitGraph(w, []float64{0, 1}, []int{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i, v := range res.Scores {
		if math.Abs(v-want[i]) > 1e-10 {
			t.Fatalf("score[%d] = %v, want %v", i, v, want[i])
		}
	}
	if res.GraphStats.Edges != 4 {
		t.Fatalf("edges = %d", res.GraphStats.Edges)
	}
}

func TestFitGraphDefaultLabeledPrefix(t *testing.T) {
	w := chainWeights(t, 4)
	res, err := FitGraph(w, []float64{1, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labeled) != 2 || res.Labeled[0] != 0 || res.Labeled[1] != 1 {
		t.Fatalf("labeled = %v", res.Labeled)
	}
}

func TestFitGraphSoft(t *testing.T) {
	w := chainWeights(t, 4)
	res, err := FitGraph(w, []float64{1, 0}, nil, WithLambda(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Lambda != 0.5 {
		t.Fatal("lambda not recorded")
	}
	if res.Scores[0] == 1 {
		t.Fatal("soft criterion should shrink the labeled fit")
	}
}

func TestFitGraphValidation(t *testing.T) {
	w := chainWeights(t, 3)
	if _, err := FitGraph(w, []float64{1, 0, 1}, nil); !errors.Is(err, ErrParam) {
		t.Fatal("all labeled must error")
	}
	if _, err := FitGraph(w, []float64{1}, nil, WithLambda(-1)); !errors.Is(err, ErrParam) {
		t.Fatal("negative lambda must error")
	}
	// Asymmetric weights rejected.
	coo := sparse.NewCOO(2, 2)
	_ = coo.Add(0, 1, 1)
	if _, err := FitGraph(coo.ToCSR(), []float64{1}, nil); !errors.Is(err, ErrParam) {
		t.Fatal("asymmetric weights must error")
	}
	// Isolated unlabeled component surfaces ErrIsolated.
	iso := sparse.NewCOO(4, 4)
	_ = iso.AddSym(0, 1, 1)
	_ = iso.AddSym(2, 3, 1)
	if _, err := FitGraph(iso.ToCSR(), []float64{1}, []int{0}); !errors.Is(err, ErrIsolated) {
		t.Fatal("isolated component must surface ErrIsolated")
	}
}

func TestFitGraphMatchesFitOnSameGeometry(t *testing.T) {
	// Building the graph externally must give the same answer as Fit with
	// the same kernel/bandwidth.
	x, y := twoClusters(61, 10, 4)
	ref, err := Fit(x, y, nil, WithBandwidth(1.5))
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild identical weights manually.
	coo := sparse.NewCOO(len(x), len(x))
	for i := range x {
		for j := i + 1; j < len(x); j++ {
			d2 := (x[i][0]-x[j][0])*(x[i][0]-x[j][0]) + (x[i][1]-x[j][1])*(x[i][1]-x[j][1])
			wv := math.Exp(-d2 / (1.5 * 1.5))
			if wv > 0 {
				if err := coo.AddSym(i, j, wv); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	res, err := FitGraph(coo.ToCSR(), y, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.UnlabeledScores {
		if math.Abs(res.UnlabeledScores[i]-ref.UnlabeledScores[i]) > 1e-9 {
			t.Fatalf("FitGraph disagrees with Fit at %d", i)
		}
	}
}
