package graphssl

import (
	"repro/internal/stats"
)

// Classify thresholds the unlabeled scores at thr (score > thr ⇒ 1),
// returning binary predictions aligned with Result.Unlabeled.
func (r *Result) Classify(thr float64) []float64 {
	out := make([]float64, len(r.UnlabeledScores))
	for i, s := range r.UnlabeledScores {
		if s > thr {
			out[i] = 1
		}
	}
	return out
}

// LabeledScores returns the fitted scores at the labeled nodes, aligned
// with Result.Labeled. Under the hard criterion (λ = 0) these are exactly
// the observed responses; under the soft criterion they are the smoothed
// fit at the labeled points. The serve package uses them as the anchor
// values of the inductive Nadaraya–Watson extension.
func (r *Result) LabeledScores() []float64 {
	out := make([]float64, len(r.Labeled))
	for i, l := range r.Labeled {
		out[i] = r.Scores[l]
	}
	return out
}

// AUC computes the area under the ROC curve of the unlabeled scores against
// the true binary labels (aligned with Result.Unlabeled) — the paper's
// Figure-5 metric.
func (r *Result) AUC(truth []float64) (float64, error) {
	return stats.AUC(r.UnlabeledScores, truth)
}

// RMSE computes the root mean squared error of the unlabeled scores against
// the true regression values (aligned with Result.Unlabeled) — the paper's
// synthetic-study metric.
func (r *Result) RMSE(truth []float64) (float64, error) {
	return stats.RMSE(r.UnlabeledScores, truth)
}

// Accuracy computes the 0.5-threshold classification accuracy of the
// unlabeled scores against true binary labels.
func (r *Result) Accuracy(truth []float64) (float64, error) {
	conf, err := stats.NewConfusion(r.UnlabeledScores, truth, 0.5)
	if err != nil {
		return 0, err
	}
	return conf.Accuracy(), nil
}
