// Image classification on the synthetic COIL-like benchmark: the paper's
// Figure-5 pipeline at example scale. For each λ, a 20%-labeled split is
// scored by AUC on the unlabeled images — the hard criterion (λ=0) wins.
//
//	go run ./examples/imageclass
package main

import (
	"fmt"
	"log"

	graphssl "repro"
	"repro/internal/coil"
	"repro/internal/randx"
	"repro/internal/stats"
)

func main() {
	// 60 images per class = 360 total, structure identical to the paper's
	// 1500-image benchmark.
	ds, err := coil.GenerateSized(3, 60)
	if err != nil {
		log.Fatal(err)
	}
	x := ds.X()
	y := ds.YBinary()

	// One 20/80 labeled/unlabeled split.
	splits, err := coil.Splits(randx.New(5), len(x), coil.Setting20)
	if err != nil {
		log.Fatal(err)
	}
	sp := splits[0]
	yl := make([]float64, len(sp.Labeled))
	for i, idx := range sp.Labeled {
		yl[i] = y[idx]
	}

	fmt.Printf("%d images (%d labeled), σ from the median heuristic\n\n", len(x), len(sp.Labeled))
	fmt.Println("    λ      AUC")
	for _, lambda := range []float64{0, 0.01, 0.1, 1, 5} {
		res, err := graphssl.Fit(x, yl, sp.Labeled, graphssl.WithLambda(lambda))
		if err != nil {
			log.Fatal(err)
		}
		truth := make([]float64, len(res.Unlabeled))
		for i, idx := range res.Unlabeled {
			truth[i] = y[idx]
		}
		auc, err := stats.AUC(res.UnlabeledScores, truth)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6.2f   %.4f\n", lambda, auc)
	}
	fmt.Println("\nAUC is maximized at λ=0 — choose the hard criterion, no tuning needed.")
}
