// Regression: graph-based SSL with continuous responses. Theorem II.1
// covers bounded continuous Y, not just binary labels; this example fits
// the hard criterion to a noisy sinusoidal surface and compares it with the
// Nadaraya–Watson estimator the consistency proof builds on.
//
//	go run ./examples/regression
package main

import (
	"fmt"
	"log"
	"math"

	graphssl "repro"
	"repro/internal/randx"
	"repro/internal/stats"
	"repro/internal/synth"
)

func main() {
	surface := func(x []float64) float64 {
		return math.Sin(2*math.Pi*x[0]) * math.Cos(math.Pi*x[1])
	}
	rng := randx.New(29)
	ds, err := synth.GenerateRegression(rng, surface, 0.2, 400, 50)
	if err != nil {
		log.Fatal(err)
	}
	truth := ds.QUnlabeled()

	hard, err := graphssl.Fit(ds.X, ds.YLabeled(), nil, graphssl.WithPaperBandwidth())
	if err != nil {
		log.Fatal(err)
	}
	rmseHard, err := stats.RMSE(hard.UnlabeledScores, truth)
	if err != nil {
		log.Fatal(err)
	}

	nw, _, err := graphssl.NadarayaWatson(ds.X, ds.YLabeled(), nil, graphssl.WithPaperBandwidth())
	if err != nil {
		log.Fatal(err)
	}
	rmseNW, err := stats.RMSE(nw, truth)
	if err != nil {
		log.Fatal(err)
	}

	soft, err := graphssl.Fit(ds.X, ds.YLabeled(), nil,
		graphssl.WithPaperBandwidth(), graphssl.WithLambda(5))
	if err != nil {
		log.Fatal(err)
	}
	rmseSoft, err := stats.RMSE(soft.UnlabeledScores, truth)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("continuous responses, n=400 labeled, m=50 unlabeled, noise σ=0.2\n\n")
	fmt.Printf("RMSE hard (λ=0):        %.4f\n", rmseHard)
	fmt.Printf("RMSE Nadaraya–Watson:   %.4f   (the proof's anchor — close to hard)\n", rmseNW)
	fmt.Printf("RMSE soft (λ=5):        %.4f   (inconsistent regime)\n", rmseSoft)
}
