// Quickstart: classify the unlabeled half of a two-cluster dataset with the
// hard criterion (the paper's recommended λ = 0 setting).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	graphssl "repro"
	"repro/internal/randx"
)

func main() {
	// Two Gaussian clusters; the first 10 points carry labels.
	rng := randx.New(7)
	var x [][]float64
	var truth []float64
	for i := 0; i < 40; i++ {
		if i%2 == 0 {
			x = append(x, []float64{rng.Norm()*0.4 - 2, rng.Norm() * 0.4})
			truth = append(truth, 1)
		} else {
			x = append(x, []float64{rng.Norm()*0.4 + 2, rng.Norm() * 0.4})
			truth = append(truth, 0)
		}
	}
	y := truth[:10] // only the first 10 labels are observed

	res, err := graphssl.Fit(x, y, nil) // nil ⇒ first len(y) points labeled
	if err != nil {
		log.Fatal(err)
	}

	correct := 0
	for i, idx := range res.Unlabeled {
		pred := 0.0
		if res.UnlabeledScores[i] > 0.5 {
			pred = 1
		}
		if pred == truth[idx] {
			correct++
		}
	}
	fmt.Printf("hard criterion (λ=0), bandwidth %.3f (median heuristic)\n", res.Bandwidth)
	fmt.Printf("accuracy on %d unlabeled points: %d/%d\n",
		len(res.Unlabeled), correct, len(res.Unlabeled))
}
