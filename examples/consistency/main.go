// Consistency demo: Theorem II.1 and Proposition II.2 in action.
//
// The program draws the paper's Model-1 synthetic data with a growing
// labeled size n (m fixed), fits the hard criterion (λ=0) and a strongly
// regularized soft criterion (λ=5), and prints the RMSE against the true
// regression function q(X). The hard criterion's error shrinks toward 0
// (consistency); the soft criterion's stalls (inconsistency).
//
//	go run ./examples/consistency
package main

import (
	"fmt"
	"log"

	graphssl "repro"
	"repro/internal/randx"
	"repro/internal/stats"
	"repro/internal/synth"
)

func main() {
	const (
		m    = 30
		reps = 20
	)
	fmt.Println("   n   RMSE(hard λ=0)  RMSE(soft λ=5)")
	root := randx.New(11)
	for _, n := range []int{30, 100, 300, 900} {
		var hardAcc, softAcc stats.Welford
		for rep := 0; rep < reps; rep++ {
			rng := root.Split()
			ds, err := synth.Generate(rng, synth.Model1, n, m)
			if err != nil {
				log.Fatal(err)
			}
			truth := ds.QUnlabeled()

			hard, err := graphssl.Fit(ds.X, ds.YLabeled(), nil, graphssl.WithPaperBandwidth())
			if err != nil {
				log.Fatal(err)
			}
			rh, err := stats.RMSE(hard.UnlabeledScores, truth)
			if err != nil {
				log.Fatal(err)
			}
			hardAcc.Add(rh)

			soft, err := graphssl.Fit(ds.X, ds.YLabeled(), nil,
				graphssl.WithPaperBandwidth(), graphssl.WithLambda(5))
			if err != nil {
				log.Fatal(err)
			}
			rs, err := stats.RMSE(soft.UnlabeledScores, truth)
			if err != nil {
				log.Fatal(err)
			}
			softAcc.Add(rs)
		}
		fmt.Printf("%4d        %.4f          %.4f\n", n, hardAcc.Mean(), softAcc.Mean())
	}
	fmt.Println("\nhard RMSE falls with n (Theorem II.1); soft RMSE plateaus (Prop. II.2)")
}
