// Distributed fit demo on the promoted public API: the hard criterion
// solved three ways — the single-node direct solver, the sharded PCG
// engine over an in-process fleet, and the same engine coordinating real
// TCP workers started with StartClusterWorker — all agreeing on the same
// harmonic solution, with the distributed runs bitwise-identical across
// shard counts.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"math"

	graphssl "repro"
)

func main() {
	// A 400-node two-cluster dataset with 80 labeled points.
	x := make([][]float64, 400)
	y := make([]float64, 80)
	for i := range x {
		side := float64(i%2)*4 - 2
		x[i] = []float64{side + 0.4*math.Sin(float64(i)), 0.4 * math.Cos(float64(3*i))}
	}
	for i := range y {
		y[i] = float64(i % 2)
	}

	// 1. Single-node reference fit.
	direct, err := graphssl.Fit(x, y, nil, graphssl.WithBandwidth(0.8), graphssl.WithKNN(12), graphssl.WithTolerance(1e-11))
	if err != nil {
		log.Fatal(err)
	}

	maxDev := func(a []float64) float64 {
		var d float64
		for i := range a {
			if dd := math.Abs(a[i] - direct.UnlabeledScores[i]); dd > d {
				d = dd
			}
		}
		return d
	}

	// 2. The sharded PCG engine over an in-process fleet, at several shard
	// counts: the fitted scores must be bitwise-identical across all of
	// them.
	var first []float64
	for _, shards := range []int{1, 2, 4} {
		res, err := graphssl.Fit(x, y, nil,
			graphssl.WithBandwidth(0.8), graphssl.WithKNN(12), graphssl.WithTolerance(1e-11),
			graphssl.WithClusterShards(shards))
		if err != nil {
			log.Fatalf("shards=%d: %v", shards, err)
		}
		fmt.Printf("in-process fleet:  %d shard(s), %d iterations, residual %.2e, max dev vs direct %.2e\n",
			shards, res.Iterations, res.Residual, maxDev(res.UnlabeledScores))
		if first == nil {
			first = res.UnlabeledScores
			continue
		}
		for i := range first {
			if res.UnlabeledScores[i] != first[i] {
				log.Fatalf("shards=%d: scores not bitwise-identical to the 1-shard run", shards)
			}
		}
	}
	fmt.Println("in-process runs bitwise-identical across shard counts")

	// 3. Three real TCP workers on localhost, coordinated by
	// FitDistributed, with crash recovery surfaced via diagnostics.
	var addrs []string
	var workers []*graphssl.ClusterWorker
	for i := 0; i < 3; i++ {
		w, err := graphssl.StartClusterWorker("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		workers = append(workers, w)
		addrs = append(addrs, w.Addr())
	}
	defer func() {
		for _, w := range workers {
			if err := w.Close(); err != nil {
				log.Printf("close worker: %v", err)
			}
		}
	}()
	var rep graphssl.Report
	remote, err := graphssl.FitDistributed(x, y, nil, addrs,
		graphssl.WithBandwidth(0.8), graphssl.WithKNN(12), graphssl.WithTolerance(1e-11),
		graphssl.WithDiagnostics(&rep))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TCP fleet:         %d worker(s), solver %v, %d iterations, %d fallback(s), max dev vs direct %.2e\n",
		len(addrs), remote.Solver, remote.Iterations, len(rep.Fallbacks), maxDev(remote.UnlabeledScores))
	for i := range first {
		if remote.UnlabeledScores[i] != first[i] {
			log.Fatal("TCP fleet scores differ bitwise from the in-process fleet")
		}
	}
	fmt.Println("TCP fleet bitwise-identical to the in-process fleet; all solvers agree")
}
