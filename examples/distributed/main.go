// Distributed propagation demo: the hard criterion solved three ways —
// dense factorization, in-process block-partitioned propagation, and
// real TCP workers coordinating Jacobi supersteps over net/rpc — all
// agreeing on the same harmonic solution.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/randx"
)

func main() {
	// A 400-node random geometric dataset with 80 labeled points.
	rng := randx.New(17)
	x := make([][]float64, 400)
	for i := range x {
		x[i] = []float64{rng.Norm(), rng.Norm()}
	}
	y := make([]float64, 80)
	for i := range y {
		y[i] = rng.Bernoulli(0.5)
	}

	k, err := kernel.New(kernel.Gaussian, 0.8)
	if err != nil {
		log.Fatal(err)
	}
	builder, err := graph.NewBuilder(k, graph.WithKNN(12))
	if err != nil {
		log.Fatal(err)
	}
	g, err := builder.Build(x)
	if err != nil {
		log.Fatal(err)
	}
	p, err := core.NewProblemLabeledFirst(g, y)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Serial dense solve (reference).
	direct, err := core.SolveHard(p)
	if err != nil {
		log.Fatal(err)
	}

	// 2. In-process partitioned propagation with 4 workers.
	sys, err := core.BuildPropagationSystem(p)
	if err != nil {
		log.Fatal(err)
	}
	local, lres, err := cluster.SolveLocal(sys, cluster.LocalOptions{Workers: 4, Tol: 1e-11})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Three real TCP workers on localhost.
	var addrs []string
	var workers []*cluster.Worker
	for i := 0; i < 3; i++ {
		w, err := cluster.StartWorker("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		workers = append(workers, w)
		addrs = append(addrs, w.Addr())
	}
	defer func() {
		for _, w := range workers {
			if err := w.Close(); err != nil {
				log.Printf("close worker: %v", err)
			}
		}
	}()
	remote, rres, err := cluster.SolveRPC(sys, addrs, cluster.RPCOptions{Tol: 1e-11})
	if err != nil {
		log.Fatal(err)
	}

	maxDev := func(a []float64) float64 {
		var d float64
		for i := range a {
			if dd := math.Abs(a[i] - direct.FUnlabeled[i]); dd > d {
				d = dd
			}
		}
		return d
	}
	fmt.Printf("nodes: %d (%d labeled, %d unlabeled), graph edges: %d\n",
		g.N(), p.N(), p.M(), g.Summary().Edges)
	fmt.Printf("in-process engine: %d workers, %d supersteps, max dev vs direct %.2e\n",
		lres.Workers, lres.Supersteps, maxDev(local))
	fmt.Printf("TCP engine:        %d workers, %d supersteps, max dev vs direct %.2e\n",
		rres.Workers, rres.Supersteps, maxDev(remote))
	fmt.Println("all three solvers agree on the harmonic solution")
}
