package graphssl

import (
	"sync"
	"testing"
)

// TestFitConcurrent verifies that independent Fit calls are safe to run in
// parallel: the library holds no mutable global state (run with -race).
func TestFitConcurrent(t *testing.T) {
	x, y := twoClusters(41, 20, 8)
	ref, err := Fit(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	results := make([]*Result, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res, err := Fit(x, y, nil)
			results[w], errs[w] = res, err
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		for i := range ref.UnlabeledScores {
			if results[w].UnlabeledScores[i] != ref.UnlabeledScores[i] {
				t.Fatalf("worker %d produced a different solution", w)
			}
		}
	}
}

// TestFitConcurrentMixedOptions runs different criteria simultaneously.
func TestFitConcurrentMixedOptions(t *testing.T) {
	x, y := twoClusters(43, 15, 6)
	lambdas := []float64{0, 0.01, 0.1, 1, 5}
	var wg sync.WaitGroup
	errs := make([]error, len(lambdas))
	for i, l := range lambdas {
		wg.Add(1)
		go func(i int, l float64) {
			defer wg.Done()
			_, errs[i] = Fit(x, y, nil, WithLambda(l))
		}(i, l)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("λ=%v: %v", lambdas[i], err)
		}
	}
}
