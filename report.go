package graphssl

import (
	"context"
	"errors"
	"expvar"
	"time"

	"repro/internal/core"
)

// Stage is one timed phase of a fit.
type Stage struct {
	// Name identifies the phase ("bandwidth", "graph", "problem", "solve").
	Name string
	// Duration is the phase's wall time.
	Duration time.Duration
}

// Fallback records one backend escalation taken during a solve.
type Fallback struct {
	// From is the backend that failed, To the one tried next.
	From, To Solver
	// Reason is the failure that triggered the escalation.
	Reason string
}

// ApproxInfo documents one attempt of the approximate large-n (Nyström)
// engine armed by WithApprox. The certificate is a posteriori and exact:
// when Accepted, the fitted scores differ from the exact solution of the
// same system by at most Bound in sup norm.
type ApproxInfo struct {
	// Anchors is the reduced system size (labels + coarsening
	// representatives); Levels the multilevel hierarchy depth behind the
	// certificate's barrier solve.
	Anchors int
	Levels  int
	// Bound is the certified sup-norm error bound (+Inf when no
	// certificate exists); Tol the acceptance threshold from WithApprox.
	Bound float64
	Tol   float64
	// Accepted reports whether the approximate answer was kept. When
	// false the fit fell back to the exact path (see Fallbacks).
	Accepted bool
	// ReducedIterations and BarrierIterations report the iterative work of
	// the reduced solve and the certificate's barrier solve.
	ReducedIterations int
	BarrierIterations int
	// Isolated counts extension points with zero similarity mass to every
	// selected anchor (they inflate the bound).
	Isolated int
	// Err records why the engine was unavailable (system too small,
	// reduced graph disconnected, …); empty when the attempt ran.
	Err string
	// Per-stage wall times of the engine's pipeline: spatial coarsening,
	// reduced build+solve, NW extension (with its Jacobi polish), and
	// the barrier certificate.
	TreeNs, ReducedNs, ExtendNs, CertifyNs int64
}

// Health summarizes the pre-solve numerical-health probe of the linear
// system. All fields are deterministic functions of the input data; see
// Report for how to read them.
type Health struct {
	// Unknowns is the linear-system size, NNZ its stored entries.
	Unknowns, NNZ int
	// ZeroDiagonal flags a singular diagonal (an isolated node's row).
	ZeroDiagonal bool
	// MinDiagDominance / MeanDiagDominance are the min and mean per-row
	// ratio of diagonal to off-diagonal absolute mass; values above 1 mean
	// diagonal dominance, the classic iterative-convergence regime.
	MinDiagDominance, MeanDiagDominance float64
	// SpectralRadius estimates the contraction factor of diagonally
	// preconditioned iterations (≥ 1 flags a near-singular system).
	SpectralRadius float64
	// ConditionProxy bounds the preconditioned condition number.
	ConditionProxy float64
}

// RefreshInfo documents one streaming refresh (see the stream package):
// which rung of the escalation ladder produced the accepted solution and
// how much work it took.
type RefreshInfo struct {
	// Kind is the accepted rung: "none", "label-values", "woodbury",
	// "warm-pcg", or "full-refit".
	Kind string
	// Solves and Iterations report the iterative work spent.
	Solves, Iterations int
	// Residual is the verified relative residual of the accepted solution
	// (0 for an exact refit).
	Residual float64
	// Escalated reports that a cheaper rung was abandoned; Reason says why.
	Escalated bool
	Reason    string
	// Applied edit counts since the previous refresh.
	Inserts, Deletes, NewLabels, ValueChanges int
}

// Report documents how a fit ran: per-stage wall clock, the backend chain
// and any fallbacks taken, iterative work, and the numerical-health
// warnings raised by the pre-solve probe. Request one with
// WithDiagnostics; the pointed-to value is overwritten by the fit.
//
// Wall-clock fields are for observability only — every solver decision in
// the pipeline is a pure function of the input data, so two runs over the
// same input produce identical Scores, Solver, Fallbacks, and Warnings.
type Report struct {
	// Stages holds the per-phase wall clock, in execution order.
	Stages []Stage
	// Bandwidth is the kernel bandwidth resolved for the fit.
	Bandwidth float64
	// Solver is the backend that produced the solution; Plan is the chain
	// the auto pipeline decided up front (nil for explicit backends), and
	// PlanReason explains the choice.
	Solver     Solver
	Plan       []Solver
	PlanReason string
	// Iterations and Residual report iterative-backend work.
	Iterations int
	Residual   float64
	// Precond identifies the preconditioner of CG-backed solves ("jacobi",
	// "ic0+rcm", "jacobi+rcm", "none"); empty for direct backends.
	// PrecondSetup is the wall time spent building it (reordering plus
	// factorization; zero for the built-in Jacobi path).
	Precond      string
	PrecondSetup time.Duration
	// Fallbacks are the escalations taken; empty on the happy path.
	Fallbacks []Fallback
	// Approx documents the Nyström attempt of a WithApprox fit (nil when
	// the engine was not armed): the certificate and whether it was kept.
	Approx *ApproxInfo
	// Health is the pre-solve probe of the solved system (nil when the
	// plan did not need it and diagnostics did not force it).
	Health *Health
	// Refresh documents the streaming refresh that produced the current
	// solution (nil for batch fits; see the stream package).
	Refresh *RefreshInfo
	// Warnings are human-readable numerical-health flags.
	Warnings []string
	// Err is the terminal error message, empty on success.
	Err string
}

// Total returns the summed wall clock of all recorded stages.
func (r *Report) Total() time.Duration {
	var t time.Duration
	for _, s := range r.Stages {
		t += s.Duration
	}
	return t
}

// addStage appends a timed stage; nil receivers (no diagnostics requested)
// are tolerated so call sites stay unconditional.
func (r *Report) addStage(name string, d time.Duration) {
	if r != nil {
		r.Stages = append(r.Stages, Stage{Name: name, Duration: d})
	}
}

// fromTrace copies the solver trace of a completed solve into the report.
func (r *Report) fromTrace(tr *core.SolveTrace) {
	if r == nil || tr == nil {
		return
	}
	r.Plan = append([]Solver(nil), tr.Plan...)
	r.PlanReason = tr.PlanReason
	for _, fb := range tr.Fallbacks {
		r.Fallbacks = append(r.Fallbacks, Fallback{From: fb.From, To: fb.To, Reason: fb.Reason})
	}
	if h := tr.Health; h != nil {
		r.Health = &Health{
			Unknowns:          h.Unknowns,
			NNZ:               h.NNZ,
			ZeroDiagonal:      h.ZeroDiagonal,
			MinDiagDominance:  h.MinDiagDominance,
			MeanDiagDominance: h.MeanDiagDominance,
			SpectralRadius:    h.JacobiSpectralRadius,
			ConditionProxy:    h.ConditionProxy,
		}
		r.Warnings = append(r.Warnings, h.Warnings...)
	}
}

// Package-level expvar counters, exported under the "graphssl." prefix for
// scraping via the standard expvar HTTP handler. They aggregate across all
// fits in the process.
var (
	fitsTotal           = expvar.NewInt("graphssl.fits_total")
	fitErrorsTotal      = expvar.NewInt("graphssl.fit_errors_total")
	fallbacksTotal      = expvar.NewInt("graphssl.fallbacks_total")
	cancellationsTotal  = expvar.NewInt("graphssl.cancellations_total")
	healthWarningsTotal = expvar.NewInt("graphssl.health_warnings_total")
	solverChosen        = expvar.NewMap("graphssl.solver_chosen")
	precondChosen       = expvar.NewMap("graphssl.precond_chosen")
	precondSetupNanos   = expvar.NewInt("graphssl.precond_setup_nanos_total")
	snapshotsTotal      = expvar.NewInt("graphssl.snapshots_total")
	approxAcceptedTotal = expvar.NewInt("graphssl.approx_accepted_total")
	approxFallbackTotal = expvar.NewInt("graphssl.approx_fallbacks_total")
)

// countApprox updates the expvar counters from one Nyström-engine attempt.
func countApprox(accepted bool) {
	if accepted {
		approxAcceptedTotal.Add(1)
	} else {
		approxFallbackTotal.Add(1)
	}
}

// countSnapshot updates the expvar counters from one successful Result
// snapshot (the serve subsystem's model-freeze hook).
func countSnapshot() {
	snapshotsTotal.Add(1)
}

// countFit updates the expvar counters from one finished fit.
func countFit(rep *Report, err error) {
	fitsTotal.Add(1)
	if rep != nil {
		fallbacksTotal.Add(int64(len(rep.Fallbacks)))
		healthWarningsTotal.Add(int64(len(rep.Warnings)))
		if err == nil {
			solverChosen.Add(rep.Solver.String(), 1)
			if rep.Precond != "" {
				precondChosen.Add(rep.Precond, 1)
				precondSetupNanos.Add(rep.PrecondSetup.Nanoseconds())
			}
		}
	}
	if err != nil {
		fitErrorsTotal.Add(1)
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			cancellationsTotal.Add(1)
		}
	}
}
