package graphssl

import (
	"errors"
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/cluster/chaostest"
)

// TestFitWithClusterShards drives the sharded PCG engine through the public
// API with an in-process fleet: the result must match the direct solve to
// tolerance, carry cluster metadata, and be bitwise-identical across shard
// counts.
func TestFitWithClusterShards(t *testing.T) {
	x, y := twoClusters(21, 20, 8)
	ref, err := Fit(x, y, nil, WithTolerance(1e-12))
	if err != nil {
		t.Fatal(err)
	}
	var first []float64
	for _, shards := range []int{1, 2, 4} {
		res, err := Fit(x, y, nil, WithClusterShards(shards), WithTolerance(1e-12))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if res.Solver != SolverCluster || res.Iterations <= 0 {
			t.Fatalf("shards=%d: cluster metadata wrong: %+v", shards, res)
		}
		for i := range ref.UnlabeledScores {
			if math.Abs(res.UnlabeledScores[i]-ref.UnlabeledScores[i]) > 1e-6 {
				t.Fatalf("shards=%d: cluster result differs from direct solve", shards)
			}
		}
		for i, l := range res.Labeled {
			if res.Scores[l] != y[i] {
				t.Fatalf("shards=%d: cluster result must interpolate labels", shards)
			}
		}
		if first == nil {
			first = res.UnlabeledScores
			continue
		}
		for i := range first {
			if res.UnlabeledScores[i] != first[i] {
				t.Fatalf("shards=%d: result not bitwise-identical to 1-shard run", shards)
			}
		}
	}
}

// TestFitDistributedTCPFleet runs the full deployment shape: real workers on
// loopback TCP, coordinated through FitDistributed.
func TestFitDistributedTCPFleet(t *testing.T) {
	x, y := twoClusters(23, 18, 8)
	ref, err := Fit(x, y, nil, WithTolerance(1e-12))
	if err != nil {
		t.Fatal(err)
	}
	var addrs []string
	for i := 0; i < 2; i++ {
		w, err := StartClusterWorker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		addrs = append(addrs, w.Addr())
	}
	var rep Report
	res, err := FitDistributed(x, y, nil, addrs, WithTolerance(1e-12), WithDiagnostics(&rep))
	if err != nil {
		t.Fatal(err)
	}
	if res.Solver != SolverCluster || rep.Solver != SolverCluster {
		t.Fatalf("solver not reported as cluster: %v / %v", res.Solver, rep.Solver)
	}
	if rep.Iterations != res.Iterations || res.Iterations <= 0 {
		t.Fatalf("iteration metadata wrong: %+v", rep)
	}
	if len(rep.Fallbacks) != 0 {
		t.Fatalf("healthy fleet must not report fallbacks: %+v", rep.Fallbacks)
	}
	for i := range ref.UnlabeledScores {
		if math.Abs(res.UnlabeledScores[i]-ref.UnlabeledScores[i]) > 1e-6 {
			t.Fatal("TCP fleet result differs from direct solve")
		}
	}
}

// TestClusterRecoverySurfacedInReport injects a worker crash mid-fit; the
// coordinator must recover and surface the rebind as a Report fallback.
func TestClusterRecoverySurfacedInReport(t *testing.T) {
	x, y := twoClusters(25, 22, 8)
	ref, err := Fit(x, y, nil, WithTolerance(1e-12))
	if err != nil {
		t.Fatal(err)
	}
	script := func(addr, method string, n int) chaostest.Fault {
		if addr == "w1" && n == 5 {
			return chaostest.Close
		}
		return chaostest.None
	}
	dial := chaostest.Dialer(cluster.InProcessDialer(), script, 0)
	var rep Report
	res, err := Fit(x, y, nil,
		WithCluster("w0", "w1", "w2", "w3"),
		withClusterDialer(dial),
		WithTolerance(1e-12),
		WithDiagnostics(&rep))
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if len(rep.Fallbacks) == 0 {
		t.Fatal("worker crash recovery not surfaced as a fallback")
	}
	fb := rep.Fallbacks[0]
	if fb.From != SolverCluster || fb.To != SolverCluster || fb.Reason == "" {
		t.Fatalf("fallback entry wrong: %+v", fb)
	}
	for i := range ref.UnlabeledScores {
		if math.Abs(res.UnlabeledScores[i]-ref.UnlabeledScores[i]) > 1e-6 {
			t.Fatal("recovered result differs from direct solve")
		}
	}
}

// TestClusterFailureTyped kills every worker: the public fit must fail with
// the typed ErrWorker, never return a result.
func TestClusterFailureTyped(t *testing.T) {
	x, y := twoClusters(27, 15, 6)
	script := func(addr, method string, n int) chaostest.Fault {
		if n >= 3 {
			return chaostest.Close
		}
		return chaostest.None
	}
	dial := chaostest.Dialer(cluster.InProcessDialer(), script, 0)
	res, err := Fit(x, y, nil, WithCluster("w0", "w1"), withClusterDialer(dial))
	if !errors.Is(err, ErrWorker) {
		t.Fatalf("want ErrWorker, got %v", err)
	}
	if res != nil {
		t.Fatal("failed fit must not return a result")
	}
}

func TestClusterOptionValidation(t *testing.T) {
	x, y := twoClusters(29, 10, 4)
	if _, err := Fit(x, y, nil, WithCluster()); !errors.Is(err, ErrParam) {
		t.Fatalf("empty WithCluster: want ErrParam, got %v", err)
	}
	if _, err := Fit(x, y, nil, WithClusterShards(2), WithLambda(1)); !errors.Is(err, ErrParam) {
		t.Fatalf("cluster with λ>0: want ErrParam, got %v", err)
	}
	if _, err := Fit(x, y, nil, WithClusterShards(-1)); !errors.Is(err, ErrParam) {
		t.Fatalf("negative shards: want ErrParam, got %v", err)
	}
	if _, err := Fit(x, y, nil, WithDistributed(2), WithClusterShards(2)); !errors.Is(err, ErrParam) {
		t.Fatalf("mixed engines: want ErrParam, got %v", err)
	}
	if _, err := Fit(x, y, nil, WithSolver(SolverCluster)); !errors.Is(err, ErrParam) {
		t.Fatalf("WithSolver(SolverCluster): want ErrParam, got %v", err)
	}
	labels := make([]int, 4)
	labels[1], labels[3] = 1, 1
	if _, err := FitMulticlass(x, labels, nil, false, WithClusterShards(2)); !errors.Is(err, ErrParam) {
		t.Fatalf("multiclass cluster: want ErrParam, got %v", err)
	}
}
