package graphssl

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mat"
)

// MulticlassResult is a fitted K-way transductive model.
type MulticlassResult struct {
	// Classes is the sorted class-id axis of Scores' columns.
	Classes []int
	// Unlabeled are the predicted point indices (ascending).
	Unlabeled []int
	// Scores is (#unlabeled)×(#classes) one-vs-rest criterion scores.
	Scores *mat.Dense
	// Predicted is the argmax class per unlabeled point.
	Predicted []int
	// Lambda is the criterion parameter used.
	Lambda float64
	// Bandwidth is the kernel bandwidth actually used.
	Bandwidth float64
}

// FitMulticlass fits a K-way one-vs-rest model: one criterion solve per
// class indicator, argmax prediction, optionally class-mass-normalized
// (Zhu et al.'s CMN) against the labeled class frequencies.
//
// labels holds non-negative class ids aligned with labeled; labeled = nil
// uses the paper's layout (first len(labels) points labeled). All Fit
// options apply except the distributed ones (WithDistributed, WithCluster,
// WithClusterShards).
func FitMulticlass(x [][]float64, labels []int, labeled []int, normalize bool, opts ...Option) (*MulticlassResult, error) {
	y := make([]float64, len(labels)) // placeholder responses for prepare
	p, cfg, bw, _, err := prepare(x, y, labeled, opts)
	if err != nil {
		return nil, err
	}
	if cfg.distributed > 0 || cfg.clusterSet || cfg.shards != 0 {
		return nil, fmt.Errorf("graphssl: multiclass does not support distributed fits: %w", ErrParam)
	}
	mp, err := core.BuildMulticlass(p, labels)
	if err != nil {
		return nil, translateCoreErr(err)
	}
	sol, err := mp.Solve(cfg.lambda, normalize,
		core.WithMethod(cfg.solver),
		core.WithTolerance(cfg.tol),
		core.WithMaxIter(cfg.maxIter),
		core.WithWorkers(cfg.workers))
	if err != nil {
		return nil, translateCoreErr(err)
	}
	return &MulticlassResult{
		Classes:   sol.Classes,
		Unlabeled: p.Unlabeled(),
		Scores:    sol.Scores,
		Predicted: sol.Predicted,
		Lambda:    cfg.lambda,
		Bandwidth: bw,
	}, nil
}

// Diagnostics re-exports the consistency diagnostics of Theorem II.1's
// proof (see internal/core.Diagnostics).
type Diagnostics = core.Diagnostics

// Diagnose builds the problem exactly as Fit would and computes the
// proof-driven consistency diagnostics: the unlabeled-mass ratio that
// bounds the g-term, and the empirical gap between the hard criterion and
// the Nadaraya–Watson estimator.
func Diagnose(x [][]float64, y []float64, labeled []int, opts ...Option) (*Diagnostics, error) {
	p, _, _, _, err := prepare(x, y, labeled, opts)
	if err != nil {
		return nil, err
	}
	d, err := core.Diagnose(p)
	if err != nil {
		return nil, translateCoreErr(err)
	}
	return d, nil
}
