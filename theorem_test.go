package graphssl

import (
	"math"
	"testing"

	"repro/internal/randx"
	"repro/internal/synth"
)

// TestTheoremII1Consistency exercises the paper's Theorem II.1 at the public
// API: with bandwidth h_n = c·n^{-1/(d+2)}, the hard-criterion estimate at
// the unlabeled points converges to the regression function q(X) as the
// labeled size n grows, and it stays glued to the Nadaraya–Watson estimate
// (the two share a limit). The test averages a seeded handful of replicates
// per n — enough to expose the trend while staying inside the tier-1 budget.
func TestTheoremII1Consistency(t *testing.T) {
	const (
		c    = 1.3 // bandwidth scale for h_n = c·n^{-1/(d+2)}
		m    = 30  // unlabeled points per replicate
		reps = 6
	)
	ns := []int{30, 80, 200, 500}
	exponent := -1.0 / float64(synth.Dim+2)

	mse := make([]float64, len(ns))
	supNW := make([]float64, len(ns))
	root := randx.New(271)
	for i, n := range ns {
		h := c * math.Pow(float64(n), exponent)
		var sumSq, maxGap float64
		var count int
		for rep := 0; rep < reps; rep++ {
			ds, err := synth.Generate(root.Split(), synth.Model1, n, m)
			if err != nil {
				t.Fatal(err)
			}
			labeled := make([]int, n)
			for j := range labeled {
				labeled[j] = j
			}
			res, err := Fit(ds.X, ds.YLabeled(), labeled, WithBandwidth(h))
			if err != nil {
				t.Fatalf("n=%d rep=%d: %v", n, rep, err)
			}
			nw, unl, err := NadarayaWatson(ds.X, ds.YLabeled(), labeled, WithBandwidth(h))
			if err != nil {
				t.Fatalf("n=%d rep=%d NW: %v", n, rep, err)
			}
			q := ds.QUnlabeled()
			for r, u := range unl {
				d := res.Scores[u] - q[r]
				sumSq += d * d
				count++
				if gap := math.Abs(res.Scores[u] - nw[r]); gap > maxGap {
					maxGap = gap
				}
			}
		}
		mse[i] = sumSq / float64(count)
		supNW[i] = maxGap
		t.Logf("n=%4d h=%.4f  MSE(q)=%.5f  sup|hard-NW|=%.5f", n, h, mse[i], supNW[i])
	}

	// MSE against q(X) must trend down the ladder: each step may wobble by a
	// small factor, and the endpoints must show a clear drop.
	for i := 1; i < len(mse); i++ {
		if mse[i] > mse[i-1]*1.10 {
			t.Errorf("MSE rose from %.5f (n=%d) to %.5f (n=%d)", mse[i-1], ns[i-1], mse[i], ns[i])
		}
	}
	if mse[len(mse)-1] > 0.6*mse[0] {
		t.Errorf("MSE did not shrink: first %.5f, last %.5f", mse[0], mse[len(mse)-1])
	}
	// The hard criterion and Nadaraya–Watson share the Theorem II.1 limit, so
	// their sup distance at the evaluation points must shrink too.
	if supNW[len(supNW)-1] > 0.8*supNW[0] {
		t.Errorf("sup|hard-NW| did not shrink: first %.5f, last %.5f", supNW[0], supNW[len(supNW)-1])
	}
}
