package graphssl

import (
	"context"
	"errors"
	"expvar"
	"math/rand"
	"strconv"
	"testing"
	"time"
)

func robustTestData(seed int64, n, labels int) ([][]float64, []float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	for i := range x {
		x[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	y := make([]float64, labels)
	labeled := make([]int, labels)
	for i := range y {
		y[i] = float64(rng.Intn(2))
		labeled[i] = i
	}
	return x, y, labeled
}

func expvarInt(t *testing.T, name string) int64 {
	t.Helper()
	v := expvar.Get(name)
	if v == nil {
		t.Fatalf("expvar %q not published", name)
	}
	n, err := strconv.ParseInt(v.String(), 10, 64)
	if err != nil {
		t.Fatalf("expvar %q = %q: %v", name, v.String(), err)
	}
	return n
}

func TestFitCanceledContext(t *testing.T) {
	x, y, labeled := robustTestData(1, 60, 15)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := expvarInt(t, "graphssl.cancellations_total")
	_, err := Fit(x, y, labeled, WithContext(ctx))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := expvarInt(t, "graphssl.cancellations_total"); got != before+1 {
		t.Fatalf("cancellations_total %d -> %d, want +1", before, got)
	}
}

func TestFitDeadlineExceeded(t *testing.T) {
	x, y, labeled := robustTestData(2, 40, 10)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := Fit(x, y, labeled, WithContext(ctx))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestWithDiagnosticsReport(t *testing.T) {
	x, y, labeled := robustTestData(3, 80, 20)
	var rep Report
	res, err := Fit(x, y, labeled, WithDiagnostics(&rep))
	if err != nil {
		t.Fatal(err)
	}
	wantStages := []string{"bandwidth", "graph", "problem", "solve"}
	if len(rep.Stages) != len(wantStages) {
		t.Fatalf("stages = %v", rep.Stages)
	}
	for i, s := range rep.Stages {
		if s.Name != wantStages[i] {
			t.Fatalf("stage %d = %q, want %q", i, s.Name, wantStages[i])
		}
		if s.Duration < 0 {
			t.Fatalf("stage %q has negative duration", s.Name)
		}
	}
	if rep.Total() <= 0 {
		t.Fatalf("total duration %v", rep.Total())
	}
	if rep.Bandwidth <= 0 {
		t.Fatalf("bandwidth %v not recorded", rep.Bandwidth)
	}
	if rep.Solver != res.Solver {
		t.Fatalf("report solver %v != result solver %v", rep.Solver, res.Solver)
	}
	if rep.Err != "" {
		t.Fatalf("successful fit recorded error %q", rep.Err)
	}
	if len(rep.Fallbacks) != 0 {
		t.Fatalf("healthy fit recorded fallbacks %+v", rep.Fallbacks)
	}
}

func TestWithDiagnosticsReportIsReset(t *testing.T) {
	x, y, labeled := robustTestData(4, 50, 12)
	rep := Report{Err: "stale", Stages: []Stage{{Name: "stale"}}}
	if _, err := Fit(x, y, labeled, WithDiagnostics(&rep)); err != nil {
		t.Fatal(err)
	}
	if rep.Err != "" || (len(rep.Stages) > 0 && rep.Stages[0].Name == "stale") {
		t.Fatalf("report not reset: %+v", rep)
	}
}

func TestDiagnosticsDoNotPerturbScores(t *testing.T) {
	x, y, labeled := robustTestData(5, 70, 18)
	plain, err := Fit(x, y, labeled)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	diag, err := Fit(x, y, labeled, WithDiagnostics(&rep))
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Scores {
		if plain.Scores[i] != diag.Scores[i] {
			t.Fatalf("scores differ at %d with diagnostics enabled", i)
		}
	}
}

// TestFitFallbackRecordedInReport drives SolverAuto into its CG-first chain
// with a starved iteration budget and checks the escalation shows up in the
// public report.
func TestFitFallbackRecordedInReport(t *testing.T) {
	x, y, labeled := robustTestData(6, 80, 15)
	before := expvarInt(t, "graphssl.fallbacks_total")
	var rep Report
	// Jacobi keeps the one-iteration budget insufficient; IC(0) is exact on
	// this dense-pattern system and would converge immediately.
	res, err := Fit(x, y, labeled,
		WithAutoCutoff(1), WithMaxIter(1), WithTolerance(1e-14),
		WithPreconditioner(PrecondJacobi), WithDiagnostics(&rep))
	if err != nil {
		t.Fatalf("fallback chain did not complete: %v", err)
	}
	if res.Solver != SolverCholesky {
		t.Fatalf("settled on %v, want cholesky", res.Solver)
	}
	if len(rep.Plan) != 3 || rep.Plan[0] != SolverCG {
		t.Fatalf("plan = %v", rep.Plan)
	}
	if len(rep.Fallbacks) != 1 || rep.Fallbacks[0].From != SolverCG || rep.Fallbacks[0].To != SolverCholesky {
		t.Fatalf("fallbacks = %+v", rep.Fallbacks)
	}
	if rep.Fallbacks[0].Reason == "" {
		t.Fatal("fallback recorded without a reason")
	}
	if rep.Health == nil {
		t.Fatal("CG-first plan ran without a health probe")
	}
	if rep.Health.Unknowns != len(x)-len(labeled) {
		t.Fatalf("health unknowns = %d, want %d", rep.Health.Unknowns, len(x)-len(labeled))
	}
	if got := expvarInt(t, "graphssl.fallbacks_total"); got != before+1 {
		t.Fatalf("fallbacks_total %d -> %d, want +1", before, got)
	}

	// Determinism: the fallback decision is a pure function of the input.
	var rep2 Report
	res2, err := Fit(x, y, labeled,
		WithAutoCutoff(1), WithMaxIter(1), WithTolerance(1e-14),
		WithPreconditioner(PrecondJacobi), WithDiagnostics(&rep2))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Solver != res.Solver || len(rep2.Fallbacks) != len(rep.Fallbacks) {
		t.Fatal("fallback decision not reproducible")
	}
	for i := range res.Scores {
		if res.Scores[i] != res2.Scores[i] {
			t.Fatalf("fallback scores differ at %d across reruns", i)
		}
	}
}

func TestFitCountersMove(t *testing.T) {
	x, y, labeled := robustTestData(7, 40, 10)
	fits := expvarInt(t, "graphssl.fits_total")
	errsBefore := expvarInt(t, "graphssl.fit_errors_total")
	if _, err := Fit(x, y, labeled); err != nil {
		t.Fatal(err)
	}
	if got := expvarInt(t, "graphssl.fits_total"); got != fits+1 {
		t.Fatalf("fits_total %d -> %d, want +1", fits, got)
	}
	if _, err := Fit(x, y, labeled, WithBandwidth(-1)); err == nil {
		t.Fatal("negative bandwidth accepted")
	}
	if got := expvarInt(t, "graphssl.fit_errors_total"); got != errsBefore+1 {
		t.Fatalf("fit_errors_total %d -> %d, want +1", errsBefore, got)
	}
}

func TestReportCapturesErrors(t *testing.T) {
	x, y, labeled := robustTestData(8, 30, 8)
	var rep Report
	_, err := Fit(x, y, labeled, WithBandwidth(-1), WithDiagnostics(&rep))
	if err == nil {
		t.Fatal("expected error")
	}
	if rep.Err == "" {
		t.Fatal("report did not capture the fit error")
	}
}
