package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const infoCSV = `x1,x2
0,0
0.1,0
0.2,0.1
2,2
2.1,2
2.2,2.1
`

func TestRunReportsStats(t *testing.T) {
	path := writeTemp(t, infoCSV)
	var sb strings.Builder
	if err := run([]string{"-in", path}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"points:       6 (dim 2)", "edges:", "components:   1", "connectivity:", "L_sym eigs:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunDisconnectedGraph(t *testing.T) {
	path := writeTemp(t, infoCSV)
	var sb strings.Builder
	// Tiny uniform kernel: the two clusters disconnect.
	if err := run([]string{"-in", path, "-kernel", "uniform", "-bandwidth", "0.5", "-eigs", "0"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "components:   2") {
		t.Fatalf("expected 2 components:\n%s", sb.String())
	}
	if strings.Contains(sb.String(), "connectivity:") {
		t.Fatal("connectivity must be skipped for disconnected graphs")
	}
}

func TestRunDropColumn(t *testing.T) {
	path := writeTemp(t, "x,y,label\n0,0,1\n1,1,0\n2,2,1\n")
	var sb strings.Builder
	if err := run([]string{"-in", path, "-drop", "1", "-eigs", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "points:       3 (dim 2)") {
		t.Fatalf("drop failed:\n%s", sb.String())
	}
}

func TestRunKNNOption(t *testing.T) {
	path := writeTemp(t, infoCSV)
	var sb strings.Builder
	if err := run([]string{"-in", path, "-knn", "2", "-eigs", "0"}, &sb); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{}, &sb); err == nil {
		t.Fatal("missing -in must error")
	}
	if err := run([]string{"-in", "/nonexistent.csv"}, &sb); err == nil {
		t.Fatal("missing file must error")
	}
	bad := writeTemp(t, "x\nfoo\n")
	if err := run([]string{"-in", bad}, &sb); err == nil {
		t.Fatal("non-numeric must error")
	}
	empty := writeTemp(t, "x\n")
	if err := run([]string{"-in", empty}, &sb); err == nil {
		t.Fatal("empty must error")
	}
	overdrop := writeTemp(t, "x\n1\n2\n")
	if err := run([]string{"-in", overdrop, "-drop", "1"}, &sb); err == nil {
		t.Fatal("drop >= columns must error")
	}
	path := writeTemp(t, infoCSV)
	if err := run([]string{"-in", path, "-kernel", "warp"}, &sb); err == nil {
		t.Fatal("unknown kernel must error")
	}
	if err := run([]string{"-in", path, "-badflag"}, &sb); err == nil {
		t.Fatal("bad flag must error")
	}
}
