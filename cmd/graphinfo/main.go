// Command graphinfo analyzes the similarity graph a dataset would induce:
// node/edge counts, degree statistics, connected components, algebraic
// connectivity (Fiedler value), and the leading normalized-Laplacian
// eigenvalues. Useful for checking the cluster assumption and the
// label-coverage condition before running graph-based SSL.
//
// Input: CSV of feature columns (a header row by default; use -header=false
// for raw data). Any trailing response column can be skipped with -drop 1.
//
// Usage:
//
//	graphinfo -in data.csv [-kernel gaussian] [-bandwidth 0] [-knn 0]
//	          [-drop 0] [-eigs 4]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/kernel"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "graphinfo:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("graphinfo", flag.ContinueOnError)
	var (
		inPath    = fs.String("in", "", "input CSV (required)")
		kern      = fs.String("kernel", "gaussian", "kernel profile")
		bandwidth = fs.Float64("bandwidth", 0, "kernel bandwidth (0 = median heuristic)")
		knn       = fs.Int("knn", 0, "k-NN sparsification (0 = full graph)")
		drop      = fs.Int("drop", 0, "trailing columns to ignore (e.g. a label column)")
		eigs      = fs.Int("eigs", 4, "leading normalized-Laplacian eigenvalues to report (0 = skip)")
		header    = fs.Bool("header", true, "input has a header row")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inPath == "" {
		return fmt.Errorf("-in is required")
	}
	x, err := readFeatures(*inPath, *header, *drop)
	if err != nil {
		return err
	}

	kind, err := kernel.Parse(*kern)
	if err != nil {
		return err
	}
	bw := *bandwidth
	if bw <= 0 {
		bw, err = kernel.MedianHeuristic(x, 200000)
		if err != nil {
			return err
		}
	}
	k, err := kernel.New(kind, bw)
	if err != nil {
		return err
	}
	var opts []graph.Option
	if *knn > 0 {
		opts = append(opts, graph.WithKNN(*knn))
	}
	builder, err := graph.NewBuilder(k, opts...)
	if err != nil {
		return err
	}
	g, err := builder.Build(x)
	if err != nil {
		return err
	}

	s := g.Summary()
	fmt.Fprintf(out, "points:       %d (dim %d)\n", len(x), len(x[0]))
	fmt.Fprintf(out, "kernel:       %v, bandwidth %.6g\n", kind, bw)
	fmt.Fprintf(out, "edges:        %d\n", s.Edges)
	fmt.Fprintf(out, "degree:       min %.4g  mean %.4g  max %.4g\n", s.MinDegree, s.MeanDegree, s.MaxDegree)
	fmt.Fprintf(out, "components:   %d\n", s.Components)
	if s.Components == 1 && len(x) >= 2 {
		lam, err := g.AlgebraicConnectivity(0)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "connectivity: λ₂ = %.6g\n", lam)
	}
	if *eigs > 0 {
		kEigs := *eigs
		if kEigs > len(x) {
			kEigs = len(x)
		}
		_, vals, err := g.SpectralEmbedding(kEigs)
		if err != nil {
			return err
		}
		parts := make([]string, len(vals))
		for i, v := range vals {
			parts[i] = strconv.FormatFloat(v, 'g', 6, 64)
		}
		fmt.Fprintf(out, "L_sym eigs:   %s\n", strings.Join(parts, ", "))
	}
	return nil
}

func readFeatures(path string, hasHeader bool, drop int) ([][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.TrimLeadingSpace = true
	rows, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if hasHeader && len(rows) > 0 {
		rows = rows[1:]
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("%s: no data rows", path)
	}
	var x [][]float64
	for i, row := range rows {
		if len(row) <= drop {
			return nil, fmt.Errorf("%s row %d: %d columns with drop=%d", path, i+1, len(row), drop)
		}
		feats := make([]float64, len(row)-drop)
		for j := range feats {
			v, err := strconv.ParseFloat(strings.TrimSpace(row[j]), 64)
			if err != nil {
				return nil, fmt.Errorf("%s row %d col %d: %w", path, i+1, j+1, err)
			}
			feats[j] = v
		}
		x = append(x, feats)
	}
	return x, nil
}
