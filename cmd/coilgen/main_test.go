package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/coil"
)

func TestRunStdout(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-perclass", "2", "-seed", "5"}, &sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 1+coil.Classes*2 {
		t.Fatalf("lines = %d, want %d", len(lines), 1+coil.Classes*2)
	}
	if !strings.HasPrefix(lines[0], "p0,p1,") || !strings.HasSuffix(lines[0], "object,angle,class,binary") {
		t.Fatalf("header: %s", lines[0])
	}
	cols := strings.Split(lines[1], ",")
	if len(cols) != coil.Pixels+4 {
		t.Fatalf("columns = %d, want %d", len(cols), coil.Pixels+4)
	}
}

func TestRunToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "coil.csv")
	var sb strings.Builder
	if err := run([]string{"-perclass", "1", "-out", path}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("file empty")
	}
	if sb.Len() != 0 {
		t.Fatal("stdout must be empty when -out is set")
	}
}

func TestRunWritesPGMs(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "pgm")
	var sb strings.Builder
	if err := run([]string{"-perclass", "1", "-pgm", dir, "-out", filepath.Join(t.TempDir(), "c.csv")}, &sb); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// perclass=1 keeps 1 image per class = 6 images, from 6 distinct
	// objects (one per class at minimum).
	if len(entries) < coil.Classes {
		t.Fatalf("pgm files = %d, want >= %d", len(entries), coil.Classes)
	}
	data, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "P5\n16 16\n255\n") {
		t.Fatalf("PGM header wrong: %q", data[:20])
	}
	if len(data) != len("P5\n16 16\n255\n")+coil.Pixels {
		t.Fatalf("PGM size %d", len(data))
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-perclass", "0"}, &sb); err == nil {
		t.Fatal("perclass=0 must error")
	}
	if err := run([]string{"-badflag"}, &sb); err == nil {
		t.Fatal("bad flag must error")
	}
	if err := run([]string{"-perclass", "1", "-out", "/nonexistent/dir/x.csv"}, &sb); err == nil {
		t.Fatal("bad output path must error")
	}
}
