// Command coilgen renders the synthetic COIL-like benchmark (the stand-in
// for the Columbia Object Image Library described in DESIGN.md) and writes
// it as CSV: 256 pixel columns, then object, angle, class, and binary label.
// With -pgm it additionally dumps one PGM image per object (angle 0) for
// visual inspection.
//
// Usage:
//
//	coilgen [-perclass 250] [-seed 1] [-out coil.csv] [-pgm dir]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/coil"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "coilgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("coilgen", flag.ContinueOnError)
	var (
		perClass = fs.Int("perclass", coil.PerClassKept, "images kept per class (paper: 250)")
		seed     = fs.Int64("seed", 1, "random seed")
		outPath  = fs.String("out", "", "output file (default stdout)")
		pgmDir   = fs.String("pgm", "", "also write one PGM per object (angle 0) into this directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ds, err := coil.GenerateSized(*seed, *perClass)
	if err != nil {
		return err
	}
	if *pgmDir != "" {
		if err := writePGMs(ds, *pgmDir); err != nil {
			return err
		}
	}

	var out io.Writer = stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "coilgen: close:", cerr)
			}
		}()
		out = f
	}
	w := bufio.NewWriter(out)

	for p := 0; p < coil.Pixels; p++ {
		fmt.Fprintf(w, "p%d,", p)
	}
	fmt.Fprintln(w, "object,angle,class,binary")
	for _, img := range ds.Images {
		for _, v := range img.X {
			w.WriteString(strconv.FormatFloat(v, 'f', 5, 64))
			w.WriteByte(',')
		}
		fmt.Fprintf(w, "%d,%d,%d,%d\n", img.Object, img.AngleIndex, img.Class, int(img.Binary))
	}
	return w.Flush()
}

// writePGMs dumps the first available view of each object as a binary PGM.
func writePGMs(ds *coil.Dataset, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	written := make(map[int]bool, coil.Objects)
	for _, img := range ds.Images {
		if written[img.Object] {
			continue
		}
		written[img.Object] = true
		path := filepath.Join(dir, fmt.Sprintf("object%02d_class%d.pgm", img.Object, img.Class))
		var buf []byte
		buf = append(buf, fmt.Sprintf("P5\n%d %d\n255\n", coil.Side, coil.Side)...)
		for _, v := range img.X {
			buf = append(buf, byte(v*255+0.5))
		}
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			return err
		}
	}
	return nil
}
