// Command ssldemo fits graph-based semi-supervised learning to a CSV file
// and prints predicted scores for the unlabeled rows.
//
// Input format: one row per point; all columns but the last are features;
// the last column is the response, with an empty field marking unlabeled
// rows.
//
//	x1,x2,y
//	0.1,0.2,1
//	0.3,0.1,0
//	0.2,0.2,        <- unlabeled; will be predicted
//
// Usage:
//
//	ssldemo -in data.csv [-lambda 0] [-kernel gaussian] [-bandwidth 0]
//	        [-knn 0] [-solver auto]
//
// With -bandwidth 0 the median heuristic is used.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	graphssl "repro"
	"repro/internal/kernel"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ssldemo:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ssldemo", flag.ContinueOnError)
	var (
		inPath    = fs.String("in", "", "input CSV (required)")
		lambda    = fs.Float64("lambda", 0, "soft-criterion λ (0 = hard criterion)")
		kern      = fs.String("kernel", "gaussian", "kernel: gaussian uniform epanechnikov triangular tricube")
		bandwidth = fs.Float64("bandwidth", 0, "kernel bandwidth (0 = median heuristic)")
		knn       = fs.Int("knn", 0, "k-NN graph sparsification (0 = full graph)")
		solver    = fs.String("solver", "auto", "solver: auto cholesky lu cg propagation")
		header    = fs.Bool("header", true, "input has a header row")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inPath == "" {
		return fmt.Errorf("-in is required")
	}

	x, y, labeled, err := readCSV(*inPath, *header)
	if err != nil {
		return err
	}

	kind, err := kernel.Parse(*kern)
	if err != nil {
		return err
	}
	s, err := parseSolver(*solver)
	if err != nil {
		return err
	}
	opts := []graphssl.Option{
		graphssl.WithKernel(kind),
		graphssl.WithLambda(*lambda),
		graphssl.WithSolver(s),
	}
	if *bandwidth > 0 {
		opts = append(opts, graphssl.WithBandwidth(*bandwidth))
	}
	if *knn > 0 {
		opts = append(opts, graphssl.WithKNN(*knn))
	}

	res, err := graphssl.Fit(x, y, labeled, opts...)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "# %d points, %d labeled, %d unlabeled; λ=%g, bandwidth=%.4g, solver=%v\n",
		len(x), len(res.Labeled), len(res.Unlabeled), res.Lambda, res.Bandwidth, res.Solver)
	fmt.Fprintln(out, "row,score,class")
	for i, idx := range res.Unlabeled {
		score := res.UnlabeledScores[i]
		class := 0
		if score > 0.5 {
			class = 1
		}
		fmt.Fprintf(out, "%d,%.6f,%d\n", idx, score, class)
	}
	return nil
}

func parseSolver(name string) (graphssl.Solver, error) {
	switch name {
	case "auto":
		return graphssl.SolverAuto, nil
	case "cholesky":
		return graphssl.SolverCholesky, nil
	case "lu":
		return graphssl.SolverLU, nil
	case "cg":
		return graphssl.SolverCG, nil
	case "propagation":
		return graphssl.SolverPropagation, nil
	default:
		return 0, fmt.Errorf("unknown solver %q", name)
	}
}

// readCSV parses the feature matrix and the trailing response column.
func readCSV(path string, hasHeader bool) (x [][]float64, y []float64, labeled []int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.TrimLeadingSpace = true
	rows, err := r.ReadAll()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if hasHeader && len(rows) > 0 {
		rows = rows[1:]
	}
	if len(rows) == 0 {
		return nil, nil, nil, fmt.Errorf("%s: no data rows", path)
	}
	for i, row := range rows {
		if len(row) < 2 {
			return nil, nil, nil, fmt.Errorf("%s row %d: need >=2 columns", path, i+1)
		}
		feats := make([]float64, len(row)-1)
		for j, cell := range row[:len(row)-1] {
			v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("%s row %d col %d: %w", path, i+1, j+1, err)
			}
			feats[j] = v
		}
		x = append(x, feats)
		resp := strings.TrimSpace(row[len(row)-1])
		if resp == "" {
			continue
		}
		v, err := strconv.ParseFloat(resp, 64)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("%s row %d response: %w", path, i+1, err)
		}
		labeled = append(labeled, i)
		y = append(y, v)
	}
	if len(labeled) == 0 {
		return nil, nil, nil, fmt.Errorf("%s: no labeled rows", path)
	}
	if len(labeled) == len(x) {
		return nil, nil, nil, fmt.Errorf("%s: no unlabeled rows to predict", path)
	}
	return x, y, labeled, nil
}
