package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const demoCSV = `x1,x2,y
0,0,1
0.1,0,1
2,2,0
2.1,2,0
0.05,0.05,
2.05,2.05,
`

func TestRunPredictsClusters(t *testing.T) {
	path := writeTemp(t, demoCSV)
	var sb strings.Builder
	if err := run([]string{"-in", path}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "4 labeled, 2 unlabeled") {
		t.Fatalf("header wrong: %s", out)
	}
	// Row 4 is near cluster 1, row 5 near cluster 0.
	if !strings.Contains(out, "\n4,") || !strings.Contains(out, "\n5,") {
		t.Fatalf("rows missing: %s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last2 := lines[len(lines)-2:]
	if !strings.HasSuffix(last2[0], ",1") || !strings.HasSuffix(last2[1], ",0") {
		t.Fatalf("classification wrong: %v", last2)
	}
}

func TestRunSolverAndKernelFlags(t *testing.T) {
	path := writeTemp(t, demoCSV)
	var sb strings.Builder
	err := run([]string{"-in", path, "-solver", "cg", "-kernel", "epanechnikov", "-bandwidth", "5", "-lambda", "0.1"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "λ=0.1") {
		t.Fatalf("lambda not applied: %s", sb.String())
	}
}

func TestRunKNNFlag(t *testing.T) {
	path := writeTemp(t, demoCSV)
	var sb strings.Builder
	if err := run([]string{"-in", path, "-knn", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
}

func TestRunNoHeader(t *testing.T) {
	path := writeTemp(t, "0,0,1\n1,1,0\n0.5,0.5,\n")
	var sb strings.Builder
	if err := run([]string{"-in", path, "-header=false"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "2 labeled, 1 unlabeled") {
		t.Fatalf("no-header parse wrong: %s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		csv  string
		args []string
	}{
		{"missing in", "", []string{}},
		{"no labeled", "x,y\n1,\n2,\n", nil},
		{"no unlabeled", "x,y\n1,1\n2,0\n", nil},
		{"bad feature", "x,y\nfoo,1\n2,\n", nil},
		{"bad response", "x,y\n1,bar\n2,\n", nil},
		{"one column", "y\n1\n\n", nil},
		{"empty", "x,y\n", nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			args := tt.args
			if args == nil {
				args = []string{"-in", writeTemp(t, tt.csv)}
			}
			var sb strings.Builder
			if err := run(args, &sb); err == nil {
				t.Fatal("want error")
			}
		})
	}
	var sb strings.Builder
	if err := run([]string{"-in", "/nonexistent/file.csv"}, &sb); err == nil {
		t.Fatal("missing file must error")
	}
	path := writeTemp(t, demoCSV)
	if err := run([]string{"-in", path, "-solver", "warp"}, &sb); err == nil {
		t.Fatal("unknown solver must error")
	}
	if err := run([]string{"-in", path, "-kernel", "warp"}, &sb); err == nil {
		t.Fatal("unknown kernel must error")
	}
}
