package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestServeSmoke boots the server on an ephemeral port, fits a model over
// HTTP, runs a batched predict, checks readiness, and then drains it the
// way SIGTERM would (context cancellation), asserting in-flight requests
// are not dropped.
func TestServeSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var logBuf bytes.Buffer
	addrc := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0"}, &logBuf, func(addr string) { addrc <- addr })
	}()
	var base string
	select {
	case addr := <-addrc:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	// Liveness and readiness.
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d", path, resp.StatusCode)
		}
	}

	// Fit a small model over HTTP.
	n := 60
	x := make([][]float64, n)
	y := make([]float64, 20)
	labeled := make([]int, 20)
	for i := range x {
		x[i] = []float64{float64(i%10) * 0.3, float64(i%7) * 0.4, float64(i%5) * 0.5}
	}
	for i := range labeled {
		labeled[i] = i * 3
		y[i] = float64(i % 2)
	}
	fitBody, _ := json.Marshal(map[string]any{"x": x, "y": y, "labeled": labeled, "bandwidth": 1.5})
	resp, err := http.Post(base+"/v1/models/smoke", "application/json", bytes.NewReader(fitBody))
	if err != nil {
		t.Fatal(err)
	}
	var fitOut bytes.Buffer
	_, _ = fitOut.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fit: %d %s", resp.StatusCode, fitOut.String())
	}

	// Batched predict: several clients in flight at once.
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			pts := [][]float64{{0.1 * float64(c), 0.2, 0.3}, {0.5, 0.1 * float64(c), 0.2}}
			body, _ := json.Marshal(map[string]any{"model": "smoke", "points": pts})
			resp, err := http.Post(base+"/v1/predict", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("client %d: %v", c, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: %d", c, resp.StatusCode)
				return
			}
			var out struct {
				Scores []float64 `json:"scores"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || len(out.Scores) != 2 {
				t.Errorf("client %d: %v %v", c, out.Scores, err)
			}
		}(c)
	}
	wg.Wait()

	// Metrics endpoint is live.
	resp, err = http.Get(base + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars bytes.Buffer
	_, _ = vars.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(vars.String(), "graphssl.serve.requests_total") {
		t.Fatal("metrics missing from /debug/vars")
	}

	// Drain: cancel stands in for SIGTERM (NotifyContext wiring in main).
	// Requests in flight at cancel time must complete.
	inflight := make(chan error, 1)
	go func() {
		pts := [][]float64{{0.2, 0.2, 0.2}}
		body, _ := json.Marshal(map[string]any{"model": "smoke", "points": pts})
		resp, err := http.Post(base+"/v1/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			inflight <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			inflight <- fmt.Errorf("in-flight predict: %d", resp.StatusCode)
			return
		}
		inflight <- nil
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("server never drained")
	}
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight request dropped: %v", err)
	}
	log := logBuf.String()
	if !strings.Contains(log, "draining") || !strings.Contains(log, "drained") {
		t.Fatalf("drain log missing: %q", log)
	}
}

// TestFleetSmoke boots a 3-replica fleet on an ephemeral port, fits once
// through the leader, predicts through the router, inspects the topology
// endpoint, and drains.
func TestFleetSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var logBuf bytes.Buffer
	addrc := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-replicas", "3"}, &logBuf, func(addr string) { addrc <- addr })
	}()
	var base string
	select {
	case addr := <-addrc:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("fleet exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("fleet never became ready")
	}

	n := 50
	x := make([][]float64, n)
	y := make([]float64, 16)
	labeled := make([]int, 16)
	for i := range x {
		x[i] = []float64{float64(i%8) * 0.4, float64(i%5) * 0.3}
	}
	for i := range labeled {
		labeled[i] = i * 3
		y[i] = float64(i % 2)
	}
	fitBody, _ := json.Marshal(map[string]any{"x": x, "y": y, "labeled": labeled, "bandwidth": 1.2})
	resp, err := http.Post(base+"/v1/models/fleet-smoke", "application/json", bytes.NewReader(fitBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet fit: %d", resp.StatusCode)
	}

	// The same predict body twice: scores must be identical (replicated
	// model, deterministic routing).
	predBody, _ := json.Marshal(map[string]any{"model": "fleet-smoke", "points": [][]float64{{0.3, 0.2}, {1.1, 0.7}}})
	var runs [2][]float64
	for k := 0; k < 2; k++ {
		resp, err := http.Post(base+"/v1/predict", "application/json", bytes.NewReader(predBody))
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Scores []float64 `json:"scores"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || len(out.Scores) != 2 {
			t.Fatalf("fleet predict %d: %d %v", k, resp.StatusCode, out.Scores)
		}
		runs[k] = out.Scores
	}
	if runs[0][0] != runs[1][0] || runs[0][1] != runs[1][1] {
		t.Fatalf("repeat predict differs: %v vs %v", runs[0], runs[1])
	}

	resp, err = http.Get(base + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	var topo struct {
		Replicas []struct {
			Models int  `json:"models"`
			Leader bool `json:"leader"`
		} `json:"replicas"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&topo); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(topo.Replicas) != 3 {
		t.Fatalf("topology: %+v", topo)
	}
	for i, r := range topo.Replicas {
		if r.Models != 1 {
			t.Fatalf("replica %d serves %d models, want 1", i, r.Models)
		}
		if r.Leader != (i == 0) {
			t.Fatalf("leader flag wrong at %d", i)
		}
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("fleet drain: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("fleet never drained")
	}
	if log := logBuf.String(); !strings.Contains(log, "3 replica(s)") {
		t.Fatalf("fleet log missing replica count: %q", log)
	}
}

// TestRunBadFlags checks flag errors surface instead of booting.
func TestRunBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-nope"}, &buf, nil); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run(context.Background(), []string{"-addr", "999.999.999.999:0"}, &buf, nil); err == nil {
		t.Fatal("bad address accepted")
	}
}
