// Command sslserve runs the model-serving HTTP server: fit graph-SSL models
// over JSON, hot-swap them in a registry, and answer batched out-of-sample
// predictions.
//
// Usage:
//
//	sslserve [-addr :8080] [-replicas 1] [-max-batch 64] [-batch-delay 500us]
//	         [-queue 1024] [-workers 1] [-no-batch]
//	         [-cache-size 8192] [-model-budget 0] [-max-queue-wait 0]
//	         [-predict-timeout 10s] [-fit-timeout 120s]
//
// With -replicas n > 1 the process serves a replicated fleet: n registries
// behind a consistent-hash router, with fits run once on the leader and
// published everywhere, plus a GET /v1/fleet topology endpoint.
//
// Endpoints:
//
//	POST   /v1/models/{name}  fit and publish a model (atomic hot swap)
//	GET    /v1/models         list published models
//	GET    /v1/models/{name}  describe one model
//	DELETE /v1/models/{name}  unpublish a model
//	POST   /v1/predict        batched inductive prediction
//	GET    /healthz           process liveness
//	GET    /readyz            readiness (503 while draining)
//	GET    /debug/vars        expvar metrics (graphssl.serve.*)
//
// On SIGINT/SIGTERM the server drains gracefully: readiness flips to 503,
// in-flight requests finish, the batcher completes every admitted job, and
// only then does the process exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "sslserve:", err)
		os.Exit(1)
	}
}

// run boots the server and blocks until ctx is canceled and the drain
// completes. ready, when non-nil, is called with the bound address once the
// server is accepting connections (tests use it with -addr :0).
func run(ctx context.Context, args []string, logw io.Writer, ready func(addr string)) error {
	fs := flag.NewFlagSet("sslserve", flag.ContinueOnError)
	fs.SetOutput(logw)
	var (
		addr           = fs.String("addr", ":8080", "listen address")
		replicas       = fs.Int("replicas", 1, "serving replicas behind the consistent-hash router")
		maxBatch       = fs.Int("max-batch", 64, "batch flush size in points")
		batchDelay     = fs.Duration("batch-delay", 500*time.Microsecond, "max wait before a partial batch flushes")
		queueDepth     = fs.Int("queue", 1024, "admission queue depth in points (excess gets 429)")
		workers        = fs.Int("workers", 1, "evaluation workers (<=0 = all cores)")
		noBatch        = fs.Bool("no-batch", false, "disable the micro-batcher (evaluate each request inline)")
		cacheSize      = fs.Int("cache-size", 8192, "prediction cache entries (negative disables)")
		modelBudget    = fs.Int("model-budget", 0, "max in-flight uncached points per model (0 = unlimited)")
		maxQueueWait   = fs.Duration("max-queue-wait", 0, "shed when estimated queue drain exceeds this (0 = predict timeout)")
		ingestQueue    = fs.Int("ingest-queue", 4096, "max in-flight streaming ingest points per model (excess gets 429)")
		ingestBatch    = fs.Int("ingest-batch", 256, "points folded per streaming refresh cycle")
		predictTimeout = fs.Duration("predict-timeout", 10*time.Second, "per-request predict timeout")
		fitTimeout     = fs.Duration("fit-timeout", 120*time.Second, "per-request fit timeout")
		drainTimeout   = fs.Duration("drain-timeout", 30*time.Second, "shutdown drain budget")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := serve.Config{
		MaxBatch:       *maxBatch,
		BatchDelay:     *batchDelay,
		QueueDepth:     *queueDepth,
		Workers:        *workers,
		NoBatch:        *noBatch,
		CacheSize:      *cacheSize,
		ModelBudget:    *modelBudget,
		MaxQueueWait:   *maxQueueWait,
		IngestQueue:    *ingestQueue,
		IngestBatch:    *ingestBatch,
		PredictTimeout: *predictTimeout,
		FitTimeout:     *fitTimeout,
	}
	// A single replica serves the plain server; more get the replicated
	// fleet behind the consistent-hash router. Both share the drain shape.
	var (
		handler http.Handler
		drain   func()
		stop    func()
	)
	if *replicas > 1 {
		fleet, err := serve.NewFleet(*replicas, cfg)
		if err != nil {
			return err
		}
		handler, drain, stop = fleet.Handler(), fleet.BeginDrain, fleet.Close
	} else {
		srv := serve.NewServer(cfg)
		handler, drain, stop = srv.Handler(), srv.BeginDrain, srv.Close
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Fprintf(logw, "sslserve: listening on %s (%d replica(s))\n", ln.Addr(), max(*replicas, 1))
	if ready != nil {
		ready(ln.Addr().String())
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop being ready, let in-flight handlers finish,
	// then drain the batcher so no admitted work is dropped.
	fmt.Fprintln(logw, "sslserve: draining")
	drain()
	sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	stop()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(logw, "sslserve: drained")
	return nil
}
