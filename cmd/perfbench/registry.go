package main

import (
	"fmt"
	"io"
)

// suiteArgs bundles the parsed command-line parameters handed to suite
// runners, so every suite sees one flat view of the flags it cares about.
type suiteArgs struct {
	// parallel suite
	n, d, knn, cgN, cgM int
	// spatial suite
	sn, sd        int
	sradius, snwH float64
	snwLab        int
	// serve suite
	svAnch, svD, svReqs int
	// cluster suite
	cn, cLab, cWork, cReps int
	// largen suite
	ln, lcmp, llab, lknn int
	ltol                 float64
	// stream suite
	stn, strate, stsecs, stbatch int
	stdelta                      float64
	// shared
	repeats int
}

// suiteDef is one registered benchmark suite: the -suite name, the default
// -out path, a one-line description, and the runner.
type suiteDef struct {
	Name       string
	DefaultOut string
	Desc       string
	Run        func(out string, a suiteArgs)
}

// suiteRegistry is the single source of truth mapping -suite names to
// runners and default output paths. New suites register here; -list prints
// the table.
var suiteRegistry = []suiteDef{
	{
		Name:       "parallel",
		DefaultOut: "results/BENCH_parallel.json",
		Desc:       "worker scaling of the distance / k-NN / SpMV hot paths vs the serial baselines",
		Run:        runParallelSuite,
	},
	{
		Name:       "spatial",
		DefaultOut: "results/BENCH_spatial.json",
		Desc:       "spatial-index graph construction and NW prediction vs brute force",
		Run:        runSpatialCmd,
	},
	{
		Name:       "robust",
		DefaultOut: "results/BENCH_robust.json",
		Desc:       "pathological-input pipeline: health probe, fallbacks, and robust solves",
		Run:        func(out string, a suiteArgs) { runRobustSuite(out) },
	},
	{
		Name:       "precond",
		DefaultOut: "results/BENCH_precond.json",
		Desc:       "CG vs Jacobi-PCG vs IC(0)-PCG iteration and wall-time comparison",
		Run:        func(out string, a suiteArgs) { runPrecondSuite(out, a.repeats) },
	},
	{
		Name:       "serve",
		DefaultOut: "results/BENCH_serve.json",
		Desc:       "HTTP serving throughput, batched vs unbatched, with anchor pruning",
		Run: func(out string, a suiteArgs) {
			runServeSuite(out, serveParams{
				anchors: a.svAnch, d: a.svD,
				requests: a.svReqs, warmup: a.svReqs / 4,
			})
		},
	},
	{
		Name:       "cluster",
		DefaultOut: "results/BENCH_cluster.json",
		Desc:       "distributed fit over TCP workers plus the replicated serve fleet",
		Run: func(out string, a suiteArgs) {
			runClusterSuite(out, clusterParams{
				n: a.cn, labelEvery: a.cLab, degree: 3,
				workers: a.cWork, replicas: a.cReps,
				requests: a.svReqs, repeats: a.repeats,
			})
		},
	},
	{
		Name:       "largen",
		DefaultOut: "results/BENCH_largen.json",
		Desc:       "approximate large-n engine: Nyström fit with certified bound vs exact, plus a single-machine large-n fit+serve",
		Run: func(out string, a suiteArgs) {
			runLargenSuite(out, largenParams{
				n: a.ln, compareN: a.lcmp, labelEvery: a.llab,
				knn: a.lknn, tol: a.ltol, repeats: a.repeats,
			})
		},
	},
	{
		Name:       "stream",
		DefaultOut: "results/BENCH_stream.json",
		Desc:       "streaming ingest: real-time trickle staleness plus incremental refresh vs full refit",
		Run: func(out string, a suiteArgs) {
			runStreamSuite(out, streamParams{
				n: a.stn, rate: a.strate, seconds: a.stsecs,
				batch: a.stbatch, delta: a.stdelta, repeats: a.repeats,
			})
		},
	},
}

// findSuite resolves a -suite name against the registry.
func findSuite(name string) *suiteDef {
	for i := range suiteRegistry {
		if suiteRegistry[i].Name == name {
			return &suiteRegistry[i]
		}
	}
	return nil
}

// suiteNames returns the registered names, in registration order.
func suiteNames() []string {
	names := make([]string, len(suiteRegistry))
	for i, s := range suiteRegistry {
		names[i] = s.Name
	}
	return names
}

// listSuites prints the registry table for the -list flag.
func listSuites(w io.Writer) {
	for _, s := range suiteRegistry {
		fmt.Fprintf(w, "%-10s %-28s %s\n", s.Name, s.DefaultOut, s.Desc)
	}
}
