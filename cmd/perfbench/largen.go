package main

import (
	"fmt"
	"log"
	"math"
	"runtime"
	"time"

	graphssl "repro"
	"repro/internal/randx"
	"repro/serve"
)

// The largen suite measures the approximate large-n engine end to end:
//
//  1. At sizes where the exact solver still runs, it fits the same data
//     both ways and records the certified error bound next to the measured
//     sup-norm error against the exact scores — the bound must dominate on
//     every case — plus the solve-stage speedup.
//  2. At the headline size (default n = 5,000,000) it runs the Nyström fit
//     alone — the size class the exact path cannot touch on one machine —
//     snapshots the model, and measures serving throughput on top of it.
//
// Everything is deterministic: fixtures come from the repo's seeded RNG
// and every fitted number is a pure function of the parameters.

type largenParams struct {
	n          int     // approx-only headline size
	compareN   int     // largest size fitted both exactly and approximately
	labelEvery int     // one labeled point per this many nodes
	knn        int     // k-NN sparsification of the full graph
	tol        float64 // acceptance tolerance (0 = accept any certified bound)
	repeats    int
}

// largenCase is one row of the largen report.
type largenCase struct {
	N       int `json:"n"`
	Labeled int `json:"labeled"`
	// Anchors is the reduced system size of the accepted Nyström fit.
	Anchors int `json:"anchors,omitempty"`
	Levels  int `json:"levels,omitempty"`
	// Fit wall times (full pipeline) and solve-stage wall times. The graph
	// build is shared by both paths, so the solve-stage ratio is the
	// engine's true speedup.
	ExactFitNs    int64   `json:"exact_fit_ns,omitempty"`
	ApproxFitNs   int64   `json:"approx_fit_ns"`
	ExactSolveNs  int64   `json:"exact_solve_ns,omitempty"`
	ApproxSolveNs int64   `json:"approx_solve_ns"`
	SolveSpeedup  float64 `json:"solve_speedup_exact_vs_approx,omitempty"`
	// Stage split of the approximate solve: spatial coarsening, reduced
	// build+solve, NW extension (with Jacobi polish), barrier certificate.
	TreeNs    int64 `json:"approx_tree_ns,omitempty"`
	ReducedNs int64 `json:"approx_reduced_ns,omitempty"`
	ExtendNs  int64 `json:"approx_extend_ns,omitempty"`
	CertifyNs int64 `json:"approx_certify_ns,omitempty"`
	// ScoresNs is the solve time up to the point where the approximate
	// scores are final (tree + reduced + extend); the certificate stage
	// after it verifies the already-final answer. NystromSpeedup compares
	// it against the exact solve stage.
	ScoresNs       int64   `json:"approx_scores_ns,omitempty"`
	NystromSpeedup float64 `json:"nystrom_speedup_exact_vs_scores,omitempty"`
	// Bound is the certified sup-norm error bound; ActualSupErr the
	// measured distance to the exact scores (only at compare sizes).
	// BoundHolds records Bound >= ActualSupErr, the suite's acceptance
	// invariant.
	Bound        float64 `json:"bound"`
	ActualSupErr float64 `json:"actual_sup_err,omitempty"`
	BoundHolds   bool    `json:"bound_holds,omitempty"`
	// Serving throughput over the snapshotted approximate model
	// (headline size only).
	ServeNsPerQuery int64   `json:"serve_ns_per_query,omitempty"`
	ServeQPS        float64 `json:"serve_qps,omitempty"`
}

type largenReport struct {
	Benchmark  string         `json:"benchmark"`
	Generated  string         `json:"generated"`
	GoVersion  string         `json:"go_version"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	NumCPU     int            `json:"num_cpu"`
	Params     map[string]int `json:"params"`
	Cases      []largenCase   `json:"cases"`
	Notes      string         `json:"notes"`
}

// largenFixture builds the planar fixture: n uniform points in the unit
// square, one labeled point per labelEvery with a smooth response. The
// coordinate rows share one backing array so generation stays cheap at
// n in the millions.
func largenFixture(n, labelEvery int, seed int64) (x [][]float64, y []float64, labeled []int) {
	rng := randx.New(seed)
	backing := make([]float64, 2*n)
	for i := range backing {
		backing[i] = rng.Float64()
	}
	x = make([][]float64, n)
	for i := range x {
		x[i] = backing[2*i : 2*i+2 : 2*i+2]
	}
	for i := 0; i < n; i += labelEvery {
		labeled = append(labeled, i)
		y = append(y, math.Sin(4*x[i][0])*math.Cos(3*x[i][1]))
	}
	return x, y, labeled
}

// largenBandwidth is the fixed compact-kernel bandwidth of the suite,
// chosen so anchor spacings at every benchmarked size stay inside the
// kernel support.
const largenBandwidth = 0.05

func solveStageNs(rep *graphssl.Report) int64 {
	for _, s := range rep.Stages {
		if s.Name == "solve" {
			return s.Duration.Nanoseconds()
		}
	}
	return 0
}

// runLargenSuite executes the suite and writes the JSON report.
func runLargenSuite(out string, p largenParams) {
	tol := p.tol
	if tol <= 0 {
		tol = 1e18 // accept any finite certified bound; the report records it
	}
	base := []graphssl.Option{
		graphssl.WithKernel(graphssl.Epanechnikov),
		graphssl.WithBandwidth(largenBandwidth),
		graphssl.WithKNN(p.knn),
	}

	report := largenReport{
		Benchmark:  "approx-largen",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Params: map[string]int{
			"n": p.n, "compare_n": p.compareN, "label_every": p.labelEvery,
			"knn": p.knn, "repeats": p.repeats,
		},
		Notes: "bound is the a-posteriori M-matrix barrier certificate: " +
			"sup-norm distance to the exact solution of the same system is " +
			"provably <= bound. actual_sup_err is measured against the exact " +
			"fit where one runs; bound_holds must be true on every such case. " +
			"solve_speedup compares solve-stage wall time (the graph build is " +
			"shared by both paths). The Nystrom scores are final after the " +
			"tree+reduced+extend stages; the certificate stage only verifies " +
			"that already-final answer, so nystrom_speedup (exact solve vs " +
			"approx_scores_ns) is the speed of the approximation itself and " +
			"solve_speedup the speed including its verification. The headline " +
			"case is approx-only: the exact path cannot fit it on this machine.",
	}

	// Phase 1: bound-vs-actual ladder at sizes the exact solver can run.
	for _, n := range []int{p.compareN / 4, p.compareN} {
		if n < 2048 {
			continue
		}
		x, y, labeled := largenFixture(n, p.labelEvery, 1031)
		var exactRep graphssl.Report
		var exact *graphssl.Result
		var err error
		exactNs := timeIt(p.repeats, func() {
			exact, err = graphssl.Fit(x, y, labeled, append([]graphssl.Option{graphssl.WithDiagnostics(&exactRep)}, base...)...)
			if err != nil {
				log.Fatalf("largen n=%d exact fit: %v", n, err)
			}
		})
		var approxRep graphssl.Report
		var approx *graphssl.Result
		approxNs := timeIt(p.repeats, func() {
			approx, err = graphssl.Fit(x, y, labeled,
				append([]graphssl.Option{graphssl.WithApprox(tol), graphssl.WithDiagnostics(&approxRep)}, base...)...)
			if err != nil {
				log.Fatalf("largen n=%d approx fit: %v", n, err)
			}
		})
		if approx.Solver != graphssl.SolverNystrom {
			log.Fatalf("largen n=%d: approximate answer rejected (report: %+v)", n, approxRep.Approx)
		}
		var actual float64
		for i := range approx.Scores {
			if d := math.Abs(approx.Scores[i] - exact.Scores[i]); d > actual {
				actual = d
			}
		}
		c := largenCase{
			N: n, Labeled: len(labeled),
			Anchors: approx.ApproxAnchors, Levels: approxRep.Approx.Levels,
			ExactFitNs: exactNs, ApproxFitNs: approxNs,
			ExactSolveNs: solveStageNs(&exactRep), ApproxSolveNs: solveStageNs(&approxRep),
			Bound: approx.ApproxBound, ActualSupErr: actual,
			BoundHolds: approx.ApproxBound >= actual,
		}
		if c.ApproxSolveNs > 0 {
			c.SolveSpeedup = float64(c.ExactSolveNs) / float64(c.ApproxSolveNs)
		}
		if ai := approxRep.Approx; ai != nil {
			c.TreeNs, c.ReducedNs, c.ExtendNs, c.CertifyNs = ai.TreeNs, ai.ReducedNs, ai.ExtendNs, ai.CertifyNs
		}
		if c.ScoresNs = c.ApproxSolveNs - c.CertifyNs; c.ScoresNs > 0 {
			c.NystromSpeedup = float64(c.ExactSolveNs) / float64(c.ScoresNs)
		}
		report.Cases = append(report.Cases, c)
		fmt.Printf("n=%-8d exact %8.2fs (solve %8.2fs)  approx %8.2fs (solve %8.2fs, %5.1fx)  bound %.4g  actual %.4g  holds %v\n",
			n, float64(exactNs)/1e9, float64(c.ExactSolveNs)/1e9,
			float64(approxNs)/1e9, float64(c.ApproxSolveNs)/1e9, c.SolveSpeedup,
			c.Bound, actual, c.BoundHolds)
		fmt.Printf("            approx stages: tree %.2fs  reduced %.2fs  extend %.2fs  certify %.2fs  (scores ready %.2fs, %.1fx vs exact solve)\n",
			float64(c.TreeNs)/1e9, float64(c.ReducedNs)/1e9, float64(c.ExtendNs)/1e9, float64(c.CertifyNs)/1e9,
			float64(c.ScoresNs)/1e9, c.NystromSpeedup)
		if !c.BoundHolds {
			log.Fatalf("largen n=%d: certified bound %g below measured error %g — certificate violated", n, c.Bound, actual)
		}
	}

	// Phase 2: the headline approx-only fit + serve.
	if p.n > p.compareN {
		x, y, labeled := largenFixture(p.n, p.labelEvery, 2063)
		var rep graphssl.Report
		start := time.Now()
		res, err := graphssl.Fit(x, y, labeled,
			append([]graphssl.Option{graphssl.WithApprox(tol), graphssl.WithDiagnostics(&rep)}, base...)...)
		if err != nil {
			log.Fatalf("largen n=%d approx fit: %v", p.n, err)
		}
		fitNs := time.Since(start).Nanoseconds()
		if res.Solver != graphssl.SolverNystrom {
			log.Fatalf("largen n=%d: approximate answer rejected (report: %+v)", p.n, rep.Approx)
		}
		c := largenCase{
			N: p.n, Labeled: len(labeled),
			Anchors: res.ApproxAnchors, Levels: rep.Approx.Levels,
			ApproxFitNs: fitNs, ApproxSolveNs: solveStageNs(&rep),
			Bound: res.ApproxBound,
		}
		if ai := rep.Approx; ai != nil {
			c.TreeNs, c.ReducedNs, c.ExtendNs, c.CertifyNs = ai.TreeNs, ai.ReducedNs, ai.ExtendNs, ai.CertifyNs
		}
		c.ScoresNs = c.ApproxSolveNs - c.CertifyNs

		snap, err := res.Snapshot(x, y)
		if err != nil {
			log.Fatalf("largen snapshot: %v", err)
		}
		model, err := serve.NewModel(snap, serve.WithWorkers(1))
		if err != nil {
			log.Fatalf("largen serve model: %v", err)
		}
		const nq = 20000
		qrng := randx.New(77)
		qs := make([][]float64, nq)
		for i := range qs {
			qs[i] = []float64{qrng.Float64(), qrng.Float64()}
		}
		model.PredictBatch(qs) // warm
		serveNs := timeIt(p.repeats, func() { model.PredictBatch(qs) })
		c.ServeNsPerQuery = serveNs / nq
		if c.ServeNsPerQuery > 0 {
			c.ServeQPS = 1e9 / float64(c.ServeNsPerQuery)
		}
		report.Cases = append(report.Cases, c)
		fmt.Printf("n=%-8d approx-only fit %8.2fs (solve %8.2fs)  anchors %d  bound %.4g  serve %.0f qps\n",
			p.n, float64(fitNs)/1e9, float64(c.ApproxSolveNs)/1e9, c.Anchors, c.Bound, c.ServeQPS)
	}

	writeReportAny(out, report)
}
