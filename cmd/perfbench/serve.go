package main

import (
	"bytes"
	"encoding/json"
	"expvar"
	"fmt"
	"log"
	"net"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	graphssl "repro"
	"repro/internal/randx"
	"repro/serve"
)

// The serve suite measures the serving subsystem end to end over loopback
// HTTP: concurrent clients firing single-point predict requests at a hot
// model, with the micro-batcher on versus off. On a single-core host the
// batching win is purely mechanical — coalesced requests run through the
// tiled SIMD batch kernel instead of one scalar anchor scan per request —
// so any speedup here is cache and vector efficiency, not parallelism.

// serveParams sizes the load test.
type serveParams struct {
	anchors  int // labeled anchor count (the per-point scan length)
	d        int // point dimension
	requests int // timed requests per configuration
	warmup   int // untimed requests per configuration
}

// serveMeasurement is one (clients, batching, caching) load configuration.
type serveMeasurement struct {
	Clients        int     `json:"clients"`
	Batched        bool    `json:"batched"`
	Cache          bool    `json:"cache"`
	Requests       int     `json:"requests"`
	Seconds        float64 `json:"seconds"`
	RPS            float64 `json:"rps"`
	P50Us          float64 `json:"p50_us"`
	P99Us          float64 `json:"p99_us"`
	Batches        int64   `json:"batches,omitempty"`
	BatchOccupancy float64 `json:"batch_occupancy,omitempty"`
}

// serveSpeedup compares configurations at one client count: batching vs the
// inline path (both cache-off, the PR-5-comparable columns) and the full
// hot path (cache on) against the recorded pre-hot-path baseline.
type serveSpeedup struct {
	Clients            int     `json:"clients"`
	BatchedRPS         float64 `json:"batched_rps"`
	UnbatchedRPS       float64 `json:"unbatched_rps"`
	Speedup            float64 `json:"speedup_batched_vs_unbatched"`
	CachedUnbatchedRPS float64 `json:"cached_unbatched_rps"`
	BaselineRPS        float64 `json:"baseline_unbatched_rps,omitempty"`
	SpeedupVsBaseline  float64 `json:"speedup_cached_vs_baseline,omitempty"`
}

// serveBaselineRPS is the unbatched (cache-off, pre-hot-path) throughput
// recorded by the serving-subsystem PR on this suite's parameters — the
// reference the hot-path acceptance criterion (>= 10x unbatched at 16
// clients) is measured against.
var serveBaselineRPS = map[int]float64{
	1:  777.87,
	4:  771.53,
	16: 902.89,
	64: 789.77,
}

// serveReport is the JSON document for -suite serve.
type serveReport struct {
	Benchmark  string             `json:"benchmark"`
	Generated  string             `json:"generated"`
	GoVersion  string             `json:"go_version"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	NumCPU     int                `json:"num_cpu"`
	Params     map[string]int     `json:"params"`
	Results    []serveMeasurement `json:"results"`
	Speedups   []serveSpeedup     `json:"speedups"`
	Notes      string             `json:"notes"`
}

// serveCounter reads one graphssl.serve expvar counter.
func serveCounter(name string) int64 {
	if v, ok := expvar.Get(name).(*expvar.Int); ok {
		return v.Value()
	}
	return 0
}

// benchModel builds the served model directly (no quadratic fit at bench
// time): every point is a labeled anchor, so each unbatched predict scans
// all of them.
func benchModel(p serveParams) *serve.Model {
	rng := randx.New(97)
	snap := &graphssl.ModelSnapshot{
		X:       make([][]float64, p.anchors),
		Y:       make([]float64, p.anchors),
		Labeled: make([]int, p.anchors),
		Scores:  make([]float64, p.anchors),
		// Triangular support sized so ~N(0,1) queries always land inside
		// it in this dimension (matching the core predictor benchmarks).
		Kernel:    graphssl.Triangular,
		Bandwidth: 36,
		Lambda:    0,
	}
	for i := range snap.X {
		xi := make([]float64, p.d)
		for j := range xi {
			xi[j] = rng.Norm()
		}
		snap.X[i] = xi
		snap.Scores[i] = rng.Norm()
		snap.Y[i] = snap.Scores[i]
		snap.Labeled[i] = i
	}
	m, err := serve.NewModel(snap)
	if err != nil {
		log.Fatal(err)
	}
	return m
}

// runServeLoad drives one configuration: clients goroutines firing
// single-point predicts until the shared request budget is spent.
func runServeLoad(base string, client *http.Client, p serveParams, clients int, queries [][]byte) serveMeasurement {
	post := func(body []byte) {
		resp, err := client.Post(base+"/v1/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		var out struct {
			Scores []float64 `json:"scores"`
			Errors []string  `json:"errors"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || len(out.Errors) != 0 {
			log.Fatalf("predict: status %d, errors %v", resp.StatusCode, out.Errors)
		}
	}

	// Warmup (connections, batcher, branch predictors).
	var budget atomic.Int64
	budget.Store(int64(p.warmup))
	var wg sync.WaitGroup
	drive := func(latencies *[]float64) {
		defer wg.Done()
		for {
			n := budget.Add(-1)
			if n < 0 {
				return
			}
			body := queries[int(n)%len(queries)]
			start := time.Now()
			post(body)
			if latencies != nil {
				*latencies = append(*latencies, float64(time.Since(start).Microseconds()))
			}
		}
	}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go drive(nil)
	}
	wg.Wait()

	// Timed run.
	batches0 := serveCounter("graphssl.serve.batches_total")
	points0 := serveCounter("graphssl.serve.batched_points_total")
	budget.Store(int64(p.requests))
	perClient := make([][]float64, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go drive(&perClient[c])
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	var lat []float64
	for _, l := range perClient {
		lat = append(lat, l...)
	}
	sort.Float64s(lat)
	q := func(p float64) float64 {
		if len(lat) == 0 {
			return 0
		}
		return lat[int(p*float64(len(lat)-1))]
	}
	m := serveMeasurement{
		Clients:  clients,
		Requests: p.requests,
		Seconds:  elapsed,
		RPS:      float64(p.requests) / elapsed,
		P50Us:    q(0.50),
		P99Us:    q(0.99),
	}
	if batches := serveCounter("graphssl.serve.batches_total") - batches0; batches > 0 {
		points := serveCounter("graphssl.serve.batched_points_total") - points0
		m.Batches = batches
		m.BatchOccupancy = float64(points) / float64(batches)
	}
	return m
}

// benchQueries pre-encodes `count` distinct single-point request bodies
// against the "bench" model.
func benchQueries(p serveParams, count int) [][]byte {
	rng := randx.New(101)
	queries := make([][]byte, count)
	for i := range queries {
		pt := make([]float64, p.d)
		for j := range pt {
			pt[j] = rng.Norm()
		}
		body, err := json.Marshal(map[string]any{"model": "bench", "points": [][]float64{pt}})
		if err != nil {
			log.Fatal(err)
		}
		queries[i] = body
	}
	return queries
}

// runServeSuite benchmarks the HTTP serving path and writes the report.
func runServeSuite(out string, p serveParams) {
	model := benchModel(p)
	queries := benchQueries(p, 64)

	report := serveReport{
		Benchmark:  "serve",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Params: map[string]int{
			"anchors": p.anchors, "d": p.d,
			"requests": p.requests, "warmup": p.warmup,
		},
		Notes: "Loopback HTTP load test of the serving subsystem: N concurrent " +
			"clients firing single-point predicts at one hot model. batched=true " +
			"runs the request-coalescing micro-batcher (64-point flush, adaptive " +
			"500µs window); batched=false evaluates each request inline through " +
			"the per-point SIMD scan. cache=true enables the version-keyed " +
			"prediction cache (the 64 distinct query bodies fit it, so warm " +
			"traffic is all hits — the steady-state ceiling for hot repeated " +
			"queries); cache=false measures the compute path itself. Anchors all " +
			"labeled, so every uncached unbatched predict scans all of them. " +
			"baseline_unbatched_rps is the pre-hot-path serving PR's measurement " +
			"on identical parameters.",
	}

	type combo struct{ batched, cache bool }
	byClients := map[int]map[combo]float64{}
	for _, cfg := range []combo{{false, false}, {true, false}, {false, true}, {true, true}} {
		cacheSize := -1 // disabled
		if cfg.cache {
			cacheSize = 8192
		}
		srv := serve.NewServer(serve.Config{
			NoBatch:    !cfg.batched,
			MaxBatch:   64,
			BatchDelay: 500 * time.Microsecond,
			QueueDepth: 1 << 16,
			Workers:    1,
			CacheSize:  cacheSize,
		})
		if _, err := srv.Registry().Store("bench", model); err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go func() { _ = hs.Serve(ln) }()
		base := "http://" + ln.Addr().String()
		client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 128}}

		for _, clients := range []int{1, 4, 16, 64} {
			m := runServeLoad(base, client, p, clients, queries)
			m.Batched, m.Cache = cfg.batched, cfg.cache
			report.Results = append(report.Results, m)
			if byClients[clients] == nil {
				byClients[clients] = map[combo]float64{}
			}
			byClients[clients][cfg] = m.RPS
			fmt.Printf("serve  clients %2d  batched %-5v  cache %-5v  %8.1f rps  p50 %7.0f µs  p99 %7.0f µs  occupancy %.1f\n",
				clients, cfg.batched, cfg.cache, m.RPS, m.P50Us, m.P99Us, m.BatchOccupancy)
		}
		client.CloseIdleConnections()
		_ = hs.Close()
		srv.Close()
	}

	for _, clients := range []int{1, 4, 16, 64} {
		rps := byClients[clients]
		sp := serveSpeedup{
			Clients:            clients,
			BatchedRPS:         rps[combo{true, false}],
			UnbatchedRPS:       rps[combo{false, false}],
			Speedup:            rps[combo{true, false}] / rps[combo{false, false}],
			CachedUnbatchedRPS: rps[combo{false, true}],
		}
		if base := serveBaselineRPS[clients]; base > 0 {
			sp.BaselineRPS = base
			sp.SpeedupVsBaseline = sp.CachedUnbatchedRPS / base
		}
		report.Speedups = append(report.Speedups, sp)
	}
	writeReportAny(out, report)
}
