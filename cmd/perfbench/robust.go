package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"time"

	graphssl "repro"
)

// RobustCase is one pathological-input scenario and how the pipeline
// handled it: clean result, typed error, or fallback-chain completion.
type RobustCase struct {
	Name string `json:"name"`
	// Input describes the injected pathology.
	Input string `json:"input"`
	// Expect is the contract under test ("ok", "ErrParam", "ErrIsolated",
	// "fallback_to_cholesky", ...).
	Expect string `json:"expect"`
	// Outcome is "ok" on success, otherwise the error text.
	Outcome string `json:"outcome"`
	// Pass records whether Outcome met Expect.
	Pass bool `json:"pass"`
	// Solver/Plan/Fallbacks/Warnings come from the fit's diagnostics Report.
	Solver    string   `json:"solver,omitempty"`
	Plan      []string `json:"plan,omitempty"`
	Fallbacks []string `json:"fallbacks,omitempty"`
	Warnings  []string `json:"warnings,omitempty"`
	// Deterministic records whether a second identical run reproduced the
	// same outcome, solver, and scores bit for bit.
	Deterministic bool  `json:"deterministic"`
	DurationNs    int64 `json:"duration_ns"`
}

// RobustReport is the JSON document for -suite robust.
type RobustReport struct {
	Benchmark  string       `json:"benchmark"`
	Generated  string       `json:"generated"`
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Repeats    int          `json:"repeats"`
	Results    []RobustCase `json:"results"`
	Notes      string       `json:"notes"`
}

func robustBlob(rng *rand.Rand, n int, center, spread float64) [][]float64 {
	x := make([][]float64, n)
	for i := range x {
		x[i] = []float64{center + spread*rng.NormFloat64(), center + spread*rng.NormFloat64()}
	}
	return x
}

// runRobustCase executes one fit twice, checks the outcome against the
// expectation predicate, and verifies the rerun is bitwise identical.
func runRobustCase(name, input, expect string,
	check func(res *graphssl.Result, rep *graphssl.Report, err error) bool,
	run func(rep *graphssl.Report) (*graphssl.Result, error)) RobustCase {

	var rep graphssl.Report
	start := time.Now()
	res, err := run(&rep)
	dur := time.Since(start)

	c := RobustCase{
		Name:       name,
		Input:      input,
		Expect:     expect,
		Outcome:    "ok",
		Pass:       check(res, &rep, err),
		DurationNs: dur.Nanoseconds(),
	}
	if err != nil {
		c.Outcome = err.Error()
	}
	if err == nil {
		c.Solver = rep.Solver.String()
	}
	for _, s := range rep.Plan {
		c.Plan = append(c.Plan, s.String())
	}
	for _, fb := range rep.Fallbacks {
		c.Fallbacks = append(c.Fallbacks, fmt.Sprintf("%s->%s: %s", fb.From, fb.To, fb.Reason))
	}
	c.Warnings = append(c.Warnings, rep.Warnings...)

	// Rerun: every decision must be a pure function of the input.
	var rep2 graphssl.Report
	res2, err2 := run(&rep2)
	c.Deterministic = (err == nil) == (err2 == nil) &&
		rep.Solver == rep2.Solver && len(rep.Fallbacks) == len(rep2.Fallbacks)
	if c.Deterministic && res != nil && res2 != nil {
		for i := range res.Scores {
			if res.Scores[i] != res2.Scores[i] {
				c.Deterministic = false
				break
			}
		}
	}
	return c
}

// runRobustSuite drives the fit pipeline through the pathological inputs the
// robust solve work is meant to absorb and records outcome + diagnostics.
func runRobustSuite(out string) {
	report := RobustReport{
		Benchmark:  "robust-pipeline",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Repeats:    2,
		Notes: "Each case runs Fit twice on a pathological input: pass means the " +
			"documented contract held (clean result, typed error, or recorded " +
			"fallback); deterministic means the rerun reproduced solver choice, " +
			"fallback decisions, and scores bit for bit.",
	}

	rng := rand.New(rand.NewSource(42))
	base := robustBlob(rng, 120, 0, 1)
	y := make([]float64, 30)
	labeled := make([]int, 30)
	for i := range y {
		y[i] = float64(i % 2)
		labeled[i] = i
	}

	// Duplicate points: repeated rows give zero pairwise distances, which
	// break the median-bandwidth heuristic's positivity and stress the
	// solve's conditioning; a fixed bandwidth must still fit cleanly.
	dup := make([][]float64, len(base))
	copy(dup, base)
	for i := 40; i < 80; i++ {
		dup[i] = dup[i%20]
	}
	report.Results = append(report.Results, runRobustCase(
		"duplicate_points", "40 of 120 rows duplicated", "ok",
		func(res *graphssl.Result, _ *graphssl.Report, err error) bool {
			return err == nil && res != nil
		},
		func(rep *graphssl.Report) (*graphssl.Result, error) {
			return graphssl.Fit(dup, y, labeled, graphssl.WithBandwidth(1), graphssl.WithDiagnostics(rep))
		}))

	report.Results = append(report.Results, runRobustCase(
		"zero_bandwidth", "WithBandwidth(0)", "ErrParam",
		func(_ *graphssl.Result, _ *graphssl.Report, err error) bool {
			return errors.Is(err, graphssl.ErrParam)
		},
		func(rep *graphssl.Report) (*graphssl.Result, error) {
			return graphssl.Fit(base, y, labeled, graphssl.WithBandwidth(0), graphssl.WithDiagnostics(rep))
		}))

	// Disconnected blobs: the labeled cluster and a far blob whose Gaussian
	// weights underflow to zero, leaving unlabeled nodes unreachable.
	blobs := append(robustBlob(rng, 40, 0, 1), robustBlob(rng, 40, 1e6, 1)...)
	yb := make([]float64, 10)
	lb := make([]int, 10)
	for i := range yb {
		yb[i] = float64(i % 2)
		lb[i] = i
	}
	report.Results = append(report.Results, runRobustCase(
		"disconnected_blobs", "two clusters 1e6 apart, labels in one", "ErrIsolated",
		func(_ *graphssl.Result, _ *graphssl.Report, err error) bool {
			return errors.Is(err, graphssl.ErrIsolated)
		},
		func(rep *graphssl.Report) (*graphssl.Result, error) {
			return graphssl.Fit(blobs, yb, lb, graphssl.WithBandwidth(1), graphssl.WithDiagnostics(rep))
		}))

	// Near-singular λ: λ→∞ drives (V+λL) toward the singular Laplacian; the
	// solve must still complete and collapse toward the label mean.
	report.Results = append(report.Results, runRobustCase(
		"near_singular_lambda", "soft criterion at λ=1e9", "ok",
		func(res *graphssl.Result, _ *graphssl.Report, err error) bool {
			if err != nil || res == nil {
				return false
			}
			var mean float64
			for _, v := range y {
				mean += v
			}
			mean /= float64(len(y))
			for _, s := range res.Scores {
				if s < mean-0.5 || s > mean+0.5 {
					return false
				}
			}
			return true
		},
		func(rep *graphssl.Report) (*graphssl.Result, error) {
			return graphssl.Fit(base, y, labeled,
				graphssl.WithBandwidth(1), graphssl.WithLambda(1e9), graphssl.WithDiagnostics(rep))
		}))

	// Stagnating CG: force the auto chain onto CG with a starved iteration
	// budget; the fit must complete through the dense fallback and record it.
	report.Results = append(report.Results, runRobustCase(
		"stagnating_cg", "auto chain, CG capped at 1 iteration", "fallback_to_cholesky",
		func(res *graphssl.Result, rep *graphssl.Report, err error) bool {
			return err == nil && res != nil &&
				res.Solver == graphssl.SolverCholesky && len(rep.Fallbacks) == 1
		},
		func(rep *graphssl.Report) (*graphssl.Result, error) {
			// Jacobi keeps the one-iteration budget insufficient; IC(0) is
			// exact on this dense-pattern system and would converge at once.
			return graphssl.Fit(base, y, labeled,
				graphssl.WithBandwidth(1), graphssl.WithAutoCutoff(1),
				graphssl.WithMaxIter(1), graphssl.WithTolerance(1e-14),
				graphssl.WithPreconditioner(graphssl.PrecondJacobi),
				graphssl.WithDiagnostics(rep))
		}))

	// Cancellation: a pre-canceled context must surface context.Canceled, not
	// a solver error, and must not fall back.
	report.Results = append(report.Results, runRobustCase(
		"canceled_context", "pre-canceled context", "context.Canceled",
		func(_ *graphssl.Result, rep *graphssl.Report, err error) bool {
			return errors.Is(err, context.Canceled) && len(rep.Fallbacks) == 0
		},
		func(rep *graphssl.Report) (*graphssl.Result, error) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			return graphssl.Fit(base, y, labeled,
				graphssl.WithBandwidth(1), graphssl.WithContext(ctx), graphssl.WithDiagnostics(rep))
		}))

	pass := 0
	for _, c := range report.Results {
		status := "FAIL"
		if c.Pass {
			status = "pass"
			pass++
		}
		det := "deterministic"
		if !c.Deterministic {
			det = "NON-DETERMINISTIC"
		}
		fmt.Printf("%-22s %-6s %-18s solver=%-12s fallbacks=%d  %s\n",
			c.Name, status, c.Expect, c.Solver, len(c.Fallbacks), det)
	}
	if pass != len(report.Results) {
		log.Printf("WARNING: %d/%d robust cases failed their contract", len(report.Results)-pass, len(report.Results))
	}
	writeReportAny(out, report)
}
