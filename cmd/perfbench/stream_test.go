package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestStreamSuiteSmall runs the stream suite end to end at CI scale: a
// one-second real-time trickle over a tiny base plus both
// refresh-vs-refit scenarios, through the same runner the bench uses.
// The runner itself asserts the streaming determinism contract (it
// aborts unless the incremental scores match the from-scratch fit
// bitwise), so this is a correctness smoke as much as a coverage one.
func TestStreamSuiteSmall(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_stream.json")
	p := streamParams{n: 400, rate: 200, seconds: 1, batch: 100, delta: 0.01, repeats: 1}
	runStreamSuite(out, p)

	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var rep streamReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report not valid JSON: %v", err)
	}
	if got, want := rep.Trickle.Points, p.rate*p.seconds; got != want {
		t.Fatalf("trickle points = %d, want %d", got, want)
	}
	if rep.Trickle.StalenessP99Ns <= 0 {
		t.Fatalf("staleness p99 = %d, want > 0", rep.Trickle.StalenessP99Ns)
	}
	if rep.Trickle.DeltaRolls+rep.Trickle.FullRolls != rep.Trickle.Batches {
		t.Fatalf("rolls %d+%d do not account for %d batches",
			rep.Trickle.DeltaRolls, rep.Trickle.FullRolls, rep.Trickle.Batches)
	}
	if len(rep.Refresh) != 2 {
		t.Fatalf("refresh scenarios = %d, want 2", len(rep.Refresh))
	}
	for _, rc := range rep.Refresh {
		if !rc.BitwiseMatched {
			t.Fatalf("scenario %q not bitwise-matched", rc.Scenario)
		}
		if rc.RefreshNs <= 0 || rc.FullRefitNs <= 0 {
			t.Fatalf("scenario %q has non-positive timings: %+v", rc.Scenario, rc)
		}
	}
}
