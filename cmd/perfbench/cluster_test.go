package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunClusterSuiteSmall runs the distributed suite end to end at a small
// size: real TCP workers, all four shard counts, and the routed serve fleet,
// asserting the report's structure and its bitwise-determinism claim.
func TestRunClusterSuiteSmall(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench_cluster.json")
	runClusterSuite(out, clusterParams{
		n: 2000, labelEvery: 50, degree: 3,
		workers: 2, replicas: 2,
		requests: 24, repeats: 1,
	})

	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report clusterReport
	if err := json.Unmarshal(buf, &report); err != nil {
		t.Fatal(err)
	}
	if report.Benchmark != "cluster" {
		t.Fatalf("benchmark = %q", report.Benchmark)
	}
	if !report.BitwiseIdentical {
		t.Fatal("suite reported shard counts as not bitwise-identical")
	}
	if len(report.Fit) != 4 {
		t.Fatalf("fit measurements = %d, want 4 (shards 1/2/4/8)", len(report.Fit))
	}
	for _, m := range report.Fit {
		if m.Iterations <= 0 || m.Seconds <= 0 {
			t.Fatalf("degenerate fit measurement: %+v", m)
		}
		if m.Iterations != report.Fit[0].Iterations {
			t.Fatalf("iteration count differs across shard counts: %+v", report.Fit)
		}
		if m.Residual != report.Fit[0].Residual {
			t.Fatalf("residual differs across shard counts: %+v", report.Fit)
		}
		if m.Restarts != 0 {
			t.Fatalf("unexpected restarts in a healthy run: %+v", m)
		}
	}
	// Edge cut and halo grow with shard count on the banded lattice, and a
	// single shard has neither.
	if report.Fit[0].EdgeCut != 0 || report.Fit[0].HaloTotal != 0 {
		t.Fatalf("1-shard run must have zero edge cut and halo: %+v", report.Fit[0])
	}
	if report.Fit[3].EdgeCut <= report.Fit[1].EdgeCut {
		t.Fatalf("edge cut did not grow with shards: %+v", report.Fit)
	}
	// Serve section: clients {1,4,16} x cache {off,on}, all with real load.
	if len(report.Serve) != 6 {
		t.Fatalf("serve measurements = %d, want 6", len(report.Serve))
	}
	for _, m := range report.Serve {
		if m.RPS <= 0 || m.Requests != 24 {
			t.Fatalf("degenerate serve measurement: %+v", m)
		}
	}
}
