package main

import (
	"fmt"
	"log"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/precond"
	"repro/internal/randx"
	"repro/internal/sparse"
)

// PrecondSolver is one solver variant's performance on a case system.
type PrecondSolver struct {
	Name       string  `json:"name"`
	Iterations int     `json:"iterations"`
	SetupNs    int64   `json:"setup_ns,omitempty"`
	SolveNs    int64   `json:"solve_ns"`
	Residual   float64 `json:"residual"`
}

// PrecondCase compares plain CG, Jacobi-PCG, and IC(0)-PCG (with RCM
// reordering) on one graph system A = V + λL.
type PrecondCase struct {
	Name        string          `json:"name"`
	Description string          `json:"description"`
	N           int             `json:"n"`
	NNZ         int             `json:"nnz"`
	Lambda      float64         `json:"lambda"`
	Solvers     []PrecondSolver `json:"solvers"`
	// IterReductionIC0VsJacobi is jacobi iterations / ic0 iterations —
	// the headline conditioning win.
	IterReductionIC0VsJacobi float64 `json:"iter_reduction_ic0_vs_jacobi"`
}

// PrecondSweep compares the default warm-started Jacobi sweep against the
// IC(0)+RCM sweep end to end over a λ grid.
type PrecondSweep struct {
	Name         string    `json:"name"`
	Lambdas      []float64 `json:"lambdas"`
	DefaultNs    int64     `json:"default_ns"`
	DefaultIters int       `json:"default_total_iterations"`
	IC0Ns        int64     `json:"ic0_ns"`
	IC0Iters     int       `json:"ic0_total_iterations"`
	IC0SetupNs   int64     `json:"ic0_setup_ns"`
	Speedup      float64   `json:"speedup_ic0_vs_default"`
}

// PrecondAlloc records allocations per solve on the cold (pre-pooling) and
// warm (workspace + destination reused) PCG paths.
type PrecondAlloc struct {
	Name              string  `json:"name"`
	ColdAllocsPerOp   float64 `json:"cold_allocs_per_op"`
	PooledAllocsPerOp float64 `json:"pooled_allocs_per_op"`
}

// PrecondReport is the JSON document for -suite precond.
type PrecondReport struct {
	Benchmark  string         `json:"benchmark"`
	Generated  string         `json:"generated"`
	GoVersion  string         `json:"go_version"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Repeats    int            `json:"repeats"`
	Cases      []PrecondCase  `json:"cases"`
	Sweeps     []PrecondSweep `json:"sweeps"`
	Allocs     []PrecondAlloc `json:"allocs"`
	Notes      string         `json:"notes"`
}

const (
	precondTol     = 1e-8
	precondMaxIter = 50000
)

// softSystem assembles A = V + λL and rhs = VY exactly as core.SolveSoft
// does, so the bench exercises the systems the solver core actually sees.
func softSystem(g *graph.Graph, labeled []int, y []float64, lambda float64) (*sparse.CSR, []float64) {
	lap, err := g.Laplacian(graph.Unnormalized)
	if err != nil {
		log.Fatal(err)
	}
	n := g.N()
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		cols, vals := lap.RowNNZ(i)
		for k, j := range cols {
			if err := coo.Add(i, j, lambda*vals[k]); err != nil {
				log.Fatal(err)
			}
		}
	}
	rhs := make([]float64, n)
	for k, l := range labeled {
		if err := coo.Add(l, l, 1); err != nil {
			log.Fatal(err)
		}
		rhs[l] = y[k]
	}
	return coo.ToCSR(), rhs
}

// alternatingLabels labels the first nLab vertices with ±1.
func alternatingLabels(nLab int) ([]int, []float64) {
	labeled := make([]int, nLab)
	y := make([]float64, nLab)
	for i := range labeled {
		labeled[i] = i
		y[i] = float64(2*(i%2) - 1)
	}
	return labeled, y
}

// twoClusterPoints draws two Gaussian blobs far apart joined by a thin
// bridge of points, the near-disconnected geometry whose tiny Fiedler value
// makes V + λL ill-conditioned at small λ. Labeled points come first (half
// per cluster) so the same slice feeds core.NewProblemLabeledFirst.
func twoClusterPoints(seed int64, perCluster, bridge, nLab int, sep float64) [][]float64 {
	rng := randx.New(seed)
	blob := func(cx float64, n int) [][]float64 {
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{cx + 0.5*rng.Norm(), 0.5 * rng.Norm()}
		}
		return pts
	}
	a := blob(0, perCluster)
	b := blob(sep, perCluster)
	x := make([][]float64, 0, 2*perCluster+bridge)
	// Interleave the labeled heads of both clusters first.
	for i := 0; i < nLab/2; i++ {
		x = append(x, a[i], b[i])
	}
	x = append(x, a[nLab/2:]...)
	x = append(x, b[nLab/2:]...)
	for i := 0; i < bridge; i++ {
		t := (float64(i) + 0.5) / float64(bridge)
		x = append(x, []float64{t * sep, 0.02 * rng.Norm()})
	}
	return x
}

// stripPoints draws n points uniform on the strip [0,1]×[0,width]. A
// compact-support kernel at small h turns this into a quasi-1D chain:
// the Laplacian's condition number grows with the squared strip length
// while the RCM bandwidth stays near the per-slab point count.
func stripPoints(seed int64, n int, width float64) [][]float64 {
	rng := randx.New(seed)
	x := make([][]float64, n)
	for i := range x {
		x[i] = []float64{rng.Float64(), width * rng.Float64()}
	}
	return x
}

// buildGraph constructs a graph or dies.
func buildGraph(x [][]float64, k *kernel.K, opts ...graph.Option) *graph.Graph {
	b, err := graph.NewBuilder(k, opts...)
	if err != nil {
		log.Fatal(err)
	}
	g, err := b.Build(x)
	if err != nil {
		log.Fatal(err)
	}
	return g
}

// benchSolvers times plain CG, Jacobi-PCG, and reordered IC(0)-PCG on one
// assembled system.
func benchSolvers(repeats int, a *sparse.CSR, b []float64) []PrecondSolver {
	base := sparse.CGOptions{Tol: precondTol, MaxIter: precondMaxIter, Workers: 1}
	out := make([]PrecondSolver, 0, 3)

	run := func(name string, setupNs int64, solve func() (sparse.SolveResult, error)) {
		var res sparse.SolveResult
		ns := timeIt(repeats, func() {
			var err error
			res, err = solve()
			if err != nil {
				log.Fatalf("%s: %v", name, err)
			}
		})
		out = append(out, PrecondSolver{
			Name: name, Iterations: res.Iterations,
			SetupNs: setupNs, SolveNs: ns, Residual: res.Residual,
		})
	}

	run("cg", 0, func() (sparse.SolveResult, error) {
		_, res, err := sparse.CG(a, b, base)
		return res, err
	})

	jac := base
	jac.Precondition = true
	run("jacobi_pcg", 0, func() (sparse.SolveResult, error) {
		_, res, err := sparse.CG(a, b, jac)
		return res, err
	})

	setupStart := time.Now()
	perm, err := sparse.RCM(a)
	if err != nil {
		log.Fatal(err)
	}
	pa, err := a.Permute(perm)
	if err != nil {
		log.Fatal(err)
	}
	m, err := precond.Auto(pa)
	if err != nil {
		log.Fatal(err)
	}
	setupNs := time.Since(setupStart).Nanoseconds()
	pb := make([]float64, len(b))
	sparse.PermuteVecTo(pb, b, perm)
	run("ic0_rcm_pcg", setupNs, func() (sparse.SolveResult, error) {
		_, res, err := sparse.PCG(pa, pb, sparse.PCGOptions{CGOptions: base, M: m})
		return res, err
	})
	return out
}

func precondCase(name, desc string, repeats int, g *graph.Graph, labeled []int, y []float64, lambda float64) PrecondCase {
	a, rhs := softSystem(g, labeled, y, lambda)
	c := PrecondCase{
		Name: name, Description: desc,
		N: a.Rows(), NNZ: a.NNZ(), Lambda: lambda,
		Solvers: benchSolvers(repeats, a, rhs),
	}
	var jacIt, icIt int
	for _, s := range c.Solvers {
		switch s.Name {
		case "jacobi_pcg":
			jacIt = s.Iterations
		case "ic0_rcm_pcg":
			icIt = s.Iterations
		}
	}
	if icIt > 0 {
		c.IterReductionIC0VsJacobi = float64(jacIt) / float64(icIt)
	}
	return c
}

// benchSweep times core.SoftSweep end to end: the default warm-started
// Jacobi path against the IC(0)+RCM path, on the same problem and λ grid.
func benchSweep(name string, repeats int, p *core.Problem, lambdas []float64) PrecondSweep {
	s := PrecondSweep{Name: name, Lambdas: lambdas}
	runSweep := func(opts ...core.SolveOption) (int64, int, int64) {
		// Single worker on both sides: the deterministic configuration the
		// zero-alloc warm path targets, and an apples-to-apples comparison
		// (triangular solves do not parallelize the way SpMV does).
		opts = append(opts, core.WithWorkers(1))
		var iters int
		var setup int64
		ns := timeIt(repeats, func() {
			pts, err := core.SoftSweep(p, lambdas, opts...)
			if err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			iters, setup = 0, 0
			for _, pt := range pts {
				iters += pt.Solution.Iterations
				setup += pt.Solution.PrecondSetup.Nanoseconds()
			}
		})
		return ns, iters, setup
	}
	s.DefaultNs, s.DefaultIters, _ = runSweep()
	s.IC0Ns, s.IC0Iters, s.IC0SetupNs = runSweep(core.WithPreconditioner(core.PrecondIC0))
	s.Speedup = float64(s.DefaultNs) / float64(s.IC0Ns)
	return s
}

// benchAllocs measures allocations per solve on the cold path (no reusable
// state, the pre-pooling behaviour) and the warm pooled path (held
// Workspace, destination buffer doubling as the warm start).
func benchAllocs(name string, a *sparse.CSR, b []float64) PrecondAlloc {
	base := sparse.CGOptions{Tol: precondTol, MaxIter: precondMaxIter, Workers: 1, Precondition: true}
	// Cold = the pre-pooling behaviour: every solve builds its scratch
	// vectors and result buffer from scratch.
	cold := testing.AllocsPerRun(20, func() {
		if _, _, err := sparse.PCG(a, b, sparse.PCGOptions{CGOptions: base, Ws: sparse.NewWorkspace()}); err != nil {
			log.Fatal(err)
		}
	})
	ws := sparse.NewWorkspace()
	dst := make([]float64, len(b))
	warmOpts := base
	warmOpts.X0 = dst
	solve := func() {
		if _, _, err := sparse.PCG(a, b, sparse.PCGOptions{CGOptions: warmOpts, Dst: dst, Ws: ws}); err != nil {
			log.Fatal(err)
		}
	}
	solve() // grow workspace buffers once
	pooled := testing.AllocsPerRun(100, solve)
	return PrecondAlloc{Name: name, ColdAllocsPerOp: cold, PooledAllocsPerOp: pooled}
}

// runPrecondSuite builds the three ISSUE case graphs, benches the solver
// variants on each, times the two sweep configurations, measures the
// allocation contract, and writes the report.
func runPrecondSuite(out string, repeats int) {
	report := PrecondReport{
		Benchmark:  "preconditioned solver core: CG vs Jacobi-PCG vs IC(0)-PCG",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Repeats:    repeats,
		Notes: "Systems are A = V + λL from real graph builds (same assembly as core.SolveSoft). " +
			"ic0_rcm_pcg setup_ns covers RCM + symbolic/numeric IC(0) once per pattern; sweeps amortize it. " +
			"Sweep rows time core.SoftSweep end to end: default warm-started Jacobi vs WithPreconditioner(PrecondIC0). " +
			"Alloc rows count heap allocations per solve: cold = fresh buffers every call (pre-pooling behaviour), " +
			"pooled = caller-held Workspace and destination (the steady-state sweep path); the CI gate TestZeroAllocSolve pins pooled at 0.",
	}

	// Case 1: well-conditioned kNN graph — moderate λ, healthy spectral gap.
	// All solvers converge quickly; IC(0) should at least not lose.
	xw := uniformPoints(91, 4000, 3)
	gw := buildGraph(xw, kernel.MustNew(kernel.Gaussian, 0.3), graph.WithKNN(10))
	labW, yW := alternatingLabels(400)
	report.Cases = append(report.Cases,
		precondCase("knn_well_conditioned",
			"4000 uniform points in [0,1]^3, 10-NN Gaussian graph, 10% labeled, λ=1",
			repeats, gw, labW, yW, 1.0))

	// Case 2: small-h_n ε-graph — compact-support kernel at a bandwidth just
	// past the connectivity threshold gives a weakly coupled sparse graph;
	// with few labels and small λ the smallest eigenvalue collapses.
	xe := uniformPoints(92, 3000, 2)
	ge := buildGraph(xe, kernel.MustNew(kernel.Epanechnikov, 0.05))
	labE, yE := alternatingLabels(60)
	report.Cases = append(report.Cases,
		precondCase("epsilon_small_h",
			"3000 uniform points in [0,1]^2, ε-graph at h=0.05 (near connectivity threshold), 2% labeled, λ=1e-3",
			repeats, ge, labE, yE, 1e-3))

	// Case 3: near-disconnected two-cluster graph — a thin bridge keeps the
	// Fiedler value barely positive, the classic ill-conditioned SSL geometry.
	nLabC := 40
	xc := twoClusterPoints(93, 1500, 40, nLabC, 12)
	gc := buildGraph(xc, kernel.MustNew(kernel.Gaussian, 0.4), graph.WithKNN(8))
	labC, yC := alternatingLabels(nLabC)
	report.Cases = append(report.Cases,
		precondCase("two_cluster_near_disconnected",
			"two 1500-point clusters 12 apart joined by a 40-point bridge, 8-NN Gaussian graph, λ=1e-3",
			repeats, gc, labC, yC, 1e-3))

	// Sweep comparisons on two ill-conditioned geometries where the
	// λ-dependent refactorization can pay for itself: an elongated-strip
	// ε-graph (quasi-1D, condition number grows with the strip length,
	// RCM bandwidth stays tiny so IC(0) is nearly complete) and the
	// two-cluster bridge geometry above.
	xs := stripPoints(94, 4000, 0.012)
	gs := buildGraph(xs, kernel.MustNew(kernel.Epanechnikov, 0.004))
	_, yS := alternatingLabels(80)
	pe, err := core.NewProblemLabeledFirst(gs, yS)
	if err != nil {
		log.Fatal(err)
	}
	pc, err := core.NewProblemLabeledFirst(gc, yC)
	if err != nil {
		log.Fatal(err)
	}
	lambdas := []float64{1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1}
	report.Sweeps = append(report.Sweeps,
		benchSweep("sweep_strip_epsilon", repeats, pe, lambdas),
		benchSweep("sweep_two_cluster", repeats, pc, lambdas))

	// Allocation contract on the well-conditioned system (fast to iterate).
	aw, bw := softSystem(gw, labW, yW, 1.0)
	report.Allocs = append(report.Allocs, benchAllocs("jacobi_pcg_4000", aw, bw))

	for _, c := range report.Cases {
		fmt.Printf("%-30s n=%d nnz=%d λ=%g\n", c.Name, c.N, c.NNZ, c.Lambda)
		for _, s := range c.Solvers {
			fmt.Printf("  %-12s %6d iters  setup %10d ns  solve %12d ns  res %.2e\n",
				s.Name, s.Iterations, s.SetupNs, s.SolveNs, s.Residual)
		}
		fmt.Printf("  iter reduction ic0 vs jacobi: %.2fx\n", c.IterReductionIC0VsJacobi)
	}
	for _, s := range report.Sweeps {
		fmt.Printf("%-30s default %12d ns (%d iters)  ic0 %12d ns (%d iters, setup %d ns)  speedup %.2fx\n",
			s.Name, s.DefaultNs, s.DefaultIters, s.IC0Ns, s.IC0Iters, s.IC0SetupNs, s.Speedup)
	}
	for _, a := range report.Allocs {
		fmt.Printf("%-30s cold %.1f allocs/op  pooled %.1f allocs/op\n", a.Name, a.ColdAllocsPerOp, a.PooledAllocsPerOp)
	}
	writeReportAny(out, report)
}
