package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/randx"
)

// allocBytes returns the cumulative heap allocation of one fn() call,
// measured after a GC settles the heap. The spatial suite uses it to show
// the indexed paths never materialize the O(n²) distance matrix.
func allocBytes(fn func()) uint64 {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	fn()
	runtime.ReadMemStats(&m1)
	return m1.TotalAlloc - m0.TotalAlloc
}

// uniformPoints draws n points uniform in [0,1]^d; uniform density makes
// neighbourhood sizes (and so bench workloads) easy to reason about.
func uniformPoints(seed int64, n, d int) [][]float64 {
	rng := randx.New(seed)
	x := make([][]float64, n)
	for i := range x {
		x[i] = make([]float64, d)
		for j := range x[i] {
			x[i][j] = rng.Float64()
		}
	}
	return x
}

// spatialParams bundles the -suite spatial knobs.
type spatialParams struct {
	n       int     // point count
	d       int     // dimension (the grid heuristic wants <= 5 here)
	knn     int     // neighbour count for the kd-tree bench
	radius  float64 // Epanechnikov bandwidth for the radius bench
	nwLab   int     // labeled count for the NW bench
	nwH     float64 // Epanechnikov bandwidth for the NW bench
	repeats int
}

// runSpatialSuite measures the spatial-index construction paths against the
// brute-force distance-matrix paths they replace, passing each measurement
// to record. Every timed pair produces byte-identical output (the
// determinism suite asserts it); only time and memory differ.
func runSpatialSuite(p spatialParams, record func(Measurement)) {
	x := uniformPoints(171, p.n, p.d)

	// --- ε-radius build: grid cell-list vs dense matrix --------------------
	epan := kernel.MustNew(kernel.Epanechnikov, p.radius)
	buildWith := func(kind graph.IndexKind, workers int, opts ...graph.Option) func() {
		opts = append([]graph.Option{graph.WithIndex(kind), graph.WithWorkers(workers)}, opts...)
		b, err := graph.NewBuilder(epan, opts...)
		if err != nil {
			log.Fatal(err)
		}
		return func() {
			if _, err := b.Build(x); err != nil {
				log.Fatal(err)
			}
		}
	}
	m := Measurement{Name: "radius_build", WorkersNs: map[string]int64{}}
	m.BaselineNs = timeIt(p.repeats, buildWith(graph.IndexBrute, 1))
	for _, w := range workerCounts() {
		m.WorkersNs[fmt.Sprint(w)] = timeIt(p.repeats, buildWith(graph.IndexGrid, w))
	}
	m.SpeedupAt4 = float64(m.BaselineNs) / float64(m.WorkersNs["4"])
	m.BaselineAllocBytes = allocBytes(buildWith(graph.IndexBrute, 1))
	m.IndexedAllocBytes = allocBytes(buildWith(graph.IndexGrid, 1))
	record(m)

	// --- kNN build: kd-tree vs dense matrix + quickselect ------------------
	gauss := kernel.MustNew(kernel.Gaussian, 1.0)
	knnWith := func(kind graph.IndexKind, workers int) func() {
		b, err := graph.NewBuilder(gauss, graph.WithKNN(p.knn), graph.WithIndex(kind), graph.WithWorkers(workers))
		if err != nil {
			log.Fatal(err)
		}
		return func() {
			if _, err := b.Build(x); err != nil {
				log.Fatal(err)
			}
		}
	}
	m = Measurement{Name: "knn_build_kdtree", WorkersNs: map[string]int64{}}
	m.BaselineNs = timeIt(p.repeats, knnWith(graph.IndexBrute, 1))
	for _, w := range workerCounts() {
		m.WorkersNs[fmt.Sprint(w)] = timeIt(p.repeats, knnWith(graph.IndexKDTree, w))
	}
	m.SpeedupAt4 = float64(m.BaselineNs) / float64(m.WorkersNs["4"])
	m.BaselineAllocBytes = allocBytes(knnWith(graph.IndexBrute, 1))
	m.IndexedAllocBytes = allocBytes(knnWith(graph.IndexKDTree, 1))
	record(m)

	// --- NW prediction: indexed point sums vs full graph build -------------
	// The pre-spatial route to the Eq. 6 estimator materialized the whole
	// similarity graph first; the indexed route sums over the labeled points
	// inside the kernel support directly.
	nwKern := kernel.MustNew(kernel.Epanechnikov, p.nwH)
	labeled := make([]int, p.nwLab)
	y := make([]float64, p.nwLab)
	rng := randx.New(173)
	for i := range labeled {
		labeled[i] = i
		y[i] = rng.Bernoulli(0.5)
	}
	baselineNW := func() {
		b, err := graph.NewBuilder(nwKern, graph.WithIndex(graph.IndexBrute), graph.WithWorkers(1))
		if err != nil {
			log.Fatal(err)
		}
		g, err := b.Build(x)
		if err != nil {
			log.Fatal(err)
		}
		prob, err := core.NewProblem(g, labeled, y)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := core.NadarayaWatson(prob); err != nil {
			log.Fatal(err)
		}
	}
	indexedNW := func(workers int) func() {
		return func() {
			if _, _, err := core.NadarayaWatsonPoints(x, labeled, y, nwKern, workers); err != nil {
				log.Fatal(err)
			}
		}
	}
	m = Measurement{Name: "nw_predict", WorkersNs: map[string]int64{}}
	m.BaselineNs = timeIt(p.repeats, baselineNW)
	for _, w := range workerCounts() {
		m.WorkersNs[fmt.Sprint(w)] = timeIt(p.repeats, indexedNW(w))
	}
	m.SpeedupAt4 = float64(m.BaselineNs) / float64(m.WorkersNs["4"])
	m.BaselineAllocBytes = allocBytes(baselineNW)
	m.IndexedAllocBytes = allocBytes(indexedNW(1))
	record(m)
}

// spatialReport builds the report skeleton for the spatial suite.
func spatialReport(p spatialParams) Report {
	return Report{
		Benchmark:  "spatial-index",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Params: map[string]int{
			"n": p.n, "d": p.d, "knn": p.knn,
			"radius_milli": int(p.radius * 1000),
			"nw_labeled":   p.nwLab,
			"nw_h_milli":   int(p.nwH * 1000),
		},
		Repeats: p.repeats,
		Notes: "baseline_ns times the brute-force O(n²) distance-matrix paths " +
			"(IndexBrute); workers_ns times the spatial-index paths (grid " +
			"cell-list for the ε-radius build, KD-tree for kNN, indexed labeled " +
			"sums for NW prediction) at fixed worker counts. Outputs are " +
			"byte-identical between the timed pairs. *_alloc_bytes is the " +
			"cumulative heap allocation of one workers=1 run: the brute paths " +
			"carry the 8·n² distance matrix, the indexed paths allocate O(nk). " +
			"On a GOMAXPROCS=1 host the worker axis is flat and the speedup is " +
			"purely algorithmic.",
	}
}
