package main

import (
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"runtime"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sparse"
	"repro/serve"
)

// The cluster suite measures the distributed layer end to end: a large
// hard-criterion system solved by the sharded PCG engine across real local
// TCP workers at several shard counts — asserting the bitwise-determinism
// contract while it times — plus the replicated serve fleet answering
// predict load through the consistent-hash router.

// clusterParams sizes the distributed suite.
type clusterParams struct {
	n          int // total graph nodes (labeled + unlabeled)
	labelEvery int // one labeled anchor per this many nodes
	degree     int // band half-width: neighbours per side in the lattice
	workers    int // local TCP workers the coordinator drives
	replicas   int // serve replicas behind the router
	requests   int // timed predict requests per serve configuration
	repeats    int
}

// clusterFitMeasurement is one distributed solve at a fixed shard count.
type clusterFitMeasurement struct {
	Shards     int     `json:"shards"`
	Workers    int     `json:"workers"`
	Seconds    float64 `json:"seconds"`
	Iterations int     `json:"iterations"`
	Residual   float64 `json:"residual"`
	EdgeCut    int     `json:"edge_cut"`
	HaloTotal  int     `json:"halo_total"`
	Restarts   int     `json:"restarts"`
}

// clusterReport is the JSON document for -suite cluster.
type clusterReport struct {
	Benchmark        string                  `json:"benchmark"`
	Generated        string                  `json:"generated"`
	GoVersion        string                  `json:"go_version"`
	GOMAXPROCS       int                     `json:"gomaxprocs"`
	NumCPU           int                     `json:"num_cpu"`
	Params           map[string]int          `json:"params"`
	Fit              []clusterFitMeasurement `json:"fit"`
	BitwiseIdentical bool                    `json:"bitwise_identical_across_shards"`
	Serve            []serveMeasurement      `json:"serve"`
	Notes            string                  `json:"notes"`
}

// clusterSystem builds the benchmark system directly as a banded lattice —
// n nodes, `degree` neighbours per side with deterministic positive weights,
// one labeled anchor every labelEvery nodes — so suite time measures the
// distributed solve, not graph construction.
func clusterSystem(n, labelEvery, degree int) *core.PropagationSystem {
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		for k := 1; k <= degree; k++ {
			j := i + k
			if j >= n {
				break
			}
			w := (1 + 0.5*math.Sin(float64(31*i+j))) / float64(k)
			if err := coo.AddSym(i, j, w); err != nil {
				log.Fatal(err)
			}
		}
	}
	g, err := graph.FromWeights(coo.ToCSR())
	if err != nil {
		log.Fatal(err)
	}
	var labeled []int
	var y []float64
	for i := 0; i < n; i += labelEvery {
		labeled = append(labeled, i)
		y = append(y, float64(len(labeled)%2))
	}
	p, err := core.NewProblem(g, labeled, y)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.BuildPropagationSystem(p)
	if err != nil {
		log.Fatal(err)
	}
	return sys
}

// runClusterSuite benchmarks the distributed fit and the replicated serve
// fleet, and writes the report.
func runClusterSuite(out string, p clusterParams) {
	report := clusterReport{
		Benchmark:  "cluster",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Params: map[string]int{
			"n": p.n, "label_every": p.labelEvery, "degree": p.degree,
			"workers": p.workers, "replicas": p.replicas,
			"requests": p.requests, "repeats": p.repeats,
		},
		Notes: "Distributed hard-criterion fit over real local TCP workers " +
			"(net/rpc + gob), timed per shard count on one banded lattice " +
			"system; bitwise_identical_across_shards asserts the fixed " +
			"chunk-reduction contract — every shard count must return the " +
			"bit-identical solution, and the suite aborts if not. edge_cut and " +
			"halo_total echo the partition plan quality. The serve section " +
			"drives single-point predict load through the consistent-hash " +
			"router of a replicated fleet (cache off = the routed compute " +
			"path; cache on = steady-state hits on the owning replica).",
	}

	// --- Distributed fit across shard counts -------------------------------
	fmt.Printf("cluster: building n=%d system (one anchor per %d nodes)\n", p.n, p.labelEvery)
	sys := clusterSystem(p.n, p.labelEvery, p.degree)
	fmt.Printf("cluster: %d unknowns, %d stored entries\n", sys.M(), sys.W.NNZ())

	var addrs []string
	var workers []*cluster.Worker
	for i := 0; i < p.workers; i++ {
		w, err := cluster.StartWorker("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		workers = append(workers, w)
		addrs = append(addrs, w.Addr())
	}
	defer func() {
		for _, w := range workers {
			_ = w.Close()
		}
	}()

	var ref []float64
	report.BitwiseIdentical = true
	for _, shards := range []int{1, 2, 4, 8} {
		var f []float64
		var res cluster.Result
		best := math.Inf(1)
		for r := 0; r < p.repeats; r++ {
			start := time.Now()
			var err error
			f, res, err = cluster.SolvePCG(sys, addrs, cluster.PCGOptions{Shards: shards})
			if err != nil {
				log.Fatalf("shards=%d: %v", shards, err)
			}
			if el := time.Since(start).Seconds(); el < best {
				best = el
			}
		}
		if ref == nil {
			ref = f
		} else {
			for i := range ref {
				if f[i] != ref[i] {
					report.BitwiseIdentical = false
					log.Fatalf("shards=%d: solution not bitwise-identical to the 1-shard run at %d", shards, i)
				}
			}
		}
		m := clusterFitMeasurement{
			Shards: shards, Workers: res.Workers, Seconds: best,
			Iterations: res.Iterations, Residual: res.Residual,
			EdgeCut: res.EdgeCut, HaloTotal: res.HaloTotal, Restarts: res.Restarts,
		}
		report.Fit = append(report.Fit, m)
		fmt.Printf("cluster  shards %d  workers %d  %8.3f s  %4d iters  residual %.2e  edgecut %d  halo %d\n",
			shards, res.Workers, best, res.Iterations, res.Residual, res.EdgeCut, res.HaloTotal)
	}
	fmt.Println("cluster: solutions bitwise-identical across shard counts")

	// --- Replicated serve fleet through the router -------------------------
	sp := serveParams{anchors: 4096, d: 16, requests: p.requests, warmup: p.requests / 4}
	model := benchModel(sp)
	queries := benchQueries(sp, 64)
	for _, cache := range []bool{false, true} {
		cacheSize := -1
		if cache {
			cacheSize = 8192
		}
		fleet, err := serve.NewFleet(p.replicas, serve.Config{
			NoBatch: true, Workers: 1, QueueDepth: 1 << 16, CacheSize: cacheSize,
		})
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < fleet.Len(); i++ {
			if _, err := fleet.Replica(i).Registry().Store("bench", model); err != nil {
				log.Fatal(err)
			}
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		hs := &http.Server{Handler: fleet.Handler()}
		go func() { _ = hs.Serve(ln) }()
		base := "http://" + ln.Addr().String()
		client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 128}}

		for _, clients := range []int{1, 4, 16} {
			m := runServeLoad(base, client, sp, clients, queries)
			m.Cache = cache
			report.Serve = append(report.Serve, m)
			fmt.Printf("fleet  replicas %d  clients %2d  cache %-5v  %8.1f rps  p50 %7.0f µs  p99 %7.0f µs\n",
				p.replicas, clients, cache, m.RPS, m.P50Us, m.P99Us)
		}
		client.CloseIdleConnections()
		_ = hs.Close()
		fleet.Close()
	}
	writeReportAny(out, report)
}
