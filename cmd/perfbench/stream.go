package main

import (
	"fmt"
	"log"
	"math"
	"runtime"
	"sort"
	"time"

	graphssl "repro"
	"repro/internal/randx"
	"repro/serve"
	"repro/stream"
)

// The stream suite measures the streaming ingest subsystem end to end:
//
//  1. Trickle: a real-time feed of labeled points at a fixed arrival rate
//     over a warm base fit. Points arrive continuously, the ingest loop
//     folds each batch into the incremental refresh ladder, rolls the
//     served model forward through the delta snapshot path, and the suite
//     records per-point label-to-servable staleness (arrival to
//     registry-publish) as p50/p99.
//  2. Refresh vs refit: a ≤1% labeled delta applied through the
//     incremental path, timed against graphssl.Fit from scratch on the
//     identical final point set. The incremental path answers with the
//     same bits (the subsystem's determinism contract, asserted here),
//     so the ratio is a pure speedup.
//
// Everything is deterministic except the wall clock: fixtures come from
// the repo's seeded RNG and every fitted number is a pure function of
// the parameters.

type streamParams struct {
	n       int     // base point count
	rate    int     // arrival rate, points per second
	seconds int     // trickle duration
	batch   int     // points folded per refresh cycle
	delta   float64 // labeled-delta fraction for the refresh-vs-refit case
	repeats int
}

// streamBandwidth returns the suite's compact-kernel bandwidth for a
// base size n: about three grid spacings of the jittered-grid fixture,
// so every point sees a few dozen neighbours (the regime the incremental
// graph layer targets) and the radius graph stays connected.
func streamBandwidth(n int) float64 {
	side := int(math.Ceil(math.Sqrt(float64(n))))
	return 3.2 / float64(side)
}

type trickleResult struct {
	Points         int     `json:"points"`
	Seconds        float64 `json:"seconds"`
	OfferedRate    float64 `json:"offered_rate_per_sec"`
	RatePerSec     float64 `json:"published_rate_per_sec"`
	Sustained      bool    `json:"sustained"`
	LateBatches    int     `json:"late_batches"`
	Batches        int     `json:"batches"`
	DeltaRolls     int     `json:"delta_rollforwards"`
	FullRolls      int     `json:"full_rollforwards"`
	StalenessP50Ns int64   `json:"staleness_p50_ns"`
	StalenessP99Ns int64   `json:"staleness_p99_ns"`
	StalenessMaxNs int64   `json:"staleness_max_ns"`
	FinalAnchors   int     `json:"final_anchors"`
	WarmRefreshes  int     `json:"warm_refreshes"`
	WoodburyRefs   int     `json:"woodbury_refreshes"`
}

type refreshVsRefitResult struct {
	Scenario       string  `json:"scenario"`
	BaseN          int     `json:"base_n"`
	DeltaPoints    int     `json:"delta_points"`
	DeltaFraction  float64 `json:"delta_fraction"`
	RefreshNs      int64   `json:"refresh_ns"`
	FullRefitNs    int64   `json:"full_refit_ns"`
	Speedup        float64 `json:"speedup_refit_vs_refresh"`
	RefreshKind    string  `json:"refresh_kind"`
	BitwiseMatched bool    `json:"bitwise_matched"`
}

type streamReport struct {
	Benchmark  string                 `json:"benchmark"`
	Generated  string                 `json:"generated"`
	GoVersion  string                 `json:"go_version"`
	GOMAXPROCS int                    `json:"gomaxprocs"`
	NumCPU     int                    `json:"num_cpu"`
	Params     map[string]float64     `json:"params"`
	Trickle    trickleResult          `json:"trickle"`
	Refresh    []refreshVsRefitResult `json:"refresh_vs_refit"`
	Notes      string                 `json:"notes"`
}

// streamFixture builds the planar base fixture: an n-point jittered grid
// covering the unit square (so the radius graph at streamBandwidth(n) is
// connected by construction) with a smooth response on every
// labelEvery-th point.
func streamFixture(n, labelEvery int, seed int64) (x [][]float64, y []float64, labeled []int) {
	rng := randx.New(seed)
	side := int(math.Ceil(math.Sqrt(float64(n))))
	jitter := 0.2 / float64(side)
	x = make([][]float64, n)
	for i := range x {
		px := (float64(i%side) + 0.5) / float64(side)
		py := (float64(i/side) + 0.5) / float64(side)
		x[i] = []float64{px + jitter*(2*rng.Float64()-1), py + jitter*(2*rng.Float64()-1)}
	}
	for i := 0; i < n; i += labelEvery {
		labeled = append(labeled, i)
		y = append(y, math.Sin(4*x[i][0])*math.Cos(3*x[i][1]))
	}
	return x, y, labeled
}

func newStreamIngestor(x [][]float64, y []float64, labeled []int, bw float64) *stream.Ingestor {
	ing, err := stream.New(x, y, labeled, stream.Config{
		Kernel:    graphssl.Epanechnikov,
		Bandwidth: bw,
		Workers:   runtime.GOMAXPROCS(0),
	})
	if err != nil {
		log.Fatalf("stream: base fit: %v", err)
	}
	return ing
}

// runTrickle drives the real-time feed: batches of `batch` labeled points
// arrive every batch/rate seconds (arrival timestamps spread uniformly
// across the interval); each batch is inserted, refreshed, and rolled
// into the serve registry, and every point's staleness is the time from
// its arrival to the completed publish.
func runTrickle(p streamParams) trickleResult {
	x, y, labeled := streamFixture(p.n, 10, 1031)
	ing := newStreamIngestor(x, y, labeled, streamBandwidth(p.n))
	snap, err := ing.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	model, err := serve.NewModel(snap, serve.WithWorkers(1))
	if err != nil {
		log.Fatal(err)
	}
	reg := &serve.Registry{}
	if _, err := reg.Store("trickle", model); err != nil {
		log.Fatal(err)
	}
	cur := model

	rng := randx.New(2063)
	total := p.rate * p.seconds
	interval := time.Duration(float64(p.batch) / float64(p.rate) * float64(time.Second))
	perPoint := interval / time.Duration(p.batch)

	res := trickleResult{}
	staleness := make([]int64, 0, total)
	start := time.Now()
	next := start.Add(interval)
	for sent := 0; sent < total; {
		b := p.batch
		if rem := total - sent; b > rem {
			b = rem
		}
		// The batch's points arrive during the interval that ends at
		// `next`; sleep until the interval closes, then process. A
		// negative wait means the previous batch overran its interval:
		// the loop fell behind the offered rate.
		if wait := time.Until(next); wait > 0 {
			time.Sleep(wait)
		} else {
			res.LateBatches++
		}
		arrivalEnd := next
		next = next.Add(interval)

		for i := 0; i < b; i++ {
			pt := []float64{rng.Float64(), rng.Float64()}
			if _, err := ing.InsertLabeled(pt, math.Sin(4*pt[0])*math.Cos(3*pt[1])); err != nil {
				log.Fatalf("stream: insert: %v", err)
			}
		}
		if _, err := ing.Refresh(); err != nil {
			log.Fatalf("stream: refresh: %v", err)
		}
		if d, ok := ing.TakeDelta(); ok && d.Len() > 0 {
			nextModel, err := cur.ApplyDelta(d)
			if err != nil {
				log.Fatalf("stream: apply delta: %v", err)
			}
			cur = nextModel
			res.DeltaRolls++
		} else {
			snap, err := ing.Snapshot()
			if err != nil {
				log.Fatal(err)
			}
			if cur, err = serve.NewModel(snap, serve.WithWorkers(1)); err != nil {
				log.Fatal(err)
			}
			ing.MarkPublished()
			res.FullRolls++
		}
		if _, err := reg.Store("trickle", cur); err != nil {
			log.Fatal(err)
		}
		published := time.Now()
		for i := 0; i < b; i++ {
			arrival := arrivalEnd.Add(-time.Duration(b-1-i) * perPoint)
			staleness = append(staleness, published.Sub(arrival).Nanoseconds())
		}
		sent += b
		res.Batches++
	}
	res.Seconds = time.Since(start).Seconds()
	res.Points = total
	res.OfferedRate = float64(p.rate)
	res.RatePerSec = float64(total) / res.Seconds
	res.Sustained = res.LateBatches == 0

	sort.Slice(staleness, func(i, j int) bool { return staleness[i] < staleness[j] })
	res.StalenessP50Ns = staleness[len(staleness)/2]
	res.StalenessP99Ns = staleness[len(staleness)*99/100]
	res.StalenessMaxNs = staleness[len(staleness)-1]
	res.FinalAnchors = cur.Info().Anchors
	st := ing.Stats()
	res.WarmRefreshes = st.WarmRefreshes
	res.WoodburyRefs = st.WoodburyRefreshes
	return res
}

// refitAndCheck times graphssl.Fit from scratch on (x, y, labeled) and
// asserts the compacted incremental state matches it bitwise — the
// determinism contract, verified on the benchmark sizes.
func refitAndCheck(ing *stream.Ingestor, x [][]float64, y []float64, labeled []int, bw float64, repeats int) (int64, bool) {
	var res *graphssl.Result
	refitNs := timeIt(repeats, func() {
		var ferr error
		res, ferr = graphssl.Fit(x, y, labeled,
			graphssl.WithKernel(graphssl.Epanechnikov),
			graphssl.WithBandwidth(bw),
			graphssl.WithWorkers(runtime.GOMAXPROCS(0)))
		if ferr != nil {
			log.Fatalf("stream: full refit: %v", ferr)
		}
	})
	if _, err := ing.Compact(); err != nil {
		log.Fatalf("stream: compact: %v", err)
	}
	got := ing.Scores()
	matched := len(got) == len(res.Scores)
	if matched {
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(res.Scores[i]) {
				matched = false
				break
			}
		}
	}
	if !matched {
		log.Fatalf("stream: compacted scores diverge from the batch fit")
	}
	return refitNs, matched
}

// runRelabelCase changes the responses of delta×|labeled| existing
// labeled points through the incremental path (graph and label set
// unchanged, so the refresher only moves the right-hand side and
// warm-starts from the previous solution) and times it against a
// from-scratch fit on the identical relabeled data.
func runRelabelCase(p streamParams) refreshVsRefitResult {
	x, y, labeled := streamFixture(p.n, 10, 4099)
	bw := streamBandwidth(p.n)
	k := int(float64(len(labeled)) * p.delta)
	if k < 1 {
		k = 1
	}
	ing := newStreamIngestor(x, y, labeled, bw)
	y2 := append([]float64{}, y...)
	startRefresh := time.Now()
	for i := 0; i < k; i++ {
		li := (i * len(labeled)) / k
		y2[li] = y[li] + 0.5
		// Base ids are the point indices, so labeled[li] is the id.
		if err := ing.Label(labeled[li], y2[li]); err != nil {
			log.Fatalf("stream: relabel: %v", err)
		}
	}
	out, err := ing.Refresh()
	if err != nil {
		log.Fatalf("stream: refresh: %v", err)
	}
	refreshNs := time.Since(startRefresh).Nanoseconds()

	refitNs, matched := refitAndCheck(ing, x, y2, labeled, bw, p.repeats)
	r := refreshVsRefitResult{
		Scenario: "relabel", BaseN: p.n, DeltaPoints: k, DeltaFraction: p.delta,
		RefreshNs: refreshNs, FullRefitNs: refitNs,
		RefreshKind: out.Kind, BitwiseMatched: matched,
	}
	if refreshNs > 0 {
		r.Speedup = float64(refitNs) / float64(refreshNs)
	}
	return r
}

// runInsertCase appends delta×n new labeled points through the
// incremental path (side-index insert, CSR overlay append, warm-started
// structural refresh) and times it against graphssl.Fit from scratch on
// the identical final point set.
func runInsertCase(p streamParams) refreshVsRefitResult {
	x, y, labeled := streamFixture(p.n, 10, 4099)
	bw := streamBandwidth(p.n)
	k := int(float64(p.n) * p.delta)
	if k < 1 {
		k = 1
	}
	rng := randx.New(8191)
	extra := make([][]float64, k)
	extraY := make([]float64, k)
	for i := range extra {
		extra[i] = []float64{rng.Float64(), rng.Float64()}
		extraY[i] = math.Sin(4*extra[i][0]) * math.Cos(3*extra[i][1])
	}

	ing := newStreamIngestor(x, y, labeled, bw)
	startRefresh := time.Now()
	for i := range extra {
		if _, err := ing.InsertLabeled(extra[i], extraY[i]); err != nil {
			log.Fatalf("stream: insert: %v", err)
		}
	}
	out, err := ing.Refresh()
	if err != nil {
		log.Fatalf("stream: refresh: %v", err)
	}
	refreshNs := time.Since(startRefresh).Nanoseconds()

	allX := append(append([][]float64{}, x...), extra...)
	allY := append(append([]float64{}, y...), extraY...)
	allLab := append([]int{}, labeled...)
	for i := range extra {
		allLab = append(allLab, p.n+i)
	}
	refitNs, matched := refitAndCheck(ing, allX, allY, allLab, bw, p.repeats)
	r := refreshVsRefitResult{
		Scenario: "insert", BaseN: p.n, DeltaPoints: k, DeltaFraction: p.delta,
		RefreshNs: refreshNs, FullRefitNs: refitNs,
		RefreshKind: out.Kind, BitwiseMatched: matched,
	}
	if refreshNs > 0 {
		r.Speedup = float64(refitNs) / float64(refreshNs)
	}
	return r
}

// runStreamSuite executes the suite and writes the JSON report.
func runStreamSuite(out string, p streamParams) {
	report := streamReport{
		Benchmark:  "stream-ingest",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Params: map[string]float64{
			"n": float64(p.n), "rate": float64(p.rate), "seconds": float64(p.seconds),
			"batch": float64(p.batch), "delta": p.delta, "repeats": float64(p.repeats),
		},
		Notes: "trickle feeds labeled points in real time at the offered rate " +
			"over a warm base fit; per-point staleness is arrival-to-registry-" +
			"publish, including the incremental refresh and the delta snapshot " +
			"roll-forward, and sustained=true means no batch overran its " +
			"arrival interval (the loop kept up with the offered rate; the " +
			"published rate divides by a span that includes the final batch's " +
			"processing tail, so it reads slightly below the offered rate even " +
			"when sustained). refresh_vs_refit times a <=delta-fraction update " +
			"through the incremental path against graphssl.Fit from scratch on " +
			"the identical final data: the relabel scenario changes existing " +
			"responses (right-hand-side move + warm solve), the insert scenario " +
			"appends new labeled points (side-index insert + overlay append + " +
			"structural warm solve). bitwise_matched asserts both paths " +
			"produced identical bits, so every speedup is exact-for-exact.",
	}

	report.Trickle = runTrickle(p)
	fmt.Printf("trickle  n=%d  %d pts offered @ %.0f/s  sustained %v (late %d)  batches %d (delta %d, full %d)  staleness p50 %.1fms p99 %.1fms max %.1fms\n",
		p.n, report.Trickle.Points, report.Trickle.OfferedRate,
		report.Trickle.Sustained, report.Trickle.LateBatches,
		report.Trickle.Batches, report.Trickle.DeltaRolls, report.Trickle.FullRolls,
		float64(report.Trickle.StalenessP50Ns)/1e6,
		float64(report.Trickle.StalenessP99Ns)/1e6,
		float64(report.Trickle.StalenessMaxNs)/1e6)

	for _, r := range []refreshVsRefitResult{runRelabelCase(p), runInsertCase(p)} {
		report.Refresh = append(report.Refresh, r)
		fmt.Printf("refresh  %-7s n=%d  delta %d pts (%.2g%%)  refresh %.1fms (%s)  refit %.1fms  speedup %.1fx  bitwise %v\n",
			r.Scenario, r.BaseN, r.DeltaPoints, 100*r.DeltaFraction,
			float64(r.RefreshNs)/1e6, r.RefreshKind,
			float64(r.FullRefitNs)/1e6, r.Speedup, r.BitwiseMatched)
	}

	writeReportAny(out, report)
}
