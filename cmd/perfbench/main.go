// Command perfbench measures the parallel compute layer against the
// pre-parallel serial baselines and records the results as JSON under
// results/, giving future PRs a perf trajectory to compare against.
//
// The baselines are faithful re-implementations of the code the parallel
// layer replaced: the straight-line O(n²d) distance loop, and the k-NN
// builder that full-sorted every row and deduplicated edges through a
// map[edge]bool into a COO triplet list.
//
// Usage:
//
//	go run ./cmd/perfbench -out results/BENCH_parallel.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/randx"
	"repro/internal/sparse"
	"repro/internal/synth"
)

// Measurement is one timed configuration.
type Measurement struct {
	// Name identifies the hot path.
	Name string `json:"name"`
	// BaselineNs is the serial pre-parallel implementation's wall time.
	BaselineNs int64 `json:"baseline_ns"`
	// WorkersNs maps worker count to the new implementation's wall time.
	WorkersNs map[string]int64 `json:"workers_ns"`
	// SpeedupAt4 is BaselineNs / WorkersNs["4"].
	SpeedupAt4 float64 `json:"speedup_at_4_workers_vs_baseline"`
	// BaselineAllocBytes / IndexedAllocBytes record the cumulative heap
	// allocation of one serial baseline run vs one serial indexed run
	// (spatial suite only; zero entries are omitted).
	BaselineAllocBytes uint64 `json:"baseline_alloc_bytes,omitempty"`
	IndexedAllocBytes  uint64 `json:"indexed_alloc_bytes,omitempty"`
}

// Report is the JSON document written to -out.
type Report struct {
	Benchmark  string         `json:"benchmark"`
	Generated  string         `json:"generated"`
	GoVersion  string         `json:"go_version"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	NumCPU     int            `json:"num_cpu"`
	Params     map[string]int `json:"params"`
	Repeats    int            `json:"repeats"`
	Results    []Measurement  `json:"results"`
	Notes      string         `json:"notes"`
}

// timeIt returns the minimum wall time of fn over `repeats` runs.
func timeIt(repeats int, fn func()) int64 {
	best := int64(1<<63 - 1)
	for r := 0; r < repeats; r++ {
		start := time.Now()
		fn()
		if el := time.Since(start).Nanoseconds(); el < best {
			best = el
		}
	}
	return best
}

// baselinePairwiseDist2 is the pre-parallel distance pass: single core,
// single-accumulator inner loop.
func baselinePairwiseDist2(x [][]float64) []float64 {
	n := len(x)
	out := make([]float64, n*n)
	for i := 0; i < n; i++ {
		xi := x[i]
		for j := i + 1; j < n; j++ {
			xj := x[j]
			var s float64
			for k, v := range xi {
				d := v - xj[k]
				s += d * d
			}
			out[i*n+j] = s
			out[j*n+i] = s
		}
	}
	return out
}

// baselineKNNBuild is the pre-parallel k-NN construction: full sort of
// every row, map[edge]bool dedup, COO triplets compiled to CSR.
func baselineKNNBuild(n int, d2 []float64, knn int, kern *kernel.K) *sparse.CSR {
	type edge struct{ i, j int }
	selected := make(map[edge]bool, n*knn)
	idx := make([]int, n-1)
	for i := 0; i < n; i++ {
		idx = idx[:0]
		for j := 0; j < n; j++ {
			if j != i {
				idx = append(idx, j)
			}
		}
		row := d2[i*n : (i+1)*n]
		sort.Slice(idx, func(a, b int) bool { return row[idx[a]] < row[idx[b]] })
		k := knn
		if k > len(idx) {
			k = len(idx)
		}
		for _, j := range idx[:k] {
			lo, hi := i, j
			if lo > hi {
				lo, hi = hi, lo
			}
			selected[edge{lo, hi}] = true
		}
	}
	coo := sparse.NewCOO(n, n)
	for e := range selected {
		w := kern.WeightDist2(d2[e.i*n+e.j])
		if w > 0 {
			if err := coo.AddSym(e.i, e.j, w); err != nil {
				panic(err)
			}
		}
	}
	return coo.ToCSR()
}

func workerCounts() []int {
	counts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 2 && p != 4 {
		counts = append(counts, p)
	}
	return counts
}

func main() {
	var (
		suite   = flag.String("suite", "parallel", "benchmark suite to run; -list prints the registry")
		list    = flag.Bool("list", false, "list the registered suites with their default output paths and exit")
		out     = flag.String("out", "", "output JSON path (default results/BENCH_<suite>.json)")
		n       = flag.Int("n", 2000, "point count for the distance/graph benches (parallel suite)")
		d       = flag.Int("d", 50, "point dimension (parallel suite)")
		knn     = flag.Int("k", 10, "neighbour count for the k-NN benches (parallel/spatial suites)")
		cgN     = flag.Int("cgn", 300, "labeled count for the CG/mulvec bench")
		cgM     = flag.Int("cgm", 1200, "unlabeled count for the CG/mulvec bench")
		sn      = flag.Int("sn", 20000, "point count for the spatial suite")
		sd      = flag.Int("sd", 3, "point dimension for the spatial suite")
		sradius = flag.Float64("sradius", 0.05, "ε-radius bandwidth for the spatial radius bench")
		snwLab  = flag.Int("snwlab", 2000, "labeled count for the spatial NW bench")
		snwH    = flag.Float64("snwh", 0.3, "bandwidth for the spatial NW bench")
		svAnch  = flag.Int("sva", 24000, "anchor count for the serve suite")
		svD     = flag.Int("svd", 64, "point dimension for the serve suite")
		svReqs  = flag.Int("svreqs", 256, "timed requests per serve configuration")
		cn      = flag.Int("cn", 1_000_000, "graph node count for the cluster suite")
		cLab    = flag.Int("clab", 50, "one labeled anchor per this many nodes (cluster suite)")
		cWork   = flag.Int("cworkers", 4, "local TCP workers for the cluster suite")
		cReps   = flag.Int("creplicas", 3, "serve replicas behind the router (cluster suite)")
		ln      = flag.Int("ln", 5_000_000, "point count of the approx-only large-n fit (largen suite)")
		lcmp    = flag.Int("lcmp", 2_000_000, "largest point count fitted both exactly and approximately (largen suite)")
		llab    = flag.Int("llab", 2000, "one labeled point per this many nodes (largen suite; sparse labels are the paper's asymptotic regime and the exact solver's hard case)")
		lknn    = flag.Int("lknn", 12, "k-NN sparsification of the largen graphs")
		ltol    = flag.Float64("ltol", 0, "WithApprox acceptance tolerance for the largen suite (0 = accept any certified bound)")
		stn     = flag.Int("stn", 20000, "base point count for the stream suite")
		strate  = flag.Int("strate", 1000, "arrival rate in points/sec for the stream trickle")
		stsecs  = flag.Int("stsecs", 3, "trickle duration in seconds (stream suite)")
		stbatch = flag.Int("stbatch", 512, "points folded per refresh cycle (stream suite)")
		stdelta = flag.Float64("stdelta", 0.01, "labeled-delta fraction for the stream refresh-vs-refit case")
		repeats = flag.Int("repeats", 3, "timed repetitions per configuration (min is reported)")
	)
	flag.Parse()

	if *list {
		listSuites(os.Stdout)
		return
	}
	def := findSuite(*suite)
	if def == nil {
		log.Fatalf("unknown -suite %q (registered: %v; run -list for details)", *suite, suiteNames())
	}
	if *out == "" {
		*out = def.DefaultOut
	}
	def.Run(*out, suiteArgs{
		n: *n, d: *d, knn: *knn, cgN: *cgN, cgM: *cgM,
		sn: *sn, sd: *sd, sradius: *sradius, snwH: *snwH, snwLab: *snwLab,
		svAnch: *svAnch, svD: *svD, svReqs: *svReqs,
		cn: *cn, cLab: *cLab, cWork: *cWork, cReps: *cReps,
		ln: *ln, lcmp: *lcmp, llab: *llab, lknn: *lknn, ltol: *ltol,
		stn: *stn, strate: *strate, stsecs: *stsecs, stbatch: *stbatch, stdelta: *stdelta,
		repeats: *repeats,
	})
}

// runSpatialCmd adapts the spatial suite to the registry's runner shape.
func runSpatialCmd(out string, a suiteArgs) {
	p := spatialParams{
		n: a.sn, d: a.sd, knn: a.knn,
		radius: a.sradius, nwLab: a.snwLab, nwH: a.snwH,
		repeats: a.repeats,
	}
	report := spatialReport(p)
	record := func(m Measurement) {
		report.Results = append(report.Results, m)
		fmt.Printf("%-16s baseline %12d ns", m.Name, m.BaselineNs)
		for _, w := range workerCounts() {
			fmt.Printf("  w%d %12d ns", w, m.WorkersNs[fmt.Sprint(w)])
		}
		fmt.Printf("  speedup@4 %.2fx  alloc %d -> %d B\n",
			m.SpeedupAt4, m.BaselineAllocBytes, m.IndexedAllocBytes)
	}
	runSpatialSuite(p, record)
	writeReport(out, report)
}

// runParallelSuite is the original perfbench body: the parallel compute
// layer against the pre-parallel serial baselines.
func runParallelSuite(out string, a suiteArgs) {
	n, d, knn, cgN, cgM, repeats := a.n, a.d, a.knn, a.cgN, a.cgM, a.repeats

	rng := randx.New(71)
	x := make([][]float64, n)
	for i := range x {
		x[i] = make([]float64, d)
		for j := range x[i] {
			x[i][j] = rng.Norm()
		}
	}
	kern := kernel.MustNew(kernel.Gaussian, 1.0)

	report := Report{
		Benchmark:  "parallel-layer",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Params:     map[string]int{"n": n, "d": d, "knn": knn, "cg_n": cgN, "cg_m": cgM},
		Repeats:    repeats,
		Notes: "baseline_ns re-times the pre-parallel serial implementations " +
			"(single-accumulator distance loop; full-sort + map-dedup kNN; serial SpMV). " +
			"workers_ns times the parallel layer at fixed worker counts. On a " +
			"GOMAXPROCS=1 host the worker axis is flat and any speedup is " +
			"algorithmic (loop unrolling, quickselect, direct CSR assembly); " +
			"on multicore hosts the worker axis multiplies on top of it.",
	}

	record := func(m Measurement) {
		report.Results = append(report.Results, m)
		fmt.Printf("%-16s baseline %12d ns", m.Name, m.BaselineNs)
		for _, w := range workerCounts() {
			fmt.Printf("  w%d %12d ns", w, m.WorkersNs[fmt.Sprint(w)])
		}
		fmt.Printf("  speedup@4 %.2fx\n", m.SpeedupAt4)
	}

	// --- Pairwise distances -------------------------------------------------
	var sink []float64
	m := Measurement{Name: "pairwise_dist2", WorkersNs: map[string]int64{}}
	m.BaselineNs = timeIt(repeats, func() { sink = baselinePairwiseDist2(x) })
	for _, w := range workerCounts() {
		w := w
		m.WorkersNs[fmt.Sprint(w)] = timeIt(repeats, func() {
			var err error
			sink, err = kernel.PairwiseDist2Workers(x, w)
			if err != nil {
				log.Fatal(err)
			}
		})
	}
	m.SpeedupAt4 = float64(m.BaselineNs) / float64(m.WorkersNs["4"])
	record(m)
	d2 := sink

	// --- kNN graph construction --------------------------------------------
	m = Measurement{Name: "knn_build", WorkersNs: map[string]int64{}}
	var csrSink *sparse.CSR
	m.BaselineNs = timeIt(repeats, func() { csrSink = baselineKNNBuild(n, d2, knn, kern) })
	for _, w := range workerCounts() {
		builder, err := graph.NewBuilder(kern, graph.WithKNN(knn), graph.WithWorkers(w))
		if err != nil {
			log.Fatal(err)
		}
		m.WorkersNs[fmt.Sprint(w)] = timeIt(repeats, func() {
			g, err := builder.BuildFromDist2(n, d2)
			if err != nil {
				log.Fatal(err)
			}
			csrSink = g.Weights()
		})
	}
	m.SpeedupAt4 = float64(m.BaselineNs) / float64(m.WorkersNs["4"])
	record(m)
	_ = csrSink

	// --- SpMV / CG ----------------------------------------------------------
	ds, err := synth.Generate(randx.New(73), synth.Model1, cgN, cgM)
	if err != nil {
		log.Fatal(err)
	}
	h, err := kernel.PaperBandwidth(cgN, synth.Dim)
	if err != nil {
		log.Fatal(err)
	}
	builder, err := graph.NewBuilder(kernel.MustNew(kernel.Gaussian, h), graph.WithKNN(12))
	if err != nil {
		log.Fatal(err)
	}
	g, err := builder.Build(ds.X)
	if err != nil {
		log.Fatal(err)
	}
	p, err := core.NewProblemLabeledFirst(g, ds.YLabeled())
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.BuildPropagationSystem(p)
	if err != nil {
		log.Fatal(err)
	}
	xv := make([]float64, sys.M())
	for i := range xv {
		xv[i] = float64(i%7) * 0.25
	}
	dst := make([]float64, sys.M())
	// One SpMV is sub-millisecond; time a fixed batch so the clock resolution
	// does not dominate.
	const spmvBatch = 200
	m = Measurement{Name: "cg_mulvec", WorkersNs: map[string]int64{}}
	m.BaselineNs = timeIt(repeats, func() {
		for r := 0; r < spmvBatch; r++ {
			if err := sys.W.MulVecTo(dst, xv); err != nil {
				log.Fatal(err)
			}
		}
	})
	for _, w := range workerCounts() {
		w := w
		m.WorkersNs[fmt.Sprint(w)] = timeIt(repeats, func() {
			for r := 0; r < spmvBatch; r++ {
				if err := sys.W.MulVecToWorkers(dst, xv, w); err != nil {
					log.Fatal(err)
				}
			}
		})
	}
	m.SpeedupAt4 = float64(m.BaselineNs) / float64(m.WorkersNs["4"])
	record(m)

	writeReport(out, report)
}

// writeReport marshals the report as indented JSON to path.
func writeReport(path string, report Report) {
	writeReportAny(path, report)
}

// writeReportAny marshals any report document as indented JSON to path.
func writeReportAny(path string, report any) {
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}
