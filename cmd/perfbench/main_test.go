package main

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/kernel"
)

// TestBaselinesMatchLibrary keeps the perf comparison honest: the re-timed
// serial baselines must produce the same distances and the same graph as
// the parallel implementations they are compared against.
func TestBaselinesMatchLibrary(t *testing.T) {
	const n, d, k = 60, 7, 5
	rng := rand.New(rand.NewSource(3))
	x := make([][]float64, n)
	for i := range x {
		x[i] = make([]float64, d)
		for j := range x[i] {
			x[i][j] = rng.NormFloat64()
		}
	}

	base := baselinePairwiseDist2(x)
	d2, err := kernel.PairwiseDist2(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		// The baseline accumulates in a different order; allow rounding.
		if diff := math.Abs(base[i] - d2[i]); diff > 1e-12*math.Max(1, d2[i]) {
			t.Fatalf("distance %d: baseline %v vs library %v", i, base[i], d2[i])
		}
	}

	kern := kernel.MustNew(kernel.Gaussian, 1.0)
	bg := baselineKNNBuild(n, d2, k, kern)
	builder, err := graph.NewBuilder(kern, graph.WithKNN(k))
	if err != nil {
		t.Fatal(err)
	}
	g, err := builder.BuildFromDist2(n, d2)
	if err != nil {
		t.Fatal(err)
	}
	w := g.Weights()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if bg.At(i, j) != w.At(i, j) {
				t.Fatalf("graph weight (%d,%d): baseline %v vs library %v", i, j, bg.At(i, j), w.At(i, j))
			}
		}
	}
}
