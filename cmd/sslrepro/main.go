// Command sslrepro regenerates the experiments of "On Consistency of
// Graph-based Semi-supervised Learning" (Du, Zhao, Wang; ICDCS 2019).
//
// Usage:
//
//	sslrepro -exp fig1 [-reps 200] [-seed 1] [-format md|csv] [-out file]
//	sslrepro -exp fig5 [-perclass 250] [-reps 5] [-mcc]
//	sslrepro -exp toy
//	sslrepro -exp mfast            # extension: m growing faster than n
//	sslrepro -exp all
//
// The paper averages 1000 replications per synthetic grid point and 100
// split repetitions for COIL; the defaults here are scaled down so a laptop
// run finishes in minutes. Raise -reps/-perclass to approach the paper's
// precision.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/randx"
	"repro/internal/synth"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sslrepro:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sslrepro", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "all", "experiment: fig1 fig2 fig3 fig4 fig5 toy mfast baselines regression kernels coil6 diag significance all")
		reps     = fs.Int("reps", 0, "replications per grid point (0 = per-experiment default)")
		seed     = fs.Int64("seed", 1, "root random seed")
		perClass = fs.Int("perclass", 100, "COIL-like images kept per class (paper: 250)")
		format   = fs.String("format", "md", "output format: md or csv")
		outPath  = fs.String("out", "", "write to file instead of stdout")
		mcc      = fs.Bool("mcc", false, "also report MCC for fig5")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "md" && *format != "csv" {
		return fmt.Errorf("unknown format %q", *format)
	}

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "sslrepro: close output:", cerr)
			}
		}()
		out = f
	}

	runOne := func(name string) error {
		switch name {
		case "fig1", "fig2", "fig3", "fig4":
			r := *reps
			if r == 0 {
				r = 200
			}
			var cfg experiments.SyntheticConfig
			switch name {
			case "fig1":
				cfg = experiments.Fig1Config(r, *seed)
			case "fig2":
				cfg = experiments.Fig2Config(r, *seed)
			case "fig3":
				cfg = experiments.Fig3Config(r, *seed)
			default:
				cfg = experiments.Fig4Config(r, *seed)
			}
			res, err := experiments.RunSynthetic(name, cfg)
			if err != nil {
				return err
			}
			return writeSweep(res, *format, out)
		case "fig5":
			r := *reps
			if r == 0 {
				r = 3
			}
			cfg := experiments.Fig5DefaultCfg(*perClass, r, *seed)
			cfg.MCC = *mcc
			res, err := experiments.RunFig5(cfg)
			if err != nil {
				return err
			}
			if *format == "csv" {
				return res.WriteCSV(out)
			}
			return res.WriteMarkdown(out)
		case "toy":
			return runToy(out, *seed)
		case "mfast":
			r := *reps
			if r == 0 {
				r = 100
			}
			cfg := experiments.SyntheticConfig{
				Model:     synth.Model1,
				SweepM:    []int{50, 100, 200, 400, 800, 1600},
				N:         50,
				Lambdas:   []float64{0, 0.01, 0.1, 5},
				IncludeNW: true,
				Reps:      r,
				Seed:      *seed,
			}
			res, err := experiments.RunSynthetic("mfast (m ≫ n extension)", cfg)
			if err != nil {
				return err
			}
			return writeSweep(res, *format, out)
		case "baselines":
			r := *reps
			if r == 0 {
				r = 50
			}
			rows, err := experiments.RunBaselines(experiments.BaselinesDefaultConfig(r, *seed))
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "### baselines — mean RMSE on Model 1 (n=200, m=50, %d reps)\n\n", r)
			fmt.Fprintln(out, "| method | RMSE | stderr |")
			fmt.Fprintln(out, "|---|---|---|")
			for _, row := range rows {
				fmt.Fprintf(out, "| %s | %.4f | %.4f |\n", row.Method, row.Mean, row.StdErr)
			}
			return nil
		case "regression":
			r := *reps
			if r == 0 {
				r = 50
			}
			res, err := experiments.RunRegression(experiments.RegressionDefaultConfig(r, *seed))
			if err != nil {
				return err
			}
			return writeSweep(res, *format, out)
		case "kernels":
			r := *reps
			if r == 0 {
				r = 50
			}
			res, err := experiments.RunKernels(experiments.KernelsDefaultConfig(r, *seed))
			if err != nil {
				return err
			}
			return writeSweep(res, *format, out)
		case "significance":
			r := *reps
			if r == 0 {
				r = 100
			}
			rows, err := experiments.RunSignificance(experiments.SignificanceDefaultConfig(r, *seed))
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "### significance — paired hard-vs-soft RMSE, Model 1 (n=200, m=50, %d paired reps)\n\n", r)
			fmt.Fprintln(out, "| λ | RMSE hard | RMSE soft | paired test (hard−soft) |")
			fmt.Fprintln(out, "|---|---|---|---|")
			for _, row := range rows {
				fmt.Fprintf(out, "| %g | %.4f | %.4f | %s |\n",
					row.Lambda, row.HardMean, row.SoftMean, row.Test)
			}
			return nil
		case "diag":
			r := *reps
			if r == 0 {
				r = 25
			}
			rows, err := experiments.RunDiag(experiments.DiagDefaultConfig(r, *seed))
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "### diag — Theorem II.1 proof quantities (avg over %d reps)\n\n", r)
			fmt.Fprintln(out, "| n | unlabeled-mass ratio | hard–NW gap | contraction ρ |")
			fmt.Fprintln(out, "|---|---|---|---|")
			for _, row := range rows {
				fmt.Fprintf(out, "| %d | %.4f | %.4f | %.4f |\n",
					row.N, row.MassRatio, row.HardNWGap, row.ContractionRate)
			}
			return nil
		case "coil6":
			r := *reps
			if r == 0 {
				r = 2
			}
			pts, err := experiments.RunCOIL6(experiments.COIL6DefaultConfig(*perClass, r, *seed))
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "### coil6 — 6-class accuracy, 20%% labeled (avg over %d split-experiments)\n\n", pts[0].Reps)
			fmt.Fprintln(out, "| λ | accuracy | stderr |")
			fmt.Fprintln(out, "|---|---|---|")
			for _, p := range pts {
				fmt.Fprintf(out, "| %g | %.4f | %.4f |\n", p.X, p.Mean, p.StdErr)
			}
			return nil
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	if *exp == "all" {
		for _, name := range []string{"fig1", "fig2", "fig3", "fig4", "fig5", "toy"} {
			if err := runOne(name); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			if _, err := fmt.Fprintln(out); err != nil {
				return err
			}
		}
		return nil
	}
	return runOne(*exp)
}

func writeSweep(res *experiments.SweepResult, format string, out io.Writer) error {
	if format == "csv" {
		return res.WriteCSV(out)
	}
	return res.WriteMarkdown(out)
}

// runToy demonstrates the paper's Section III toy example numerically: with
// identical inputs the hard criterion predicts exactly the labeled mean on
// unlabeled points.
func runToy(out io.Writer, seed int64) error {
	const n, m = 20, 10
	rng := randx.New(seed)
	ds, err := synth.GenerateToy(rng, n, m, 0.7)
	if err != nil {
		return err
	}
	k, err := kernel.New(kernel.Gaussian, 1)
	if err != nil {
		return err
	}
	builder, err := graph.NewBuilder(k)
	if err != nil {
		return err
	}
	g, err := builder.Build(ds.X)
	if err != nil {
		return err
	}
	p, err := core.NewProblemLabeledFirst(g, ds.YLabeled())
	if err != nil {
		return err
	}
	sol, err := core.SolveHard(p)
	if err != nil {
		return err
	}
	var mean float64
	for _, v := range ds.YLabeled() {
		mean += v
	}
	mean /= n
	var maxDev float64
	for _, v := range sol.FUnlabeled {
		if d := math.Abs(v - mean); d > maxDev {
			maxDev = d
		}
	}
	_, err = fmt.Fprintf(out,
		"### toy (Section III)\n\nn=%d m=%d identical inputs; labeled mean ȳ = %.4f\n"+
			"max |f̂_unlabeled − ȳ| = %.2e  (theory: exactly 0)\n",
		n, m, mean, maxDev)
	return err
}
