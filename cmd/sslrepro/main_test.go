package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunToy(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "toy"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "toy (Section III)") {
		t.Fatalf("output: %s", sb.String())
	}
	// The toy deviation is numerically zero.
	if !strings.Contains(sb.String(), "e-1") && !strings.Contains(sb.String(), "0.00e+00") {
		t.Fatalf("toy deviation not tiny: %s", sb.String())
	}
}

func TestRunFig1Tiny(t *testing.T) {
	var sb strings.Builder
	// Override reps to keep the test fast; the grid itself is the paper's.
	if err := run([]string{"-exp", "fig1", "-reps", "1", "-seed", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "fig1") || !strings.Contains(out, "| 1500 |") {
		t.Fatalf("fig1 output missing grid: %s", out)
	}
}

func TestRunFig5TinyCSV(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-exp", "fig5", "-reps", "1", "-perclass", "5", "-format", "csv", "-mcc"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "lambda,") {
		t.Fatalf("fig5 csv: %s", sb.String())
	}
}

func TestRunMfastTiny(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "mfast", "-reps", "1"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "NW") {
		t.Fatalf("mfast must include the NW baseline: %s", sb.String())
	}
}

func TestRunBaselinesTiny(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "baselines", "-reps", "1"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Nadaraya–Watson") || !strings.Contains(out, "label spreading") {
		t.Fatalf("baselines table incomplete: %s", out)
	}
}

func TestRunRegressionTiny(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "regression", "-reps", "1"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "regression") {
		t.Fatalf("regression output: %s", sb.String())
	}
}

func TestRunDiagTiny(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "diag", "-reps", "1"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "contraction") {
		t.Fatalf("diag output: %s", sb.String())
	}
}

func TestRunKernelsTiny(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "kernels", "-reps", "1"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "gaussian") || !strings.Contains(sb.String(), "epanechnikov") {
		t.Fatalf("kernels output: %s", sb.String())
	}
}

func TestRunCOIL6Tiny(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "coil6", "-reps", "1", "-perclass", "10"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "6-class accuracy") {
		t.Fatalf("coil6 output: %s", sb.String())
	}
}

func TestRunWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.md")
	var sb strings.Builder
	if err := run([]string{"-exp", "toy", "-out", path}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "toy") {
		t.Fatal("file output missing")
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "nope"}, &sb); err == nil {
		t.Fatal("unknown experiment must error")
	}
	if err := run([]string{"-format", "xml"}, &sb); err == nil {
		t.Fatal("unknown format must error")
	}
	if err := run([]string{"-badflag"}, &sb); err == nil {
		t.Fatal("bad flag must error")
	}
}
