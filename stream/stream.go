// Package stream is the continuous-operation subsystem: it keeps a
// hard-criterion fit alive under a trickle of point inserts, deletes, and
// label updates without refitting from scratch on every event.
//
// Three layers cooperate:
//
//   - internal/spatial.SideIndex gives incremental fixed-radius candidate
//     queries (immutable base index + bounded side buffer, amortized
//     rebuild);
//   - internal/sparse.Overlay accumulates appended graph rows and a dead
//     mask over the immutable weight matrix, merging to a compact CSR at
//     each structural refresh;
//   - internal/core.Refresher maintains the solution through the
//     escalation ladder: warm right-hand-side restarts for label value
//     changes, the Woodbury principal-submatrix identity for small
//     newly-labeled batches, warm-started PCG for everything larger, and
//     an exact from-scratch refit as the terminal rung.
//
// The determinism contract carries over from the batch pipeline: after
// Compact, the state is bitwise-identical to graphssl.Fit on the same
// live points, for every worker count. Between compactions the solution
// tracks the exact one within the configured refresh tolerance.
//
// Streaming maintenance needs a fixed, compact-support kernel (Gaussian
// would connect every pair, and a data-dependent bandwidth would drift as
// points arrive), the hard criterion (λ=0), and radius graphs (kNN
// symmetrization has no cheap incremental form).
package stream

import (
	"fmt"
	"math"
	"sort"
	"time"

	graphssl "repro"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/sparse"
	"repro/internal/spatial"
)

// Config parameterizes an Ingestor.
type Config struct {
	// Kernel must have compact support (Uniform, Epanechnikov,
	// Triangular, Tricube); Bandwidth is the fixed kernel bandwidth
	// (there is no data-dependent rule in streaming mode).
	Kernel    graphssl.Kernel
	Bandwidth float64
	// Workers bounds shared-memory parallelism. Results are
	// bitwise-identical across worker counts.
	Workers int
	// Tol is the inner iterative-solver tolerance (default 1e-10, the
	// batch pipeline's default).
	Tol float64
	// MaxIter caps solver iterations (0 = solver default).
	MaxIter int
	// RefreshTol is the acceptance threshold on the verified relative
	// residual of a refreshed solution; a miss escalates one rung, and
	// ultimately to an exact refit (default 1e-8).
	RefreshTol float64
	// RebuildFrac is the side-buffer fraction triggering an amortized
	// spatial-index rebuild (default spatial.DefaultRebuildFrac).
	RebuildFrac float64
	// CompactFrac is the dead-id fraction (dead / live) above which a
	// refresh escalates to a full compaction (default 0.5).
	CompactFrac float64
	// WoodburyMaxK is the largest newly-labeled batch refreshed via the
	// low-rank identity instead of a warm full solve (default 4).
	WoodburyMaxK int
}

func (c *Config) fill() error {
	if !c.Kernel.CompactSupport() {
		return fmt.Errorf("stream: kernel %v has unbounded support; streaming needs a compact kernel: %w", c.Kernel, graphssl.ErrParam)
	}
	if !(c.Bandwidth > 0) || math.IsInf(c.Bandwidth, 0) {
		return fmt.Errorf("stream: bandwidth %v (streaming needs a fixed positive bandwidth): %w", c.Bandwidth, graphssl.ErrParam)
	}
	if c.Tol <= 0 {
		c.Tol = 1e-10
	}
	if c.RefreshTol <= 0 {
		c.RefreshTol = 1e-8
	}
	if c.RebuildFrac <= 0 {
		c.RebuildFrac = spatial.DefaultRebuildFrac
	}
	if c.CompactFrac <= 0 {
		c.CompactFrac = 0.5
	}
	if c.WoodburyMaxK <= 0 {
		c.WoodburyMaxK = 4
	}
	return nil
}

// RefreshOutcome documents one Refresh (or the refit it escalated to).
type RefreshOutcome struct {
	// Kind is the ladder rung that produced the accepted solution:
	// "none", "label-values", "woodbury", "warm-pcg", or "full-refit".
	Kind string
	// Applied work since the previous refresh.
	Inserts, Deletes, NewLabels, ValueChanges int
	// Solves and Iterations report the iterative work spent.
	Solves, Iterations int
	// Residual is the verified relative residual of the accepted
	// solution (0 for an exact refit).
	Residual float64
	// Escalated reports that a cheaper rung was abandoned; Reason says
	// why.
	Escalated bool
	Reason    string
	// Remap is non-nil when the refresh escalated to a compaction, which
	// renumbers ids: Remap[oldID] = new id, or -1 for dead ids. Callers
	// holding ids must apply it (see also Compact).
	Remap []int
	// Duration is the refresh wall time.
	Duration time.Duration
}

// Stats is a point-in-time summary of an Ingestor.
type Stats struct {
	Live, Dead, Labeled                          int
	PendingInserts, PendingDeletes               int
	PendingNewLabels, PendingValueChanges        int
	Refreshes, LabelRefreshes, WoodburyRefreshes int
	WarmRefreshes, Compactions, Escalations      int
	SideRebuilds                                 int
	Last                                         RefreshOutcome
}

// Ingestor is a live hard-criterion fit under streaming edits. Insert,
// Delete, and Label record edits cheaply; Refresh folds the pending
// edits into the solution through the cheapest safe rung of the ladder;
// Compact rebuilds everything from scratch (bitwise-equal to
// graphssl.Fit) and renumbers ids densely.
//
// Point ids are dense and stable between compactions: Insert returns the
// next id, Delete retires one, Compact renumbers live ids in order and
// returns the mapping. An Ingestor is not safe for concurrent use.
type Ingestor struct {
	cfg  Config
	kern *kernel.K
	dim  int

	side *spatial.SideIndex // id-indexed, in lockstep with ov
	ov   *sparse.Overlay
	ref  *core.Refresher

	nodes  []int // node → id of the current problem
	nodeOf []int // id → node, -1 when not in the current problem

	labelOf  []bool    // id → currently labeled (user intent)
	yOf      []float64 // id → response (meaningful when labelOf)
	valDirty []bool    // id → pending value change on a problem-labeled id

	labeledSeq  []int // ids in labeling order (may contain dead/unlabeled)
	newLabels   []int // ids labeled since the last refresh, not yet in the problem
	pendingVals []int // problem-labeled ids with changed values

	insertsSince, deletesSince int
	labeledCount               int

	// Publish cursor for delta snapshots.
	pubCount        int // labeledSeq prefix already published
	maxPubID        int // largest published labeled id
	relabelSincePub bool
	labDelSincePub  bool
	compactSincePub bool

	stats Stats

	candBuf  []int32
	colsBuf  []int
	valsBuf  []float64
	nodesBuf []int
	lvalsBuf []float64
}

// New fits the initial point set exactly (bitwise-equal to graphssl.Fit
// with the same kernel, bandwidth, and workers) and prepares the
// streaming machinery. x, y, labeled follow the Fit convention: labeled
// holds point indices, y aligns with labeled. The point slices are
// retained by reference.
func New(x [][]float64, y []float64, labeled []int, cfg Config) (*Ingestor, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	k, err := kernel.New(cfg.Kernel, cfg.Bandwidth)
	if err != nil {
		return nil, fmt.Errorf("stream: kernel: %w: %v", graphssl.ErrParam, err)
	}
	if len(x) == 0 {
		return nil, fmt.Errorf("stream: no input points: %w", graphssl.ErrParam)
	}
	in := &Ingestor{cfg: cfg, kern: k, dim: len(x[0]), maxPubID: -1}

	p, g, sol, err := in.fullFit(x, labeled, y)
	if err != nil {
		return nil, err
	}
	side, err := spatial.NewSideIndex(x, sideKind(in.dim, cfg.Bandwidth), cfg.Bandwidth, cfg.RebuildFrac, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("stream: side index: %w", err)
	}
	ov, err := sparse.NewOverlay(g.Weights())
	if err != nil {
		return nil, fmt.Errorf("stream: overlay: %w", err)
	}
	ref, err := core.NewRefresher(p, sol.F, cfg.Tol, cfg.RefreshTol, cfg.MaxIter, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("stream: refresher: %w", err)
	}
	in.side, in.ov, in.ref = side, ov, ref

	n := len(x)
	in.nodes = identity(n)
	in.nodeOf = identity(n)
	in.labelOf = make([]bool, n)
	in.yOf = make([]float64, n)
	in.valDirty = make([]bool, n)
	in.labeledSeq = append([]int(nil), labeled...)
	for i, id := range labeled {
		in.labelOf[id] = true
		in.yOf[id] = y[i]
		if id > in.maxPubID {
			in.maxPubID = id
		}
	}
	in.labeledCount = len(labeled)
	// The initial labels belong to the initial full snapshot, not a delta:
	// the publish cursor starts past them.
	in.pubCount = len(in.labeledSeq)
	return in, nil
}

// sideKind mirrors the graph builder's index auto-resolution: cell-list
// for low dimensions when the cell size is representable, KD-tree
// otherwise (exact in any dimension).
func sideKind(dim int, radius float64) spatial.SideKind {
	cell := radius * (1 + 1e-6)
	if dim <= 6 && cell >= spatial.MinCell && cell <= spatial.MaxCell {
		return spatial.SideGrid
	}
	return spatial.SideKDTree
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// fullFit runs the exact batch pipeline over the given points: the same
// builder, problem, and solver invocation graphssl.Fit performs for a
// fixed-bandwidth compact-kernel fit, so the result is bitwise-identical
// to Fit on the same inputs.
func (in *Ingestor) fullFit(x [][]float64, labeled []int, y []float64) (*core.Problem, *graph.Graph, *core.Solution, error) {
	b, err := graph.NewBuilder(in.kern, graph.WithWorkers(in.cfg.Workers))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("stream: graph builder: %w: %v", graphssl.ErrParam, err)
	}
	g, err := b.Build(x)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("stream: graph: %w: %v", graphssl.ErrParam, err)
	}
	p, err := core.NewProblem(g, labeled, y)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("stream: %w: %v", graphssl.ErrParam, err)
	}
	sol, err := core.SolveHard(p,
		core.WithMethod(core.MethodAuto),
		core.WithTolerance(in.cfg.Tol),
		core.WithMaxIter(in.cfg.MaxIter),
		core.WithWorkers(in.cfg.Workers),
		core.WithPreconditioner(core.PrecondAuto),
	)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("stream: solve: %w", err)
	}
	return p, g, sol, nil
}

// Dim returns the input dimension.
func (in *Ingestor) Dim() int { return in.dim }

// Live returns the live point count (including pending inserts).
func (in *Ingestor) Live() int { return in.side.Live() }

// Alive reports whether id is live.
func (in *Ingestor) Alive(id int) bool { return in.side.Alive(id) }

// Insert adds an unlabeled point and returns its id. The point's graph
// adjacency is computed immediately (one candidate query plus one kernel
// evaluation per candidate); the solution is refreshed lazily by the
// next Refresh.
func (in *Ingestor) Insert(p []float64) (int, error) {
	return in.insert(p, false, 0)
}

// InsertLabeled adds a labeled point and returns its id.
func (in *Ingestor) InsertLabeled(p []float64, y float64) (int, error) {
	if math.IsNaN(y) || math.IsInf(y, 0) {
		return 0, fmt.Errorf("stream: non-finite response: %w", graphssl.ErrParam)
	}
	return in.insert(p, true, y)
}

func (in *Ingestor) insert(p []float64, hasLabel bool, y float64) (int, error) {
	if len(p) != in.dim {
		return 0, fmt.Errorf("stream: point dim %d, want %d: %w", len(p), in.dim, graphssl.ErrParam)
	}
	// Candidates against the pre-insert index: the new point never links
	// to itself (the builder drops self-loops by default).
	in.candBuf = in.side.Candidates(p, in.candBuf)
	cand := in.candBuf
	sort.Slice(cand, func(i, j int) bool { return cand[i] < cand[j] })
	in.colsBuf = in.colsBuf[:0]
	in.valsBuf = in.valsBuf[:0]
	for _, c := range cand {
		d2 := kernel.Dist2(p, in.side.Point(int(c)))
		if w := in.kern.WeightDist2(d2); w > 0 {
			in.colsBuf = append(in.colsBuf, int(c))
			in.valsBuf = append(in.valsBuf, w)
		}
	}
	id, err := in.side.Insert(p)
	if err != nil {
		return 0, fmt.Errorf("stream: insert: %w", err)
	}
	ovID, err := in.ov.AppendRow(in.colsBuf, in.valsBuf)
	if err != nil {
		return 0, fmt.Errorf("stream: overlay append: %w", err)
	}
	if ovID != id {
		return 0, fmt.Errorf("stream: id drift: spatial %d vs overlay %d", id, ovID)
	}
	in.labelOf = append(in.labelOf, hasLabel)
	in.yOf = append(in.yOf, y)
	in.valDirty = append(in.valDirty, false)
	if hasLabel {
		in.labeledSeq = append(in.labeledSeq, id)
		in.labeledCount++
	}
	in.insertsSince++
	return id, nil
}

// Delete retires a live point. Structural: folded in by the next
// Refresh.
func (in *Ingestor) Delete(id int) error {
	if err := in.side.Delete(id); err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	if err := in.ov.Delete(id); err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	if in.labelOf[id] {
		in.labelOf[id] = false
		in.labeledCount--
		in.labDelSincePub = true
	}
	in.deletesSince++
	return nil
}

// Label sets (or changes) the response of a live point. Newly labeled
// points take the Woodbury or warm-PCG rung at the next Refresh; value
// changes on already-labeled points take the cheapest rung (a warm
// right-hand-side restart) and are allocation-free once buffers are
// warm.
func (in *Ingestor) Label(id int, y float64) error {
	if math.IsNaN(y) || math.IsInf(y, 0) {
		return fmt.Errorf("stream: non-finite response: %w", graphssl.ErrParam)
	}
	if !in.side.Alive(id) {
		return fmt.Errorf("stream: label of dead or unknown id %d: %w", id, graphssl.ErrParam)
	}
	if in.labelOf[id] {
		// Value change on an existing label.
		if in.yOf[id] == y {
			return nil
		}
		in.yOf[id] = y
		in.relabelSincePub = true
		if in.problemLabeled(id) && !in.valDirty[id] {
			in.valDirty[id] = true
			in.pendingVals = append(in.pendingVals, id)
		}
		return nil
	}
	in.labelOf[id] = true
	in.yOf[id] = y
	in.labeledCount++
	in.labeledSeq = append(in.labeledSeq, id)
	if in.problemNode(id) >= 0 {
		in.newLabels = append(in.newLabels, id)
	}
	// Ids not yet in the problem are fresh inserts; the pending
	// structural refresh picks their labels up from labelOf.
	return nil
}

// problemNode returns the current problem's node index of id, or -1.
func (in *Ingestor) problemNode(id int) int {
	if id < 0 || id >= len(in.nodeOf) {
		return -1
	}
	return in.nodeOf[id]
}

// problemLabeled reports whether id is labeled in the current problem.
func (in *Ingestor) problemLabeled(id int) bool {
	node := in.problemNode(id)
	return node >= 0 && in.ref.Problem().IsLabeled(node)
}

// Refresh folds all pending edits into the solution via the cheapest
// safe rung and returns what it did. With no pending edits it returns
// Kind "none" without touching the solver. On a solver failure or a
// residual miss it escalates to an exact refit (Compact); if even the
// refit fails the error is returned and pending state is retained.
func (in *Ingestor) Refresh() (RefreshOutcome, error) {
	start := time.Now()
	var rr RefreshOutcome
	rr.Inserts, rr.Deletes = in.insertsSince, in.deletesSince
	rr.NewLabels, rr.ValueChanges = len(in.newLabels), len(in.pendingVals)

	structural := in.insertsSince > 0 || in.deletesSince > 0
	var (
		st  core.RefreshStats
		err error
	)
	switch {
	case structural:
		st, err = in.refreshStructural()
	case len(in.newLabels) > 0:
		st, err = in.refreshLabels()
	case len(in.pendingVals) > 0:
		st, err = in.refreshValues()
	default:
		rr.Kind = "none"
		rr.Duration = time.Since(start)
		return rr, nil
	}

	in.stats.Refreshes++
	rr.Solves, rr.Iterations = st.Solves, st.Iterations
	rr.Residual = st.Residual
	rr.Escalated = st.Escalated
	rr.Reason = st.Reason

	if err == nil && st.Residual > in.cfg.RefreshTol {
		err = fmt.Errorf("stream: refreshed residual %.3g above tolerance %.3g", st.Residual, in.cfg.RefreshTol)
	}
	if err == nil && in.deadFraction() > in.cfg.CompactFrac {
		rr.Escalated = true
		rr.Reason = fmt.Sprintf("dead fraction %.2f above compaction threshold", in.deadFraction())
		err = errEscalate
	}
	if err != nil {
		// Terminal rung: exact refit. Compact folds every pending edit
		// from first principles, so it recovers from any refresher state.
		if err != errEscalate {
			rr.Escalated = true
			rr.Reason = err.Error()
		}
		remap, cerr := in.compact()
		if cerr != nil {
			rr.Duration = time.Since(start)
			return rr, cerr
		}
		rr.Remap = remap
		in.stats.Escalations++
		rr.Kind = core.RefreshFull.String()
		rr.Residual = 0
		rr.Duration = time.Since(start)
		in.stats.Last = rr
		return rr, nil
	}

	rr.Kind = st.Kind.String()
	switch st.Kind {
	case core.RefreshLabelValues:
		in.stats.LabelRefreshes++
	case core.RefreshWoodbury:
		in.stats.WoodburyRefreshes++
	case core.RefreshWarmPCG:
		in.stats.WarmRefreshes++
	}
	rr.Duration = time.Since(start)
	in.stats.Last = rr
	return rr, nil
}

// errEscalate is an internal signal: no failure, but policy demands the
// terminal rung.
var errEscalate = fmt.Errorf("stream: escalate to compaction")

// refreshValues is the cheapest rung: only right-hand-side entries move.
// Allocation-free once the reused buffers are warm.
func (in *Ingestor) refreshValues() (core.RefreshStats, error) {
	in.nodesBuf = in.nodesBuf[:0]
	in.lvalsBuf = in.lvalsBuf[:0]
	for _, id := range in.pendingVals {
		in.valDirty[id] = false
		if !in.labelOf[id] || !in.side.Alive(id) {
			continue
		}
		in.nodesBuf = append(in.nodesBuf, in.nodeOf[id])
		in.lvalsBuf = append(in.lvalsBuf, in.yOf[id])
	}
	in.pendingVals = in.pendingVals[:0]
	if len(in.nodesBuf) == 0 {
		return core.RefreshStats{Kind: core.RefreshLabelValues}, nil
	}
	return in.ref.UpdateLabelValues(in.nodesBuf, in.lvalsBuf)
}

// refreshLabels moves newly labeled existing nodes into the labeled set:
// Woodbury for small batches, warm PCG above WoodburyMaxK. Pending value
// changes ride along first (same matrix, one extra cheap solve).
func (in *Ingestor) refreshLabels() (core.RefreshStats, error) {
	var pre core.RefreshStats
	if len(in.pendingVals) > 0 {
		var err error
		pre, err = in.refreshValues()
		if err != nil {
			return pre, err
		}
	}
	in.nodesBuf = in.nodesBuf[:0]
	in.lvalsBuf = in.lvalsBuf[:0]
	for _, id := range in.newLabels {
		if !in.labelOf[id] || !in.side.Alive(id) {
			continue
		}
		in.nodesBuf = append(in.nodesBuf, in.nodeOf[id])
		in.lvalsBuf = append(in.lvalsBuf, in.yOf[id])
	}
	in.newLabels = in.newLabels[:0]
	if len(in.nodesBuf) == 0 {
		return pre, nil
	}
	st, err := in.ref.AddLabels(in.nodesBuf, in.lvalsBuf, in.cfg.WoodburyMaxK)
	st.Solves += pre.Solves
	st.Iterations += pre.Iterations
	return st, err
}

// refreshStructural merges the overlay, rebuilds graph and problem over
// the live ids, and re-solves with a warm start mapped through the
// renumbering. Label and value edits are folded in for free (labelOf and
// yOf are the source of truth for the rebuilt problem).
func (in *Ingestor) refreshStructural() (core.RefreshStats, error) {
	var st core.RefreshStats
	w, ids, err := in.ov.Merge()
	if err != nil {
		return st, err
	}
	g2, err := graph.FromWeights(w)
	if err != nil {
		return st, err
	}
	idToNode := make([]int, in.ov.Rows())
	for i := range idToNode {
		idToNode[i] = -1
	}
	for node, id := range ids {
		idToNode[id] = node
	}
	labeledNodes, yVals := in.labeledNodes(idToNode)
	p2, err := core.NewProblem(g2, labeledNodes, yVals)
	if err != nil {
		return st, err
	}
	oldNode := make([]int, len(ids))
	for node, id := range ids {
		oldNode[node] = in.problemNode(id)
	}
	st, err = in.ref.Rebase(p2, oldNode)
	if err != nil {
		return st, err
	}
	in.nodes, in.nodeOf = ids, idToNode
	in.clearPending()
	return st, nil
}

// labeledNodes maps the live labeled ids (in labeling order) to node
// indices under the given id→node mapping.
func (in *Ingestor) labeledNodes(idToNode []int) ([]int, []float64) {
	nodes := make([]int, 0, in.labeledCount)
	vals := make([]float64, 0, in.labeledCount)
	for _, id := range in.labeledSeq {
		if !in.labelOf[id] || !in.side.Alive(id) {
			continue
		}
		if node := idToNode[id]; node >= 0 {
			nodes = append(nodes, node)
			vals = append(vals, in.yOf[id])
		}
	}
	return nodes, vals
}

func (in *Ingestor) clearPending() {
	for _, id := range in.pendingVals {
		in.valDirty[id] = false
	}
	in.pendingVals = in.pendingVals[:0]
	in.newLabels = in.newLabels[:0]
	in.insertsSince, in.deletesSince = 0, 0
}

func (in *Ingestor) deadFraction() float64 {
	live := in.side.Live()
	if live == 0 {
		return 0
	}
	return float64(in.side.N()-live) / float64(live)
}

// Compact rebuilds everything from scratch over the live points —
// bitwise-identical to graphssl.Fit on the same point set — and
// renumbers ids densely in id order. It folds in all pending edits.
// Returns remap with remap[oldID] = new id, or -1 for dead ids.
func (in *Ingestor) Compact() ([]int, error) {
	return in.compact()
}

func (in *Ingestor) compact() ([]int, error) {
	total := in.side.N()
	remap := make([]int, total)
	xLive := make([][]float64, 0, in.side.Live())
	for id := 0; id < total; id++ {
		if !in.side.Alive(id) {
			remap[id] = -1
			continue
		}
		remap[id] = len(xLive)
		xLive = append(xLive, in.side.Point(id))
	}

	labeledNodes, yVals := in.labeledNodes(remap)
	p, g, sol, err := in.fullFit(xLive, labeledNodes, yVals)
	if err != nil {
		return nil, err
	}
	side, err := spatial.NewSideIndex(xLive, sideKind(in.dim, in.cfg.Bandwidth), in.cfg.Bandwidth, in.cfg.RebuildFrac, in.cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("stream: side index: %w", err)
	}
	ov, err := sparse.NewOverlay(g.Weights())
	if err != nil {
		return nil, fmt.Errorf("stream: overlay: %w", err)
	}
	ref, err := core.NewRefresher(p, sol.F, in.cfg.Tol, in.cfg.RefreshTol, in.cfg.MaxIter, in.cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("stream: refresher: %w", err)
	}

	n := len(xLive)
	labelOf := make([]bool, n)
	yOf := make([]float64, n)
	seq := make([]int, 0, in.labeledCount)
	for _, id := range in.labeledSeq {
		if !in.labelOf[id] || remap[id] < 0 {
			continue
		}
		nid := remap[id]
		labelOf[nid] = true
		yOf[nid] = in.yOf[id]
		seq = append(seq, nid)
	}

	in.side, in.ov, in.ref = side, ov, ref
	in.nodes = identity(n)
	in.nodeOf = identity(n)
	in.labelOf, in.yOf = labelOf, yOf
	in.valDirty = make([]bool, n)
	in.labeledSeq = seq
	in.labeledCount = len(seq)
	in.pendingVals = in.pendingVals[:0]
	in.newLabels = in.newLabels[:0]
	in.insertsSince, in.deletesSince = 0, 0
	in.compactSincePub = true
	in.pubCount = len(seq)
	in.stats.Compactions++
	return remap, nil
}

// Scores returns a copy of the full score vector in node order (live ids
// ascending), as of the last Refresh/Compact.
func (in *Ingestor) Scores() []float64 {
	return append([]float64(nil), in.ref.F()...)
}

// ScoreOf returns the fitted score of a live id as of the last refresh,
// or NaN when the id is not in the refreshed problem yet.
func (in *Ingestor) ScoreOf(id int) float64 {
	node := in.problemNode(id)
	if node < 0 {
		return math.NaN()
	}
	return in.ref.F()[node]
}

// Residual recomputes the true relative residual of the current
// solution against the current system (one SpMV).
func (in *Ingestor) Residual() float64 { return in.ref.Residual() }

// Stats returns a snapshot of the counters.
func (in *Ingestor) Stats() Stats {
	s := in.stats
	s.Live = in.side.Live()
	s.Dead = in.side.N() - s.Live
	s.Labeled = in.labeledCount
	s.PendingInserts, s.PendingDeletes = in.insertsSince, in.deletesSince
	s.PendingNewLabels = len(in.newLabels)
	s.PendingValueChanges = len(in.pendingVals)
	s.SideRebuilds = in.side.Rebuilds()
	return s
}

// Report surfaces the last refresh in the package's diagnostic Report
// shape (allocates; not for the hot path).
func (in *Ingestor) Report() *graphssl.Report {
	last := in.stats.Last
	return &graphssl.Report{
		Bandwidth:  in.cfg.Bandwidth,
		Solver:     graphssl.SolverCG,
		Iterations: last.Iterations,
		Residual:   last.Residual,
		Refresh: &graphssl.RefreshInfo{
			Kind:         last.Kind,
			Solves:       last.Solves,
			Iterations:   last.Iterations,
			Residual:     last.Residual,
			Escalated:    last.Escalated,
			Reason:       last.Reason,
			Inserts:      last.Inserts,
			Deletes:      last.Deletes,
			NewLabels:    last.NewLabels,
			ValueChanges: last.ValueChanges,
		},
	}
}

// Snapshot freezes the last refreshed state into a serving snapshot
// (deep copies, like Result.Snapshot). Pending un-refreshed edits are
// not included: call Refresh first.
func (in *Ingestor) Snapshot() (*graphssl.ModelSnapshot, error) {
	p := in.ref.Problem()
	n := p.Graph().N()
	x := make([][]float64, n)
	for node, id := range in.nodes {
		x[node] = append([]float64(nil), in.side.Point(id)...)
	}
	return &graphssl.ModelSnapshot{
		X:         x,
		Y:         p.Y(),
		Labeled:   p.Labeled(),
		Scores:    append([]float64(nil), in.ref.F()...),
		Kernel:    in.cfg.Kernel,
		Bandwidth: in.cfg.Bandwidth,
	}, nil
}

// TakeDelta returns the labeled points added since the last publish as
// an appendable snapshot delta, advancing the publish cursor. It returns
// ok=false — and the caller must fall back to a full Snapshot republish
// — when the span is not purely appendable: a label value changed, a
// labeled point was deleted, a compaction renumbered ids, or a label
// landed on an old point (which would break the anchor ordering).
func (in *Ingestor) TakeDelta() (*graphssl.SnapshotDelta, bool) {
	if in.relabelSincePub || in.labDelSincePub || in.compactSincePub {
		return nil, false
	}
	span := in.labeledSeq[in.pubCount:]
	prev := in.maxPubID
	for _, id := range span {
		if id <= prev || !in.labelOf[id] || !in.side.Alive(id) {
			return nil, false
		}
		prev = id
	}
	if len(span) == 0 {
		return &graphssl.SnapshotDelta{}, true
	}
	d := &graphssl.SnapshotDelta{
		X: make([][]float64, len(span)),
		Y: make([]float64, len(span)),
	}
	for i, id := range span {
		d.X[i] = append([]float64(nil), in.side.Point(id)...)
		d.Y[i] = in.yOf[id]
	}
	in.pubCount = len(in.labeledSeq)
	in.maxPubID = prev
	return d, true
}

// MarkPublished records that the caller republished the full snapshot:
// the publish cursor advances and the delta-breaking flags reset.
func (in *Ingestor) MarkPublished() {
	in.pubCount = len(in.labeledSeq)
	in.relabelSincePub, in.labDelSincePub, in.compactSincePub = false, false, false
	in.maxPubID = -1
	for _, id := range in.labeledSeq {
		if in.labelOf[id] && in.side.Alive(id) && id > in.maxPubID {
			in.maxPubID = id
		}
	}
}
