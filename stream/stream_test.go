package stream

import (
	"math"
	"math/rand"
	"testing"

	graphssl "repro"
)

// mirror tracks the ground-truth state of a streamed point set so tests
// can rebuild the equivalent batch fit from scratch.
type mirror struct {
	pts   [][]float64
	alive []bool
	lab   []bool
	y     []float64
	seq   []int // labeling order (ids; may contain dead/unlabeled)
}

func (m *mirror) insert(p []float64, hasLabel bool, y float64) int {
	id := len(m.pts)
	m.pts = append(m.pts, p)
	m.alive = append(m.alive, true)
	m.lab = append(m.lab, hasLabel)
	m.y = append(m.y, y)
	if hasLabel {
		m.seq = append(m.seq, id)
	}
	return id
}

func (m *mirror) del(id int) {
	m.alive[id] = false
	m.lab[id] = false
}

func (m *mirror) label(id int, y float64) {
	if !m.lab[id] {
		m.seq = append(m.seq, id)
	}
	m.lab[id] = true
	m.y[id] = y
}

// applyRemap renumbers the mirror after a compaction: remap[oldID] = new
// id or -1 for dead ids, as returned by Compact / RefreshOutcome.Remap.
func (m *mirror) applyRemap(remap []int) {
	n := 0
	for _, nid := range remap {
		if nid >= 0 {
			n++
		}
	}
	pts := make([][]float64, n)
	lab := make([]bool, n)
	y := make([]float64, n)
	alive := make([]bool, n)
	var seq []int
	for old, nid := range remap {
		if nid < 0 {
			continue
		}
		pts[nid] = m.pts[old]
		lab[nid] = m.lab[old]
		y[nid] = m.y[old]
		alive[nid] = true
	}
	for _, old := range m.seq {
		if m.lab[old] && m.alive[old] && remap[old] >= 0 {
			seq = append(seq, remap[old])
		}
	}
	m.pts, m.lab, m.y, m.alive, m.seq = pts, lab, y, alive, seq
}

// liveSet compacts the mirror into Fit inputs: live points in id order,
// labeled indices in labeling order.
func (m *mirror) liveSet() (x [][]float64, y []float64, labeled []int) {
	remap := make([]int, len(m.pts))
	for id, p := range m.pts {
		if !m.alive[id] {
			remap[id] = -1
			continue
		}
		remap[id] = len(x)
		x = append(x, p)
	}
	for _, id := range m.seq {
		if !m.lab[id] || !m.alive[id] {
			continue
		}
		labeled = append(labeled, remap[id])
		y = append(y, m.y[id])
	}
	return x, y, labeled
}

// randPoint draws a point in [0,1]^dim.
func randPoint(rng *rand.Rand, dim int) []float64 {
	p := make([]float64, dim)
	for i := range p {
		p[i] = rng.Float64()
	}
	return p
}

// seedStream builds a fresh Ingestor plus its mirror with n0 points of
// which nLab are labeled, deterministic in the seed.
func seedStream(t *testing.T, n0, nLab, dim int, bw float64, workers int, seed int64, cfg Config) (*Ingestor, *mirror) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := &mirror{}
	for i := 0; i < n0; i++ {
		m.insert(randPoint(rng, dim), i < nLab, 0)
	}
	y := make([]float64, nLab)
	labeled := make([]int, nLab)
	for i := 0; i < nLab; i++ {
		labeled[i] = i
		y[i] = rng.NormFloat64()
		m.y[i] = y[i]
	}
	cfg.Bandwidth = bw
	cfg.Workers = workers
	if cfg.Kernel == 0 {
		cfg.Kernel = graphssl.Epanechnikov
	}
	in, err := New(m.pts, y, labeled, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return in, m
}

func bitwiseEq(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// fitScores runs the batch pipeline on the mirror's live set.
func fitScores(t *testing.T, m *mirror, kern graphssl.Kernel, bw float64, workers int) []float64 {
	t.Helper()
	x, y, labeled := m.liveSet()
	res, err := graphssl.Fit(x, y, labeled,
		graphssl.WithKernel(kern),
		graphssl.WithBandwidth(bw),
		graphssl.WithWorkers(workers))
	if err != nil {
		t.Fatal(err)
	}
	return res.Scores
}

// driveScript applies a fixed pseudo-random edit script to an ingestor
// and its mirror: inserts (some labeled), deletes, relabels, with a
// Refresh after every batch.
func driveScript(t *testing.T, in *Ingestor, m *mirror, seed int64, steps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for s := 0; s < steps; s++ {
		switch op := rng.Intn(10); {
		case op < 5: // insert, labeled with probability 1/2
			p := randPoint(rng, in.Dim())
			if rng.Intn(2) == 0 {
				yv := rng.NormFloat64()
				id, err := in.InsertLabeled(p, yv)
				if err != nil {
					t.Fatalf("step %d: %v", s, err)
				}
				if want := m.insert(p, true, yv); id != want {
					t.Fatalf("step %d: id %d want %d", s, id, want)
				}
			} else {
				id, err := in.Insert(p)
				if err != nil {
					t.Fatalf("step %d: %v", s, err)
				}
				if want := m.insert(p, false, 0); id != want {
					t.Fatalf("step %d: id %d want %d", s, id, want)
				}
			}
		case op < 7: // delete a random live unlabeled point (keeps coverage)
			id := rng.Intn(len(m.pts))
			if !m.alive[id] || m.lab[id] {
				continue
			}
			if err := in.Delete(id); err != nil {
				t.Fatalf("step %d delete: %v", s, err)
			}
			m.del(id)
		default: // label or relabel a random live point
			id := rng.Intn(len(m.pts))
			if !m.alive[id] {
				continue
			}
			yv := rng.NormFloat64()
			if err := in.Label(id, yv); err != nil {
				t.Fatalf("step %d label: %v", s, err)
			}
			m.label(id, yv)
		}
		if s%7 == 6 {
			if _, err := in.Refresh(); err != nil {
				t.Fatalf("step %d refresh: %v", s, err)
			}
		}
	}
	if _, err := in.Refresh(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamCompactMatchesFit is the determinism contract: after Compact,
// the streamed state is bitwise-identical to graphssl.Fit on the same
// live point set, for every worker count.
func TestStreamCompactMatchesFit(t *testing.T) {
	const bw = 0.7
	var got [][]float64
	for _, workers := range []int{1, 2, 4} {
		in, m := seedStream(t, 50, 8, 2, bw, workers, 42, Config{})
		driveScript(t, in, m, 99, 60)
		if _, err := in.Compact(); err != nil {
			t.Fatal(err)
		}
		scores := in.Scores()
		want := fitScores(t, m, graphssl.Epanechnikov, bw, workers)
		if !bitwiseEq(scores, want) {
			t.Fatalf("workers=%d: compacted stream differs from batch Fit (max diff %g)",
				workers, maxAbsDiff(scores, want))
		}
		got = append(got, scores)
	}
	for i := 1; i < len(got); i++ {
		if !bitwiseEq(got[0], got[i]) {
			t.Fatal("compacted stream differs across worker counts")
		}
	}
}

// TestStreamRefreshTracksExact checks the in-between state: without any
// compaction, every refreshed solution stays within the refresh
// tolerance of the from-scratch batch solution.
func TestStreamRefreshTracksExact(t *testing.T) {
	const bw = 0.7
	in, m := seedStream(t, 60, 10, 2, bw, 1, 7, Config{RefreshTol: 1e-9, CompactFrac: 100})
	rng := rand.New(rand.NewSource(13))

	for round := 0; round < 6; round++ {
		for k := 0; k < 5; k++ {
			p := randPoint(rng, 2)
			if rng.Intn(3) == 0 {
				yv := rng.NormFloat64()
				id, _ := in.InsertLabeled(p, yv)
				if want := m.insert(p, true, yv); id != want {
					t.Fatal("id drift")
				}
			} else {
				id, _ := in.Insert(p)
				if want := m.insert(p, false, 0); id != want {
					t.Fatal("id drift")
				}
			}
		}
		out, err := in.Refresh()
		if err != nil {
			t.Fatal(err)
		}
		if out.Kind != "warm-pcg" {
			t.Fatalf("round %d: structural refresh took %q", round, out.Kind)
		}
		want := fitScores(t, m, graphssl.Epanechnikov, bw, 1)
		if d := maxAbsDiff(in.Scores(), want); d > 1e-6 {
			t.Fatalf("round %d: refreshed solution off by %g", round, d)
		}
	}
	if in.Stats().Compactions != 0 {
		t.Fatalf("unexpected compactions: %+v", in.Stats())
	}
}

// TestStreamLadderKinds exercises each rung: value-only changes take the
// cheap RHS rung, small labeled batches take Woodbury, big ones warm PCG.
func TestStreamLadderKinds(t *testing.T) {
	in, m := seedStream(t, 80, 10, 2, 0.7, 1, 3, Config{WoodburyMaxK: 4})

	// Rung 1: change an existing label's value.
	if err := in.Label(2, 5); err != nil {
		t.Fatal(err)
	}
	m.label(2, 5)
	out, err := in.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != "label-values" || out.ValueChanges != 1 {
		t.Fatalf("value rung: %+v", out)
	}

	// Rung 2: label two existing unlabeled points (k=2 ≤ WoodburyMaxK).
	for _, id := range []int{20, 30} {
		if err := in.Label(id, 1); err != nil {
			t.Fatal(err)
		}
		m.label(id, 1)
	}
	out, err = in.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != "woodbury" || out.NewLabels != 2 {
		t.Fatalf("woodbury rung: %+v", out)
	}

	// Rung 3: label six more (k=6 > WoodburyMaxK) → warm PCG.
	for _, id := range []int{40, 45, 50, 55, 60, 65} {
		if err := in.Label(id, -1); err != nil {
			t.Fatal(err)
		}
		m.label(id, -1)
	}
	out, err = in.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != "warm-pcg" {
		t.Fatalf("warm rung: %+v", out)
	}

	// No pending work → "none" without touching the solver.
	out, err = in.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != "none" {
		t.Fatalf("idle refresh: %+v", out)
	}

	// Every rung left the solution at the batch answer.
	want := fitScores(t, m, graphssl.Epanechnikov, 0.7, 1)
	if d := maxAbsDiff(in.Scores(), want); d > 1e-6 {
		t.Fatalf("final solution off by %g", d)
	}

	st := in.Stats()
	if st.LabelRefreshes != 1 || st.WoodburyRefreshes != 1 || st.WarmRefreshes != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if rep := in.Report(); rep.Refresh == nil || rep.Refresh.Kind != "warm-pcg" {
		t.Fatalf("report: %+v", rep.Refresh)
	}
}

// TestStreamEscalatesToCompact forces the terminal rung two ways: a
// dead-id fraction above CompactFrac, and a refresh tolerance no
// iterative rung can meet.
func TestStreamEscalatesToCompact(t *testing.T) {
	in, m := seedStream(t, 60, 8, 2, 0.7, 1, 5, Config{CompactFrac: 0.05})
	for id := 10; id < 20; id++ {
		if err := in.Delete(id); err != nil {
			t.Fatal(err)
		}
		m.del(id)
	}
	out, err := in.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != "full-refit" || !out.Escalated {
		t.Fatalf("dead-fraction escalation: %+v", out)
	}
	want := fitScores(t, m, graphssl.Epanechnikov, 0.7, 1)
	if !bitwiseEq(in.Scores(), want) {
		t.Fatal("escalated compact differs from batch Fit")
	}
	st := in.Stats()
	if st.Compactions != 1 || st.Escalations != 1 || st.Dead != 0 {
		t.Fatalf("stats: %+v", st)
	}

	// Unreachable tolerance → residual miss → full refit, not an error.
	in2, _ := seedStream(t, 60, 8, 2, 0.7, 1, 5, Config{RefreshTol: 1e-300})
	if err := in2.Label(2, 9); err != nil {
		t.Fatal(err)
	}
	out, err = in2.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != "full-refit" || !out.Escalated {
		t.Fatalf("tolerance escalation: %+v", out)
	}
}

// TestStreamDeltaRollForward checks the publish path: a snapshot rolled
// forward by TakeDelta/ApplyDelta carries exactly the anchor sequence of
// a fresh snapshot, bitwise.
func TestStreamDeltaRollForward(t *testing.T) {
	in, _ := seedStream(t, 50, 8, 2, 0.7, 1, 21, Config{})
	snap, err := in.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	in.MarkPublished()

	rng := rand.New(rand.NewSource(8))
	for k := 0; k < 6; k++ {
		if _, err := in.InsertLabeled(randPoint(rng, 2), rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := in.Refresh(); err != nil {
		t.Fatal(err)
	}

	d, ok := in.TakeDelta()
	if !ok || d.Len() != 6 {
		t.Fatalf("delta: ok=%v len=%d", ok, d.Len())
	}
	rolled, err := snap.ApplyDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := in.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(rolled.Labeled) != len(fresh.Labeled) {
		t.Fatalf("labeled %d vs %d", len(rolled.Labeled), len(fresh.Labeled))
	}
	// Anchor sequences (coordinates, responses, pinned scores) must match
	// bitwise: that is what makes the rolled-forward served model
	// prediction-identical to one built from the fresh snapshot.
	for i := range rolled.Labeled {
		a, b := rolled.Labeled[i], fresh.Labeled[i]
		if !bitwiseEq(rolled.X[a], fresh.X[b]) {
			t.Fatalf("anchor %d coordinates differ", i)
		}
		if rolled.Y[i] != fresh.Y[i] || rolled.Scores[a] != fresh.Y[i] {
			t.Fatalf("anchor %d response %v/%v scores %v", i, rolled.Y[i], fresh.Y[i], rolled.Scores[a])
		}
	}

	// A second TakeDelta with nothing new yields an empty delta.
	d2, ok := in.TakeDelta()
	if !ok || d2.Len() != 0 {
		t.Fatalf("idle delta: ok=%v len=%d", ok, d2.Len())
	}

	// A relabel breaks appendability until the next full publish.
	if err := in.Label(0, 3.5); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, ok := in.TakeDelta(); ok {
		t.Fatal("delta after relabel should force full republish")
	}
	in.MarkPublished()
	if _, ok := in.TakeDelta(); !ok {
		t.Fatal("publish cursor not reset")
	}

	// A compaction renumbers ids and likewise forces a full republish.
	if _, err := in.InsertLabeled(randPoint(rng, 2), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, ok := in.TakeDelta(); ok {
		t.Fatal("delta across a compaction should force full republish")
	}
}

func TestStreamValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([][]float64, 20)
	for i := range x {
		x[i] = randPoint(rng, 2)
	}
	y := []float64{1, -1}
	labeled := []int{0, 1}

	if _, err := New(x, y, labeled, Config{Kernel: graphssl.Gaussian, Bandwidth: 0.5}); err == nil {
		t.Fatal("Gaussian kernel accepted")
	}
	if _, err := New(x, y, labeled, Config{Kernel: graphssl.Tricube, Bandwidth: 0}); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	in, err := New(x, y, labeled, Config{Kernel: graphssl.Tricube, Bandwidth: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Insert([]float64{1}); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if _, err := in.InsertLabeled(randPoint(rng, 2), math.NaN()); err == nil {
		t.Fatal("NaN response accepted")
	}
	if err := in.Label(3, math.Inf(1)); err == nil {
		t.Fatal("Inf response accepted")
	}
	if err := in.Delete(5); err != nil {
		t.Fatal(err)
	}
	if err := in.Delete(5); err == nil {
		t.Fatal("double delete accepted")
	}
	if err := in.Label(5, 1); err == nil {
		t.Fatal("label of dead id accepted")
	}
	if math.IsNaN(in.ScoreOf(2)) {
		t.Fatal("live refreshed id has no score")
	}
	id, err := in.Insert(randPoint(rng, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(in.ScoreOf(id)) {
		t.Fatal("un-refreshed insert has a score")
	}
}

// TestZeroAllocStreamLabelRefresh is the CI allocation gate for the
// streaming hot path: once buffers are warm, a label-value edit plus its
// Refresh must not allocate.
func TestZeroAllocStreamLabelRefresh(t *testing.T) {
	in, _ := seedStream(t, 150, 12, 2, 0.7, 1, 17, Config{})
	flip := 0.0
	for i := 0; i < 3; i++ {
		flip = 1 - flip
		if err := in.Label(3, flip); err != nil {
			t.Fatal(err)
		}
		if _, err := in.Refresh(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		flip = 1 - flip
		if err := in.Label(3, flip); err != nil {
			t.Fatal(err)
		}
		if _, err := in.Refresh(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm label-value ingest allocates %v times per op, want 0", allocs)
	}
}
