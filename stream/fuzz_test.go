package stream

import (
	"testing"

	graphssl "repro"
)

// FuzzStreamEquivalence drives an Ingestor with a byte-encoded random
// interleaving of inserts, deletes, labels, and refreshes, then compacts
// and asserts the streamed state is bitwise-identical to graphssl.Fit on
// the same live point set — the subsystem's determinism contract. Edit
// scripts that leave the point set unfittable (isolated unlabeled
// components, no labeled points, nothing unlabeled) must fail both
// paths.
func FuzzStreamEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x41, 0x92, 0x17, 0x63, 0xe8, 0x2a, 0x7f})
	f.Add([]byte{0x81, 0x10, 0x81, 0x20, 0x42, 0x05, 0xc3, 0x30, 0x00, 0x99})
	f.Add([]byte{0x42, 0x00, 0x42, 0x01, 0x42, 0x02, 0x42, 0x03, 0x00, 0xff})
	f.Add([]byte{0xc0, 0x00, 0x81, 0x50, 0x42, 0x0b, 0x00, 0x10, 0xc1, 0x01, 0x81, 0x60})

	f.Fuzz(func(t *testing.T, script []byte) {
		const (
			bw  = 0.8
			dim = 2
		)
		m := &mirror{}
		// Deterministic well-spread seed set: a small grid with the four
		// corners labeled.
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				m.insert([]float64{float64(i) / 3, float64(j) / 3}, false, 0)
			}
		}
		y := []float64{1, -1, 2, -2}
		labeled := []int{0, 3, 12, 15}
		for k, id := range labeled {
			m.lab[id] = true
			m.y[id] = y[k]
			m.seq = append(m.seq, id)
		}
		in, err := New(m.pts, y, labeled, Config{
			Kernel: graphssl.Tricube, Bandwidth: bw, Workers: 1,
		})
		if err != nil {
			t.Fatal(err)
		}

		// Interpret the script two bytes per op: the first selects the
		// operation, the second its operand.
		for i := 0; i+1 < len(script); i += 2 {
			op, arg := script[i], script[i+1]
			switch op >> 6 {
			case 0: // insert unlabeled
				p := []float64{float64(arg&0x0f) / 15, float64(arg>>4) / 15}
				id, err := in.Insert(p)
				if err != nil {
					t.Fatal(err)
				}
				if want := m.insert(p, false, 0); id != want {
					t.Fatalf("id %d want %d", id, want)
				}
			case 1: // insert labeled
				p := []float64{float64(arg&0x0f) / 15, float64(arg>>4) / 15}
				yv := float64(int(op&0x3f) - 32)
				id, err := in.InsertLabeled(p, yv)
				if err != nil {
					t.Fatal(err)
				}
				if want := m.insert(p, true, yv); id != want {
					t.Fatalf("id %d want %d", id, want)
				}
			case 2: // delete
				id := int(arg) % len(m.pts)
				if !m.alive[id] {
					continue
				}
				if err := in.Delete(id); err != nil {
					t.Fatal(err)
				}
				m.del(id)
			default: // label / relabel, or refresh when op&1 set
				if op&1 == 1 {
					// Refresh may legitimately fail (e.g. an isolated
					// unlabeled insert); pending state is retained, so a
					// later edit can repair it and Compact re-verifies. A
					// successful refresh may escalate to a compaction,
					// renumbering ids — mirror the remap.
					out, err := in.Refresh()
					if err == nil && out.Remap != nil {
						m.applyRemap(out.Remap)
					}
					continue
				}
				id := int(arg) % len(m.pts)
				if !m.alive[id] {
					continue
				}
				yv := float64(int(op&0x3e) - 30)
				if err := in.Label(id, yv); err != nil {
					t.Fatal(err)
				}
				m.label(id, yv)
			}
		}

		_, cerr := in.Compact()
		x, yy, lab := m.liveSet()
		var want []float64
		var ferr error
		if len(x) == 0 {
			ferr = graphssl.ErrParam
		} else {
			res, err := graphssl.Fit(x, yy, lab,
				graphssl.WithKernel(graphssl.Tricube),
				graphssl.WithBandwidth(bw),
				graphssl.WithWorkers(1))
			if err != nil {
				ferr = err
			} else {
				want = res.Scores
			}
		}
		if (cerr == nil) != (ferr == nil) {
			t.Fatalf("stream compact err=%v but batch fit err=%v", cerr, ferr)
		}
		if cerr != nil {
			return // both paths reject the same unfittable state
		}
		got := in.Scores()
		if !bitwiseEq(got, want) {
			t.Fatalf("compacted stream differs from batch Fit (max diff %g, n=%d)",
				maxAbsDiff(got, want), len(got))
		}
	})
}
