package graphssl_test

import (
	"fmt"

	graphssl "repro"
)

// Example demonstrates the basic transductive workflow: label two points,
// predict the rest.
func Example() {
	x := [][]float64{
		{0.0, 0.0}, {4.0, 4.0}, // labeled
		{0.2, 0.1}, {3.9, 4.2}, // unlabeled
	}
	y := []float64{1, 0}
	res, err := graphssl.Fit(x, y, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for i, idx := range res.Unlabeled {
		fmt.Printf("point %d → class %v\n", idx, res.UnlabeledScores[i] > 0.5)
	}
	// Output:
	// point 2 → class true
	// point 3 → class false
}

// ExampleFit_softCriterion selects the soft criterion with a tuning
// parameter — the variant the paper proves inconsistent for large λ.
func ExampleFit_softCriterion() {
	x := [][]float64{{0}, {1}, {0.5}}
	y := []float64{1, 0}
	res, err := graphssl.Fit(x, y, nil, graphssl.WithLambda(0.5))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("λ=%v solved with %d unlabeled prediction(s)\n", res.Lambda, len(res.UnlabeledScores))
	// Output:
	// λ=0.5 solved with 1 unlabeled prediction(s)
}

// ExampleNadarayaWatson computes the paper's Eq. 6 baseline estimator.
func ExampleNadarayaWatson() {
	x := [][]float64{{0}, {2}, {1}}
	y := []float64{0, 1}
	scores, unlabeled, err := graphssl.NadarayaWatson(x, y, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// The midpoint is equidistant from both labels: NW averages them.
	fmt.Printf("point %d → %.2f\n", unlabeled[0], scores[0])
	// Output:
	// point 2 → 0.50
}
