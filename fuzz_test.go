package graphssl

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"
)

// FuzzFit drives the full fit pipeline with arbitrary bytes decoded into
// points, responses, label indices, and tuning parameters. The contract under
// test: Fit never panics, and it returns either a finite-shaped result or an
// error carrying one of the package's typed sentinels (ErrParam,
// ErrIsolated). Run the full campaign with `make fuzz`.
func FuzzFit(f *testing.F) {
	// Seed corpus: a healthy fit, degenerate shapes, duplicate points,
	// pathological parameter values.
	f.Add([]byte{}, uint8(3), uint8(2), uint8(2), int64(1), 1.0, 0.0)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(6), uint8(2), uint8(3), int64(7), 0.5, 0.1)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, uint8(5), uint8(1), uint8(4), int64(3), -1.0, -0.5)
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, uint8(4), uint8(3), uint8(1), int64(9), 0.0, 1e12)
	f.Add([]byte{7, 7, 7, 7}, uint8(2), uint8(2), uint8(1), int64(11), math.NaN(), math.Inf(1))

	f.Fuzz(func(t *testing.T, raw []byte, nPts, dim, nLab uint8, seed int64, bandwidth, lambda float64) {
		n := int(nPts%24) + 1
		d := int(dim%6) + 1
		nl := int(nLab) % (n + 1)

		// Decode coordinates from the raw bytes, cycling; inject the
		// occasional extreme value so the validation paths get exercised.
		x := make([][]float64, n)
		pos := 0
		nextF64 := func() float64 {
			if len(raw) == 0 {
				return float64(pos%5) - 2
			}
			var buf [8]byte
			for i := range buf {
				buf[i] = raw[(pos+i)%len(raw)]
			}
			pos += 8
			u := binary.LittleEndian.Uint64(buf[:])
			switch u % 13 {
			case 0:
				return math.NaN()
			case 1:
				return math.Inf(1)
			case 2:
				return 1e300
			default:
				return float64(int64(u%2000)-1000) / 100
			}
		}
		for i := range x {
			x[i] = make([]float64, d)
			for j := range x[i] {
				x[i][j] = nextF64()
			}
		}
		y := make([]float64, nl)
		labeled := make([]int, nl)
		for i := range y {
			y[i] = nextF64()
			// Mostly valid indices, sometimes out of range or duplicated.
			labeled[i] = int(seed+int64(i)) % (n + 2)
			if labeled[i] < 0 {
				labeled[i] = -labeled[i]
			}
		}

		opts := []Option{WithLambda(lambda)}
		if bandwidth != 0 {
			opts = append(opts, WithBandwidth(bandwidth))
		}
		res, err := Fit(x, y, labeled, opts...)
		if err != nil {
			if !errors.Is(err, ErrParam) && !errors.Is(err, ErrIsolated) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		if res == nil {
			t.Fatal("nil result with nil error")
		}
		if len(res.Scores) != n {
			t.Fatalf("got %d scores for %d points", len(res.Scores), n)
		}
		if len(res.Unlabeled) != len(res.UnlabeledScores) {
			t.Fatalf("unlabeled index/score length mismatch: %d vs %d",
				len(res.Unlabeled), len(res.UnlabeledScores))
		}
		for i, s := range res.Scores {
			if math.IsNaN(s) || math.IsInf(s, 0) {
				t.Fatalf("non-finite score %v at %d from validated inputs", s, i)
			}
		}
	})
}
