package graphssl

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/approx"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/mat"
)

var (
	// ErrParam is returned for invalid inputs or option combinations.
	ErrParam = errors.New("graphssl: invalid parameter")
	// ErrIsolated is returned when some unlabeled point cannot be reached
	// from any labeled point in the similarity graph; predictions there are
	// undefined. Enlarging the bandwidth or k usually fixes it.
	ErrIsolated = errors.New("graphssl: unlabeled point isolated from all labels")
	// ErrWorker is returned when a distributed fit (WithCluster,
	// WithClusterShards, FitDistributed) exhausts its recovery budget: too
	// many worker crashes, no live workers left, or a post-solve
	// verification failure. The fit never returns a silently wrong answer —
	// partial failures either recover transparently (surfaced in the
	// diagnostics Report as a fallback) or end here.
	ErrWorker = cluster.ErrWorker
)

// Kernel re-exports the kernel profiles accepted by WithKernel.
type Kernel = kernel.Kind

// Supported kernels.
const (
	Gaussian     = kernel.Gaussian
	Uniform      = kernel.Uniform
	Epanechnikov = kernel.Epanechnikov
	Triangular   = kernel.Triangular
	Tricube      = kernel.Tricube
)

// Solver selects the linear-algebra backend.
type Solver = core.Method

// Supported solver backends.
const (
	SolverAuto        = core.MethodAuto
	SolverCholesky    = core.MethodCholesky
	SolverLU          = core.MethodLU
	SolverCG          = core.MethodCG
	SolverPropagation = core.MethodPropagation
	// SolverCluster identifies the sharded distributed PCG engine in fitted
	// results and reports. It is selected with WithCluster or
	// WithClusterShards, never with WithSolver.
	SolverCluster = core.MethodCluster
	// SolverNystrom identifies the approximate anchor-subset (Nyström)
	// engine in fitted results and reports. It is selected with WithApprox
	// — never with WithSolver — and only kept when its certified error
	// bound meets the requested tolerance.
	SolverNystrom = core.MethodNystrom
)

// Precond selects the preconditioner of CG-backed solves.
type Precond = core.Precond

// Supported preconditioners.
const (
	// PrecondAuto (the default) picks Jacobi at or below the auto cutoff and
	// IC(0) with RCM reordering above it.
	PrecondAuto = core.PrecondAuto
	// PrecondJacobi forces diagonal scaling (the historical solve path,
	// bit-for-bit).
	PrecondJacobi = core.PrecondJacobi
	// PrecondIC0 forces RCM-reordered zero-fill incomplete Cholesky, falling
	// back to Jacobi if the factorization breaks down.
	PrecondIC0 = core.PrecondIC0
	// PrecondNone runs unpreconditioned CG.
	PrecondNone = core.PrecondNone
)

type bandwidthRule int

const (
	bwMedian bandwidthRule = iota + 1
	bwPaper
	bwFixed
)

type config struct {
	kernel      Kernel
	bwRule      bandwidthRule
	bandwidth   float64
	knn         int
	lambda      float64
	solver      Solver
	tol         float64
	maxIter     int
	precond     Precond         // CG preconditioner; zero value = auto
	workers     int             // parallel compute layer: 0 = GOMAXPROCS, 1 = serial
	distributed int             // >0: legacy local Jacobi engine with this many workers
	clusterSet  bool            // WithCluster was given (addrs may still be invalid)
	clusterAddr []string        // worker addresses for the sharded PCG engine
	shards      int             // >0: shard-count override (or in-process fleet size)
	dialer      cluster.Dialer  // test seam; nil = TCP (or in-process when no addrs)
	ctx         context.Context // nil = never canceled
	report      *Report         // non-nil: fill diagnostics
	autoCutoff  int             // 0 = core default dense/iterative cutover
	approxTol   float64         // >0: try the Nyström engine under this bound
	approxM     int             // >0: anchor-count override for WithApprox
}

func defaultConfig() config {
	return config{
		kernel: Gaussian,
		bwRule: bwMedian,
		solver: SolverAuto,
		tol:    1e-10,
	}
}

// Option customizes Fit and NadarayaWatson.
type Option interface {
	apply(*config)
}

type optionFunc func(*config)

func (f optionFunc) apply(c *config) { f(c) }

// WithKernel selects the similarity kernel (default Gaussian).
func WithKernel(k Kernel) Option {
	return optionFunc(func(c *config) { c.kernel = k })
}

// WithBandwidth fixes the kernel bandwidth h (σ for the Gaussian kernel).
func WithBandwidth(h float64) Option {
	return optionFunc(func(c *config) { c.bwRule, c.bandwidth = bwFixed, h })
}

// WithMedianBandwidth selects the median heuristic σ² = median squared
// pairwise distance (the default, and the paper's choice for the COIL
// study).
func WithMedianBandwidth() Option {
	return optionFunc(func(c *config) { c.bwRule = bwMedian })
}

// WithPaperBandwidth selects the paper's synthetic-study rule
// h = (log n / n)^{1/d} with n the labeled count and d the input dimension.
func WithPaperBandwidth() Option {
	return optionFunc(func(c *config) { c.bwRule = bwPaper })
}

// WithKNN sparsifies the graph to the symmetrized k nearest neighbours.
func WithKNN(k int) Option {
	return optionFunc(func(c *config) { c.knn = k })
}

// WithLambda selects the soft criterion with tuning parameter λ ≥ 0
// (λ = 0 is the hard criterion, the default and the paper's
// recommendation).
func WithLambda(l float64) Option {
	return optionFunc(func(c *config) { c.lambda = l })
}

// WithSolver selects the linear-algebra backend (default auto).
func WithSolver(s Solver) Option {
	return optionFunc(func(c *config) { c.solver = s })
}

// WithPreconditioner selects the preconditioner of CG-backed solves
// (default PrecondAuto). Preconditioning changes only how fast CG
// converges, never what it converges to; every choice is deterministic and
// bitwise-stable across worker counts.
func WithPreconditioner(p Precond) Option {
	return optionFunc(func(c *config) { c.precond = p })
}

// WithTolerance sets the iterative-backend tolerance.
func WithTolerance(tol float64) Option {
	return optionFunc(func(c *config) { c.tol = tol })
}

// WithMaxIter caps iterative-backend iterations.
func WithMaxIter(n int) Option {
	return optionFunc(func(c *config) { c.maxIter = n })
}

// WithWorkers sets the worker count for the shared-memory parallel compute
// layer: the pairwise-distance pass, graph construction (including k-NN
// selection), the matrix-vector products inside iterative solves, and the
// per-class solves of FitMulticlass. n <= 0 (the default) selects
// runtime.GOMAXPROCS(0); n == 1 forces the serial path. For any fixed
// input, the fitted result is bitwise-identical across worker counts.
//
// WithWorkers is orthogonal to WithDistributed: the former parallelizes the
// numerical kernels in-process, the latter partitions the propagation solve
// across the cluster engine's workers.
func WithWorkers(n int) Option {
	return optionFunc(func(c *config) { c.workers = n })
}

// WithDistributed solves the hard criterion with the block-partitioned
// local Jacobi propagation engine using the given worker count. Only valid
// with λ = 0. New code should prefer WithCluster or WithClusterShards, the
// sharded PCG engine with fault recovery; WithDistributed is kept for the
// historical in-process path.
func WithDistributed(workers int) Option {
	return optionFunc(func(c *config) { c.distributed = workers })
}

// WithCluster solves the hard criterion on a fleet of cluster workers (see
// StartClusterWorker) with the sharded, halo-exchange PCG engine. The fit
// partitions the propagation system into edge-cut-aware shards — one per
// address by default, tunable with WithClusterShards — and coordinates the
// solve over the workers with crash recovery: a dead worker's shards are
// rebound to survivors and the solve restarts from the last checkpoint,
// surfaced in the diagnostics Report as a fallback. When the recovery
// budget is exhausted the fit fails with ErrWorker, never a silently wrong
// answer. Only valid with λ = 0. For any fixed input, the fitted result is
// bitwise-identical across address and shard counts.
func WithCluster(addrs ...string) Option {
	return optionFunc(func(c *config) {
		c.clusterSet = true
		c.clusterAddr = append([]string(nil), addrs...)
	})
}

// WithClusterShards sets the shard count of a WithCluster fit, or — given
// alone — runs the sharded PCG engine over n in-process workers, the
// zero-deployment way to exercise the distributed solve path. n must be
// positive.
func WithClusterShards(n int) Option {
	return optionFunc(func(c *config) { c.shards = n })
}

// withClusterDialer overrides the cluster transport; a test seam for fault
// injection.
func withClusterDialer(d cluster.Dialer) Option {
	return optionFunc(func(c *config) { c.dialer = d })
}

// WithApprox arms the approximate large-n engine: the fit first tries the
// Nyström anchor-subset solver (hierarchical KD coarsening picks m ≪ n
// anchors, the reduced hard system is solved exactly, and the scores are
// extended to all points by truncated kernel regression), and keeps that
// answer only when its computable sup-norm error bound — certified against
// the exact solution of the same system, never estimated — is at most tol.
// Otherwise the fit falls back to the exact path automatically, recording
// the reason in the diagnostics Report. Accepted approximate fits report
// SolverNystrom, carry the certificate in Result.ApproxBound, and set
// Result.Residual to the bound.
//
// tol = 0 (the default) disables the engine entirely: every fitted score
// is bitwise-identical to a fit without this option. tol must be ≥ 0 and
// finite. The engine applies to the hard criterion (λ = 0) on
// single-machine fits; combining WithApprox with WithLambda(>0),
// WithDistributed, or the cluster options is an error.
func WithApprox(tol float64) Option {
	return optionFunc(func(c *config) { c.approxTol = tol })
}

// WithApproxAnchors overrides the anchor budget m of WithApprox (default
// ≈ 8√n, the classical Nyström sizing). Larger budgets tighten the error
// bound at higher reduced-solve cost. Only meaningful together with
// WithApprox; m must be positive.
func WithApproxAnchors(m int) Option {
	return optionFunc(func(c *config) { c.approxM = m })
}

// WithContext attaches a context to the fit. Iterative solvers check it
// once per iteration sweep and the pipeline checks it between stages, so
// canceling the context (or exceeding its deadline) aborts the fit with
// ctx.Err() — errors.Is(err, context.Canceled) or context.DeadlineExceeded
// — within roughly one sweep of work. Cancellation is terminal: it never
// triggers a solver fallback.
func WithContext(ctx context.Context) Option {
	return optionFunc(func(c *config) { c.ctx = ctx })
}

// WithDiagnostics requests a diagnostics Report for the fit: per-stage wall
// clock, the solver chain and fallbacks taken, iterative work, and the
// numerical-health warnings of the pre-solve probe. The pointed-to Report
// is reset and filled by the fit (also on failure, as far as the pipeline
// got). Requesting diagnostics forces the health probe to run but never
// changes the fitted scores.
func WithDiagnostics(r *Report) Option {
	return optionFunc(func(c *config) { c.report = r })
}

// WithAutoCutoff tunes the system size at and below which SolverAuto uses a
// direct dense factorization instead of starting its chain at
// preconditioned conjugate gradient (default 2048). Large sparse
// deployments may lower it to lean on the iterative path sooner; n <= 0
// keeps the default.
func WithAutoCutoff(n int) Option {
	return optionFunc(func(c *config) { c.autoCutoff = n })
}

// Result is a fitted transductive model.
type Result struct {
	// Scores holds one score per input point. For the hard criterion,
	// labeled points carry their observed labels exactly.
	Scores []float64
	// Labeled are the labeled point indices (as passed or defaulted).
	Labeled []int
	// Unlabeled are the remaining indices, ascending; UnlabeledScores
	// aligns with it.
	Unlabeled       []int
	UnlabeledScores []float64
	// Lambda is the criterion parameter used.
	Lambda float64
	// Bandwidth is the kernel bandwidth actually used.
	Bandwidth float64
	// Kernel is the similarity kernel the fit was built with; zero for
	// FitGraph results, whose similarity matrix is caller-supplied.
	Kernel Kernel
	// KNN is the k-NN sparsification used to build the graph (0 = dense).
	KNN int
	// Solver is the backend that produced the solution.
	Solver Solver
	// Iterations and Residual report iterative-backend work. For accepted
	// approximate fits (Solver == SolverNystrom) Residual holds the
	// certified sup-norm error bound.
	Iterations int
	Residual   float64
	// ApproxBound is the certified sup-norm error bound of an accepted
	// approximate fit: ‖Scores − exact‖∞ ≤ ApproxBound. Zero for exact
	// fits. ApproxAnchors is the reduced system size that produced it.
	ApproxBound   float64
	ApproxAnchors int
	// GraphStats summarizes the similarity graph.
	GraphStats graph.Stats
}

// ModelSnapshot is an immutable, self-contained freeze of a fitted model:
// the training inputs, their responses, the fitted scores, and the graph
// hyperparameters (kernel, bandwidth, k-NN sparsification) needed to extend
// the fit to out-of-sample query points. It is the export hook consumed by
// the serve package, which wraps it in an inductive predictor and an HTTP
// model registry. Every slice is a deep copy, so later mutation of the
// training data or the Result cannot alias into a served model.
type ModelSnapshot struct {
	// X are the training inputs, Y the responses aligned with Labeled.
	X       [][]float64
	Y       []float64
	Labeled []int
	// Scores are the fitted scores, one per training point.
	Scores []float64
	// Kernel, Bandwidth, and KNN identify the similarity graph the fit
	// used; Lambda is the criterion parameter.
	Kernel    Kernel
	Bandwidth float64
	KNN       int
	Lambda    float64
	// ApproxBound carries the certified sup-norm error bound of an
	// accepted WithApprox fit into serving (0 for exact fits), so served
	// models can report how far their scores may sit from the exact
	// solution.
	ApproxBound float64
}

// Dim returns the input dimension.
func (s *ModelSnapshot) Dim() int {
	if len(s.X) == 0 {
		return 0
	}
	return len(s.X[0])
}

// Snapshot freezes the fit into a ModelSnapshot for serving. The Result
// does not retain the training data, so the caller passes back the same x
// and y given to Fit; Snapshot validates them against the fit (point count,
// response count, labeled indices, finite coordinates) and deep-copies
// everything. Results of FitGraph cannot be snapshotted: their similarity
// matrix is caller-supplied, so no kernel extension to new points exists.
func (r *Result) Snapshot(x [][]float64, y []float64) (*ModelSnapshot, error) {
	if r.Kernel == 0 {
		return nil, fmt.Errorf("graphssl: snapshot requires a kernel-built fit (FitGraph results carry no kernel): %w", ErrParam)
	}
	if !(r.Bandwidth > 0) || math.IsInf(r.Bandwidth, 0) {
		return nil, fmt.Errorf("graphssl: snapshot bandwidth %v: %w", r.Bandwidth, ErrParam)
	}
	if len(x) != len(r.Scores) {
		return nil, fmt.Errorf("graphssl: snapshot of %d points against a fit of %d: %w", len(x), len(r.Scores), ErrParam)
	}
	if len(y) != len(r.Labeled) {
		return nil, fmt.Errorf("graphssl: %d responses for %d labeled points: %w", len(y), len(r.Labeled), ErrParam)
	}
	if len(x) == 0 {
		return nil, fmt.Errorf("graphssl: empty snapshot: %w", ErrParam)
	}
	dim := len(x[0])
	if dim == 0 {
		return nil, fmt.Errorf("graphssl: zero-dimensional snapshot inputs: %w", ErrParam)
	}
	snap := &ModelSnapshot{
		X:         make([][]float64, len(x)),
		Y:         append([]float64(nil), y...),
		Labeled:   append([]int(nil), r.Labeled...),
		Scores:    append([]float64(nil), r.Scores...),
		Kernel:      r.Kernel,
		Bandwidth:   r.Bandwidth,
		KNN:         r.KNN,
		Lambda:      r.Lambda,
		ApproxBound: r.ApproxBound,
	}
	for i, xi := range x {
		if len(xi) != dim {
			return nil, fmt.Errorf("graphssl: snapshot point %d has dim %d, want %d: %w", i, len(xi), dim, ErrParam)
		}
		for j, v := range xi {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("graphssl: snapshot point %d coordinate %d is %v: %w", i, j, v, ErrParam)
			}
		}
		snap.X[i] = append([]float64(nil), xi...)
	}
	seen := make([]bool, len(x))
	for _, idx := range snap.Labeled {
		if idx < 0 || idx >= len(x) || seen[idx] {
			return nil, fmt.Errorf("graphssl: snapshot labeled index %d invalid: %w", idx, ErrParam)
		}
		seen[idx] = true
	}
	countSnapshot()
	return snap, nil
}

// Fit builds the similarity graph over x and solves the selected criterion.
//
// labeled lists the indices of x carrying the responses y (aligned
// index-for-index). Pass labeled = nil for the paper's layout, where the
// first len(y) points are labeled.
func Fit(x [][]float64, y []float64, labeled []int, opts ...Option) (*Result, error) {
	res, rep, err := fit(x, y, labeled, opts)
	countFit(rep, err)
	if rep != nil && err != nil {
		rep.Err = err.Error()
	}
	return res, err
}

// fit is the Fit pipeline body; Fit wraps it to update the expvar counters
// and the diagnostics report exactly once per call.
func fit(x [][]float64, y []float64, labeled []int, opts []Option) (*Result, *Report, error) {
	p, cfg, bw, g, err := prepare(x, y, labeled, opts)
	if err != nil {
		return nil, cfg.report, err
	}

	var sol *core.Solution
	var approxInfo *ApproxInfo
	solveStart := time.Now()
	if cfg.distributed > 0 || cfg.clusterSet || cfg.shards != 0 {
		sol, err = solveDistributed(p, cfg, x, y)
		if err != nil {
			return nil, cfg.report, err
		}
	} else {
		if cfg.approxTol > 0 {
			sol, approxInfo, err = solveApprox(p, cfg, x, y, bw)
			if err != nil {
				return nil, cfg.report, err
			}
		}
		if sol == nil {
			sol, err = solveExact(p, cfg)
			if err != nil {
				return nil, cfg.report, translateCoreErr(err)
			}
		}
	}
	cfg.report.addStage("solve", time.Since(solveStart))
	if r := cfg.report; r != nil {
		r.Bandwidth = bw
		r.Solver = sol.Method
		r.Iterations = sol.Iterations
		r.Residual = sol.Residual
		r.Precond = sol.Precond
		r.PrecondSetup = sol.PrecondSetup
		r.Approx = approxInfo
		r.fromTrace(sol.Trace)
	}

	res := &Result{
		Scores:          sol.F,
		Labeled:         p.Labeled(),
		Unlabeled:       p.Unlabeled(),
		UnlabeledScores: sol.FUnlabeled,
		Lambda:          cfg.lambda,
		Bandwidth:       bw,
		Kernel:          cfg.kernel,
		KNN:             cfg.knn,
		Solver:          sol.Method,
		Iterations:      sol.Iterations,
		Residual:        sol.Residual,
		GraphStats:      g.Summary(),
	}
	if approxInfo != nil && approxInfo.Accepted {
		res.ApproxBound = approxInfo.Bound
		res.ApproxAnchors = approxInfo.Anchors
	}
	return res, cfg.report, nil
}

// solveExact runs the single-machine exact solver stack — the historical
// fit path, bit for bit.
func solveExact(p *core.Problem, cfg config) (*core.Solution, error) {
	solveOpts := []core.SolveOption{
		core.WithMethod(cfg.solver),
		core.WithTolerance(cfg.tol),
		core.WithMaxIter(cfg.maxIter),
		core.WithWorkers(cfg.workers),
		core.WithPreconditioner(cfg.precond),
	}
	if cfg.ctx != nil {
		solveOpts = append(solveOpts, core.WithContext(cfg.ctx))
	}
	if cfg.report != nil {
		solveOpts = append(solveOpts, core.WithHealthProbe())
	}
	if cfg.autoCutoff > 0 {
		solveOpts = append(solveOpts, core.WithAutoCutoff(cfg.autoCutoff))
	}
	return core.SolveSoft(p, cfg.lambda, solveOpts...)
}

// solveApprox attempts the Nyström anchor-subset engine. It returns a
// non-nil solution only when the approximate answer's certified error
// bound meets cfg.approxTol; every other outcome — system too small,
// reduced solve infeasible, bound too loose — records an ApproxInfo (and a
// Report fallback) and returns a nil solution so the caller runs the exact
// path. Errors are terminal only for context cancellation, which never
// falls back (matching the exact path's cancellation contract).
func solveApprox(p *core.Problem, cfg config, x [][]float64, y []float64, bw float64) (*core.Solution, *ApproxInfo, error) {
	info := &ApproxInfo{Tol: cfg.approxTol}
	k, err := kernel.New(cfg.kernel, bw)
	if err != nil {
		info.Err = err.Error()
		return nil, info, nil
	}
	ares, err := approx.SolveHard(p, x, approx.Options{
		Kernel:  k,
		KNN:     cfg.knn,
		Anchors: cfg.approxM,
		Tol:     cfg.tol,
		MaxIter: cfg.maxIter,
		Workers: cfg.workers,
		Ctx:     cfg.ctx,
	})
	if err != nil {
		if cfg.ctx != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			return nil, info, err
		}
		info.Err = err.Error()
		countApprox(false)
		if r := cfg.report; r != nil {
			r.Fallbacks = append(r.Fallbacks, Fallback{
				From:   SolverNystrom,
				To:     cfg.solver,
				Reason: "approximate engine unavailable: " + err.Error(),
			})
		}
		return nil, info, nil
	}
	info.Anchors = ares.Anchors
	info.Levels = ares.Levels
	info.Bound = ares.Bound
	info.BarrierIterations = ares.BarrierIterations
	info.ReducedIterations = ares.ReducedIterations
	info.Isolated = ares.Isolated
	info.TreeNs = ares.TreeNs
	info.ReducedNs = ares.ReducedNs
	info.ExtendNs = ares.ExtendNs
	info.CertifyNs = ares.CertifyNs
	if !(ares.Bound <= cfg.approxTol) {
		countApprox(false)
		if r := cfg.report; r != nil {
			r.Fallbacks = append(r.Fallbacks, Fallback{
				From:   SolverNystrom,
				To:     cfg.solver,
				Reason: fmt.Sprintf("certified error bound %.6g exceeds approx tolerance %.6g", ares.Bound, cfg.approxTol),
			})
		}
		return nil, info, nil
	}
	info.Accepted = true
	countApprox(true)
	full := make([]float64, len(x))
	for i, l := range p.Labeled() {
		full[l] = y[i]
	}
	for i, u := range p.Unlabeled() {
		full[u] = ares.FUnlabeled[i]
	}
	return &core.Solution{
		F:          full,
		FUnlabeled: ares.FUnlabeled,
		Method:     SolverNystrom,
		Iterations: ares.ReducedIterations,
		Residual:   ares.Bound,
	}, info, nil
}

// solveDistributed routes the hard criterion through one of the two
// cluster engines: the legacy in-process Jacobi sweep (WithDistributed) or
// the sharded, fault-tolerant PCG coordinator (WithCluster /
// WithClusterShards). The returned solution carries the full score vector.
func solveDistributed(p *core.Problem, cfg config, x [][]float64, y []float64) (*core.Solution, error) {
	if cfg.lambda != 0 {
		return nil, fmt.Errorf("graphssl: distributed propagation requires λ=0: %w", ErrParam)
	}
	if cfg.distributed > 0 && (cfg.clusterSet || cfg.shards != 0) {
		return nil, fmt.Errorf("graphssl: WithDistributed and the cluster options are mutually exclusive: %w", ErrParam)
	}
	if cfg.clusterSet && len(cfg.clusterAddr) == 0 {
		return nil, fmt.Errorf("graphssl: WithCluster needs at least one worker address: %w", ErrParam)
	}
	if cfg.shards < 0 {
		return nil, fmt.Errorf("graphssl: cluster shard count %d: %w", cfg.shards, ErrParam)
	}
	if err := ctxErr(cfg.ctx); err != nil {
		return nil, err
	}
	sys, err := core.BuildPropagationSystem(p)
	if err != nil {
		return nil, translateCoreErr(err)
	}
	var sol *core.Solution
	if cfg.distributed > 0 {
		fu, res, err := cluster.SolveLocal(sys, cluster.LocalOptions{
			Workers:       cfg.distributed,
			Tol:           cfg.tol,
			MaxSupersteps: cfg.maxIter,
		})
		if err != nil {
			return nil, fmt.Errorf("graphssl: distributed solve: %w", err)
		}
		sol = &core.Solution{
			FUnlabeled: fu,
			Method:     SolverPropagation,
			Iterations: res.Supersteps,
			Residual:   res.MaxDelta,
		}
	} else {
		addrs := cfg.clusterAddr
		dialer := cfg.dialer
		if len(addrs) == 0 {
			// WithClusterShards alone: an in-process fleet with one logical
			// worker per shard.
			addrs = make([]string, cfg.shards)
			for i := range addrs {
				addrs[i] = fmt.Sprintf("inproc-%d", i)
			}
			if dialer == nil {
				dialer = cluster.InProcessDialer()
			}
		}
		fu, res, err := cluster.SolvePCG(sys, addrs, cluster.PCGOptions{
			Shards:  cfg.shards,
			Tol:     cfg.tol,
			MaxIter: cfg.maxIter,
			Dialer:  dialer,
		})
		if err != nil {
			return nil, fmt.Errorf("graphssl: cluster solve: %w", err)
		}
		sol = &core.Solution{
			FUnlabeled: fu,
			Method:     SolverCluster,
			Iterations: res.Iterations,
			Residual:   res.Residual,
		}
		if r := cfg.report; r != nil && (res.Restarts > 0 || res.Rebinds > 0) {
			r.Fallbacks = append(r.Fallbacks, Fallback{
				From: SolverCluster,
				To:   SolverCluster,
				Reason: fmt.Sprintf("recovered from worker failure: %d restart(s), %d shard rebind(s)",
					res.Restarts, res.Rebinds),
			})
		}
	}
	full := make([]float64, len(x))
	for i, l := range p.Labeled() {
		full[l] = y[i]
	}
	for i, u := range p.Unlabeled() {
		full[u] = sol.FUnlabeled[i]
	}
	sol.F = full
	return sol, nil
}

// FitDistributed fits the hard criterion across a fleet of cluster workers:
// Fit with WithCluster(addrs...) prepended. Remaining options apply as
// usual; pass WithClusterShards to decouple the shard count from the fleet
// size and WithDiagnostics to observe crash recovery.
func FitDistributed(x [][]float64, y []float64, labeled []int, addrs []string, opts ...Option) (*Result, error) {
	return Fit(x, y, labeled, append([]Option{WithCluster(addrs...)}, opts...)...)
}

// ClusterWorker is a running distributed-fit worker: a propagation service
// listening on a TCP address, serving shard setup, superstep, and gather
// RPCs for FitDistributed coordinators. Close is graceful and idempotent.
type ClusterWorker = cluster.Worker

// StartClusterWorker starts a cluster worker listening on addr
// (host:port; ":0" picks a free port — read it back with Addr). One worker
// can serve many shards and many consecutive fits.
func StartClusterWorker(addr string) (*ClusterWorker, error) {
	w, err := cluster.StartWorker(addr)
	if err != nil {
		return nil, fmt.Errorf("graphssl: start cluster worker: %w", err)
	}
	return w, nil
}

// ctxErr reports the context's error, tolerating the nil (never canceled)
// default.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// NadarayaWatson computes the paper's Eq. 6 kernel-regression baseline on
// the unlabeled points, using the same graph options as Fit. The returned
// scores align with the ascending unlabeled index order (the second return
// value).
func NadarayaWatson(x [][]float64, y []float64, labeled []int, opts ...Option) ([]float64, []int, error) {
	p, _, _, _, err := prepare(x, y, labeled, opts)
	if err != nil {
		return nil, nil, err
	}
	nw, err := core.NadarayaWatson(p)
	if err != nil {
		return nil, nil, translateCoreErr(err)
	}
	return nw, p.Unlabeled(), nil
}

// prepare validates inputs, resolves the bandwidth, builds the graph, and
// assembles the core problem.
func prepare(x [][]float64, y []float64, labeled []int, opts []Option) (*core.Problem, config, float64, *graph.Graph, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o.apply(&cfg)
	}
	if cfg.report != nil {
		*cfg.report = Report{}
	}
	if err := ctxErr(cfg.ctx); err != nil {
		return nil, cfg, 0, nil, err
	}
	if len(x) == 0 {
		return nil, cfg, 0, nil, fmt.Errorf("graphssl: no input points: %w", ErrParam)
	}
	dim := len(x[0])
	if dim == 0 {
		return nil, cfg, 0, nil, fmt.Errorf("graphssl: zero-dimensional inputs: %w", ErrParam)
	}
	for i, xi := range x {
		if len(xi) != dim {
			return nil, cfg, 0, nil, fmt.Errorf("graphssl: point %d has dim %d, want %d: %w", i, len(xi), dim, ErrParam)
		}
		for j, v := range xi {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, cfg, 0, nil, fmt.Errorf("graphssl: point %d coordinate %d is %v: %w", i, j, v, ErrParam)
			}
		}
	}
	for i, v := range y {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, cfg, 0, nil, fmt.Errorf("graphssl: response %d is %v: %w", i, v, ErrParam)
		}
	}
	if labeled == nil {
		if len(y) >= len(x) {
			return nil, cfg, 0, nil, fmt.Errorf("graphssl: %d responses for %d points leaves nothing unlabeled: %w", len(y), len(x), ErrParam)
		}
		labeled = make([]int, len(y))
		for i := range labeled {
			labeled[i] = i
		}
	} else {
		// Validate the labeled set before the (expensive) bandwidth and
		// graph stages so malformed index lists fail fast with ErrParam.
		seen := make([]bool, len(x))
		for _, idx := range labeled {
			if idx < 0 || idx >= len(x) {
				return nil, cfg, 0, nil, fmt.Errorf("graphssl: labeled index %d outside [0,%d): %w", idx, len(x), ErrParam)
			}
			if seen[idx] {
				return nil, cfg, 0, nil, fmt.Errorf("graphssl: duplicate labeled index %d: %w", idx, ErrParam)
			}
			seen[idx] = true
		}
	}
	if cfg.lambda < 0 || math.IsNaN(cfg.lambda) || math.IsInf(cfg.lambda, 0) {
		return nil, cfg, 0, nil, fmt.Errorf("graphssl: λ=%v: %w", cfg.lambda, ErrParam)
	}
	if cfg.approxTol < 0 || math.IsNaN(cfg.approxTol) || math.IsInf(cfg.approxTol, 0) {
		return nil, cfg, 0, nil, fmt.Errorf("graphssl: approx tolerance %v: %w", cfg.approxTol, ErrParam)
	}
	if cfg.approxM < 0 {
		return nil, cfg, 0, nil, fmt.Errorf("graphssl: approx anchor budget %d: %w", cfg.approxM, ErrParam)
	}
	if cfg.approxTol > 0 {
		if cfg.lambda != 0 {
			return nil, cfg, 0, nil, fmt.Errorf("graphssl: WithApprox requires the hard criterion (λ=0), got λ=%v: %w", cfg.lambda, ErrParam)
		}
		if cfg.distributed > 0 || cfg.clusterSet || cfg.shards != 0 {
			return nil, cfg, 0, nil, fmt.Errorf("graphssl: WithApprox and the distributed/cluster options are mutually exclusive: %w", ErrParam)
		}
	}

	bwStart := time.Now()
	var (
		bw  float64
		err error
	)
	switch cfg.bwRule {
	case bwFixed:
		bw = cfg.bandwidth
	case bwPaper:
		bw, err = kernel.PaperBandwidth(len(labeled), dim)
		if err != nil {
			return nil, cfg, 0, nil, fmt.Errorf("graphssl: paper bandwidth: %w: %v", ErrParam, err)
		}
	default:
		bw, err = kernel.MedianHeuristic(x, 200000)
		if err != nil {
			return nil, cfg, 0, nil, fmt.Errorf("graphssl: median bandwidth: %w: %v", ErrParam, err)
		}
	}
	if math.IsNaN(bw) || math.IsInf(bw, 0) {
		return nil, cfg, 0, nil, fmt.Errorf("graphssl: bandwidth %v: %w", bw, ErrParam)
	}
	k, err := kernel.New(cfg.kernel, bw)
	if err != nil {
		return nil, cfg, 0, nil, fmt.Errorf("graphssl: kernel: %w: %v", ErrParam, err)
	}
	cfg.report.addStage("bandwidth", time.Since(bwStart))
	if err := ctxErr(cfg.ctx); err != nil {
		return nil, cfg, 0, nil, err
	}

	graphStart := time.Now()
	builderOpts := []graph.Option{graph.WithWorkers(cfg.workers)}
	if cfg.knn > 0 {
		builderOpts = append(builderOpts, graph.WithKNN(cfg.knn))
	}
	builder, err := graph.NewBuilder(k, builderOpts...)
	if err != nil {
		return nil, cfg, 0, nil, fmt.Errorf("graphssl: graph builder: %w: %v", ErrParam, err)
	}
	g, err := builder.Build(x)
	if err != nil {
		return nil, cfg, 0, nil, fmt.Errorf("graphssl: graph: %w: %v", ErrParam, err)
	}
	cfg.report.addStage("graph", time.Since(graphStart))
	if err := ctxErr(cfg.ctx); err != nil {
		return nil, cfg, 0, nil, err
	}

	problemStart := time.Now()
	p, err := core.NewProblem(g, labeled, y)
	if err != nil {
		return nil, cfg, 0, nil, fmt.Errorf("graphssl: %w: %v", ErrParam, err)
	}
	cfg.report.addStage("problem", time.Since(problemStart))
	return p, cfg, bw, g, nil
}

// translateCoreErr maps core sentinel errors onto the package's public ones.
func translateCoreErr(err error) error {
	switch {
	case errors.Is(err, core.ErrIsolated):
		return fmt.Errorf("graphssl: %w: %v", ErrIsolated, err)
	case errors.Is(err, mat.ErrSingular):
		// The hard system D22−W22 is a nonsingular M-matrix exactly when
		// every unlabeled component carries labeled mass, so a singular
		// factorization means some unlabeled point is numerically cut off
		// from the labels (weights underflowed to ~0).
		return fmt.Errorf("graphssl: %w: system numerically singular: %v", ErrIsolated, err)
	case errors.Is(err, core.ErrParam):
		return fmt.Errorf("graphssl: %w: %v", ErrParam, err)
	default:
		return fmt.Errorf("graphssl: %w", err)
	}
}
