package graphssl

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// approxFixture builds the planar large-n fixture: n points in the unit
// square with every step-th labeled by a smooth response.
func approxFixture(n, step int, seed int64) (x [][]float64, y []float64, labeled []int) {
	rng := rand.New(rand.NewSource(seed))
	x = make([][]float64, n)
	for i := range x {
		x[i] = []float64{rng.Float64(), rng.Float64()}
	}
	for i := 0; i < n; i += step {
		labeled = append(labeled, i)
		y = append(y, math.Sin(4*x[i][0])*math.Cos(3*x[i][1]))
	}
	return x, y, labeled
}

// TestWithApproxAcceptsWithinTolerance: a generous tolerance keeps the
// Nyström answer, whose certified bound must dominate the measured distance
// to the exact fit of the same data.
func TestWithApproxAcceptsWithinTolerance(t *testing.T) {
	x, y, labeled := approxFixture(2000, 40, 7)
	base := []Option{WithBandwidth(0.12), WithKNN(10)}
	exact, err := Fit(x, y, labeled, base...)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	res, err := Fit(x, y, labeled, append([]Option{WithApprox(50), WithDiagnostics(&rep)}, base...)...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solver != SolverNystrom {
		t.Fatalf("solver = %v, want nystrom", res.Solver)
	}
	if !(res.ApproxBound > 0 && res.ApproxBound <= 50) {
		t.Fatalf("ApproxBound = %v, want in (0, 50]", res.ApproxBound)
	}
	if res.ApproxAnchors <= len(labeled) || res.ApproxAnchors >= len(x)/2 {
		t.Fatalf("ApproxAnchors = %d for n=%d, nl=%d", res.ApproxAnchors, len(x), len(labeled))
	}
	if res.Residual != res.ApproxBound {
		t.Fatalf("Residual %v must carry the bound %v for Nyström fits", res.Residual, res.ApproxBound)
	}
	var actual float64
	for i := range res.Scores {
		if d := math.Abs(res.Scores[i] - exact.Scores[i]); d > actual {
			actual = d
		}
	}
	if actual > res.ApproxBound {
		t.Fatalf("measured sup error %g exceeds certified bound %g", actual, res.ApproxBound)
	}
	if rep.Approx == nil || !rep.Approx.Accepted || rep.Approx.Bound != res.ApproxBound {
		t.Fatalf("report.Approx = %+v, want accepted with bound %v", rep.Approx, res.ApproxBound)
	}
	if len(rep.Fallbacks) != 0 {
		t.Fatalf("accepted approx fit recorded fallbacks: %+v", rep.Fallbacks)
	}
	// Labeled points keep their observed responses exactly.
	for i, l := range res.Labeled {
		if res.Scores[l] != y[i] {
			t.Fatalf("labeled score %d = %v, want %v", l, res.Scores[l], y[i])
		}
	}
}

// TestWithApproxFallsBackOnTightTolerance: a bound above tol must yield the
// exact answer bit for bit, with the rejection documented.
func TestWithApproxFallsBackOnTightTolerance(t *testing.T) {
	x, y, labeled := approxFixture(2000, 40, 7)
	base := []Option{WithBandwidth(0.12), WithKNN(10)}
	exact, err := Fit(x, y, labeled, base...)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	res, err := Fit(x, y, labeled, append([]Option{WithApprox(1e-9), WithDiagnostics(&rep)}, base...)...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solver == SolverNystrom {
		t.Fatal("tight tolerance must reject the approximate answer")
	}
	if res.ApproxBound != 0 || res.ApproxAnchors != 0 {
		t.Fatalf("rejected approx fit leaked bound fields: %+v", res)
	}
	for i := range res.Scores {
		if res.Scores[i] != exact.Scores[i] {
			t.Fatalf("score %d differs from the exact path after fallback", i)
		}
	}
	if rep.Approx == nil || rep.Approx.Accepted {
		t.Fatalf("report.Approx = %+v, want a rejected attempt", rep.Approx)
	}
	found := false
	for _, fb := range rep.Fallbacks {
		if fb.From == SolverNystrom {
			found = true
		}
	}
	if !found {
		t.Fatalf("no Nyström fallback recorded: %+v", rep.Fallbacks)
	}
}

// TestWithApproxUnavailableFallsBack: below the engine's minimum size the
// fit silently (but documented) runs exact.
func TestWithApproxUnavailableFallsBack(t *testing.T) {
	x, y, labeled := approxFixture(300, 10, 3)
	var rep Report
	res, err := Fit(x, y, labeled, WithBandwidth(0.3), WithApprox(10), WithDiagnostics(&rep))
	if err != nil {
		t.Fatal(err)
	}
	if res.Solver == SolverNystrom {
		t.Fatal("n=300 must not use the approximate engine")
	}
	if rep.Approx == nil || rep.Approx.Err == "" || rep.Approx.Accepted {
		t.Fatalf("report.Approx = %+v, want an unavailable attempt with Err", rep.Approx)
	}
}

// TestWithApproxZeroDisables: tol = 0 is the exact path, including no
// ApproxInfo in the report.
func TestWithApproxZeroDisables(t *testing.T) {
	x, y, labeled := approxFixture(1200, 24, 5)
	base := []Option{WithBandwidth(0.15), WithKNN(8)}
	ref, err := Fit(x, y, labeled, base...)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	res, err := Fit(x, y, labeled, append([]Option{WithApprox(0), WithDiagnostics(&rep)}, base...)...)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Approx != nil {
		t.Fatalf("WithApprox(0) still attempted the engine: %+v", rep.Approx)
	}
	for i := range res.Scores {
		if res.Scores[i] != ref.Scores[i] {
			t.Fatalf("score %d differs under WithApprox(0)", i)
		}
	}
}

// TestWithApproxValidation: malformed or contradictory approx options fail
// fast with ErrParam.
func TestWithApproxValidation(t *testing.T) {
	x, y, labeled := approxFixture(200, 10, 1)
	cases := map[string][]Option{
		"negative tol":    {WithApprox(-1)},
		"nan tol":         {WithApprox(math.NaN())},
		"inf tol":         {WithApprox(math.Inf(1))},
		"negative budget": {WithApproxAnchors(-5), WithApprox(1)},
		"soft criterion":  {WithApprox(1), WithLambda(0.5)},
		"distributed":     {WithApprox(1), WithDistributed(2)},
		"cluster shards":  {WithApprox(1), WithClusterShards(2)},
	}
	for name, opts := range cases {
		if _, err := Fit(x, y, labeled, opts...); !errors.Is(err, ErrParam) {
			t.Errorf("%s: err = %v, want ErrParam", name, err)
		}
	}
}

// TestApproxSnapshotCarriesBound: the certificate survives the freeze into
// a served ModelSnapshot.
func TestApproxSnapshotCarriesBound(t *testing.T) {
	x, y, labeled := approxFixture(2000, 40, 9)
	res, err := Fit(x, y, labeled, WithBandwidth(0.12), WithKNN(10), WithApprox(50))
	if err != nil {
		t.Fatal(err)
	}
	if res.Solver != SolverNystrom {
		t.Skipf("approximate answer rejected (bound %v); nothing to snapshot", res.ApproxBound)
	}
	snap, err := res.Snapshot(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if snap.ApproxBound != res.ApproxBound {
		t.Fatalf("snapshot bound %v, want %v", snap.ApproxBound, res.ApproxBound)
	}
}
