package graphssl

import (
	"fmt"
	"math"
)

// SnapshotDelta is an appendable increment to a ModelSnapshot: points
// labeled since the snapshot was taken, in labeling order. The stream
// package emits deltas (Ingestor.TakeDelta) so serving replicas can roll
// a published model forward without republishing every anchor.
type SnapshotDelta struct {
	// X are the new labeled points, Y their responses (aligned).
	X [][]float64
	Y []float64
}

// Len returns the number of points in the delta.
func (d *SnapshotDelta) Len() int { return len(d.X) }

// ApplyDelta returns a new snapshot extending s with the delta's labeled
// points appended at the end. The hard criterion (Lambda = 0) pins each
// labeled point's fitted score to its response, so the appended points
// carry Scores equal to Y and every snapshot invariant holds by
// construction. Soft-criterion snapshots cannot be rolled forward this
// way (their labeled scores are shrunk toward the graph) and are
// rejected.
//
// The receiver is not mutated: shared slices (X rows, Labeled prefix,
// Scores prefix) are reused by reference, appended content is deep-copied.
func (s *ModelSnapshot) ApplyDelta(d *SnapshotDelta) (*ModelSnapshot, error) {
	if d == nil || len(d.X) == 0 {
		return s, nil
	}
	if s.Lambda != 0 {
		return nil, fmt.Errorf("graphssl: delta roll-forward needs the hard criterion (lambda=0), got %v: %w", s.Lambda, ErrParam)
	}
	if len(d.X) != len(d.Y) {
		return nil, fmt.Errorf("graphssl: delta has %d points, %d responses: %w", len(d.X), len(d.Y), ErrParam)
	}
	dim := s.Dim()
	n := len(s.X)
	out := &ModelSnapshot{
		X:           make([][]float64, n, n+len(d.X)),
		Y:           make([]float64, len(s.Y), len(s.Y)+len(d.Y)),
		Labeled:     make([]int, len(s.Labeled), len(s.Labeled)+len(d.X)),
		Scores:      make([]float64, len(s.Scores), len(s.Scores)+len(d.X)),
		Kernel:      s.Kernel,
		Bandwidth:   s.Bandwidth,
		KNN:         s.KNN,
		Lambda:      s.Lambda,
		ApproxBound: s.ApproxBound,
	}
	copy(out.X, s.X)
	copy(out.Y, s.Y)
	copy(out.Labeled, s.Labeled)
	copy(out.Scores, s.Scores)
	for i, xi := range d.X {
		if len(xi) != dim {
			return nil, fmt.Errorf("graphssl: delta point %d has dim %d, want %d: %w", i, len(xi), dim, ErrParam)
		}
		for j, v := range xi {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("graphssl: delta point %d coordinate %d is %v: %w", i, j, v, ErrParam)
			}
		}
		if math.IsNaN(d.Y[i]) || math.IsInf(d.Y[i], 0) {
			return nil, fmt.Errorf("graphssl: delta response %d is %v: %w", i, d.Y[i], ErrParam)
		}
		out.X = append(out.X, append([]float64(nil), xi...))
		out.Y = append(out.Y, d.Y[i])
		out.Labeled = append(out.Labeled, n+i)
		out.Scores = append(out.Scores, d.Y[i])
	}
	return out, nil
}
