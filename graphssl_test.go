package graphssl

import (
	"errors"
	"math"
	"testing"

	"repro/internal/randx"
	"repro/internal/stats"
)

// twoClusters generates two well-separated Gaussian blobs with the first
// nLabeled points labeled by blob membership.
func twoClusters(seed int64, perCluster, nLabeled int) (x [][]float64, y []float64) {
	rng := randx.New(seed)
	total := 2 * perCluster
	x = make([][]float64, 0, total)
	full := make([]float64, 0, total)
	// Interleave so the labeled prefix covers both clusters.
	for i := 0; i < perCluster; i++ {
		x = append(x, []float64{rng.Norm()*0.3 - 2, rng.Norm() * 0.3})
		full = append(full, 1)
		x = append(x, []float64{rng.Norm()*0.3 + 2, rng.Norm() * 0.3})
		full = append(full, 0)
	}
	return x, full[:nLabeled]
}

func TestFitTwoClustersPerfect(t *testing.T) {
	x, y := twoClusters(1, 30, 12)
	res, err := Fit(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != len(x) {
		t.Fatalf("scores = %d", len(res.Scores))
	}
	if len(res.Unlabeled) != len(x)-12 || len(res.UnlabeledScores) != len(x)-12 {
		t.Fatal("unlabeled slices wrong")
	}
	// Scores must classify the clusters perfectly: cluster A (even index)
	// has label 1.
	for i, idx := range res.Unlabeled {
		want := 1.0
		if idx%2 == 1 {
			want = 0
		}
		score := res.UnlabeledScores[i]
		if (score > 0.5) != (want == 1) {
			t.Fatalf("point %d misclassified: score %v, want class %v", idx, score, want)
		}
	}
	if res.Lambda != 0 {
		t.Fatal("default must be hard criterion")
	}
	if res.Bandwidth <= 0 {
		t.Fatal("bandwidth not reported")
	}
	if res.GraphStats.Nodes != len(x) {
		t.Fatal("graph stats missing")
	}
}

func TestFitHardInterpolatesLabels(t *testing.T) {
	x, y := twoClusters(3, 20, 8)
	res, err := Fit(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range res.Labeled {
		if res.Scores[l] != y[i] {
			t.Fatalf("hard criterion must interpolate: score[%d] = %v, y = %v", l, res.Scores[l], y[i])
		}
	}
}

func TestFitSoftLambda(t *testing.T) {
	x, y := twoClusters(5, 20, 8)
	res, err := Fit(x, y, nil, WithLambda(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Lambda != 0.5 {
		t.Fatal("lambda not recorded")
	}
	shrunk := false
	for i, l := range res.Labeled {
		if math.Abs(res.Scores[l]-y[i]) > 1e-9 {
			shrunk = true
		}
	}
	if !shrunk {
		t.Fatal("soft criterion should shrink labeled fits")
	}
}

func TestFitHardBeatsLargeLambdaOnAUC(t *testing.T) {
	// The paper's headline: λ=0 gives the best ranking.
	x, y := twoClusters(7, 40, 16)
	truth := make([]float64, 0, len(x)-16)
	for idx := 16; idx < len(x); idx++ {
		want := 1.0
		if idx%2 == 1 {
			want = 0
		}
		truth = append(truth, want)
	}
	hard, err := Fit(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	soft, err := Fit(x, y, nil, WithLambda(5))
	if err != nil {
		t.Fatal(err)
	}
	aucHard, err := stats.AUC(hard.UnlabeledScores, truth)
	if err != nil {
		t.Fatal(err)
	}
	aucSoft, err := stats.AUC(soft.UnlabeledScores, truth)
	if err != nil {
		t.Fatal(err)
	}
	if aucHard < aucSoft-1e-12 {
		t.Fatalf("hard AUC %v below soft AUC %v", aucHard, aucSoft)
	}
}

func TestFitExplicitLabeledIndices(t *testing.T) {
	x, _ := twoClusters(9, 15, 2)
	labeled := []int{0, 1, 2, 3}
	y := []float64{1, 0, 1, 0}
	res, err := Fit(x, y, labeled)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labeled) != 4 || len(res.Unlabeled) != len(x)-4 {
		t.Fatal("labeled bookkeeping wrong")
	}
}

func TestFitSolverBackendsAgree(t *testing.T) {
	x, y := twoClusters(11, 15, 6)
	ref, err := Fit(x, y, nil, WithSolver(SolverLU))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Solver{SolverAuto, SolverCholesky, SolverCG, SolverPropagation} {
		res, err := Fit(x, y, nil, WithSolver(s), WithTolerance(1e-12))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		for i := range ref.UnlabeledScores {
			if math.Abs(res.UnlabeledScores[i]-ref.UnlabeledScores[i]) > 1e-6 {
				t.Fatalf("%v disagrees with LU at %d", s, i)
			}
		}
	}
}

func TestFitDistributed(t *testing.T) {
	x, y := twoClusters(13, 15, 6)
	ref, err := Fit(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Fit(x, y, nil, WithDistributed(3), WithTolerance(1e-12))
	if err != nil {
		t.Fatal(err)
	}
	if res.Solver != SolverPropagation || res.Iterations <= 0 {
		t.Fatalf("distributed metadata wrong: %+v", res)
	}
	for i := range ref.UnlabeledScores {
		if math.Abs(res.UnlabeledScores[i]-ref.UnlabeledScores[i]) > 1e-6 {
			t.Fatal("distributed result differs from direct solve")
		}
	}
	// Full scores include labels.
	for i, l := range res.Labeled {
		if res.Scores[l] != y[i] {
			t.Fatal("distributed result must interpolate labels")
		}
	}
}

func TestFitDistributedRejectsSoft(t *testing.T) {
	x, y := twoClusters(15, 10, 4)
	if _, err := Fit(x, y, nil, WithDistributed(2), WithLambda(1)); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
}

func TestFitKernelAndBandwidthOptions(t *testing.T) {
	x, y := twoClusters(17, 15, 6)
	res, err := Fit(x, y, nil, WithKernel(Epanechnikov), WithBandwidth(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Bandwidth != 3 {
		t.Fatalf("bandwidth = %v, want 3", res.Bandwidth)
	}
	res2, err := Fit(x, y, nil, WithPaperBandwidth())
	if err != nil {
		t.Fatal(err)
	}
	wantBW := math.Pow(math.Log(6)/6, 0.5) // n=6 labeled, d=2
	if math.Abs(res2.Bandwidth-wantBW) > 1e-12 {
		t.Fatalf("paper bandwidth = %v, want %v", res2.Bandwidth, wantBW)
	}
	res3, err := Fit(x, y, nil, WithMedianBandwidth())
	if err != nil {
		t.Fatal(err)
	}
	if res3.Bandwidth <= 0 {
		t.Fatal("median bandwidth not positive")
	}
}

func TestFitKNNGraph(t *testing.T) {
	x, y := twoClusters(19, 25, 10)
	res, err := Fit(x, y, nil, WithKNN(5))
	if err != nil {
		t.Fatal(err)
	}
	full, err := Fit(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.GraphStats.Edges >= full.GraphStats.Edges {
		t.Fatal("kNN graph must have fewer edges than the full graph")
	}
}

func TestFitValidation(t *testing.T) {
	x, y := twoClusters(21, 10, 4)
	tests := []struct {
		name string
		run  func() error
	}{
		{"no points", func() error { _, err := Fit(nil, y, nil); return err }},
		{"zero dim", func() error { _, err := Fit([][]float64{{}, {}}, []float64{1}, nil); return err }},
		{"ragged dims", func() error {
			_, err := Fit([][]float64{{1, 2}, {1}}, []float64{1}, nil)
			return err
		}},
		{"all labeled default", func() error {
			_, err := Fit(x[:4], []float64{1, 0, 1, 0}, nil)
			return err
		}},
		{"negative lambda", func() error { _, err := Fit(x, y, nil, WithLambda(-1)); return err }},
		{"bad labeled index", func() error { _, err := Fit(x, []float64{1}, []int{99}); return err }},
		{"bad bandwidth", func() error { _, err := Fit(x, y, nil, WithBandwidth(-2)); return err }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.run(); !errors.Is(err, ErrParam) {
				t.Fatalf("want ErrParam, got %v", err)
			}
		})
	}
}

func TestFitIsolatedUnlabeled(t *testing.T) {
	// Uniform kernel with tiny bandwidth: far-away unlabeled point gets no
	// edges at all.
	x := [][]float64{{0}, {0.1}, {100}}
	y := []float64{1, 0}
	_, err := Fit(x, y, nil, WithKernel(Uniform), WithBandwidth(1))
	if !errors.Is(err, ErrIsolated) {
		t.Fatalf("want ErrIsolated, got %v", err)
	}
}

func TestNadarayaWatsonFacade(t *testing.T) {
	x, y := twoClusters(23, 20, 8)
	nw, unl, err := NadarayaWatson(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(nw) != len(x)-8 || len(unl) != len(nw) {
		t.Fatal("NW output shape wrong")
	}
	for i, idx := range unl {
		want := 1.0
		if idx%2 == 1 {
			want = 0
		}
		if (nw[i] > 0.5) != (want == 1) {
			t.Fatalf("NW misclassified point %d (score %v)", idx, nw[i])
		}
	}
}

func TestNadarayaWatsonFacadeErrors(t *testing.T) {
	if _, _, err := NadarayaWatson(nil, nil, nil); !errors.Is(err, ErrParam) {
		t.Fatal("empty input must error")
	}
	x := [][]float64{{0}, {0.1}, {100}}
	if _, _, err := NadarayaWatson(x, []float64{1, 0}, nil, WithKernel(Uniform), WithBandwidth(1)); !errors.Is(err, ErrIsolated) {
		t.Fatal("isolated point must surface ErrIsolated")
	}
}

// TestFitMatchesNWForSingleUnlabeled mirrors the theory link: with one
// unlabeled point the hard criterion equals Nadaraya–Watson.
func TestFitMatchesNWForSingleUnlabeled(t *testing.T) {
	x, _ := twoClusters(25, 8, 0)
	y := make([]float64, len(x)-1)
	for i := range y {
		if i%2 == 0 {
			y[i] = 1
		}
	}
	res, err := Fit(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	nw, _, err := NadarayaWatson(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.UnlabeledScores[0]-nw[0]) > 1e-10 {
		t.Fatalf("hard %v != NW %v with m=1", res.UnlabeledScores[0], nw[0])
	}
}
