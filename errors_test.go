package graphssl

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/mat"
)

// TestTranslateCoreErr covers every branch of the core→public error map.
func TestTranslateCoreErr(t *testing.T) {
	cases := []struct {
		name string
		in   error
		want error
	}{
		{"isolated", fmt.Errorf("core: node cut off: %w", core.ErrIsolated), ErrIsolated},
		{"singular", fmt.Errorf("solve: %w", mat.ErrSingular), ErrIsolated},
		{"param", fmt.Errorf("core: bad k: %w", core.ErrParam), ErrParam},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := translateCoreErr(tc.in)
			if !errors.Is(got, tc.want) {
				t.Fatalf("translateCoreErr(%v) = %v, want %v", tc.in, got, tc.want)
			}
			// The original cause stays readable in the message but the
			// core sentinel must not leak as the match target.
			if tc.want == ErrParam && errors.Is(got, ErrIsolated) {
				t.Fatalf("param error matched ErrIsolated: %v", got)
			}
		})
	}
	t.Run("default", func(t *testing.T) {
		cause := errors.New("something else")
		got := translateCoreErr(cause)
		if !errors.Is(got, cause) {
			t.Fatalf("default branch lost the cause: %v", got)
		}
		if errors.Is(got, ErrParam) || errors.Is(got, ErrIsolated) {
			t.Fatalf("default branch gained a sentinel: %v", got)
		}
	})
}

// TestFitDuplicateLabeled checks the fail-fast labeled-set validation in
// prepare: duplicates and out-of-range indices return typed ErrParam before
// any graph work happens.
func TestFitDuplicateLabeled(t *testing.T) {
	x, _ := twoClusters(17, 10, 4)
	y := []float64{1, 0, 1}
	if _, err := Fit(x, y, []int{0, 3, 0}); !errors.Is(err, ErrParam) {
		t.Fatalf("duplicate labeled: %v", err)
	}
	if _, err := Fit(x, y, []int{0, 1, len(x)}); !errors.Is(err, ErrParam) {
		t.Fatalf("out-of-range labeled: %v", err)
	}
	if _, err := Fit(x, y, []int{0, 1, -1}); !errors.Is(err, ErrParam) {
		t.Fatalf("negative labeled: %v", err)
	}
	if _, _, err := NadarayaWatson(x, y, []int{2, 2, 3}); !errors.Is(err, ErrParam) {
		t.Fatalf("duplicate labeled (NW): %v", err)
	}
}

// TestResultAccessorsEmptyUnlabeled checks the accessors on a Result whose
// unlabeled set is empty: slice-returning accessors yield empty slices, and
// the metric accessors return errors instead of NaN or panics.
func TestResultAccessorsEmptyUnlabeled(t *testing.T) {
	r := &Result{
		Scores:          []float64{1, 0, 1},
		Labeled:         []int{0, 1, 2},
		Unlabeled:       []int{},
		UnlabeledScores: []float64{},
	}
	if got := r.Classify(0.5); len(got) != 0 {
		t.Fatalf("Classify = %v", got)
	}
	ls := r.LabeledScores()
	if len(ls) != 3 || ls[0] != 1 || ls[1] != 0 || ls[2] != 1 {
		t.Fatalf("LabeledScores = %v", ls)
	}
	if _, err := r.AUC([]float64{}); err == nil {
		t.Fatal("AUC on empty unlabeled set: no error")
	}
	if _, err := r.RMSE([]float64{}); err == nil {
		t.Fatal("RMSE on empty unlabeled set: no error")
	}
	if _, err := r.Accuracy([]float64{}); err == nil {
		t.Fatal("Accuracy on empty unlabeled set: no error")
	}
}

// TestLabeledScoresHardCriterion checks that under the hard criterion the
// labeled scores are exactly the observed responses — the property that
// makes labeled-anchor serving bitwise-identical to the NW baseline.
func TestLabeledScoresHardCriterion(t *testing.T) {
	x, y := twoClusters(19, 20, 8)
	labeled := []int{3, 0, 9, 14, 7, 21, 2, 35}
	res, err := Fit(x, y, labeled)
	if err != nil {
		t.Fatal(err)
	}
	ls := res.LabeledScores()
	for i := range labeled {
		if math.Float64bits(ls[i]) != math.Float64bits(y[i]) {
			t.Fatalf("labeled %d: score %v != response %v", labeled[i], ls[i], y[i])
		}
	}
}

// TestSnapshot covers the serving export hook.
func TestSnapshot(t *testing.T) {
	x, y := twoClusters(23, 15, 6)
	res, err := Fit(x, y, nil, WithBandwidth(1.0))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := res.Snapshot(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Dim() != 2 || snap.Kernel != Gaussian || snap.Bandwidth != 1.0 || snap.KNN != 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if len(snap.X) != len(x) || len(snap.Scores) != len(res.Scores) || len(snap.Labeled) != 6 {
		t.Fatalf("snapshot sizes: %d %d %d", len(snap.X), len(snap.Scores), len(snap.Labeled))
	}
	// Deep copy: mutating the originals must not alias into the snapshot.
	x[0][0] = 99
	y[0] = 99
	if snap.X[0][0] == 99 || snap.Y[0] == 99 {
		t.Fatal("snapshot aliases caller data")
	}

	// Mismatched data is rejected.
	if _, err := res.Snapshot(x[:3], y); !errors.Is(err, ErrParam) {
		t.Fatalf("short x: %v", err)
	}
	if _, err := res.Snapshot(x, y[:2]); !errors.Is(err, ErrParam) {
		t.Fatalf("short y: %v", err)
	}
	bad := make([][]float64, len(x))
	copy(bad, x)
	bad[1] = []float64{math.NaN(), 0}
	if _, err := res.Snapshot(bad, y); !errors.Is(err, ErrParam) {
		t.Fatalf("NaN point: %v", err)
	}

	// FitGraph results carry no kernel, so no inductive extension exists.
	empty := &Result{Scores: res.Scores, Labeled: res.Labeled}
	if _, err := empty.Snapshot(x, y); !errors.Is(err, ErrParam) {
		t.Fatalf("kernel-less result: %v", err)
	}
}
