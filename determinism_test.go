package graphssl

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/kernel"
)

// fitEqual asserts two results agree bitwise on every score.
func fitEqual(t *testing.T, name string, ref, got *Result) {
	t.Helper()
	if len(got.Scores) != len(ref.Scores) {
		t.Fatalf("%s: %d scores, want %d", name, len(got.Scores), len(ref.Scores))
	}
	for i := range ref.Scores {
		if got.Scores[i] != ref.Scores[i] {
			t.Fatalf("%s: score %d = %v, want %v (must be bitwise-identical)", name, i, got.Scores[i], ref.Scores[i])
		}
	}
	for i := range ref.UnlabeledScores {
		if got.UnlabeledScores[i] != ref.UnlabeledScores[i] {
			t.Fatalf("%s: unlabeled score %d differs", name, i)
		}
	}
	if got.GraphStats != ref.GraphStats {
		t.Fatalf("%s: graph stats %+v, want %+v", name, got.GraphStats, ref.GraphStats)
	}
}

// TestFitDeterministicAcrossWorkers is the determinism suite of the
// parallel compute layer: Fit output must be identical for
// WithWorkers(1), WithWorkers(4), and WithWorkers(GOMAXPROCS) on both
// Gaussian and Epanechnikov graphs, across solver backends and criteria.
func TestFitDeterministicAcrossWorkers(t *testing.T) {
	x, y := twoClusters(47, 30, 10)
	cases := []struct {
		name string
		opts []Option
	}{
		{"gaussian-hard", []Option{WithKernel(Gaussian)}},
		{"gaussian-knn-soft", []Option{WithKernel(Gaussian), WithKNN(8), WithLambda(0.1)}},
		{"gaussian-cg", []Option{WithKernel(Gaussian), WithSolver(SolverCG)}},
		{"gaussian-propagation", []Option{WithKernel(Gaussian), WithSolver(SolverPropagation)}},
		{"epanechnikov-hard", []Option{WithKernel(Epanechnikov), WithBandwidth(3)}},
		{"epanechnikov-knn", []Option{WithKernel(Epanechnikov), WithBandwidth(3), WithKNN(8)}},
	}
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, tc := range cases {
		var ref *Result
		for _, w := range workerCounts {
			res, err := Fit(x, y, nil, append([]Option{WithWorkers(w)}, tc.opts...)...)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.name, w, err)
			}
			if ref == nil {
				ref = res
				continue
			}
			fitEqual(t, tc.name, ref, res)
		}
	}
}

// TestMulticlassDeterministicAcrossWorkers extends the suite to the
// one-vs-rest path, whose per-class solves run in parallel.
func TestMulticlassDeterministicAcrossWorkers(t *testing.T) {
	x, _ := twoClusters(53, 24, 8)
	labels := make([]int, 12)
	for i := range labels {
		labels[i] = i % 3
	}
	var ref *MulticlassResult
	for _, w := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		res, err := FitMulticlass(x, labels, nil, true, WithWorkers(w))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		for i := range ref.Predicted {
			if res.Predicted[i] != ref.Predicted[i] {
				t.Fatalf("workers=%d: prediction %d differs", w, i)
			}
		}
		rr, rc := ref.Scores.Dims()
		for i := 0; i < rr; i++ {
			for j := 0; j < rc; j++ {
				if res.Scores.At(i, j) != ref.Scores.At(i, j) {
					t.Fatalf("workers=%d: score (%d,%d) differs (must be bitwise-identical)", w, i, j)
				}
			}
		}
	}
}

// TestFitDeterministicAcrossIndexBackends extends the determinism suite
// across construction backends: the fitted scores must be bitwise-identical
// whether the similarity graph is built brute-force from the distance
// matrix, through the grid cell-list, or through the KD-tree, at every
// worker count.
func TestFitDeterministicAcrossIndexBackends(t *testing.T) {
	x, y := twoClusters(61, 40, 12)
	cases := []struct {
		name  string
		k     *kernel.K
		kinds []graph.IndexKind
		opts  []graph.Option
	}{
		{"epanechnikov-radius", kernel.MustNew(kernel.Epanechnikov, 3.0),
			[]graph.IndexKind{graph.IndexGrid, graph.IndexKDTree}, nil},
		{"gaussian-eps", kernel.MustNew(kernel.Gaussian, 2.0),
			[]graph.IndexKind{graph.IndexGrid, graph.IndexKDTree},
			[]graph.Option{graph.WithEpsilon(3.5)}},
		{"gaussian-knn", kernel.MustNew(kernel.Gaussian, 2.0),
			[]graph.IndexKind{graph.IndexKDTree},
			[]graph.Option{graph.WithKNN(6)}},
	}
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, tc := range cases {
		fit := func(kind graph.IndexKind, workers int) *Result {
			t.Helper()
			opts := append([]graph.Option{graph.WithIndex(kind), graph.WithWorkers(workers)}, tc.opts...)
			b, err := graph.NewBuilder(tc.k, opts...)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			g, err := b.Build(x)
			if err != nil {
				t.Fatalf("%s index=%v: %v", tc.name, kind, err)
			}
			res, err := FitGraph(g.Weights(), y, nil, WithWorkers(workers))
			if err != nil {
				t.Fatalf("%s index=%v: %v", tc.name, kind, err)
			}
			return res
		}
		ref := fit(graph.IndexBrute, 1)
		for _, kind := range tc.kinds {
			for _, w := range workerCounts {
				fitEqual(t, tc.name, ref, fit(kind, w))
			}
		}
	}
}

// TestConcurrentFitSharedDistances is the race stress test: many goroutines
// build graphs from one shared prebuilt distance matrix and solve
// concurrently with different worker counts (run under -race; the Makefile
// ci target does).
func TestConcurrentFitSharedDistances(t *testing.T) {
	x, y := twoClusters(59, 25, 8)
	d2, err := kernel.PairwiseDist2(x)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.MustNew(kernel.Gaussian, 2.0)

	// Reference solution from the shared matrix.
	refBuilder, err := graph.NewBuilder(k, graph.WithKNN(6), graph.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	refGraph, err := refBuilder.BuildFromDist2(len(x), d2)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := FitGraph(refGraph.Weights(), y, nil)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	results := make([]*Result, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			workers := 1 + gi%4
			b, err := graph.NewBuilder(k, graph.WithKNN(6), graph.WithWorkers(workers))
			if err != nil {
				errs[gi] = err
				return
			}
			g, err := b.BuildFromDist2(len(x), d2)
			if err != nil {
				errs[gi] = err
				return
			}
			res, err := FitGraph(g.Weights(), y, nil, WithWorkers(workers))
			results[gi], errs[gi] = res, err
		}(gi)
	}
	wg.Wait()
	for gi := 0; gi < goroutines; gi++ {
		if errs[gi] != nil {
			t.Fatalf("goroutine %d: %v", gi, errs[gi])
		}
		for i := range ref.UnlabeledScores {
			if results[gi].UnlabeledScores[i] != ref.UnlabeledScores[i] {
				t.Fatalf("goroutine %d (workers=%d) diverged at score %d", gi, 1+gi%4, i)
			}
		}
	}
}
