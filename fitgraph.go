package graphssl

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sparse"
)

// FitGraph solves the selected criterion on a caller-supplied similarity
// matrix instead of building a graph from points — the entry point for
// non-vector data (strings, sequences, precomputed kernels). w must be
// symmetric with non-negative entries; labeled and y follow the same
// conventions as Fit (labeled = nil labels the first len(y) nodes).
//
// Kernel and bandwidth options are ignored (the graph is given); λ and
// solver options apply.
func FitGraph(w *sparse.CSR, y []float64, labeled []int, opts ...Option) (*Result, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o.apply(&cfg)
	}
	if cfg.lambda < 0 {
		return nil, fmt.Errorf("graphssl: λ=%v: %w", cfg.lambda, ErrParam)
	}
	g, err := graph.FromWeights(w)
	if err != nil {
		return nil, fmt.Errorf("graphssl: %w: %v", ErrParam, err)
	}
	if labeled == nil {
		if len(y) >= g.N() {
			return nil, fmt.Errorf("graphssl: %d responses for %d nodes leaves nothing unlabeled: %w", len(y), g.N(), ErrParam)
		}
		labeled = make([]int, len(y))
		for i := range labeled {
			labeled[i] = i
		}
	}
	p, err := core.NewProblem(g, labeled, y)
	if err != nil {
		return nil, fmt.Errorf("graphssl: %w: %v", ErrParam, err)
	}
	sol, err := core.SolveSoft(p, cfg.lambda,
		core.WithMethod(cfg.solver),
		core.WithTolerance(cfg.tol),
		core.WithMaxIter(cfg.maxIter),
		core.WithWorkers(cfg.workers))
	if err != nil {
		return nil, translateCoreErr(err)
	}
	return &Result{
		Scores:          sol.F,
		Labeled:         p.Labeled(),
		Unlabeled:       p.Unlabeled(),
		UnlabeledScores: sol.FUnlabeled,
		Lambda:          cfg.lambda,
		Solver:          sol.Method,
		Iterations:      sol.Iterations,
		Residual:        sol.Residual,
		GraphStats:      g.Summary(),
	}, nil
}
