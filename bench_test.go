package graphssl

// Benchmark harness: one benchmark per table/figure of the paper (Figures
// 1–5; the paper has no numbered tables) plus ablation benches for the
// design choices called out in DESIGN.md. Each figure bench runs its
// experiment end-to-end at reduced scale per iteration — the shapes
// (orderings, trends) match the paper; absolute timings document the cost
// of regenerating each figure.
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/cluster"
	"repro/internal/coil"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/randx"
	"repro/internal/synth"
)

// benchSynthetic runs one scaled-down synthetic figure per iteration.
func benchSynthetic(b *testing.B, cfg experiments.SyntheticConfig, name string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := experiments.RunSynthetic(name, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Series) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkFig1 regenerates Figure 1 (Model 1, m=30, n sweep) at reduced
// scale: a truncated n grid and few replications per iteration.
func BenchmarkFig1(b *testing.B) {
	cfg := experiments.Fig1Config(3, 1)
	cfg.SweepN = []int{10, 30, 50, 100, 200}
	benchSynthetic(b, cfg, "fig1")
}

// BenchmarkFig2 regenerates Figure 2 (Model 1, n=100, m sweep).
func BenchmarkFig2(b *testing.B) {
	cfg := experiments.Fig2Config(3, 1)
	cfg.SweepM = []int{30, 60, 100, 300}
	benchSynthetic(b, cfg, "fig2")
}

// BenchmarkFig3 regenerates Figure 3 (Model 2, m=30, n sweep).
func BenchmarkFig3(b *testing.B) {
	cfg := experiments.Fig3Config(3, 1)
	cfg.SweepN = []int{10, 30, 50, 100, 200}
	benchSynthetic(b, cfg, "fig3")
}

// BenchmarkFig4 regenerates Figure 4 (Model 2, n=100, m sweep).
func BenchmarkFig4(b *testing.B) {
	cfg := experiments.Fig4Config(3, 1)
	cfg.SweepM = []int{30, 60, 100, 300}
	benchSynthetic(b, cfg, "fig4")
}

// BenchmarkFig5 regenerates Figure 5 (COIL-like AUC across λ and splits) at
// reduced scale (30 images per class, one repetition).
func BenchmarkFig5(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := experiments.Fig5DefaultCfg(30, 1, int64(i+1))
		res, err := experiments.RunFig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.AUC) == 0 {
			b.Fatal("empty result")
		}
	}
}

// benchProblem builds a reusable synthetic hard-criterion problem.
func benchProblem(b *testing.B, n, m int, knn int) *core.Problem {
	b.Helper()
	rng := randx.New(99)
	ds, err := synth.Generate(rng, synth.Model1, n, m)
	if err != nil {
		b.Fatal(err)
	}
	h, err := kernel.PaperBandwidth(n, synth.Dim)
	if err != nil {
		b.Fatal(err)
	}
	k, err := kernel.New(kernel.Gaussian, h)
	if err != nil {
		b.Fatal(err)
	}
	var opts []graph.Option
	if knn > 0 {
		opts = append(opts, graph.WithKNN(knn))
	}
	builder, err := graph.NewBuilder(k, opts...)
	if err != nil {
		b.Fatal(err)
	}
	g, err := builder.Build(ds.X)
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.NewProblemLabeledFirst(g, ds.YLabeled())
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkHardSolvers ablates the hard-criterion backend: dense Cholesky
// vs LU vs sparse CG vs iterative propagation (Proposition II.1's O(m³)
// advantage shows in the m-dependence).
func BenchmarkHardSolvers(b *testing.B) {
	p := benchProblem(b, 200, 100, 0)
	for _, m := range []core.Method{core.MethodCholesky, core.MethodLU, core.MethodCG, core.MethodPropagation} {
		b.Run(m.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.SolveHard(p, core.WithMethod(m)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHardVsSoftComplexity contrasts the hard criterion's m×m solve
// (Eq. 5, O(m³)) with the soft criterion's (n+m)×(n+m) solve (Eq. 4,
// O((n+m)³)) — the computational advantage the paper notes after
// Proposition II.1.
func BenchmarkHardVsSoftComplexity(b *testing.B) {
	p := benchProblem(b, 400, 60, 0)
	b.Run("hard-m3", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.SolveHard(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("soft-nm3", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.SolveSoft(p, 0.1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLambdaPath measures the λ-path evaluation used by every figure.
func BenchmarkLambdaPath(b *testing.B) {
	p := benchProblem(b, 150, 50, 0)
	lams := []float64{0, 0.01, 0.1, 5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.LambdaPath(p, lams); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHardVsNW compares the full hard solve against the
// Nadaraya–Watson estimator it converges to (Theorem II.1).
func BenchmarkHardVsNW(b *testing.B) {
	p := benchProblem(b, 300, 50, 0)
	b.Run("hard", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.SolveHard(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nw", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.NadarayaWatson(p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGraphConstruction ablates full-graph vs k-NN construction.
func BenchmarkGraphConstruction(b *testing.B) {
	rng := randx.New(7)
	ds, err := synth.Generate(rng, synth.Model1, 300, 100)
	if err != nil {
		b.Fatal(err)
	}
	k := kernel.MustNew(kernel.Gaussian, 0.5)
	for _, knn := range []int{0, 10} {
		name := "full"
		if knn > 0 {
			name = fmt.Sprintf("knn%d", knn)
		}
		b.Run(name, func(b *testing.B) {
			var opts []graph.Option
			if knn > 0 {
				opts = append(opts, graph.WithKNN(knn))
			}
			builder, err := graph.NewBuilder(k, opts...)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := builder.Build(ds.X); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKernels ablates the kernel profiles on graph construction
// (compact-support kernels yield sparser graphs and obey Theorem II.1's
// conditions).
func BenchmarkKernels(b *testing.B) {
	rng := randx.New(9)
	ds, err := synth.Generate(rng, synth.Model1, 200, 50)
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range []kernel.Kind{kernel.Gaussian, kernel.Uniform, kernel.Epanechnikov, kernel.Tricube} {
		b.Run(kind.String(), func(b *testing.B) {
			builder, err := graph.NewBuilder(kernel.MustNew(kind, 0.6))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := builder.Build(ds.X); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDistributedPropagation ablates serial vs partitioned propagation
// (the cluster engine with growing worker counts).
func BenchmarkDistributedPropagation(b *testing.B) {
	p := benchProblem(b, 200, 200, 15)
	sys, err := core.BuildPropagationSystem(p)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := cluster.SolveLocal(sys, cluster.LocalOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchWorkerCounts are the worker-count axis of the parallel-layer
// benchmarks. On a multicore host the higher counts should approach linear
// scaling; on GOMAXPROCS=1 they document the (small) scheduling overhead.
var benchWorkerCounts = []int{1, 2, 4, runtime.GOMAXPROCS(0)}

// benchPoints draws a deterministic point cloud for the parallel benches.
func benchPoints(n, d int, seed int64) [][]float64 {
	rng := randx.New(seed)
	x := make([][]float64, n)
	for i := range x {
		x[i] = make([]float64, d)
		for j := range x[i] {
			x[i][j] = rng.Norm()
		}
	}
	return x
}

// BenchmarkPairwiseDist2 measures the O(n²d) distance pass at the
// acceptance-criteria shape (n=2000, d=50) across worker counts.
func BenchmarkPairwiseDist2(b *testing.B) {
	x := benchPoints(2000, 50, 61)
	for _, w := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := kernel.PairwiseDist2Workers(x, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBuildKNN measures k-NN graph construction from a prebuilt
// distance matrix (n=2000, k=10): quickselect partial selection plus
// deterministic symmetrization and direct CSR assembly.
func BenchmarkBuildKNN(b *testing.B) {
	x := benchPoints(2000, 50, 67)
	d2, err := kernel.PairwiseDist2(x)
	if err != nil {
		b.Fatal(err)
	}
	k := kernel.MustNew(kernel.Gaussian, 1.0)
	for _, w := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			builder, err := graph.NewBuilder(k, graph.WithKNN(10), graph.WithWorkers(w))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := builder.BuildFromDist2(len(x), d2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCGMulVec measures the sparse matrix-vector product and the CG
// solve it drives (the inner loop of every iterative hard/soft solve)
// across worker counts, on a k-NN Laplacian system.
func BenchmarkCGMulVec(b *testing.B) {
	p := benchProblem(b, 300, 1200, 12)
	sys, err := core.BuildPropagationSystem(p)
	if err != nil {
		b.Fatal(err)
	}
	m := sys.M()
	xv := make([]float64, m)
	for i := range xv {
		xv[i] = float64(i%7) * 0.25
	}
	dst := make([]float64, m)
	for _, w := range benchWorkerCounts {
		b.Run(fmt.Sprintf("mulvec/workers%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := sys.W.MulVecToWorkers(dst, xv, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, w := range benchWorkerCounts {
		b.Run(fmt.Sprintf("cg/workers%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.SolveHard(p, core.WithMethod(core.MethodCG), core.WithWorkers(w)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCOILGeneration measures the synthetic benchmark renderer.
func BenchmarkCOILGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := coil.GenerateSized(int64(i+1), 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFitFacade measures the public API end to end.
func BenchmarkFitFacade(b *testing.B) {
	rng := randx.New(21)
	x := make([][]float64, 150)
	for i := range x {
		x[i] = []float64{rng.Norm(), rng.Norm(), rng.Norm()}
	}
	y := make([]float64, 50)
	for i := range y {
		y[i] = rng.Bernoulli(0.5)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(x, y, nil); err != nil {
			b.Fatal(err)
		}
	}
}
