GO ?= go

.PHONY: all build test race race-concurrency vet ci bench perfbench

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Focused race pass over the concurrency-heavy packages (spatial indexes,
# graph construction, parallel primitives), run twice to vary interleavings.
race-concurrency:
	$(GO) test -race -count=2 ./internal/spatial/... ./internal/graph/... ./internal/parallel/...

# The gate run by CI and expected to pass before every commit.
ci: vet build race

# Worker-parameterized microbenchmarks of the parallel compute layer.
bench:
	$(GO) test -run xxx -bench 'BenchmarkPairwiseDist2|BenchmarkBuildKNN|BenchmarkCGMulVec' -benchmem .

# Times the parallel layer against the pre-parallel serial baselines and
# records the comparison under results/.
perfbench:
	$(GO) run ./cmd/perfbench -out results/BENCH_parallel.json
	$(GO) run ./cmd/perfbench -suite spatial -out results/BENCH_spatial.json
