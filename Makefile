GO ?= go

.PHONY: all build test race vet ci bench perfbench

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The gate run by CI and expected to pass before every commit.
ci: vet build race

# Worker-parameterized microbenchmarks of the parallel compute layer.
bench:
	$(GO) test -run xxx -bench 'BenchmarkPairwiseDist2|BenchmarkBuildKNN|BenchmarkCGMulVec' -benchmem .

# Times the parallel layer against the pre-parallel serial baselines and
# records the comparison under results/.
perfbench:
	$(GO) run ./cmd/perfbench -out results/BENCH_parallel.json
