GO ?= go

.PHONY: all build test race race-concurrency vet ci bench perfbench serve-bench cluster-bench largen-bench stream-bench fuzz fuzz-stream fuzz-smoke cover alloc-gate serve-smoke cluster-smoke distributed-smoke largen-smoke stream-smoke

# Coverage ratchet: global statement coverage must not fall below this floor
# (current coverage minus a 1% buffer). Raise it as coverage grows.
COVER_FLOOR ?= 83.5

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Focused race pass over the concurrency-heavy packages (spatial indexes,
# graph construction, parallel primitives, the distributed cluster layer
# with its fault-injection harness, the approximate engine's worker paths,
# and the streaming ingest subsystem), run twice to vary interleavings.
# The second line exercises the serve-side ingest worker: concurrent
# predicts against delta-snapshot hot swaps.
race-concurrency:
	$(GO) test -race -count=2 ./internal/spatial/... ./internal/graph/... ./internal/parallel/... ./internal/cluster/... ./internal/approx/... ./stream/...
	$(GO) test -race -count=2 -run 'TestIngest|TestRegistryRollForward' ./serve/

# Allocation-regression gate: the warm PCG/CG solve path (pooled workspace
# + held destination), the serving predict hot path (pooled scratch, pooled
# batcher jobs), the steady-state distributed superstep (pooled message
# and vector buffers), the approximate engine's warm certificate
# evaluation, and the streaming warm label-refresh path must stay at
# exactly zero heap allocations per op.
alloc-gate:
	$(GO) test -run 'TestZeroAllocSolve' -v ./internal/sparse/ ./internal/precond/
	$(GO) test -run 'TestZeroAlloc' -v ./internal/core/ ./serve/ ./internal/cluster/ ./internal/approx/ ./stream/

# The gate run by CI's test job; the fuzz-smoke and coverage jobs run their
# targets separately.
ci: vet build race alloc-gate

# Full fuzz campaign for the public Fit pipeline (interrupt any time; new
# crashers land in testdata/fuzz/FuzzFit/).
FUZZTIME ?= 5m
fuzz:
	$(GO) test -run xxx -fuzz FuzzFit -fuzztime $(FUZZTIME) .

# Full fuzz campaign for the streaming equivalence contract: random edit
# scripts (insert / delete / relabel / refresh / compact) asserted bitwise
# against a from-scratch fit; crashers land in
# stream/testdata/fuzz/FuzzStreamEquivalence/.
fuzz-stream:
	$(GO) test -run xxx -fuzz FuzzStreamEquivalence -fuzztime $(FUZZTIME) ./stream/

# Short deterministic-budget fuzz pass for CI: replays the checked-in
# corpora (including the pinned streaming crashers) and fuzzes briefly.
fuzz-smoke:
	$(GO) test -run FuzzFit .
	$(GO) test -run xxx -fuzz FuzzFit -fuzztime 15s .
	$(GO) test -run FuzzStreamEquivalence ./stream/
	$(GO) test -run xxx -fuzz FuzzStreamEquivalence -fuzztime 15s ./stream/

# Global statement coverage with the ratcheted floor check.
cover:
	$(GO) test -count=1 -coverprofile=coverage.out -coverpkg=./... ./...
	@$(GO) tool cover -func=coverage.out | tail -1
	@total=$$($(GO) tool cover -func=coverage.out | tail -1 | grep -o '[0-9.]*%' | tr -d '%'); \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { \
		if (t+0 < f+0) { printf "coverage %.1f%% fell below floor %.1f%%\n", t, f; exit 1 } \
		printf "coverage %.1f%% >= floor %.1f%%\n", t, f }'

# Worker-parameterized microbenchmarks of the parallel compute layer.
bench:
	$(GO) test -run xxx -bench 'BenchmarkPairwiseDist2|BenchmarkBuildKNN|BenchmarkCGMulVec' -benchmem .

# Times the parallel layer against the pre-parallel serial baselines and
# records the comparison under results/.
perfbench:
	$(GO) run ./cmd/perfbench -out results/BENCH_parallel.json
	$(GO) run ./cmd/perfbench -suite spatial -out results/BENCH_spatial.json
	$(GO) run ./cmd/perfbench -suite robust -out results/BENCH_robust.json
	$(GO) run ./cmd/perfbench -suite serve -out results/BENCH_serve.json
	$(GO) run ./cmd/perfbench -suite cluster -repeats 1 -out results/BENCH_cluster.json

# Refreshes just the serving-path load test (batched x cached grid over
# 1/4/16/64 clients) after hot-path changes.
serve-bench:
	$(GO) run ./cmd/perfbench -suite serve -out results/BENCH_serve.json

# Refreshes just the distributed suite: the n=1M sharded fit over 4 local
# TCP workers (bitwise-asserted across shard counts 1/2/4/8) plus predict
# load through the 3-replica consistent-hash router.
cluster-bench:
	$(GO) run ./cmd/perfbench -suite cluster -repeats 1 -out results/BENCH_cluster.json

# Refreshes the approximate large-n suite: bound-vs-actual at exact-comparable
# sizes (the suite aborts if the certified bound ever falls below the measured
# error) plus the headline n=5M single-machine fit+serve.
largen-bench:
	$(GO) run ./cmd/perfbench -suite largen -repeats 1 -out results/BENCH_largen.json

# Refreshes the streaming suite: the real-time 1k points/sec trickle with
# p50/p99 label-to-servable staleness, plus the incremental-refresh vs
# full-refit comparison (bitwise-asserted on every scenario).
stream-bench:
	$(GO) run ./cmd/perfbench -suite stream -stsecs 5 -out results/BENCH_stream.json

# CI-sized largen run: same pipeline and bound assertion, small enough for a
# shared runner (no 5M headline case; lcmp ladder only).
largen-smoke:
	$(GO) run ./cmd/perfbench -suite largen -ln 0 -lcmp 40000 -llab 200 -lknn 8 -repeats 1 -out /tmp/BENCH_largen_smoke.json

# End-to-end smoke of the serving subsystem: boots sslserve on a free port,
# fits a model over HTTP, runs a batched predict, checks /readyz, and drains
# on the SIGTERM path.
serve-smoke:
	$(GO) test -count=1 -run TestServeSmoke -v ./cmd/sslserve/

# End-to-end smoke of the distributed subsystem: the determinism and
# fault-injection harnesses plus the replicated-fleet boot path (sslserve
# -replicas 3 over HTTP) and the public cluster API surface.
cluster-smoke:
	$(GO) test -count=1 -run 'TestSolvePCG|TestCrash|TestSlow|TestDropped|TestDuplicate|TestAllWorkersCrash' -v ./internal/cluster/...
	$(GO) test -count=1 -run TestFleetSmoke -v ./cmd/sslserve/
	$(GO) test -count=1 -run 'TestFitWithClusterShards|TestFitDistributedTCPFleet|TestClusterRecovery|TestClusterFailureTyped' -v .

# End-to-end smoke of the streaming ingest subsystem: the incremental
# equivalence and escalation-ladder tests in stream/, the delta snapshot
# roll-forward math, the HTTP /v1/ingest path (fit with "stream": true,
# ingest, version bump, cache invalidation, backpressure), and the
# registry hot-swap-under-load test.
stream-smoke:
	$(GO) test -count=1 -run 'TestStream|TestZeroAllocStream' -v ./stream/
	$(GO) test -count=1 -run 'TestIngest|TestModelApplyDelta|TestRegistryRollForward' -v ./serve/

# Runs the distributed example end to end: in-process and TCP fleets solving
# the same problem, bitwise-identical across shard counts and transports.
distributed-smoke:
	$(GO) run ./examples/distributed
