package synth

import (
	"errors"
	"math"
	"testing"

	"repro/internal/randx"
)

func TestModelString(t *testing.T) {
	if Model1.String() != "model1" || Model2.String() != "model2" {
		t.Fatal("model names wrong")
	}
	if Model(9).String() != "Model(9)" {
		t.Fatal("unknown model name wrong")
	}
}

func TestLogitModel1Known(t *testing.T) {
	x := []float64{1, 0, 0, 0, 0}
	l, err := Model1.Logit(x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l-0.65) > 1e-12 { // −1.35 + 2
		t.Fatalf("logit = %v, want 0.65", l)
	}
	all := []float64{1, 1, 1, 1, 1}
	l, _ = Model1.Logit(all)
	if math.Abs(l-1.65) > 1e-12 { // −1.35+2−1+1−1+2
		t.Fatalf("logit(1..1) = %v, want 1.65", l)
	}
}

func TestLogitModel2AddsInteractions(t *testing.T) {
	x := []float64{0.5, 0.4, 0.3, 0.2, 0.1}
	l1, err := Model1.Logit(x)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := Model2.Logit(x)
	if err != nil {
		t.Fatal(err)
	}
	want := l1 + 0.5*0.3 + 0.4*0.2
	if math.Abs(l2-want) > 1e-12 {
		t.Fatalf("model2 logit = %v, want %v", l2, want)
	}
}

func TestLogitErrors(t *testing.T) {
	if _, err := Model1.Logit([]float64{1, 2}); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	if _, err := Model(7).Logit(make([]float64, Dim)); !errors.Is(err, ErrParam) {
		t.Fatalf("unknown model: want ErrParam, got %v", err)
	}
	if _, err := Model(7).Q(make([]float64, Dim)); !errors.Is(err, ErrParam) {
		t.Fatalf("unknown model Q: want ErrParam, got %v", err)
	}
}

func TestQInUnitInterval(t *testing.T) {
	g := randx.New(301)
	dist, err := randx.NewPaperTruncatedMVN(Dim)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range dist.SampleN(g, 500) {
		for _, m := range []Model{Model1, Model2} {
			q, err := m.Q(x)
			if err != nil {
				t.Fatal(err)
			}
			if q < 0 || q > 1 {
				t.Fatalf("q = %v outside [0,1]", q)
			}
		}
	}
}

func TestGenerateShapes(t *testing.T) {
	g := randx.New(303)
	d, err := Generate(g, Model1, 50, 30)
	if err != nil {
		t.Fatal(err)
	}
	if d.N != 50 || d.M != 30 {
		t.Fatalf("N=%d M=%d", d.N, d.M)
	}
	if len(d.X) != 80 || len(d.Y) != 80 || len(d.Q) != 80 {
		t.Fatal("slice lengths wrong")
	}
	for _, x := range d.X {
		if len(x) != Dim {
			t.Fatal("input dimension wrong")
		}
	}
	for i := range d.Y {
		if d.Y[i] != 0 && d.Y[i] != 1 {
			t.Fatalf("Y[%d] = %v not binary", i, d.Y[i])
		}
		if d.Q[i] < 0 || d.Q[i] > 1 {
			t.Fatalf("Q[%d] = %v", i, d.Q[i])
		}
	}
	if len(d.YLabeled()) != 50 || len(d.QUnlabeled()) != 30 {
		t.Fatal("accessor lengths wrong")
	}
}

func TestGenerateAccessorsAreCopies(t *testing.T) {
	g := randx.New(305)
	d, err := Generate(g, Model1, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	y := d.YLabeled()
	y[0] = 99
	if d.Y[0] == 99 {
		t.Fatal("YLabeled must copy")
	}
	q := d.QUnlabeled()
	q[0] = 99
	if d.Q[d.N] == 99 {
		t.Fatal("QUnlabeled must copy")
	}
}

func TestGenerateValidation(t *testing.T) {
	g := randx.New(307)
	if _, err := Generate(g, Model1, 0, 5); !errors.Is(err, ErrParam) {
		t.Fatal("n=0 must error")
	}
	if _, err := Generate(g, Model1, 5, 0); !errors.Is(err, ErrParam) {
		t.Fatal("m=0 must error")
	}
	if _, err := Generate(g, Model(9), 5, 5); !errors.Is(err, ErrParam) {
		t.Fatal("unknown model must error")
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	d1, err := Generate(randx.New(42), Model2, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Generate(randx.New(42), Model2, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d1.X {
		for k := range d1.X[i] {
			if d1.X[i][k] != d2.X[i][k] {
				t.Fatal("same seed must reproduce inputs")
			}
		}
		if d1.Y[i] != d2.Y[i] {
			t.Fatal("same seed must reproduce responses")
		}
	}
}

func TestGenerateResponseCalibration(t *testing.T) {
	// Empirical P(Y=1) must match mean(Q) closely on a large draw.
	g := randx.New(309)
	d, err := Generate(g, Model1, 4000, 1)
	if err != nil {
		t.Fatal(err)
	}
	var meanQ, meanY float64
	for i := 0; i < d.N; i++ {
		meanQ += d.Q[i]
		meanY += d.Y[i]
	}
	meanQ /= float64(d.N)
	meanY /= float64(d.N)
	if math.Abs(meanQ-meanY) > 0.03 {
		t.Fatalf("mean(Y) = %v vs mean(Q) = %v", meanY, meanQ)
	}
}

func TestGenerateToy(t *testing.T) {
	g := randx.New(311)
	d, err := GenerateToy(g, 20, 10, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range d.X {
		for k, v := range x {
			if v != 0.5 {
				t.Fatalf("X[%d][%d] = %v, want 0.5", i, k, v)
			}
		}
		if d.Q[i] != 0.7 {
			t.Fatalf("Q[%d] = %v", i, d.Q[i])
		}
	}
	if _, err := GenerateToy(g, 0, 1, 0.5); !errors.Is(err, ErrParam) {
		t.Fatal("n=0 must error")
	}
	if _, err := GenerateToy(g, 1, 1, 1.5); !errors.Is(err, ErrParam) {
		t.Fatal("p>1 must error")
	}
}

func TestGenerateRegression(t *testing.T) {
	g := randx.New(313)
	f := func(x []float64) float64 { return x[0] + x[1] }
	d, err := GenerateRegression(g, f, 0.1, 30, 10)
	if err != nil {
		t.Fatal(err)
	}
	var resid float64
	for i := range d.Y {
		resid += math.Abs(d.Y[i] - d.Q[i])
	}
	resid /= float64(len(d.Y))
	// Mean |N(0,0.1²)| ≈ 0.08.
	if resid < 0.01 || resid > 0.3 {
		t.Fatalf("noise level %v implausible", resid)
	}
	// Noiseless variant: Y == Q.
	d2, err := GenerateRegression(g, f, 0, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d2.Y {
		if d2.Y[i] != d2.Q[i] {
			t.Fatal("zero-noise regression must have Y = Q")
		}
	}
}

func TestGenerateRegressionValidation(t *testing.T) {
	g := randx.New(315)
	f := func(x []float64) float64 { return 0 }
	if _, err := GenerateRegression(g, nil, 0.1, 5, 5); !errors.Is(err, ErrParam) {
		t.Fatal("nil f must error")
	}
	if _, err := GenerateRegression(g, f, -1, 5, 5); !errors.Is(err, ErrParam) {
		t.Fatal("negative noise must error")
	}
	if _, err := GenerateRegression(g, f, 0.1, 0, 5); !errors.Is(err, ErrParam) {
		t.Fatal("n=0 must error")
	}
}
