// Package synth generates the synthetic datasets of the paper's Section V-A:
// truncated multivariate normal inputs with logistic binary responses under
// a linear logit (Model 1, Eq. 11) and a non-linear logit (Model 2), plus
// the Section III toy design (identical inputs) and continuous-response
// regression variants used by extension experiments.
package synth

import (
	"errors"
	"fmt"

	"repro/internal/randx"
)

var (
	// ErrParam is returned for invalid generation parameters.
	ErrParam = errors.New("synth: invalid parameter")
)

// Dim is the input dimension of the paper's synthetic studies.
const Dim = 5

// Model identifies a response model.
type Model int

// Available synthetic response models.
const (
	// Model1 uses the paper's linear logit (Eq. 11):
	// logit q(x) = −1.35 + 2x₁ − x₂ + x₃ − x₄ + 2x₅.
	Model1 Model = iota + 1
	// Model2 adds the interaction terms x₁x₃ + x₂x₄ to Model1's logit.
	Model2
)

// String returns the model name.
func (m Model) String() string {
	switch m {
	case Model1:
		return "model1"
	case Model2:
		return "model2"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Logit evaluates the model's logit at x (len(x) must be Dim).
func (m Model) Logit(x []float64) (float64, error) {
	if len(x) != Dim {
		return 0, fmt.Errorf("synth: input dim %d, want %d: %w", len(x), Dim, ErrParam)
	}
	base := -1.35 + 2*x[0] - x[1] + x[2] - x[3] + 2*x[4]
	switch m {
	case Model1:
		return base, nil
	case Model2:
		return base + x[0]*x[2] + x[1]*x[3], nil
	default:
		return 0, fmt.Errorf("synth: unknown model %d: %w", int(m), ErrParam)
	}
}

// Q evaluates the true regression function q(x) = P(Y=1|x) = σ(logit(x)).
func (m Model) Q(x []float64) (float64, error) {
	l, err := m.Logit(x)
	if err != nil {
		return 0, err
	}
	return randx.Logistic(l), nil
}

// Dataset is one synthetic draw: n labeled followed by m unlabeled points.
type Dataset struct {
	// X holds all n+m inputs, labeled first.
	X [][]float64
	// Y holds all n+m binary responses (the last m are "unobserved" and
	// used only for evaluation).
	Y []float64
	// Q holds the true regression function values q(X_i) for all points —
	// the RMSE target on unlabeled data.
	Q []float64
	// N and M are the labeled and unlabeled counts.
	N, M int
}

// YLabeled returns the observed responses (first N).
func (d *Dataset) YLabeled() []float64 {
	out := make([]float64, d.N)
	copy(out, d.Y[:d.N])
	return out
}

// QUnlabeled returns the true regression values on the unlabeled points.
func (d *Dataset) QUnlabeled() []float64 {
	out := make([]float64, d.M)
	copy(out, d.Q[d.N:])
	return out
}

// Generate draws one dataset of n labeled and m unlabeled points from the
// paper's input distribution with the given response model.
func Generate(g *randx.RNG, model Model, n, m int) (*Dataset, error) {
	if n < 1 || m < 1 {
		return nil, fmt.Errorf("synth: n=%d m=%d: %w", n, m, ErrParam)
	}
	dist, err := randx.NewPaperTruncatedMVN(Dim)
	if err != nil {
		return nil, err
	}
	total := n + m
	d := &Dataset{
		X: dist.SampleN(g, total),
		Y: make([]float64, total),
		Q: make([]float64, total),
		N: n,
		M: m,
	}
	for i, x := range d.X {
		q, err := model.Q(x)
		if err != nil {
			return nil, err
		}
		d.Q[i] = q
		d.Y[i] = g.Bernoulli(q)
	}
	return d, nil
}

// GenerateToy draws the Section III toy design: all inputs equal to a
// constant vector, responses i.i.d. Bernoulli(p). The hard criterion's
// solution on this design is exactly the labeled mean (tested against that
// oracle).
func GenerateToy(g *randx.RNG, n, m int, p float64) (*Dataset, error) {
	if n < 1 || m < 1 {
		return nil, fmt.Errorf("synth: n=%d m=%d: %w", n, m, ErrParam)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("synth: p=%v: %w", p, ErrParam)
	}
	total := n + m
	d := &Dataset{
		X: make([][]float64, total),
		Y: make([]float64, total),
		Q: make([]float64, total),
		N: n,
		M: m,
	}
	for i := 0; i < total; i++ {
		x := make([]float64, Dim)
		for k := range x {
			x[k] = 0.5
		}
		d.X[i] = x
		d.Q[i] = p
		d.Y[i] = g.Bernoulli(p)
	}
	return d, nil
}

// RegressionFunc is a continuous-response regression surface.
type RegressionFunc func(x []float64) float64

// GenerateRegression draws a continuous-response dataset Y = f(X) + noise·ε
// over the paper's input distribution, for the regression-case extensions.
func GenerateRegression(g *randx.RNG, f RegressionFunc, noise float64, n, m int) (*Dataset, error) {
	if n < 1 || m < 1 {
		return nil, fmt.Errorf("synth: n=%d m=%d: %w", n, m, ErrParam)
	}
	if f == nil || noise < 0 {
		return nil, fmt.Errorf("synth: bad regression spec: %w", ErrParam)
	}
	dist, err := randx.NewPaperTruncatedMVN(Dim)
	if err != nil {
		return nil, err
	}
	total := n + m
	d := &Dataset{
		X: dist.SampleN(g, total),
		Y: make([]float64, total),
		Q: make([]float64, total),
		N: n,
		M: m,
	}
	for i, x := range d.X {
		d.Q[i] = f(x)
		d.Y[i] = d.Q[i] + noise*g.Norm()
	}
	return d, nil
}
