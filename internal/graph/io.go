package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/sparse"
)

// WriteEdgeList serializes the graph as a plain-text weighted edge list:
// a header line "nodes N" followed by one "i j w" line per undirected edge
// (i < j), plus "loop i w" lines for self-loops. The format round-trips
// through ReadEdgeList and is easy to consume from other tools.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "nodes %d\n", g.N()); err != nil {
		return err
	}
	for i := 0; i < g.N(); i++ {
		cols, vals := g.w.RowNNZ(i)
		for k, j := range cols {
			if vals[k] == 0 {
				continue
			}
			switch {
			case j == i:
				if _, err := fmt.Fprintf(bw, "loop %d %s\n", i, formatWeight(vals[k])); err != nil {
					return err
				}
			case j > i:
				if _, err := fmt.Fprintf(bw, "%d %d %s\n", i, j, formatWeight(vals[k])); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

func formatWeight(v float64) string {
	return strconv.FormatFloat(v, 'g', 17, 64)
}

// ReadEdgeList parses the WriteEdgeList format back into a Graph.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("graph: empty edge list: %w", ErrParam)
	}
	var n int
	if _, err := fmt.Sscanf(strings.TrimSpace(sc.Text()), "nodes %d", &n); err != nil {
		return nil, fmt.Errorf("graph: bad header %q: %w", sc.Text(), ErrParam)
	}
	if n < 0 {
		return nil, fmt.Errorf("graph: negative node count: %w", ErrParam)
	}
	coo := sparse.NewCOO(n, n)
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch {
		case len(fields) == 3 && fields[0] == "loop":
			i, err1 := strconv.Atoi(fields[1])
			wv, err2 := strconv.ParseFloat(fields[2], 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: bad loop: %w", line, ErrParam)
			}
			if err := coo.Add(i, i, wv); err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", line, err)
			}
		case len(fields) == 3:
			i, err1 := strconv.Atoi(fields[0])
			j, err2 := strconv.Atoi(fields[1])
			wv, err3 := strconv.ParseFloat(fields[2], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge: %w", line, ErrParam)
			}
			if i == j {
				return nil, fmt.Errorf("graph: line %d: self-edge must use loop: %w", line, ErrParam)
			}
			if err := coo.AddSym(i, j, wv); err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", line, err)
			}
		default:
			return nil, fmt.Errorf("graph: line %d: %q: %w", line, text, ErrParam)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return FromWeights(coo.ToCSR())
}
