package graph

// Partial selection for the k-NN builder: selectK places the k nearest
// candidates (by squared distance, ties broken by ascending index so the
// selection is a deterministic function of the input) in idx[:k] in O(len)
// expected time, replacing the previous full sort of every row.

// distLess orders candidate indices by (distance, index). Distances come
// from the row of a squared-distance matrix; the index tiebreak makes the
// order strict and total, so the selected set is uniquely determined.
func distLess(dist []float64, a, b int) bool {
	da, db := dist[a], dist[b]
	if da != db {
		return da < db
	}
	return a < b
}

// partitionDist partitions idx[lo..hi] around a median-of-three pivot and
// returns the pivot's final position. Deterministic: no random pivoting.
func partitionDist(dist []float64, idx []int, lo, hi int) int {
	mid := lo + (hi-lo)/2
	if distLess(dist, idx[mid], idx[lo]) {
		idx[mid], idx[lo] = idx[lo], idx[mid]
	}
	if distLess(dist, idx[hi], idx[mid]) {
		idx[hi], idx[mid] = idx[mid], idx[hi]
		if distLess(dist, idx[mid], idx[lo]) {
			idx[mid], idx[lo] = idx[lo], idx[mid]
		}
	}
	idx[mid], idx[hi] = idx[hi], idx[mid]
	pv := idx[hi]
	store := lo
	for i := lo; i < hi; i++ {
		if distLess(dist, idx[i], pv) {
			idx[store], idx[i] = idx[i], idx[store]
			store++
		}
	}
	idx[store], idx[hi] = idx[hi], idx[store]
	return store
}

// selectK reorders idx so idx[:k] holds the k smallest candidates under
// distLess (in arbitrary internal order; callers sort the prefix by index).
func selectK(dist []float64, idx []int, k int) {
	if k <= 0 || k >= len(idx) {
		return
	}
	lo, hi := 0, len(idx)-1
	for lo < hi {
		p := partitionDist(dist, idx, lo, hi)
		switch {
		case p == k:
			return
		case p > k:
			hi = p - 1
		default:
			lo = p + 1
		}
	}
}
