package graph

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/kernel"
)

// tiePoints draws a point cloud engineered to stress exact-arithmetic edge
// cases: with probability ~1/3 a point duplicates an earlier one, and
// coordinates snap to a coarse lattice with probability ~1/2 so colinear
// layouts and exact distance ties occur routinely.
func tiePoints(seed int64, n, d int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	for i := range x {
		if i > 0 && rng.Float64() < 1.0/3 {
			dup := make([]float64, d)
			copy(dup, x[rng.Intn(i)])
			x[i] = dup
			continue
		}
		xi := make([]float64, d)
		for j := range xi {
			v := rng.NormFloat64() * 2
			if rng.Float64() < 0.5 {
				v = math.Round(v)
			}
			xi[j] = v
		}
		x[i] = xi
	}
	return x
}

// buildBytes builds a graph with the given options and serializes it.
func buildBytes(t *testing.T, k *kernel.K, x [][]float64, opts ...Option) []byte {
	t.Helper()
	b, err := NewBuilder(k, opts...)
	if err != nil {
		t.Fatal(err)
	}
	g, err := b.Build(x)
	if err != nil {
		t.Fatal(err)
	}
	return edgeListBytes(t, g)
}

// TestSpatialMatchesBruteExactly is the property test of the spatial
// subsystem's central contract: for every construction configuration, every
// explicit index backend that supports it, and every worker count, Build
// produces a CSR byte-identical to the brute-force distance-matrix path —
// including on point sets full of duplicates and exact lattice ties.
func TestSpatialMatchesBruteExactly(t *testing.T) {
	gauss := kernel.MustNew(kernel.Gaussian, 1.0)
	epan := kernel.MustNew(kernel.Epanechnikov, 1.5)
	tri := kernel.MustNew(kernel.Triangular, 2.0)
	uni := kernel.MustNew(kernel.Uniform, 1.0)

	type tc struct {
		name  string
		k     *kernel.K
		opts  []Option
		kinds []IndexKind // backends that can answer this configuration
	}
	radius := []IndexKind{IndexGrid, IndexKDTree}
	knn := []IndexKind{IndexKDTree}
	cases := []tc{
		{"epan-radius", epan, nil, radius},
		{"epan-radius-loops", epan, []Option{WithSelfLoops()}, radius},
		{"uniform-radius", uni, nil, radius},
		{"tri-eps", tri, []Option{WithEpsilon(1.2)}, radius},
		{"gauss-eps", gauss, []Option{WithEpsilon(1.8)}, radius},
		{"gauss-eps-loops", gauss, []Option{WithEpsilon(1.8), WithSelfLoops()}, radius},
		{"gauss-knn", gauss, []Option{WithKNN(7)}, knn},
		{"gauss-knn-loops", gauss, []Option{WithKNN(7), WithSelfLoops()}, knn},
		{"gauss-knn-eps", gauss, []Option{WithKNN(5), WithEpsilon(1.5)}, knn},
		{"epan-knn", epan, []Option{WithKNN(4)}, knn},
		{"gauss-knn-big", gauss, []Option{WithKNN(1000)}, knn},
	}
	sizes := []struct{ n, d int }{
		{1, 2}, {2, 3}, {33, 1}, {150, 2}, {150, 3}, {90, 5}, {60, 8},
	}
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, tc := range cases {
		for _, sz := range sizes {
			x := tiePoints(int64(1000+sz.n*10+sz.d), sz.n, sz.d)
			ref := buildBytes(t, tc.k, x, append([]Option{WithIndex(IndexBrute), WithWorkers(1)}, tc.opts...)...)
			for _, kind := range tc.kinds {
				for _, w := range workerCounts {
					opts := append([]Option{WithIndex(kind), WithWorkers(w)}, tc.opts...)
					got := buildBytes(t, tc.k, x, opts...)
					if !bytes.Equal(got, ref) {
						t.Fatalf("%s n=%d d=%d index=%v workers=%d: CSR differs from brute force",
							tc.name, sz.n, sz.d, kind, w)
					}
				}
			}
			// The auto heuristic must agree with brute regardless of which
			// backend it picks.
			got := buildBytes(t, tc.k, x, append([]Option{WithWorkers(2)}, tc.opts...)...)
			if !bytes.Equal(got, ref) {
				t.Fatalf("%s n=%d d=%d auto: CSR differs from brute force", tc.name, sz.n, sz.d)
			}
		}
	}
}

// TestResolveIndexHeuristic pins the auto d/n routing and the explicit
// override validation.
func TestResolveIndexHeuristic(t *testing.T) {
	gauss := kernel.MustNew(kernel.Gaussian, 1.0)
	epan := kernel.MustNew(kernel.Epanechnikov, 1.0)
	cases := []struct {
		name string
		k    *kernel.K
		opts []Option
		n, d int
		want IndexKind
	}{
		{"small-n-brute", epan, nil, 100, 2, IndexBrute},
		{"radius-low-d-grid", epan, nil, 2000, 2, IndexGrid},
		{"radius-mid-d-kdtree", epan, nil, 2000, 10, IndexKDTree},
		{"radius-high-d-brute", epan, nil, 2000, 20, IndexBrute},
		{"gauss-full-brute", gauss, nil, 2000, 2, IndexBrute},
		{"gauss-eps-grid", gauss, []Option{WithEpsilon(1)}, 2000, 2, IndexGrid},
		{"knn-kdtree", gauss, []Option{WithKNN(5)}, 2000, 3, IndexKDTree},
		{"knn-high-d-brute", gauss, []Option{WithKNN(5)}, 2000, 32, IndexBrute},
		{"forced-brute", epan, []Option{WithIndex(IndexBrute)}, 2000, 2, IndexBrute},
		{"forced-kdtree-small-n", epan, []Option{WithIndex(IndexKDTree)}, 10, 2, IndexKDTree},
	}
	for _, tc := range cases {
		b, err := NewBuilder(tc.k, tc.opts...)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got, err := b.resolveIndex(tc.n, tc.d)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got != tc.want {
			t.Fatalf("%s: resolved %v, want %v", tc.name, got, tc.want)
		}
	}

	// Invalid forced combinations.
	if _, err := NewBuilder(gauss, WithIndex(IndexKind(99))); !errors.Is(err, ErrParam) {
		t.Fatalf("out-of-range kind: %v", err)
	}
	b, err := NewBuilder(gauss, WithIndex(IndexGrid), WithKNN(5), WithEpsilon(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(tiePoints(1, 20, 2)); !errors.Is(err, ErrParam) {
		t.Fatalf("grid+knn: %v", err)
	}
	b, err = NewBuilder(gauss, WithIndex(IndexGrid))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(tiePoints(1, 20, 2)); !errors.Is(err, ErrParam) {
		t.Fatalf("grid without radius: %v", err)
	}
	b, err = NewBuilder(gauss, WithIndex(IndexKDTree))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(tiePoints(1, 20, 2)); !errors.Is(err, ErrParam) {
		t.Fatalf("kdtree without radius or knn: %v", err)
	}
}

// TestBuildValidatesRaggedPoints ensures dimension validation happens before
// any index is consulted.
func TestBuildValidatesRaggedPoints(t *testing.T) {
	b, err := NewBuilder(kernel.MustNew(kernel.Gaussian, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrParam) {
		t.Fatalf("ragged points: %v", err)
	}
}

// TestIndexKindString pins the flag-facing names.
func TestIndexKindString(t *testing.T) {
	want := map[IndexKind]string{
		IndexAuto: "auto", IndexBrute: "brute", IndexGrid: "grid", IndexKDTree: "kdtree",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("IndexKind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
}
