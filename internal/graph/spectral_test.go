package graph

import (
	"errors"
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/sparse"
)

func pathGraph(t *testing.T, n int) *Graph {
	t.Helper()
	coo := sparse.NewCOO(n, n)
	for i := 0; i+1 < n; i++ {
		if err := coo.AddSym(i, i+1, 1); err != nil {
			t.Fatal(err)
		}
	}
	g, err := FromWeights(coo.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAlgebraicConnectivityPathGraph(t *testing.T) {
	// Path graph P_n has λ₂ = 2(1 − cos(π/n)).
	n := 8
	g := pathGraph(t, n)
	lam, err := g.AlgebraicConnectivity(0)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * (1 - math.Cos(math.Pi/float64(n)))
	if math.Abs(lam-want) > 1e-6 {
		t.Fatalf("λ₂ = %v, want %v", lam, want)
	}
}

func TestAlgebraicConnectivityCompleteGraph(t *testing.T) {
	// Complete graph K_n has λ₂ = n.
	n := 6
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			_ = coo.AddSym(i, j, 1)
		}
	}
	g, err := FromWeights(coo.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	lam, err := g.AlgebraicConnectivity(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lam-float64(n)) > 1e-6 {
		t.Fatalf("K6 λ₂ = %v, want 6", lam)
	}
}

func TestAlgebraicConnectivityDisconnectedIsZero(t *testing.T) {
	coo := sparse.NewCOO(4, 4)
	_ = coo.AddSym(0, 1, 1)
	_ = coo.AddSym(2, 3, 1)
	g, _ := FromWeights(coo.ToCSR())
	lam, err := g.AlgebraicConnectivity(0)
	if err != nil {
		t.Fatal(err)
	}
	if lam > 1e-8 {
		t.Fatalf("disconnected λ₂ = %v, want ≈ 0", lam)
	}
}

func TestAlgebraicConnectivityTracksCoupling(t *testing.T) {
	// Two clusters with a weak bridge: λ₂ grows with the bridge weight.
	build := func(w float64) *Graph {
		coo := sparse.NewCOO(6, 6)
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				_ = coo.AddSym(i, j, 1)
				_ = coo.AddSym(i+3, j+3, 1)
			}
		}
		_ = coo.AddSym(2, 3, w)
		g, err := FromWeights(coo.ToCSR())
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	weak, err := build(0.01).AlgebraicConnectivity(0)
	if err != nil {
		t.Fatal(err)
	}
	strong, err := build(1).AlgebraicConnectivity(0)
	if err != nil {
		t.Fatal(err)
	}
	if weak >= strong {
		t.Fatalf("λ₂(weak bridge)=%v must be below λ₂(strong bridge)=%v", weak, strong)
	}
}

func TestAlgebraicConnectivityValidation(t *testing.T) {
	g, _ := FromWeights(sparse.NewCOO(1, 1).ToCSR())
	if _, err := g.AlgebraicConnectivity(0); !errors.Is(err, ErrParam) {
		t.Fatal("n=1 must error")
	}
}

func TestSpectralEmbeddingSeparatesClusters(t *testing.T) {
	// Two dense clusters with a weak bridge; the 2nd embedding coordinate
	// must separate them by sign.
	coo := sparse.NewCOO(8, 8)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			_ = coo.AddSym(i, j, 1)
			_ = coo.AddSym(i+4, j+4, 1)
		}
	}
	_ = coo.AddSym(3, 4, 0.05)
	g, err := FromWeights(coo.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	emb, vals, err := g.SpectralEmbedding(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0] > vals[1] {
		t.Fatalf("embedding values %v", vals)
	}
	if vals[0] > 1e-8 {
		t.Fatalf("first normalized-Laplacian eigenvalue %v, want ≈ 0", vals[0])
	}
	signA := emb.At(0, 1) > 0
	for i := 1; i < 4; i++ {
		if (emb.At(i, 1) > 0) != signA {
			t.Fatal("cluster A not sign-consistent in Fiedler coordinate")
		}
	}
	for i := 4; i < 8; i++ {
		if (emb.At(i, 1) > 0) == signA {
			t.Fatal("cluster B not separated in Fiedler coordinate")
		}
	}
}

func TestSpectralEmbeddingValidation(t *testing.T) {
	g := pathGraph(t, 4)
	if _, _, err := g.SpectralEmbedding(0); !errors.Is(err, ErrParam) {
		t.Fatal("k=0 must error")
	}
	if _, _, err := g.SpectralEmbedding(5); !errors.Is(err, ErrParam) {
		t.Fatal("k>n must error")
	}
}

func TestSpectralEmbeddingOrthonormalColumns(t *testing.T) {
	g := pathGraph(t, 6)
	emb, _, err := g.SpectralEmbedding(3)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 3; a++ {
		ca := emb.Col(a)
		if math.Abs(mat.Norm2(ca)-1) > 1e-8 {
			t.Fatalf("column %d not unit norm", a)
		}
		for b := a + 1; b < 3; b++ {
			if math.Abs(mat.Dot(ca, emb.Col(b))) > 1e-8 {
				t.Fatalf("columns %d,%d not orthogonal", a, b)
			}
		}
	}
}
