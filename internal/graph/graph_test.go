package graph

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/kernel"
	"repro/internal/mat"
	"repro/internal/sparse"
)

func gaussianBuilder(t *testing.T, h float64, opts ...Option) *Builder {
	t.Helper()
	b, err := NewBuilder(kernel.MustNew(kernel.Gaussian, h), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func linePoints(n int) [][]float64 {
	x := make([][]float64, n)
	for i := range x {
		x[i] = []float64{float64(i)}
	}
	return x
}

func TestFromWeightsValidation(t *testing.T) {
	rect := sparse.NewCOO(2, 3).ToCSR()
	if _, err := FromWeights(rect); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam for non-square, got %v", err)
	}
	coo := sparse.NewCOO(2, 2)
	_ = coo.Add(0, 1, 1)
	if _, err := FromWeights(coo.ToCSR()); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam for asymmetric, got %v", err)
	}
}

func TestFromDenseWeights(t *testing.T) {
	w, _ := mat.NewDenseData(2, 2, []float64{0, 0.5, 0.5, 0})
	g, err := FromDenseWeights(w)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2 || g.Weight(0, 1) != 0.5 {
		t.Fatal("graph content wrong")
	}
}

func TestBuilderValidation(t *testing.T) {
	if _, err := NewBuilder(nil); !errors.Is(err, ErrParam) {
		t.Fatalf("nil kernel: want ErrParam, got %v", err)
	}
	k := kernel.MustNew(kernel.Gaussian, 1)
	if _, err := NewBuilder(k, WithKNN(-1)); !errors.Is(err, ErrParam) {
		t.Fatalf("negative knn: want ErrParam, got %v", err)
	}
	if _, err := NewBuilder(k, WithEpsilon(-0.5)); !errors.Is(err, ErrParam) {
		t.Fatalf("negative eps: want ErrParam, got %v", err)
	}
}

func TestBuildEmptyErrors(t *testing.T) {
	b := gaussianBuilder(t, 1)
	if _, err := b.Build(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
}

func TestBuildFullGraphWeights(t *testing.T) {
	b := gaussianBuilder(t, 1)
	g, err := b.Build([][]float64{{0}, {1}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := g.Weight(0, 1), math.Exp(-1); math.Abs(got-want) > 1e-15 {
		t.Fatalf("w01 = %v, want %v", got, want)
	}
	if got, want := g.Weight(0, 2), math.Exp(-4); math.Abs(got-want) > 1e-15 {
		t.Fatalf("w02 = %v, want %v", got, want)
	}
	if g.Weight(1, 0) != g.Weight(0, 1) {
		t.Fatal("graph must be symmetric")
	}
	if g.Weight(0, 0) != 0 {
		t.Fatal("self-loops dropped by default")
	}
}

func TestBuildWithSelfLoops(t *testing.T) {
	b := gaussianBuilder(t, 1, WithSelfLoops())
	g, err := b.Build([][]float64{{0}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Weight(0, 0) != 1 {
		t.Fatalf("w00 = %v, want 1", g.Weight(0, 0))
	}
}

func TestBuildEpsilonGraph(t *testing.T) {
	b := gaussianBuilder(t, 1, WithEpsilon(1.5))
	g, err := b.Build(linePoints(4))
	if err != nil {
		t.Fatal(err)
	}
	if g.Weight(0, 1) == 0 || g.Weight(0, 2) != 0 {
		t.Fatal("ε-ball truncation wrong")
	}
	if g.EdgeCount() != 3 { // chain 0-1-2-3
		t.Fatalf("edges = %d, want 3", g.EdgeCount())
	}
}

func TestBuildKNNGraph(t *testing.T) {
	b := gaussianBuilder(t, 1, WithKNN(1))
	g, err := b.Build(linePoints(4))
	if err != nil {
		t.Fatal(err)
	}
	// Each node picks its nearest neighbour; symmetrized this yields the
	// chain edges {0,1}, {1,2}, {2,3} at most. Node 0 picks 1, 1 picks 0 or 2,
	// 2 picks 1 or 3, 3 picks 2.
	if g.Weight(0, 3) != 0 {
		t.Fatal("kNN graph must not contain the far edge 0-3")
	}
	if g.Weight(0, 1) == 0 {
		t.Fatal("kNN graph must contain nearest edge 0-1")
	}
}

func TestBuildKNNWithEpsilonComposes(t *testing.T) {
	b := gaussianBuilder(t, 1, WithKNN(3), WithEpsilon(1.5))
	g, err := b.Build(linePoints(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		for j := i + 2; j < 5; j++ {
			if g.Weight(i, j) != 0 {
				t.Fatalf("edge %d-%d should be truncated by eps", i, j)
			}
		}
	}
}

func TestBuildCompactKernelSparsifies(t *testing.T) {
	// Uniform kernel with h=1: only |xi−xj| <= 1 gets positive weight.
	b, err := NewBuilder(kernel.MustNew(kernel.Uniform, 1))
	if err != nil {
		t.Fatal(err)
	}
	g, err := b.Build(linePoints(5))
	if err != nil {
		t.Fatal(err)
	}
	if g.EdgeCount() != 4 {
		t.Fatalf("edges = %d, want 4 (chain)", g.EdgeCount())
	}
}

func TestBuildFromDist2Validation(t *testing.T) {
	b := gaussianBuilder(t, 1)
	if _, err := b.BuildFromDist2(2, []float64{0}); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
}

func TestBuildFromDist2MatchesBuild(t *testing.T) {
	b := gaussianBuilder(t, 0.8)
	x := [][]float64{{0, 1}, {1, 0}, {0.5, 0.5}}
	g1, err := b.Build(x)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := kernel.PairwiseDist2(x)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := b.BuildFromDist2(3, d2)
	if err != nil {
		t.Fatal(err)
	}
	if !g1.Weights().ToDense().Equal(g2.Weights().ToDense(), 1e-15) {
		t.Fatal("Build and BuildFromDist2 disagree")
	}
}

func TestDegreesAndSummary(t *testing.T) {
	b := gaussianBuilder(t, 1, WithEpsilon(1.5))
	g, _ := b.Build(linePoints(3)) // chain 0-1-2
	deg := g.Degrees()
	w := math.Exp(-1)
	if math.Abs(deg[1]-2*w) > 1e-15 || math.Abs(deg[0]-w) > 1e-15 {
		t.Fatalf("degrees = %v", deg)
	}
	s := g.Summary()
	if s.Nodes != 3 || s.Edges != 2 || s.Components != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.MinDegree > s.MeanDegree || s.MeanDegree > s.MaxDegree {
		t.Fatalf("degree stats inconsistent: %+v", s)
	}
}

func TestUnnormalizedLaplacian(t *testing.T) {
	// Chain of 3 with unit weights.
	coo := sparse.NewCOO(3, 3)
	_ = coo.AddSym(0, 1, 1)
	_ = coo.AddSym(1, 2, 1)
	g, err := FromWeights(coo.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	l, err := g.Laplacian(Unnormalized)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := mat.NewDenseData(3, 3, []float64{
		1, -1, 0,
		-1, 2, -1,
		0, -1, 1,
	})
	if !l.ToDense().Equal(want, 1e-15) {
		t.Fatalf("L = %v", l.ToDense())
	}
}

func TestLaplacianSelfLoopsCancel(t *testing.T) {
	// L = D − W must be identical with and without self-loops.
	withLoops := gaussianBuilder(t, 1, WithSelfLoops())
	without := gaussianBuilder(t, 1)
	x := linePoints(4)
	g1, _ := withLoops.Build(x)
	g2, _ := without.Build(x)
	l1, err := g1.Laplacian(Unnormalized)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := g2.Laplacian(Unnormalized)
	if err != nil {
		t.Fatal(err)
	}
	if !l1.ToDense().Equal(l2.ToDense(), 1e-14) {
		t.Fatal("self-loops must cancel in D−W")
	}
}

func TestLaplacianRowSumsZero(t *testing.T) {
	b := gaussianBuilder(t, 1)
	g, _ := b.Build(linePoints(6))
	l, err := g.Laplacian(Unnormalized)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range l.RowSums() {
		if math.Abs(s) > 1e-12 {
			t.Fatalf("row %d sums to %g, want 0", i, s)
		}
	}
}

func TestLaplacianPSDQuadraticForm(t *testing.T) {
	// fᵀLf = Σ w_ij (f_i−f_j)² / ... — must be nonnegative for any f.
	rng := rand.New(rand.NewSource(61))
	b := gaussianBuilder(t, 1)
	x := make([][]float64, 8)
	for i := range x {
		x[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	g, _ := b.Build(x)
	l, err := g.Laplacian(Unnormalized)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		f := make([]float64, 8)
		for i := range f {
			f[i] = rng.NormFloat64()
		}
		lf, err := l.MulVec(f)
		if err != nil {
			t.Fatal(err)
		}
		if q := mat.Dot(f, lf); q < -1e-12 {
			t.Fatalf("fᵀLf = %g < 0", q)
		}
	}
}

func TestLaplacianQuadraticFormMatchesEdgeSum(t *testing.T) {
	// 2 fᵀ L f = Σ_ij w_ij (f_i − f_j)² for symmetric W; equivalently
	// fᵀLf = Σ_{edges} w_ij (f_i−f_j)².
	rng := rand.New(rand.NewSource(62))
	b := gaussianBuilder(t, 1.2)
	x := make([][]float64, 7)
	for i := range x {
		x[i] = []float64{rng.NormFloat64()}
	}
	g, _ := b.Build(x)
	l, _ := g.Laplacian(Unnormalized)
	f := make([]float64, 7)
	for i := range f {
		f[i] = rng.NormFloat64()
	}
	lf, _ := l.MulVec(f)
	got := mat.Dot(f, lf)
	var want float64
	for i := 0; i < 7; i++ {
		for j := i + 1; j < 7; j++ {
			d := f[i] - f[j]
			want += g.Weight(i, j) * d * d
		}
	}
	if math.Abs(got-want) > 1e-10*math.Max(1, math.Abs(want)) {
		t.Fatalf("fᵀLf = %v, edge sum = %v", got, want)
	}
}

func TestNormalizedLaplacians(t *testing.T) {
	coo := sparse.NewCOO(2, 2)
	_ = coo.AddSym(0, 1, 2)
	g, err := FromWeights(coo.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	lsym, err := g.Laplacian(SymNormalized)
	if err != nil {
		t.Fatal(err)
	}
	// d0 = d1 = 2 ⇒ L_sym = [[1,-1],[-1,1]].
	want, _ := mat.NewDenseData(2, 2, []float64{1, -1, -1, 1})
	if !lsym.ToDense().Equal(want, 1e-15) {
		t.Fatalf("L_sym = %v", lsym.ToDense())
	}
	lrw, err := g.Laplacian(RandomWalk)
	if err != nil {
		t.Fatal(err)
	}
	if !lrw.ToDense().Equal(want, 1e-15) {
		t.Fatalf("L_rw = %v", lrw.ToDense())
	}
}

func TestLaplacianIsolatedNode(t *testing.T) {
	coo := sparse.NewCOO(3, 3)
	_ = coo.AddSym(0, 1, 1)
	g, _ := FromWeights(coo.ToCSR())
	l, err := g.Laplacian(Unnormalized)
	if err != nil {
		t.Fatal(err)
	}
	if l.At(2, 2) != 0 {
		t.Fatal("isolated node must have zero Laplacian row")
	}
	lsym, err := g.Laplacian(SymNormalized)
	if err != nil {
		t.Fatal(err)
	}
	if lsym.At(2, 2) != 1 {
		t.Fatal("normalized Laplacian convention: identity row for isolated node")
	}
}

func TestLaplacianUnknownKind(t *testing.T) {
	g, _ := FromWeights(sparse.NewCOO(2, 2).ToCSR())
	if _, err := g.Laplacian(LaplacianKind(42)); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
}

func TestComponents(t *testing.T) {
	coo := sparse.NewCOO(5, 5)
	_ = coo.AddSym(0, 1, 1)
	_ = coo.AddSym(3, 4, 1)
	g, _ := FromWeights(coo.ToCSR())
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
	if len(comps[0]) != 2 || comps[0][0] != 0 || comps[0][1] != 1 {
		t.Fatalf("first component = %v", comps[0])
	}
	if len(comps[1]) != 1 || comps[1][0] != 2 {
		t.Fatalf("second component = %v", comps[1])
	}
	if g.IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
}

func TestIsConnected(t *testing.T) {
	b := gaussianBuilder(t, 1)
	g, _ := b.Build(linePoints(4)) // full Gaussian graph: connected
	if !g.IsConnected() {
		t.Fatal("full Gaussian graph must be connected")
	}
	empty, _ := FromWeights(sparse.NewCOO(0, 0).ToCSR())
	if empty.IsConnected() {
		t.Fatal("empty graph must not be connected")
	}
}

func TestNumberOfZeroLaplacianEigenvaluesEqualsComponents(t *testing.T) {
	// Spectral graph theory: multiplicity of eigenvalue 0 of L = number of
	// connected components. Cross-validates Components against mat.EigenSym.
	coo := sparse.NewCOO(6, 6)
	_ = coo.AddSym(0, 1, 1)
	_ = coo.AddSym(1, 2, 0.5)
	_ = coo.AddSym(3, 4, 2)
	// node 5 isolated. Components: {0,1,2}, {3,4}, {5} = 3.
	g, _ := FromWeights(coo.ToCSR())
	l, _ := g.Laplacian(Unnormalized)
	eig, err := mat.NewEigenSym(l.ToDense(), 0)
	if err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for _, v := range eig.Values {
		if math.Abs(v) < 1e-10 {
			zeros++
		}
	}
	if zeros != len(g.Components()) {
		t.Fatalf("zero eigenvalues %d != components %d", zeros, len(g.Components()))
	}
}

// Property: for random point clouds, the built graph is symmetric, weights
// lie in [0,1], and the unnormalized Laplacian has zero row sums.
func TestBuildInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		x := make([][]float64, n)
		for i := range x {
			x[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		}
		b, err := NewBuilder(kernel.MustNew(kernel.Gaussian, 0.5+rng.Float64()))
		if err != nil {
			return false
		}
		g, err := b.Build(x)
		if err != nil {
			return false
		}
		w := g.Weights()
		if !w.IsSymmetric(1e-14) {
			return false
		}
		d := w.ToDense()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := d.At(i, j)
				if v < 0 || v > 1 {
					return false
				}
			}
		}
		l, err := g.Laplacian(Unnormalized)
		if err != nil {
			return false
		}
		for _, s := range l.RowSums() {
			if math.Abs(s) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
