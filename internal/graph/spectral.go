package graph

import (
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/sparse"
)

// AlgebraicConnectivity estimates the second-smallest eigenvalue λ₂ of the
// unnormalized Laplacian (Fiedler value). For a connected graph λ₂ > 0; it
// lower-bounds how strongly the graph mixes, which controls how quickly
// label propagation spreads information.
//
// The constant vector (the known Laplacian kernel) is deflated from the
// Lanczos iteration, so the smallest remaining Ritz value estimates λ₂
// directly. For disconnected graphs the estimate is ≈ 0.
func (g *Graph) AlgebraicConnectivity(steps int) (float64, error) {
	n := g.N()
	if n < 2 {
		return 0, fmt.Errorf("graph: connectivity needs >=2 nodes: %w", ErrParam)
	}
	l, err := g.Laplacian(Unnormalized)
	if err != nil {
		return 0, err
	}
	ones := mat.Constant(n, 1/math.Sqrt(float64(n)))
	if steps <= 0 {
		steps = 80
	}
	res, err := sparse.Lanczos(l, steps, nil, [][]float64{ones})
	if err != nil {
		return 0, fmt.Errorf("graph: lanczos: %w", err)
	}
	lam := res.RitzValues[0]
	if lam < 0 && lam > -1e-10 {
		lam = 0 // rounding on PSD spectra
	}
	return lam, nil
}

// SpectralEmbedding returns the k eigenvectors of the symmetric normalized
// Laplacian with the smallest eigenvalues, as the columns of an n×k matrix
// — the classic spectral-clustering embedding under the cluster assumption
// the paper's method relies on. Dense eigendecomposition; intended for the
// moderate graph sizes of the experiments.
func (g *Graph) SpectralEmbedding(k int) (*mat.Dense, []float64, error) {
	n := g.N()
	if k < 1 || k > n {
		return nil, nil, fmt.Errorf("graph: embedding k=%d with n=%d: %w", k, n, ErrParam)
	}
	l, err := g.Laplacian(SymNormalized)
	if err != nil {
		return nil, nil, err
	}
	dense := l.ToDense()
	// Symmetrize rounding noise before the Jacobi solver.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := (dense.At(i, j) + dense.At(j, i)) / 2
			dense.Set(i, j, v)
			dense.Set(j, i, v)
		}
	}
	eig, err := mat.NewEigenSym(dense, 1e-9)
	if err != nil {
		return nil, nil, fmt.Errorf("graph: eigen: %w", err)
	}
	emb := mat.NewDense(n, k)
	vals := make([]float64, k)
	for c := 0; c < k; c++ {
		vals[c] = eig.Values[c]
		for i := 0; i < n; i++ {
			emb.Set(i, c, eig.Vectors.At(i, c))
		}
	}
	return emb, vals, nil
}
