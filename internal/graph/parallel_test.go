package graph

import (
	"bytes"
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"repro/internal/kernel"
)

// randomPoints draws a deterministic point cloud for construction tests.
func randomPoints(seed int64, n, d int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	for i := range x {
		x[i] = make([]float64, d)
		for j := range x[i] {
			x[i][j] = rng.NormFloat64()
		}
	}
	return x
}

// edgeListBytes serializes a graph for byte-identity comparisons.
func edgeListBytes(t *testing.T, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSelectKMatchesSort cross-checks the quickselect partial selection
// against a full sort with the same (distance, index) tie-break.
func TestSelectKMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(40)
		dist := make([]float64, n)
		for i := range dist {
			// Coarse quantization to force plenty of distance ties.
			dist[i] = float64(rng.Intn(5))
		}
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		k := rng.Intn(n + 1)
		selectK(dist, idx, k)
		got := append([]int(nil), idx[:k]...)
		sort.Ints(got)

		ref := make([]int, n)
		for i := range ref {
			ref[i] = i
		}
		sort.Slice(ref, func(a, b int) bool { return distLess(dist, ref[a], ref[b]) })
		want := append([]int(nil), ref[:k]...)
		sort.Ints(want)

		if len(got) != len(want) {
			t.Fatalf("trial %d: selected %d, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d (n=%d k=%d): selection %v, want %v", trial, n, k, got, want)
			}
		}
	}
}

// TestBuildDeterministicAcrossWorkers asserts byte-identical construction
// output for every worker count, across kernels and sparsifications.
func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	x := randomPoints(11, 150, 4)
	cases := []struct {
		name string
		kind kernel.Kind
		opts []Option
	}{
		{"gaussian-full", kernel.Gaussian, nil},
		{"gaussian-knn", kernel.Gaussian, []Option{WithKNN(7)}},
		{"epanechnikov-knn", kernel.Epanechnikov, []Option{WithKNN(7)}},
		{"gaussian-knn-loops", kernel.Gaussian, []Option{WithKNN(5), WithSelfLoops()}},
		{"uniform-eps", kernel.Uniform, []Option{WithEpsilon(2.5)}},
		{"tricube-knn-eps", kernel.Tricube, []Option{WithKNN(9), WithEpsilon(3)}},
	}
	workerCounts := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	for _, tc := range cases {
		var ref []byte
		for _, w := range workerCounts {
			opts := append([]Option{WithWorkers(w)}, tc.opts...)
			b, err := NewBuilder(kernel.MustNew(tc.kind, 1.2), opts...)
			if err != nil {
				t.Fatal(err)
			}
			g, err := b.Build(x)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.name, w, err)
			}
			if !g.Weights().IsSymmetric(0) {
				t.Fatalf("%s workers=%d: weights not exactly symmetric", tc.name, w)
			}
			got := edgeListBytes(t, g)
			if ref == nil {
				ref = got
				continue
			}
			if !bytes.Equal(ref, got) {
				t.Fatalf("%s: workers=%d output differs from workers=%d", tc.name, w, workerCounts[0])
			}
		}
	}
}

// TestKNNByteIdenticalAcrossRuns asserts the sorted per-row construction
// yields identical CSR output on repeated builds of the same input (the old
// map-based dedup iterated in nondeterministic order).
func TestKNNByteIdenticalAcrossRuns(t *testing.T) {
	x := randomPoints(23, 120, 3)
	var ref []byte
	for run := 0; run < 5; run++ {
		b, err := NewBuilder(kernel.MustNew(kernel.Gaussian, 0.8), WithKNN(6))
		if err != nil {
			t.Fatal(err)
		}
		g, err := b.Build(x)
		if err != nil {
			t.Fatal(err)
		}
		got := edgeListBytes(t, g)
		if run == 0 {
			ref = got
			continue
		}
		if !bytes.Equal(ref, got) {
			t.Fatalf("run %d produced different CSR bytes", run)
		}
	}
}

// TestKNNMatchesSortReference validates the quickselect construction
// against a straightforward full-sort k-NN builder on the same input.
func TestKNNMatchesSortReference(t *testing.T) {
	x := randomPoints(31, 80, 3)
	n := len(x)
	const knn = 5
	k := kernel.MustNew(kernel.Gaussian, 1.0)

	b, err := NewBuilder(k, WithKNN(knn), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	g, err := b.Build(x)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: full sort per row with the same (dist, index) tie-break,
	// symmetrized edge set.
	d2, err := kernel.PairwiseDist2Workers(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	type edge struct{ i, j int }
	want := make(map[edge]bool)
	for i := 0; i < n; i++ {
		row := d2[i*n : (i+1)*n]
		idx := make([]int, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				idx = append(idx, j)
			}
		}
		sort.Slice(idx, func(a, b int) bool { return distLess(row, idx[a], idx[b]) })
		for _, j := range idx[:knn] {
			lo, hi := i, j
			if lo > hi {
				lo, hi = hi, lo
			}
			want[edge{lo, hi}] = true
		}
	}
	got := 0
	for i := 0; i < n; i++ {
		cols, vals := g.Weights().RowNNZ(i)
		for c, j := range cols {
			if j <= i {
				continue
			}
			got++
			if !want[edge{i, j}] {
				t.Fatalf("edge (%d,%d) not in reference selection", i, j)
			}
			if wv := k.WeightDist2(d2[i*n+j]); vals[c] != wv {
				t.Fatalf("edge (%d,%d) weight %v, want %v", i, j, vals[c], wv)
			}
		}
	}
	if got != len(want) {
		t.Fatalf("built %d edges, reference has %d", got, len(want))
	}
}

// TestSummarySinglePassMatchesParts checks the fused Summary against the
// individual EdgeCount/Components/Degrees accessors.
func TestSummarySinglePassMatchesParts(t *testing.T) {
	x := randomPoints(5, 60, 3)
	b, err := NewBuilder(kernel.MustNew(kernel.Gaussian, 0.7), WithKNN(4))
	if err != nil {
		t.Fatal(err)
	}
	g, err := b.Build(x)
	if err != nil {
		t.Fatal(err)
	}
	s := g.Summary()
	if s.Edges != g.EdgeCount() {
		t.Fatalf("Summary.Edges = %d, EdgeCount = %d", s.Edges, g.EdgeCount())
	}
	if s.Components != len(g.Components()) {
		t.Fatalf("Summary.Components = %d, Components() = %d", s.Components, len(g.Components()))
	}
	deg := g.Degrees()
	var minD, maxD, sum float64
	minD = deg[0]
	maxD = deg[0]
	for _, d := range deg {
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
		sum += d
	}
	if s.MinDegree != minD || s.MaxDegree != maxD {
		t.Fatalf("Summary degrees [%v,%v], want [%v,%v]", s.MinDegree, s.MaxDegree, minD, maxD)
	}
	if mean := sum / float64(len(deg)); s.MeanDegree != mean {
		t.Fatalf("Summary.MeanDegree = %v, want %v", s.MeanDegree, mean)
	}
}
