// Package graph builds and analyzes the weighted similarity graphs at the
// heart of graph-based semi-supervised learning: full-kernel graphs, k-NN
// and ε-ball sparsifications, the three standard Laplacians, and
// connectivity analysis (needed because Proposition II.2 of the paper is
// stated for connected graphs).
package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/kernel"
	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/sparse"
)

var (
	// ErrEmpty is returned for empty point sets.
	ErrEmpty = errors.New("graph: empty input")
	// ErrParam is returned for invalid construction parameters.
	ErrParam = errors.New("graph: invalid parameter")
)

// Graph is an undirected weighted graph over n nodes with a symmetric
// similarity matrix W (zero diagonal entries are permitted; the paper's RBF
// graphs have w_ii = 1, which cancels in all Laplacian quantities).
type Graph struct {
	w *sparse.CSR
}

// FromWeights wraps a symmetric similarity matrix. The matrix is validated
// for squareness and symmetry (tolerance 1e-12 of the largest entry).
func FromWeights(w *sparse.CSR) (*Graph, error) {
	r, c := w.Dims()
	if r != c {
		return nil, fmt.Errorf("graph: weights %dx%d not square: %w", r, c, ErrParam)
	}
	if !w.IsSymmetric(1e-12) {
		return nil, fmt.Errorf("graph: weights not symmetric: %w", ErrParam)
	}
	return &Graph{w: w}, nil
}

// FromDenseWeights wraps a dense symmetric similarity matrix, dropping exact
// zeros.
func FromDenseWeights(w *mat.Dense) (*Graph, error) {
	return FromWeights(sparse.FromDense(w, 0))
}

// N returns the node count.
func (g *Graph) N() int { return g.w.Rows() }

// Weights returns the underlying CSR similarity matrix.
func (g *Graph) Weights() *sparse.CSR { return g.w }

// Weight returns w_ij.
func (g *Graph) Weight(i, j int) float64 { return g.w.At(i, j) }

// Degrees returns d_i = Σ_j w_ij.
func (g *Graph) Degrees() []float64 { return g.w.RowSums() }

// EdgeCount returns the number of undirected edges with positive weight,
// excluding self-loops.
func (g *Graph) EdgeCount() int {
	count := 0
	for i := 0; i < g.N(); i++ {
		cols, vals := g.w.RowNNZ(i)
		for k, j := range cols {
			if j > i && vals[k] != 0 {
				count++
			}
		}
	}
	return count
}

// Builder configures graph construction from points.
type Builder struct {
	kernel  *kernel.K
	knn     int     // 0 = full graph
	eps     float64 // 0 = no ε-ball truncation
	loops   bool    // keep self-loops (w_ii = Profile(0))
	workers int     // 0 = GOMAXPROCS, 1 = serial
	index   IndexKind
}

// Option customizes a Builder.
type Option interface {
	apply(*Builder)
}

type optionFunc func(*Builder)

func (f optionFunc) apply(b *Builder) { f(b) }

// WithKNN keeps only the k strongest neighbours of each node
// (symmetrized: an edge survives if either endpoint selects it).
func WithKNN(k int) Option {
	return optionFunc(func(b *Builder) { b.knn = k })
}

// WithEpsilon keeps only edges with distance at most eps.
func WithEpsilon(eps float64) Option {
	return optionFunc(func(b *Builder) { b.eps = eps })
}

// WithSelfLoops keeps self-similarities w_ii (the paper's W has w_ii = 1;
// self-loops cancel in D−W, so the default drops them for sparsity).
func WithSelfLoops() Option {
	return optionFunc(func(b *Builder) { b.loops = true })
}

// WithWorkers sets the worker count for the parallel stages of
// construction (the pairwise distance pass, per-row weight computation, and
// k-NN selection). n <= 0 (the default) selects runtime.GOMAXPROCS(0);
// n == 1 forces the serial path. The built graph is byte-identical for
// every worker count.
func WithWorkers(n int) Option {
	return optionFunc(func(b *Builder) { b.workers = n })
}

// NewBuilder returns a Builder for the given kernel.
func NewBuilder(k *kernel.K, opts ...Option) (*Builder, error) {
	if k == nil {
		return nil, fmt.Errorf("graph: nil kernel: %w", ErrParam)
	}
	b := &Builder{kernel: k}
	for _, o := range opts {
		o.apply(b)
	}
	if b.knn < 0 {
		return nil, fmt.Errorf("graph: knn=%d: %w", b.knn, ErrParam)
	}
	if b.eps < 0 {
		return nil, fmt.Errorf("graph: eps=%v: %w", b.eps, ErrParam)
	}
	if b.index < IndexAuto || b.index > IndexKDTree {
		return nil, fmt.Errorf("graph: index kind %d: %w", int(b.index), ErrParam)
	}
	return b, nil
}

// Build constructs the similarity graph over the points x.
//
// The construction path is chosen by the builder's index setting (see
// WithIndex): by default a spatial index replaces the O(n²) distance matrix
// whenever the build has a finite interaction radius (an ε-ball, a
// compactly supported kernel, or a k-NN selection) and the d/n heuristic
// predicts a win; otherwise the dense-matrix path runs. Every path produces
// byte-identical CSR output for the same input.
func (b *Builder) Build(x [][]float64) (*Graph, error) {
	if len(x) == 0 {
		return nil, ErrEmpty
	}
	dim := len(x[0])
	for _, xi := range x {
		if len(xi) != dim {
			return nil, fmt.Errorf("graph: point dimensions differ (%d vs %d): %w", len(xi), dim, ErrParam)
		}
	}
	kind, err := b.resolveIndex(len(x), dim)
	if err != nil {
		return nil, err
	}
	switch kind {
	case IndexGrid:
		return b.buildRadiusGrid(x)
	case IndexKDTree:
		if b.knn > 0 {
			return b.buildKNNKDTree(x)
		}
		return b.buildRadiusKDTree(x)
	}
	d2, err := kernel.PairwiseDist2Workers(x, b.workers)
	if err != nil {
		return nil, err
	}
	return b.BuildFromDist2(len(x), d2)
}

// BuildFromDist2 constructs the graph from a precomputed n×n row-major
// squared-distance matrix (symmetric; only the upper triangle is read).
// This is the fast path for experiments that sweep λ or kernels over a
// fixed dataset.
//
// Rows of the weight matrix are computed independently in parallel and
// assembled directly into CSR form with sorted per-row neighbour lists, so
// the output is byte-identical for every worker count and across runs.
func (b *Builder) BuildFromDist2(n int, d2 []float64) (*Graph, error) {
	if n <= 0 || len(d2) != n*n {
		return nil, fmt.Errorf("graph: need n*n=%d distances, got %d: %w", n*n, len(d2), ErrParam)
	}
	var (
		rowCols [][]int
		rowVals [][]float64
	)
	if b.knn > 0 {
		rowCols, rowVals = b.knnRows(n, d2)
	} else {
		rowCols, rowVals = b.fullRows(n, d2)
	}
	w, err := assembleCSR(n, rowCols, rowVals, b.workers)
	if err != nil {
		return nil, err
	}
	return &Graph{w: w}, nil
}

// at returns the canonical (upper-triangle) squared distance between i and
// j, so both endpoints of an edge derive the weight from the same stored
// value even if the caller's matrix is asymmetric up to rounding.
func at(d2 []float64, n, i, j int) float64 {
	if i > j {
		i, j = j, i
	}
	return d2[i*n+j]
}

// fullRows computes the dense-kernel rows: every pair within the ε-ball
// (when set) with positive weight, plus the diagonal when self-loops are on.
func (b *Builder) fullRows(n int, d2 []float64) (cols [][]int, vals [][]float64) {
	cols = make([][]int, n)
	vals = make([][]float64, n)
	eps2 := b.eps * b.eps
	parallel.For(b.workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := make([]int, 0, n)
			vi := make([]float64, 0, n)
			for j := 0; j < n; j++ {
				if j == i {
					if b.loops {
						if w := b.kernel.WeightDist2(0); w != 0 {
							ci = append(ci, i)
							vi = append(vi, w)
						}
					}
					continue
				}
				dv := at(d2, n, i, j)
				if b.eps > 0 && dv > eps2 {
					continue
				}
				if w := b.kernel.WeightDist2(dv); w > 0 {
					ci = append(ci, j)
					vi = append(vi, w)
				}
			}
			cols[i], vals[i] = ci, vi
		}
	})
	return cols, vals
}

// knnRows computes the symmetrized k-nearest-neighbour rows. Per row the k
// nearest candidates are found by an O(n) quickselect (ties broken by index,
// see selectK) instead of a full sort; symmetrization merges each row's
// selection with the sorted reverse-selection lists, so every row comes out
// sorted by column with no hash-map dedup.
func (b *Builder) knnRows(n int, d2 []float64) (cols [][]int, vals [][]float64) {
	eps2 := b.eps * b.eps
	// Pass 1 (parallel): per-row selection, sorted ascending by index.
	sel := make([][]int, n)
	parallel.For(b.workers, n, func(lo, hi int) {
		idx := make([]int, 0, n-1)
		for i := lo; i < hi; i++ {
			row := d2[i*n : (i+1)*n]
			idx = idx[:0]
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				if b.eps > 0 && row[j] > eps2 {
					continue
				}
				idx = append(idx, j)
			}
			k := b.knn
			if k > len(idx) {
				k = len(idx)
			}
			selectK(row, idx, k)
			top := make([]int, k)
			copy(top, idx[:k])
			sort.Ints(top)
			sel[i] = top
		}
	})
	return b.symmetrizeKNN(n, sel, func(i, j int) float64 { return at(d2, n, i, j) })
}

// symmetrizeKNN turns per-row sorted neighbour selections into the final
// symmetrized rows (an edge survives if either endpoint selected it),
// attaching weights through the squared-distance accessor d2of. Both the
// dense-matrix and the spatial-index k-NN paths funnel through here, so the
// two construction paths share the exact edge merge and weight evaluation.
func (b *Builder) symmetrizeKNN(n int, sel [][]int, d2of func(i, j int) float64) (cols [][]int, vals [][]float64) {
	// Pass 2 (serial, O(nk)): reverse lists. Appending in ascending row
	// order leaves every rev list sorted ascending.
	cnt := make([]int, n)
	for i := range sel {
		for _, j := range sel[i] {
			cnt[j]++
		}
	}
	revptr := make([]int, n+1)
	for j := 0; j < n; j++ {
		revptr[j+1] = revptr[j] + cnt[j]
	}
	rev := make([]int, revptr[n])
	fill := make([]int, n)
	copy(fill, revptr[:n])
	for i := range sel {
		for _, j := range sel[i] {
			rev[fill[j]] = i
			fill[j]++
		}
	}

	// Pass 3 (parallel): merge sel[i] with rev[i] (both sorted, dedup) and
	// attach weights; an edge survives if either endpoint selected it.
	cols = make([][]int, n)
	vals = make([][]float64, n)
	parallel.For(b.workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a, c := sel[i], rev[revptr[i]:revptr[i+1]]
			ci := make([]int, 0, len(a)+len(c)+1)
			vi := make([]float64, 0, len(a)+len(c)+1)
			diagDone := !b.loops
			emit := func(j int) {
				if !diagDone && j > i {
					if w := b.kernel.WeightDist2(0); w != 0 {
						ci = append(ci, i)
						vi = append(vi, w)
					}
					diagDone = true
				}
				if w := b.kernel.WeightDist2(d2of(i, j)); w > 0 {
					ci = append(ci, j)
					vi = append(vi, w)
				}
			}
			p, q := 0, 0
			for p < len(a) || q < len(c) {
				switch {
				case q == len(c) || (p < len(a) && a[p] < c[q]):
					emit(a[p])
					p++
				case p == len(a) || c[q] < a[p]:
					emit(c[q])
					q++
				default: // equal: both endpoints selected the edge
					emit(a[p])
					p, q = p+1, q+1
				}
			}
			if !diagDone {
				if w := b.kernel.WeightDist2(0); w != 0 {
					ci = append(ci, i)
					vi = append(vi, w)
				}
			}
			cols[i], vals[i] = ci, vi
		}
	})
	return cols, vals
}

// assembleCSR concatenates per-row sorted (column, value) lists into a CSR
// matrix: a serial prefix sum over row lengths followed by a parallel copy.
func assembleCSR(n int, cols [][]int, vals [][]float64, workers int) (*sparse.CSR, error) {
	indptr := make([]int, n+1)
	for i := 0; i < n; i++ {
		indptr[i+1] = indptr[i] + len(cols[i])
	}
	indices := make([]int, indptr[n])
	data := make([]float64, indptr[n])
	parallel.For(workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(indices[indptr[i]:indptr[i+1]], cols[i])
			copy(data[indptr[i]:indptr[i+1]], vals[i])
		}
	})
	return sparse.NewCSR(n, n, indptr, indices, data)
}

// LaplacianKind selects among the standard graph Laplacians.
type LaplacianKind int

// Supported Laplacians.
const (
	// Unnormalized is L = D − W, the Laplacian in the paper's criteria.
	Unnormalized LaplacianKind = iota + 1
	// SymNormalized is L_sym = I − D^{-1/2} W D^{-1/2}.
	SymNormalized
	// RandomWalk is L_rw = I − D^{-1} W.
	RandomWalk
)

// Laplacian returns the requested Laplacian as a CSR matrix. Nodes with zero
// degree contribute zero rows for Unnormalized and identity rows for the
// normalized variants.
func (g *Graph) Laplacian(kind LaplacianKind) (*sparse.CSR, error) {
	n := g.N()
	deg := g.Degrees()
	coo := sparse.NewCOO(n, n)
	switch kind {
	case Unnormalized:
		for i := 0; i < n; i++ {
			cols, vals := g.w.RowNNZ(i)
			diag := deg[i]
			for k, j := range cols {
				if j == i {
					diag -= vals[k] // self-loop cancels within the row
					continue
				}
				if err := coo.Add(i, j, -vals[k]); err != nil {
					return nil, err
				}
			}
			if err := coo.Add(i, i, diag); err != nil {
				return nil, err
			}
		}
	case SymNormalized, RandomWalk:
		for i := 0; i < n; i++ {
			if err := coo.Add(i, i, 1); err != nil {
				return nil, err
			}
			if deg[i] == 0 {
				continue
			}
			cols, vals := g.w.RowNNZ(i)
			for k, j := range cols {
				if deg[j] == 0 {
					continue
				}
				var scale float64
				if kind == SymNormalized {
					scale = 1 / math.Sqrt(deg[i]*deg[j])
				} else {
					scale = 1 / deg[i]
				}
				if err := coo.Add(i, j, -vals[k]*scale); err != nil {
					return nil, err
				}
			}
		}
	default:
		return nil, fmt.Errorf("graph: laplacian kind %d: %w", int(kind), ErrParam)
	}
	return coo.ToCSR(), nil
}

// Components returns the connected components (by positive-weight edges) as
// a slice of node-index slices, each sorted ascending, ordered by their
// smallest node.
func (g *Graph) Components() [][]int {
	n := g.N()
	uf := newUnionFind(n)
	for i := 0; i < n; i++ {
		cols, vals := g.w.RowNNZ(i)
		for k, j := range cols {
			if vals[k] > 0 && j != i {
				uf.union(i, j)
			}
		}
	}
	groups := make(map[int][]int)
	for i := 0; i < n; i++ {
		r := uf.find(i)
		groups[r] = append(groups[r], i)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(a, b int) bool { return groups[roots[a]][0] < groups[roots[b]][0] })
	out := make([][]int, 0, len(roots))
	for _, r := range roots {
		out = append(out, groups[r])
	}
	return out
}

// IsConnected reports whether the graph has a single connected component.
// The empty graph is not connected.
func (g *Graph) IsConnected() bool {
	if g.N() == 0 {
		return false
	}
	return len(g.Components()) == 1
}

// unionFind is a classic disjoint-set structure with path compression and
// union by rank.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}

// Stats summarizes a graph for diagnostics and experiment logs.
type Stats struct {
	Nodes      int
	Edges      int
	Components int
	MinDegree  float64
	MaxDegree  float64
	MeanDegree float64
}

// Summary computes the graph statistics in a single traversal of the CSR:
// one pass accumulates edge counts, union-find components, and degrees
// together instead of re-walking the matrix per statistic.
func (g *Graph) Summary() Stats {
	n := g.N()
	s := Stats{Nodes: n}
	if n == 0 {
		return s
	}
	uf := newUnionFind(n)
	deg := make([]float64, n)
	for i := 0; i < n; i++ {
		cols, vals := g.w.RowNNZ(i)
		var d float64
		for k, j := range cols {
			d += vals[k]
			if j > i && vals[k] != 0 {
				s.Edges++
			}
			if j != i && vals[k] > 0 {
				uf.union(i, j)
			}
		}
		deg[i] = d
	}
	for i := 0; i < n; i++ {
		if uf.find(i) == i {
			s.Components++
		}
	}
	s.MinDegree, _ = mat.MinVec(deg)
	s.MaxDegree, _ = mat.MaxVec(deg)
	s.MeanDegree = mat.MeanVec(deg)
	return s
}
