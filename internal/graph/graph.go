// Package graph builds and analyzes the weighted similarity graphs at the
// heart of graph-based semi-supervised learning: full-kernel graphs, k-NN
// and ε-ball sparsifications, the three standard Laplacians, and
// connectivity analysis (needed because Proposition II.2 of the paper is
// stated for connected graphs).
package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/kernel"
	"repro/internal/mat"
	"repro/internal/sparse"
)

var (
	// ErrEmpty is returned for empty point sets.
	ErrEmpty = errors.New("graph: empty input")
	// ErrParam is returned for invalid construction parameters.
	ErrParam = errors.New("graph: invalid parameter")
)

// Graph is an undirected weighted graph over n nodes with a symmetric
// similarity matrix W (zero diagonal entries are permitted; the paper's RBF
// graphs have w_ii = 1, which cancels in all Laplacian quantities).
type Graph struct {
	w *sparse.CSR
}

// FromWeights wraps a symmetric similarity matrix. The matrix is validated
// for squareness and symmetry (tolerance 1e-12 of the largest entry).
func FromWeights(w *sparse.CSR) (*Graph, error) {
	r, c := w.Dims()
	if r != c {
		return nil, fmt.Errorf("graph: weights %dx%d not square: %w", r, c, ErrParam)
	}
	if !w.IsSymmetric(1e-12) {
		return nil, fmt.Errorf("graph: weights not symmetric: %w", ErrParam)
	}
	return &Graph{w: w}, nil
}

// FromDenseWeights wraps a dense symmetric similarity matrix, dropping exact
// zeros.
func FromDenseWeights(w *mat.Dense) (*Graph, error) {
	return FromWeights(sparse.FromDense(w, 0))
}

// N returns the node count.
func (g *Graph) N() int { return g.w.Rows() }

// Weights returns the underlying CSR similarity matrix.
func (g *Graph) Weights() *sparse.CSR { return g.w }

// Weight returns w_ij.
func (g *Graph) Weight(i, j int) float64 { return g.w.At(i, j) }

// Degrees returns d_i = Σ_j w_ij.
func (g *Graph) Degrees() []float64 { return g.w.RowSums() }

// EdgeCount returns the number of undirected edges with positive weight,
// excluding self-loops.
func (g *Graph) EdgeCount() int {
	count := 0
	for i := 0; i < g.N(); i++ {
		cols, vals := g.w.RowNNZ(i)
		for k, j := range cols {
			if j > i && vals[k] != 0 {
				count++
			}
		}
	}
	return count
}

// Builder configures graph construction from points.
type Builder struct {
	kernel *kernel.K
	knn    int     // 0 = full graph
	eps    float64 // 0 = no ε-ball truncation
	loops  bool    // keep self-loops (w_ii = Profile(0))
}

// Option customizes a Builder.
type Option interface {
	apply(*Builder)
}

type optionFunc func(*Builder)

func (f optionFunc) apply(b *Builder) { f(b) }

// WithKNN keeps only the k strongest neighbours of each node
// (symmetrized: an edge survives if either endpoint selects it).
func WithKNN(k int) Option {
	return optionFunc(func(b *Builder) { b.knn = k })
}

// WithEpsilon keeps only edges with distance at most eps.
func WithEpsilon(eps float64) Option {
	return optionFunc(func(b *Builder) { b.eps = eps })
}

// WithSelfLoops keeps self-similarities w_ii (the paper's W has w_ii = 1;
// self-loops cancel in D−W, so the default drops them for sparsity).
func WithSelfLoops() Option {
	return optionFunc(func(b *Builder) { b.loops = true })
}

// NewBuilder returns a Builder for the given kernel.
func NewBuilder(k *kernel.K, opts ...Option) (*Builder, error) {
	if k == nil {
		return nil, fmt.Errorf("graph: nil kernel: %w", ErrParam)
	}
	b := &Builder{kernel: k}
	for _, o := range opts {
		o.apply(b)
	}
	if b.knn < 0 {
		return nil, fmt.Errorf("graph: knn=%d: %w", b.knn, ErrParam)
	}
	if b.eps < 0 {
		return nil, fmt.Errorf("graph: eps=%v: %w", b.eps, ErrParam)
	}
	return b, nil
}

// Build constructs the similarity graph over the points x.
func (b *Builder) Build(x [][]float64) (*Graph, error) {
	if len(x) == 0 {
		return nil, ErrEmpty
	}
	d2, err := kernel.PairwiseDist2(x)
	if err != nil {
		return nil, err
	}
	return b.BuildFromDist2(len(x), d2)
}

// BuildFromDist2 constructs the graph from a precomputed n×n row-major
// squared-distance matrix. This is the fast path for experiments that sweep
// λ or kernels over a fixed dataset.
func (b *Builder) BuildFromDist2(n int, d2 []float64) (*Graph, error) {
	if n <= 0 || len(d2) != n*n {
		return nil, fmt.Errorf("graph: need n*n=%d distances, got %d: %w", n*n, len(d2), ErrParam)
	}
	eps2 := b.eps * b.eps

	keep := func(i, j int, dist2 float64) bool {
		if b.eps > 0 && dist2 > eps2 {
			return false
		}
		return true
	}

	coo := sparse.NewCOO(n, n)
	if b.knn > 0 {
		if err := b.addKNNEdges(coo, n, d2, eps2); err != nil {
			return nil, err
		}
	} else {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				dist2 := d2[i*n+j]
				if !keep(i, j, dist2) {
					continue
				}
				w := b.kernel.WeightDist2(dist2)
				if w > 0 {
					if err := coo.AddSym(i, j, w); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	if b.loops {
		for i := 0; i < n; i++ {
			if err := coo.Add(i, i, b.kernel.WeightDist2(0)); err != nil {
				return nil, err
			}
		}
	}
	return &Graph{w: coo.ToCSR()}, nil
}

// addKNNEdges adds the symmetrized k-nearest-neighbour edges.
func (b *Builder) addKNNEdges(coo *sparse.COO, n int, d2 []float64, eps2 float64) error {
	type edge struct{ i, j int }
	selected := make(map[edge]bool, n*b.knn)
	idx := make([]int, n-1)
	for i := 0; i < n; i++ {
		idx = idx[:0]
		for j := 0; j < n; j++ {
			if j != i {
				idx = append(idx, j)
			}
		}
		row := d2[i*n : (i+1)*n]
		sort.Slice(idx, func(a, b int) bool { return row[idx[a]] < row[idx[b]] })
		k := b.knn
		if k > len(idx) {
			k = len(idx)
		}
		for _, j := range idx[:k] {
			if b.eps > 0 && row[j] > eps2 {
				break // sorted by distance: all further neighbours also fail
			}
			lo, hi := i, j
			if lo > hi {
				lo, hi = hi, lo
			}
			selected[edge{lo, hi}] = true
		}
	}
	for e := range selected {
		w := b.kernel.WeightDist2(d2[e.i*n+e.j])
		if w > 0 {
			if err := coo.AddSym(e.i, e.j, w); err != nil {
				return err
			}
		}
	}
	return nil
}

// LaplacianKind selects among the standard graph Laplacians.
type LaplacianKind int

// Supported Laplacians.
const (
	// Unnormalized is L = D − W, the Laplacian in the paper's criteria.
	Unnormalized LaplacianKind = iota + 1
	// SymNormalized is L_sym = I − D^{-1/2} W D^{-1/2}.
	SymNormalized
	// RandomWalk is L_rw = I − D^{-1} W.
	RandomWalk
)

// Laplacian returns the requested Laplacian as a CSR matrix. Nodes with zero
// degree contribute zero rows for Unnormalized and identity rows for the
// normalized variants.
func (g *Graph) Laplacian(kind LaplacianKind) (*sparse.CSR, error) {
	n := g.N()
	deg := g.Degrees()
	coo := sparse.NewCOO(n, n)
	switch kind {
	case Unnormalized:
		for i := 0; i < n; i++ {
			cols, vals := g.w.RowNNZ(i)
			diag := deg[i]
			for k, j := range cols {
				if j == i {
					diag -= vals[k] // self-loop cancels within the row
					continue
				}
				if err := coo.Add(i, j, -vals[k]); err != nil {
					return nil, err
				}
			}
			if err := coo.Add(i, i, diag); err != nil {
				return nil, err
			}
		}
	case SymNormalized, RandomWalk:
		for i := 0; i < n; i++ {
			if err := coo.Add(i, i, 1); err != nil {
				return nil, err
			}
			if deg[i] == 0 {
				continue
			}
			cols, vals := g.w.RowNNZ(i)
			for k, j := range cols {
				if deg[j] == 0 {
					continue
				}
				var scale float64
				if kind == SymNormalized {
					scale = 1 / math.Sqrt(deg[i]*deg[j])
				} else {
					scale = 1 / deg[i]
				}
				if err := coo.Add(i, j, -vals[k]*scale); err != nil {
					return nil, err
				}
			}
		}
	default:
		return nil, fmt.Errorf("graph: laplacian kind %d: %w", int(kind), ErrParam)
	}
	return coo.ToCSR(), nil
}

// Components returns the connected components (by positive-weight edges) as
// a slice of node-index slices, each sorted ascending, ordered by their
// smallest node.
func (g *Graph) Components() [][]int {
	n := g.N()
	uf := newUnionFind(n)
	for i := 0; i < n; i++ {
		cols, vals := g.w.RowNNZ(i)
		for k, j := range cols {
			if vals[k] > 0 && j != i {
				uf.union(i, j)
			}
		}
	}
	groups := make(map[int][]int)
	for i := 0; i < n; i++ {
		r := uf.find(i)
		groups[r] = append(groups[r], i)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(a, b int) bool { return groups[roots[a]][0] < groups[roots[b]][0] })
	out := make([][]int, 0, len(roots))
	for _, r := range roots {
		out = append(out, groups[r])
	}
	return out
}

// IsConnected reports whether the graph has a single connected component.
// The empty graph is not connected.
func (g *Graph) IsConnected() bool {
	if g.N() == 0 {
		return false
	}
	return len(g.Components()) == 1
}

// unionFind is a classic disjoint-set structure with path compression and
// union by rank.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}

// Stats summarizes a graph for diagnostics and experiment logs.
type Stats struct {
	Nodes      int
	Edges      int
	Components int
	MinDegree  float64
	MaxDegree  float64
	MeanDegree float64
}

// Summary computes the graph statistics.
func (g *Graph) Summary() Stats {
	deg := g.Degrees()
	s := Stats{
		Nodes:      g.N(),
		Edges:      g.EdgeCount(),
		Components: len(g.Components()),
	}
	if len(deg) == 0 {
		return s
	}
	s.MinDegree, _ = mat.MinVec(deg)
	s.MaxDegree, _ = mat.MaxVec(deg)
	s.MeanDegree = mat.MeanVec(deg)
	return s
}
