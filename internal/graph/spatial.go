package graph

// Spatial-index construction paths. The paper's Theorem II.1 regime is
// large n with a shrinking bandwidth h_n, where the kernel's compact
// support (weight exactly zero beyond distance h) makes spatial pruning
// exact: a grid cell-list answers radius queries in O(k) per point and a
// KD-tree answers k-NN queries in O(log n) per point, so construction runs
// in O(nk) / O(n log n) time and O(nk) memory instead of materializing the
// O(n²) distance matrix. Both paths re-apply the brute-force path's exact
// distance and weight filters to the candidate sets and evaluate distances
// with kernel.Dist2 (bitwise-identical to PairwiseDist2 entries), so the
// CSR output is byte-identical to BuildFromDist2 on the same input, at
// every worker count.

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/kernel"
	"repro/internal/parallel"
	"repro/internal/spatial"
)

// IndexKind selects the neighbour-search backend used by Build.
type IndexKind int

// Supported index backends.
const (
	// IndexAuto (the default) picks a spatial index when the build has a
	// finite interaction radius or a k-NN selection and the d/n heuristic
	// predicts a win; otherwise it falls back to the dense-matrix path.
	IndexAuto IndexKind = iota
	// IndexBrute forces the dense O(n²) distance-matrix path (the
	// reference implementation, and the only option for full graphs with
	// unbounded kernels).
	IndexBrute
	// IndexGrid forces the uniform cell-list. Radius builds only: the
	// build must have a finite interaction radius (WithEpsilon or a
	// compactly supported kernel) and no k-NN selection.
	IndexGrid
	// IndexKDTree forces the KD-tree, which answers both k-NN and radius
	// queries.
	IndexKDTree
)

// String returns the lowercase backend name.
func (k IndexKind) String() string {
	switch k {
	case IndexAuto:
		return "auto"
	case IndexBrute:
		return "brute"
	case IndexGrid:
		return "grid"
	case IndexKDTree:
		return "kdtree"
	default:
		return fmt.Sprintf("IndexKind(%d)", int(k))
	}
}

// WithIndex selects the neighbour-search backend for Build. The graph is
// byte-identical across backends; the choice only affects construction time
// and memory (the spatial backends avoid the O(n²) distance matrix).
// Forcing IndexGrid or IndexKDTree on a configuration the backend cannot
// answer exactly (see the IndexKind docs) is reported as an error by Build.
func WithIndex(kind IndexKind) Option {
	return optionFunc(func(b *Builder) { b.index = kind })
}

// Auto-heuristic bounds. Cell-list and KD-tree queries degrade
// exponentially (3^d neighbour cells) respectively geometrically with the
// dimension, while the dense path is dimension-robust; and below a few
// hundred points the O(n²) matrix is too small for index setup to pay off.
const (
	autoMaxGridDim   = 6
	autoMaxKDTreeDim = 16
	autoMinIndexN    = 512
)

// gridCellPad sizes grid cells a hair above the interaction radius so
// floating-point cell assignment at the exact support boundary can never
// exclude a pair the brute-force filters would keep.
const gridCellPad = 1e-6

// gridRadiusOK reports whether a padded cell of this radius fits the grid's
// accepted range; outside it squared-distance filters under- or overflow and
// the KD-tree (exact in both regimes) takes over.
func gridRadiusOK(r float64) bool {
	cell := r * (1 + gridCellPad)
	return cell >= spatial.MinCell && cell <= spatial.MaxCell
}

// supportRadius returns the largest distance at which an edge can survive
// construction: the ε-ball radius, the compact kernel's support radius h,
// or the smaller of the two. +Inf means no finite radius (Gaussian kernel
// without an ε-ball), where only brute force or k-NN apply.
func (b *Builder) supportRadius() float64 {
	r := math.Inf(1)
	if b.eps > 0 {
		r = b.eps
	}
	if b.kernel.Kind().CompactSupport() {
		if h := b.kernel.Bandwidth(); h < r {
			r = h
		}
	}
	return r
}

// resolveIndex picks the construction backend for n points in dimension
// dim, validating explicit choices.
func (b *Builder) resolveIndex(n, dim int) (IndexKind, error) {
	radius := b.supportRadius()
	switch b.index {
	case IndexBrute:
		return IndexBrute, nil
	case IndexGrid:
		if b.knn > 0 {
			return 0, fmt.Errorf("graph: grid index cannot answer k-NN queries (use IndexKDTree): %w", ErrParam)
		}
		if math.IsInf(radius, 1) {
			return 0, fmt.Errorf("graph: grid index needs a finite radius (ε-ball or compact kernel): %w", ErrParam)
		}
		if !gridRadiusOK(radius) {
			return 0, fmt.Errorf("graph: radius %v outside the grid's cell range (use IndexKDTree): %w", radius, ErrParam)
		}
		return IndexGrid, nil
	case IndexKDTree:
		if b.knn == 0 && math.IsInf(radius, 1) {
			return 0, fmt.Errorf("graph: kd-tree index needs k-NN or a finite radius: %w", ErrParam)
		}
		return IndexKDTree, nil
	}
	// IndexAuto: spatial only when the backend can answer the query shape
	// exactly and the d/n heuristic predicts a win over the dense path.
	if dim == 0 || n < autoMinIndexN {
		return IndexBrute, nil
	}
	if b.knn > 0 {
		if dim <= autoMaxKDTreeDim {
			return IndexKDTree, nil
		}
		return IndexBrute, nil
	}
	if math.IsInf(radius, 1) {
		return IndexBrute, nil // full graph: every pair interacts
	}
	if dim <= autoMaxGridDim && gridRadiusOK(radius) {
		return IndexGrid, nil
	}
	if dim <= autoMaxKDTreeDim {
		return IndexKDTree, nil
	}
	return IndexBrute, nil
}

// radiusRows assembles the per-row (column, value) lists of a radius build
// from a candidate source: candidates(i, buf) must append a superset of
// every j whose edge to i could survive the distance and weight filters
// (including or excluding i itself; self-pairs are skipped here). Rows are
// filtered and sorted exactly like the dense path's fullRows, so the
// assembled CSR matches it byte for byte.
func (b *Builder) radiusRows(x [][]float64, candidates func(i int, buf []int32) []int32) (cols [][]int, vals [][]float64) {
	n := len(x)
	cols = make([][]int, n)
	vals = make([][]float64, n)
	eps2 := b.eps * b.eps
	parallel.For(b.workers, n, func(lo, hi int) {
		var buf []int32
		for i := lo; i < hi; i++ {
			buf = candidates(i, buf[:0])
			sort.Slice(buf, func(a, c int) bool { return buf[a] < buf[c] })
			ci := make([]int, 0, len(buf))
			vi := make([]float64, 0, len(buf))
			diagDone := !b.loops
			emitDiag := func() {
				if w := b.kernel.WeightDist2(0); w != 0 {
					ci = append(ci, i)
					vi = append(vi, w)
				}
				diagDone = true
			}
			for _, j32 := range buf {
				j := int(j32)
				if !diagDone && j >= i {
					if j == i {
						emitDiag()
						continue
					}
					emitDiag()
				}
				if j == i {
					continue
				}
				dv := kernel.Dist2(x[i], x[j])
				if b.eps > 0 && dv > eps2 {
					continue
				}
				if w := b.kernel.WeightDist2(dv); w > 0 {
					ci = append(ci, j)
					vi = append(vi, w)
				}
			}
			if !diagDone {
				emitDiag()
			}
			cols[i], vals[i] = ci, vi
		}
	})
	return cols, vals
}

// buildRadiusGrid is the cell-list radius build: O(n·k) for k retained
// neighbours per point, O(n) index memory.
func (b *Builder) buildRadiusGrid(x [][]float64) (*Graph, error) {
	r := b.supportRadius()
	g, err := spatial.NewGrid(x, r*(1+gridCellPad))
	if err != nil {
		return nil, fmt.Errorf("graph: grid index: %w", err)
	}
	cols, vals := b.radiusRows(x, func(i int, buf []int32) []int32 {
		return g.Candidates(x[i], buf)
	})
	return assembleGraph(len(x), cols, vals, b.workers)
}

// buildRadiusKDTree is the KD-tree radius build, for dimensions where the
// 3^d cell enumeration of the grid stops paying.
func (b *Builder) buildRadiusKDTree(x [][]float64) (*Graph, error) {
	r := b.supportRadius()
	t, err := spatial.NewKDTree(x, b.workers)
	if err != nil {
		return nil, fmt.Errorf("graph: kd-tree index: %w", err)
	}
	r2 := r * r
	cols, vals := b.radiusRows(x, func(i int, buf []int32) []int32 {
		// Self is kept (radiusRows skips it) so the candidate superset
		// matches the grid path's shape.
		return t.Radius(x[i], -1, r2, buf)
	})
	return assembleGraph(len(x), cols, vals, b.workers)
}

// buildKNNKDTree is the KD-tree k-NN build: per-row bounded-priority
// descent selects the same (distance, index)-ordered neighbour set as the
// dense path's quickselect, then the shared symmetrization attaches
// weights.
func (b *Builder) buildKNNKDTree(x [][]float64) (*Graph, error) {
	n := len(x)
	t, err := spatial.NewKDTree(x, b.workers)
	if err != nil {
		return nil, fmt.Errorf("graph: kd-tree index: %w", err)
	}
	maxD2 := -1.0
	if b.eps > 0 {
		maxD2 = b.eps * b.eps
	}
	sel := make([][]int, n)
	parallel.For(b.workers, n, func(lo, hi int) {
		var buf []int32
		for i := lo; i < hi; i++ {
			buf = t.KNN(x[i], int32(i), b.knn, maxD2, buf[:0])
			top := make([]int, len(buf))
			for p, j := range buf {
				top[p] = int(j)
			}
			sel[i] = top
		}
	})
	cols, vals := b.symmetrizeKNN(n, sel, func(i, j int) float64 {
		return kernel.Dist2(x[i], x[j])
	})
	return assembleGraph(n, cols, vals, b.workers)
}

// assembleGraph finishes a build from per-row sorted lists.
func assembleGraph(n int, cols [][]int, vals [][]float64, workers int) (*Graph, error) {
	w, err := assembleCSR(n, cols, vals, workers)
	if err != nil {
		return nil, err
	}
	return &Graph{w: w}, nil
}
