package graph

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/kernel"
	"repro/internal/randx"
)

func TestEdgeListRoundTrip(t *testing.T) {
	rng := randx.New(701)
	x := make([][]float64, 9)
	for i := range x {
		x[i] = []float64{rng.Norm(), rng.Norm()}
	}
	b, err := NewBuilder(kernel.MustNew(kernel.Gaussian, 1), WithSelfLoops())
	if err != nil {
		t.Fatal(err)
	}
	g, err := b.Build(x)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := g.WriteEdgeList(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Weights().ToDense().Equal(g.Weights().ToDense(), 1e-15) {
		t.Fatal("round trip changed the graph")
	}
}

func TestEdgeListRoundTripSparse(t *testing.T) {
	b, err := NewBuilder(kernel.MustNew(kernel.Uniform, 1))
	if err != nil {
		t.Fatal(err)
	}
	g, err := b.Build(linePoints(6))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := g.WriteEdgeList(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "nodes 6\n") {
		t.Fatalf("header: %s", sb.String())
	}
	back, err := ReadEdgeList(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.EdgeCount() != g.EdgeCount() {
		t.Fatal("edge count changed")
	}
}

func TestReadEdgeListCommentsAndBlanks(t *testing.T) {
	src := "nodes 3\n# comment\n\n0 1 0.5\nloop 2 1\n"
	g, err := ReadEdgeList(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.Weight(0, 1) != 0.5 || g.Weight(1, 0) != 0.5 || g.Weight(2, 2) != 1 {
		t.Fatal("parsed weights wrong")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"bad header", "vertices 3\n"},
		{"negative nodes", "nodes -1\n"},
		{"bad edge fields", "nodes 2\n0 1\n"},
		{"non-numeric", "nodes 2\n0 x 1\n"},
		{"self edge", "nodes 2\n1 1 0.5\n"},
		{"out of range", "nodes 2\n0 5 0.5\n"},
		{"bad loop", "nodes 2\nloop x 1\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadEdgeList(strings.NewReader(tc.src)); err == nil {
				t.Fatal("want error")
			}
		})
	}
	// Specific sentinel for a recognizable case.
	if _, err := ReadEdgeList(strings.NewReader("nodes 2\n0 1\n")); !errors.Is(err, ErrParam) {
		t.Fatal("want ErrParam")
	}
}
