package graph

import (
	"strings"
	"testing"
)

// FuzzReadEdgeList hardens the edge-list parser: arbitrary input must never
// panic, and any successfully parsed graph must satisfy the package
// invariants (symmetry, consistent counts) and round-trip through
// WriteEdgeList.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("nodes 3\n0 1 0.5\nloop 2 1\n")
	f.Add("nodes 0\n")
	f.Add("nodes 2\n# comment\n\n0 1 1e-3\n")
	f.Add("nodes 2\n0 1 NaN\n")
	f.Add("nodes -5\n")
	f.Add("vertices 2\n")
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ReadEdgeList(strings.NewReader(src))
		if err != nil {
			return // rejection is fine; panics are not
		}
		if !g.Weights().IsSymmetric(0) {
			t.Fatal("parsed graph not symmetric")
		}
		var sb strings.Builder
		if err := g.WriteEdgeList(&sb); err != nil {
			t.Fatalf("write back: %v", err)
		}
		back, err := ReadEdgeList(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("reparse: %v", err)
		}
		if back.N() != g.N() || back.EdgeCount() != g.EdgeCount() {
			t.Fatal("round trip changed the graph")
		}
	})
}
