package cluster

import (
	"errors"
	"fmt"
	"math"
	"net"
	"net/rpc"
	"sync"

	"repro/internal/core"
)

// SetupArgs ships one worker's block of the propagation system: rows
// [Lo, Hi) of W in CSR form plus the matching diagonal and labeled-mass
// entries.
type SetupArgs struct {
	Lo, Hi int
	M      int // total unknowns, for validating Step payloads
	D      []float64
	B      []float64
	RowPtr []int // len Hi-Lo+1, offsets into Cols/Vals
	Cols   []int
	Vals   []float64
}

// StepArgs carries the frozen global iterate for one superstep.
type StepArgs struct {
	F []float64
}

// StepReply returns the worker's updated block and its largest update.
type StepReply struct {
	Values   []float64
	MaxDelta float64
}

// WorkerService is the RPC-exposed propagation worker. One Setup call binds
// it to a block; each Step call computes the block's Jacobi update.
type WorkerService struct {
	mu    sync.Mutex
	ready bool
	args  SetupArgs
}

// Setup installs the worker's block. It may be called again to rebind the
// worker to a new problem.
func (w *WorkerService) Setup(args *SetupArgs, _ *struct{}) error {
	if args.Hi <= args.Lo || args.Lo < 0 || args.Hi > args.M {
		return fmt.Errorf("cluster: worker setup block [%d,%d) of %d invalid", args.Lo, args.Hi, args.M)
	}
	rows := args.Hi - args.Lo
	if len(args.D) != rows || len(args.B) != rows || len(args.RowPtr) != rows+1 {
		return errors.New("cluster: worker setup slice lengths inconsistent")
	}
	for _, d := range args.D {
		if d <= 0 {
			return errors.New("cluster: worker setup nonpositive degree")
		}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.args = *args
	w.ready = true
	return nil
}

// Step computes the block update for the supplied global iterate.
func (w *WorkerService) Step(args *StepArgs, reply *StepReply) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.ready {
		return errors.New("cluster: worker not set up")
	}
	if len(args.F) != w.args.M {
		return fmt.Errorf("cluster: step with %d values, want %d", len(args.F), w.args.M)
	}
	rows := w.args.Hi - w.args.Lo
	reply.Values = make([]float64, rows)
	for r := 0; r < rows; r++ {
		s := w.args.B[r]
		for c := w.args.RowPtr[r]; c < w.args.RowPtr[r+1]; c++ {
			s += w.args.Vals[c] * args.F[w.args.Cols[c]]
		}
		v := s / w.args.D[r]
		reply.Values[r] = v
		if d := math.Abs(v - args.F[w.args.Lo+r]); d > reply.MaxDelta {
			reply.MaxDelta = d
		}
	}
	return nil
}

// Worker is a running TCP propagation worker.
type Worker struct {
	ln      net.Listener
	service *WorkerService
	wg      sync.WaitGroup

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// StartWorker launches a worker listening on addr (use "127.0.0.1:0" for an
// ephemeral port). Close must be called to release the listener.
func StartWorker(addr string) (*Worker, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", addr, err)
	}
	w := &Worker{ln: ln, service: &WorkerService{}, conns: make(map[net.Conn]struct{})}
	srv := rpc.NewServer()
	if err := srv.RegisterName("Propagation", w.service); err != nil {
		_ = ln.Close()
		return nil, fmt.Errorf("cluster: register: %w", err)
	}
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			w.mu.Lock()
			w.conns[conn] = struct{}{}
			w.mu.Unlock()
			w.wg.Add(1)
			go func() {
				defer w.wg.Done()
				srv.ServeConn(conn)
				w.mu.Lock()
				delete(w.conns, conn)
				w.mu.Unlock()
			}()
		}
	}()
	return w, nil
}

// Addr returns the worker's dialable address.
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// Close stops accepting connections, terminates live sessions, and waits
// for the serving goroutines to exit. Coordinators with in-flight calls
// observe an RPC error — the failure mode SolveRPC surfaces as ErrWorker.
func (w *Worker) Close() error {
	err := w.ln.Close()
	w.mu.Lock()
	for c := range w.conns {
		_ = c.Close()
	}
	w.mu.Unlock()
	w.wg.Wait()
	return err
}

// RPCOptions configures the TCP coordinator.
type RPCOptions struct {
	// Tol is the relative update tolerance; default 1e-10.
	Tol float64
	// MaxSupersteps caps iterations; default 100000.
	MaxSupersteps int
}

func (o *RPCOptions) fill() {
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.MaxSupersteps <= 0 {
		o.MaxSupersteps = 100000
	}
}

// SolveRPC distributes the system over the workers at the given addresses
// and coordinates Jacobi supersteps until convergence. The result is
// identical (up to tolerance) to SolveLocal and to the serial solver.
func SolveRPC(sys *core.PropagationSystem, addrs []string, opts RPCOptions) ([]float64, Result, error) {
	if sys == nil || sys.M() == 0 {
		return nil, Result{}, fmt.Errorf("cluster: empty system: %w", ErrParam)
	}
	if len(addrs) == 0 {
		return nil, Result{}, fmt.Errorf("cluster: no workers: %w", ErrParam)
	}
	opts.fill()
	m := sys.M()
	blocks, err := Partition(m, len(addrs))
	if err != nil {
		return nil, Result{}, err
	}

	clients := make([]*rpc.Client, len(blocks))
	defer func() {
		for _, c := range clients {
			if c != nil {
				_ = c.Close()
			}
		}
	}()
	for i := range blocks {
		c, err := rpc.Dial("tcp", addrs[i])
		if err != nil {
			return nil, Result{}, fmt.Errorf("cluster: dial %s: %w: %v", addrs[i], ErrWorker, err)
		}
		clients[i] = c
	}

	// Ship each worker its block.
	for i, blk := range blocks {
		args := extractBlock(sys, blk)
		if err := clients[i].Call("Propagation.Setup", args, &struct{}{}); err != nil {
			return nil, Result{}, fmt.Errorf("cluster: setup %s: %w: %v", addrs[i], ErrWorker, err)
		}
	}

	f := make([]float64, m)
	replies := make([]StepReply, len(blocks))
	for step := 0; step < opts.MaxSupersteps; step++ {
		calls := make([]*rpc.Call, len(blocks))
		for i := range blocks {
			replies[i] = StepReply{}
			calls[i] = clients[i].Go("Propagation.Step", &StepArgs{F: f}, &replies[i], nil)
		}
		var maxDelta float64
		for i, call := range calls {
			<-call.Done
			if call.Error != nil {
				return nil, Result{}, fmt.Errorf("cluster: step on %s: %w: %v", addrs[i], ErrWorker, call.Error)
			}
			if replies[i].MaxDelta > maxDelta {
				maxDelta = replies[i].MaxDelta
			}
		}
		for i, blk := range blocks {
			copy(f[blk.Lo:blk.Hi], replies[i].Values)
		}
		var scale float64
		for _, v := range f {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		if maxDelta <= opts.Tol*(1+scale) {
			return f, Result{Supersteps: step + 1, MaxDelta: maxDelta, Workers: len(blocks)}, nil
		}
	}
	return f, Result{Supersteps: opts.MaxSupersteps, Workers: len(blocks)}, ErrNotConverged
}

// extractBlock slices rows [blk.Lo, blk.Hi) of the system into a SetupArgs.
func extractBlock(sys *core.PropagationSystem, blk Block) *SetupArgs {
	rows := blk.Len()
	args := &SetupArgs{
		Lo:     blk.Lo,
		Hi:     blk.Hi,
		M:      sys.M(),
		D:      make([]float64, rows),
		B:      make([]float64, rows),
		RowPtr: make([]int, rows+1),
	}
	for r := 0; r < rows; r++ {
		k := blk.Lo + r
		args.D[r] = sys.D[k]
		args.B[r] = sys.B[k]
		cols, vals := sys.W.RowNNZ(k)
		args.Cols = append(args.Cols, cols...)
		args.Vals = append(args.Vals, vals...)
		args.RowPtr[r+1] = len(args.Cols)
	}
	return args
}
