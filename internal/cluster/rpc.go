package cluster

import (
	"fmt"
	"math"
	"net"
	"net/rpc"
	"sort"
	"sync"

	"repro/internal/precond"
	"repro/internal/sparse"
)

// Wire protocol
//
// Two solve protocols share one RPC service ("Propagation"):
//
//   - Jacobi propagation (Setup/Step): the worker holds its block of the
//     fixed-point system f ← D⁻¹(B + W f) and the current block iterate;
//     each superstep ships only the halo entries the block reads and
//     returns the updated block.
//   - Distributed PCG (Bind/Start/Mul/Update/Gather): block-row conjugate
//     gradient on A = D − W with a per-chunk additive-Schwarz
//     preconditioner. Reductions return per-chunk partial sums so the
//     coordinator can fold them in a fixed, shard-count-independent order.
//
// Every call carries (Shard, Epoch) and the stepped calls a sequence
// number. Epochs order rebinds: a call whose epoch is older than the
// block's current epoch is rejected as stale, so a worker reassigned after
// a coordinator-observed failure can never be driven by leftover traffic
// from the previous incarnation. Sequence numbers make stepped calls
// idempotent: a duplicate delivery of the last executed step returns the
// cached reply instead of re-executing, so at-least-once transports cannot
// corrupt the iteration.

// SetupArgs ships one worker's block of the propagation system: rows
// [Lo, Hi) of W in CSR form with columns pre-translated to local indexing
// (own rows first, then halo slots), plus the matching diagonal and
// labeled-mass entries.
type SetupArgs struct {
	Shard int
	Epoch int64
	Lo    int
	Hi    int
	M     int // total unknowns, for validation
	D     []float64
	B     []float64
	RowPtr []int // len Hi-Lo+1, offsets into Cols/Vals
	// Cols uses local indexing: c < Hi-Lo refers to own row Lo+c; c >=
	// Hi-Lo refers to halo entry Halo[c-(Hi-Lo)].
	Cols []int
	Vals []float64
	// Halo lists, ascending, the global indices outside [Lo, Hi) the block
	// reads; Step ships values for exactly these indices, in this order.
	Halo []int
}

// SetupReply is empty; Setup errors carry all the information.
type SetupReply struct{}

// StepArgs carries one superstep's halo values for a block.
type StepArgs struct {
	Shard int
	Epoch int64
	// Seq is the 1-based superstep number; a duplicate of the last executed
	// step returns the cached reply, anything else out of order is stale.
	Seq  int64
	Halo []float64
}

// StepReply returns the worker's updated block and its largest update.
type StepReply struct {
	Values   []float64
	MaxDelta float64
}

// BindArgs ships one shard's block of the PCG system A = D − W: rows
// [Lo, Hi) in CSR form with local column indexing (like SetupArgs), the
// right-hand side, and the plan's halo/boundary index lists. Quantum is the
// plan's chunk size; the block must be chunk-aligned.
type BindArgs struct {
	Shard   int
	Epoch   int64
	Lo      int
	Hi      int
	M       int
	Quantum int
	RowPtr  []int
	Cols    []int
	Vals    []float64
	B       []float64
	Halo    []int
	// Boundary lists, ascending, the block rows other shards read; replies
	// export z at exactly these rows.
	Boundary []int
}

// BindReply is empty.
type BindReply struct{}

// StartArgs (re)initializes a bound block's PCG state from a guess x0.
type StartArgs struct {
	Shard int
	Epoch int64
	// X0 is the block of the initial guess, Halo its halo values.
	X0   []float64
	Halo []float64
}

// ReduceReply returns the per-chunk partial reductions of a Start or
// Update: rᵀz and rᵀr restricted to each owned chunk (ascending chunk
// order), plus z at the boundary rows.
type ReduceReply struct {
	Rho []float64
	RR  []float64
	BZ  []float64
}

// MulArgs drives the direction update p ← z + βp and the product q = A p.
type MulArgs struct {
	Shard int
	Epoch int64
	Seq   int64
	Beta  float64
	Halo  []float64 // halo values of the updated p
}

// MulReply returns the per-chunk pᵀq partials.
type MulReply struct {
	Pi []float64
}

// UpdateArgs applies x ← x + αp, r ← r − αq and re-preconditions.
type UpdateArgs struct {
	Shard int
	Epoch int64
	Seq   int64
	Alpha float64
}

// GatherArgs requests a block's current solution iterate.
type GatherArgs struct {
	Shard int
	Epoch int64
}

// GatherReply carries the block of x.
type GatherReply struct {
	X []float64
}

// jacBlock is one bound Jacobi-propagation block.
type jacBlock struct {
	epoch        int64
	lo, hi, m    int
	d, b         []float64
	rowptr, cols []int
	vals         []float64
	halo         []int
	f            []float64 // current block iterate
	next         []float64
	xfull        []float64 // [own f | halo] read vector
	seq          int64     // last executed superstep (0 = none yet)
	cachedDelta  float64
}

// pcgChunk is one preconditioner chunk of a PCG block: a local row range
// and the chunk-diagonal factorization applied to it.
type pcgChunk struct {
	lo, hi int // local row range
	pre    precond.Preconditioner
}

// pcgBlock is one bound PCG block with its local Krylov state.
type pcgBlock struct {
	epoch          int64
	lo, hi, m      int
	quantum        int
	rowptr, cols   []int
	vals, b        []float64
	halo, boundary []int
	chunks         []pcgChunk
	x, r, p, z, q  []float64
	pfull          []float64 // [own | halo] read vector for products
	seq            int64
	phase          byte // 'A' after Start/Update, 'B' after Mul
	lastReduce     ReduceReply
	lastMul        MulReply
}

// WorkerService is the RPC-exposed worker. Blocks are keyed by shard index,
// so one worker can host several shards (the coordinator reassigns a
// crashed worker's blocks to survivors).
type WorkerService struct {
	mu  sync.Mutex
	jac map[int]*jacBlock
	pcg map[int]*pcgBlock
}

// NewWorkerService returns an empty worker.
func NewWorkerService() *WorkerService {
	return &WorkerService{jac: map[int]*jacBlock{}, pcg: map[int]*pcgBlock{}}
}

// validHalo checks a halo index list: ascending, within [0, m), outside
// [lo, hi).
func validHalo(halo []int, lo, hi, m int) error {
	for i, h := range halo {
		if h < 0 || h >= m || (h >= lo && h < hi) {
			return fmt.Errorf("cluster: halo index %d outside [0,%d)\\[%d,%d): %w", h, m, lo, hi, ErrParam)
		}
		if i > 0 && h <= halo[i-1] {
			return fmt.Errorf("cluster: halo not ascending at %d: %w", i, ErrParam)
		}
	}
	return nil
}

// validCSRBlock checks a local-indexed CSR block against its row count and
// halo width.
func validCSRBlock(rowptr, cols []int, vals []float64, rows, width int) error {
	if len(rowptr) != rows+1 || rowptr[0] != 0 || rowptr[rows] != len(cols) || len(cols) != len(vals) {
		return fmt.Errorf("cluster: block CSR shape inconsistent: %w", ErrParam)
	}
	for r := 0; r < rows; r++ {
		if rowptr[r] > rowptr[r+1] {
			return fmt.Errorf("cluster: block CSR row %d negative extent: %w", r, ErrParam)
		}
	}
	for _, c := range cols {
		if c < 0 || c >= width {
			return fmt.Errorf("cluster: block CSR column %d outside [0,%d): %w", c, width, ErrParam)
		}
	}
	return nil
}

// Setup installs (or, with a newer epoch, rebinds) a Jacobi-propagation
// block. A Setup whose epoch is older than the installed block's is a stale
// rebind and rejected.
func (w *WorkerService) Setup(args *SetupArgs, _ *SetupReply) error {
	if args.Hi <= args.Lo || args.Lo < 0 || args.Hi > args.M {
		return fmt.Errorf("cluster: worker setup block [%d,%d) of %d invalid: %w", args.Lo, args.Hi, args.M, ErrParam)
	}
	rows := args.Hi - args.Lo
	if len(args.D) != rows || len(args.B) != rows {
		return fmt.Errorf("cluster: worker setup slice lengths inconsistent: %w", ErrParam)
	}
	for _, d := range args.D {
		if d <= 0 {
			return fmt.Errorf("cluster: worker setup nonpositive degree: %w", ErrParam)
		}
	}
	if err := validCSRBlock(args.RowPtr, args.Cols, args.Vals, rows, rows+len(args.Halo)); err != nil {
		return err
	}
	if err := validHalo(args.Halo, args.Lo, args.Hi, args.M); err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if prev, ok := w.jac[args.Shard]; ok && args.Epoch < prev.epoch {
		return fmt.Errorf("cluster: setup shard %d epoch %d < bound epoch %d: %w",
			args.Shard, args.Epoch, prev.epoch, ErrStale)
	}
	blk := &jacBlock{
		epoch:  args.Epoch,
		lo:     args.Lo,
		hi:     args.Hi,
		m:      args.M,
		d:      append([]float64(nil), args.D...),
		b:      append([]float64(nil), args.B...),
		rowptr: append([]int(nil), args.RowPtr...),
		cols:   append([]int(nil), args.Cols...),
		vals:   append([]float64(nil), args.Vals...),
		halo:   append([]int(nil), args.Halo...),
		f:      make([]float64, rows),
		next:   make([]float64, rows),
		xfull:  make([]float64, rows+len(args.Halo)),
	}
	w.jac[args.Shard] = blk
	return nil
}

// Step computes the block's Jacobi update for one superstep.
func (w *WorkerService) Step(args *StepArgs, reply *StepReply) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	blk, ok := w.jac[args.Shard]
	if !ok {
		return fmt.Errorf("cluster: step on unbound shard %d: %w", args.Shard, ErrParam)
	}
	if args.Epoch != blk.epoch {
		return fmt.Errorf("cluster: step shard %d epoch %d, bound %d: %w", args.Shard, args.Epoch, blk.epoch, ErrStale)
	}
	if len(args.Halo) != len(blk.halo) {
		return fmt.Errorf("cluster: step with %d halo values, want %d: %w", len(args.Halo), len(blk.halo), ErrParam)
	}
	switch {
	case args.Seq == blk.seq && blk.seq > 0:
		// Duplicate delivery of the executed step: replay the cached state.
		reply.Values = append(reply.Values[:0], blk.f...)
		reply.MaxDelta = blk.cachedDelta
		return nil
	case args.Seq != blk.seq+1:
		return fmt.Errorf("cluster: step shard %d seq %d, expected %d: %w", args.Shard, args.Seq, blk.seq+1, ErrStale)
	}
	rows := blk.hi - blk.lo
	copy(blk.xfull[:rows], blk.f)
	copy(blk.xfull[rows:], args.Halo)
	var maxDelta float64
	for r := 0; r < rows; r++ {
		s := blk.b[r]
		for c := blk.rowptr[r]; c < blk.rowptr[r+1]; c++ {
			s += blk.vals[c] * blk.xfull[blk.cols[c]]
		}
		v := s / blk.d[r]
		blk.next[r] = v
		if d := math.Abs(v - blk.f[r]); d > maxDelta {
			maxDelta = d
		}
	}
	blk.f, blk.next = blk.next, blk.f
	blk.seq = args.Seq
	blk.cachedDelta = maxDelta
	reply.Values = append(reply.Values[:0], blk.f...)
	reply.MaxDelta = maxDelta
	return nil
}

// Bind installs (or rebinds) a PCG block: copies the matrix slice, checks
// chunk alignment, and factors the per-chunk additive-Schwarz
// preconditioner. The chunk layout depends only on (M, Quantum), never on
// the shard count, so the preconditioner is identical however the chunks
// are grouped into shards.
func (w *WorkerService) Bind(args *BindArgs, _ *BindReply) error {
	if args.Hi <= args.Lo || args.Lo < 0 || args.Hi > args.M {
		return fmt.Errorf("cluster: bind block [%d,%d) of %d invalid: %w", args.Lo, args.Hi, args.M, ErrParam)
	}
	if args.Quantum < 1 || args.Lo%args.Quantum != 0 || (args.Hi != args.M && args.Hi%args.Quantum != 0) {
		return fmt.Errorf("cluster: bind block [%d,%d) not aligned to quantum %d: %w", args.Lo, args.Hi, args.Quantum, ErrParam)
	}
	rows := args.Hi - args.Lo
	if len(args.B) != rows {
		return fmt.Errorf("cluster: bind rhs length %d for %d rows: %w", len(args.B), rows, ErrParam)
	}
	if err := validCSRBlock(args.RowPtr, args.Cols, args.Vals, rows, rows+len(args.Halo)); err != nil {
		return err
	}
	if err := validHalo(args.Halo, args.Lo, args.Hi, args.M); err != nil {
		return err
	}
	for i, g := range args.Boundary {
		if g < args.Lo || g >= args.Hi {
			return fmt.Errorf("cluster: boundary index %d outside [%d,%d): %w", g, args.Lo, args.Hi, ErrParam)
		}
		if i > 0 && g <= args.Boundary[i-1] {
			return fmt.Errorf("cluster: boundary not ascending at %d: %w", i, ErrParam)
		}
	}
	blk := &pcgBlock{
		epoch:    args.Epoch,
		lo:       args.Lo,
		hi:       args.Hi,
		m:        args.M,
		quantum:  args.Quantum,
		rowptr:   append([]int(nil), args.RowPtr...),
		cols:     append([]int(nil), args.Cols...),
		vals:     append([]float64(nil), args.Vals...),
		b:        append([]float64(nil), args.B...),
		halo:     append([]int(nil), args.Halo...),
		boundary: append([]int(nil), args.Boundary...),
		x:        make([]float64, rows),
		r:        make([]float64, rows),
		p:        make([]float64, rows),
		z:        make([]float64, rows),
		q:        make([]float64, rows),
		pfull:    make([]float64, rows+len(args.Halo)),
	}
	if err := blk.factorChunks(); err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if prev, ok := w.pcg[args.Shard]; ok && args.Epoch < prev.epoch {
		return fmt.Errorf("cluster: bind shard %d epoch %d < bound epoch %d: %w",
			args.Shard, args.Epoch, prev.epoch, ErrStale)
	}
	w.pcg[args.Shard] = blk
	return nil
}

// factorChunks extracts each owned chunk's diagonal sub-block and builds
// its preconditioner (IC(0), falling back to Jacobi scaling on breakdown —
// a per-chunk, hence shard-count-independent, decision).
func (blk *pcgBlock) factorChunks() error {
	rows := blk.hi - blk.lo
	blk.chunks = blk.chunks[:0]
	for start := 0; start < rows; start += blk.quantum {
		end := min(start+blk.quantum, rows)
		cn := end - start
		indptr := make([]int, cn+1)
		var indices []int
		var data []float64
		for r := start; r < end; r++ {
			diagSeen := false
			for c := blk.rowptr[r]; c < blk.rowptr[r+1]; c++ {
				lc := blk.cols[c]
				if lc >= start && lc < end {
					indices = append(indices, lc-start)
					data = append(data, blk.vals[c])
					if lc == r {
						diagSeen = blk.vals[c] > 0
					}
				}
			}
			if !diagSeen {
				return fmt.Errorf("cluster: bind row %d lacks a positive diagonal: %w", blk.lo+r, ErrParam)
			}
			indptr[r-start+1] = len(indices)
		}
		sub, err := sparse.NewCSR(cn, cn, indptr, indices, data)
		if err != nil {
			return fmt.Errorf("cluster: bind chunk at %d: %w: %v", blk.lo+start, ErrParam, err)
		}
		pre, err := precond.Auto(sub)
		if err != nil {
			return fmt.Errorf("cluster: bind chunk precond at %d: %w: %v", blk.lo+start, ErrParam, err)
		}
		blk.chunks = append(blk.chunks, pcgChunk{lo: start, hi: end, pre: pre})
	}
	return nil
}

// spmv computes dst = A_block · [own | halo] for the provided own values
// (already copied into pfull[:rows]) and halo values.
func (blk *pcgBlock) spmv(dst []float64) {
	rows := blk.hi - blk.lo
	for r := 0; r < rows; r++ {
		var s float64
		for c := blk.rowptr[r]; c < blk.rowptr[r+1]; c++ {
			s += blk.vals[c] * blk.pfull[blk.cols[c]]
		}
		dst[r] = s
	}
}

// reduceInto preconditions r into z and fills the cached ReduceReply with
// per-chunk rᵀz, rᵀr partials (row order inside each chunk, ascending
// chunks) and the boundary z export.
func (blk *pcgBlock) reduceInto() {
	rep := &blk.lastReduce
	rep.Rho = rep.Rho[:0]
	rep.RR = rep.RR[:0]
	rep.BZ = rep.BZ[:0]
	for _, ch := range blk.chunks {
		ch.pre.Apply(blk.z[ch.lo:ch.hi], blk.r[ch.lo:ch.hi])
		var rho, rr float64
		for i := ch.lo; i < ch.hi; i++ {
			rho += blk.r[i] * blk.z[i]
			rr += blk.r[i] * blk.r[i]
		}
		rep.Rho = append(rep.Rho, rho)
		rep.RR = append(rep.RR, rr)
	}
	for _, g := range blk.boundary {
		rep.BZ = append(rep.BZ, blk.z[g-blk.lo])
	}
}

func copyReduce(dst *ReduceReply, src *ReduceReply) {
	dst.Rho = append(dst.Rho[:0], src.Rho...)
	dst.RR = append(dst.RR[:0], src.RR...)
	dst.BZ = append(dst.BZ[:0], src.BZ...)
}

// Start (re)initializes the block's Krylov state from x0: r = b − A x0,
// p = 0, z = M⁻¹r. It is idempotent for its epoch (a duplicate simply
// recomputes the same pure function) and accepts epoch bumps, which is how
// the coordinator advances surviving blocks past a rebind without
// reshipping the matrix.
func (w *WorkerService) Start(args *StartArgs, reply *ReduceReply) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	blk, ok := w.pcg[args.Shard]
	if !ok {
		return fmt.Errorf("cluster: start on unbound shard %d: %w", args.Shard, ErrParam)
	}
	if args.Epoch < blk.epoch {
		return fmt.Errorf("cluster: start shard %d epoch %d < bound epoch %d: %w", args.Shard, args.Epoch, blk.epoch, ErrStale)
	}
	rows := blk.hi - blk.lo
	if len(args.X0) != rows || len(args.Halo) != len(blk.halo) {
		return fmt.Errorf("cluster: start lengths x0=%d halo=%d, want %d/%d: %w",
			len(args.X0), len(args.Halo), rows, len(blk.halo), ErrParam)
	}
	blk.epoch = args.Epoch
	copy(blk.x, args.X0)
	copy(blk.pfull[:rows], args.X0)
	copy(blk.pfull[rows:], args.Halo)
	blk.spmv(blk.q)
	for i := range blk.r {
		blk.r[i] = blk.b[i] - blk.q[i]
		blk.p[i] = 0
	}
	blk.reduceInto()
	blk.seq = 0
	blk.phase = 'A'
	copyReduce(reply, &blk.lastReduce)
	return nil
}

// Mul advances the search direction (p ← z + βp) and computes q = A p,
// returning per-chunk pᵀq partials.
func (w *WorkerService) Mul(args *MulArgs, reply *MulReply) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	blk, ok := w.pcg[args.Shard]
	if !ok {
		return fmt.Errorf("cluster: mul on unbound shard %d: %w", args.Shard, ErrParam)
	}
	if args.Epoch != blk.epoch {
		return fmt.Errorf("cluster: mul shard %d epoch %d, bound %d: %w", args.Shard, args.Epoch, blk.epoch, ErrStale)
	}
	if len(args.Halo) != len(blk.halo) {
		return fmt.Errorf("cluster: mul with %d halo values, want %d: %w", len(args.Halo), len(blk.halo), ErrParam)
	}
	if args.Seq == blk.seq && blk.phase == 'B' {
		reply.Pi = append(reply.Pi[:0], blk.lastMul.Pi...)
		return nil
	}
	if args.Seq != blk.seq+1 || blk.phase != 'A' {
		return fmt.Errorf("cluster: mul shard %d seq %d phase %c, expected seq %d phase A: %w",
			args.Shard, args.Seq, blk.phase, blk.seq+1, ErrStale)
	}
	rows := blk.hi - blk.lo
	for i := range blk.p {
		blk.p[i] = blk.z[i] + args.Beta*blk.p[i]
	}
	copy(blk.pfull[:rows], blk.p)
	copy(blk.pfull[rows:], args.Halo)
	blk.spmv(blk.q)
	blk.lastMul.Pi = blk.lastMul.Pi[:0]
	for _, ch := range blk.chunks {
		var pi float64
		for i := ch.lo; i < ch.hi; i++ {
			pi += blk.p[i] * blk.q[i]
		}
		blk.lastMul.Pi = append(blk.lastMul.Pi, pi)
	}
	blk.seq = args.Seq
	blk.phase = 'B'
	reply.Pi = append(reply.Pi[:0], blk.lastMul.Pi...)
	return nil
}

// Update applies the step (x ← x + αp, r ← r − αq), re-preconditions, and
// returns the next reduction partials.
func (w *WorkerService) Update(args *UpdateArgs, reply *ReduceReply) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	blk, ok := w.pcg[args.Shard]
	if !ok {
		return fmt.Errorf("cluster: update on unbound shard %d: %w", args.Shard, ErrParam)
	}
	if args.Epoch != blk.epoch {
		return fmt.Errorf("cluster: update shard %d epoch %d, bound %d: %w", args.Shard, args.Epoch, blk.epoch, ErrStale)
	}
	if args.Seq == blk.seq && blk.phase == 'A' && blk.seq > 0 {
		copyReduce(reply, &blk.lastReduce)
		return nil
	}
	if args.Seq != blk.seq+1 || blk.phase != 'B' {
		return fmt.Errorf("cluster: update shard %d seq %d phase %c, expected seq %d phase B: %w",
			args.Shard, args.Seq, blk.phase, blk.seq+1, ErrStale)
	}
	for i := range blk.x {
		blk.x[i] += args.Alpha * blk.p[i]
		blk.r[i] -= args.Alpha * blk.q[i]
	}
	blk.reduceInto()
	blk.seq = args.Seq
	blk.phase = 'A'
	copyReduce(reply, &blk.lastReduce)
	return nil
}

// Gather returns the block's current solution iterate.
func (w *WorkerService) Gather(args *GatherArgs, reply *GatherReply) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	blk, ok := w.pcg[args.Shard]
	if !ok {
		return fmt.Errorf("cluster: gather on unbound shard %d: %w", args.Shard, ErrParam)
	}
	if args.Epoch != blk.epoch {
		return fmt.Errorf("cluster: gather shard %d epoch %d, bound %d: %w", args.Shard, args.Epoch, blk.epoch, ErrStale)
	}
	reply.X = append(reply.X[:0], blk.x...)
	return nil
}

// haloOf computes the sorted external read set of rows [lo, hi) of w.
func haloOf(w *sparse.CSR, lo, hi int) []int {
	seen := map[int]struct{}{}
	for r := lo; r < hi; r++ {
		cols, _ := w.RowNNZ(r)
		for _, j := range cols {
			if j < lo || j >= hi {
				seen[j] = struct{}{}
			}
		}
	}
	halo := make([]int, 0, len(seen))
	for j := range seen {
		halo = append(halo, j)
	}
	sort.Ints(halo)
	return halo
}

// Worker is a running TCP worker process hosting a WorkerService.
type Worker struct {
	ln      net.Listener
	service *WorkerService
	wg      sync.WaitGroup

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// StartWorker launches a worker listening on addr (use "127.0.0.1:0" for an
// ephemeral port). Close must be called to release the listener.
func StartWorker(addr string) (*Worker, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", addr, err)
	}
	w := &Worker{ln: ln, service: NewWorkerService(), conns: make(map[net.Conn]struct{})}
	srv := rpc.NewServer()
	if err := srv.RegisterName("Propagation", w.service); err != nil {
		_ = ln.Close()
		return nil, fmt.Errorf("cluster: register: %w", err)
	}
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			w.mu.Lock()
			w.conns[conn] = struct{}{}
			w.mu.Unlock()
			w.wg.Add(1)
			go func() {
				defer w.wg.Done()
				srv.ServeConn(conn)
				w.mu.Lock()
				delete(w.conns, conn)
				w.mu.Unlock()
			}()
		}
	}()
	return w, nil
}

// Addr returns the worker's dialable address.
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// Close stops accepting connections, terminates live sessions, and waits
// for the serving goroutines to exit. Coordinators with in-flight calls
// observe an RPC error — the failure mode the solvers surface as ErrWorker
// (SolveRPC) or absorb via rebind (SolvePCG).
func (w *Worker) Close() error {
	err := w.ln.Close()
	w.mu.Lock()
	for c := range w.conns {
		_ = c.Close()
	}
	w.mu.Unlock()
	w.wg.Wait()
	return err
}
