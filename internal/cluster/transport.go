package cluster

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"time"
)

// Caller is one coordinator-held session to a worker. Implementations must
// guarantee that Close unblocks any in-flight Call (returning an error), so
// the coordinator's step timeout can always reclaim a stuck round.
type Caller interface {
	// Call invokes serviceMethod synchronously.
	Call(serviceMethod string, args any, reply any) error
	// Close terminates the session and unblocks pending calls.
	Close() error
}

// Dialer opens a Caller to a worker address. The chaostest package wraps a
// Dialer to inject transport faults; the default is DialTCP.
type Dialer func(addr string) (Caller, error)

// DialTCP opens a net/rpc session over TCP with a bounded dial.
func DialTCP(addr string) (Caller, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %w: %v", addr, ErrWorker, err)
	}
	return &tcpCaller{c: rpc.NewClient(conn)}, nil
}

type tcpCaller struct{ c *rpc.Client }

func (t *tcpCaller) Call(method string, args, reply any) error {
	return t.c.Call(method, args, reply)
}

func (t *tcpCaller) Close() error { return t.c.Close() }

// InProcessDialer returns a Dialer whose addresses are served by in-process
// WorkerServices — the single-node reference transport. Every distinct
// address resolves to its own service instance, shared across redials, so a
// coordinator sees the same bind/step semantics as over TCP but with zero
// serialization: bitwise-identical results, no sockets. The services copy
// retained inputs, so coordinator and worker never alias live state.
func InProcessDialer() Dialer {
	var (
		mu   sync.Mutex
		svcs = map[string]*WorkerService{}
	)
	return func(addr string) (Caller, error) {
		mu.Lock()
		svc, ok := svcs[addr]
		if !ok {
			svc = NewWorkerService()
			svcs[addr] = svc
		}
		mu.Unlock()
		return &directCaller{svc: svc}, nil
	}
}

// directCaller dispatches calls as plain method invocations. The method
// switch keeps the warm superstep path allocation-free (no reflection).
type directCaller struct {
	svc  *WorkerService
	mu   sync.Mutex
	dead bool
}

var errCallerClosed = errors.New("cluster: caller closed")

func (d *directCaller) Call(method string, args, reply any) error {
	d.mu.Lock()
	dead := d.dead
	d.mu.Unlock()
	if dead {
		return errCallerClosed
	}
	switch method {
	case "Propagation.Setup":
		return d.svc.Setup(args.(*SetupArgs), reply.(*SetupReply))
	case "Propagation.Step":
		return d.svc.Step(args.(*StepArgs), reply.(*StepReply))
	case "Propagation.Bind":
		return d.svc.Bind(args.(*BindArgs), reply.(*BindReply))
	case "Propagation.Start":
		return d.svc.Start(args.(*StartArgs), reply.(*ReduceReply))
	case "Propagation.Mul":
		return d.svc.Mul(args.(*MulArgs), reply.(*MulReply))
	case "Propagation.Update":
		return d.svc.Update(args.(*UpdateArgs), reply.(*ReduceReply))
	case "Propagation.Gather":
		return d.svc.Gather(args.(*GatherArgs), reply.(*GatherReply))
	default:
		return fmt.Errorf("cluster: unknown method %s", method)
	}
}

func (d *directCaller) Close() error {
	d.mu.Lock()
	d.dead = true
	d.mu.Unlock()
	return nil
}

// pool is the coordinator's set of worker sessions: one serial runner per
// address, lazily dialed, with dead-address bookkeeping for rebinds. Calls
// to distinct addresses run concurrently; calls to the same address are
// serialized by its runner (the worker's mutex would serialize them
// anyway).
type pool struct {
	addrs []string
	dial  Dialer

	mu      sync.Mutex
	runners map[string]*runner
	dead    map[string]bool
}

func newPool(addrs []string, dial Dialer) *pool {
	if dial == nil {
		dial = DialTCP
	}
	return &pool{
		addrs:   addrs,
		dial:    dial,
		runners: make(map[string]*runner, len(addrs)),
		dead:    make(map[string]bool, len(addrs)),
	}
}

// pcall is one queued call; done receives the pcall back when it completes.
type pcall struct {
	method string
	args   any
	reply  any
	shard  int
	addr   string
	err    error
	done   chan *pcall

	// inflight is owned by the round that dispatched the call: set before
	// enqueueing, cleared when the call returns via done.
	inflight bool
}

// runner owns one address: a goroutine draining a request queue through a
// single Caller. The request channel is buffered so a full round can be
// enqueued without blocking the coordinator.
type runner struct {
	addr string
	req  chan *pcall
	wg   sync.WaitGroup

	mu     sync.Mutex
	caller Caller
	closed bool
}

func (p *pool) runnerFor(addr string) *runner {
	p.mu.Lock()
	defer p.mu.Unlock()
	r, ok := p.runners[addr]
	if !ok {
		r = &runner{addr: addr, req: make(chan *pcall, 64)}
		r.wg.Add(1)
		go r.loop(p.dial)
		p.runners[addr] = r
	}
	return r
}

func (r *runner) loop(dial Dialer) {
	defer r.wg.Done()
	for c := range r.req {
		c.err = r.invoke(dial, c)
		c.done <- c
	}
	r.closeCaller()
}

func (r *runner) invoke(dial Dialer, c *pcall) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return errCallerClosed
	}
	caller := r.caller
	if caller == nil {
		r.mu.Unlock()
		fresh, err := dial(r.addr)
		if err != nil {
			return err
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			_ = fresh.Close()
			return errCallerClosed
		}
		r.caller = fresh
		caller = fresh
	}
	r.mu.Unlock()
	return caller.Call(c.method, c.args, c.reply)
}

// closeCaller tears down the current session (unblocking an in-flight
// Call); the next invoke on a live runner redials.
func (r *runner) closeCaller() {
	r.mu.Lock()
	c := r.caller
	r.caller = nil
	r.mu.Unlock()
	if c != nil {
		_ = c.Close()
	}
}

// kill marks the runner's address unusable and unblocks any in-flight call.
func (r *runner) kill() {
	r.mu.Lock()
	r.closed = true
	c := r.caller
	r.caller = nil
	r.mu.Unlock()
	if c != nil {
		_ = c.Close()
	}
}

// alive returns the addresses not yet marked dead, in the original order.
func (p *pool) aliveAddrs() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.addrs))
	for _, a := range p.addrs {
		if !p.dead[a] {
			out = append(out, a)
		}
	}
	return out
}

// markDead flags an address as failed and kills its runner.
func (p *pool) markDead(addr string) {
	p.mu.Lock()
	already := p.dead[addr]
	p.dead[addr] = true
	r := p.runners[addr]
	p.mu.Unlock()
	if !already && r != nil {
		r.kill()
	}
}

// roundErr describes one failed call of a round.
type roundErr struct {
	shard int
	addr  string
	err   error
}

// round dispatches the calls and waits for every one of them to complete.
// If timeout > 0 and expires, every address with an outstanding call is
// killed — per the Caller contract this unblocks the in-flight Call with an
// error — and the round keeps draining, so pooled args/replies are never
// left aliased by an abandoned call. Failed addresses are marked dead.
// The zero timeout means no deadline (and allocates nothing, which keeps
// the warm superstep loop gate-clean).
func (p *pool) round(calls []*pcall, done chan *pcall, timeout time.Duration) []roundErr {
	for _, c := range calls {
		c.err = nil
		c.done = done
		c.inflight = true
		p.runnerFor(c.addr).req <- c
	}
	var timech <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		timech = timer.C
	}
	var fails []roundErr
	pending := len(calls)
	for pending > 0 {
		select {
		case c := <-done:
			c.inflight = false
			pending--
			if c.err != nil {
				p.markDead(c.addr)
				fails = append(fails, roundErr{shard: c.shard, addr: c.addr, err: c.err})
			}
		case <-timech:
			timech = nil
			for _, c := range calls {
				if c.inflight {
					p.markDead(c.addr)
				}
			}
		}
	}
	return fails
}

// close shuts every runner down and waits for their goroutines.
func (p *pool) close() {
	p.mu.Lock()
	runners := make([]*runner, 0, len(p.runners))
	for _, r := range p.runners {
		runners = append(runners, r)
	}
	p.runners = map[string]*runner{}
	p.mu.Unlock()
	for _, r := range runners {
		close(r.req)
	}
	for _, r := range runners {
		r.kill()
		r.wg.Wait()
	}
}
