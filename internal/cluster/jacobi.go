package cluster

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/core"
)

// entryKV is one matrix entry during block extraction.
type entryKV struct {
	col int
	val float64
}

// sortEntries orders entries by column. Rows are short (graph degree), so
// insertion sort beats sort.Slice and allocates nothing.
func sortEntries(e []entryKV) {
	for i := 1; i < len(e); i++ {
		for j := i; j > 0 && e[j].col < e[j-1].col; j-- {
			e[j], e[j-1] = e[j-1], e[j]
		}
	}
}

// shardBlock is the extracted, locally-indexed slice of a system for one
// shard: rows [Lo, Hi) in the plan's permuted order, each row's entries
// sorted by global permuted column — so row sums run in a
// shard-count-independent order, which is half of the bitwise-determinism
// argument — and columns translated to local indexing (own entries in
// [0, rows), halo reads at rows+haloPos).
type shardBlock struct {
	rowptr []int
	cols   []int
	vals   []float64
	d, b   []float64
}

// extractShard builds shard s's block. With minusW the entries encode
// A = D − W (the PCG operator, diagonal merged); otherwise they encode W
// with the degree kept separate (the Jacobi sweep).
func extractShard(sys *core.PropagationSystem, plan *Plan, s int, minusW bool) *shardBlock {
	sh := &plan.Shards[s]
	rows := sh.Len()
	blk := &shardBlock{
		rowptr: make([]int, rows+1),
		d:      make([]float64, rows),
		b:      make([]float64, rows),
	}
	var scratch []entryKV
	for nr := sh.Lo; nr < sh.Hi; nr++ {
		orig := plan.Perm[nr]
		colsW, valsW := sys.W.RowNNZ(orig)
		scratch = scratch[:0]
		diag := sys.D[orig]
		for c, j := range colsW {
			nj := plan.Inv[j]
			if minusW {
				if nj == nr {
					diag -= valsW[c]
					continue
				}
				scratch = append(scratch, entryKV{col: nj, val: -valsW[c]})
			} else {
				scratch = append(scratch, entryKV{col: nj, val: valsW[c]})
			}
		}
		if minusW {
			scratch = append(scratch, entryKV{col: nr, val: diag})
		}
		sortEntries(scratch)
		for _, e := range scratch {
			var lc int
			if e.col >= sh.Lo && e.col < sh.Hi {
				lc = e.col - sh.Lo
			} else {
				lc = rows + sort.SearchInts(sh.Halo, e.col)
			}
			blk.cols = append(blk.cols, lc)
			blk.vals = append(blk.vals, e.val)
		}
		r := nr - sh.Lo
		blk.d[r] = sys.D[orig]
		blk.b[r] = sys.B[orig]
		blk.rowptr[r+1] = len(blk.cols)
	}
	return blk
}

// RPCOptions configures the networked Jacobi engine.
type RPCOptions struct {
	// Tol is the relative update tolerance; default 1e-10.
	Tol float64
	// MaxSupersteps caps the iteration count; default 100000.
	MaxSupersteps int
	// Dialer opens worker sessions; default DialTCP. Tests substitute
	// InProcessDialer or a chaostest wrapper.
	Dialer Dialer
	// StepTimeout bounds each synchronized round; 0 means no deadline.
	StepTimeout time.Duration
	// NoRCM disables the reverse Cuthill–McKee locality ordering.
	NoRCM bool
}

func (o *RPCOptions) fill() {
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.MaxSupersteps <= 0 {
		o.MaxSupersteps = 100000
	}
	if o.Dialer == nil {
		o.Dialer = DialTCP
	}
}

// SolveRPC runs halo-exchange Jacobi propagation across the workers at
// addrs: the system is cut by an edge-cut-aware Plan (one shard per
// address), each worker holds its block and its block of the iterate, and
// every superstep ships only the halo entries a block actually reads —
// never the full iterate. The schedule is a synchronous Jacobi sweep over a
// shard-count-independent row ordering, so the returned solution is
// bitwise-identical for any worker count over the same system. A worker
// failure fails the solve with ErrWorker; SolvePCG is the engine with
// failure recovery.
func SolveRPC(sys *core.PropagationSystem, addrs []string, opts RPCOptions) ([]float64, Result, error) {
	if sys == nil || sys.M() == 0 {
		return nil, Result{}, fmt.Errorf("cluster: empty system: %w", ErrParam)
	}
	if len(addrs) == 0 {
		return nil, Result{}, fmt.Errorf("cluster: no worker addresses: %w", ErrParam)
	}
	opts.fill()
	plan, err := NewPlan(sys.W, len(addrs), !opts.NoRCM)
	if err != nil {
		return nil, Result{}, err
	}
	p := newPool(addrs, opts.Dialer)
	defer p.close()

	n := len(plan.Shards)
	res := Result{
		Workers:   n,
		Shards:    n,
		EdgeCut:   plan.Stats.EdgeCut,
		HaloTotal: plan.Stats.HaloTotal,
	}
	done := make(chan *pcall, n)
	calls := make([]*pcall, n)

	for s := range plan.Shards {
		blk := extractShard(sys, plan, s, false)
		sh := &plan.Shards[s]
		args := &SetupArgs{
			Shard:  s,
			Epoch:  1,
			Lo:     sh.Lo,
			Hi:     sh.Hi,
			M:      plan.M,
			D:      blk.d,
			B:      blk.b,
			RowPtr: blk.rowptr,
			Cols:   blk.cols,
			Vals:   blk.vals,
			Halo:   sh.Halo,
		}
		calls[s] = &pcall{method: "Propagation.Setup", args: args, reply: &SetupReply{}, shard: s, addr: addrs[s%len(addrs)]}
	}
	if fails := p.round(calls, done, opts.StepTimeout); len(fails) > 0 {
		return nil, res, roundFailErr("setup", fails)
	}

	// Pooled superstep state: the args, replies, and call records are
	// allocated once here; the warm loop below only refills them.
	m := plan.M
	f := make([]float64, m) // permuted iterate, assembled from step replies
	stepArgs := make([]*StepArgs, n)
	stepReplies := make([]*StepReply, n)
	for s := range plan.Shards {
		stepArgs[s] = &StepArgs{Shard: s, Epoch: 1, Halo: make([]float64, len(plan.Shards[s].Halo))}
		stepReplies[s] = &StepReply{}
		calls[s].method = "Propagation.Step"
		calls[s].args = stepArgs[s]
		calls[s].reply = stepReplies[s]
	}
	for step := 1; step <= opts.MaxSupersteps; step++ {
		for s := range plan.Shards {
			a := stepArgs[s]
			a.Seq = int64(step)
			for k, h := range plan.Shards[s].Halo {
				a.Halo[k] = f[h]
			}
		}
		if fails := p.round(calls, done, opts.StepTimeout); len(fails) > 0 {
			return nil, res, roundFailErr("superstep", fails)
		}
		var maxDelta float64
		for s := range plan.Shards {
			sh := &plan.Shards[s]
			if len(stepReplies[s].Values) != sh.Len() {
				return nil, res, fmt.Errorf("cluster: shard %d returned %d values for %d rows: %w",
					s, len(stepReplies[s].Values), sh.Len(), ErrWorker)
			}
			copy(f[sh.Lo:sh.Hi], stepReplies[s].Values)
			if stepReplies[s].MaxDelta > maxDelta {
				maxDelta = stepReplies[s].MaxDelta
			}
		}
		var scale float64
		for _, v := range f {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		res.Supersteps = step
		res.MaxDelta = maxDelta
		if maxDelta <= opts.Tol*(1+scale) {
			out := make([]float64, m)
			for i, v := range f {
				out[plan.Perm[i]] = v
			}
			return out, res, nil
		}
	}
	return nil, res, ErrNotConverged
}

// roundFailErr folds a round's failures into one typed worker error.
func roundFailErr(stage string, fails []roundErr) error {
	return fmt.Errorf("cluster: %s round: %d failure(s), first on %s (shard %d): %w: %v",
		stage, len(fails), fails[0].addr, fails[0].shard, ErrWorker, fails[0].err)
}
