package cluster

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/core"
)

// LocalOptions configures the in-process engine.
type LocalOptions struct {
	// Workers is the number of parallel block workers; default 4.
	Workers int
	// Tol is the relative update tolerance; default 1e-10.
	Tol float64
	// MaxSupersteps caps the iteration count; default 100000.
	MaxSupersteps int
}

func (o *LocalOptions) fill() {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.MaxSupersteps <= 0 {
		o.MaxSupersteps = 100000
	}
}

// SolveLocal runs block-partitioned label propagation with one goroutine
// per block. Every superstep all workers read the same frozen copy of f and
// write disjoint blocks of the next iterate, so the schedule is a Jacobi
// sweep — deterministic and identical to the serial iteration regardless of
// worker count.
func SolveLocal(sys *core.PropagationSystem, opts LocalOptions) ([]float64, Result, error) {
	if sys == nil || sys.M() == 0 {
		return nil, Result{}, fmt.Errorf("cluster: empty system: %w", ErrParam)
	}
	opts.fill()
	m := sys.M()
	blocks, err := Partition(m, opts.Workers)
	if err != nil {
		return nil, Result{}, err
	}

	f := make([]float64, m)
	next := make([]float64, m)
	deltas := make([]float64, len(blocks))

	var wg sync.WaitGroup
	for step := 0; step < opts.MaxSupersteps; step++ {
		for bi, blk := range blocks {
			wg.Add(1)
			go func(bi int, blk Block) {
				defer wg.Done()
				var localDelta float64
				for k := blk.Lo; k < blk.Hi; k++ {
					cols, vals := sys.W.RowNNZ(k)
					s := sys.B[k]
					for c, j := range cols {
						s += vals[c] * f[j]
					}
					v := s / sys.D[k]
					if d := math.Abs(v - f[k]); d > localDelta {
						localDelta = d
					}
					next[k] = v
				}
				deltas[bi] = localDelta
			}(bi, blk)
		}
		wg.Wait()
		f, next = next, f
		var maxDelta, scale float64
		for _, d := range deltas {
			if d > maxDelta {
				maxDelta = d
			}
		}
		for _, v := range f {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		if maxDelta <= opts.Tol*(1+scale) {
			return f, Result{Supersteps: step + 1, MaxDelta: maxDelta, Workers: len(blocks)}, nil
		}
	}
	return f, Result{Supersteps: opts.MaxSupersteps, Workers: len(blocks)}, ErrNotConverged
}
