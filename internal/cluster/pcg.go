package cluster

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/core"
)

// PCGOptions configures the distributed PCG engine.
type PCGOptions struct {
	// Shards is the number of blocks the system is cut into; default one
	// per worker address. The chunk layout — and hence every floating-point
	// operation of the solve — is shard-count independent, so any shard
	// count over the same system yields the bitwise-same solution.
	Shards int
	// Tol is the relative residual target ‖r‖₂ ≤ Tol·‖b‖₂; default 1e-10.
	Tol float64
	// MaxIter caps PCG iterations across restarts; default 10000.
	MaxIter int
	// Dialer opens worker sessions; default DialTCP.
	Dialer Dialer
	// StepTimeout bounds each synchronized round; a round that misses the
	// deadline has its laggard workers declared dead and rebound. 0 means
	// no deadline.
	StepTimeout time.Duration
	// CheckpointEvery gathers the iterate every k iterations so a crashed
	// shard can warm-restart from a recent solution instead of zero;
	// default 50, negative disables.
	CheckpointEvery int
	// MaxRestarts bounds failure recoveries before the solve gives up with
	// ErrWorker; default 2, negative means none.
	MaxRestarts int
	// NoRCM disables the reverse Cuthill–McKee locality ordering.
	NoRCM bool
}

func (o *PCGOptions) fill(naddrs int) {
	if o.Shards <= 0 {
		o.Shards = naddrs
	}
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 10000
	}
	if o.Dialer == nil {
		o.Dialer = DialTCP
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 50
	}
	if o.MaxRestarts == 0 {
		o.MaxRestarts = 2
	} else if o.MaxRestarts < 0 {
		o.MaxRestarts = 0
	}
}

// SolvePCG solves (D − W) f = B across the workers at addrs with
// block-partitioned preconditioned conjugate gradient: the plan's chunks
// act as additive-Schwarz preconditioner blocks and as reduction units, so
// partial dot products fold in a fixed global chunk order no matter how
// chunks are grouped into shards. Crash-free runs are therefore
// bitwise-identical across shard counts. Worker failures are absorbed by
// reassigning the lost blocks to survivors and warm-restarting from the
// last checkpoint (surfaced in Result.Restarts/Rebinds); the returned
// solution is always re-verified against the original system, so a
// recovered run can never silently return a wrong answer.
func SolvePCG(sys *core.PropagationSystem, addrs []string, opts PCGOptions) ([]float64, Result, error) {
	if sys == nil || sys.M() == 0 {
		return nil, Result{}, fmt.Errorf("cluster: empty system: %w", ErrParam)
	}
	if len(addrs) == 0 {
		return nil, Result{}, fmt.Errorf("cluster: no worker addresses: %w", ErrParam)
	}
	opts.fill(len(addrs))
	plan, err := NewPlan(sys.W, opts.Shards, !opts.NoRCM)
	if err != nil {
		return nil, Result{}, err
	}
	co := &pcgCoord{sys: sys, plan: plan, opts: opts, pool: newPool(addrs, opts.Dialer), epoch: 1}
	defer co.pool.close()
	co.init(addrs)
	return co.solve()
}

// pcgCoord drives one distributed PCG solve.
type pcgCoord struct {
	sys  *core.PropagationSystem
	plan *Plan
	opts PCGOptions
	pool *pool

	assign []string // shard → current worker address
	epoch  int64
	seq    int64

	calls       []*pcall
	done        chan *pcall
	startArgs   []*StartArgs
	mulArgs     []*MulArgs
	updArgs     []*UpdateArgs
	gathArgs    []*GatherArgs
	redReplies  []*ReduceReply
	mulReplies  []*MulReply
	gathReplies []*GatherReply

	// zB and pB mirror z and p at boundary rows only (dense for O(1)
	// scatter); pB follows the exact worker recurrence p ← z + βp, so a
	// halo read of pB is bitwise-equal to the owner's own p entry.
	zB, pB []float64
	bset   []int // ascending union of all shard boundaries

	bb, rho, rhoPrev, rr float64

	ck     []float64 // checkpointed permuted iterate
	ckOK   bool
	xfinal []float64

	res Result
}

func (co *pcgCoord) init(addrs []string) {
	n := len(co.plan.Shards)
	m := co.plan.M
	co.assign = make([]string, n)
	for s := range co.assign {
		co.assign[s] = addrs[s%len(addrs)]
	}
	co.calls = make([]*pcall, n)
	co.done = make(chan *pcall, n)
	co.startArgs = make([]*StartArgs, n)
	co.mulArgs = make([]*MulArgs, n)
	co.updArgs = make([]*UpdateArgs, n)
	co.gathArgs = make([]*GatherArgs, n)
	co.redReplies = make([]*ReduceReply, n)
	co.mulReplies = make([]*MulReply, n)
	co.gathReplies = make([]*GatherReply, n)
	for s := range co.plan.Shards {
		sh := &co.plan.Shards[s]
		co.calls[s] = &pcall{shard: s}
		co.startArgs[s] = &StartArgs{Shard: s, X0: make([]float64, sh.Len()), Halo: make([]float64, len(sh.Halo))}
		co.mulArgs[s] = &MulArgs{Shard: s, Halo: make([]float64, len(sh.Halo))}
		co.updArgs[s] = &UpdateArgs{Shard: s}
		co.gathArgs[s] = &GatherArgs{Shard: s}
		co.redReplies[s] = &ReduceReply{}
		co.mulReplies[s] = &MulReply{}
		co.gathReplies[s] = &GatherReply{}
		// Shard boundaries are disjoint ascending ranges, so concatenation
		// in shard order is already the sorted union.
		co.bset = append(co.bset, sh.Boundary...)
	}
	co.zB = make([]float64, m)
	co.pB = make([]float64, m)
	co.xfinal = make([]float64, m)
	// ‖b‖² folded in global chunk order, matching the workers' partials.
	q := co.plan.Quantum
	for c := 0; c < co.plan.Chunks; c++ {
		var part float64
		for i := c * q; i < min((c+1)*q, m); i++ {
			bi := co.sys.B[co.plan.Perm[i]]
			part += bi * bi
		}
		co.bb += part
	}
	co.res = Result{
		Workers:   len(addrs),
		Shards:    n,
		EdgeCut:   co.plan.Stats.EdgeCut,
		HaloTotal: co.plan.Stats.HaloTotal,
	}
}

func (co *pcgCoord) solve() ([]float64, Result, error) {
	m := co.plan.M
	x0 := make([]float64, m)
	needBind := make([]bool, len(co.plan.Shards))
	for s := range needBind {
		needBind[s] = true
	}
	var xperm []float64
	var lastErr error
	for attempt := 0; ; attempt++ {
		xp, werr := co.run(x0, needBind)
		if werr == nil {
			xperm = xp
			break
		}
		if errors.Is(werr, ErrNotConverged) || errors.Is(werr, ErrParam) {
			return nil, co.res, werr
		}
		lastErr = werr
		if attempt >= co.opts.MaxRestarts {
			return nil, co.res, fmt.Errorf("cluster: solve abandoned after %d restart(s): %w: %v",
				co.res.Restarts, ErrWorker, lastErr)
		}
		co.harvest(x0)
		if err := co.reassign(needBind); err != nil {
			return nil, co.res, err
		}
		co.res.Restarts++
	}
	f := make([]float64, m)
	for i, v := range xperm {
		f[co.plan.Perm[i]] = v
	}
	rel, err := co.verify(f)
	if err != nil {
		return nil, co.res, err
	}
	co.res.Residual = rel
	if thresh := co.opts.Tol * 1e3; rel > thresh {
		return nil, co.res, fmt.Errorf("cluster: verification residual %.3e exceeds %.3e after %d restart(s): %w",
			rel, thresh, co.res.Restarts, ErrWorker)
	}
	return f, co.res, nil
}

// run binds whatever needs binding, (re)starts every shard from x0, and
// iterates to convergence; the gathered permuted solution is returned.
// Errors wrapping ErrNotConverged or ErrParam are terminal; anything else
// is a worker failure the caller may recover from.
func (co *pcgCoord) run(x0 []float64, needBind []bool) ([]float64, error) {
	if err := co.bind(needBind); err != nil {
		return nil, err
	}
	if err := co.start(x0); err != nil {
		return nil, err
	}
	iterInRun := 0
	for {
		if co.converged() {
			if err := co.gatherInto(co.xfinal); err != nil {
				return nil, err
			}
			return co.xfinal, nil
		}
		if co.res.Iterations >= co.opts.MaxIter {
			return nil, fmt.Errorf("cluster: pcg exhausted %d iterations (‖r‖/‖b‖ = %.3e): %w",
				co.opts.MaxIter, co.relres(), ErrNotConverged)
		}
		var beta float64
		if iterInRun > 0 {
			beta = co.rho / co.rhoPrev
		}
		for _, g := range co.bset {
			co.pB[g] = co.zB[g] + beta*co.pB[g]
		}
		co.seq++
		for s := range co.plan.Shards {
			a := co.mulArgs[s]
			a.Epoch, a.Seq, a.Beta = co.epoch, co.seq, beta
			for k, h := range co.plan.Shards[s].Halo {
				a.Halo[k] = co.pB[h]
			}
			co.setCall(s, "Propagation.Mul", a, co.mulReplies[s])
		}
		if fails := co.pool.round(co.calls, co.done, co.opts.StepTimeout); len(fails) > 0 {
			return nil, roundFailErr("mul", fails)
		}
		pi, err := co.foldPi()
		if err != nil {
			return nil, err
		}
		if pi <= 0 || math.IsNaN(pi) {
			return nil, fmt.Errorf("cluster: pcg breakdown pᵀAp = %g: %w", pi, ErrNotConverged)
		}
		alpha := co.rho / pi
		co.seq++
		for s := range co.plan.Shards {
			a := co.updArgs[s]
			a.Epoch, a.Seq, a.Alpha = co.epoch, co.seq, alpha
			co.setCall(s, "Propagation.Update", a, co.redReplies[s])
		}
		if fails := co.pool.round(co.calls, co.done, co.opts.StepTimeout); len(fails) > 0 {
			return nil, roundFailErr("update", fails)
		}
		co.rhoPrev = co.rho
		if err := co.scatterReduce(); err != nil {
			return nil, err
		}
		co.res.Iterations++
		iterInRun++
		if co.opts.CheckpointEvery > 0 && iterInRun%co.opts.CheckpointEvery == 0 {
			if err := co.checkpoint(); err != nil {
				return nil, err
			}
		}
	}
}

// bind ships the marked shards' blocks at the current epoch.
func (co *pcgCoord) bind(needBind []bool) error {
	var sub []*pcall
	for s := range co.plan.Shards {
		if !needBind[s] {
			continue
		}
		blk := extractShard(co.sys, co.plan, s, true)
		sh := &co.plan.Shards[s]
		args := &BindArgs{
			Shard:    s,
			Epoch:    co.epoch,
			Lo:       sh.Lo,
			Hi:       sh.Hi,
			M:        co.plan.M,
			Quantum:  co.plan.Quantum,
			RowPtr:   blk.rowptr,
			Cols:     blk.cols,
			Vals:     blk.vals,
			B:        blk.b,
			Halo:     sh.Halo,
			Boundary: sh.Boundary,
		}
		co.setCall(s, "Propagation.Bind", args, &BindReply{})
		sub = append(sub, co.calls[s])
	}
	if len(sub) == 0 {
		return nil
	}
	if fails := co.pool.round(sub, co.done, co.bindTimeout()); len(fails) > 0 {
		return roundFailErr("bind", fails)
	}
	for s := range needBind {
		needBind[s] = false
	}
	return nil
}

// bindTimeout scales the step deadline for the bulk matrix transfer.
func (co *pcgCoord) bindTimeout() time.Duration {
	if co.opts.StepTimeout <= 0 {
		return 0
	}
	return 10 * co.opts.StepTimeout
}

// start (re)initializes every shard's Krylov state from x0 and folds the
// first reduction.
func (co *pcgCoord) start(x0 []float64) error {
	for s := range co.plan.Shards {
		sh := &co.plan.Shards[s]
		a := co.startArgs[s]
		a.Epoch = co.epoch
		copy(a.X0, x0[sh.Lo:sh.Hi])
		for k, h := range sh.Halo {
			a.Halo[k] = x0[h]
		}
		co.setCall(s, "Propagation.Start", a, co.redReplies[s])
	}
	if fails := co.pool.round(co.calls, co.done, co.opts.StepTimeout); len(fails) > 0 {
		return roundFailErr("start", fails)
	}
	co.seq = 0
	co.rhoPrev = 0
	return co.scatterReduce()
}

// scatterReduce folds the per-chunk ρ and rᵀr partials in global chunk
// order (shards are ascending chunk ranges, each reply is ascending within
// its range) and scatters the boundary z exports into zB.
func (co *pcgCoord) scatterReduce() error {
	var rho, rr float64
	for s := range co.plan.Shards {
		sh := &co.plan.Shards[s]
		rep := co.redReplies[s]
		if len(rep.Rho) != sh.ChunkHi-sh.ChunkLo || len(rep.RR) != len(rep.Rho) || len(rep.BZ) != len(sh.Boundary) {
			return fmt.Errorf("cluster: shard %d reduce reply shape %d/%d/%d: %w",
				s, len(rep.Rho), len(rep.RR), len(rep.BZ), ErrWorker)
		}
		for _, v := range rep.Rho {
			rho += v
		}
		for _, v := range rep.RR {
			rr += v
		}
		for k, g := range sh.Boundary {
			co.zB[g] = rep.BZ[k]
		}
	}
	co.rho, co.rr = rho, rr
	return nil
}

// foldPi folds the per-chunk pᵀq partials in global chunk order.
func (co *pcgCoord) foldPi() (float64, error) {
	var pi float64
	for s := range co.plan.Shards {
		sh := &co.plan.Shards[s]
		rep := co.mulReplies[s]
		if len(rep.Pi) != sh.ChunkHi-sh.ChunkLo {
			return 0, fmt.Errorf("cluster: shard %d mul reply shape %d: %w", s, len(rep.Pi), ErrWorker)
		}
		for _, v := range rep.Pi {
			pi += v
		}
	}
	return pi, nil
}

func (co *pcgCoord) converged() bool {
	return math.Sqrt(co.rr) <= co.opts.Tol*math.Sqrt(co.bb)
}

func (co *pcgCoord) relres() float64 {
	if co.bb > 0 {
		return math.Sqrt(co.rr / co.bb)
	}
	return math.Sqrt(co.rr)
}

// gatherInto collects every shard's current iterate into dst (permuted).
func (co *pcgCoord) gatherInto(dst []float64) error {
	for s := range co.plan.Shards {
		a := co.gathArgs[s]
		a.Epoch = co.epoch
		co.setCall(s, "Propagation.Gather", a, co.gathReplies[s])
	}
	if fails := co.pool.round(co.calls, co.done, co.opts.StepTimeout); len(fails) > 0 {
		return roundFailErr("gather", fails)
	}
	for s := range co.plan.Shards {
		sh := &co.plan.Shards[s]
		if len(co.gathReplies[s].X) != sh.Len() {
			return fmt.Errorf("cluster: shard %d gather returned %d values for %d rows: %w",
				s, len(co.gathReplies[s].X), sh.Len(), ErrWorker)
		}
		copy(dst[sh.Lo:sh.Hi], co.gathReplies[s].X)
	}
	return nil
}

// checkpoint snapshots the current iterate for warm restarts.
func (co *pcgCoord) checkpoint() error {
	if co.ck == nil {
		co.ck = make([]float64, co.plan.M)
	}
	if err := co.gatherInto(co.ck); err != nil {
		return err
	}
	co.ckOK = true
	return nil
}

// harvest assembles the best available restart guess into x0: live shards
// contribute their current block, anything unreachable falls back to the
// last checkpoint (or zero before the first one).
func (co *pcgCoord) harvest(x0 []float64) {
	alive := map[string]bool{}
	for _, a := range co.pool.aliveAddrs() {
		alive[a] = true
	}
	var sub []*pcall
	for s := range co.plan.Shards {
		if !alive[co.assign[s]] {
			continue
		}
		a := co.gathArgs[s]
		a.Epoch = co.epoch
		co.setCall(s, "Propagation.Gather", a, co.gathReplies[s])
		sub = append(sub, co.calls[s])
	}
	got := make([]bool, len(co.plan.Shards))
	if len(sub) > 0 {
		fails := co.pool.round(sub, co.done, co.opts.StepTimeout)
		failed := map[int]bool{}
		for _, f := range fails {
			failed[f.shard] = true
		}
		for _, c := range sub {
			s := c.shard
			sh := &co.plan.Shards[s]
			if !failed[s] && len(co.gathReplies[s].X) == sh.Len() {
				copy(x0[sh.Lo:sh.Hi], co.gathReplies[s].X)
				got[s] = true
			}
		}
	}
	for s := range co.plan.Shards {
		if got[s] {
			continue
		}
		sh := &co.plan.Shards[s]
		if co.ckOK {
			copy(x0[sh.Lo:sh.Hi], co.ck[sh.Lo:sh.Hi])
		} else {
			clear(x0[sh.Lo:sh.Hi])
		}
	}
}

// reassign moves every shard bound to a dead address onto a survivor and
// advances the epoch, fencing off stale traffic from the old incarnation.
func (co *pcgCoord) reassign(needBind []bool) error {
	alive := co.pool.aliveAddrs()
	if len(alive) == 0 {
		return fmt.Errorf("cluster: no workers left alive: %w", ErrWorker)
	}
	aliveSet := make(map[string]bool, len(alive))
	for _, a := range alive {
		aliveSet[a] = true
	}
	co.epoch++
	for s := range co.assign {
		if aliveSet[co.assign[s]] {
			continue
		}
		co.assign[s] = alive[s%len(alive)]
		needBind[s] = true
		co.res.Rebinds++
	}
	return nil
}

// verify recomputes the relative residual of f against the original
// (unpermuted) system.
func (co *pcgCoord) verify(f []float64) (float64, error) {
	wf, err := co.sys.W.MulVec(f)
	if err != nil {
		return 0, err
	}
	var rr, bb float64
	for i := range f {
		r := co.sys.B[i] + wf[i] - co.sys.D[i]*f[i]
		rr += r * r
		bb += co.sys.B[i] * co.sys.B[i]
	}
	if bb == 0 {
		return math.Sqrt(rr), nil
	}
	return math.Sqrt(rr / bb), nil
}

func (co *pcgCoord) setCall(s int, method string, args, reply any) {
	c := co.calls[s]
	c.method, c.args, c.reply, c.addr = method, args, reply, co.assign[s]
}
