package cluster

import (
	"fmt"
	"sort"

	"repro/internal/sparse"
)

// planTargetChunks fixes how many reduction/preconditioner chunks a system
// is cut into. The chunk layout depends only on the system size m — never on
// the shard count — which is what makes distributed reductions and the
// additive-Schwarz preconditioner bitwise-identical across 1/2/4/8 shards:
// every shard owns whole chunks, per-chunk partial sums are computed in row
// order inside the chunk, and the coordinator folds the partials in global
// chunk order.
const planTargetChunks = 64

// ChunkQuantum returns the fixed chunk size for an m-row system: the
// smallest size that covers m with at most planTargetChunks chunks. It is a
// pure function of m, so two plans over the same system always agree on
// chunk boundaries regardless of shard count.
func ChunkQuantum(m int) int {
	if m < 1 {
		return 1
	}
	return (m + planTargetChunks - 1) / planTargetChunks
}

// Shard is one worker's slice of a Plan: a contiguous range of permuted
// rows (aligned to chunk boundaries), the halo it reads, and the boundary
// it exports.
type Shard struct {
	// Block is the permuted row range [Lo, Hi) this shard owns.
	Block
	// ChunkLo and ChunkHi bound the global chunk indices [ChunkLo, ChunkHi)
	// covered by the block.
	ChunkLo, ChunkHi int
	// Halo lists, ascending, the permuted row indices outside [Lo, Hi)
	// whose values the block's rows read during a matrix-vector product.
	// Halo exchange ships exactly these entries each superstep instead of
	// the full iterate.
	Halo []int
	// Boundary lists, ascending, the block's own rows that appear in some
	// other shard's halo — the entries this shard must export each step.
	Boundary []int
}

// PlanStats quantifies the quality of a partition.
type PlanStats struct {
	// NNZ is the total stored entry count of the partitioned matrix.
	NNZ int
	// EdgeCut counts stored entries whose row and column land on different
	// shards (each directed entry counted once).
	EdgeCut int
	// NaiveEdgeCut is the edge cut the same chunk assignment would have had
	// without the RCM ordering — the baseline the locality-aware plan is
	// measured against. Equal to EdgeCut when RCM is disabled.
	NaiveEdgeCut int
	// HaloTotal is the summed halo size over shards; MaxHalo the largest
	// single halo.
	HaloTotal, MaxHalo int
	// RCM records whether the reverse Cuthill–McKee ordering was applied.
	RCM bool
}

// Plan is an edge-cut-aware sharding of an m-row symmetric system: rows are
// RCM-reordered so graph neighbourhoods become contiguous, cut into fixed
// chunks (ChunkQuantum), and chunks are dealt to shards in contiguous runs
// balanced by row count. The chunk layout is shard-count independent; only
// the grouping of chunks into shards changes with the shard count.
type Plan struct {
	// M is the system size, Quantum the chunk size, Chunks the chunk count.
	M, Quantum, Chunks int
	// Perm maps permuted to original indices (perm[new] = old); Inv is its
	// inverse (inv[old] = new). Both are identity when RCM is disabled.
	Perm, Inv []int
	// Shards are the per-worker slices, ascending by row range.
	Shards []Shard
	// Stats summarizes partition quality.
	Stats PlanStats
}

// NewPlan partitions the symmetric sparsity structure w into the given
// number of shards. useRCM applies the reverse Cuthill–McKee ordering first
// (recommended: it is what makes contiguous blocks graph-local and halos
// small). The shard count is clamped to the chunk count so no shard is
// empty.
func NewPlan(w *sparse.CSR, shards int, useRCM bool) (*Plan, error) {
	if w == nil {
		return nil, fmt.Errorf("cluster: plan of nil matrix: %w", ErrParam)
	}
	m := w.Rows()
	if m < 1 || w.Cols() != m {
		return nil, fmt.Errorf("cluster: plan of %dx%d matrix: %w", m, w.Cols(), ErrParam)
	}
	if shards < 1 {
		return nil, fmt.Errorf("cluster: plan with %d shards: %w", shards, ErrParam)
	}
	q := ChunkQuantum(m)
	nchunks := (m + q - 1) / q
	if shards > nchunks {
		shards = nchunks
	}

	perm := make([]int, m)
	inv := make([]int, m)
	usedRCM := false
	if useRCM && m > 1 {
		p, err := sparse.RCM(w)
		if err != nil {
			return nil, fmt.Errorf("cluster: plan RCM: %w: %v", ErrParam, err)
		}
		copy(perm, p)
		usedRCM = true
	} else {
		for i := range perm {
			perm[i] = i
		}
	}
	for newIdx, old := range perm {
		inv[old] = newIdx
	}

	// Deal contiguous chunk runs to shards, balancing rows: shard s ends at
	// the first chunk boundary reaching row quota (s+1)*m/shards, while
	// always leaving one chunk for each remaining shard.
	bounds := make([]int, shards+1)
	bounds[shards] = nchunks
	c := 0
	for s := 0; s < shards-1; s++ {
		quota := ((s + 1) * m) / shards
		for c < nchunks-(shards-1-s) && min(c*q, m) < quota {
			c++
		}
		if c <= bounds[s] { // every shard owns at least one chunk
			c = bounds[s] + 1
		}
		bounds[s+1] = c
	}

	plan := &Plan{
		M:       m,
		Quantum: q,
		Chunks:  nchunks,
		Perm:    perm,
		Inv:     inv,
		Shards:  make([]Shard, shards),
		Stats:   PlanStats{NNZ: w.NNZ(), RCM: usedRCM},
	}
	for s := 0; s < shards; s++ {
		plan.Shards[s] = Shard{
			Block:   Block{Lo: min(bounds[s]*q, m), Hi: min(bounds[s+1]*q, m)},
			ChunkLo: bounds[s],
			ChunkHi: bounds[s+1],
		}
	}

	// Halos and the edge cut, in permuted space. shardOf is O(log p) via the
	// sorted Lo bounds.
	lows := make([]int, shards)
	for s := range plan.Shards {
		lows[s] = plan.Shards[s].Lo
	}
	shardOf := func(idx int) int {
		return sort.SearchInts(lows, idx+1) - 1
	}
	mark := make([]int, m) // 0 = unmarked; s+1 = in shard s's halo
	var naiveCut int
	for s := range plan.Shards {
		sh := &plan.Shards[s]
		for newRow := sh.Lo; newRow < sh.Hi; newRow++ {
			cols, _ := w.RowNNZ(perm[newRow])
			for _, j := range cols {
				nj := inv[j]
				if nj < sh.Lo || nj >= sh.Hi {
					plan.Stats.EdgeCut++
					if mark[nj] != s+1 {
						mark[nj] = s + 1
						sh.Halo = append(sh.Halo, nj)
					}
				}
			}
		}
		sort.Ints(sh.Halo)
		plan.Stats.HaloTotal += len(sh.Halo)
		if len(sh.Halo) > plan.Stats.MaxHalo {
			plan.Stats.MaxHalo = len(sh.Halo)
		}
	}
	if usedRCM {
		// Same chunk assignment, identity ordering: the baseline cut.
		for i := 0; i < m; i++ {
			s := shardOf(i)
			cols, _ := w.RowNNZ(i)
			for _, j := range cols {
				if j < plan.Shards[s].Lo || j >= plan.Shards[s].Hi {
					naiveCut++
				}
			}
		}
		plan.Stats.NaiveEdgeCut = naiveCut
	} else {
		plan.Stats.NaiveEdgeCut = plan.Stats.EdgeCut
	}

	// Boundaries: invert the halo relation.
	for s := range plan.Shards {
		for _, h := range plan.Shards[s].Halo {
			o := shardOf(h)
			plan.Shards[o].Boundary = append(plan.Shards[o].Boundary, h)
		}
	}
	for s := range plan.Shards {
		b := plan.Shards[s].Boundary
		sort.Ints(b)
		// dedup in place (several shards may read the same boundary row).
		k := 0
		for i, v := range b {
			if i == 0 || v != b[k-1] {
				b[k] = v
				k++
			}
		}
		plan.Shards[s].Boundary = b[:k]
	}
	return plan, nil
}

// shardOwning returns the index of the shard whose row range contains idx.
func (p *Plan) shardOwning(idx int) int {
	lo, hi := 0, len(p.Shards)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if p.Shards[mid].Lo <= idx {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}
