package cluster

import (
	"errors"
	"net/rpc"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/mat"
	"repro/internal/randx"
)

// dialWorker opens a raw RPC client to a worker for failure-injection
// tests.
func dialWorker(addr string) (*rpc.Client, error) {
	return rpc.Dial("tcp", addr)
}

// testSystem builds a propagation system from a random full-RBF problem.
func testSystem(t *testing.T, seed int64, nTotal, nLabeled int) (*core.Problem, *core.PropagationSystem) {
	t.Helper()
	rng := randx.New(seed)
	x := make([][]float64, nTotal)
	for i := range x {
		x[i] = []float64{rng.Norm(), rng.Norm()}
	}
	b, err := graph.NewBuilder(kernel.MustNew(kernel.Gaussian, 1.2))
	if err != nil {
		t.Fatal(err)
	}
	g, err := b.Build(x)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, nLabeled)
	for i := range y {
		y[i] = rng.Bernoulli(0.5)
	}
	p, err := core.NewProblemLabeledFirst(g, y)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.BuildPropagationSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	return p, sys
}

func TestPartition(t *testing.T) {
	blocks, err := Partition(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 3 {
		t.Fatalf("blocks = %v", blocks)
	}
	total := 0
	prevHi := 0
	for _, b := range blocks {
		if b.Lo != prevHi {
			t.Fatalf("blocks not contiguous: %v", blocks)
		}
		if b.Len() < 3 || b.Len() > 4 {
			t.Fatalf("unbalanced block %v", b)
		}
		total += b.Len()
		prevHi = b.Hi
	}
	if total != 10 {
		t.Fatalf("blocks cover %d, want 10", total)
	}
}

func TestPartitionClampsWorkers(t *testing.T) {
	blocks, err := Partition(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 {
		t.Fatalf("want 2 blocks, got %d", len(blocks))
	}
}

func TestPartitionErrors(t *testing.T) {
	if _, err := Partition(0, 1); !errors.Is(err, ErrParam) {
		t.Fatal("m=0 must error")
	}
	if _, err := Partition(5, 0); !errors.Is(err, ErrParam) {
		t.Fatal("p=0 must error")
	}
}

func TestBuildPropagationSystem(t *testing.T) {
	p, sys := testSystem(t, 1, 12, 5)
	if sys.M() != p.M() {
		t.Fatalf("M = %d, want %d", sys.M(), p.M())
	}
	if len(sys.D) != sys.M() || len(sys.B) != sys.M() || len(sys.Unlabeled) != sys.M() {
		t.Fatal("system slices inconsistent")
	}
	for _, d := range sys.D {
		if d <= 0 {
			t.Fatal("nonpositive degree")
		}
	}
}

func TestSolveLocalMatchesSerial(t *testing.T) {
	p, sys := testSystem(t, 3, 30, 10)
	want, err := core.SolveHard(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 5, 16} {
		f, res, err := SolveLocal(sys, LocalOptions{Workers: workers, Tol: 1e-12})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !mat.VecEqual(f, want.FUnlabeled, 1e-8) {
			t.Fatalf("workers=%d: distributed result differs from serial", workers)
		}
		if res.Supersteps <= 0 {
			t.Fatal("supersteps not reported")
		}
	}
}

func TestSolveLocalDeterministicAcrossWorkerCounts(t *testing.T) {
	_, sys := testSystem(t, 5, 25, 8)
	f1, r1, err := SolveLocal(sys, LocalOptions{Workers: 1, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	f4, r4, err := SolveLocal(sys, LocalOptions{Workers: 4, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	// Jacobi schedule ⇒ bitwise identical iterates and identical superstep
	// counts regardless of the worker count.
	if r1.Supersteps != r4.Supersteps {
		t.Fatalf("superstep counts differ: %d vs %d", r1.Supersteps, r4.Supersteps)
	}
	if !mat.VecEqual(f1, f4, 0) {
		t.Fatal("results not bitwise identical across worker counts")
	}
}

func TestSolveLocalValidation(t *testing.T) {
	if _, _, err := SolveLocal(nil, LocalOptions{}); !errors.Is(err, ErrParam) {
		t.Fatal("nil system must error")
	}
}

func TestSolveLocalMaxSuperstepsExceeded(t *testing.T) {
	_, sys := testSystem(t, 7, 40, 2)
	if _, _, err := SolveLocal(sys, LocalOptions{Tol: 1e-14, MaxSupersteps: 2}); !errors.Is(err, ErrNotConverged) {
		t.Fatalf("want ErrNotConverged, got %v", err)
	}
}

func TestResidualAtSolution(t *testing.T) {
	p, sys := testSystem(t, 9, 20, 6)
	sol, err := core.SolveHard(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Residual(sol.FUnlabeled)
	if err != nil {
		t.Fatal(err)
	}
	if res > 1e-9 {
		t.Fatalf("residual at exact solution = %g", res)
	}
	zero, err := sys.Residual(make([]float64, sys.M()))
	if err != nil {
		t.Fatal(err)
	}
	if zero <= res {
		t.Fatal("residual at zero must exceed residual at solution")
	}
}

func TestSolveRPCMatchesSerial(t *testing.T) {
	p, sys := testSystem(t, 11, 24, 8)
	want, err := core.SolveHard(p)
	if err != nil {
		t.Fatal(err)
	}
	// Three real TCP workers on ephemeral localhost ports.
	var addrs []string
	for i := 0; i < 3; i++ {
		w, err := StartWorker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			if err := w.Close(); err != nil {
				t.Errorf("close worker: %v", err)
			}
		}()
		addrs = append(addrs, w.Addr())
	}
	f, res, err := SolveRPC(sys, addrs, RPCOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if !mat.VecEqual(f, want.FUnlabeled, 1e-8) {
		t.Fatal("RPC result differs from serial solve")
	}
	if res.Workers != 3 || res.Supersteps <= 0 {
		t.Fatalf("result metadata wrong: %+v", res)
	}
}

func TestSolveRPCAgreesWithLocal(t *testing.T) {
	_, sys := testSystem(t, 13, 18, 6)
	w, err := StartWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// With the identity ordering the halo-exchange engine runs the exact
	// arithmetic of the serial Jacobi sweep: bitwise equality.
	fr, _, err := SolveRPC(sys, []string{w.Addr()}, RPCOptions{Tol: 1e-12, NoRCM: true})
	if err != nil {
		t.Fatal(err)
	}
	fl, _, err := SolveLocal(sys, LocalOptions{Workers: 1, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if !mat.VecEqual(fr, fl, 0) {
		t.Fatal("RPC and local engines must agree bitwise (same schedule)")
	}
	// With RCM the summation order changes, so agreement is to tolerance.
	frcm, _, err := SolveRPC(sys, []string{w.Addr()}, RPCOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if !mat.VecEqual(frcm, fl, 1e-8) {
		t.Fatal("RCM-ordered RPC solve differs from local beyond tolerance")
	}
}

func TestSolveRPCWorkerReuse(t *testing.T) {
	// One worker pool must be reusable across problems (Setup rebinds).
	w, err := StartWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for _, seed := range []int64{21, 22} {
		p, sys := testSystem(t, seed, 15, 5)
		want, err := core.SolveHard(p)
		if err != nil {
			t.Fatal(err)
		}
		f, _, err := SolveRPC(sys, []string{w.Addr()}, RPCOptions{Tol: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		if !mat.VecEqual(f, want.FUnlabeled, 1e-8) {
			t.Fatalf("seed %d: reuse produced a wrong answer", seed)
		}
	}
}

func TestSolveRPCDialFailure(t *testing.T) {
	_, sys := testSystem(t, 15, 10, 4)
	// Reserve a port and close it so the dial fails fast.
	w, err := StartWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := w.Addr()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := SolveRPC(sys, []string{addr}, RPCOptions{}); !errors.Is(err, ErrWorker) {
		t.Fatalf("want ErrWorker, got %v", err)
	}
}

func TestWorkerFailureMidSession(t *testing.T) {
	// A worker dying between calls must surface as an RPC error on the
	// next call over the same connection — the failure SolveRPC reports as
	// ErrWorker.
	_, sys := testSystem(t, 19, 12, 4)
	w, err := StartWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := dialWorker(w.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	plan, err := NewPlan(sys.W, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	blk := extractShard(sys, plan, 0, false)
	sh := &plan.Shards[0]
	args := &SetupArgs{
		Shard: 0, Epoch: 1, Lo: sh.Lo, Hi: sh.Hi, M: plan.M,
		D: blk.d, B: blk.b, RowPtr: blk.rowptr, Cols: blk.cols, Vals: blk.vals, Halo: sh.Halo,
	}
	if err := client.Call("Propagation.Setup", args, &SetupReply{}); err != nil {
		t.Fatal(err)
	}
	var reply StepReply
	step := &StepArgs{Shard: 0, Epoch: 1, Seq: 1}
	if err := client.Call("Propagation.Step", step, &reply); err != nil {
		t.Fatalf("healthy step failed: %v", err)
	}
	// Kill the worker, including the live session.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	step.Seq = 2
	if err := client.Call("Propagation.Step", step, &reply); err == nil {
		t.Fatal("step after worker death must error")
	}
}

func TestSolveRPCValidation(t *testing.T) {
	_, sys := testSystem(t, 17, 10, 4)
	if _, _, err := SolveRPC(nil, []string{"x"}, RPCOptions{}); !errors.Is(err, ErrParam) {
		t.Fatal("nil system must error")
	}
	if _, _, err := SolveRPC(sys, nil, RPCOptions{}); !errors.Is(err, ErrParam) {
		t.Fatal("no workers must error")
	}
}

func TestWorkerNoGoroutineLeak(t *testing.T) {
	// Start/stop workers repeatedly; the goroutine count must return to
	// its baseline (Close waits for the accept loop and all sessions).
	runtimeGC := func() {
		for i := 0; i < 3; i++ {
			runtime.GC()
			time.Sleep(10 * time.Millisecond)
		}
	}
	runtimeGC()
	base := runtime.NumGoroutine()
	_, sys := testSystem(t, 23, 12, 4)
	for round := 0; round < 5; round++ {
		w, err := StartWorker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := SolveRPC(sys, []string{w.Addr()}, RPCOptions{Tol: 1e-8}); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	runtimeGC()
	after := runtime.NumGoroutine()
	if after > base+2 {
		t.Fatalf("goroutines leaked: %d before, %d after", base, after)
	}
}

func TestWorkerServiceValidation(t *testing.T) {
	svc := NewWorkerService()
	var reply StepReply
	if err := svc.Step(&StepArgs{Shard: 0, Epoch: 1, Seq: 1}, &reply); !errors.Is(err, ErrParam) {
		t.Fatal("step before setup must error")
	}
	bad := &SetupArgs{Lo: 2, Hi: 1, M: 5}
	if err := svc.Setup(bad, &SetupReply{}); !errors.Is(err, ErrParam) {
		t.Fatal("inverted block must error")
	}
	badLen := &SetupArgs{Lo: 0, Hi: 2, M: 5, D: []float64{1}, B: []float64{1, 2}, RowPtr: []int{0, 0, 0}}
	if err := svc.Setup(badLen, &SetupReply{}); !errors.Is(err, ErrParam) {
		t.Fatal("inconsistent lengths must error")
	}
	badDeg := &SetupArgs{Lo: 0, Hi: 1, M: 5, D: []float64{0}, B: []float64{1}, RowPtr: []int{0, 0}}
	if err := svc.Setup(badDeg, &SetupReply{}); !errors.Is(err, ErrParam) {
		t.Fatal("zero degree must error")
	}
	badCSR := &SetupArgs{Lo: 0, Hi: 1, M: 5, D: []float64{1}, B: []float64{1}, RowPtr: []int{0, 1}, Cols: []int{7}, Vals: []float64{1}}
	if err := svc.Setup(badCSR, &SetupReply{}); !errors.Is(err, ErrParam) {
		t.Fatal("out-of-range local column must error")
	}
	badHalo := &SetupArgs{Lo: 0, Hi: 1, M: 5, D: []float64{1}, B: []float64{1}, RowPtr: []int{0, 0}, Halo: []int{0}}
	if err := svc.Setup(badHalo, &SetupReply{}); !errors.Is(err, ErrParam) {
		t.Fatal("halo index inside the block must error")
	}
	good := &SetupArgs{Shard: 0, Epoch: 5, Lo: 0, Hi: 1, M: 2, D: []float64{1}, B: []float64{1}, RowPtr: []int{0, 0}}
	if err := svc.Setup(good, &SetupReply{}); err != nil {
		t.Fatal(err)
	}
	// A stale rebind (older epoch) must be fenced off.
	stale := *good
	stale.Epoch = 3
	if err := svc.Setup(&stale, &SetupReply{}); !errors.Is(err, ErrStale) {
		t.Fatalf("stale rebind: got %v", err)
	}
	if err := svc.Step(&StepArgs{Shard: 0, Epoch: 4, Seq: 1}, &reply); !errors.Is(err, ErrStale) {
		t.Fatal("step at an old epoch must be stale")
	}
	if err := svc.Step(&StepArgs{Shard: 0, Epoch: 5, Seq: 1, Halo: []float64{9}}, &reply); !errors.Is(err, ErrParam) {
		t.Fatal("wrong halo length must error")
	}
	if err := svc.Step(&StepArgs{Shard: 0, Epoch: 5, Seq: 3}, &reply); !errors.Is(err, ErrStale) {
		t.Fatal("out-of-order seq must be stale")
	}
	if err := svc.Step(&StepArgs{Shard: 0, Epoch: 5, Seq: 1}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Values[0] != 1 { // (B + 0)/D = 1
		t.Fatalf("step value = %v, want 1", reply.Values[0])
	}
	// Duplicate delivery of the same step replays the cached reply.
	var dup StepReply
	if err := svc.Step(&StepArgs{Shard: 0, Epoch: 5, Seq: 1}, &dup); err != nil {
		t.Fatal(err)
	}
	if dup.Values[0] != reply.Values[0] || dup.MaxDelta != reply.MaxDelta {
		t.Fatal("duplicate step reply differs from original")
	}
}
