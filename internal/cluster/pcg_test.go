package cluster

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/mat"
	"repro/internal/randx"
	"repro/internal/synth"
)

// figSystem builds a propagation system from the paper's synthetic
// pipeline (the figs 1–4 inputs): model draw, paper bandwidth, full RBF
// graph, labeled-first problem.
func figSystem(t *testing.T, model synth.Model, n, m int, seed int64) (*core.Problem, *core.PropagationSystem) {
	t.Helper()
	ds, err := synth.Generate(randx.New(seed), model, n, m)
	if err != nil {
		t.Fatal(err)
	}
	h, err := kernel.PaperBandwidth(n, synth.Dim)
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.New(kernel.Gaussian, h)
	if err != nil {
		t.Fatal(err)
	}
	b, err := graph.NewBuilder(k)
	if err != nil {
		t.Fatal(err)
	}
	g, err := b.Build(ds.X)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewProblemLabeledFirst(g, ds.YLabeled())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.BuildPropagationSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	return p, sys
}

// eightAddrs are logical in-process worker addresses.
func eightAddrs() []string {
	addrs := make([]string, 8)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("inproc-%d", i)
	}
	return addrs
}

// TestSolvePCGDeterminismAcrossShardCounts is the determinism harness: on
// each of the figs 1–4 input families, the distributed solution must be
// bitwise-identical across 1/2/4/8 shards and agree with the single-node
// direct solver to tolerance.
func TestSolvePCGDeterminismAcrossShardCounts(t *testing.T) {
	figs := []struct {
		name  string
		model synth.Model
		n, m  int
		seed  int64
	}{
		{"fig1", synth.Model1, 60, 30, 101},
		{"fig2", synth.Model1, 100, 200, 102},
		{"fig3", synth.Model2, 60, 30, 103},
		{"fig4", synth.Model2, 100, 200, 104},
	}
	for _, fig := range figs {
		fig := fig
		t.Run(fig.name, func(t *testing.T) {
			p, sys := figSystem(t, fig.model, fig.n, fig.m, fig.seed)
			want, err := core.SolveHard(p)
			if err != nil {
				t.Fatal(err)
			}
			var ref []float64
			for _, shards := range []int{1, 2, 4, 8} {
				f, res, err := SolvePCG(sys, eightAddrs(), PCGOptions{
					Shards: shards,
					Tol:    1e-12,
					Dialer: InProcessDialer(),
				})
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				if !mat.VecEqual(f, want.FUnlabeled, 1e-8) {
					t.Fatalf("shards=%d: distributed solution differs from single-node solver", shards)
				}
				if res.Iterations <= 0 || res.Residual > 1e-9 {
					t.Fatalf("shards=%d: result metadata %+v", shards, res)
				}
				if wantShards := min(shards, sys.M()); res.Shards != wantShards {
					t.Fatalf("shards=%d: reported %d shards", shards, res.Shards)
				}
				if ref == nil {
					ref = f
					continue
				}
				if !mat.VecEqual(f, ref, 0) {
					t.Fatalf("shards=%d: solution not bitwise-identical to 1-shard run", shards)
				}
			}
		})
	}
}

// TestSolvePCGTransportBitwise pins the TCP engine to the in-process
// reference: gob round-trips float64 exactly and the arithmetic is
// identical, so the transports must agree bitwise.
func TestSolvePCGTransportBitwise(t *testing.T) {
	_, sys := testSystem(t, 51, 48, 12)
	fin, _, err := SolvePCG(sys, eightAddrs()[:4], PCGOptions{Tol: 1e-12, Dialer: InProcessDialer()})
	if err != nil {
		t.Fatal(err)
	}
	var addrs []string
	for i := 0; i < 4; i++ {
		w, err := StartWorker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		addrs = append(addrs, w.Addr())
	}
	ftcp, res, err := SolvePCG(sys, addrs, PCGOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if !mat.VecEqual(fin, ftcp, 0) {
		t.Fatal("TCP and in-process transports disagree bitwise")
	}
	if res.Workers != 4 || res.Restarts != 0 || res.Rebinds != 0 {
		t.Fatalf("unexpected result metadata %+v", res)
	}
}

// TestSolvePCGAgreesWithJacobiEngines cross-checks the three distributed
// engines against each other on the same system.
func TestSolvePCGAgreesWithJacobiEngines(t *testing.T) {
	_, sys := testSystem(t, 53, 36, 9)
	fp, _, err := SolvePCG(sys, eightAddrs()[:2], PCGOptions{Tol: 1e-12, Dialer: InProcessDialer()})
	if err != nil {
		t.Fatal(err)
	}
	fl, _, err := SolveLocal(sys, LocalOptions{Workers: 2, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if !mat.VecEqual(fp, fl, 1e-8) {
		t.Fatal("PCG and Jacobi engines disagree beyond tolerance")
	}
}

func TestSolvePCGValidation(t *testing.T) {
	if _, _, err := SolvePCG(nil, []string{"x"}, PCGOptions{}); !errors.Is(err, ErrParam) {
		t.Fatal("nil system must error")
	}
	_, sys := testSystem(t, 55, 10, 4)
	if _, _, err := SolvePCG(sys, nil, PCGOptions{}); !errors.Is(err, ErrParam) {
		t.Fatal("no addresses must error")
	}
}

// TestWorkerServicePCGValidation exercises the Bind/Start/Mul/Update/Gather
// validation branches directly.
func TestWorkerServicePCGValidation(t *testing.T) {
	svc := NewWorkerService()
	var red ReduceReply
	var mul MulReply
	var gat GatherReply
	if err := svc.Start(&StartArgs{Shard: 0, Epoch: 1}, &red); !errors.Is(err, ErrParam) {
		t.Fatal("start before bind must error")
	}
	if err := svc.Mul(&MulArgs{Shard: 0, Epoch: 1, Seq: 1}, &mul); !errors.Is(err, ErrParam) {
		t.Fatal("mul before bind must error")
	}
	if err := svc.Gather(&GatherArgs{Shard: 0, Epoch: 1}, &gat); !errors.Is(err, ErrParam) {
		t.Fatal("gather before bind must error")
	}
	if err := svc.Bind(&BindArgs{Lo: 1, Hi: 1, M: 4, Quantum: 1}, &BindReply{}); !errors.Is(err, ErrParam) {
		t.Fatal("empty block must error")
	}
	if err := svc.Bind(&BindArgs{Lo: 1, Hi: 3, M: 4, Quantum: 2, B: []float64{1, 1}, RowPtr: []int{0, 0, 0}}, &BindReply{}); !errors.Is(err, ErrParam) {
		t.Fatal("misaligned block must error")
	}
	// A 2-row diagonal block, properly aligned.
	good := &BindArgs{
		Shard: 0, Epoch: 2, Lo: 0, Hi: 2, M: 4, Quantum: 2,
		RowPtr: []int{0, 1, 2}, Cols: []int{0, 1}, Vals: []float64{2, 2},
		B: []float64{1, 1},
	}
	if err := svc.Bind(good, &BindReply{}); err != nil {
		t.Fatal(err)
	}
	// Rebind fencing: an older epoch is stale, a newer one wins.
	stale := *good
	stale.Epoch = 1
	if err := svc.Bind(&stale, &BindReply{}); !errors.Is(err, ErrStale) {
		t.Fatal("stale rebind must be fenced")
	}
	// Missing positive diagonal is rejected.
	noDiag := *good
	noDiag.Epoch = 3
	noDiag.Cols = []int{1, 1}
	if err := svc.Bind(&noDiag, &BindReply{}); !errors.Is(err, ErrParam) {
		t.Fatal("missing diagonal must error")
	}
	// Start: wrong lengths, wrong epoch direction.
	if err := svc.Start(&StartArgs{Shard: 0, Epoch: 2, X0: []float64{0}}, &red); !errors.Is(err, ErrParam) {
		t.Fatal("short x0 must error")
	}
	if err := svc.Start(&StartArgs{Shard: 0, Epoch: 1, X0: []float64{0, 0}}, &red); !errors.Is(err, ErrStale) {
		t.Fatal("old-epoch start must be stale")
	}
	if err := svc.Start(&StartArgs{Shard: 0, Epoch: 2, X0: []float64{0, 0}}, &red); err != nil {
		t.Fatal(err)
	}
	if len(red.Rho) != 1 || len(red.RR) != 1 {
		t.Fatalf("reduce reply %+v", red)
	}
	// Mul: out-of-order seq and wrong epoch are stale; a valid call works;
	// its duplicate replays the cached partials.
	if err := svc.Mul(&MulArgs{Shard: 0, Epoch: 1, Seq: 1}, &mul); !errors.Is(err, ErrStale) {
		t.Fatal("old-epoch mul must be stale")
	}
	if err := svc.Mul(&MulArgs{Shard: 0, Epoch: 2, Seq: 2}, &mul); !errors.Is(err, ErrStale) {
		t.Fatal("out-of-order mul must be stale")
	}
	if err := svc.Mul(&MulArgs{Shard: 0, Epoch: 2, Seq: 1}, &mul); err != nil {
		t.Fatal(err)
	}
	pi := mul.Pi[0]
	var mul2 MulReply
	if err := svc.Mul(&MulArgs{Shard: 0, Epoch: 2, Seq: 1}, &mul2); err != nil {
		t.Fatal(err)
	}
	if mul2.Pi[0] != pi {
		t.Fatal("duplicate mul reply differs")
	}
	// Update: phase discipline, then duplicate replay.
	if err := svc.Update(&UpdateArgs{Shard: 0, Epoch: 2, Seq: 3}, &red); !errors.Is(err, ErrStale) {
		t.Fatal("out-of-order update must be stale")
	}
	if err := svc.Update(&UpdateArgs{Shard: 0, Epoch: 2, Seq: 2, Alpha: 0.5}, &red); err != nil {
		t.Fatal(err)
	}
	rho := red.Rho[0]
	var red2 ReduceReply
	if err := svc.Update(&UpdateArgs{Shard: 0, Epoch: 2, Seq: 2, Alpha: 0.5}, &red2); err != nil {
		t.Fatal(err)
	}
	if red2.Rho[0] != rho {
		t.Fatal("duplicate update reply differs")
	}
	if err := svc.Gather(&GatherArgs{Shard: 0, Epoch: 1}, &gat); !errors.Is(err, ErrStale) {
		t.Fatal("old-epoch gather must be stale")
	}
	if err := svc.Gather(&GatherArgs{Shard: 0, Epoch: 2}, &gat); err != nil {
		t.Fatal(err)
	}
	if len(gat.X) != 2 {
		t.Fatalf("gather returned %d values", len(gat.X))
	}
}
