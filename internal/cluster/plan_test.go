package cluster

import (
	"errors"
	"testing"

	"repro/internal/sparse"
)

func TestPartitionEdgeCases(t *testing.T) {
	// Fewer rows than workers: clamp, never an empty block.
	blocks, err := Partition(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 3 {
		t.Fatalf("m<p: got %d blocks, want 3", len(blocks))
	}
	for _, b := range blocks {
		if b.Len() != 1 {
			t.Fatalf("m<p: block %+v not a single row", b)
		}
	}
	// Single row.
	blocks, err = Partition(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 || blocks[0].Lo != 0 || blocks[0].Hi != 1 {
		t.Fatalf("single row: %+v", blocks)
	}
	// Huge m: coverage and contiguity without overflow.
	const huge = 1 << 40
	blocks, err = Partition(huge, 7)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	total := 0
	for _, b := range blocks {
		if b.Lo != prev || b.Len() < 1 {
			t.Fatalf("huge m: discontiguous blocks %+v", blocks)
		}
		total += b.Len()
		prev = b.Hi
	}
	if total != huge {
		t.Fatalf("huge m: cover %d, want %d", total, huge)
	}
	// m == 0 is an error, as is p == 0.
	if _, err := Partition(0, 4); !errors.Is(err, ErrParam) {
		t.Fatal("m=0 must error")
	}
	if _, err := Partition(10, 0); !errors.Is(err, ErrParam) {
		t.Fatal("p=0 must error")
	}
}

func TestChunkQuantum(t *testing.T) {
	cases := []struct{ m, want int }{
		{0, 1}, {1, 1}, {63, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3}, {6400, 100},
	}
	for _, c := range cases {
		if got := ChunkQuantum(c.m); got != c.want {
			t.Errorf("ChunkQuantum(%d) = %d, want %d", c.m, got, c.want)
		}
	}
	// The induced chunk count never exceeds the target.
	for _, m := range []int{1, 2, 63, 64, 65, 1000, 1 << 20} {
		q := ChunkQuantum(m)
		if chunks := (m + q - 1) / q; chunks > planTargetChunks {
			t.Errorf("m=%d: %d chunks exceed target %d", m, chunks, planTargetChunks)
		}
	}
}

func TestNewPlanStructure(t *testing.T) {
	_, sys := testSystem(t, 41, 90, 20)
	m := sys.M()
	for _, shards := range []int{1, 2, 4, 8} {
		plan, err := NewPlan(sys.W, shards, true)
		if err != nil {
			t.Fatal(err)
		}
		if plan.M != m || plan.Quantum != ChunkQuantum(m) {
			t.Fatalf("shards=%d: plan geometry %d/%d", shards, plan.M, plan.Quantum)
		}
		// Permutation is a bijection.
		seen := make([]bool, m)
		for i, old := range plan.Perm {
			if plan.Inv[old] != i || seen[old] {
				t.Fatalf("shards=%d: perm not a bijection", shards)
			}
			seen[old] = true
		}
		// Shards: contiguous, chunk-aligned, covering, nonempty.
		prev := 0
		prevChunk := 0
		for s, sh := range plan.Shards {
			if sh.Lo != prev || sh.Len() < 1 {
				t.Fatalf("shards=%d: shard %d not contiguous: %+v", shards, s, sh)
			}
			if sh.Lo%plan.Quantum != 0 {
				t.Fatalf("shards=%d: shard %d not chunk-aligned", shards, s)
			}
			if sh.ChunkLo != prevChunk || sh.ChunkHi <= sh.ChunkLo {
				t.Fatalf("shards=%d: shard %d chunk range [%d,%d)", shards, s, sh.ChunkLo, sh.ChunkHi)
			}
			if sh.Lo != sh.ChunkLo*plan.Quantum {
				t.Fatalf("shards=%d: shard %d Lo/ChunkLo mismatch", shards, s)
			}
			prev = sh.Hi
			prevChunk = sh.ChunkHi
		}
		if prev != m || prevChunk != plan.Chunks {
			t.Fatalf("shards=%d: shards cover %d rows / %d chunks", shards, prev, prevChunk)
		}
	}
}

func TestNewPlanHaloBoundaryBruteForce(t *testing.T) {
	_, sys := testSystem(t, 43, 60, 15)
	plan, err := NewPlan(sys.W, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	m := plan.M
	haloTotal := 0
	for s := range plan.Shards {
		sh := &plan.Shards[s]
		// Brute-force external read set of the block, in permuted space.
		want := map[int]bool{}
		for nr := sh.Lo; nr < sh.Hi; nr++ {
			cols, _ := sys.W.RowNNZ(plan.Perm[nr])
			for _, j := range cols {
				nj := plan.Inv[j]
				if nj < sh.Lo || nj >= sh.Hi {
					want[nj] = true
				}
			}
		}
		if len(want) != len(sh.Halo) {
			t.Fatalf("shard %d: halo size %d, want %d", s, len(sh.Halo), len(want))
		}
		for i, h := range sh.Halo {
			if !want[h] {
				t.Fatalf("shard %d: spurious halo index %d", s, h)
			}
			if i > 0 && h <= sh.Halo[i-1] {
				t.Fatalf("shard %d: halo not strictly ascending", s)
			}
		}
		haloTotal += len(sh.Halo)
	}
	if plan.Stats.HaloTotal != haloTotal {
		t.Fatalf("HaloTotal = %d, want %d", plan.Stats.HaloTotal, haloTotal)
	}
	// Boundary of shard s = union over other shards' halos restricted to s.
	for s := range plan.Shards {
		sh := &plan.Shards[s]
		want := map[int]bool{}
		for o := range plan.Shards {
			if o == s {
				continue
			}
			for _, h := range plan.Shards[o].Halo {
				if h >= sh.Lo && h < sh.Hi {
					want[h] = true
				}
			}
		}
		if len(want) != len(sh.Boundary) {
			t.Fatalf("shard %d: boundary size %d, want %d", s, len(sh.Boundary), len(want))
		}
		for i, g := range sh.Boundary {
			if !want[g] {
				t.Fatalf("shard %d: spurious boundary index %d", s, g)
			}
			if i > 0 && g <= sh.Boundary[i-1] {
				t.Fatalf("shard %d: boundary not strictly ascending", s)
			}
		}
	}
	if plan.Stats.NNZ != sys.W.NNZ() || plan.Stats.EdgeCut < 0 {
		t.Fatalf("stats: %+v", plan.Stats)
	}
	if !plan.Stats.RCM {
		t.Fatal("RCM flag not recorded")
	}
	// shardOwning agrees with the block ranges.
	for s := range plan.Shards {
		sh := &plan.Shards[s]
		if plan.shardOwning(sh.Lo) != s || plan.shardOwning(sh.Hi-1) != s {
			t.Fatalf("shardOwning misroutes shard %d", s)
		}
	}
	_ = m
}

func TestNewPlanClampsShards(t *testing.T) {
	_, sys := testSystem(t, 45, 14, 6)
	// m is small so quantum = 1 and the chunk count is m; more shards than
	// chunks must clamp.
	plan, err := NewPlan(sys.W, 50, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Shards) != sys.M() {
		t.Fatalf("got %d shards, want %d", len(plan.Shards), sys.M())
	}
	if plan.Stats.RCM {
		t.Fatal("RCM flag set despite NoRCM")
	}
	if plan.Stats.NaiveEdgeCut != plan.Stats.EdgeCut {
		t.Fatal("identity plan must have NaiveEdgeCut == EdgeCut")
	}
}

func TestNewPlanErrors(t *testing.T) {
	if _, err := NewPlan(nil, 2, true); !errors.Is(err, ErrParam) {
		t.Fatal("nil matrix must error")
	}
	rect, err := sparse.NewCSR(2, 3, []int{0, 0, 0}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPlan(rect, 2, true); !errors.Is(err, ErrParam) {
		t.Fatal("non-square matrix must error")
	}
	_, sys := testSystem(t, 47, 10, 4)
	if _, err := NewPlan(sys.W, 0, true); !errors.Is(err, ErrParam) {
		t.Fatal("zero shards must error")
	}
}
