package chaostest_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/chaostest"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/mat"
	"repro/internal/randx"
)

// buildSystem creates a propagation system from a random full-RBF problem.
func buildSystem(t *testing.T, seed int64, nTotal, nLabeled int) (*core.Problem, *core.PropagationSystem) {
	t.Helper()
	rng := randx.New(seed)
	x := make([][]float64, nTotal)
	for i := range x {
		x[i] = []float64{rng.Norm(), rng.Norm()}
	}
	b, err := graph.NewBuilder(kernel.MustNew(kernel.Gaussian, 1.2))
	if err != nil {
		t.Fatal(err)
	}
	g, err := b.Build(x)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, nLabeled)
	for i := range y {
		y[i] = rng.Bernoulli(0.5)
	}
	p, err := core.NewProblemLabeledFirst(g, y)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.BuildPropagationSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	return p, sys
}

func addrs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("w%d", i)
	}
	return out
}

// faultFree solves without faults for the reference solution.
func faultFree(t *testing.T, sys *core.PropagationSystem, n int) []float64 {
	t.Helper()
	f, _, err := cluster.SolvePCG(sys, addrs(n), cluster.PCGOptions{
		Tol:    1e-12,
		Dialer: cluster.InProcessDialer(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func chaosOpts(dial cluster.Dialer) cluster.PCGOptions {
	return cluster.PCGOptions{
		Tol:             1e-12,
		Dialer:          dial,
		StepTimeout:     250 * time.Millisecond,
		CheckpointEvery: 3,
	}
}

// TestCrashMidSolveRecovers kills one worker's connection mid-iteration;
// the coordinator must rebind its shard to a survivor and still converge to
// the fault-free answer, surfacing the recovery in the result.
func TestCrashMidSolveRecovers(t *testing.T) {
	p, sys := buildSystem(t, 61, 60, 15)
	want := faultFree(t, sys, 4)
	script := func(addr, method string, n int) chaostest.Fault {
		if addr == "w1" && n == 5 {
			return chaostest.Close
		}
		return chaostest.None
	}
	dial := chaostest.Dialer(cluster.InProcessDialer(), script, 0)
	f, res, err := cluster.SolvePCG(sys, addrs(4), chaosOpts(dial))
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if res.Restarts < 1 || res.Rebinds < 1 {
		t.Fatalf("recovery not surfaced: %+v", res)
	}
	if !mat.VecEqual(f, want, 1e-8) {
		t.Fatal("recovered solution differs from fault-free run")
	}
	if res.Residual > 1e-9 {
		t.Fatalf("verified residual %g too large", res.Residual)
	}
	sol, err := core.SolveHard(p)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.VecEqual(f, sol.FUnlabeled, 1e-8) {
		t.Fatal("recovered solution differs from the single-node solver")
	}
}

// TestAllWorkersCrash verifies the failure path is typed: when every worker
// dies, the solve must give up with ErrWorker — never return a result.
func TestAllWorkersCrash(t *testing.T) {
	_, sys := buildSystem(t, 63, 40, 10)
	script := func(addr, method string, n int) chaostest.Fault {
		if n >= 3 {
			return chaostest.Close
		}
		return chaostest.None
	}
	dial := chaostest.Dialer(cluster.InProcessDialer(), script, 0)
	f, _, err := cluster.SolvePCG(sys, addrs(3), chaosOpts(dial))
	if !errors.Is(err, cluster.ErrWorker) {
		t.Fatalf("want ErrWorker, got %v", err)
	}
	if f != nil {
		t.Fatal("failed solve must not return a solution")
	}
}

// TestSlowWorkerTimesOutAndRebinds injects a 2s latency into one worker;
// the 250ms round deadline must declare it dead and move its shard.
func TestSlowWorkerTimesOutAndRebinds(t *testing.T) {
	_, sys := buildSystem(t, 65, 50, 12)
	want := faultFree(t, sys, 4)
	script := func(addr, method string, n int) chaostest.Fault {
		if addr == "w2" && n >= 4 {
			return chaostest.Delay
		}
		return chaostest.None
	}
	dial := chaostest.Dialer(cluster.InProcessDialer(), script, 2*time.Second)
	start := time.Now()
	f, res, err := cluster.SolvePCG(sys, addrs(4), chaosOpts(dial))
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if res.Restarts < 1 {
		t.Fatalf("slow worker not recovered: %+v", res)
	}
	if !mat.VecEqual(f, want, 1e-8) {
		t.Fatal("solution after slow-worker rebind differs from fault-free run")
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("solve took %v; deadline not enforced", elapsed)
	}
}

// TestDroppedConnectionRecovers swallows one call without closing the
// session — the round deadline is the only thing that can unstick it.
func TestDroppedConnectionRecovers(t *testing.T) {
	_, sys := buildSystem(t, 67, 45, 11)
	want := faultFree(t, sys, 4)
	script := func(addr, method string, n int) chaostest.Fault {
		if addr == "w0" && n == 4 {
			return chaostest.Drop
		}
		return chaostest.None
	}
	dial := chaostest.Dialer(cluster.InProcessDialer(), script, 0)
	f, res, err := cluster.SolvePCG(sys, addrs(4), chaosOpts(dial))
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if res.Restarts < 1 || res.Rebinds < 1 {
		t.Fatalf("drop not recovered: %+v", res)
	}
	if !mat.VecEqual(f, want, 1e-8) {
		t.Fatal("solution after dropped call differs from fault-free run")
	}
}

// TestDuplicateDeliveryBitwise delivers every RPC twice. The sequence-number
// idempotency must make the duplicates invisible: no restarts, and a
// bitwise-identical solution.
func TestDuplicateDeliveryBitwise(t *testing.T) {
	_, sys := buildSystem(t, 69, 55, 14)
	want := faultFree(t, sys, 4)
	script := func(addr, method string, n int) chaostest.Fault {
		return chaostest.Duplicate
	}
	dial := chaostest.Dialer(cluster.InProcessDialer(), script, 0)
	f, res, err := cluster.SolvePCG(sys, addrs(4), chaosOpts(dial))
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 0 || res.Rebinds != 0 {
		t.Fatalf("duplicates must not trigger recovery: %+v", res)
	}
	if !mat.VecEqual(f, want, 0) {
		t.Fatal("duplicated delivery changed the solution")
	}
}

// TestJacobiWorkerCrashTyped pins the fail-fast engine: a crashed worker
// surfaces as ErrWorker, and duplicated deliveries leave the answer
// bitwise-unchanged.
func TestJacobiWorkerCrashTyped(t *testing.T) {
	_, sys := buildSystem(t, 71, 40, 10)
	ffree, _, err := cluster.SolveRPC(sys, addrs(2), cluster.RPCOptions{
		Tol:    1e-12,
		Dialer: cluster.InProcessDialer(),
	})
	if err != nil {
		t.Fatal(err)
	}
	crash := func(addr, method string, n int) chaostest.Fault {
		if addr == "w1" && n == 3 {
			return chaostest.Close
		}
		return chaostest.None
	}
	if _, _, err := cluster.SolveRPC(sys, addrs(2), cluster.RPCOptions{
		Tol:    1e-12,
		Dialer: chaostest.Dialer(cluster.InProcessDialer(), crash, 0),
	}); !errors.Is(err, cluster.ErrWorker) {
		t.Fatalf("want ErrWorker, got %v", err)
	}
	dup := func(addr, method string, n int) chaostest.Fault { return chaostest.Duplicate }
	fdup, _, err := cluster.SolveRPC(sys, addrs(2), cluster.RPCOptions{
		Tol:    1e-12,
		Dialer: chaostest.Dialer(cluster.InProcessDialer(), dup, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !mat.VecEqual(fdup, ffree, 0) {
		t.Fatal("duplicated delivery changed the Jacobi solution")
	}
}
