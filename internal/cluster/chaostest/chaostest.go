// Package chaostest injects transport faults into the cluster RPC layer so
// tests can prove the distributed solvers never turn a partial failure into
// a silent wrong answer. A fault Script decides, per worker address and
// call ordinal, whether a call goes through, is dropped on the floor,
// delayed, delivered twice, or has its connection torn down — the four
// failure modes the coordinator must absorb (via round deadlines, sequence
// idempotency, and rebind) or surface as a typed ErrWorker.
package chaostest

import (
	"errors"
	"sync"
	"time"

	"repro/internal/cluster"
)

// Fault is one transport fault mode.
type Fault int

const (
	// None passes the call through.
	None Fault = iota
	// Drop swallows the call: it blocks until the caller is closed (by the
	// coordinator's round deadline) and then errors, like a packet lost on
	// a connection that is never torn down.
	Drop
	// Delay sleeps the configured latency before executing the call,
	// modelling a slow worker. A close during the sleep aborts the call.
	Delay
	// Duplicate executes the call twice with the same arguments, modelling
	// at-least-once delivery; the solvers' sequence-number idempotency must
	// make the second delivery harmless.
	Duplicate
	// Close tears the session down and fails the call, modelling a crashed
	// worker connection.
	Close
)

// Script decides the fault for the n-th call (1-based, counted per address
// across redials) of method on addr.
type Script func(addr, method string, n int) Fault

// Dialer wraps base so every session it opens consults script on each call.
// delay is the latency injected by Delay faults.
func Dialer(base cluster.Dialer, script Script, delay time.Duration) cluster.Dialer {
	inj := &injector{counts: map[string]int{}}
	return func(addr string) (cluster.Caller, error) {
		c, err := base(addr)
		if err != nil {
			return nil, err
		}
		return &faultCaller{
			base:   c,
			addr:   addr,
			inj:    inj,
			script: script,
			delay:  delay,
			closed: make(chan struct{}),
		}, nil
	}
}

// injector counts calls per address across all sessions of one Dialer.
type injector struct {
	mu     sync.Mutex
	counts map[string]int
}

func (i *injector) next(addr string) int {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.counts[addr]++
	return i.counts[addr]
}

type faultCaller struct {
	base   cluster.Caller
	addr   string
	inj    *injector
	script Script
	delay  time.Duration

	once   sync.Once
	closed chan struct{}
}

var (
	errDropped = errors.New("chaostest: call dropped")
	errClosed  = errors.New("chaostest: connection closed by fault injection")
)

func (f *faultCaller) Call(method string, args, reply any) error {
	n := f.inj.next(f.addr)
	switch f.script(f.addr, method, n) {
	case Drop:
		// Hold the call until the coordinator gives up on this session.
		<-f.closed
		return errDropped
	case Delay:
		select {
		case <-time.After(f.delay):
		case <-f.closed:
			return errClosed
		}
		return f.base.Call(method, args, reply)
	case Duplicate:
		if err := f.base.Call(method, args, reply); err != nil {
			return err
		}
		return f.base.Call(method, args, reply)
	case Close:
		_ = f.Close()
		return errClosed
	default:
		select {
		case <-f.closed:
			return errClosed
		default:
		}
		return f.base.Call(method, args, reply)
	}
}

// Close releases any Drop/Delay faults in flight and closes the underlying
// session, honouring the cluster.Caller contract that Close unblocks Call.
func (f *faultCaller) Close() error {
	f.once.Do(func() { close(f.closed) })
	return f.base.Close()
}
