package cluster

import "testing"

// TestZeroAllocSuperstep gates the warm superstep loop: once the pooled
// args, replies, and runner sessions are primed, a full halo-exchange
// superstep (fill halos, dispatch the round, fold the replies) must not
// allocate. Measured over the direct in-process transport — net/rpc's gob
// codec allocates by design, so the TCP path is exercised for correctness
// elsewhere while this pins the coordinator and worker hot paths.
func TestZeroAllocSuperstep(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	_, sys := testSystem(t, 81, 48, 12)
	plan, err := NewPlan(sys.W, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{"za0", "za1"}
	p := newPool(addrs, InProcessDialer())
	defer p.close()

	n := len(plan.Shards)
	done := make(chan *pcall, n)
	calls := make([]*pcall, n)
	for s := range plan.Shards {
		blk := extractShard(sys, plan, s, false)
		sh := &plan.Shards[s]
		calls[s] = &pcall{
			method: "Propagation.Setup",
			args: &SetupArgs{
				Shard: s, Epoch: 1, Lo: sh.Lo, Hi: sh.Hi, M: plan.M,
				D: blk.d, B: blk.b, RowPtr: blk.rowptr, Cols: blk.cols, Vals: blk.vals,
				Halo: sh.Halo,
			},
			reply: &SetupReply{},
			shard: s,
			addr:  addrs[s%len(addrs)],
		}
	}
	if fails := p.round(calls, done, 0); len(fails) > 0 {
		t.Fatalf("setup failed: %v", fails[0].err)
	}

	f := make([]float64, plan.M)
	stepArgs := make([]*StepArgs, n)
	stepReplies := make([]*StepReply, n)
	for s := range plan.Shards {
		stepArgs[s] = &StepArgs{Shard: s, Epoch: 1, Halo: make([]float64, len(plan.Shards[s].Halo))}
		stepReplies[s] = &StepReply{}
		calls[s].method = "Propagation.Step"
		calls[s].args = stepArgs[s]
		calls[s].reply = stepReplies[s]
	}
	seq := int64(0)
	failed := false
	superstep := func() {
		seq++
		for s := range plan.Shards {
			a := stepArgs[s]
			a.Seq = seq
			for k, h := range plan.Shards[s].Halo {
				a.Halo[k] = f[h]
			}
		}
		if fails := p.round(calls, done, 0); len(fails) > 0 {
			failed = true
			return
		}
		for s := range plan.Shards {
			sh := &plan.Shards[s]
			copy(f[sh.Lo:sh.Hi], stepReplies[s].Values)
		}
	}
	// Prime reply capacities and runner sessions.
	for i := 0; i < 5; i++ {
		superstep()
	}
	if failed {
		t.Fatal("warm-up superstep failed")
	}
	avg := testing.AllocsPerRun(200, superstep)
	if failed {
		t.Fatal("measured superstep failed")
	}
	if avg != 0 {
		t.Fatalf("warm superstep allocates %.1f objects/op, want 0", avg)
	}
}
