// Package cluster implements distributed label propagation for the hard
// criterion: the unlabeled nodes are block-partitioned across workers that
// jointly iterate f ← D⁻¹(B + W f) in synchronized supersteps until global
// convergence. Two transports are provided — an in-process engine
// (goroutines + channels) and a TCP engine (net/rpc with gob encoding) that
// runs each worker behind a real network listener. Both produce the same
// fixed point as the serial solver.
//
// The paper was published at ICDCS; this package is the repository's
// distributed-systems substrate showing the algorithm's natural
// parallelization, and it doubles as an independent cross-check of the
// direct solvers.
package cluster

import (
	"errors"
	"fmt"
)

var (
	// ErrParam is returned for invalid engine parameters.
	ErrParam = errors.New("cluster: invalid parameter")
	// ErrNotConverged is returned when the superstep budget is exhausted.
	ErrNotConverged = errors.New("cluster: propagation did not converge")
	// ErrWorker is returned when a worker fails mid-computation.
	ErrWorker = errors.New("cluster: worker failure")
	// ErrStale is returned by a worker that receives traffic from a
	// superseded epoch or an out-of-order sequence number — the guard that
	// keeps a rebound shard from being driven by its previous incarnation.
	ErrStale = errors.New("cluster: stale epoch or sequence")
)

// Block is a contiguous index range [Lo, Hi) assigned to one worker.
type Block struct {
	Lo, Hi int
}

// Len returns the block size.
func (b Block) Len() int { return b.Hi - b.Lo }

// Partition splits m rows into p near-equal contiguous blocks (sizes differ
// by at most one). p is clamped to m so no block is empty.
func Partition(m, p int) ([]Block, error) {
	if m < 1 || p < 1 {
		return nil, fmt.Errorf("cluster: partition m=%d p=%d: %w", m, p, ErrParam)
	}
	if p > m {
		p = m
	}
	blocks := make([]Block, 0, p)
	base := m / p
	rem := m % p
	lo := 0
	for i := 0; i < p; i++ {
		size := base
		if i < rem {
			size++
		}
		blocks = append(blocks, Block{Lo: lo, Hi: lo + size})
		lo += size
	}
	return blocks, nil
}

// Result summarizes a distributed solve.
type Result struct {
	// Supersteps is the number of synchronized iterations executed
	// (propagation engines); PCG reports Iterations instead.
	Supersteps int
	// MaxDelta is the final superstep's largest componentwise update.
	MaxDelta float64
	// Workers is the number of participating workers.
	Workers int
	// Shards is the number of blocks the system was cut into (SolvePCG and
	// the halo-exchange SolveRPC; equals Workers for SolveLocal).
	Shards int
	// Iterations is the PCG iteration count.
	Iterations int
	// Residual is the verified relative residual ‖B−(D−W)f‖₂/‖B‖₂ of the
	// returned solution, recomputed by the coordinator from the original
	// system (so a recovered run can never silently return a wrong answer).
	Residual float64
	// Restarts counts solver restarts after worker failures; Rebinds counts
	// shard blocks reassigned to a surviving worker across those restarts.
	Restarts int
	Rebinds  int
	// EdgeCut and HaloTotal echo the partition quality (see PlanStats).
	EdgeCut   int
	HaloTotal int
}
