//go:build race

package cluster

// raceEnabled reports that this binary was built with the race detector,
// whose instrumentation makes allocation counts meaningless; the zero-alloc
// gates skip under it.
const raceEnabled = true
