//go:build !race

package cluster

// raceEnabled reports whether this binary was built with the race detector.
const raceEnabled = false
