// Package coil synthesizes a COIL-like image benchmark. The paper evaluates
// on the Columbia Object Image Library benchmark of Chapelle et al. (2006):
// 24 objects photographed at 72 view angles, grouped into 6 classes, 38
// images per class discarded to leave 250 per class (1500 total), collapsed
// into a binary task (first three classes vs last three), with 16×16-pixel
// inputs.
//
// That dataset is not redistributable here, so this package renders a
// procedural stand-in with the same structure: 24 parametric objects (four
// shape families with per-object geometry), each rendered at 72 rotation
// angles on a 16×16 grid with smooth intensity gradients, so images of one
// object trace a smooth 1-D manifold in pixel space — exactly the geometric
// structure graph-based SSL exploits. Sample counts, class structure, and
// the binary grouping match the paper.
package coil

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/randx"
)

var (
	// ErrParam is returned for invalid parameters.
	ErrParam = errors.New("coil: invalid parameter")
)

// Geometry constants mirroring the paper's benchmark.
const (
	// Side is the image side length in pixels.
	Side = 16
	// Pixels is the input dimension.
	Pixels = Side * Side
	// Objects is the number of distinct objects.
	Objects = 24
	// Angles is the number of view angles per object.
	Angles = 72
	// Classes is the number of object groups.
	Classes = 6
	// PerClassKept is the number of images kept per class after discarding.
	PerClassKept = 250
	// Total is the dataset size.
	Total = Classes * PerClassKept
)

// Image is one rendered sample with its provenance.
type Image struct {
	// X is the flattened 16×16 intensity vector in [0,1].
	X []float64
	// Object is the object id in [0,Objects).
	Object int
	// AngleIndex is the view-angle index in [0,Angles).
	AngleIndex int
	// Class is the 6-way class id = Object / 4.
	Class int
	// Binary is 1 for classes 0–2 and 0 for classes 3–5
	// (the paper's grouping of first three vs last three).
	Binary float64
}

// Dataset is the full binary benchmark.
type Dataset struct {
	// Images holds all Total samples, grouped by class then object then
	// angle (after discarding).
	Images []Image
}

// X returns the input matrix as a slice of rows (views into the dataset).
func (d *Dataset) X() [][]float64 {
	out := make([][]float64, len(d.Images))
	for i := range d.Images {
		out[i] = d.Images[i].X
	}
	return out
}

// YBinary returns the binary labels aligned with X().
func (d *Dataset) YBinary() []float64 {
	out := make([]float64, len(d.Images))
	for i := range d.Images {
		out[i] = d.Images[i].Binary
	}
	return out
}

// Generate renders the full benchmark. The seed controls both the small
// per-image pixel noise and which 38 images per class are discarded.
func Generate(seed int64) (*Dataset, error) {
	return GenerateSized(seed, PerClassKept)
}

// GenerateSized renders a benchmark keeping perClass images per class
// (≤ 288 = 4 objects × 72 angles). Smaller sizes keep tests and examples
// fast while exercising the identical pipeline.
func GenerateSized(seed int64, perClass int) (*Dataset, error) {
	perClassAvailable := (Objects / Classes) * Angles
	if perClass < 1 || perClass > perClassAvailable {
		return nil, fmt.Errorf("coil: perClass=%d outside [1,%d]: %w", perClass, perClassAvailable, ErrParam)
	}
	rng := randx.New(seed)
	d := &Dataset{Images: make([]Image, 0, Classes*perClass)}
	for class := 0; class < Classes; class++ {
		classImgs := make([]Image, 0, perClassAvailable)
		for objInClass := 0; objInClass < Objects/Classes; objInClass++ {
			obj := class*(Objects/Classes) + objInClass
			shape := newShape(obj)
			for a := 0; a < Angles; a++ {
				theta := 2 * math.Pi * float64(a) / Angles
				x := shape.render(theta, rng)
				binary := 0.0
				if class < Classes/2 {
					binary = 1
				}
				classImgs = append(classImgs, Image{
					X:          x,
					Object:     obj,
					AngleIndex: a,
					Class:      class,
					Binary:     binary,
				})
			}
		}
		// Discard down to perClass images uniformly at random, preserving
		// the remaining order (the paper discards 38 of 288 per class).
		keep := rng.Perm(len(classImgs))[:perClass]
		mask := make([]bool, len(classImgs))
		for _, k := range keep {
			mask[k] = true
		}
		for i, img := range classImgs {
			if mask[i] {
				d.Images = append(d.Images, img)
			}
		}
	}
	return d, nil
}

// shape is a parametric object: a signed-distance-like profile rotated by
// the view angle, with an intensity gradient that breaks rotational
// symmetry so every view angle yields a distinct image.
type shape struct {
	family    int     // 0 ellipse, 1 rectangle, 2 cross, 3 gear
	a, b      float64 // primary semi-axes in pixel units
	lobes     int     // gear lobe count
	gradAngle float64 // direction of the intensity gradient (object frame)
	gradDepth float64 // gradient strength in (0,1)
	intensity float64 // base intensity
	noise     float64 // per-pixel noise amplitude
}

// newShape derives deterministic geometry from the object id.
func newShape(obj int) *shape {
	// Small deterministic parameter tables; objects within a class share a
	// family progression but differ in size and gradient so the class forms
	// a loose cluster of four manifolds.
	f := obj % 4
	s := &shape{
		family:    f,
		a:         2.6 + 0.7*float64(obj%5),
		b:         1.6 + 0.55*float64(obj%3),
		lobes:     3 + obj%4,
		gradAngle: 2 * math.Pi * float64(obj) / Objects,
		gradDepth: 0.5 + 0.06*float64(obj%6),
		intensity: 0.55 + 0.07*float64(obj%7),
		noise:     0.015,
	}
	return s
}

// inside returns a soft membership in [0,1] for the point (u,v) in the
// object frame (already de-rotated); softness anti-aliases edges.
func (s *shape) inside(u, v float64) float64 {
	var signed float64 // negative inside, positive outside, in pixel units
	switch s.family {
	case 0: // ellipse
		r := math.Sqrt((u/s.a)*(u/s.a) + (v/s.b)*(v/s.b))
		signed = (r - 1) * math.Min(s.a, s.b)
	case 1: // rectangle
		du := math.Abs(u) - s.a
		dv := math.Abs(v) - s.b
		signed = math.Max(du, dv)
	case 2: // cross of two bars
		bar1 := math.Max(math.Abs(u)-s.a, math.Abs(v)-s.b/1.6)
		bar2 := math.Max(math.Abs(v)-s.a, math.Abs(u)-s.b/1.6)
		signed = math.Min(bar1, bar2)
	default: // gear: radius modulated by lobes
		r := math.Hypot(u, v)
		phi := math.Atan2(v, u)
		radius := s.a * (1 + 0.25*math.Cos(float64(s.lobes)*phi))
		signed = r - radius
	}
	// Smooth step over ~1 pixel.
	return 1 / (1 + math.Exp(4*signed))
}

// render draws the shape at view angle theta and flattens to 256 values.
func (s *shape) render(theta float64, rng *randx.RNG) []float64 {
	out := make([]float64, Pixels)
	cosT, sinT := math.Cos(theta), math.Sin(theta)
	gx := math.Cos(s.gradAngle)
	gy := math.Sin(s.gradAngle)
	center := float64(Side-1) / 2
	for py := 0; py < Side; py++ {
		for px := 0; px < Side; px++ {
			// Pixel position relative to center, rotated into object frame.
			x := float64(px) - center
			y := float64(py) - center
			u := cosT*x + sinT*y
			v := -sinT*x + cosT*y
			m := s.inside(u, v)
			// Intensity gradient across the object frame: rotating the
			// object rotates the gradient too, so even symmetric silhouettes
			// change appearance with angle.
			grad := 1 + s.gradDepth*(gx*u+gy*v)/float64(Side)
			val := s.intensity * m * grad
			val += s.noise * rng.Norm()
			if val < 0 {
				val = 0
			}
			if val > 1 {
				val = 1
			}
			out[py*Side+px] = val
		}
	}
	return out
}

// Setting identifies the paper's three labeled/unlabeled ratios for Fig. 5.
type Setting int

// The paper's Fig. 5 split settings.
const (
	// Setting80 uses 5 folds with four folds labeled (80/20).
	Setting80 Setting = iota + 1
	// Setting20 uses 5 folds with one fold labeled (20/80).
	Setting20
	// Setting10 uses 10 folds with one fold labeled (10/90).
	Setting10
)

// String returns the labeled/unlabeled ratio label used in Fig. 5.
func (s Setting) String() string {
	switch s {
	case Setting80:
		return "80/20"
	case Setting20:
		return "20/80"
	case Setting10:
		return "10/90"
	default:
		return fmt.Sprintf("Setting(%d)", int(s))
	}
}

// Split is one labeled/unlabeled partition of the dataset indices.
type Split struct {
	Labeled   []int
	Unlabeled []int
}

// Splits produces the paper's splits for one repetition: the data are cut
// into k folds (k=5 for Setting80/Setting20, k=10 for Setting10) and each
// fold serves once as the test set (Setting80) or once as the training set
// (Setting20, Setting10), so one repetition yields k Split values.
func Splits(g *randx.RNG, n int, setting Setting) ([]Split, error) {
	var k int
	var foldIsLabeled bool
	switch setting {
	case Setting80:
		k, foldIsLabeled = 5, false
	case Setting20:
		k, foldIsLabeled = 5, true
	case Setting10:
		k, foldIsLabeled = 10, true
	default:
		return nil, fmt.Errorf("coil: unknown setting %d: %w", int(setting), ErrParam)
	}
	folds, err := randx.KFold(g, n, k)
	if err != nil {
		return nil, err
	}
	out := make([]Split, 0, k)
	for i := range folds {
		var inFold, rest []int
		inFold = append(inFold, folds[i]...)
		for j := range folds {
			if j != i {
				rest = append(rest, folds[j]...)
			}
		}
		if foldIsLabeled {
			out = append(out, Split{Labeled: inFold, Unlabeled: rest})
		} else {
			out = append(out, Split{Labeled: rest, Unlabeled: inFold})
		}
	}
	return out, nil
}
