package coil

import (
	"errors"
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/randx"
)

func TestGenerateSizedShapes(t *testing.T) {
	d, err := GenerateSized(1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Images) != Classes*20 {
		t.Fatalf("images = %d, want %d", len(d.Images), Classes*20)
	}
	for _, img := range d.Images {
		if len(img.X) != Pixels {
			t.Fatalf("pixel count %d", len(img.X))
		}
		for _, v := range img.X {
			if v < 0 || v > 1 {
				t.Fatalf("pixel %v outside [0,1]", v)
			}
		}
		if img.Class != img.Object/(Objects/Classes) {
			t.Fatalf("class %d inconsistent with object %d", img.Class, img.Object)
		}
		wantBinary := 0.0
		if img.Class < Classes/2 {
			wantBinary = 1
		}
		if img.Binary != wantBinary {
			t.Fatalf("binary label wrong for class %d", img.Class)
		}
	}
}

func TestGenerateFullMatchesPaperCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full dataset generation in short mode")
	}
	d, err := Generate(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Images) != Total || Total != 1500 {
		t.Fatalf("total = %d, want 1500", len(d.Images))
	}
	perClass := make(map[int]int)
	var pos int
	for _, img := range d.Images {
		perClass[img.Class]++
		if img.Binary == 1 {
			pos++
		}
	}
	for c := 0; c < Classes; c++ {
		if perClass[c] != PerClassKept {
			t.Fatalf("class %d has %d images, want %d", c, perClass[c], PerClassKept)
		}
	}
	if pos != Total/2 {
		t.Fatalf("positives = %d, want %d", pos, Total/2)
	}
}

func TestGenerateSizedValidation(t *testing.T) {
	if _, err := GenerateSized(1, 0); !errors.Is(err, ErrParam) {
		t.Fatal("perClass=0 must error")
	}
	if _, err := GenerateSized(1, 289); !errors.Is(err, ErrParam) {
		t.Fatal("perClass beyond available must error")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	d1, err := GenerateSized(7, 10)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := GenerateSized(7, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d1.Images {
		if !mat.VecEqual(d1.Images[i].X, d2.Images[i].X, 0) {
			t.Fatal("same seed must reproduce pixels")
		}
	}
	d3, err := GenerateSized(8, 10)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range d1.Images {
		if !mat.VecEqual(d1.Images[i].X, d3.Images[i].X, 1e-9) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestXAndYBinaryAccessors(t *testing.T) {
	d, err := GenerateSized(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	x := d.X()
	y := d.YBinary()
	if len(x) != len(d.Images) || len(y) != len(d.Images) {
		t.Fatal("accessor lengths wrong")
	}
	for i := range y {
		if y[i] != d.Images[i].Binary {
			t.Fatal("label misaligned")
		}
	}
}

// TestAngleManifoldSmoothness: consecutive view angles of the same object
// must be much closer in pixel space than images of different objects —
// the manifold structure the graph methods rely on.
func TestAngleManifoldSmoothness(t *testing.T) {
	d, err := GenerateSized(5, 288) // keep everything: ordered by angle
	if err != nil {
		t.Fatal(err)
	}
	// Find two consecutive-angle images of object 0 and one image of
	// object 12 (different binary class).
	var a0, a1, far []float64
	for _, img := range d.Images {
		switch {
		case img.Object == 0 && img.AngleIndex == 0:
			a0 = img.X
		case img.Object == 0 && img.AngleIndex == 1:
			a1 = img.X
		case img.Object == 12 && img.AngleIndex == 0:
			far = img.X
		}
	}
	if a0 == nil || a1 == nil || far == nil {
		t.Fatal("expected images missing")
	}
	near := mat.Dist(a0, a1)
	cross := mat.Dist(a0, far)
	if near*2 > cross {
		t.Fatalf("manifold not smooth: neighbour dist %v vs cross-object %v", near, cross)
	}
}

// TestClassSeparation: mean within-class distance below mean cross-binary
// distance, so the binary task is learnable from the graph.
func TestClassSeparation(t *testing.T) {
	d, err := GenerateSized(9, 30)
	if err != nil {
		t.Fatal(err)
	}
	var within, cross float64
	var nw, nc int
	for i := 0; i < len(d.Images); i += 3 {
		for j := i + 1; j < len(d.Images); j += 3 {
			dist := mat.Dist(d.Images[i].X, d.Images[j].X)
			if d.Images[i].Class == d.Images[j].Class {
				within += dist
				nw++
			} else if d.Images[i].Binary != d.Images[j].Binary {
				cross += dist
				nc++
			}
		}
	}
	if nw == 0 || nc == 0 {
		t.Fatal("sampling failed")
	}
	within /= float64(nw)
	cross /= float64(nc)
	if within >= cross {
		t.Fatalf("within-class distance %v not below cross-class %v", within, cross)
	}
}

func TestSettingString(t *testing.T) {
	if Setting80.String() != "80/20" || Setting20.String() != "20/80" || Setting10.String() != "10/90" {
		t.Fatal("setting names wrong")
	}
	if Setting(9).String() != "Setting(9)" {
		t.Fatal("unknown setting name wrong")
	}
}

func TestSplitsShapes(t *testing.T) {
	g := randx.New(11)
	tests := []struct {
		setting     Setting
		wantSplits  int
		labeledFrac float64
	}{
		{Setting80, 5, 0.8},
		{Setting20, 5, 0.2},
		{Setting10, 10, 0.1},
	}
	const n = 200
	for _, tt := range tests {
		splits, err := Splits(g, n, tt.setting)
		if err != nil {
			t.Fatalf("%v: %v", tt.setting, err)
		}
		if len(splits) != tt.wantSplits {
			t.Fatalf("%v: %d splits, want %d", tt.setting, len(splits), tt.wantSplits)
		}
		for _, sp := range splits {
			if len(sp.Labeled)+len(sp.Unlabeled) != n {
				t.Fatalf("%v: split does not cover data", tt.setting)
			}
			frac := float64(len(sp.Labeled)) / n
			if math.Abs(frac-tt.labeledFrac) > 0.05 {
				t.Fatalf("%v: labeled fraction %v, want %v", tt.setting, frac, tt.labeledFrac)
			}
			seen := make(map[int]bool, n)
			for _, v := range append(append([]int{}, sp.Labeled...), sp.Unlabeled...) {
				if seen[v] {
					t.Fatalf("%v: index %d duplicated", tt.setting, v)
				}
				seen[v] = true
			}
		}
	}
}

func TestSplitsEveryPointTestedOnceSetting80(t *testing.T) {
	// In Setting80 each fold is the test set exactly once, so across the 5
	// splits every index appears exactly once among Unlabeled.
	g := randx.New(13)
	const n = 100
	splits, err := Splits(g, n, Setting80)
	if err != nil {
		t.Fatal(err)
	}
	count := make([]int, n)
	for _, sp := range splits {
		for _, v := range sp.Unlabeled {
			count[v]++
		}
	}
	for i, c := range count {
		if c != 1 {
			t.Fatalf("index %d tested %d times, want 1", i, c)
		}
	}
}

func TestSplitsUnknownSetting(t *testing.T) {
	if _, err := Splits(randx.New(1), 50, Setting(77)); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
}
