package coil

import (
	"errors"
	"testing"

	"repro/internal/mat"
	"repro/internal/stats"
)

func TestReduceFeaturesShapes(t *testing.T) {
	d, err := GenerateSized(11, 10)
	if err != nil {
		t.Fatal(err)
	}
	feats, frac, err := d.ReduceFeatures(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(feats) != len(d.Images) {
		t.Fatalf("rows = %d", len(feats))
	}
	for _, f := range feats {
		if len(f) != 8 {
			t.Fatalf("feature dim = %d", len(f))
		}
	}
	if len(frac) != 8 {
		t.Fatalf("frac = %v", frac)
	}
	var total float64
	for i, v := range frac {
		if v < 0 || v > 1 {
			t.Fatalf("variance fraction %v out of range", v)
		}
		if i > 0 && v > frac[i-1]+1e-12 {
			t.Fatal("variance fractions must be non-increasing")
		}
		total += v
	}
	if total > 1+1e-9 {
		t.Fatal("fractions exceed 1")
	}
}

func TestReduceFeaturesCapturesStructure(t *testing.T) {
	// A modest number of components captures most pixel variance, and
	// class separation survives the projection: mean within-binary-class
	// distance stays below cross-class distance.
	d, err := GenerateSized(13, 20)
	if err != nil {
		t.Fatal(err)
	}
	feats, frac, err := d.ReduceFeatures(16)
	if err != nil {
		t.Fatal(err)
	}
	var captured float64
	for _, v := range frac {
		captured += v
	}
	if captured < 0.6 {
		t.Fatalf("16 components capture only %v of variance", captured)
	}
	var within, cross float64
	var nw, nc int
	for i := 0; i < len(feats); i += 4 {
		for j := i + 1; j < len(feats); j += 4 {
			dist := mat.Dist(feats[i], feats[j])
			if d.Images[i].Binary == d.Images[j].Binary {
				within += dist
				nw++
			} else {
				cross += dist
				nc++
			}
		}
	}
	if nw == 0 || nc == 0 {
		t.Fatal("sampling failed")
	}
	if within/float64(nw) >= cross/float64(nc) {
		t.Fatal("projection destroyed class separation")
	}
}

func TestReduceFeaturesAUCPreserved(t *testing.T) {
	// Ranking images by their first principal coordinate should carry some
	// binary-class signal (the classes differ in shape statistics), i.e.
	// AUC meaningfully away from 0.5 in either direction.
	d, err := GenerateSized(17, 25)
	if err != nil {
		t.Fatal(err)
	}
	feats, _, err := d.ReduceFeatures(1)
	if err != nil {
		t.Fatal(err)
	}
	scores := make([]float64, len(feats))
	for i, f := range feats {
		scores[i] = f[0]
	}
	auc, err := stats.AUC(scores, d.YBinary())
	if err != nil {
		t.Fatal(err)
	}
	if auc > 0.45 && auc < 0.55 {
		t.Fatalf("first PC carries no class signal: AUC = %v", auc)
	}
}

func TestReduceFeaturesValidation(t *testing.T) {
	d, err := GenerateSized(19, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.ReduceFeatures(0); !errors.Is(err, ErrParam) {
		t.Fatal("k=0 must error")
	}
	if _, _, err := d.ReduceFeatures(Pixels + 1); !errors.Is(err, ErrParam) {
		t.Fatal("k too large must error")
	}
	tiny := &Dataset{}
	if _, _, err := tiny.ReduceFeatures(2); !errors.Is(err, ErrParam) {
		t.Fatal("empty dataset must error")
	}
}
