package coil

import (
	"fmt"

	"repro/internal/mat"
)

// ReduceFeatures projects the dataset's pixel vectors onto their top-k
// principal components, returning one k-dimensional feature row per image
// (aligned with Images) together with the variance fraction captured per
// component. Chapelle et al.'s benchmark pipeline similarly reduces raw
// pixels before graph construction; the projection typically concentrates
// >90% of the pixel variance in a few dozen components and speeds up the
// O(n²d) distance pass accordingly.
func (d *Dataset) ReduceFeatures(k int) ([][]float64, []float64, error) {
	n := len(d.Images)
	if n < 2 {
		return nil, nil, fmt.Errorf("coil: need >=2 images for PCA: %w", ErrParam)
	}
	if k < 1 || k > Pixels {
		return nil, nil, fmt.Errorf("coil: k=%d outside [1,%d]: %w", k, Pixels, ErrParam)
	}
	x := mat.NewDense(n, Pixels)
	for i, img := range d.Images {
		x.SetRow(i, img.X)
	}
	scores, frac, err := mat.PCA(x, k)
	if err != nil {
		return nil, nil, fmt.Errorf("coil: pca: %w", err)
	}
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		out[i] = scores.Row(i)
	}
	return out, frac, nil
}
