package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/mat"
	"repro/internal/randx"
	"repro/internal/sparse"
)

func TestNadarayaWatsonKnown(t *testing.T) {
	// Explicit weights: unlabeled node 2 sees labeled 0 (w=2, y=1) and
	// labeled 1 (w=1, y=0) ⇒ NW = 2/3.
	coo := sparse.NewCOO(3, 3)
	_ = coo.AddSym(0, 2, 2)
	_ = coo.AddSym(1, 2, 1)
	g, err := graph.FromWeights(coo.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProblemLabeledFirst(g, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	nw, err := NadarayaWatson(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(nw) != 1 || math.Abs(nw[0]-2.0/3.0) > 1e-15 {
		t.Fatalf("NW = %v, want [2/3]", nw)
	}
}

func TestNadarayaWatsonIsolated(t *testing.T) {
	// Node 2 unlabeled, connected only to unlabeled node 3.
	coo := sparse.NewCOO(4, 4)
	_ = coo.AddSym(0, 1, 1)
	_ = coo.AddSym(2, 3, 1)
	g, _ := graph.FromWeights(coo.ToCSR())
	p, err := NewProblem(g, []int{0, 1}, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NadarayaWatson(p); !errors.Is(err, ErrIsolated) {
		t.Fatalf("want ErrIsolated, got %v", err)
	}
}

// TestNadarayaWatsonConvexCombination: NW estimates always lie in
// [min Y, max Y].
func TestNadarayaWatsonConvexCombination(t *testing.T) {
	rng := randx.New(201)
	pts := make([]float64, 20)
	for i := range pts {
		pts[i] = rng.Norm()
	}
	g := fullGraph(t, pts, 1)
	y := make([]float64, 8)
	for i := range y {
		y[i] = rng.Float64()*10 - 5
	}
	p, _ := NewProblemLabeledFirst(g, y)
	nw, err := NadarayaWatson(p)
	if err != nil {
		t.Fatal(err)
	}
	ymin, _ := mat.MinVec(y)
	ymax, _ := mat.MaxVec(y)
	for k, v := range nw {
		if v < ymin-1e-12 || v > ymax+1e-12 {
			t.Fatalf("NW[%d] = %v outside [%v,%v]", k, v, ymin, ymax)
		}
	}
}

// TestNadarayaWatsonMatchesHardWhenMIsOne is the tightest link between the
// hard criterion and NW: with a single unlabeled node, Eq. 5 reduces to
// exactly the NW estimator when the graph carries no unlabeled-unlabeled
// mass — and to a slightly different weighting otherwise. With m = 1 W22 has
// only the (dropped) self-loop, so the two coincide.
func TestNadarayaWatsonMatchesHardWhenMIsOne(t *testing.T) {
	rng := randx.New(203)
	pts := make([]float64, 10)
	for i := range pts {
		pts[i] = rng.Norm()
	}
	g := fullGraph(t, pts, 1)
	y := make([]float64, 9)
	for i := range y {
		y[i] = rng.Bernoulli(0.5)
	}
	p, _ := NewProblemLabeledFirst(g, y)
	hard, err := SolveHard(p)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := NadarayaWatson(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hard.FUnlabeled[0]-nw[0]) > 1e-12 {
		t.Fatalf("hard %v != NW %v for m=1", hard.FUnlabeled[0], nw[0])
	}
}

// TestTheoremII1HardApproachesNW: as n grows with m fixed, the hard solution
// converges to the NW estimator (the mechanism of the consistency proof:
// g_{n+a} → 0 and the S-term has tiny elements).
func TestTheoremII1HardApproachesNW(t *testing.T) {
	const m = 5
	gaps := make([]float64, 0, 3)
	for _, n := range []int{20, 80, 320} {
		rng := randx.New(int64(1000 + n))
		pts := make([]float64, n+m)
		for i := range pts {
			pts[i] = rng.Float64() // uniform on [0,1]
		}
		g := fullGraph(t, pts, 0.3)
		y := make([]float64, n)
		for i := range y {
			y[i] = rng.Bernoulli(0.5)
		}
		p, err := NewProblemLabeledFirst(g, y)
		if err != nil {
			t.Fatal(err)
		}
		d, err := Diagnose(p)
		if err != nil {
			t.Fatal(err)
		}
		gaps = append(gaps, d.MaxHardNWGap)
	}
	if !(gaps[2] < gaps[0]) {
		t.Fatalf("hard–NW gap must shrink with n: %v", gaps)
	}
}

func TestDiagnoseFields(t *testing.T) {
	rng := randx.New(207)
	pts := make([]float64, 12)
	for i := range pts {
		pts[i] = rng.Norm()
	}
	g := fullGraph(t, pts, 1)
	y := make([]float64, 6)
	for i := range y {
		y[i] = rng.Bernoulli(0.5)
	}
	p, _ := NewProblemLabeledFirst(g, y)
	d, err := Diagnose(p)
	if err != nil {
		t.Fatal(err)
	}
	if d.MaxUnlabeledMassRatio < 0 || d.MaxUnlabeledMassRatio > 1 {
		t.Fatalf("mass ratio %v outside [0,1]", d.MaxUnlabeledMassRatio)
	}
	if d.MeanUnlabeledMassRatio > d.MaxUnlabeledMassRatio {
		t.Fatal("mean ratio exceeds max ratio")
	}
	if d.MinLabeledDegree <= 0 {
		t.Fatalf("full Gaussian graph must have positive labeled degree, got %v", d.MinLabeledDegree)
	}
	if d.MaxHardNWGap < 0 {
		t.Fatal("negative gap")
	}
}

// TestDiagnoseGapBoundedByMassRatio: the proof bounds |f̂−NW| through the
// unlabeled mass ratio times the response range; verify the qualitative
// relation |gap| ≤ 2·maxRatio·‖Y‖∞/(1−maxRatio) loosely.
func TestDiagnoseGapBoundedLoosely(t *testing.T) {
	rng := randx.New(209)
	pts := make([]float64, 40)
	for i := range pts {
		pts[i] = rng.Float64()
	}
	g := fullGraph(t, pts, 0.5)
	y := make([]float64, 35)
	for i := range y {
		y[i] = rng.Bernoulli(0.5)
	}
	p, _ := NewProblemLabeledFirst(g, y)
	d, err := Diagnose(p)
	if err != nil {
		t.Fatal(err)
	}
	if d.MaxUnlabeledMassRatio >= 1 {
		t.Skip("degenerate instance")
	}
	bound := 2 * d.MaxUnlabeledMassRatio / (1 - d.MaxUnlabeledMassRatio)
	if d.MaxHardNWGap > bound+1e-9 {
		t.Fatalf("gap %v exceeds loose bound %v", d.MaxHardNWGap, bound)
	}
}

func TestDiagnoseIsolatedPropagates(t *testing.T) {
	p, err := NewProblem(newTwoComponentGraph(t), []int{0}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Diagnose(p); !errors.Is(err, ErrIsolated) {
		t.Fatalf("want ErrIsolated, got %v", err)
	}
}
