package core

import (
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/parallel"
)

// MulticlassProblem is a transductive problem with K-way categorical
// responses, solved one-vs-rest: the hard (or soft) criterion is applied to
// each class-indicator column, and predictions take the argmax. This
// mirrors how the paper's COIL source benchmark (6 object classes) is
// handled before its binary reduction.
type MulticlassProblem struct {
	p       *Problem
	classes []int
	yClass  []int
}

// BuildMulticlass assembles a multiclass problem from a base graph problem
// (whose float responses are ignored) plus integer class labels aligned
// with the problem's labeled set. Class ids are arbitrary non-negative
// integers, not necessarily contiguous.
func BuildMulticlass(p *Problem, labels []int) (*MulticlassProblem, error) {
	if p == nil {
		return nil, fmt.Errorf("core: nil problem: %w", ErrParam)
	}
	if len(labels) != p.N() {
		return nil, fmt.Errorf("core: %d labels for %d labeled nodes: %w", len(labels), p.N(), ErrParam)
	}
	seen := make(map[int]bool)
	for _, c := range labels {
		if c < 0 {
			return nil, fmt.Errorf("core: negative class id %d: %w", c, ErrParam)
		}
		seen[c] = true
	}
	if len(seen) < 2 {
		return nil, fmt.Errorf("core: need at least 2 classes, got %d: %w", len(seen), ErrParam)
	}
	classes := make([]int, 0, len(seen))
	for c := range seen {
		classes = append(classes, c)
	}
	// Deterministic class order.
	for i := 1; i < len(classes); i++ {
		for j := i; j > 0 && classes[j] < classes[j-1]; j-- {
			classes[j], classes[j-1] = classes[j-1], classes[j]
		}
	}
	yc := make([]int, len(labels))
	copy(yc, labels)
	return &MulticlassProblem{p: p, classes: classes, yClass: yc}, nil
}

// Classes returns the sorted distinct class ids.
func (m *MulticlassProblem) Classes() []int {
	out := make([]int, len(m.classes))
	copy(out, m.classes)
	return out
}

// MulticlassSolution holds per-class scores and argmax predictions on the
// unlabeled nodes.
type MulticlassSolution struct {
	// Classes is the class-id axis of Scores' columns.
	Classes []int
	// Scores is (#unlabeled)×(#classes), aligned with Problem.Unlabeled().
	Scores *mat.Dense
	// Predicted holds the argmax class id per unlabeled node.
	Predicted []int
	// Lambda is the criterion parameter used.
	Lambda float64
}

// Solve runs the chosen criterion once per class indicator and combines the
// columns. With normalize=true each class column is rescaled by class mass
// normalization using the labeled class frequencies (Zhu et al.'s CMN),
// which corrects imbalanced class sizes.
//
// The per-class solves are independent (one right-hand side each against a
// shared read-only graph or factorization), so they run in parallel under
// WithWorkers; the per-class outputs land in fixed columns, keeping the
// result bitwise-identical across worker counts.
func (m *MulticlassProblem) Solve(lambda float64, normalize bool, opts ...SolveOption) (*MulticlassSolution, error) {
	cfg := newSolveConfig(opts)
	nU := m.p.M()
	k := len(m.classes)
	scores := mat.NewDense(nU, k)
	// λ=0: factor D22−W22 once and reuse it for every class indicator.
	var fact *HardFactorization
	if lambda == 0 {
		var err error
		fact, err = NewHardFactorization(m.p)
		if err != nil {
			return nil, err
		}
	}
	solveClass := func(ci int) error {
		class := m.classes[ci]
		y := make([]float64, len(m.yClass))
		var prior float64
		for i, c := range m.yClass {
			if c == class {
				y[i] = 1
				prior++
			}
		}
		prior /= float64(len(m.yClass))
		var (
			sol *Solution
			err error
		)
		if fact != nil {
			sol, err = fact.SolveY(y)
		} else {
			// Rebuild a problem with the indicator responses on the same
			// graph and labeled set.
			var pc *Problem
			pc, err = NewProblem(m.p.g, m.p.labeled, y)
			if err != nil {
				return err
			}
			sol, err = SolveSoft(pc, lambda, opts...)
		}
		if err != nil {
			return fmt.Errorf("core: multiclass class %d: %w", class, err)
		}
		col := sol.FUnlabeled
		if normalize {
			col, err = ClassMassNormalize(col, clampPrior(prior))
			if err != nil {
				return err
			}
		}
		for i, v := range col {
			scores.Set(i, ci, v)
		}
		return nil
	}
	blocks := parallel.Split(k, parallel.Workers(cfg.workers))
	errs := make([]error, len(blocks))
	parallel.ForBlocks(cfg.workers, blocks, func(bi int, blk parallel.Block) {
		for ci := blk.Lo; ci < blk.Hi; ci++ {
			if err := solveClass(ci); err != nil {
				errs[bi] = err
				return
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	pred := make([]int, nU)
	for i := 0; i < nU; i++ {
		best, bestVal := m.classes[0], math.Inf(-1)
		for ci, class := range m.classes {
			if v := scores.At(i, ci); v > bestVal {
				best, bestVal = class, v
			}
		}
		pred[i] = best
	}
	return &MulticlassSolution{
		Classes:   m.Classes(),
		Scores:    scores,
		Predicted: pred,
		Lambda:    lambda,
	}, nil
}

// clampPrior keeps empirical priors inside (0,1) so CMN stays defined even
// when a class has no or all labeled mass after splitting.
func clampPrior(p float64) float64 {
	const eps = 1e-6
	if p < eps {
		return eps
	}
	if p > 1-eps {
		return 1 - eps
	}
	return p
}

// Accuracy compares predictions against true class ids aligned with the
// problem's unlabeled order.
func (s *MulticlassSolution) Accuracy(truth []int) (float64, error) {
	if len(truth) != len(s.Predicted) {
		return 0, fmt.Errorf("core: %d truths for %d predictions: %w", len(truth), len(s.Predicted), ErrParam)
	}
	if len(truth) == 0 {
		return 0, fmt.Errorf("core: empty truth: %w", ErrParam)
	}
	correct := 0
	for i, c := range truth {
		if s.Predicted[i] == c {
			correct++
		}
	}
	return float64(correct) / float64(len(truth)), nil
}
