package core

import "repro/internal/sparse"

// PropagationSystem is the hard criterion's fixed-point system in explicit
// form, for external propagation engines (e.g. the distributed engine in
// internal/cluster):
//
//	f = D⁻¹ (B + W f),   solution of (D − W) f = B,
//
// where D are the full degrees of the unlabeled nodes, W the
// unlabeled–unlabeled similarity block, and B = W21 Y the labeled mass.
type PropagationSystem struct {
	// D holds the positive diagonal (full degrees of the unlabeled nodes).
	D []float64
	// W is the m×m unlabeled–unlabeled block.
	W *sparse.CSR
	// B is the labeled contribution W21·Y.
	B []float64
	// Unlabeled maps positions 0..m-1 back to node indices of the problem.
	Unlabeled []int
}

// BuildPropagationSystem extracts the system from a problem. It performs
// the same coverage validation as SolveHard: every unlabeled component must
// contain a labeled node, and every unlabeled node must have positive
// degree.
func BuildPropagationSystem(p *Problem) (*PropagationSystem, error) {
	sys, err := buildHardSystem(p)
	if err != nil {
		return nil, err
	}
	for _, d := range sys.d22 {
		if d == 0 {
			return nil, ErrIsolated
		}
	}
	return &PropagationSystem{
		D:         sys.d22,
		W:         sys.w22,
		B:         sys.b,
		Unlabeled: p.Unlabeled(),
	}, nil
}

// M returns the number of unknowns.
func (s *PropagationSystem) M() int { return len(s.B) }

// Residual returns the relative fixed-point residual
// max_k |f_k − (B + W f)_k / D_k| / (1 + max |f|).
func (s *PropagationSystem) Residual(f []float64) (float64, error) {
	wf, err := s.W.MulVec(f)
	if err != nil {
		return 0, err
	}
	var delta, scale float64
	for k := range f {
		next := (s.B[k] + wf[k]) / s.D[k]
		d := next - f[k]
		if d < 0 {
			d = -d
		}
		if d > delta {
			delta = d
		}
		a := f[k]
		if a < 0 {
			a = -a
		}
		if a > scale {
			scale = a
		}
	}
	return delta / (1 + scale), nil
}
