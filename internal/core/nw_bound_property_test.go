package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/kernel"
)

// TestKNNResidualBoundProperty is the property test for the top-m
// truncation certificate of the k-NN predictor path: across random anchor
// sets, random anchor values, and every compact kernel profile, the
// reported residual-mass bound must satisfy
//
//	|f_trunc − f_full| ≤ bound · max_j |v_j − f_trunc|
//
// against the exact (untruncated) estimator on the same anchors — the
// inequality the serving tier's top-m mode relies on. The bound must also
// stay in [0, 1] (it is a mass fraction).
func TestKNNResidualBoundProperty(t *testing.T) {
	kinds := []kernel.Kind{kernel.Uniform, kernel.Epanechnikov, kernel.Triangular, kernel.Tricube}
	for _, kind := range kinds {
		t.Run(kind.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(kind)*97 + 5))
			checked := 0
			for trial := 0; trial < 12; trial++ {
				nA := 100 + rng.Intn(150)
				dim := 2 + rng.Intn(2)
				anchors := make([][]float64, nA)
				values := make([]float64, nA)
				for i := range anchors {
					pt := make([]float64, dim)
					for d := range pt {
						pt[d] = rng.Float64()
					}
					anchors[i] = pt
					values[i] = rng.Float64()*2 - 1
				}
				// Bandwidth wide enough that most queries keep kernel mass,
				// narrow enough that truncation actually discards some.
				k, err := kernel.New(kind, 0.5+rng.Float64())
				if err != nil {
					t.Fatal(err)
				}
				m := 1 + rng.Intn(16)
				exact, err := NewNWPredictor(anchors, values, k, 0, 1)
				if err != nil {
					t.Fatal(err)
				}
				trunc, err := NewNWPredictor(anchors, values, k, m, 1)
				if err != nil {
					t.Fatal(err)
				}
				nQ := 40
				qs := make([][]float64, nQ)
				for i := range qs {
					pt := make([]float64, dim)
					for d := range pt {
						pt[d] = rng.Float64()
					}
					qs[i] = pt
				}
				fullV := make([]float64, nQ)
				fullS := make([]NWStatus, nQ)
				exact.PredictBatch(fullV, fullS, qs, 1)
				truncV := make([]float64, nQ)
				truncS := make([]NWStatus, nQ)
				bounds := make([]float64, nQ)
				trunc.PredictBatchBounds(truncV, truncS, bounds, qs, 1, nil)
				for i := range qs {
					if truncS[i] != NWOK || fullS[i] != NWOK {
						continue
					}
					b := bounds[i]
					if b < 0 || b > 1 || math.IsNaN(b) {
						t.Fatalf("trial %d query %d: bound %v outside [0,1]", trial, i, b)
					}
					var maxDev float64
					for _, v := range values {
						if d := math.Abs(v - truncV[i]); d > maxDev {
							maxDev = d
						}
					}
					gap := math.Abs(truncV[i] - fullV[i])
					if gap > b*maxDev+1e-12 {
						t.Fatalf("trial %d query %d (m=%d, nA=%d): |trunc−full| = %g exceeds bound·maxdev = %g·%g = %g",
							trial, i, m, nA, gap, b, maxDev, b*maxDev)
					}
					checked++
				}
			}
			if checked < 100 {
				t.Fatalf("only %d query checks ran; fixture too isolated to exercise the property", checked)
			}
		})
	}
}
