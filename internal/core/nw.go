package core

import (
	"fmt"
	"math"
)

// NadarayaWatson computes the kernel-regression estimator of paper Eq. 6,
//
//	q̂_{n+a} = Σ_{i labeled} w_{n+a,i} Y_i / Σ_{i labeled} w_{n+a,i},
//
// for every unlabeled node, aligned with Problem.Unlabeled(). The estimator
// anchors the consistency proof of Theorem II.1: the hard-criterion solution
// equals NW plus terms that vanish as n grows.
//
// An unlabeled node with zero similarity mass to every labeled node has an
// undefined estimate; ErrIsolated is returned in that case.
func NadarayaWatson(p *Problem) ([]float64, error) {
	w := p.g.Weights()
	nTotal := p.g.N()
	yAt := make([]float64, nTotal)
	for k, l := range p.labeled {
		yAt[l] = p.y[k]
	}
	out := make([]float64, p.M())
	for k, u := range p.unlabeled {
		cols, vals := w.RowNNZ(u)
		var num, den float64
		for c, j := range cols {
			if p.isLabeled[j] {
				num += vals[c] * yAt[j]
				den += vals[c]
			}
		}
		if den == 0 {
			return nil, fmt.Errorf("core: unlabeled node %d has no labeled neighbour: %w", u, ErrIsolated)
		}
		out[k] = num / den
	}
	return out, nil
}

// Diagnostics quantifies how far a problem instance is from the asymptotic
// regime of Theorem II.1, using the quantities that appear in the proof.
type Diagnostics struct {
	// MaxUnlabeledMassRatio is max over unlabeled nodes a of
	// (Σ_{k unlabeled} w_{ka}) / d_a — the bound on |g_{n+a}| in the proof.
	// Consistency requires it to vanish (it is ≤ mM/(n h^d) there).
	MaxUnlabeledMassRatio float64
	// MeanUnlabeledMassRatio is the average of the same ratio.
	MeanUnlabeledMassRatio float64
	// MaxHardNWGap is max over unlabeled nodes of |f̂_hard − q̂_NW|, the
	// empirical version of the proof's conclusion that the two coincide
	// asymptotically.
	MaxHardNWGap float64
	// MinLabeledDegree is min over unlabeled nodes of Σ_{i labeled} w_ia;
	// zero means NW and the hard criterion are undefined somewhere.
	MinLabeledDegree float64
}

// Diagnose computes the proof-driven diagnostics. It solves the hard
// criterion internally.
func Diagnose(p *Problem) (*Diagnostics, error) {
	w := p.g.Weights()
	d := &Diagnostics{MinLabeledDegree: math.Inf(1)}
	var sumRatio float64
	for _, u := range p.unlabeled {
		cols, vals := w.RowNNZ(u)
		var labMass, unlMass float64
		for c, j := range cols {
			if p.isLabeled[j] {
				labMass += vals[c]
			} else {
				unlMass += vals[c]
			}
		}
		total := labMass + unlMass
		var ratio float64
		if total > 0 {
			ratio = unlMass / total
		}
		if ratio > d.MaxUnlabeledMassRatio {
			d.MaxUnlabeledMassRatio = ratio
		}
		sumRatio += ratio
		if labMass < d.MinLabeledDegree {
			d.MinLabeledDegree = labMass
		}
	}
	if m := p.M(); m > 0 {
		d.MeanUnlabeledMassRatio = sumRatio / float64(m)
	}

	hard, err := SolveHard(p)
	if err != nil {
		return nil, err
	}
	nw, err := NadarayaWatson(p)
	if err != nil {
		return nil, err
	}
	for k := range nw {
		gap := math.Abs(hard.FUnlabeled[k] - nw[k])
		if gap > d.MaxHardNWGap {
			d.MaxHardNWGap = gap
		}
	}
	return d, nil
}
