package core

import (
	"fmt"

	"repro/internal/mat"
	"repro/internal/parallel"
)

// HardFactorization is a reusable factorization of the hard criterion's
// system matrix D22−W22 for a fixed graph and labeled set. It amortizes the
// O(m³) factorization across many right-hand sides — one per class in
// one-vs-rest multiclass, or one per response column in multi-output
// regression.
type HardFactorization struct {
	p    *Problem
	chol *mat.Cholesky
	lu   *mat.LU
	sys  *hardSystem
}

// NewHardFactorization builds and factors the system once. Cholesky is
// attempted first; symmetric-indefinite rounding falls back to LU.
func NewHardFactorization(p *Problem) (*HardFactorization, error) {
	sys, err := buildHardSystem(p)
	if err != nil {
		return nil, err
	}
	dense := sys.a.ToDense()
	f := &HardFactorization{p: p, sys: sys}
	if chol, err := mat.NewCholesky(dense); err == nil {
		f.chol = chol
		return f, nil
	}
	lu, err := mat.NewLU(dense)
	if err != nil {
		return nil, fmt.Errorf("core: hard factorization: %w: %w", ErrSolver, err)
	}
	f.lu = lu
	return f, nil
}

// M returns the number of unlabeled unknowns.
func (f *HardFactorization) M() int { return len(f.sys.b) }

// SolveY computes the hard solution for a new response vector y on the
// same labeled set (len(y) = Problem.N()). Only the right-hand side W21·y
// is rebuilt; the factorization is reused.
func (f *HardFactorization) SolveY(y []float64) (*Solution, error) {
	if len(y) != f.p.N() {
		return nil, fmt.Errorf("core: SolveY with %d responses, want %d: %w", len(y), f.p.N(), ErrParam)
	}
	b, err := f.rhs(y)
	if err != nil {
		return nil, err
	}
	var fu []float64
	if f.chol != nil {
		fu, err = f.chol.Solve(b)
	} else {
		fu, err = f.lu.Solve(b)
	}
	if err != nil {
		return nil, fmt.Errorf("core: SolveY: %w: %w", ErrSolver, err)
	}
	// Assemble with the supplied y (not the problem's placeholder).
	full := make([]float64, f.p.g.N())
	for k, l := range f.p.labeled {
		full[l] = y[k]
	}
	for k, u := range f.p.unlabeled {
		full[u] = fu[k]
	}
	return &Solution{
		F:          full,
		FUnlabeled: fu,
		Lambda:     0,
		Method:     MethodCholesky,
	}, nil
}

// rhs assembles W21·y for an arbitrary response vector on the labeled set.
func (f *HardFactorization) rhs(y []float64) ([]float64, error) {
	b := make([]float64, f.p.M())
	f.rhsInto(b, make([]float64, f.p.g.N()), y)
	return b, nil
}

// rhsInto assembles W21·y into b using yAt (length N of the graph) as the
// label-scatter scratch. Both buffers are fully overwritten, so multi-RHS
// loops reuse them across columns without reallocating.
func (f *HardFactorization) rhsInto(b, yAt, y []float64) {
	w := f.p.g.Weights()
	for i := range yAt {
		yAt[i] = 0
	}
	for k, l := range f.p.labeled {
		yAt[l] = y[k]
	}
	for k, u := range f.p.unlabeled {
		cols, vals := w.RowNNZ(u)
		var s float64
		for c, j := range cols {
			if f.p.isLabeled[j] {
				s += vals[c] * yAt[j]
			}
		}
		b[k] = s
	}
}

// solveTo solves the factored system into dst without allocating.
func (f *HardFactorization) solveTo(dst, b []float64) error {
	if f.chol != nil {
		return f.chol.SolveTo(dst, b)
	}
	return f.lu.SolveTo(dst, b)
}

// SolveColumns solves the hard criterion for every column of Y
// (N()×k responses), returning an M()×k matrix of unlabeled scores.
// It runs on all available cores; see SolveColumnsWorkers.
func (f *HardFactorization) SolveColumns(y *mat.Dense) (*mat.Dense, error) {
	return f.SolveColumnsWorkers(y, 0)
}

// SolveColumnsWorkers is SolveColumns with an explicit worker count (<= 0
// selects GOMAXPROCS, 1 runs serially). Columns are independent solves
// against the shared read-only factorization, so the result is
// bitwise-identical for every worker count. This is what lets one-vs-rest
// multiclass scale with cores: one right-hand side per class.
func (f *HardFactorization) SolveColumnsWorkers(y *mat.Dense, workers int) (*mat.Dense, error) {
	rows, k := y.Dims()
	if rows != f.p.N() {
		return nil, fmt.Errorf("core: SolveColumns with %d rows, want %d: %w", rows, f.p.N(), ErrParam)
	}
	out := mat.NewDense(f.M(), k)
	blocks := parallel.Split(k, parallel.Workers(workers))
	errs := make([]error, len(blocks))
	parallel.ForBlocks(workers, blocks, func(bi int, blk parallel.Block) {
		// Per-block scratch reused across the block's columns — the response
		// column, the label scatter, the right-hand side, and the solved
		// scores — so a w-worker solve of k columns allocates O(w) buffers,
		// not O(k). The arithmetic is identical to SolveY's column by column.
		col := make([]float64, rows)
		yAt := make([]float64, f.p.g.N())
		b := make([]float64, f.M())
		fu := make([]float64, f.M())
		for c := blk.Lo; c < blk.Hi; c++ {
			for i := 0; i < rows; i++ {
				col[i] = y.At(i, c)
			}
			f.rhsInto(b, yAt, col)
			if err := f.solveTo(fu, b); err != nil {
				errs[bi] = fmt.Errorf("core: SolveColumns column %d: %w: %w", c, ErrSolver, err)
				return
			}
			for i, v := range fu {
				out.Set(i, c, v)
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
