package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/mat"
	"repro/internal/sparse"
)

// Health is the pre-solve numerical-health probe of a symmetric system
// A x = b. Every field is a deterministic function of the matrix alone
// (the spectral estimate is a fixed-start power iteration), so backend
// decisions derived from it are reproducible run to run and across worker
// counts.
type Health struct {
	// Unknowns is the system size.
	Unknowns int
	// NNZ is the number of stored entries.
	NNZ int
	// ZeroDiagonal reports a zero diagonal entry, which rules out Jacobi
	// preconditioning and signals a singular leading block.
	ZeroDiagonal bool
	// MinDiagDominance is min over rows of a_ii / Σ_{j≠i}|a_ij|
	// (+Inf when every row is purely diagonal). Values well above 1 mean
	// strict diagonal dominance, the classic convergence regime of the
	// paper's iterative solvers.
	MinDiagDominance float64
	// MeanDiagDominance is the mean of the same per-row ratio (rows with no
	// off-diagonal mass contribute 1).
	MeanDiagDominance float64
	// JacobiSpectralRadius estimates ρ(I − D^{-1/2} A D^{-1/2}) by power
	// iteration: the contraction factor of diagonally preconditioned
	// iterations. Values ≥ 1 mean the preconditioned system is not
	// positive definite within estimation accuracy.
	JacobiSpectralRadius float64
	// ConditionProxy bounds the diagonally preconditioned condition number
	// by (1+ρ)/(1−ρ); +Inf when ρ ≥ 1.
	ConditionProxy float64
	// Warnings are human-readable flags raised by the probe.
	Warnings []string
}

// probePowerIters caps the power iterations of the spectral estimate; the
// estimate converges geometrically and only feeds threshold comparisons.
const probePowerIters = 200

// ProbeHealth inspects a square symmetric system matrix and returns its
// health report. The probe costs O(nnz · powerIters) and is pure: equal
// matrices produce equal reports.
func ProbeHealth(a *sparse.CSR) (*Health, error) {
	n, c := a.Dims()
	if n != c {
		return nil, fmt.Errorf("core: health probe needs a square matrix, got %dx%d: %w", n, c, ErrParam)
	}
	h := &Health{Unknowns: n, NNZ: a.NNZ(), MinDiagDominance: math.Inf(1)}
	if n == 0 {
		return h, nil
	}

	diag := a.Diag()
	var domSum float64
	for i := 0; i < n; i++ {
		if diag[i] == 0 {
			h.ZeroDiagonal = true
		}
		cols, vals := a.RowNNZ(i)
		var off float64
		for k, j := range cols {
			if j != i {
				off += math.Abs(vals[k])
			}
		}
		ratio := 1.0
		if off > 0 {
			ratio = diag[i] / off
		} else if diag[i] > 0 {
			ratio = math.Inf(1)
		}
		if ratio < h.MinDiagDominance {
			h.MinDiagDominance = ratio
		}
		if math.IsInf(ratio, 1) {
			ratio = 1
		}
		domSum += ratio
	}
	h.MeanDiagDominance = domSum / float64(n)

	if h.ZeroDiagonal {
		h.JacobiSpectralRadius = math.Inf(1)
		h.ConditionProxy = math.Inf(1)
		h.Warnings = append(h.Warnings, "zero diagonal entry: system is singular or a node is isolated")
		return h, nil
	}

	// S = I − D^{-1/2} A D^{-1/2} shares A's sparsity pattern and is
	// symmetric, so the power iteration in SpectralRadiusEstimate applies
	// directly. ρ(S) < 1 iff the diagonally scaled system is positive
	// definite with eigenvalues in (1−ρ, 1+ρ).
	invSqrt := make([]float64, n)
	for i, d := range diag {
		if d < 0 {
			h.Warnings = append(h.Warnings, "negative diagonal entry: system is not positive definite")
			h.JacobiSpectralRadius = math.Inf(1)
			h.ConditionProxy = math.Inf(1)
			return h, nil
		}
		invSqrt[i] = 1 / math.Sqrt(d)
	}
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		cols, vals := a.RowNNZ(i)
		diagDone := false
		for k, j := range cols {
			s := -invSqrt[i] * vals[k] * invSqrt[j]
			if j == i {
				s += 1
				diagDone = true
			}
			if err := coo.Add(i, j, s); err != nil {
				return nil, err
			}
		}
		if !diagDone {
			if err := coo.Add(i, i, 1); err != nil {
				return nil, err
			}
		}
	}
	rho, err := sparse.SpectralRadiusEstimate(coo.ToCSR(), probePowerIters)
	if err != nil {
		return nil, err
	}
	h.JacobiSpectralRadius = rho
	if rho >= 1 {
		h.ConditionProxy = math.Inf(1)
		h.Warnings = append(h.Warnings, fmt.Sprintf("preconditioned spectral radius %.4g >= 1: system is near-singular", rho))
	} else {
		h.ConditionProxy = (1 + rho) / (1 - rho)
	}
	if h.MinDiagDominance < 1e-8 {
		h.Warnings = append(h.Warnings, fmt.Sprintf("weak diagonal dominance (min ratio %.3g): iterative sweeps may converge slowly", h.MinDiagDominance))
	}
	if !math.IsInf(h.ConditionProxy, 1) && h.ConditionProxy > condProxyCGMax {
		h.Warnings = append(h.Warnings, fmt.Sprintf("condition proxy %.3g beyond CG comfort zone", h.ConditionProxy))
	}
	return h, nil
}

// FallbackEvent records one escalation of the backend chain.
type FallbackEvent struct {
	// From is the backend that failed; To the one tried next.
	From, To Method
	// Reason is the failure that triggered the escalation.
	Reason string
}

// Attempt is one backend try inside a solve.
type Attempt struct {
	// Method is the backend tried.
	Method Method
	// Iterations and Residual report iterative work (zero for direct).
	Iterations int
	Residual   float64
	// Err is the failure message, empty on success.
	Err string
	// Duration is the attempt's wall time (reporting only; never feeds
	// decisions).
	Duration time.Duration
	// Precond identifies the preconditioner of CG attempts ("jacobi",
	// "ic0+rcm", "jacobi+rcm", "none"); empty for direct backends.
	Precond string
	// PrecondSetup is the preconditioner construction wall time (reporting
	// only).
	PrecondSetup time.Duration
}

// SolveTrace documents how a solve arrived at its answer: the health probe
// (when run), the backend plan decided up front, every attempt, and the
// fallbacks taken. Everything except Duration is deterministic.
type SolveTrace struct {
	// Health is the pre-solve probe; nil when the plan did not need it.
	Health *Health
	// Plan is the ordered backend chain chosen before solving.
	Plan []Method
	// PlanReason explains the choice.
	PlanReason string
	// Attempts are the backends tried, in order.
	Attempts []Attempt
	// Fallbacks are the escalations taken (empty on the happy path).
	Fallbacks []FallbackEvent
}

const (
	// defaultAutoCutoff is the system size at and below which MethodAuto
	// solves densely: direct factorization of these sizes is fast,
	// bit-reproducible, and immune to conditioning surprises. Above it the
	// chain starts at preconditioned CG (the sparse systems of this repo
	// solve orders of magnitude faster that way) and escalates on failure.
	defaultAutoCutoff = 2048
	// condProxyCGMax demotes CG from the head of the auto chain when the
	// health probe bounds the preconditioned condition number above it.
	condProxyCGMax = 1e10
	// chainStagnationWindow is the residual-history window handed to CG
	// when it runs as head of the auto chain, so pathological systems
	// escalate instead of spinning to MaxIter.
	chainStagnationWindow = 50
	// mlEscalateMin is the system size from which the auto chain arms a
	// multilevel-preconditioned CG retry between the IC(0)-CG head and the
	// dense backends: below it dense factorization is cheap enough that
	// the extra tier only adds latency (and small-system fallback traces
	// stay exactly as they were).
	mlEscalateMin = 4096
)

// planAuto decides the MethodAuto backend chain. It is a pure function of
// the system size, the cutoff, and the health probe, which keeps every
// fallback decision reproducible.
func planAuto(h *Health, n, cutoff int) ([]Method, string) {
	if cutoff <= 0 {
		cutoff = defaultAutoCutoff
	}
	if n <= cutoff {
		return []Method{MethodCholesky, MethodLU}, fmt.Sprintf("n=%d <= cutoff %d: direct dense", n, cutoff)
	}
	if h == nil {
		return []Method{MethodCG, MethodCholesky, MethodLU}, "no probe: iterative first"
	}
	if h.ZeroDiagonal {
		return []Method{MethodCholesky, MethodLU}, "zero diagonal: CG preconditioner undefined"
	}
	if h.JacobiSpectralRadius >= 1 {
		return []Method{MethodCholesky, MethodLU}, "preconditioned spectral radius >= 1: CG would stagnate"
	}
	if h.ConditionProxy > condProxyCGMax {
		return []Method{MethodCholesky, MethodLU}, fmt.Sprintf("condition proxy %.3g > %.0g: direct dense", h.ConditionProxy, float64(condProxyCGMax))
	}
	return []Method{MethodCG, MethodCholesky, MethodLU}, "large well-conditioned system: preconditioned CG first"
}

// runChain executes the MethodAuto pipeline on A x = b: probe (for large
// systems), plan, then attempt each backend in order, escalating on failure
// and recording everything in the returned trace. Cancellation is never
// escalated: a done context aborts the chain immediately.
func runChain(ctx context.Context, a *sparse.CSR, b []float64, cfg solveConfig) ([]float64, sparse.SolveResult, Method, *SolveTrace, error) {
	n := a.Rows()
	cutoff := cfg.autoCutoff
	if cutoff <= 0 {
		cutoff = defaultAutoCutoff
	}
	trace := &SolveTrace{}
	if n > cutoff || cfg.probe {
		h, err := ProbeHealth(a)
		if err != nil {
			return nil, sparse.SolveResult{}, MethodAuto, trace, err
		}
		trace.Health = h
	}
	trace.Plan, trace.PlanReason = planAuto(trace.Health, n, cutoff)
	if len(trace.Plan) > 0 && trace.Plan[0] == MethodCG &&
		cfg.precond == PrecondAuto && n >= mlEscalateMin {
		// Multilevel escalation tier: when the IC(0)-preconditioned head
		// fails on a large system, a second CG attempt with the
		// aggregation V-cycle often converges where densifying would cost
		// O(n³); it is planned up front so the trace stays a pure function
		// of the input. The second MethodCG entry is the ML retry.
		trace.Plan = append([]Method{MethodCG}, trace.Plan...)
		trace.PlanReason += "; multilevel CG retry armed before dense"
	}

	var lastErr error
	cgSeen := 0
	for i, m := range trace.Plan {
		if err := ctxErr(ctx); err != nil {
			return nil, sparse.SolveResult{}, m, trace, err
		}
		if i > 0 {
			trace.Fallbacks = append(trace.Fallbacks, FallbackEvent{
				From:   trace.Plan[i-1],
				To:     m,
				Reason: lastErr.Error(),
			})
		}
		attemptCfg := cfg
		if m == MethodCG {
			if cgSeen == 1 && cfg.precond == PrecondAuto {
				attemptCfg.precond = PrecondML
			}
			cgSeen++
		}
		start := time.Now()
		x, res, out, err := runBackend(ctx, m, a, b, attemptCfg)
		att := Attempt{
			Method:       m,
			Iterations:   res.Iterations,
			Residual:     res.Residual,
			Duration:     time.Since(start),
			Precond:      out.name,
			PrecondSetup: out.setup,
		}
		if err != nil {
			att.Err = err.Error()
		}
		if err == nil && !finiteVec(x) {
			// A factorization can "succeed" on subnormal pivots and emit
			// Inf/NaN garbage; treat that as a backend failure so the chain
			// escalates (and the terminal error is typed singular).
			err = fmt.Errorf("core: backend %v produced non-finite values: %w", m, mat.ErrSingular)
			att.Err = err.Error()
		}
		trace.Attempts = append(trace.Attempts, att)
		if err == nil {
			return x, res, m, trace, nil
		}
		if ctxDone(ctx, err) {
			return nil, res, m, trace, err
		}
		lastErr = err
	}
	return nil, sparse.SolveResult{}, MethodAuto, trace, fmt.Errorf("core: all backends failed (%v): %w", trace.Plan, lastErr)
}

// runBackend executes one backend of the chain. The CG head runs with
// stagnation and divergence detection so pathological systems fail fast and
// escalate, and resolves its preconditioner through solveCG (IC(0)+RCM
// above the cutoff by default); direct backends densify and factorize.
func runBackend(ctx context.Context, m Method, a *sparse.CSR, b []float64, cfg solveConfig) ([]float64, sparse.SolveResult, cgOutcome, error) {
	switch m {
	case MethodCG:
		return solveCG(ctx, a, b, cfg, chainStagnationWindow)
	case MethodCholesky:
		ch, err := mat.NewCholesky(a.ToDense())
		if err != nil {
			return nil, sparse.SolveResult{}, cgOutcome{}, err
		}
		x, err := ch.Solve(b)
		return x, sparse.SolveResult{}, cgOutcome{}, err
	case MethodLU:
		x, err := mat.SolveLU(a.ToDense(), b)
		return x, sparse.SolveResult{}, cgOutcome{}, err
	default:
		return nil, sparse.SolveResult{}, cgOutcome{}, fmt.Errorf("core: backend %v not usable in auto chain: %w", m, ErrParam)
	}
}

// finiteVec reports whether every entry of v is finite.
func finiteVec(v []float64) bool {
	for _, e := range v {
		if math.IsNaN(e) || math.IsInf(e, 0) {
			return false
		}
	}
	return true
}

// ctxErr reports the context's error, tolerating a nil context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// ctxDone reports whether err is the context's own termination error.
func ctxDone(ctx context.Context, err error) bool {
	if ctx == nil || err == nil {
		return false
	}
	return ctx.Err() != nil
}
