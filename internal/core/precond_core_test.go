package core

import (
	"math"
	"testing"
)

func closeVecs(t *testing.T, name string, got, want []float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if d := math.Abs(got[i] - want[i]); d > tol*(1+math.Abs(want[i])) {
			t.Fatalf("%s: differs at %d: %g vs %g", name, i, got[i], want[i])
		}
	}
}

// TestWithPreconditionerVariantsAgree: every preconditioner choice solves
// the same system — only iteration counts may differ.
func TestWithPreconditionerVariantsAgree(t *testing.T) {
	p := gaussProblem(t, 11, 12, 60)
	ref, err := SolveSoft(p, 0.3, WithMethod(MethodCholesky))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		pc   Precond
		name string
	}{
		{PrecondJacobi, "jacobi"},
		{PrecondIC0, "ic0+rcm"},
		{PrecondNone, "none"},
		{PrecondAuto, "jacobi"}, // n below cutoff resolves to Jacobi
	}
	for _, c := range cases {
		sol, err := SolveSoft(p, 0.3, WithMethod(MethodCG), WithPreconditioner(c.pc))
		if err != nil {
			t.Fatalf("%v: %v", c.pc, err)
		}
		if sol.Precond != c.name {
			t.Fatalf("%v: solution reports precond %q, want %q", c.pc, sol.Precond, c.name)
		}
		closeVecs(t, c.pc.String(), sol.F, ref.F, 1e-6)
	}
}

// TestAutoChainSelectsIC0AboveCutoff: once the system outgrows the dense
// cutoff, the auto chain's CG head must run IC(0) with RCM and record it in
// the solution and trace.
func TestAutoChainSelectsIC0AboveCutoff(t *testing.T) {
	p := gaussProblem(t, 5, 15, 70)
	sol, err := SolveHard(p, WithAutoCutoff(1))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Method != MethodCG {
		t.Fatalf("auto chain settled on %v, want cg", sol.Method)
	}
	if sol.Precond != "ic0+rcm" {
		t.Fatalf("auto chain used precond %q, want ic0+rcm", sol.Precond)
	}
	if sol.Trace == nil || len(sol.Trace.Attempts) == 0 {
		t.Fatal("auto solve carried no trace attempts")
	}
	if att := sol.Trace.Attempts[len(sol.Trace.Attempts)-1]; att.Precond != "ic0+rcm" {
		t.Fatalf("winning attempt records precond %q, want ic0+rcm", att.Precond)
	}

	ref, err := SolveHard(p, WithMethod(MethodCholesky))
	if err != nil {
		t.Fatal(err)
	}
	closeVecs(t, "auto-ic0 vs dense", sol.F, ref.F, 1e-6)
}

// TestSmallAutoSolveKeepsDensePathAndNoPrecond: at or below the cutoff the
// plan is dense-first and no preconditioner identity is reported.
func TestSmallAutoSolveKeepsDensePathAndNoPrecond(t *testing.T) {
	p := gaussProblem(t, 3, 10, 30)
	sol, err := SolveHard(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Method != MethodCholesky {
		t.Fatalf("small auto solve used %v, want cholesky", sol.Method)
	}
	if sol.Precond != "" {
		t.Fatalf("direct solve reports precond %q, want empty", sol.Precond)
	}
}

// TestSoftSweepPreconditionerPaths: the sweep's IC(0) and unpreconditioned
// paths must agree with the default warm-Jacobi path and label their
// solutions.
func TestSoftSweepPreconditionerPaths(t *testing.T) {
	p := gaussProblem(t, 9, 14, 50)
	lambdas := []float64{0, 0.05, 0.5, 2}

	def, err := SoftSweep(p, lambdas)
	if err != nil {
		t.Fatal(err)
	}
	ic0, err := SoftSweep(p, lambdas, WithPreconditioner(PrecondIC0))
	if err != nil {
		t.Fatal(err)
	}
	none, err := SoftSweep(p, lambdas, WithPreconditioner(PrecondNone))
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range lambdas {
		closeVecs(t, "ic0 sweep", ic0[i].Solution.F, def[i].Solution.F, 1e-6)
		closeVecs(t, "none sweep", none[i].Solution.F, def[i].Solution.F, 1e-6)
		if l == 0 {
			continue
		}
		if got := def[i].Solution.Precond; got != "jacobi" {
			t.Fatalf("default sweep λ=%v precond %q, want jacobi", l, got)
		}
		if got := ic0[i].Solution.Precond; got != "ic0+rcm" {
			t.Fatalf("ic0 sweep λ=%v precond %q, want ic0+rcm", l, got)
		}
		if got := none[i].Solution.Precond; got != "none" {
			t.Fatalf("none sweep λ=%v precond %q, want none", l, got)
		}
	}
}

// TestSoftSweepDefaultBitwiseStable: the pooled-workspace rework of the
// default sweep path must not change the warm-Jacobi iterates — compare
// against per-λ SolveSoft with explicit warmless CG only for equality of
// the sweep with itself across reruns (bit stability), and with the dense
// reference for correctness.
func TestSoftSweepDefaultBitwiseStable(t *testing.T) {
	p := gaussProblem(t, 21, 14, 50)
	lambdas := []float64{0.05, 0.5, 2}
	a, err := SoftSweep(p, lambdas)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SoftSweep(p, lambdas)
	if err != nil {
		t.Fatal(err)
	}
	for i := range lambdas {
		fa, fb := a[i].Solution.F, b[i].Solution.F
		for k := range fa {
			if fa[k] != fb[k] {
				t.Fatalf("sweep rerun differs at λ=%v index %d", lambdas[i], k)
			}
		}
		ref, err := SolveSoft(p, lambdas[i], WithMethod(MethodCholesky))
		if err != nil {
			t.Fatal(err)
		}
		closeVecs(t, "sweep vs dense", fa, ref.F, 1e-6)
	}
}

// TestResolvePrecond pins the auto-resolution rule.
func TestResolvePrecond(t *testing.T) {
	if got := resolvePrecond(PrecondAuto, 100, 2048); got != PrecondJacobi {
		t.Fatalf("auto small = %v", got)
	}
	if got := resolvePrecond(PrecondAuto, 5000, 2048); got != PrecondIC0 {
		t.Fatalf("auto large = %v", got)
	}
	if got := resolvePrecond(PrecondAuto, 5000, 0); got != PrecondIC0 {
		t.Fatalf("auto default cutoff = %v", got)
	}
	if got := resolvePrecond(PrecondNone, 5000, 2048); got != PrecondNone {
		t.Fatalf("explicit none = %v", got)
	}
	if got := resolvePrecond(PrecondIC0, 10, 2048); got != PrecondIC0 {
		t.Fatalf("explicit ic0 = %v", got)
	}
}
