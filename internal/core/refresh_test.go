package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/sparse"
)

// refreshGraph builds a connected weighted graph: a path backbone plus
// random chords, deterministic in the seed.
func refreshGraph(t *testing.T, n int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	coo := sparse.NewCOO(n, n)
	add := func(i, j int, v float64) {
		if err := coo.AddSym(i, j, v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i+1 < n; i++ {
		add(i, i+1, 0.5+rng.Float64())
	}
	for e := 0; e < 2*n; e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		add(i, j, 0.1+0.5*rng.Float64())
	}
	g, err := graph.FromWeights(coo.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// maxAbsDiff returns max_i |a_i − b_i|.
func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}

func solveExactF(t *testing.T, p *Problem) []float64 {
	t.Helper()
	sol, err := SolveHard(p, WithMethod(MethodCG), WithTolerance(1e-12), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	return sol.F
}

func TestRefresherUpdateLabelValues(t *testing.T) {
	g := refreshGraph(t, 80, 1)
	labeled := []int{0, 7, 19, 42, 63}
	y := []float64{1, -1, 0.5, 2, -0.25}
	p, err := NewProblem(g, labeled, y)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRefresher(p, solveExactF(t, p), 1e-12, 1e-8, 0, 1)
	if err != nil {
		t.Fatal(err)
	}

	st, err := r.UpdateLabelValues([]int{7, 42}, []float64{3, -2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != RefreshLabelValues {
		t.Fatalf("kind %v", st.Kind)
	}
	y2 := []float64{1, 3, 0.5, -2, -0.25}
	p2, err := NewProblem(g, labeled, y2)
	if err != nil {
		t.Fatal(err)
	}
	want := solveExactF(t, p2)
	if d := maxAbsDiff(r.F(), want); d > 1e-8 {
		t.Fatalf("refreshed solution off by %g", d)
	}
	if got := r.Residual(); got > 1e-8 {
		t.Fatalf("verified residual %g", got)
	}

	// A second update on top of the first must also match from scratch.
	if _, err := r.UpdateLabelValues([]int{0}, []float64{-5}); err != nil {
		t.Fatal(err)
	}
	y3 := []float64{-5, 3, 0.5, -2, -0.25}
	p3, err := NewProblem(g, labeled, y3)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(r.F(), solveExactF(t, p3)); d > 1e-8 {
		t.Fatalf("second refresh off by %g", d)
	}
}

func TestRefresherAddLabelsWoodbury(t *testing.T) {
	g := refreshGraph(t, 100, 2)
	labeled := []int{0, 10, 20, 30}
	y := []float64{1, -1, 2, 0}
	p, err := NewProblem(g, labeled, y)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRefresher(p, solveExactF(t, p), 1e-12, 1e-8, 0, 1)
	if err != nil {
		t.Fatal(err)
	}

	nodes := []int{55, 77}
	vals := []float64{1.5, -0.5}
	st, err := r.AddLabels(nodes, vals, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != RefreshWoodbury || st.Escalated {
		t.Fatalf("kind %v escalated=%v (reason %q)", st.Kind, st.Escalated, st.Reason)
	}
	if st.Solves != len(nodes) {
		t.Fatalf("solves %d, want %d unit solves", st.Solves, len(nodes))
	}

	p2, err := NewProblem(g, append(append([]int{}, labeled...), nodes...), append(append([]float64{}, y...), vals...))
	if err != nil {
		t.Fatal(err)
	}
	want := solveExactF(t, p2)
	if d := maxAbsDiff(r.F(), want); d > 1e-7 {
		t.Fatalf("woodbury solution off by %g", d)
	}
	// Labeled entries must be the responses exactly.
	for i, node := range nodes {
		if r.F()[node] != vals[i] {
			t.Fatalf("node %d: F=%v want %v", node, r.F()[node], vals[i])
		}
	}
}

func TestRefresherAddLabelsWarmPCG(t *testing.T) {
	g := refreshGraph(t, 120, 3)
	labeled := []int{0, 40}
	y := []float64{1, -1}
	p, err := NewProblem(g, labeled, y)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRefresher(p, solveExactF(t, p), 1e-12, 1e-8, 0, 1)
	if err != nil {
		t.Fatal(err)
	}

	nodes := []int{5, 15, 25, 35, 45, 55}
	vals := []float64{1, 1, -1, -1, 0.5, 2}
	st, err := r.AddLabels(nodes, vals, 4) // k=6 > woodburyMax=4
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != RefreshWarmPCG {
		t.Fatalf("kind %v", st.Kind)
	}
	p2, err := NewProblem(g, append(append([]int{}, labeled...), nodes...), append(append([]float64{}, y...), vals...))
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(r.F(), solveExactF(t, p2)); d > 1e-8 {
		t.Fatalf("warm-pcg solution off by %g", d)
	}

	// Chaining: another small batch after the rebase takes Woodbury again.
	st, err = r.AddLabels([]int{99}, []float64{-3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != RefreshWoodbury {
		t.Fatalf("chained kind %v", st.Kind)
	}
	p3, err := NewProblem(g,
		append(append(append([]int{}, labeled...), nodes...), 99),
		append(append(append([]float64{}, y...), vals...), -3))
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(r.F(), solveExactF(t, p3)); d > 1e-7 {
		t.Fatalf("chained solution off by %g", d)
	}
}

func TestRefresherRebase(t *testing.T) {
	gOld := refreshGraph(t, 60, 4)
	labeled := []int{0, 30}
	y := []float64{2, -2}
	p, err := NewProblem(gOld, labeled, y)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRefresher(p, solveExactF(t, p), 1e-12, 1e-8, 0, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Grow the graph by 5 nodes (node ids 60..64 are new, old ids keep
	// their positions).
	gNew := refreshGraph(t, 65, 4)
	p2, err := NewProblem(gNew, labeled, y)
	if err != nil {
		t.Fatal(err)
	}
	oldNode := make([]int, 65)
	for i := range oldNode {
		if i < 60 {
			oldNode[i] = i
		} else {
			oldNode[i] = -1
		}
	}
	st, err := r.Rebase(p2, oldNode)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != RefreshWarmPCG {
		t.Fatalf("kind %v", st.Kind)
	}
	if d := maxAbsDiff(r.F(), solveExactF(t, p2)); d > 1e-8 {
		t.Fatalf("rebased solution off by %g", d)
	}
}

func TestRefresherValidation(t *testing.T) {
	g := refreshGraph(t, 20, 5)
	p, err := NewProblem(g, []int{0, 5}, []float64{1, -1})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRefresher(p, solveExactF(t, p), 1e-10, 1e-8, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.UpdateLabelValues([]int{3}, []float64{1}); err == nil {
		t.Fatal("update of unlabeled node accepted")
	}
	if _, err := r.UpdateLabelValues([]int{0}, []float64{math.NaN()}); err == nil {
		t.Fatal("NaN label accepted")
	}
	if _, err := r.AddLabels([]int{0}, []float64{1}, 4); err == nil {
		t.Fatal("re-labeling a labeled node accepted")
	}
	if _, err := r.AddLabels([]int{7, 7}, []float64{1, 1}, 4); err == nil {
		t.Fatal("duplicate nodes accepted")
	}
	if _, err := r.AddLabels([]int{7}, []float64{1, 2}, 4); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := NewRefresher(p, []float64{1}, 1e-10, 1e-8, 0, 1); err == nil {
		t.Fatal("short solution vector accepted")
	}
}

// TestZeroAllocRefresh is the CI allocation gate for the warm streaming
// ingest path: once the refresher's held buffers are warm, a label-value
// refresh (right-hand-side update + warm PCG restart) must not allocate.
func TestZeroAllocRefresh(t *testing.T) {
	g := refreshGraph(t, 200, 6)
	labeled := []int{0, 50, 100, 150}
	y := []float64{1, -1, 2, -2}
	p, err := NewProblem(g, labeled, y)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRefresher(p, solveExactF(t, p), 1e-10, 1e-8, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	nodes := []int{50}
	vals := []float64{0}
	flip := 0.0
	// Warm the held workspace and destination buffers.
	for i := 0; i < 3; i++ {
		flip = 1 - flip
		vals[0] = flip
		if _, err := r.UpdateLabelValues(nodes, vals); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		flip = 1 - flip
		vals[0] = flip
		if _, err := r.UpdateLabelValues(nodes, vals); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm label refresh allocates %v times per op, want 0", allocs)
	}
}
