// Package core implements the paper's contribution: the hard criterion
// (Zhu–Ghahramani–Lafferty harmonic solution, Eq. 1/5), the soft criterion
// (Laplacian-regularized least squares, Eq. 2/3/4), their λ-limits
// (Proposition II.1 at λ=0, Proposition II.2 at λ=∞), the Nadaraya–Watson
// estimator that anchors the consistency proof of Theorem II.1, and the
// diagnostics derived from that proof.
package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/graph"
)

var (
	// ErrParam is returned for invalid problem construction.
	ErrParam = errors.New("core: invalid parameter")
	// ErrIsolated is returned when an unlabeled component has no labeled
	// node, making the hard criterion singular on that component.
	ErrIsolated = errors.New("core: unlabeled component with no labeled node")
	// ErrSolver is returned when the underlying linear solve fails.
	ErrSolver = errors.New("core: solver failure")
	// ErrDisconnected is returned by λ=∞ evaluation on disconnected graphs,
	// where the limit is componentwise, not a single global mean.
	ErrDisconnected = errors.New("core: graph is not connected")
)

// Problem is a transductive semi-supervised learning instance: a similarity
// graph over n+m nodes, of which the nodes in Labeled carry the observed
// responses Y (aligned index-for-index with Labeled).
type Problem struct {
	g         *graph.Graph
	y         []float64
	labeled   []int
	unlabeled []int
	isLabeled []bool
}

// NewProblem validates and builds a Problem. labeled must contain distinct
// in-range node indices; y must align with labeled; at least one node must
// remain unlabeled.
func NewProblem(g *graph.Graph, labeled []int, y []float64) (*Problem, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil graph: %w", ErrParam)
	}
	n := g.N()
	if len(labeled) == 0 {
		return nil, fmt.Errorf("core: no labeled nodes: %w", ErrParam)
	}
	if len(labeled) != len(y) {
		return nil, fmt.Errorf("core: %d labeled indices but %d responses: %w", len(labeled), len(y), ErrParam)
	}
	if len(labeled) >= n {
		return nil, fmt.Errorf("core: all %d nodes labeled, nothing to predict: %w", n, ErrParam)
	}
	isLabeled := make([]bool, n)
	for _, idx := range labeled {
		if idx < 0 || idx >= n {
			return nil, fmt.Errorf("core: labeled index %d outside [0,%d): %w", idx, n, ErrParam)
		}
		if isLabeled[idx] {
			return nil, fmt.Errorf("core: duplicate labeled index %d: %w", idx, ErrParam)
		}
		isLabeled[idx] = true
	}
	unlabeled := make([]int, 0, n-len(labeled))
	for i := 0; i < n; i++ {
		if !isLabeled[i] {
			unlabeled = append(unlabeled, i)
		}
	}
	lab := make([]int, len(labeled))
	copy(lab, labeled)
	resp := make([]float64, len(y))
	copy(resp, y)
	return &Problem{g: g, y: resp, labeled: lab, unlabeled: unlabeled, isLabeled: isLabeled}, nil
}

// NewProblemLabeledFirst is the paper's layout: the first n nodes are
// labeled with responses y (len(y) = n), the remaining m are unlabeled.
func NewProblemLabeledFirst(g *graph.Graph, y []float64) (*Problem, error) {
	labeled := make([]int, len(y))
	for i := range labeled {
		labeled[i] = i
	}
	return NewProblem(g, labeled, y)
}

// Graph returns the underlying graph.
func (p *Problem) Graph() *graph.Graph { return p.g }

// N returns the number of labeled nodes (the paper's n).
func (p *Problem) N() int { return len(p.labeled) }

// M returns the number of unlabeled nodes (the paper's m).
func (p *Problem) M() int { return len(p.unlabeled) }

// Labeled returns a copy of the labeled node indices.
func (p *Problem) Labeled() []int {
	out := make([]int, len(p.labeled))
	copy(out, p.labeled)
	return out
}

// Unlabeled returns a copy of the unlabeled node indices in ascending order.
func (p *Problem) Unlabeled() []int {
	out := make([]int, len(p.unlabeled))
	copy(out, p.unlabeled)
	return out
}

// Y returns a copy of the observed responses, aligned with Labeled().
func (p *Problem) Y() []float64 {
	out := make([]float64, len(p.y))
	copy(out, p.y)
	return out
}

// IsLabeled reports whether node i is labeled.
func (p *Problem) IsLabeled(i int) bool {
	if i < 0 || i >= len(p.isLabeled) {
		return false
	}
	return p.isLabeled[i]
}

// checkCoverage verifies that every connected component containing an
// unlabeled node also contains a labeled node; otherwise the hard system is
// singular on that component.
func (p *Problem) checkCoverage() error {
	for _, comp := range p.g.Components() {
		hasLabeled, hasUnlabeled := false, false
		for _, v := range comp {
			if p.isLabeled[v] {
				hasLabeled = true
			} else {
				hasUnlabeled = true
			}
		}
		if hasUnlabeled && !hasLabeled {
			sort.Ints(comp)
			return fmt.Errorf("core: component starting at node %d: %w", comp[0], ErrIsolated)
		}
	}
	return nil
}
