package core

import (
	"fmt"
	"sort"

	"repro/internal/kernel"
)

// NadarayaWatsonPoints computes the paper's Eq. 6 estimator directly from
// points, without materializing a similarity graph: for every unlabeled
// point (every index not in labeled, ascending) it returns
// Σ w(x_u, x_i) Y_i / Σ w(x_u, x_i) over the labeled points, with the
// second return value listing the unlabeled indices the estimates align to.
//
// It is a thin transductive wrapper over NWPredictor: the labeled points
// become the anchor set in ascending node order, so the accumulation runs
// in ascending labeled index with zero weights skipped — exactly the order
// NadarayaWatson sees on a default-built graph (no ε truncation, no k-NN,
// no self-loops), making the two estimators bitwise-identical there. For
// compactly supported kernels the predictor indexes the labeled set in a
// spatial grid (or KD-tree in higher dimensions) so each estimate touches
// O(k̄) labeled points instead of all of them.
//
// An unlabeled point with zero similarity mass to every labeled point has an
// undefined estimate; ErrIsolated is returned (naming the smallest such
// index) in that case. workers follows the repo convention: <= 0 selects
// GOMAXPROCS, 1 runs serially; results are identical for every worker count.
func NadarayaWatsonPoints(x [][]float64, labeled []int, y []float64, k *kernel.K, workers int) ([]float64, []int, error) {
	if k == nil {
		return nil, nil, fmt.Errorf("core: nil kernel: %w", ErrParam)
	}
	n := len(x)
	if n == 0 {
		return nil, nil, fmt.Errorf("core: no points: %w", ErrParam)
	}
	dim := len(x[0])
	if dim == 0 {
		return nil, nil, fmt.Errorf("core: zero-dimensional points: %w", ErrParam)
	}
	for i, xi := range x {
		if len(xi) != dim {
			return nil, nil, fmt.Errorf("core: point %d has dim %d, want %d: %w", i, len(xi), dim, ErrParam)
		}
	}
	if len(labeled) == 0 {
		return nil, nil, fmt.Errorf("core: no labeled points: %w", ErrParam)
	}
	if len(y) != len(labeled) {
		return nil, nil, fmt.Errorf("core: %d labeled indices but %d responses: %w", len(labeled), len(y), ErrParam)
	}
	isLabeled := make([]bool, n)
	for _, idx := range labeled {
		if idx < 0 || idx >= n {
			return nil, nil, fmt.Errorf("core: labeled index %d outside [0,%d): %w", idx, n, ErrParam)
		}
		if isLabeled[idx] {
			return nil, nil, fmt.Errorf("core: duplicate labeled index %d: %w", idx, ErrParam)
		}
		isLabeled[idx] = true
	}

	// Labeled nodes sorted ascending, with their responses and coordinates,
	// so every accumulation below runs in ascending node order.
	order := make([]int, len(labeled))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return labeled[order[a]] < labeled[order[b]] })
	labY := make([]float64, len(labeled))
	labX := make([][]float64, len(labeled))
	for p, o := range order {
		labY[p] = y[o]
		labX[p] = x[labeled[o]]
	}
	unlabeled := make([]int, 0, n-len(labeled))
	for i := 0; i < n; i++ {
		if !isLabeled[i] {
			unlabeled = append(unlabeled, i)
		}
	}

	pred, err := NewNWPredictor(labX, labY, k, 0, workers)
	if err != nil {
		return nil, nil, err
	}
	qs := make([][]float64, len(unlabeled))
	for r, u := range unlabeled {
		qs[r] = x[u]
	}
	out := make([]float64, len(unlabeled))
	status := make([]NWStatus, len(unlabeled))
	pred.PredictBatch(out, status, qs, workers)
	for r, st := range status {
		if st == NWIsolated {
			return nil, nil, fmt.Errorf("core: unlabeled point %d has no labeled neighbour: %w", unlabeled[r], ErrIsolated)
		}
	}
	return out, unlabeled, nil
}
