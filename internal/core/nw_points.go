package core

import (
	"fmt"
	"sort"

	"repro/internal/kernel"
	"repro/internal/parallel"
	"repro/internal/spatial"
)

// Minimum labeled-set size before NadarayaWatsonPoints builds a spatial
// index; below it the brute scan over labeled points is already cheap.
const nwMinIndexLabeled = 64

// NadarayaWatsonPoints computes the paper's Eq. 6 estimator directly from
// points, without materializing a similarity graph: for every unlabeled
// point (every index not in labeled, ascending) it returns
// Σ w(x_u, x_i) Y_i / Σ w(x_u, x_i) over the labeled points, with the
// second return value listing the unlabeled indices the estimates align to.
//
// For compactly supported kernels only labeled points within the bandwidth
// contribute, so the labeled set is indexed in a spatial grid (or KD-tree in
// higher dimensions) and each estimate touches O(k̄) labeled points instead
// of all of them. The accumulation order is ascending labeled index with
// zero weights skipped — exactly the order NadarayaWatson sees on a
// default-built graph (no ε truncation, no k-NN, no self-loops), so the two
// estimators are bitwise-identical there.
//
// An unlabeled point with zero similarity mass to every labeled point has an
// undefined estimate; ErrIsolated is returned (naming the smallest such
// index) in that case. workers follows the repo convention: <= 0 selects
// GOMAXPROCS, 1 runs serially; results are identical for every worker count.
func NadarayaWatsonPoints(x [][]float64, labeled []int, y []float64, k *kernel.K, workers int) ([]float64, []int, error) {
	if k == nil {
		return nil, nil, fmt.Errorf("core: nil kernel: %w", ErrParam)
	}
	n := len(x)
	if n == 0 {
		return nil, nil, fmt.Errorf("core: no points: %w", ErrParam)
	}
	dim := len(x[0])
	if dim == 0 {
		return nil, nil, fmt.Errorf("core: zero-dimensional points: %w", ErrParam)
	}
	for i, xi := range x {
		if len(xi) != dim {
			return nil, nil, fmt.Errorf("core: point %d has dim %d, want %d: %w", i, len(xi), dim, ErrParam)
		}
	}
	if len(labeled) == 0 {
		return nil, nil, fmt.Errorf("core: no labeled points: %w", ErrParam)
	}
	if len(y) != len(labeled) {
		return nil, nil, fmt.Errorf("core: %d labeled indices but %d responses: %w", len(labeled), len(y), ErrParam)
	}
	isLabeled := make([]bool, n)
	for _, idx := range labeled {
		if idx < 0 || idx >= n {
			return nil, nil, fmt.Errorf("core: labeled index %d outside [0,%d): %w", idx, n, ErrParam)
		}
		if isLabeled[idx] {
			return nil, nil, fmt.Errorf("core: duplicate labeled index %d: %w", idx, ErrParam)
		}
		isLabeled[idx] = true
	}

	// Labeled nodes sorted ascending, with their responses and coordinates,
	// so every accumulation below runs in ascending node order.
	order := make([]int, len(labeled))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return labeled[order[a]] < labeled[order[b]] })
	labNode := make([]int, len(labeled))
	labY := make([]float64, len(labeled))
	labX := make([][]float64, len(labeled))
	for p, o := range order {
		labNode[p] = labeled[o]
		labY[p] = y[o]
		labX[p] = x[labeled[o]]
	}
	unlabeled := make([]int, 0, n-len(labeled))
	for i := 0; i < n; i++ {
		if !isLabeled[i] {
			unlabeled = append(unlabeled, i)
		}
	}

	// candidates yields, for one query point, the ascending positions into
	// labNode worth evaluating (a superset of the kernel's support).
	var candidates func(q []float64, buf []int32) []int32
	if h := k.Bandwidth(); k.Kind().CompactSupport() && len(labNode) >= nwMinIndexLabeled {
		cell := h * (1 + 1e-6)
		if dim <= 6 && cell >= spatial.MinCell && cell <= spatial.MaxCell {
			g, err := spatial.NewGrid(labX, cell)
			if err != nil {
				return nil, nil, fmt.Errorf("core: nw grid index: %w", err)
			}
			candidates = func(q []float64, buf []int32) []int32 {
				buf = g.Candidates(q, buf)
				sort.Slice(buf, func(a, b int) bool { return buf[a] < buf[b] })
				return buf
			}
		} else if dim <= 16 {
			t, err := spatial.NewKDTree(labX, workers)
			if err != nil {
				return nil, nil, fmt.Errorf("core: nw kd-tree index: %w", err)
			}
			r2 := h * h
			candidates = func(q []float64, buf []int32) []int32 {
				buf = t.Radius(q, -1, r2, buf)
				sort.Slice(buf, func(a, b int) bool { return buf[a] < buf[b] })
				return buf
			}
		}
	}

	out := make([]float64, len(unlabeled))
	isolated := make([]bool, len(unlabeled))
	parallel.For(workers, len(unlabeled), func(lo, hi int) {
		var buf []int32
		for r := lo; r < hi; r++ {
			q := x[unlabeled[r]]
			var num, den float64
			if candidates != nil {
				buf = candidates(q, buf[:0])
				for _, p := range buf {
					w := k.WeightDist2(kernel.Dist2(q, labX[p]))
					if w > 0 {
						num += w * labY[p]
						den += w
					}
				}
			} else {
				for p := range labX {
					w := k.WeightDist2(kernel.Dist2(q, labX[p]))
					if w > 0 {
						num += w * labY[p]
						den += w
					}
				}
			}
			if den == 0 {
				isolated[r] = true
				continue
			}
			out[r] = num / den
		}
	})
	for r, iso := range isolated {
		if iso {
			return nil, nil, fmt.Errorf("core: unlabeled point %d has no labeled neighbour: %w", unlabeled[r], ErrIsolated)
		}
	}
	return out, unlabeled, nil
}
