package core

import (
	"errors"
	"math"
	"testing"
)

func TestClassMassNormalizeBalancedIsNearIdentityAtHalf(t *testing.T) {
	// Symmetric scores with prior 0.5: masses are equal, output equals
	// input.
	scores := []float64{0.2, 0.8, 0.4, 0.6}
	out, err := ClassMassNormalize(scores, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range scores {
		if math.Abs(out[i]-scores[i]) > 1e-12 {
			t.Fatalf("balanced CMN changed scores: %v → %v", scores, out)
		}
	}
}

func TestClassMassNormalizeShiftsTowardPrior(t *testing.T) {
	// Scores biased low but true prior high: CMN must raise them.
	scores := []float64{0.1, 0.2, 0.3}
	out, err := ClassMassNormalize(scores, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range scores {
		if out[i] <= scores[i] {
			t.Fatalf("CMN with high prior must raise score %d: %v → %v", i, scores[i], out[i])
		}
		if out[i] < 0 || out[i] > 1 {
			t.Fatalf("CMN out of range: %v", out[i])
		}
	}
}

func TestClassMassNormalizePreservesOrder(t *testing.T) {
	scores := []float64{0.1, 0.5, 0.2, 0.9, 0.4}
	out, err := ClassMassNormalize(scores, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(scores); i++ {
		for j := i + 1; j < len(scores); j++ {
			if (scores[i] < scores[j]) != (out[i] < out[j]) {
				t.Fatalf("CMN broke ranking between %d and %d", i, j)
			}
		}
	}
}

func TestClassMassNormalizeClampsInput(t *testing.T) {
	out, err := ClassMassNormalize([]float64{-0.1, 1.2, 0.5}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		if v < 0 || v > 1 {
			t.Fatalf("clamped CMN out of range: %v", out)
		}
	}
}

func TestClassMassNormalizeDegenerate(t *testing.T) {
	out, err := ClassMassNormalize([]float64{0, 0, 0}, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		if v != 0 {
			t.Fatalf("all-zero scores must pass through: %v", out)
		}
	}
	out, err = ClassMassNormalize([]float64{1, 1}, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 || out[1] != 1 {
		t.Fatalf("all-one scores must pass through: %v", out)
	}
}

func TestClassMassNormalizeValidation(t *testing.T) {
	if _, err := ClassMassNormalize(nil, 0.5); !errors.Is(err, ErrParam) {
		t.Fatal("empty must error")
	}
	for _, p := range []float64{0, 1, -1, math.NaN()} {
		if _, err := ClassMassNormalize([]float64{0.5}, p); !errors.Is(err, ErrParam) {
			t.Fatalf("prior %v must error", p)
		}
	}
}

func TestLabeledPrior(t *testing.T) {
	g := chainGraph(t, 5)
	p, err := NewProblem(g, []int{0, 1, 2, 3}, []float64{1, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.LabeledPrior(); got != 0.75 {
		t.Fatalf("LabeledPrior = %v, want 0.75", got)
	}
}
