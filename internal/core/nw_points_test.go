package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/randx"
)

// nwPointsCase draws a labeled/unlabeled split with interleaved labeled
// indices (not the labeled-first layout) to exercise the sorting logic.
func nwPointsCase(t *testing.T, seed int64, n, nLabeled, d int) (x [][]float64, labeled []int, y []float64) {
	t.Helper()
	rng := randx.New(seed)
	x = make([][]float64, n)
	for i := range x {
		xi := make([]float64, d)
		for j := range xi {
			v := rng.Norm()
			if rng.Float64() < 0.4 {
				v = math.Round(v) // exact ties
			}
			xi[j] = v
		}
		x[i] = xi
	}
	stride := n / nLabeled
	if stride < 1 {
		stride = 1
	}
	for i := 0; len(labeled) < nLabeled; i = (i + stride) % n {
		dup := false
		for _, l := range labeled {
			if l == i {
				dup = true
				break
			}
		}
		if dup {
			i++
			continue
		}
		labeled = append(labeled, i)
		y = append(y, rng.Bernoulli(0.5))
	}
	return x, labeled, y
}

// TestNadarayaWatsonPointsMatchesGraph checks the central contract: the
// point-based estimator is bitwise-identical to the graph-based one on a
// default-built graph, for compact kernels (spatial-indexed path) and the
// Gaussian (brute path), at several dimensions and worker counts.
func TestNadarayaWatsonPointsMatchesGraph(t *testing.T) {
	cases := []struct {
		name       string
		k          *kernel.K
		n, nLab, d int
	}{
		{"epan-grid", kernel.MustNew(kernel.Epanechnikov, 2.0), 300, 128, 2},
		{"uniform-grid", kernel.MustNew(kernel.Uniform, 1.5), 260, 100, 3},
		{"epan-kdtree", kernel.MustNew(kernel.Epanechnikov, 3.0), 220, 90, 8},
		{"epan-small-brute", kernel.MustNew(kernel.Epanechnikov, 2.0), 80, 20, 2},
		{"gaussian-brute", kernel.MustNew(kernel.Gaussian, 1.0), 150, 70, 2},
	}
	for _, tc := range cases {
		x, labeled, y := nwPointsCase(t, int64(100+tc.n), tc.n, tc.nLab, tc.d)
		b, err := graph.NewBuilder(tc.k)
		if err != nil {
			t.Fatal(err)
		}
		g, err := b.Build(x)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		p, err := NewProblem(g, labeled, y)
		if err != nil {
			t.Fatal(err)
		}
		ref, refErr := NadarayaWatson(p)
		for _, w := range []int{1, 4, 0} {
			got, unl, err := NadarayaWatsonPoints(x, labeled, y, tc.k, w)
			if refErr != nil {
				if !errors.Is(err, ErrIsolated) {
					t.Fatalf("%s workers=%d: graph NW failed (%v) but points NW returned %v", tc.name, w, refErr, err)
				}
				continue
			}
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.name, w, err)
			}
			pu := p.Unlabeled()
			if len(unl) != len(pu) {
				t.Fatalf("%s: %d unlabeled, want %d", tc.name, len(unl), len(pu))
			}
			for i := range pu {
				if unl[i] != pu[i] {
					t.Fatalf("%s: unlabeled order differs at %d", tc.name, i)
				}
				if got[i] != ref[i] {
					t.Fatalf("%s workers=%d: estimate %d = %v, want %v (must be bitwise-identical)",
						tc.name, w, i, got[i], ref[i])
				}
			}
		}
	}
}

// TestNadarayaWatsonPointsIsolated: a far-away unlabeled point under a
// compact kernel has no support and must surface ErrIsolated.
func TestNadarayaWatsonPointsIsolated(t *testing.T) {
	x := [][]float64{{0, 0}, {0.5, 0}, {100, 100}}
	k := kernel.MustNew(kernel.Epanechnikov, 1.0)
	if _, _, err := NadarayaWatsonPoints(x, []int{0, 1}, []float64{1, 0}, k, 1); !errors.Is(err, ErrIsolated) {
		t.Fatalf("want ErrIsolated, got %v", err)
	}
}

func TestNadarayaWatsonPointsValidation(t *testing.T) {
	k := kernel.MustNew(kernel.Gaussian, 1.0)
	x := [][]float64{{0}, {1}, {2}}
	cases := []struct {
		name    string
		x       [][]float64
		labeled []int
		y       []float64
	}{
		{"no-points", nil, []int{0}, []float64{1}},
		{"ragged", [][]float64{{0, 1}, {2}}, []int{0}, []float64{1}},
		{"no-labeled", x, nil, nil},
		{"len-mismatch", x, []int{0, 1}, []float64{1}},
		{"out-of-range", x, []int{3}, []float64{1}},
		{"duplicate", x, []int{1, 1}, []float64{1, 2}},
	}
	for _, tc := range cases {
		if _, _, err := NadarayaWatsonPoints(tc.x, tc.labeled, tc.y, k, 1); !errors.Is(err, ErrParam) {
			t.Fatalf("%s: want ErrParam, got %v", tc.name, err)
		}
	}
	if _, _, err := NadarayaWatsonPoints(x, []int{0}, []float64{1}, nil, 1); !errors.Is(err, ErrParam) {
		t.Fatalf("nil kernel: want ErrParam")
	}
}
