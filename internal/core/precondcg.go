package core

import (
	"context"
	"errors"
	"time"

	"repro/internal/precond"
	"repro/internal/sparse"
)

// This file is the single CG entry point of the solve pipeline: every
// backend that runs conjugate gradient — the explicit MethodCG branches of
// SolveHard/SolveSoft and the iterative head of the MethodAuto chain — goes
// through solveCG, so preconditioner selection, RCM reordering, and
// diagnostics accounting live in one place.

// cgOutcome reports how a CG solve was preconditioned, for traces and the
// public Report.
type cgOutcome struct {
	// name identifies the applied preconditioner ("jacobi", "ic0+rcm",
	// "jacobi+rcm", "none").
	name string
	// setup is the wall time of reordering plus factorization (zero for the
	// built-in Jacobi path, whose setup is one diagonal pass inside CG).
	setup time.Duration
}

// resolvePrecond maps PrecondAuto onto a concrete choice: Jacobi at or
// below the dense/iterative cutoff (the historical bit-exact path — those
// systems rarely reach CG at all), IC(0)+RCM above it, where the health
// probe has already vouched for conditioning and the factorization cost is
// amortized by the iteration savings.
func resolvePrecond(p Precond, n, cutoff int) Precond {
	if p != PrecondAuto {
		return p
	}
	if cutoff <= 0 {
		cutoff = defaultAutoCutoff
	}
	if n > cutoff {
		return PrecondIC0
	}
	return PrecondJacobi
}

// solveCG runs the CG backend on A x = b under cfg's preconditioner choice.
// The Jacobi and unpreconditioned paths call sparse.CG exactly as the
// pipeline always has; the IC(0) path permutes the system with RCM, solves
// P A Pᵀ (P x) = P b with the incomplete-Cholesky PCG, and un-permutes the
// solution. Every path is deterministic and bitwise-stable across worker
// counts.
func solveCG(ctx context.Context, a *sparse.CSR, b []float64, cfg solveConfig, stagnationWindow int) ([]float64, sparse.SolveResult, cgOutcome, error) {
	base := sparse.CGOptions{
		Tol:              cfg.tol,
		MaxIter:          cfg.maxIter,
		Workers:          cfg.workers,
		Ctx:              ctx,
		StagnationWindow: stagnationWindow,
	}
	switch resolvePrecond(cfg.precond, a.Rows(), cfg.autoCutoff) {
	case PrecondNone:
		x, res, err := sparse.CG(a, b, base)
		return x, res, cgOutcome{name: "none"}, err
	case PrecondML:
		start := time.Now()
		m, err := precond.NewML(a)
		if err != nil {
			if errors.Is(err, precond.ErrNoHierarchy) {
				// The matrix graph does not coarsen (near-diagonal system):
				// degrade to the IC(0)+RCM tier rather than fail the attempt.
				cfg.precond = PrecondIC0
				return solveCG(ctx, a, b, cfg, stagnationWindow)
			}
			return nil, sparse.SolveResult{}, cgOutcome{}, err
		}
		out := cgOutcome{name: "ml", setup: time.Since(start)}
		x, res, err := sparse.PCG(a, b, sparse.PCGOptions{CGOptions: base, M: m})
		return x, res, out, err
	case PrecondIC0:
		start := time.Now()
		perm, err := sparse.RCM(a)
		if err != nil {
			return nil, sparse.SolveResult{}, cgOutcome{}, err
		}
		pa, err := a.Permute(perm)
		if err != nil {
			return nil, sparse.SolveResult{}, cgOutcome{}, err
		}
		m, err := precond.Auto(pa)
		if err != nil {
			// Zero/negative diagonal: no preconditioner of either kind is
			// defined. Let the auto chain escalate to a dense backend.
			return nil, sparse.SolveResult{}, cgOutcome{}, err
		}
		out := cgOutcome{name: m.Name() + "+rcm", setup: time.Since(start)}
		n := a.Rows()
		pb := make([]float64, n)
		sparse.PermuteVecTo(pb, b, perm)
		px, res, err := sparse.PCG(pa, pb, sparse.PCGOptions{CGOptions: base, M: m})
		if err != nil {
			return nil, res, out, err
		}
		x := make([]float64, n)
		sparse.UnpermuteVecTo(x, px, perm)
		return x, res, out, nil
	default: // PrecondJacobi: the historical path, bit for bit.
		base.Precondition = true
		x, res, err := sparse.CG(a, b, base)
		return x, res, cgOutcome{name: "jacobi"}, err
	}
}

// applyTraceOutcome copies the winning attempt's preconditioner identity
// from an auto-chain trace onto the solution.
func applyTraceOutcome(sol *Solution, tr *SolveTrace) {
	if sol == nil || tr == nil || len(tr.Attempts) == 0 {
		return
	}
	last := tr.Attempts[len(tr.Attempts)-1]
	sol.Precond = last.Precond
	sol.PrecondSetup = last.PrecondSetup
}
