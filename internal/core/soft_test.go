package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/randx"
)

func softTestProblem(t *testing.T, seed int64, nTotal, nLabeled int) *Problem {
	t.Helper()
	rng := randx.New(seed)
	pts := make([]float64, nTotal)
	for i := range pts {
		pts[i] = rng.Norm()
	}
	g := fullGraph(t, pts, 1)
	y := make([]float64, nLabeled)
	for i := range y {
		y[i] = rng.Bernoulli(0.5)
	}
	p, err := NewProblemLabeledFirst(g, y)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSolveSoftLambdaValidation(t *testing.T) {
	p := softTestProblem(t, 1, 8, 3)
	for _, l := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := SolveSoft(p, l); !errors.Is(err, ErrParam) {
			t.Fatalf("λ=%v: want ErrParam, got %v", l, err)
		}
	}
}

// TestPropositionII1SoftAtZeroEqualsHard: λ=0 dispatches to the hard
// criterion exactly.
func TestPropositionII1SoftAtZeroEqualsHard(t *testing.T) {
	p := softTestProblem(t, 3, 10, 4)
	hard, err := SolveHard(p)
	if err != nil {
		t.Fatal(err)
	}
	soft0, err := SolveSoft(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.VecEqual(hard.FUnlabeled, soft0.FUnlabeled, 0) {
		t.Fatal("SolveSoft(0) must equal SolveHard exactly")
	}
}

// TestPropositionII1Limit: the soft solution converges to the hard one as
// λ → 0 (Remark 1 / Proposition II.1).
func TestPropositionII1Limit(t *testing.T) {
	p := softTestProblem(t, 5, 12, 5)
	hard, err := SolveHard(p)
	if err != nil {
		t.Fatal(err)
	}
	prevGap := math.Inf(1)
	for _, l := range []float64{1e-1, 1e-3, 1e-5, 1e-8} {
		soft, err := SolveSoft(p, l)
		if err != nil {
			t.Fatal(err)
		}
		var gap float64
		for k := range hard.FUnlabeled {
			if d := math.Abs(hard.FUnlabeled[k] - soft.FUnlabeled[k]); d > gap {
				gap = d
			}
		}
		if gap > prevGap+1e-12 {
			t.Fatalf("gap must shrink along λ→0: %v then %v", prevGap, gap)
		}
		prevGap = gap
	}
	if prevGap > 1e-6 {
		t.Fatalf("soft(1e-8) still %v away from hard", prevGap)
	}
}

// TestPropositionII2LambdaInfinityCollapse: for huge λ on a connected graph
// every prediction approaches the labeled mean ȳ — the paper's
// inconsistency counterexample.
func TestPropositionII2LambdaInfinityCollapse(t *testing.T) {
	p := softTestProblem(t, 7, 12, 6)
	mean, err := LambdaInfinity(p)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveSoft(p, 1e8)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range sol.FUnlabeled {
		if math.Abs(v-mean) > 1e-4 {
			t.Fatalf("unlabeled %d: f = %v, want ≈ ȳ = %v", k, v, mean)
		}
	}
	// Labeled fits also collapse to the mean.
	for _, l := range p.Labeled() {
		if math.Abs(sol.F[l]-mean) > 1e-4 {
			t.Fatalf("labeled %d: f = %v, want ≈ ȳ = %v", l, sol.F[l], mean)
		}
	}
}

func TestLambdaInfinityExactMean(t *testing.T) {
	p := softTestProblem(t, 9, 8, 4)
	mean, err := LambdaInfinity(p)
	if err != nil {
		t.Fatal(err)
	}
	want := mat.MeanVec(p.Y())
	if math.Abs(mean-want) > 1e-15 {
		t.Fatalf("LambdaInfinity = %v, want %v", mean, want)
	}
}

func TestLambdaInfinityDisconnected(t *testing.T) {
	p, err := NewProblem(newTwoComponentGraph(t), []int{0, 2}, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LambdaInfinity(p); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("want ErrDisconnected, got %v", err)
	}
}

// TestSoftShrinksLabeledFit: for λ>0 the soft criterion does not interpolate
// the labels (the fitted labeled values differ from Y), while the hard one
// does.
func TestSoftShrinksLabeledFit(t *testing.T) {
	p := softTestProblem(t, 11, 10, 5)
	sol, err := SolveSoft(p, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	y := p.Y()
	lab := p.Labeled()
	anyShrunk := false
	for k, l := range lab {
		if math.Abs(sol.F[l]-y[k]) > 1e-8 {
			anyShrunk = true
		}
	}
	if !anyShrunk {
		t.Fatal("soft criterion with λ=0.5 should not interpolate the labels")
	}
}

// TestSoftObjectiveMinimizer: the solver output must achieve a lower
// objective than random perturbations of it — a direct check that we solve
// the paper's Eq. 2.
func TestSoftObjectiveMinimizer(t *testing.T) {
	p := softTestProblem(t, 13, 9, 4)
	const lambda = 0.3
	sol, err := SolveSoft(p, lambda)
	if err != nil {
		t.Fatal(err)
	}
	base, err := SoftObjective(p, lambda, sol.F)
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(14)
	for trial := 0; trial < 30; trial++ {
		pert := mat.CloneVec(sol.F)
		for i := range pert {
			pert[i] += rng.Norm() * 0.05
		}
		obj, err := SoftObjective(p, lambda, pert)
		if err != nil {
			t.Fatal(err)
		}
		if obj < base-1e-10 {
			t.Fatalf("perturbation beat the solver: %v < %v", obj, base)
		}
	}
}

func TestSoftObjectiveShapeError(t *testing.T) {
	p := softTestProblem(t, 15, 6, 2)
	if _, err := SoftObjective(p, 1, []float64{1}); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
}

// TestSoftMonotoneRMSEInLambda is the theory's practical consequence on a
// well-specified instance: predictions move from the hard solution toward
// the global mean as λ grows.
func TestSoftLambdaPathMovesTowardMean(t *testing.T) {
	p := softTestProblem(t, 17, 14, 7)
	mean, err := LambdaInfinity(p)
	if err != nil {
		t.Fatal(err)
	}
	path, err := LambdaPath(p, []float64{0, 1, 100, 10000})
	if err != nil {
		t.Fatal(err)
	}
	dists := make([]float64, len(path))
	for i, pt := range path {
		for _, v := range pt.Solution.FUnlabeled {
			dists[i] += (v - mean) * (v - mean)
		}
	}
	// The λ→∞ collapse (Prop. II.2) guarantees the large-λ end approaches
	// the mean; intermediate behaviour need not be monotone.
	if dists[len(dists)-1] >= dists[0] {
		t.Fatalf("λ=10000 distance %v not below λ=0 distance %v", dists[len(dists)-1], dists[0])
	}
	if dists[len(dists)-1] > 1e-4 {
		t.Fatalf("λ=10000 should be near the mean, distance² = %v", dists[len(dists)-1])
	}
}

func TestSoftMethodsAgree(t *testing.T) {
	p := softTestProblem(t, 19, 12, 5)
	ref, err := SolveSoft(p, 0.7, WithMethod(MethodLU))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{MethodAuto, MethodCholesky, MethodCG} {
		sol, err := SolveSoft(p, 0.7, WithMethod(m), WithTolerance(1e-12))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !mat.VecEqual(sol.FUnlabeled, ref.FUnlabeled, 1e-6) {
			t.Fatalf("%v disagrees with LU", m)
		}
	}
}

func TestSoftRejectsPropagation(t *testing.T) {
	p := softTestProblem(t, 21, 6, 2)
	if _, err := SolveSoft(p, 1, WithMethod(MethodPropagation)); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	if _, err := SolveSoft(p, 1, WithMethod(Method(99))); !errors.Is(err, ErrParam) {
		t.Fatalf("unknown method: want ErrParam, got %v", err)
	}
}

func TestLambdaPathEmpty(t *testing.T) {
	p := softTestProblem(t, 23, 6, 2)
	if _, err := LambdaPath(p, nil); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
}

func TestLambdaPathOrderPreserved(t *testing.T) {
	p := softTestProblem(t, 25, 8, 3)
	lams := []float64{5, 0, 0.1}
	path, err := LambdaPath(p, lams)
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range path {
		if pt.Lambda != lams[i] {
			t.Fatalf("path order broken: %v", path)
		}
		if pt.Solution.Lambda != lams[i] {
			t.Fatalf("solution λ mismatch at %d", i)
		}
	}
}
