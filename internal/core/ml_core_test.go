package core

import (
	"testing"

	"repro/internal/sparse"
)

// shiftedGridCSR builds the side×side 5-point grid Laplacian plus a small
// diagonal shift: the classic large-diameter SPD system where single-level
// preconditioners degrade and the multilevel V-cycle shines.
func shiftedGridCSR(t *testing.T, side int, shift float64) *sparse.CSR {
	t.Helper()
	n := side * side
	coo := sparse.NewCOO(n, n)
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			i := r*side + c
			d := shift
			if c+1 < side {
				if err := coo.AddSym(i, i+1, -1); err != nil {
					t.Fatal(err)
				}
			}
			if r+1 < side {
				if err := coo.AddSym(i, i+side, -1); err != nil {
					t.Fatal(err)
				}
			}
			if c > 0 {
				d++
			}
			if c+1 < side {
				d++
			}
			if r > 0 {
				d++
			}
			if r+1 < side {
				d++
			}
			if err := coo.Add(i, i, d); err != nil {
				t.Fatal(err)
			}
		}
	}
	return coo.ToCSR()
}

// TestPrecondMLSolvesAndReports: forcing the multilevel preconditioner on a
// CG solve must agree with the dense reference and identify itself.
func TestPrecondMLSolvesAndReports(t *testing.T) {
	p := gaussProblem(t, 13, 12, 60)
	ref, err := SolveHard(p, WithMethod(MethodCholesky))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveHard(p, WithMethod(MethodCG), WithPreconditioner(PrecondML))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Precond != "ml" {
		t.Fatalf("solution reports precond %q, want ml", sol.Precond)
	}
	closeVecs(t, "ml", sol.F, ref.F, 1e-6)
}

// TestAutoChainArmsMLRetryOnLargeSystems: at and above mlEscalateMin the
// CG-first plan carries a second MethodCG entry — the multilevel retry —
// between the IC(0) head and the dense backends; below it the plan is
// exactly the historical three-entry chain.
func TestAutoChainArmsMLRetryOnLargeSystems(t *testing.T) {
	a := shiftedGridCSR(t, 70, 1.0) // 4900 unknowns, well conditioned
	b := make([]float64, a.Rows())
	for i := range b {
		b[i] = float64(i%5) - 2
	}
	cfg := solveConfig{method: MethodAuto, tol: 1e-10, autoCutoff: 1}
	x, _, m, tr, err := runChain(nil, a, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m != MethodCG {
		t.Fatalf("settled on %v, want cg", m)
	}
	if len(tr.Plan) != 4 || tr.Plan[0] != MethodCG || tr.Plan[1] != MethodCG ||
		tr.Plan[2] != MethodCholesky || tr.Plan[3] != MethodLU {
		t.Fatalf("plan = %v, want [cg cg cholesky lu]", tr.Plan)
	}
	if len(tr.Attempts) != 1 || tr.Attempts[0].Precond != "ic0+rcm" {
		t.Fatalf("attempts = %+v: healthy system should stop at the IC(0) head", tr.Attempts)
	}
	if len(x) != a.Rows() {
		t.Fatalf("solution length %d", len(x))
	}

	// A forced non-auto preconditioner disarms the retry (the user's choice
	// is honored verbatim, and small-system plans never change).
	cfgJac := cfg
	cfgJac.precond = PrecondJacobi
	_, _, _, trJac, err := runChain(nil, a, b, cfgJac)
	if err != nil {
		t.Fatal(err)
	}
	if len(trJac.Plan) != 3 {
		t.Fatalf("forced-Jacobi plan = %v, want the 3-entry chain", trJac.Plan)
	}
}

// TestAutoChainEscalatesThroughML: on the barely shifted grid the IC(0)-CG
// head stagnates short of tolerance while one multilevel V-cycle per
// iteration converges — the chain must record the CG→CG escalation and
// settle on the ML attempt instead of paying for an O(n³) dense solve.
func TestAutoChainEscalatesThroughML(t *testing.T) {
	a := shiftedGridCSR(t, 75, 1e-6) // 5625 unknowns, condition ~ side²/shift
	b := make([]float64, a.Rows())
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	cfg := solveConfig{method: MethodAuto, tol: 1e-10, autoCutoff: 1}
	x, res, m, tr, err := runChain(nil, a, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m != MethodCG {
		t.Fatalf("settled on %v, want cg (the ML retry)", m)
	}
	if len(tr.Attempts) != 2 || tr.Attempts[0].Precond != "ic0+rcm" || tr.Attempts[1].Precond != "ml" {
		t.Fatalf("attempts = %+v, want ic0+rcm then ml", tr.Attempts)
	}
	if tr.Attempts[0].Err == "" || tr.Attempts[1].Err != "" {
		t.Fatalf("attempt errors = %q, %q", tr.Attempts[0].Err, tr.Attempts[1].Err)
	}
	if len(tr.Fallbacks) != 1 || tr.Fallbacks[0].From != MethodCG || tr.Fallbacks[0].To != MethodCG {
		t.Fatalf("fallbacks = %+v, want one CG→CG escalation", tr.Fallbacks)
	}
	// Verify the answer through the residual.
	ax := make([]float64, len(b))
	if err := a.MulVecTo(ax, x); err != nil {
		t.Fatal(err)
	}
	var rn, bn float64
	for i := range b {
		d := b[i] - ax[i]
		rn += d * d
		bn += b[i] * b[i]
	}
	if rn > 1e-16*bn {
		t.Fatalf("relative residual² %g after ML escalation (reported %g)", rn/bn, res.Residual)
	}

	// Determinism: the whole escalation is a pure function of the input.
	x2, _, m2, tr2, err := runChain(nil, a, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m2 != m || len(tr2.Fallbacks) != len(tr.Fallbacks) {
		t.Fatal("escalation not reproducible")
	}
	for i := range x {
		if x[i] != x2[i] {
			t.Fatalf("scores differ at %d across reruns", i)
		}
	}
}
