package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/randx"
)

func contractionSystem(t *testing.T, seed int64, nTotal, nLabeled int) *PropagationSystem {
	t.Helper()
	rng := randx.New(seed)
	pts := make([]float64, nTotal)
	for i := range pts {
		pts[i] = rng.Norm()
	}
	g := fullGraph(t, pts, 1)
	y := make([]float64, nLabeled)
	for i := range y {
		y[i] = rng.Bernoulli(0.5)
	}
	p, err := NewProblemLabeledFirst(g, y)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := BuildPropagationSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestContractionRateBelowOne(t *testing.T) {
	sys := contractionSystem(t, 501, 25, 10)
	rho, err := ContractionRate(sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rho <= 0 || rho >= 1 {
		t.Fatalf("contraction rate %v outside (0,1)", rho)
	}
}

func TestContractionRateGrowsWithFewerLabels(t *testing.T) {
	// More unlabeled mass ⇒ slower contraction (ρ closer to 1) — the
	// mechanism behind the paper's m = o(n h^d) condition.
	many := contractionSystem(t, 503, 40, 30)
	few := contractionSystem(t, 503, 40, 5)
	rhoMany, err := ContractionRate(many, 0)
	if err != nil {
		t.Fatal(err)
	}
	rhoFew, err := ContractionRate(few, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rhoFew <= rhoMany {
		t.Fatalf("ρ(few labels)=%v must exceed ρ(many labels)=%v", rhoFew, rhoMany)
	}
}

func TestContractionRatePredictsPropagationCost(t *testing.T) {
	sys := contractionSystem(t, 505, 30, 10)
	rho, err := ContractionRate(sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	predicted := PredictedSupersteps(rho, 1e-10)
	// Run the actual propagation and compare orders of magnitude.
	fu, res, err := propagateForTest(sys, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if len(fu) != sys.M() {
		t.Fatal("propagation output shape wrong")
	}
	if res <= 0 {
		t.Fatal("no iterations recorded")
	}
	ratio := float64(res) / float64(predicted)
	if ratio < 0.1 || ratio > 10 {
		t.Fatalf("predicted %d supersteps but took %d", predicted, res)
	}
}

// propagateForTest runs the package propagation on a system.
func propagateForTest(sys *PropagationSystem, tol float64) ([]float64, int, error) {
	hs := &hardSystem{b: sys.B, w22: sys.W, d22: sys.D}
	f, res, err := propagate(nil, hs, tol, 0, 1)
	return f, res.Iterations, err
}

func TestPredictedSupersteps(t *testing.T) {
	if PredictedSupersteps(0.5, 1e-3) != 10 {
		t.Fatalf("got %d, want 10 (0.5^10 ≈ 1e-3)", PredictedSupersteps(0.5, 1e-3))
	}
	if PredictedSupersteps(0, 1e-3) != 1 {
		t.Fatal("rho=0 must predict 1")
	}
	if PredictedSupersteps(1, 1e-3) != math.MaxInt {
		t.Fatal("rho=1 must predict MaxInt")
	}
	if PredictedSupersteps(0.5, 2) != 1 {
		t.Fatal("tol>=1 must predict 1")
	}
}

func TestContractionRateValidation(t *testing.T) {
	if _, err := ContractionRate(nil, 0); !errors.Is(err, ErrParam) {
		t.Fatal("nil system must error")
	}
}
