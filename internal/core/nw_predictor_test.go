package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/kernel"
	"repro/internal/randx"
)

// predCase draws anchors, values, and off-sample query points.
func predCase(seed int64, nAnchor, nQuery, d int) (anchors [][]float64, values []float64, queries [][]float64) {
	rng := randx.New(seed)
	draw := func(n int) [][]float64 {
		pts := make([][]float64, n)
		for i := range pts {
			xi := make([]float64, d)
			for j := range xi {
				v := rng.Norm()
				if rng.Float64() < 0.3 {
					v = math.Round(v) // exact ties
				}
				xi[j] = v
			}
			pts[i] = xi
		}
		return pts
	}
	anchors = draw(nAnchor)
	values = make([]float64, nAnchor)
	for i := range values {
		values[i] = rng.Norm()
	}
	queries = draw(nQuery)
	return anchors, values, queries
}

// TestNWPredictorBatchMatchesPredict checks the batch contract: PredictBatch
// is bitwise-identical to per-point Predict at every worker count, on every
// lookup path (brute incl. the tiled kernel, grid, KD-tree radius, k-NN).
func TestNWPredictorBatchMatchesPredict(t *testing.T) {
	cases := []struct {
		name    string
		k       *kernel.K
		d, knn  int
		nAnchor int
	}{
		{"gaussian-brute-tiled", kernel.MustNew(kernel.Gaussian, 1.5), 7, 0, 203},
		{"gaussian-brute-small", kernel.MustNew(kernel.Gaussian, 1.5), 3, 0, 13},
		{"epanechnikov-grid", kernel.MustNew(kernel.Epanechnikov, 2.5), 3, 0, 150},
		{"tricube-kdtree-radius", kernel.MustNew(kernel.Tricube, 3.5), 9, 0, 150},
		{"triangular-brute-highdim", kernel.MustNew(kernel.Triangular, 6), 18, 0, 150},
		{"gaussian-knn", kernel.MustNew(kernel.Gaussian, 1.5), 5, 7, 150},
		{"epanechnikov-knn", kernel.MustNew(kernel.Epanechnikov, 3), 5, 9, 150},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			anchors, values, queries := predCase(11, tc.nAnchor, 90, tc.d)
			p, err := NewNWPredictor(anchors, values, tc.k, tc.knn, 0)
			if err != nil {
				t.Fatal(err)
			}
			want := make([]float64, len(queries))
			wantIso := make([]bool, len(queries))
			s := p.NewScratch()
			for i, q := range queries {
				v, err := p.Predict(q, s)
				if err != nil {
					if !errors.Is(err, ErrIsolated) {
						t.Fatalf("Predict(%d): %v", i, err)
					}
					wantIso[i] = true
					continue
				}
				want[i] = v
			}
			for _, workers := range []int{1, 2, 3, 7} {
				got := make([]float64, len(queries))
				status := make([]NWStatus, len(queries))
				p.PredictBatch(got, status, queries, workers)
				for i := range queries {
					if wantIso[i] {
						if status[i] != NWIsolated {
							t.Fatalf("w=%d query %d: want isolated, got status %d", workers, i, status[i])
						}
						continue
					}
					if status[i] != NWOK {
						t.Fatalf("w=%d query %d: status %d", workers, i, status[i])
					}
					if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
						t.Fatalf("w=%d query %d: batch %v != predict %v", workers, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestNWPredictorKNNSelection checks the k-NN path against brute-force
// selection under the strict (squared distance, index) order.
func TestNWPredictorKNNSelection(t *testing.T) {
	k := kernel.MustNew(kernel.Gaussian, 2)
	anchors, values, queries := predCase(29, 80, 40, 4)
	const knn = 5
	p, err := NewNWPredictor(anchors, values, k, knn, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := p.NewScratch()
	for qi, q := range queries {
		// Brute k-NN selection with the same tie-break.
		type cand struct {
			d2  float64
			idx int
		}
		cands := make([]cand, len(anchors))
		for i, a := range anchors {
			cands[i] = cand{kernel.Dist2(q, a), i}
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].d2 != cands[b].d2 {
				return cands[a].d2 < cands[b].d2
			}
			return cands[a].idx < cands[b].idx
		})
		sel := cands[:knn]
		sort.Slice(sel, func(a, b int) bool { return sel[a].idx < sel[b].idx })
		var num, den float64
		for _, c := range sel {
			w := k.WeightDist2(c.d2)
			if w > 0 {
				num += w * values[c.idx]
				den += w
			}
		}
		want := num / den
		got, err := p.Predict(q, s)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("query %d: got %v want %v", qi, got, want)
		}
	}
}

// TestNWPredictorErrors covers construction and query validation.
func TestNWPredictorErrors(t *testing.T) {
	k := kernel.MustNew(kernel.Gaussian, 1)
	anchors := [][]float64{{0, 0}, {1, 1}}
	values := []float64{1, 2}
	if _, err := NewNWPredictor(anchors, values, nil, 0, 1); !errors.Is(err, ErrParam) {
		t.Fatalf("nil kernel: %v", err)
	}
	if _, err := NewNWPredictor(nil, nil, k, 0, 1); !errors.Is(err, ErrParam) {
		t.Fatalf("no anchors: %v", err)
	}
	if _, err := NewNWPredictor(anchors, values[:1], k, 0, 1); !errors.Is(err, ErrParam) {
		t.Fatalf("value mismatch: %v", err)
	}
	if _, err := NewNWPredictor([][]float64{{}}, []float64{1}, k, 0, 1); !errors.Is(err, ErrParam) {
		t.Fatalf("zero-dim: %v", err)
	}
	if _, err := NewNWPredictor([][]float64{{0}, {1, 2}}, values, k, 0, 1); !errors.Is(err, ErrParam) {
		t.Fatalf("ragged: %v", err)
	}
	if _, err := NewNWPredictor(anchors, values, k, -1, 1); !errors.Is(err, ErrParam) {
		t.Fatalf("negative knn: %v", err)
	}

	p, err := NewNWPredictor(anchors, values, k, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Predict([]float64{1}, nil); !errors.Is(err, ErrParam) {
		t.Fatalf("dim mismatch: %v", err)
	}

	// Compact kernel, far query: isolated.
	pc, err := NewNWPredictor(anchors, values, kernel.MustNew(kernel.Uniform, 0.5), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pc.Predict([]float64{50, 50}, nil); !errors.Is(err, ErrIsolated) {
		t.Fatalf("isolated: %v", err)
	}
	dst := make([]float64, 2)
	status := make([]NWStatus, 2)
	pc.PredictBatch(dst, status, [][]float64{{50, 50}, {0}}, 1)
	if status[0] != NWIsolated || status[1] != NWBadDim {
		t.Fatalf("batch status = %v", status)
	}
}

// Benchmarks comparing the per-point scan against the tiled batch kernel —
// the single-core mechanism behind the serving micro-batcher.
func BenchmarkNWPredict(b *testing.B) {
	for _, cfg := range []struct {
		nAnchor, d int
		k          *kernel.K
	}{
		{4800, 32, kernel.MustNew(kernel.Triangular, 14)},
		{8000, 128, kernel.MustNew(kernel.Triangular, 26)},
		{8000, 256, kernel.MustNew(kernel.Triangular, 36)},
	} {
		anchors, values, queries := predCase(7, cfg.nAnchor, 64, cfg.d)
		p, err := NewNWPredictor(anchors, values, cfg.k, 0, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("one/a%d_d%d", cfg.nAnchor, cfg.d), func(b *testing.B) {
			s := p.NewScratch()
			for i := 0; i < b.N; i++ {
				if _, err := p.Predict(queries[i%len(queries)], s); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("batch64/a%d_d%d", cfg.nAnchor, cfg.d), func(b *testing.B) {
			dst := make([]float64, len(queries))
			status := make([]NWStatus, len(queries))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.PredictBatch(dst, status, queries, 1)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(queries)), "ns/point")
		})
	}
}
