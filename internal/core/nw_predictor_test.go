package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/kernel"
	"repro/internal/randx"
)

// predCase draws anchors, values, and off-sample query points.
func predCase(seed int64, nAnchor, nQuery, d int) (anchors [][]float64, values []float64, queries [][]float64) {
	rng := randx.New(seed)
	draw := func(n int) [][]float64 {
		pts := make([][]float64, n)
		for i := range pts {
			xi := make([]float64, d)
			for j := range xi {
				v := rng.Norm()
				if rng.Float64() < 0.3 {
					v = math.Round(v) // exact ties
				}
				xi[j] = v
			}
			pts[i] = xi
		}
		return pts
	}
	anchors = draw(nAnchor)
	values = make([]float64, nAnchor)
	for i := range values {
		values[i] = rng.Norm()
	}
	queries = draw(nQuery)
	return anchors, values, queries
}

// TestNWPredictorBatchMatchesPredict checks the batch contract: PredictBatch
// is bitwise-identical to per-point Predict at every worker count, on every
// lookup path (brute incl. the tiled kernel, grid, KD-tree radius, k-NN).
func TestNWPredictorBatchMatchesPredict(t *testing.T) {
	cases := []struct {
		name    string
		k       *kernel.K
		d, knn  int
		nAnchor int
	}{
		{"gaussian-brute-tiled", kernel.MustNew(kernel.Gaussian, 1.5), 7, 0, 203},
		{"gaussian-brute-small", kernel.MustNew(kernel.Gaussian, 1.5), 3, 0, 13},
		{"epanechnikov-grid", kernel.MustNew(kernel.Epanechnikov, 2.5), 3, 0, 150},
		{"tricube-kdtree-radius", kernel.MustNew(kernel.Tricube, 3.5), 9, 0, 150},
		{"triangular-brute-highdim", kernel.MustNew(kernel.Triangular, 6), 18, 0, 150},
		{"gaussian-knn", kernel.MustNew(kernel.Gaussian, 1.5), 5, 7, 150},
		{"epanechnikov-knn", kernel.MustNew(kernel.Epanechnikov, 3), 5, 9, 150},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			anchors, values, queries := predCase(11, tc.nAnchor, 90, tc.d)
			p, err := NewNWPredictor(anchors, values, tc.k, tc.knn, 0)
			if err != nil {
				t.Fatal(err)
			}
			want := make([]float64, len(queries))
			wantIso := make([]bool, len(queries))
			s := p.NewScratch()
			for i, q := range queries {
				v, err := p.Predict(q, s)
				if err != nil {
					if !errors.Is(err, ErrIsolated) {
						t.Fatalf("Predict(%d): %v", i, err)
					}
					wantIso[i] = true
					continue
				}
				want[i] = v
			}
			for _, workers := range []int{1, 2, 3, 7} {
				got := make([]float64, len(queries))
				status := make([]NWStatus, len(queries))
				p.PredictBatch(got, status, queries, workers)
				for i := range queries {
					if wantIso[i] {
						if status[i] != NWIsolated {
							t.Fatalf("w=%d query %d: want isolated, got status %d", workers, i, status[i])
						}
						continue
					}
					if status[i] != NWOK {
						t.Fatalf("w=%d query %d: status %d", workers, i, status[i])
					}
					if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
						t.Fatalf("w=%d query %d: batch %v != predict %v", workers, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestNWPredictorKNNSelection checks the k-NN path against brute-force
// selection under the strict (squared distance, index) order.
func TestNWPredictorKNNSelection(t *testing.T) {
	k := kernel.MustNew(kernel.Gaussian, 2)
	anchors, values, queries := predCase(29, 80, 40, 4)
	const knn = 5
	p, err := NewNWPredictor(anchors, values, k, knn, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := p.NewScratch()
	for qi, q := range queries {
		// Brute k-NN selection with the same tie-break.
		type cand struct {
			d2  float64
			idx int
		}
		cands := make([]cand, len(anchors))
		for i, a := range anchors {
			cands[i] = cand{kernel.Dist2(q, a), i}
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].d2 != cands[b].d2 {
				return cands[a].d2 < cands[b].d2
			}
			return cands[a].idx < cands[b].idx
		})
		sel := cands[:knn]
		sort.Slice(sel, func(a, b int) bool { return sel[a].idx < sel[b].idx })
		var num, den float64
		for _, c := range sel {
			w := k.WeightDist2(c.d2)
			if w > 0 {
				num += w * values[c.idx]
				den += w
			}
		}
		want := num / den
		got, err := p.Predict(q, s)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("query %d: got %v want %v", qi, got, want)
		}
	}
}

// TestNWPredictorErrors covers construction and query validation.
func TestNWPredictorErrors(t *testing.T) {
	k := kernel.MustNew(kernel.Gaussian, 1)
	anchors := [][]float64{{0, 0}, {1, 1}}
	values := []float64{1, 2}
	if _, err := NewNWPredictor(anchors, values, nil, 0, 1); !errors.Is(err, ErrParam) {
		t.Fatalf("nil kernel: %v", err)
	}
	if _, err := NewNWPredictor(nil, nil, k, 0, 1); !errors.Is(err, ErrParam) {
		t.Fatalf("no anchors: %v", err)
	}
	if _, err := NewNWPredictor(anchors, values[:1], k, 0, 1); !errors.Is(err, ErrParam) {
		t.Fatalf("value mismatch: %v", err)
	}
	if _, err := NewNWPredictor([][]float64{{}}, []float64{1}, k, 0, 1); !errors.Is(err, ErrParam) {
		t.Fatalf("zero-dim: %v", err)
	}
	if _, err := NewNWPredictor([][]float64{{0}, {1, 2}}, values, k, 0, 1); !errors.Is(err, ErrParam) {
		t.Fatalf("ragged: %v", err)
	}
	if _, err := NewNWPredictor(anchors, values, k, -1, 1); !errors.Is(err, ErrParam) {
		t.Fatalf("negative knn: %v", err)
	}

	p, err := NewNWPredictor(anchors, values, k, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Predict([]float64{1}, nil); !errors.Is(err, ErrParam) {
		t.Fatalf("dim mismatch: %v", err)
	}

	// Compact kernel, far query: isolated.
	pc, err := NewNWPredictor(anchors, values, kernel.MustNew(kernel.Uniform, 0.5), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pc.Predict([]float64{50, 50}, nil); !errors.Is(err, ErrIsolated) {
		t.Fatalf("isolated: %v", err)
	}
	dst := make([]float64, 2)
	status := make([]NWStatus, 2)
	pc.PredictBatch(dst, status, [][]float64{{50, 50}, {0}}, 1)
	if status[0] != NWIsolated || status[1] != NWBadDim {
		t.Fatalf("batch status = %v", status)
	}
}

// Benchmarks comparing the per-point scan against the tiled batch kernel —
// the single-core mechanism behind the serving micro-batcher.
func BenchmarkNWPredict(b *testing.B) {
	for _, cfg := range []struct {
		nAnchor, d int
		k          *kernel.K
	}{
		{4800, 32, kernel.MustNew(kernel.Triangular, 14)},
		{8000, 128, kernel.MustNew(kernel.Triangular, 26)},
		{8000, 256, kernel.MustNew(kernel.Triangular, 36)},
	} {
		anchors, values, queries := predCase(7, cfg.nAnchor, 64, cfg.d)
		p, err := NewNWPredictor(anchors, values, cfg.k, 0, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("one/a%d_d%d", cfg.nAnchor, cfg.d), func(b *testing.B) {
			s := p.NewScratch()
			for i := 0; i < b.N; i++ {
				if _, err := p.Predict(queries[i%len(queries)], s); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("batch64/a%d_d%d", cfg.nAnchor, cfg.d), func(b *testing.B) {
			dst := make([]float64, len(queries))
			status := make([]NWStatus, len(queries))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.PredictBatch(dst, status, queries, 1)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(queries)), "ns/point")
		})
	}
}

// TestNWPredictorZeroDenominator pins the zero-mass outcome on every lookup
// path: a query with no kernel mass to any selected anchor is NWIsolated in
// the batch API and ErrIsolated point-wise — never a 0/0 NaN score.
func TestNWPredictorZeroDenominator(t *testing.T) {
	anchors, values, _ := predCase(41, 120, 0, 3)
	far := []float64{500, 500, 500}
	cases := []struct {
		name string
		k    *kernel.K
		knn  int
		path string
	}{
		{"grid", kernel.MustNew(kernel.Uniform, 1.5), 0, "grid"},
		{"knn", kernel.MustNew(kernel.Epanechnikov, 1.5), 5, "knn"},
	}
	// High-dim compact kernel stays on the brute path.
	bAnchors, bValues, _ := predCase(43, 60, 0, 18)
	bruteFar := make([]float64, 18)
	for j := range bruteFar {
		bruteFar[j] = 500
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := NewNWPredictor(anchors, values, tc.k, tc.knn, 1)
			if err != nil {
				t.Fatal(err)
			}
			if p.Path() != tc.path {
				t.Fatalf("path = %q, want %q", p.Path(), tc.path)
			}
			if _, err := p.Predict(far, nil); !errors.Is(err, ErrIsolated) {
				t.Fatalf("far query: %v", err)
			}
			dst := []float64{math.NaN()}
			status := []NWStatus{NWOK}
			bounds := []float64{math.NaN()}
			p.PredictBatchBounds(dst, status, bounds, [][]float64{far}, 1, nil)
			if status[0] != NWIsolated {
				t.Fatalf("status = %d, want NWIsolated", status[0])
			}
			if bounds[0] != 0 && !(tc.knn > 0) {
				t.Fatalf("exact-path bound = %v", bounds[0])
			}
		})
	}
	t.Run("brute", func(t *testing.T) {
		p, err := NewNWPredictor(bAnchors, bValues, kernel.MustNew(kernel.Tricube, 1.5), 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if p.Path() != "brute" {
			t.Fatalf("path = %q, want brute", p.Path())
		}
		if _, err := p.Predict(bruteFar, nil); !errors.Is(err, ErrIsolated) {
			t.Fatalf("far query: %v", err)
		}
	})
}

// TestNWScratchReuse checks that one scratch reused across many predictions
// — including pool round-trips — yields results bitwise-identical to fresh
// scratch per call, and that LastStats resets between calls.
func TestNWScratchReuse(t *testing.T) {
	k := kernel.MustNew(kernel.Epanechnikov, 2.5)
	anchors, values, queries := predCase(17, 150, 50, 3)
	p, err := NewNWPredictor(anchors, values, k, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Path() != "grid" {
		t.Fatalf("path = %q, want grid", p.Path())
	}
	reused := p.NewScratch()
	for i, q := range queries {
		fresh := p.NewScratch()
		vw, errW := p.Predict(q, fresh)
		vg, errG := p.Predict(q, reused)
		if (errW == nil) != (errG == nil) {
			t.Fatalf("query %d: fresh err %v, reused err %v", i, errW, errG)
		}
		if errW != nil {
			if pr, b := reused.LastStats(); pr != len(anchors)-0 && b != 0 {
				continue
			}
			continue
		}
		if math.Float64bits(vw) != math.Float64bits(vg) {
			t.Fatalf("query %d: fresh %v != reused %v", i, vw, vg)
		}
		prF, bF := fresh.LastStats()
		prR, bR := reused.LastStats()
		if prF != prR || bF != bR {
			t.Fatalf("query %d: stats fresh (%d,%v) != reused (%d,%v)", i, prF, bF, prR, bR)
		}
		// Pool round-trip between calls must not change anything.
		p.PutScratch(reused)
		reused = p.GetScratch()
	}
}

// TestNWPredictorPrunedMatchesBrute pins the exact-pruning contract on all
// four compact kernels: the spatial-index paths (grid and KD-tree radius)
// must be bitwise-identical to the full brute scan at every worker count,
// because every anchor they skip carries exactly zero kernel weight.
func TestNWPredictorPrunedMatchesBrute(t *testing.T) {
	kinds := []kernel.Kind{kernel.Uniform, kernel.Epanechnikov, kernel.Triangular, kernel.Tricube}
	for _, kind := range kinds {
		for _, dc := range []struct {
			d    int
			path string
		}{{3, "grid"}, {9, "kdtree"}} {
			t.Run(fmt.Sprintf("%s/%s", kind, dc.path), func(t *testing.T) {
				k := kernel.MustNew(kind, 2.5)
				anchors, values, queries := predCase(59, 160, 60, dc.d)
				p, err := NewNWPredictor(anchors, values, k, 0, 1)
				if err != nil {
					t.Fatal(err)
				}
				if p.Path() != dc.path {
					t.Fatalf("path = %q, want %q", p.Path(), dc.path)
				}
				// A brute twin of the same predictor: identical anchors and
				// kernel, spatial index disabled.
				brute := &NWPredictor{dim: p.dim, k: p.k, x: p.x, v: p.v, path: nwBrute}
				want := make([]float64, len(queries))
				wantSt := make([]NWStatus, len(queries))
				brute.PredictBatch(want, wantSt, queries, 1)
				for _, workers := range []int{1, 2, 3, 7} {
					got := make([]float64, len(queries))
					st := make([]NWStatus, len(queries))
					bounds := make([]float64, len(queries))
					var stats NWBatchStats
					p.PredictBatchBounds(got, st, bounds, queries, workers, &stats)
					for i := range queries {
						if st[i] != wantSt[i] {
							t.Fatalf("w=%d query %d: status %d != brute %d", workers, i, st[i], wantSt[i])
						}
						if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
							t.Fatalf("w=%d query %d: pruned %v != brute %v", workers, i, got[i], want[i])
						}
						if bounds[i] != 0 {
							t.Fatalf("w=%d query %d: exact path reported bound %v", workers, i, bounds[i])
						}
					}
					if workers == 1 && stats.AnchorsPruned == 0 {
						t.Fatal("spatial index pruned nothing on a compact kernel")
					}
				}
			})
		}
	}
}

// TestNWPredictorResidualBound checks the top-m truncation bound: it is in
// [0, 1), zero when nothing is skipped, and the truncation error obeys
// |f_trunc − f_full| <= bound · max_j |v_j − f_trunc|.
func TestNWPredictorResidualBound(t *testing.T) {
	k := kernel.MustNew(kernel.Gaussian, 2)
	anchors, values, queries := predCase(71, 120, 60, 4)
	const m = 9
	p, err := NewNWPredictor(anchors, values, k, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewNWPredictor(anchors, values, k, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := p.NewScratch()
	for qi, q := range queries {
		ft, err := p.Predict(q, s)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		pruned, bound := s.LastStats()
		if pruned != len(anchors)-m {
			t.Fatalf("query %d: pruned %d, want %d", qi, pruned, len(anchors)-m)
		}
		if bound <= 0 || bound >= 1 {
			t.Fatalf("query %d: bound %v outside (0,1)", qi, bound)
		}
		ff, err := full.Predict(q, nil)
		if err != nil {
			t.Fatalf("query %d full: %v", qi, err)
		}
		var maxDev float64
		for _, v := range values {
			if d := math.Abs(v - ft); d > maxDev {
				maxDev = d
			}
		}
		if err := math.Abs(ft - ff); err > bound*maxDev*(1+1e-12) {
			t.Fatalf("query %d: |f_trunc−f_full| = %v exceeds bound %v·%v", qi, err, bound, maxDev)
		}
	}
	// No truncation when m >= anchors: bound 0 on the same API.
	pAll, err := NewNWPredictor(anchors[:5], values[:5], k, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	sAll := pAll.NewScratch()
	if _, err := pAll.Predict(queries[0], sAll); err != nil {
		t.Fatal(err)
	}
	if pr, b := sAll.LastStats(); pr != 0 || b != 0 {
		t.Fatalf("untruncated: stats (%d, %v), want (0, 0)", pr, b)
	}
}

// TestZeroAllocPredict gates the warm per-point and batch prediction paths
// at zero heap allocations — the serving hot-path contract (run by the CI
// alloc gate).
func TestZeroAllocPredict(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are meaningless under the race detector (sync.Pool drops puts)")
	}
	cases := []struct {
		name string
		k    *kernel.K
		d    int
		knn  int
	}{
		{"brute", kernel.MustNew(kernel.Gaussian, 1.5), 7, 0},
		{"grid", kernel.MustNew(kernel.Epanechnikov, 2.5), 3, 0},
		{"kdtree", kernel.MustNew(kernel.Tricube, 3.5), 9, 0},
		{"knn", kernel.MustNew(kernel.Gaussian, 1.5), 5, 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			anchors, values, queries := predCase(23, 150, 16, tc.d)
			p, err := NewNWPredictor(anchors, values, tc.k, tc.knn, 1)
			if err != nil {
				t.Fatal(err)
			}
			// Warm the pools.
			if _, err := p.Predict(queries[0], nil); err != nil && !errors.Is(err, ErrIsolated) {
				t.Fatal(err)
			}
			i := 0
			if n := testing.AllocsPerRun(200, func() {
				_, _ = p.Predict(queries[i%len(queries)], nil)
				i++
			}); n != 0 {
				t.Fatalf("Predict: %v allocs/op", n)
			}
			dst := make([]float64, len(queries))
			st := make([]NWStatus, len(queries))
			bounds := make([]float64, len(queries))
			var stats NWBatchStats
			p.PredictBatchBounds(dst, st, bounds, queries, 1, &stats)
			if n := testing.AllocsPerRun(50, func() {
				p.PredictBatchBounds(dst, st, bounds, queries, 1, &stats)
			}); n != 0 {
				t.Fatalf("PredictBatchBounds: %v allocs/op", n)
			}
		})
	}
}
