package core

import (
	"errors"
	"testing"

	"repro/internal/mat"
	"repro/internal/randx"
)

func TestHardFactorizationMatchesSolveHard(t *testing.T) {
	rng := randx.New(601)
	pts := make([]float64, 18)
	for i := range pts {
		pts[i] = rng.Norm()
	}
	g := fullGraph(t, pts, 1)
	y := make([]float64, 7)
	for i := range y {
		y[i] = rng.Bernoulli(0.5)
	}
	p, err := NewProblemLabeledFirst(g, y)
	if err != nil {
		t.Fatal(err)
	}
	want, err := SolveHard(p)
	if err != nil {
		t.Fatal(err)
	}
	fact, err := NewHardFactorization(p)
	if err != nil {
		t.Fatal(err)
	}
	if fact.M() != p.M() {
		t.Fatalf("M = %d", fact.M())
	}
	got, err := fact.SolveY(y)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.VecEqual(got.FUnlabeled, want.FUnlabeled, 1e-10) {
		t.Fatal("factorized solve differs from SolveHard")
	}
	if !mat.VecEqual(got.F, want.F, 1e-10) {
		t.Fatal("full score vector differs")
	}
}

func TestHardFactorizationNewResponses(t *testing.T) {
	rng := randx.New(603)
	pts := make([]float64, 15)
	for i := range pts {
		pts[i] = rng.Norm()
	}
	g := fullGraph(t, pts, 1)
	placeholder := make([]float64, 6)
	p, err := NewProblemLabeledFirst(g, placeholder)
	if err != nil {
		t.Fatal(err)
	}
	fact, err := NewHardFactorization(p)
	if err != nil {
		t.Fatal(err)
	}
	// Solving with fresh responses must match a from-scratch problem.
	y2 := []float64{1, 0, 1, 1, 0, 1}
	got, err := fact.SolveY(y2)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewProblemLabeledFirst(g, y2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := SolveHard(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.VecEqual(got.FUnlabeled, want.FUnlabeled, 1e-10) {
		t.Fatal("SolveY with new responses wrong")
	}
	// Labeled entries of F must carry the supplied y, not the placeholder.
	for k, l := range p.Labeled() {
		if got.F[l] != y2[k] {
			t.Fatal("full vector must use the supplied responses")
		}
	}
}

func TestHardFactorizationSolveYValidation(t *testing.T) {
	g := chainGraph(t, 4)
	p, err := NewProblem(g, []int{0}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	fact, err := NewHardFactorization(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fact.SolveY([]float64{1, 2}); !errors.Is(err, ErrParam) {
		t.Fatal("wrong y length must error")
	}
}

func TestHardFactorizationSolveColumns(t *testing.T) {
	rng := randx.New(605)
	pts := make([]float64, 12)
	for i := range pts {
		pts[i] = rng.Norm()
	}
	g := fullGraph(t, pts, 1)
	p, err := NewProblemLabeledFirst(g, make([]float64, 5))
	if err != nil {
		t.Fatal(err)
	}
	fact, err := NewHardFactorization(p)
	if err != nil {
		t.Fatal(err)
	}
	// Three indicator columns.
	y := mat.NewDense(5, 3)
	y.Set(0, 0, 1)
	y.Set(1, 1, 1)
	y.Set(2, 2, 1)
	y.Set(3, 0, 1)
	y.Set(4, 1, 1)
	out, err := fact.SolveColumns(y)
	if err != nil {
		t.Fatal(err)
	}
	if r, c := out.Dims(); r != p.M() || c != 3 {
		t.Fatalf("dims (%d,%d)", r, c)
	}
	// Column 0 must equal a scalar solve with that column.
	sol0, err := fact.SolveY(y.Col(0))
	if err != nil {
		t.Fatal(err)
	}
	if !mat.VecEqual(out.Col(0), sol0.FUnlabeled, 1e-12) {
		t.Fatal("column solve mismatch")
	}
	if _, err := fact.SolveColumns(mat.NewDense(2, 1)); !errors.Is(err, ErrParam) {
		t.Fatal("wrong row count must error")
	}
}

func TestHardFactorizationIsolatedError(t *testing.T) {
	p, err := NewProblem(newTwoComponentGraph(t), []int{0}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewHardFactorization(p); !errors.Is(err, ErrIsolated) {
		t.Fatalf("want ErrIsolated, got %v", err)
	}
}
