//go:build race

package core

// raceEnabled reports that this binary was built with the race detector,
// whose instrumentation (and adversarial sync.Pool behavior) makes
// allocation counts meaningless; the zero-alloc gates skip under it.
const raceEnabled = true
