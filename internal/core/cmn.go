package core

import (
	"fmt"
	"math"
)

// ClassMassNormalize applies the class mass normalization (CMN) of Zhu,
// Ghahramani & Lafferty (2003) to harmonic scores: the positive and
// negative "masses" of the score vector are rescaled to match a target
// prior q for the positive class, correcting harmonic solutions on
// imbalanced graphs.
//
// Given raw scores f ∈ [0,1], the adjusted score is
//
//	f'_i = q·f_i/Σf / ( q·f_i/Σf + (1−q)·(1−f_i)/Σ(1−f) ),
//
// which preserves the [0,1] range and the 0.5 decision threshold semantics.
// Scores outside [0,1] are clamped first (harmonic solutions satisfy the
// maximum principle, so clamping only trims rounding noise).
func ClassMassNormalize(scores []float64, prior float64) ([]float64, error) {
	if len(scores) == 0 {
		return nil, fmt.Errorf("core: CMN with no scores: %w", ErrParam)
	}
	if prior <= 0 || prior >= 1 || math.IsNaN(prior) {
		return nil, fmt.Errorf("core: CMN prior %v outside (0,1): %w", prior, ErrParam)
	}
	var posMass, negMass float64
	clamped := make([]float64, len(scores))
	for i, s := range scores {
		if s < 0 {
			s = 0
		} else if s > 1 {
			s = 1
		}
		clamped[i] = s
		posMass += s
		negMass += 1 - s
	}
	if posMass == 0 || negMass == 0 {
		// Degenerate: every score is already 0 or every score is 1;
		// normalization cannot move anything.
		return clamped, nil
	}
	out := make([]float64, len(scores))
	for i, s := range clamped {
		pos := prior * s / posMass
		neg := (1 - prior) * (1 - s) / negMass
		out[i] = pos / (pos + neg)
	}
	return out, nil
}

// LabeledPrior returns the empirical positive-class frequency of the
// problem's observed responses, the usual CMN target.
func (p *Problem) LabeledPrior() float64 {
	var s float64
	for _, v := range p.y {
		if v > 0.5 {
			s++
		}
	}
	return s / float64(len(p.y))
}
