package core

import (
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/sparse"
)

// RefreshKind identifies which rung of the online-refresh ladder produced
// an updated solution.
type RefreshKind int

const (
	// RefreshLabelValues re-solved after changing the response values of
	// already-labeled nodes: the system matrix is untouched, only the
	// right-hand side moves, and PCG restarts from the previous solution.
	RefreshLabelValues RefreshKind = iota + 1
	// RefreshWoodbury applied the low-rank principal-submatrix identity
	// for a small batch of newly labeled nodes: k extra unit solves
	// against the unchanged matrix plus a k×k dense solve, no solve of
	// the new system at all.
	RefreshWoodbury
	// RefreshWarmPCG solved the new system with PCG warm-started from the
	// previous solution (mapped through any renumbering).
	RefreshWarmPCG
	// RefreshFull means the caller fell back to an exact from-scratch
	// refit (the escalation terminal; core itself never performs it).
	RefreshFull
)

// String returns the rung name.
func (k RefreshKind) String() string {
	switch k {
	case RefreshLabelValues:
		return "label-values"
	case RefreshWoodbury:
		return "woodbury"
	case RefreshWarmPCG:
		return "warm-pcg"
	case RefreshFull:
		return "full-refit"
	default:
		return fmt.Sprintf("RefreshKind(%d)", int(k))
	}
}

// RefreshStats documents one online refresh: the ladder rung taken, the
// iterative work spent, the verified relative residual of the accepted
// solution, and whether a cheaper rung was abandoned mid-flight.
type RefreshStats struct {
	Kind       RefreshKind
	Solves     int
	Iterations int
	Residual   float64
	Escalated  bool
	Reason     string
}

// Refresher maintains a hard-criterion solution under streaming label and
// structure deltas without refitting from scratch. It owns the assembled
// block system of the current problem, the current solution, and the
// warm-start buffers (a held workspace plus an in-place destination
// vector), so repeated small refreshes reuse all solver scratch.
//
// The ladder, cheapest first:
//
//  1. UpdateLabelValues — only b changes; warm PCG from the old solution.
//     Allocation-free once warm.
//  2. AddLabels with k ≤ woodburyMax — the new system matrix is a
//     principal submatrix of the old one, so the new solution comes from
//     the identity (A′)⁻¹ = P′ − P_J (P_JJ)⁻¹ P_Jᵀ evaluated with k unit
//     solves against the *old* matrix (whose preconditioner and spectrum
//     the solver has already paid for).
//  3. AddLabels with larger k, and Rebase after structural edits — warm
//     PCG on the new system seeded from the previous solution.
//
// Every rung ends with an explicit residual check of the accepted
// solution against the *new* system; a miss escalates to the next rung,
// and the caller is expected to fall back to an exact refit (RefreshFull)
// when the ladder is exhausted. After any returned error the refresher
// state is unspecified and must be rebuilt from a fresh solve.
//
// A Refresher is not safe for concurrent use.
type Refresher struct {
	p   *Problem
	sys *hardSystem

	f      []float64 // full solution over all nodes
	fu     []float64 // reduced solution, aligned with p.unlabeled
	labIdx []int     // node → index into p.labeled, -1 otherwise

	ws      *sparse.Workspace
	scratch []float64 // residual-verification buffer, len M

	tol        float64
	refreshTol float64
	maxIter    int
	workers    int
}

// NewRefresher adopts an existing solution of p (its full score vector,
// as produced by SolveHard) and prepares the incremental machinery.
// tol is the inner PCG tolerance, refreshTol the acceptance threshold on
// the verified relative residual ‖b − A f‖/‖b‖ of a refreshed solution
// (≤ 0 selects 1e-8). maxIter ≤ 0 lets PCG choose its default cap.
func NewRefresher(p *Problem, f []float64, tol, refreshTol float64, maxIter, workers int) (*Refresher, error) {
	if p == nil {
		return nil, fmt.Errorf("core: nil problem: %w", ErrParam)
	}
	if len(f) != p.g.N() {
		return nil, fmt.Errorf("core: solution length %d, want %d: %w", len(f), p.g.N(), ErrParam)
	}
	if tol <= 0 {
		tol = 1e-10
	}
	if refreshTol <= 0 {
		refreshTol = 1e-8
	}
	if workers < 1 {
		workers = 1
	}
	sys, err := buildHardSystem(p)
	if err != nil {
		return nil, err
	}
	r := &Refresher{
		ws:         sparse.NewWorkspace(),
		tol:        tol,
		refreshTol: refreshTol,
		maxIter:    maxIter,
		workers:    workers,
	}
	r.commit(p, sys, nil)
	copy(r.f, f)
	for k, u := range p.unlabeled {
		r.fu[k] = f[u]
	}
	return r, nil
}

// F returns the current full score vector, aliased: callers must not
// mutate it, and it is overwritten by the next refresh.
func (r *Refresher) F() []float64 { return r.f }

// Problem returns the current problem.
func (r *Refresher) Problem() *Problem { return r.p }

// Residual recomputes the true relative residual ‖b − A f_U‖/‖b‖ of the
// current solution (one SpMV; the barrier-style accumulated-perturbation
// check callers use to decide whether to escalate to a full refit).
func (r *Refresher) Residual() float64 {
	return r.relResidual(r.sys, r.fu)
}

// commit installs a new problem/system pair and (re)sizes the solution
// and index buffers. fu2, when non-nil, becomes the reduced solution.
func (r *Refresher) commit(p *Problem, sys *hardSystem, fu2 []float64) {
	r.p, r.sys = p, sys
	n := p.g.N()
	m := len(sys.b)
	if cap(r.f) < n {
		r.f = make([]float64, n)
	}
	r.f = r.f[:n]
	if fu2 != nil {
		r.fu = fu2
	} else {
		if cap(r.fu) < m {
			r.fu = make([]float64, m)
		}
		r.fu = r.fu[:m]
	}
	if cap(r.scratch) < m {
		r.scratch = make([]float64, m)
	}
	r.scratch = r.scratch[:m]
	if cap(r.labIdx) < n {
		r.labIdx = make([]int, n)
	}
	r.labIdx = r.labIdx[:n]
	for i := range r.labIdx {
		r.labIdx[i] = -1
	}
	for k, l := range p.labeled {
		r.labIdx[l] = k
	}
	// Rebuild the full vector from labels + reduced solution.
	for k, l := range p.labeled {
		r.f[l] = p.y[k]
	}
	for k, u := range p.unlabeled {
		r.f[u] = r.fu[k]
	}
}

// relResidual returns ‖b − A x‖/‖b‖ for the given system.
func (r *Refresher) relResidual(sys *hardSystem, x []float64) float64 {
	if cap(r.scratch) < len(x) {
		r.scratch = make([]float64, len(x))
	}
	s := r.scratch[:len(x)]
	if err := sys.a.MulVecToWorkers(s, x, r.workers); err != nil {
		return math.Inf(1)
	}
	for i := range s {
		s[i] = sys.b[i] - s[i]
	}
	bn := mat.Norm2(sys.b)
	if bn == 0 {
		bn = 1
	}
	return mat.Norm2(s) / bn
}

// warmOpts assembles the held-buffer PCG options for a warm solve into
// dst (which doubles as the starting guess).
func (r *Refresher) warmOpts(dst []float64) sparse.PCGOptions {
	return sparse.PCGOptions{
		CGOptions: sparse.CGOptions{
			Tol:          r.tol,
			MaxIter:      r.maxIter,
			Precondition: true,
			X0:           dst,
			Workers:      r.workers,
		},
		Dst: dst,
		Ws:  r.ws,
	}
}

// UpdateLabelValues changes the responses of already-labeled nodes and
// re-solves. The system matrix is unchanged — only the right-hand side
// entries next to the touched labels move — so the solve warm-starts from
// the previous solution and typically converges in a handful of
// iterations. Allocation-free once the held buffers are warm.
func (r *Refresher) UpdateLabelValues(nodes []int, vals []float64) (RefreshStats, error) {
	var st RefreshStats
	st.Kind = RefreshLabelValues
	if len(nodes) != len(vals) {
		return st, fmt.Errorf("core: %d nodes, %d values: %w", len(nodes), len(vals), ErrParam)
	}
	w := r.p.g.Weights()
	for i, node := range nodes {
		v := vals[i]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return st, fmt.Errorf("core: non-finite label value: %w", ErrParam)
		}
		li := -1
		if node >= 0 && node < len(r.labIdx) {
			li = r.labIdx[node]
		}
		if li < 0 {
			return st, fmt.Errorf("core: node %d is not labeled: %w", node, ErrParam)
		}
		dy := v - r.p.y[li]
		if dy == 0 {
			continue
		}
		cols, ws := w.RowNNZ(node)
		for c, j := range cols {
			if k := r.sys.pos[j]; k >= 0 {
				r.sys.b[k] += ws[c] * dy
			}
		}
		r.p.y[li] = v
		r.f[node] = v
	}
	_, res, err := sparse.PCG(r.sys.a, r.sys.b, r.warmOpts(r.fu))
	st.Solves, st.Iterations = 1, res.Iterations
	if err != nil {
		return st, fmt.Errorf("core: label-value refresh: %w: %w", ErrSolver, err)
	}
	for k, u := range r.p.unlabeled {
		r.f[u] = r.fu[k]
	}
	st.Residual = res.Residual
	return st, nil
}

// AddLabels moves currently-unlabeled nodes into the labeled set with the
// given responses; the graph is unchanged. Batches of at most woodburyMax
// take the low-rank rung; larger batches (or a Woodbury residual miss)
// take a warm PCG solve of the new system.
func (r *Refresher) AddLabels(nodes []int, vals []float64, woodburyMax int) (RefreshStats, error) {
	var st RefreshStats
	if len(nodes) == 0 {
		st.Kind = RefreshLabelValues
		return st, nil
	}
	if len(nodes) != len(vals) {
		return st, fmt.Errorf("core: %d nodes, %d values: %w", len(nodes), len(vals), ErrParam)
	}
	seen := make(map[int]bool, len(nodes))
	for i, node := range nodes {
		if node < 0 || node >= r.p.g.N() || r.p.isLabeled[node] {
			return st, fmt.Errorf("core: node %d is not an unlabeled node: %w", node, ErrParam)
		}
		if seen[node] {
			return st, fmt.Errorf("core: duplicate node %d: %w", node, ErrParam)
		}
		seen[node] = true
		if v := vals[i]; math.IsNaN(v) || math.IsInf(v, 0) {
			return st, fmt.Errorf("core: non-finite label value: %w", ErrParam)
		}
	}
	labeled2 := make([]int, 0, len(r.p.labeled)+len(nodes))
	labeled2 = append(labeled2, r.p.labeled...)
	labeled2 = append(labeled2, nodes...)
	y2 := make([]float64, 0, len(labeled2))
	y2 = append(y2, r.p.y...)
	y2 = append(y2, vals...)
	p2, err := NewProblem(r.p.g, labeled2, y2)
	if err != nil {
		return st, err
	}

	if len(nodes) <= woodburyMax {
		ok, wst, werr := r.woodbury(p2, nodes, vals)
		if werr != nil {
			return wst, werr
		}
		if ok {
			return wst, nil
		}
		st = wst // carry the escalation note and spent work into the warm rung
	}

	sys2, err := buildHardSystem(p2)
	if err != nil {
		return st, err
	}
	// Seed from the old full solution: every new unknown was an unknown
	// before, at the same node index (the graph is unchanged).
	fu2 := make([]float64, len(sys2.b))
	for k, u := range p2.unlabeled {
		fu2[k] = r.f[u]
	}
	_, res, err := sparse.PCG(sys2.a, sys2.b, r.warmOpts(fu2))
	st.Kind = RefreshWarmPCG
	st.Solves++
	st.Iterations += res.Iterations
	if err != nil {
		return st, fmt.Errorf("core: add-labels refresh: %w: %w", ErrSolver, err)
	}
	st.Residual = res.Residual
	r.commit(p2, sys2, fu2)
	return st, nil
}

// woodbury applies the principal-submatrix inverse identity for a small
// batch J of newly labeled nodes. With P = A⁻¹ and A′ the old matrix
// restricted to the remaining unknowns,
//
//	(A′)⁻¹ = P_{U′U′} − P_{U′J} (P_{JJ})⁻¹ P_{JU′},
//
// so the new solution needs only the k columns P e_j (k unit solves
// against the old, already-warm system) and a k×k dense solve. Linearity
// removes even the solve against the new right-hand side: with
// r_j = (b − A z)_j and z the labels extended by zero,
// A⁻¹(b − A z − Σ r_j e_j) = f_old − z − Σ r_j P e_j.
//
// Returns ok=false (with stats carrying the spent work and the reason)
// when the verified residual of the candidate misses refreshTol; the
// caller then escalates to the warm-PCG rung.
func (r *Refresher) woodbury(p2 *Problem, nodes []int, vals []float64) (bool, RefreshStats, error) {
	var st RefreshStats
	st.Kind = RefreshWoodbury
	m := len(r.sys.b)
	k := len(nodes)

	z := make([]float64, m)
	for i, node := range nodes {
		z[r.sys.pos[node]] = vals[i]
	}
	az := make([]float64, m)
	if err := r.sys.a.MulVecToWorkers(az, z, r.workers); err != nil {
		return false, st, err
	}

	// Unit solves t_j = P e_{pos(j)} against the old matrix.
	t := make([][]float64, k)
	e := make([]float64, m)
	for j, node := range nodes {
		pj := r.sys.pos[node]
		e[pj] = 1
		tj := make([]float64, m)
		_, res, err := sparse.PCG(r.sys.a, e, sparse.PCGOptions{
			CGOptions: sparse.CGOptions{
				Tol:          r.tol,
				MaxIter:      r.maxIter,
				Precondition: true,
				Workers:      r.workers,
			},
			Dst: tj,
			Ws:  r.ws,
		})
		e[pj] = 0
		st.Solves++
		st.Iterations += res.Iterations
		if err != nil {
			return false, st, fmt.Errorf("core: woodbury unit solve: %w: %w", ErrSolver, err)
		}
		t[j] = tj
	}

	// h = f_old − z − Σ_j r_j t_j on the old unknowns.
	h := make([]float64, m)
	copy(h, r.fu)
	for i := range h {
		h[i] -= z[i]
	}
	for j, node := range nodes {
		rj := r.sys.b[r.sys.pos[node]] - az[r.sys.pos[node]]
		tj := t[j]
		for i := range h {
			h[i] -= rj * tj[i]
		}
	}

	// Capacitance P_{JJ} and correction μ = (P_{JJ})⁻¹ h_J.
	pjj := make([]float64, k*k)
	hj := make([]float64, k)
	for a, na := range nodes {
		pa := r.sys.pos[na]
		hj[a] = h[pa]
		for b := 0; b < k; b++ {
			pjj[a*k+b] = t[b][pa]
		}
	}
	capM, err := mat.NewDenseData(k, k, pjj)
	if err != nil {
		return false, st, err
	}
	mu, err := mat.SolveLU(capM, hj)
	if err != nil {
		return false, st, fmt.Errorf("core: woodbury capacitance solve: %w: %w", ErrSolver, err)
	}
	for j := 0; j < k; j++ {
		tj := t[j]
		mj := mu[j]
		for i := range h {
			h[i] -= mj * tj[i]
		}
	}

	// Assemble the candidate on the new unknowns and verify it against
	// the freshly built new system.
	sys2, err := buildHardSystem(p2)
	if err != nil {
		return false, st, err
	}
	fu2 := make([]float64, len(sys2.b))
	for k2, u := range p2.unlabeled {
		fu2[k2] = h[r.sys.pos[u]]
	}
	resid := r.relResidual(sys2, fu2)
	st.Residual = resid
	if resid > r.refreshTol {
		st.Escalated = true
		st.Reason = fmt.Sprintf("woodbury residual %.3g above tolerance %.3g", resid, r.refreshTol)
		return false, st, nil
	}
	r.commit(p2, sys2, fu2)
	return true, st, nil
}

// Rebase replaces the problem after structural edits (point inserts,
// deletes, graph rebuilds) and re-solves with a warm start mapped through
// the renumbering: oldNode[u] is the previous node index of new node u,
// or -1 for nodes that did not exist. Brand-new unknowns are seeded with
// the degree-weighted average of their already-seeded neighbours (labels
// and surviving old values), a deterministic single pass in node order.
func (r *Refresher) Rebase(p2 *Problem, oldNode []int) (RefreshStats, error) {
	var st RefreshStats
	st.Kind = RefreshWarmPCG
	if p2 == nil {
		return st, fmt.Errorf("core: nil problem: %w", ErrParam)
	}
	n2 := p2.g.N()
	if len(oldNode) != n2 {
		return st, fmt.Errorf("core: oldNode length %d, want %d: %w", len(oldNode), n2, ErrParam)
	}
	sys2, err := buildHardSystem(p2)
	if err != nil {
		return st, err
	}

	// Full seed vector over the new nodes: labels exactly, surviving
	// nodes from the old solution, new nodes by neighbour average.
	seed := make([]float64, n2)
	known := make([]bool, n2)
	for k2, l := range p2.labeled {
		seed[l] = p2.y[k2]
		known[l] = true
	}
	for u := 0; u < n2; u++ {
		if known[u] {
			continue
		}
		if o := oldNode[u]; o >= 0 && o < len(r.f) {
			seed[u] = r.f[o]
			known[u] = true
		}
	}
	w2 := p2.g.Weights()
	for u := 0; u < n2; u++ {
		if known[u] {
			continue
		}
		cols, vals := w2.RowNNZ(u)
		var num, den float64
		for c, j := range cols {
			if known[j] {
				num += vals[c] * seed[j]
				den += vals[c]
			}
		}
		if den > 0 {
			seed[u] = num / den
		}
	}

	fu2 := make([]float64, len(sys2.b))
	for k2, u := range p2.unlabeled {
		fu2[k2] = seed[u]
	}
	_, res, err := sparse.PCG(sys2.a, sys2.b, r.warmOpts(fu2))
	st.Solves, st.Iterations = 1, res.Iterations
	if err != nil {
		return st, fmt.Errorf("core: rebase refresh: %w: %w", ErrSolver, err)
	}
	st.Residual = res.Residual
	r.commit(p2, sys2, fu2)
	return st, nil
}
