package core

import (
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/sparse"
)

// kernelGaussian returns a Gaussian kernel with bandwidth h.
func kernelGaussian(t *testing.T, h float64) *kernel.K {
	t.Helper()
	return kernel.MustNew(kernel.Gaussian, h)
}

// fullGraph builds a full Gaussian graph over 1-D points.
func fullGraph(t *testing.T, pts []float64, h float64) *graph.Graph {
	t.Helper()
	x := make([][]float64, len(pts))
	for i, v := range pts {
		x[i] = []float64{v}
	}
	b, err := graph.NewBuilder(kernel.MustNew(kernel.Gaussian, h))
	if err != nil {
		t.Fatal(err)
	}
	g, err := b.Build(x)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// chainGraph builds an explicit unit-weight chain over n nodes.
func chainGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	coo := sparse.NewCOO(n, n)
	for i := 0; i+1 < n; i++ {
		if err := coo.AddSym(i, i+1, 1); err != nil {
			t.Fatal(err)
		}
	}
	g, err := graph.FromWeights(coo.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// newTwoComponentGraph builds a 4-node graph with components {0,1}, {2,3}.
func newTwoComponentGraph(t *testing.T) *graph.Graph {
	t.Helper()
	coo := sparse.NewCOO(4, 4)
	if err := coo.AddSym(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := coo.AddSym(2, 3, 1); err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromWeights(coo.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewProblemValidation(t *testing.T) {
	g := chainGraph(t, 4)
	tests := []struct {
		name    string
		labeled []int
		y       []float64
	}{
		{name: "empty labeled", labeled: nil, y: nil},
		{name: "length mismatch", labeled: []int{0}, y: []float64{1, 2}},
		{name: "all labeled", labeled: []int{0, 1, 2, 3}, y: []float64{1, 2, 3, 4}},
		{name: "out of range", labeled: []int{0, 9}, y: []float64{1, 2}},
		{name: "negative index", labeled: []int{-1}, y: []float64{1}},
		{name: "duplicate", labeled: []int{1, 1}, y: []float64{1, 2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewProblem(g, tt.labeled, tt.y); !errors.Is(err, ErrParam) {
				t.Fatalf("want ErrParam, got %v", err)
			}
		})
	}
	if _, err := NewProblem(nil, []int{0}, []float64{1}); !errors.Is(err, ErrParam) {
		t.Fatal("nil graph must error")
	}
}

func TestNewProblemAccessors(t *testing.T) {
	g := chainGraph(t, 5)
	p, err := NewProblem(g, []int{3, 0}, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 2 || p.M() != 3 {
		t.Fatalf("N=%d M=%d", p.N(), p.M())
	}
	lab := p.Labeled()
	if lab[0] != 3 || lab[1] != 0 {
		t.Fatalf("Labeled = %v (order must be preserved)", lab)
	}
	unl := p.Unlabeled()
	if len(unl) != 3 || unl[0] != 1 || unl[1] != 2 || unl[2] != 4 {
		t.Fatalf("Unlabeled = %v", unl)
	}
	y := p.Y()
	if y[0] != 1 || y[1] != 0 {
		t.Fatalf("Y = %v", y)
	}
	if !p.IsLabeled(0) || p.IsLabeled(1) || p.IsLabeled(-1) || p.IsLabeled(99) {
		t.Fatal("IsLabeled wrong")
	}
	if p.Graph() != g {
		t.Fatal("Graph accessor wrong")
	}
}

func TestProblemCopiesInputs(t *testing.T) {
	g := chainGraph(t, 3)
	labeled := []int{0}
	y := []float64{1}
	p, err := NewProblem(g, labeled, y)
	if err != nil {
		t.Fatal(err)
	}
	labeled[0] = 2
	y[0] = 99
	if p.Labeled()[0] != 0 || p.Y()[0] != 1 {
		t.Fatal("NewProblem must copy its slice arguments")
	}
	// Returned slices are copies too.
	p.Labeled()[0] = 5
	p.Y()[0] = 5
	p.Unlabeled()[0] = 5
	if p.Labeled()[0] != 0 || p.Y()[0] != 1 || p.Unlabeled()[0] != 1 {
		t.Fatal("accessors must return copies")
	}
}

func TestNewProblemLabeledFirst(t *testing.T) {
	g := chainGraph(t, 4)
	p, err := NewProblemLabeledFirst(g, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	lab := p.Labeled()
	if lab[0] != 0 || lab[1] != 1 {
		t.Fatalf("Labeled = %v", lab)
	}
	unl := p.Unlabeled()
	if unl[0] != 2 || unl[1] != 3 {
		t.Fatalf("Unlabeled = %v", unl)
	}
}

func TestCheckCoverageIsolatedComponent(t *testing.T) {
	// Two components {0,1} and {2,3}; only component one has a label.
	coo := sparse.NewCOO(4, 4)
	_ = coo.AddSym(0, 1, 1)
	_ = coo.AddSym(2, 3, 1)
	g, err := graph.FromWeights(coo.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProblem(g, []int{0}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveHard(p); !errors.Is(err, ErrIsolated) {
		t.Fatalf("want ErrIsolated, got %v", err)
	}
}
