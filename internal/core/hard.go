package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/sparse"
)

// Method selects the linear-algebra backend for a solve.
type Method int

// Available solve methods.
const (
	// MethodAuto plans a deterministic backend chain from system size and a
	// pre-solve health probe: dense Cholesky→LU at or below the auto cutoff,
	// CG-first with dense fallback above it (see planAuto).
	MethodAuto Method = iota + 1
	// MethodCholesky forces the dense Cholesky factorization.
	MethodCholesky
	// MethodLU forces dense LU with partial pivoting.
	MethodLU
	// MethodCG uses sparse conjugate gradient.
	MethodCG
	// MethodPropagation uses the classic iterative harmonic update
	// f ← D22⁻¹ (W21 Y + W22 f), i.e. label propagation.
	MethodPropagation
	// MethodCluster identifies the sharded distributed PCG engine. The
	// engine lives above core (internal/cluster, driven by the graphssl
	// cluster options), so core only names it for reporting; selecting it
	// via WithMethod is an error.
	MethodCluster
	// MethodNystrom identifies the approximate anchor-subset (Nyström)
	// engine. Like MethodCluster it lives above core (internal/approx,
	// driven by the graphssl WithApprox option, since the anchor coarsening
	// needs the raw points), so core only names it for reporting; selecting
	// it via WithMethod is an error.
	MethodNystrom
)

// String returns the method name.
func (m Method) String() string {
	switch m {
	case MethodAuto:
		return "auto"
	case MethodCholesky:
		return "cholesky"
	case MethodLU:
		return "lu"
	case MethodCG:
		return "cg"
	case MethodPropagation:
		return "propagation"
	case MethodCluster:
		return "cluster"
	case MethodNystrom:
		return "nystrom"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Precond selects the preconditioner of CG-backed solves.
type Precond int

// Available preconditioners.
const (
	// PrecondAuto (the default) resolves from the system size: Jacobi at or
	// below the auto cutoff — the historical, bit-reproducible path — and
	// IC(0) with RCM reordering above it, where the stronger preconditioner
	// pays for its setup.
	PrecondAuto Precond = iota
	// PrecondJacobi forces diagonal scaling.
	PrecondJacobi
	// PrecondIC0 forces zero-fill incomplete Cholesky wrapped in an RCM
	// reordering; the factorization falls back to Jacobi on breakdown.
	PrecondIC0
	// PrecondNone runs unpreconditioned CG.
	PrecondNone
	// PrecondML applies the aggregation-multilevel V-cycle: coarse-grid
	// corrections make PCG iteration counts nearly size-independent on
	// large-diameter graphs where even IC(0) degrades. Falls back to the
	// IC(0) path when the matrix graph has no usable hierarchy. The auto
	// chain also tries it as the escalation tier between a failed IC(0)-CG
	// attempt and the dense backends on large systems.
	PrecondML
)

// String returns the preconditioner name.
func (p Precond) String() string {
	switch p {
	case PrecondAuto:
		return "auto"
	case PrecondJacobi:
		return "jacobi"
	case PrecondIC0:
		return "ic0"
	case PrecondNone:
		return "none"
	case PrecondML:
		return "ml"
	default:
		return fmt.Sprintf("Precond(%d)", int(p))
	}
}

// SolveOption customizes a solve.
type SolveOption interface {
	apply(*solveConfig)
}

type solveConfig struct {
	method     Method
	tol        float64
	maxIter    int
	workers    int
	ctx        context.Context
	autoCutoff int
	probe      bool
	precond    Precond
}

type solveOptionFunc func(*solveConfig)

func (f solveOptionFunc) apply(c *solveConfig) { f(c) }

// WithMethod selects the backend.
func WithMethod(m Method) SolveOption {
	return solveOptionFunc(func(c *solveConfig) { c.method = m })
}

// WithTolerance sets the convergence tolerance of iterative backends.
func WithTolerance(tol float64) SolveOption {
	return solveOptionFunc(func(c *solveConfig) { c.tol = tol })
}

// WithMaxIter caps the iterations of iterative backends.
func WithMaxIter(n int) SolveOption {
	return solveOptionFunc(func(c *solveConfig) { c.maxIter = n })
}

// WithWorkers sets the worker count for the parallel stages of a solve
// (matrix-vector products in CG, propagation sweeps, and per-class
// right-hand sides in multiclass). n <= 0 (the default) selects
// runtime.GOMAXPROCS(0); n == 1 forces the serial path. Solutions are
// bitwise-identical across worker counts.
func WithWorkers(n int) SolveOption {
	return solveOptionFunc(func(c *solveConfig) { c.workers = n })
}

// WithContext attaches a context to the solve. Iterative backends (CG,
// propagation, Jacobi sweeps) check it once per iteration and abort with
// ctx.Err() within one sweep of cancellation; direct backends check it
// between pipeline stages. Cancellation is terminal — it never triggers a
// fallback.
func WithContext(ctx context.Context) SolveOption {
	return solveOptionFunc(func(c *solveConfig) { c.ctx = ctx })
}

// WithAutoCutoff tunes the system size at and below which MethodAuto solves
// with a direct dense factorization instead of starting the chain at
// preconditioned CG (default 2048). Production deployments with very sparse
// graphs may lower it; tests use small values to exercise the iterative
// chain. n <= 0 restores the default.
func WithAutoCutoff(n int) SolveOption {
	return solveOptionFunc(func(c *solveConfig) { c.autoCutoff = n })
}

// WithPreconditioner selects the preconditioner of CG-backed solves
// (default PrecondAuto). It affects only how fast CG converges, never what
// it converges to: each choice is deterministic, and results stay
// bitwise-identical across worker counts. PrecondJacobi reproduces the
// historical solve path bit for bit.
func WithPreconditioner(p Precond) SolveOption {
	return solveOptionFunc(func(c *solveConfig) { c.precond = p })
}

// WithHealthProbe forces the pre-solve health probe to run even for small
// MethodAuto systems (where the plan would not need it), so the resulting
// trace carries conditioning diagnostics. Probing never changes the
// solution; it only informs the plan and the report.
func WithHealthProbe() SolveOption {
	return solveOptionFunc(func(c *solveConfig) { c.probe = true })
}

func newSolveConfig(opts []SolveOption) solveConfig {
	c := solveConfig{method: MethodAuto, tol: 1e-10, maxIter: 0, workers: 0}
	for _, o := range opts {
		o.apply(&c)
	}
	return c
}

// Solution is the outcome of a criterion solve.
type Solution struct {
	// F is the full score vector over all nodes. For the hard criterion,
	// labeled entries equal the observed responses exactly; for the soft
	// criterion they are the fitted (shrunk) values.
	F []float64
	// FUnlabeled is F restricted to the unlabeled nodes, aligned with
	// Problem.Unlabeled().
	FUnlabeled []float64
	// Lambda is the tuning parameter used (0 for the hard criterion).
	Lambda float64
	// Method is the backend that produced the solution.
	Method Method
	// Iterations reports iterative-backend work (0 for direct solves).
	Iterations int
	// Residual is the final relative residual of iterative backends.
	Residual float64
	// Precond identifies the preconditioner of CG-backed solves ("jacobi",
	// "ic0+rcm", "jacobi+rcm" after an IC(0) breakdown, "none"); empty for
	// direct backends.
	Precond string
	// PrecondSetup is the wall time spent building the preconditioner and
	// any reordering (reporting only; zero for the built-in Jacobi path).
	PrecondSetup time.Duration
	// Trace documents the backend pipeline for MethodAuto solves (health
	// probe, plan, attempts, fallbacks); nil for explicitly chosen
	// backends.
	Trace *SolveTrace
}

// hardSystem carries the blocks of the hard-criterion linear system
// A f_U = b with A = D22 − W22 and b = W21 Y (paper Eq. 5).
type hardSystem struct {
	a   *sparse.CSR // m×m, SPD when every unlabeled component touches a label
	b   []float64   // m
	w22 *sparse.CSR // m×m similarity block among unlabeled nodes
	d22 []float64   // full degrees of unlabeled nodes
	pos []int       // pos[nodeIndex] = position among unlabeled, -1 otherwise
}

// buildHardSystem extracts the block system from the problem.
func buildHardSystem(p *Problem) (*hardSystem, error) {
	if err := p.checkCoverage(); err != nil {
		return nil, err
	}
	w := p.g.Weights()
	nTotal := p.g.N()
	m := p.M()
	pos := make([]int, nTotal)
	for i := range pos {
		pos[i] = -1
	}
	for k, u := range p.unlabeled {
		pos[u] = k
	}
	yAt := make([]float64, nTotal)
	for k, l := range p.labeled {
		yAt[l] = p.y[k]
	}

	deg := w.RowSums()
	aCoo := sparse.NewCOO(m, m)
	w22Coo := sparse.NewCOO(m, m)
	b := make([]float64, m)
	d22 := make([]float64, m)
	for k, u := range p.unlabeled {
		d22[k] = deg[u]
		if err := aCoo.Add(k, k, deg[u]); err != nil {
			return nil, err
		}
		cols, vals := w.RowNNZ(u)
		for c, j := range cols {
			v := vals[c]
			if v == 0 {
				continue
			}
			if p.isLabeled[j] {
				b[k] += v * yAt[j]
				continue
			}
			// Unlabeled neighbour (possibly u itself via a self-loop).
			if err := aCoo.Add(k, pos[j], -v); err != nil {
				return nil, err
			}
			if err := w22Coo.Add(k, pos[j], v); err != nil {
				return nil, err
			}
		}
	}
	return &hardSystem{a: aCoo.ToCSR(), b: b, w22: w22Coo.ToCSR(), d22: d22, pos: pos}, nil
}

// SolveHard computes the hard-criterion solution (Eq. 5):
// f_U = (D22 − W22)⁻¹ W21 Y, with f fixed to Y on labeled nodes.
func SolveHard(p *Problem, opts ...SolveOption) (*Solution, error) {
	cfg := newSolveConfig(opts)
	if err := ctxErr(cfg.ctx); err != nil {
		return nil, err
	}
	sys, err := buildHardSystem(p)
	if err != nil {
		return nil, err
	}
	var (
		fu     []float64
		res    sparse.SolveResult
		trace  *SolveTrace
		cgOut  cgOutcome
		method = cfg.method
	)
	switch cfg.method {
	case MethodAuto:
		fu, res, method, trace, err = runChain(cfg.ctx, sys.a, sys.b, cfg)
	case MethodCholesky:
		var ch *mat.Cholesky
		ch, err = mat.NewCholesky(sys.a.ToDense())
		if err == nil {
			fu, err = ch.Solve(sys.b)
		}
	case MethodLU:
		fu, err = mat.SolveLU(sys.a.ToDense(), sys.b)
	case MethodCG:
		fu, res, cgOut, err = solveCG(cfg.ctx, sys.a, sys.b, cfg, 0)
	case MethodPropagation:
		fu, res, err = propagate(cfg.ctx, sys, cfg.tol, cfg.maxIter, cfg.workers)
	case MethodCluster:
		return nil, fmt.Errorf("core: the cluster backend is driven by the distributed fit options, not WithMethod: %w", ErrParam)
	case MethodNystrom:
		return nil, fmt.Errorf("core: the Nyström backend is driven by the WithApprox fit option, not WithMethod: %w", ErrParam)
	default:
		return nil, fmt.Errorf("core: unknown method %d: %w", int(cfg.method), ErrParam)
	}
	if err == nil && !finiteVec(fu) {
		err = fmt.Errorf("core: %v produced non-finite values: %w", method, mat.ErrSingular)
	}
	if err != nil {
		if cfg.ctx != nil && cfg.ctx.Err() != nil {
			return nil, cfg.ctx.Err()
		}
		return nil, fmt.Errorf("core: hard solve (%v): %w: %w", cfg.method, ErrSolver, err)
	}
	sol := assembleSolution(p, fu, 0, method, res)
	sol.Trace = trace
	sol.Precond = cgOut.name
	sol.PrecondSetup = cgOut.setup
	applyTraceOutcome(sol, trace)
	return sol, nil
}

// propagate runs the harmonic iteration f ← D22⁻¹ (b + W22 f). Because
// D22 also counts the similarity mass to labeled nodes, the iteration matrix
// D22⁻¹W22 is substochastic and — whenever every unlabeled component touches
// a labeled node — a contraction, so the iteration converges to Eq. 5.
//
// Every sweep is a Jacobi step: all rows read the frozen previous iterate
// and write disjoint entries of the next one, so the sweep parallelizes over
// row blocks. The convergence reduction is a max (exact under reordering),
// making the iterates bitwise-identical for every worker count.
func propagate(ctx context.Context, sys *hardSystem, tol float64, maxIter, workers int) ([]float64, sparse.SolveResult, error) {
	m := len(sys.b)
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 100000
	}
	for k, d := range sys.d22 {
		if d == 0 {
			// Coverage check passed, so a zero-degree unlabeled node would be
			// its own component without labels; defensive guard.
			return nil, sparse.SolveResult{}, fmt.Errorf("core: zero degree at unlabeled position %d: %w", k, ErrIsolated)
		}
	}
	f := make([]float64, m)
	next := make([]float64, m)
	blocks := parallel.Split(m, parallel.Workers(workers))
	deltas := make([]float64, len(blocks))
	scales := make([]float64, len(blocks))
	for it := 0; it < maxIter; it++ {
		if err := ctxErr(ctx); err != nil {
			return f, sparse.SolveResult{Iterations: it}, err
		}
		parallel.ForBlocks(workers, blocks, func(bi int, blk parallel.Block) {
			var delta, scale float64
			for k := blk.Lo; k < blk.Hi; k++ {
				cols, vals := sys.w22.RowNNZ(k)
				s := sys.b[k]
				for c, j := range cols {
					s += vals[c] * f[j]
				}
				v := s / sys.d22[k]
				next[k] = v
				d := v - f[k]
				if d < 0 {
					d = -d
				}
				if d > delta {
					delta = d
				}
				if v < 0 {
					v = -v
				}
				if v > scale {
					scale = v
				}
			}
			deltas[bi], scales[bi] = delta, scale
		})
		var delta, scale float64
		for bi := range deltas {
			if deltas[bi] > delta {
				delta = deltas[bi]
			}
			if scales[bi] > scale {
				scale = scales[bi]
			}
		}
		f, next = next, f
		if delta <= tol*(1+scale) {
			return f, sparse.SolveResult{Iterations: it + 1, Residual: delta}, nil
		}
	}
	return f, sparse.SolveResult{Iterations: maxIter}, sparse.ErrNotConverged
}

// assembleSolution merges unlabeled scores with labeled values into the full
// score vector. For λ=0 (hard criterion) labeled entries are the responses.
func assembleSolution(p *Problem, fu []float64, lambda float64, method Method, res sparse.SolveResult) *Solution {
	full := make([]float64, p.g.N())
	for k, l := range p.labeled {
		full[l] = p.y[k]
	}
	for k, u := range p.unlabeled {
		full[u] = fu[k]
	}
	out := make([]float64, len(fu))
	copy(out, fu)
	return &Solution{
		F:          full,
		FUnlabeled: out,
		Lambda:     lambda,
		Method:     method,
		Iterations: res.Iterations,
		Residual:   res.Residual,
	}
}
