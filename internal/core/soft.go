package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/graph"
	"repro/internal/mat"
	"repro/internal/precond"
	"repro/internal/sparse"
)

// SolveSoft computes the soft-criterion solution (paper Eq. 3):
//
//	f̂ = (V + λL)⁻¹ V Y,
//
// where V is the diagonal labeled-indicator matrix and L = D − W the
// unnormalized Laplacian. At λ = 0 the problem dispatches to SolveHard,
// implementing Proposition II.1 (the soft solution converges to the hard one
// as λ → 0).
//
// The labeled entries of the returned Solution.F are the fitted values,
// which the soft criterion shrinks away from Y.
func SolveSoft(p *Problem, lambda float64, opts ...SolveOption) (*Solution, error) {
	if lambda < 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		return nil, fmt.Errorf("core: lambda=%v: %w", lambda, ErrParam)
	}
	if lambda == 0 {
		return SolveHard(p, opts...)
	}
	cfg := newSolveConfig(opts)
	if err := ctxErr(cfg.ctx); err != nil {
		return nil, err
	}

	lap, err := p.g.Laplacian(graph.Unnormalized)
	if err != nil {
		return nil, fmt.Errorf("core: laplacian: %w", err)
	}
	nTotal := p.g.N()
	// Assemble A = V + λL and rhs = V Y in sparse form.
	coo := sparse.NewCOO(nTotal, nTotal)
	for i := 0; i < nTotal; i++ {
		cols, vals := lap.RowNNZ(i)
		for k, j := range cols {
			if err := coo.Add(i, j, lambda*vals[k]); err != nil {
				return nil, err
			}
		}
	}
	rhs := make([]float64, nTotal)
	for k, l := range p.labeled {
		if err := coo.Add(l, l, 1); err != nil {
			return nil, err
		}
		rhs[l] = p.y[k]
	}
	a := coo.ToCSR()

	var (
		f      []float64
		res    sparse.SolveResult
		trace  *SolveTrace
		cgOut  cgOutcome
		method = cfg.method
	)
	switch cfg.method {
	case MethodAuto:
		f, res, method, trace, err = runChain(cfg.ctx, a, rhs, cfg)
	case MethodCholesky:
		var ch *mat.Cholesky
		ch, err = mat.NewCholesky(a.ToDense())
		if err == nil {
			f, err = ch.Solve(rhs)
		}
	case MethodLU:
		f, err = mat.SolveLU(a.ToDense(), rhs)
	case MethodCG:
		f, res, cgOut, err = solveCG(cfg.ctx, a, rhs, cfg, 0)
	case MethodPropagation:
		return nil, fmt.Errorf("core: propagation applies to the hard criterion only: %w", ErrParam)
	default:
		return nil, fmt.Errorf("core: unknown method %d: %w", int(cfg.method), ErrParam)
	}
	if err == nil && !finiteVec(f) {
		err = fmt.Errorf("core: %v produced non-finite values: %w", method, mat.ErrSingular)
	}
	if err != nil {
		if cfg.ctx != nil && cfg.ctx.Err() != nil {
			return nil, cfg.ctx.Err()
		}
		return nil, fmt.Errorf("core: soft solve (λ=%v, %v): %w: %w", lambda, cfg.method, ErrSolver, err)
	}

	fu := make([]float64, p.M())
	for k, u := range p.unlabeled {
		fu[k] = f[u]
	}
	full := make([]float64, len(f))
	copy(full, f)
	sol := &Solution{
		F:            full,
		FUnlabeled:   fu,
		Lambda:       lambda,
		Method:       method,
		Iterations:   res.Iterations,
		Residual:     res.Residual,
		Precond:      cgOut.name,
		PrecondSetup: cgOut.setup,
		Trace:        trace,
	}
	applyTraceOutcome(sol, trace)
	return sol, nil
}

// SoftObjective evaluates the paper's Eq. 2 objective
// Σ_{labeled}(Y_i−f_i)² + (λ/2) Σ_ij w_ij (f_i−f_j)² at the given full score
// vector. Used by tests to verify that solver outputs are stationary points.
func SoftObjective(p *Problem, lambda float64, f []float64) (float64, error) {
	nTotal := p.g.N()
	if len(f) != nTotal {
		return 0, fmt.Errorf("core: objective needs %d scores, got %d: %w", nTotal, len(f), ErrParam)
	}
	var loss float64
	for k, l := range p.labeled {
		d := p.y[k] - f[l]
		loss += d * d
	}
	lap, err := p.g.Laplacian(graph.Unnormalized)
	if err != nil {
		return 0, err
	}
	lf, err := lap.MulVec(f)
	if err != nil {
		return 0, err
	}
	// Σ_ij w_ij (f_i−f_j)² = 2 fᵀLf, so (λ/2)Σ = λ fᵀLf.
	return loss + lambda*mat.Dot(f, lf), nil
}

// LambdaInfinity returns the λ→∞ limit of the soft criterion on a connected
// graph: every score collapses to the labeled mean ȳ_n (Proposition II.2's
// counterexample). Disconnected graphs return ErrDisconnected because the
// limit is then the labeled mean within each component.
func LambdaInfinity(p *Problem) (float64, error) {
	if !p.g.IsConnected() {
		return 0, ErrDisconnected
	}
	var s float64
	for _, v := range p.y {
		s += v
	}
	return s / float64(len(p.y)), nil
}

// LambdaPathPoint is one evaluation on a λ path.
type LambdaPathPoint struct {
	Lambda   float64
	Solution *Solution
}

// SoftSweep solves the soft criterion for every λ in lambdas, sharing the
// work that SolveSoft repeats per call: the unnormalized Laplacian and the
// merged sparsity pattern of A(λ) = V + λL are assembled once, and each
// λ > 0 solve only refills the numeric values. Solves use Jacobi-
// preconditioned CG, warm-started from the previous λ's solution — the
// systems along a λ path differ by a smooth rescaling, so the previous
// solution is already close and CG converges in a few iterations. λ = 0
// entries dispatch to SolveHard, exactly as SolveSoft does.
//
// MethodAuto and MethodCG resolve to the warm-started CG path (tolerance
// from WithTolerance, default 1e-10); other explicit methods fall back to
// per-λ SolveSoft. Results are bitwise-identical across worker counts, and
// independent of how lambdas interleave zeros (λ = 0 solutions never enter
// the warm-start chain).
//
// The CSR wrapper, solver workspace, and warm-start buffer persist across
// the whole path, so the steady state of a sweep allocates only the
// per-point result copies. The default preconditioner is the historical
// warm Jacobi path, kept bit-for-bit reproducible; WithPreconditioner
// (PrecondIC0) switches to an RCM-reordered IC(0) factorization that is
// built once and numerically refreshed per λ, which cuts iteration counts
// severalfold on ill-conditioned paths (small bandwidth, large λ) at the
// cost of breaking bitwise compatibility with the Jacobi iterates.
func SoftSweep(p *Problem, lambdas []float64, opts ...SolveOption) ([]LambdaPathPoint, error) {
	if len(lambdas) == 0 {
		return nil, fmt.Errorf("core: empty lambda sweep: %w", ErrParam)
	}
	for _, l := range lambdas {
		if l < 0 || math.IsNaN(l) || math.IsInf(l, 0) {
			return nil, fmt.Errorf("core: lambda=%v: %w", l, ErrParam)
		}
	}
	cfg := newSolveConfig(opts)
	if cfg.method != MethodAuto && cfg.method != MethodCG {
		return LambdaPath(p, lambdas, opts...)
	}

	lap, err := p.g.Laplacian(graph.Unnormalized)
	if err != nil {
		return nil, fmt.Errorf("core: laplacian: %w", err)
	}
	nTotal := p.g.N()

	// Merged pattern of V + λL: the Laplacian rows plus the labeled
	// diagonal entries L may lack (a labeled node isolated in the graph has
	// an empty Laplacian row). Per entry we keep the Laplacian value and
	// the V addend, so each λ is a pure numeric refill.
	indptr := make([]int, nTotal+1)
	var indices []int
	var lapVal, vAdd []float64
	rhs := make([]float64, nTotal)
	for k, l := range p.labeled {
		rhs[l] = p.y[k]
	}
	for i := 0; i < nTotal; i++ {
		cols, vals := lap.RowNNZ(i)
		diagDone := !p.isLabeled[i]
		for k, j := range cols {
			if !diagDone && j >= i {
				if j != i {
					indices = append(indices, i)
					lapVal = append(lapVal, 0)
					vAdd = append(vAdd, 1)
				}
				diagDone = true
			}
			indices = append(indices, j)
			lapVal = append(lapVal, vals[k])
			if j == i && p.isLabeled[i] {
				vAdd = append(vAdd, 1)
			} else {
				vAdd = append(vAdd, 0)
			}
		}
		if !diagDone {
			indices = append(indices, i)
			lapVal = append(lapVal, 0)
			vAdd = append(vAdd, 1)
		}
		indptr[i+1] = len(indices)
	}
	data := make([]float64, len(indices))
	// The CSR wrapper aliases data, so each λ is a pure in-place refill; the
	// structure is validated exactly once for the whole path.
	a, err := sparse.NewCSR(nTotal, nTotal, indptr, indices, data)
	if err != nil {
		return nil, fmt.Errorf("core: lambda sweep assembly: %w", err)
	}

	// IC(0) sweeps reorder once with RCM and refactor numerically per λ
	// (fixed pattern, fixed permutation); warm starts then live in permuted
	// coordinates for the whole path.
	useIC0 := cfg.precond == PrecondIC0
	var (
		perm, posMap []int
		pa           *sparse.CSR
		prhs, fbuf   []float64
		pstate       sweepPrecondState
	)
	if useIC0 {
		perm, err = sparse.RCM(a)
		if err != nil {
			return nil, fmt.Errorf("core: lambda sweep reordering: %w", err)
		}
		pa, posMap, err = a.PermuteMap(perm)
		if err != nil {
			return nil, fmt.Errorf("core: lambda sweep reordering: %w", err)
		}
		prhs = make([]float64, nTotal)
		sparse.PermuteVecTo(prhs, rhs, perm)
		fbuf = make([]float64, nTotal)
	}

	// One workspace and one solution buffer persist across the path: each
	// λ > 0 solve warm-starts from — and overwrites — xbuf.
	ws := sparse.GetWorkspace(nTotal)
	defer ws.Release()
	xbuf := make([]float64, nTotal)
	var warm []float64 // nil before the first λ > 0 solve

	out := make([]LambdaPathPoint, 0, len(lambdas))
	for _, l := range lambdas {
		if l == 0 {
			sol, err := SolveHard(p, opts...)
			if err != nil {
				return nil, fmt.Errorf("core: lambda sweep at λ=0: %w", err)
			}
			out = append(out, LambdaPathPoint{Lambda: 0, Solution: sol})
			continue
		}
		for k := range data {
			data[k] = l*lapVal[k] + vAdd[k]
		}
		popts := sparse.PCGOptions{
			CGOptions: sparse.CGOptions{
				Tol:     cfg.tol,
				MaxIter: cfg.maxIter,
				X0:      warm,
				Workers: cfg.workers,
				Ctx:     cfg.ctx,
			},
			Dst: xbuf,
			Ws:  ws,
		}
		sys, b := a, rhs
		name := "jacobi"
		var setup time.Duration
		switch {
		case useIC0:
			setupStart := time.Now()
			if err := pa.RefillPermuted(a, posMap); err != nil {
				return nil, fmt.Errorf("core: lambda sweep at λ=%v: %w", l, err)
			}
			m, pname, err := pstate.refresh(pa)
			if err != nil {
				return nil, fmt.Errorf("core: lambda sweep at λ=%v: %w: %w", l, ErrSolver, err)
			}
			popts.M = m
			name = pname
			setup = time.Since(setupStart)
			sys, b = pa, prhs
		case cfg.precond == PrecondNone:
			name = "none"
		default:
			// PrecondAuto / PrecondJacobi: the historical warm-started
			// Jacobi-CG arithmetic, bit for bit.
			popts.Precondition = true
		}
		f, res, err := sparse.PCG(sys, b, popts)
		if err == nil && !finiteVec(f) {
			err = fmt.Errorf("core: CG produced non-finite values: %w", mat.ErrSingular)
		}
		if err != nil {
			if cfg.ctx != nil && cfg.ctx.Err() != nil {
				return nil, cfg.ctx.Err()
			}
			return nil, fmt.Errorf("core: lambda sweep at λ=%v: %w: %w", l, ErrSolver, err)
		}
		warm = f // f aliases xbuf
		fvals := f
		if useIC0 {
			sparse.UnpermuteVecTo(fbuf, f, perm)
			fvals = fbuf
		}
		fu := make([]float64, p.M())
		for k, u := range p.unlabeled {
			fu[k] = fvals[u]
		}
		full := make([]float64, len(fvals))
		copy(full, fvals)
		out = append(out, LambdaPathPoint{Lambda: l, Solution: &Solution{
			F:            full,
			FUnlabeled:   fu,
			Lambda:       l,
			Method:       MethodCG,
			Iterations:   res.Iterations,
			Residual:     res.Residual,
			Precond:      name,
			PrecondSetup: setup,
		}})
	}
	return out, nil
}

// sweepPrecondState carries the λ-sweep preconditioner across refills:
// IC(0) while the factorization holds, Jacobi permanently after a breakdown
// (a breakdown at one λ means nearby λ are equally hostile, and flapping
// between preconditioners would waste refactorization work).
type sweepPrecondState struct {
	ic     *precond.IC0
	jac    *precond.Jacobi
	broken bool
}

// refresh builds or numerically refreshes the preconditioner for the
// current values of the permuted sweep matrix.
func (s *sweepPrecondState) refresh(pa *sparse.CSR) (sparse.Preconditioner, string, error) {
	if !s.broken {
		switch {
		case s.ic == nil:
			f, err := precond.NewIC0(pa)
			if err == nil {
				s.ic = f
				return f, "ic0+rcm", nil
			}
			if !errors.Is(err, precond.ErrBreakdown) {
				return nil, "", err
			}
			s.broken = true
		default:
			err := s.ic.Update(pa)
			if err == nil {
				return s.ic, "ic0+rcm", nil
			}
			if !errors.Is(err, precond.ErrBreakdown) {
				return nil, "", err
			}
			s.broken = true
		}
	}
	if s.jac == nil {
		j, err := precond.NewJacobi(pa)
		if err != nil {
			return nil, "", err
		}
		s.jac = j
		return j, "jacobi+rcm", nil
	}
	if err := s.jac.Update(pa); err != nil {
		return nil, "", err
	}
	return s.jac, "jacobi+rcm", nil
}

// LambdaPath solves the soft criterion for each λ in lambdas (0 allowed; it
// yields the hard solution) and returns the solutions in order, calling
// SolveSoft independently per λ. SoftSweep is the performance-oriented
// variant: shared assembly and warm-started CG across the path.
func LambdaPath(p *Problem, lambdas []float64, opts ...SolveOption) ([]LambdaPathPoint, error) {
	if len(lambdas) == 0 {
		return nil, fmt.Errorf("core: empty lambda path: %w", ErrParam)
	}
	out := make([]LambdaPathPoint, 0, len(lambdas))
	for _, l := range lambdas {
		sol, err := SolveSoft(p, l, opts...)
		if err != nil {
			return nil, fmt.Errorf("core: lambda path at λ=%v: %w", l, err)
		}
		out = append(out, LambdaPathPoint{Lambda: l, Solution: sol})
	}
	return out, nil
}
