package core

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/mat"
	"repro/internal/sparse"
)

// SolveSoft computes the soft-criterion solution (paper Eq. 3):
//
//	f̂ = (V + λL)⁻¹ V Y,
//
// where V is the diagonal labeled-indicator matrix and L = D − W the
// unnormalized Laplacian. At λ = 0 the problem dispatches to SolveHard,
// implementing Proposition II.1 (the soft solution converges to the hard one
// as λ → 0).
//
// The labeled entries of the returned Solution.F are the fitted values,
// which the soft criterion shrinks away from Y.
func SolveSoft(p *Problem, lambda float64, opts ...SolveOption) (*Solution, error) {
	if lambda < 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		return nil, fmt.Errorf("core: lambda=%v: %w", lambda, ErrParam)
	}
	if lambda == 0 {
		return SolveHard(p, opts...)
	}
	cfg := newSolveConfig(opts)

	lap, err := p.g.Laplacian(graph.Unnormalized)
	if err != nil {
		return nil, fmt.Errorf("core: laplacian: %w", err)
	}
	nTotal := p.g.N()
	// Assemble A = V + λL and rhs = V Y in sparse form.
	coo := sparse.NewCOO(nTotal, nTotal)
	for i := 0; i < nTotal; i++ {
		cols, vals := lap.RowNNZ(i)
		for k, j := range cols {
			if err := coo.Add(i, j, lambda*vals[k]); err != nil {
				return nil, err
			}
		}
	}
	rhs := make([]float64, nTotal)
	for k, l := range p.labeled {
		if err := coo.Add(l, l, 1); err != nil {
			return nil, err
		}
		rhs[l] = p.y[k]
	}
	a := coo.ToCSR()

	var (
		f   []float64
		res sparse.SolveResult
	)
	switch cfg.method {
	case MethodAuto:
		f, err = mat.SolveSPD(a.ToDense(), rhs)
	case MethodCholesky:
		var ch *mat.Cholesky
		ch, err = mat.NewCholesky(a.ToDense())
		if err == nil {
			f, err = ch.Solve(rhs)
		}
	case MethodLU:
		f, err = mat.SolveLU(a.ToDense(), rhs)
	case MethodCG:
		f, res, err = sparse.CG(a, rhs, sparse.CGOptions{Tol: cfg.tol, MaxIter: cfg.maxIter, Precondition: true, Workers: cfg.workers})
	case MethodPropagation:
		return nil, fmt.Errorf("core: propagation applies to the hard criterion only: %w", ErrParam)
	default:
		return nil, fmt.Errorf("core: unknown method %d: %w", int(cfg.method), ErrParam)
	}
	if err != nil {
		return nil, fmt.Errorf("core: soft solve (λ=%v, %v): %w: %v", lambda, cfg.method, ErrSolver, err)
	}

	fu := make([]float64, p.M())
	for k, u := range p.unlabeled {
		fu[k] = f[u]
	}
	full := make([]float64, len(f))
	copy(full, f)
	return &Solution{
		F:          full,
		FUnlabeled: fu,
		Lambda:     lambda,
		Method:     cfg.method,
		Iterations: res.Iterations,
		Residual:   res.Residual,
	}, nil
}

// SoftObjective evaluates the paper's Eq. 2 objective
// Σ_{labeled}(Y_i−f_i)² + (λ/2) Σ_ij w_ij (f_i−f_j)² at the given full score
// vector. Used by tests to verify that solver outputs are stationary points.
func SoftObjective(p *Problem, lambda float64, f []float64) (float64, error) {
	nTotal := p.g.N()
	if len(f) != nTotal {
		return 0, fmt.Errorf("core: objective needs %d scores, got %d: %w", nTotal, len(f), ErrParam)
	}
	var loss float64
	for k, l := range p.labeled {
		d := p.y[k] - f[l]
		loss += d * d
	}
	lap, err := p.g.Laplacian(graph.Unnormalized)
	if err != nil {
		return 0, err
	}
	lf, err := lap.MulVec(f)
	if err != nil {
		return 0, err
	}
	// Σ_ij w_ij (f_i−f_j)² = 2 fᵀLf, so (λ/2)Σ = λ fᵀLf.
	return loss + lambda*mat.Dot(f, lf), nil
}

// LambdaInfinity returns the λ→∞ limit of the soft criterion on a connected
// graph: every score collapses to the labeled mean ȳ_n (Proposition II.2's
// counterexample). Disconnected graphs return ErrDisconnected because the
// limit is then the labeled mean within each component.
func LambdaInfinity(p *Problem) (float64, error) {
	if !p.g.IsConnected() {
		return 0, ErrDisconnected
	}
	var s float64
	for _, v := range p.y {
		s += v
	}
	return s / float64(len(p.y)), nil
}

// LambdaPathPoint is one evaluation on a λ path.
type LambdaPathPoint struct {
	Lambda   float64
	Solution *Solution
}

// LambdaPath solves the soft criterion for each λ in lambdas (0 allowed; it
// yields the hard solution) and returns the solutions in order. The graph
// and its Laplacian are reused across the path.
func LambdaPath(p *Problem, lambdas []float64, opts ...SolveOption) ([]LambdaPathPoint, error) {
	if len(lambdas) == 0 {
		return nil, fmt.Errorf("core: empty lambda path: %w", ErrParam)
	}
	out := make([]LambdaPathPoint, 0, len(lambdas))
	for _, l := range lambdas {
		sol, err := SolveSoft(p, l, opts...)
		if err != nil {
			return nil, fmt.Errorf("core: lambda path at λ=%v: %w", l, err)
		}
		out = append(out, LambdaPathPoint{Lambda: l, Solution: sol})
	}
	return out, nil
}
