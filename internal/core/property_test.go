package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/mat"
	"repro/internal/randx"
)

// randomProblem builds a random full-Gaussian-graph problem from a seed.
func randomProblem(seed int64) (*Problem, error) {
	rng := randx.New(seed)
	n := 6 + rng.Intn(10)
	nLab := 2 + rng.Intn(n-4)
	x := make([][]float64, n)
	for i := range x {
		x[i] = []float64{rng.Norm(), rng.Norm()}
	}
	b, err := graph.NewBuilder(kernel.MustNew(kernel.Gaussian, 0.5+rng.Float64()))
	if err != nil {
		return nil, err
	}
	g, err := b.Build(x)
	if err != nil {
		return nil, err
	}
	y := make([]float64, nLab)
	for i := range y {
		y[i] = rng.Float64()*2 - 1
	}
	return NewProblemLabeledFirst(g, y)
}

// Property: the hard solution always obeys the maximum principle and
// interpolates the labels, on arbitrary random instances.
func TestHardMaximumPrincipleProperty(t *testing.T) {
	f := func(seed int64) bool {
		p, err := randomProblem(seed)
		if err != nil {
			return false
		}
		sol, err := SolveHard(p)
		if err != nil {
			return false
		}
		y := p.Y()
		ymin, _ := mat.MinVec(y)
		ymax, _ := mat.MaxVec(y)
		for _, v := range sol.FUnlabeled {
			if v < ymin-1e-9 || v > ymax+1e-9 {
				return false
			}
		}
		for k, l := range p.Labeled() {
			if sol.F[l] != y[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the soft solution's objective never exceeds the objective of
// the "truthful" vector that equals Y on labeled nodes and the labeled mean
// elsewhere — the solver really minimizes Eq. 2.
func TestSoftObjectiveDominanceProperty(t *testing.T) {
	f := func(seed int64, lamBits uint8) bool {
		p, err := randomProblem(seed)
		if err != nil {
			return false
		}
		lambda := float64(lamBits%50)/10 + 0.01 // 0.01 .. 4.91
		sol, err := SolveSoft(p, lambda)
		if err != nil {
			return false
		}
		obj, err := SoftObjective(p, lambda, sol.F)
		if err != nil {
			return false
		}
		// Competitor: labels on labeled nodes, labeled mean elsewhere.
		mean := mat.MeanVec(p.Y())
		comp := mat.Constant(p.Graph().N(), mean)
		for k, l := range p.Labeled() {
			comp[l] = p.Y()[k]
		}
		compObj, err := SoftObjective(p, lambda, comp)
		if err != nil {
			return false
		}
		return obj <= compObj+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: scaling all responses scales the hard solution identically
// (linearity), and shifting them shifts it (affine equivariance).
func TestHardAffineEquivarianceProperty(t *testing.T) {
	f := func(seed int64, aBits, bBits uint8) bool {
		p, err := randomProblem(seed)
		if err != nil {
			return false
		}
		a := float64(aBits)/32 + 0.5 // 0.5 .. 8.5
		b := float64(bBits)/64 - 2   // -2 .. 2
		base, err := SolveHard(p)
		if err != nil {
			return false
		}
		y2 := p.Y()
		for i := range y2 {
			y2[i] = a*y2[i] + b
		}
		p2, err := NewProblem(p.Graph(), p.Labeled(), y2)
		if err != nil {
			return false
		}
		scaled, err := SolveHard(p2)
		if err != nil {
			return false
		}
		for k := range base.FUnlabeled {
			want := a*base.FUnlabeled[k] + b
			if math.Abs(scaled.FUnlabeled[k]-want) > 1e-8*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: Nadaraya–Watson shares the hard criterion's affine
// equivariance — the mechanism that transfers NW's consistency to the hard
// criterion in Theorem II.1.
func TestNWAffineEquivarianceProperty(t *testing.T) {
	f := func(seed int64, aBits uint8) bool {
		p, err := randomProblem(seed)
		if err != nil {
			return false
		}
		a := float64(aBits)/32 + 0.5
		nw, err := NadarayaWatson(p)
		if err != nil {
			return false
		}
		y2 := p.Y()
		for i := range y2 {
			y2[i] *= a
		}
		p2, err := NewProblem(p.Graph(), p.Labeled(), y2)
		if err != nil {
			return false
		}
		nw2, err := NadarayaWatson(p2)
		if err != nil {
			return false
		}
		for k := range nw {
			if math.Abs(nw2[k]-a*nw[k]) > 1e-9*(1+math.Abs(a*nw[k])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
