package core

import (
	"errors"
	"math"
	"testing"
)

// TestSoftSweepMatchesSolveSoft checks the warm-started sweep against
// independent per-λ solves: λ=0 entries must equal SolveHard bitwise, and
// λ>0 entries must agree with the dense reference solution to well within
// the CG tolerance.
func TestSoftSweepMatchesSolveSoft(t *testing.T) {
	p := softTestProblem(t, 21, 40, 12)
	lambdas := []float64{0, 0.01, 0.1, 1, 5}
	path, err := SoftSweep(p, lambdas)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != len(lambdas) {
		t.Fatalf("%d points, want %d", len(path), len(lambdas))
	}
	for i, pt := range path {
		l := lambdas[i]
		if pt.Lambda != l {
			t.Fatalf("point %d: λ=%v, want %v", i, pt.Lambda, l)
		}
		ref, err := SolveSoft(p, l)
		if err != nil {
			t.Fatal(err)
		}
		if l == 0 {
			for j := range ref.F {
				if pt.Solution.F[j] != ref.F[j] {
					t.Fatalf("λ=0: F[%d] differs from SolveHard (must be bitwise-identical)", j)
				}
			}
			continue
		}
		for j := range ref.F {
			if d := math.Abs(pt.Solution.F[j] - ref.F[j]); d > 1e-7 {
				t.Fatalf("λ=%v: F[%d] off by %v from dense reference", l, j, d)
			}
		}
		// The sweep solution must also be a (near-)minimizer of the
		// objective, not just close in coordinates.
		refObj, err := SoftObjective(p, l, ref.F)
		if err != nil {
			t.Fatal(err)
		}
		gotObj, err := SoftObjective(p, l, pt.Solution.F)
		if err != nil {
			t.Fatal(err)
		}
		if gotObj > refObj+1e-9*(1+math.Abs(refObj)) {
			t.Fatalf("λ=%v: objective %v exceeds dense optimum %v", l, gotObj, refObj)
		}
	}
}

// TestSoftSweepDeterministicAcrossWorkers: the warm-start chain must be
// bitwise-identical for every worker count.
func TestSoftSweepDeterministicAcrossWorkers(t *testing.T) {
	p := softTestProblem(t, 23, 35, 10)
	lambdas := []float64{0.01, 0.1, 5}
	ref, err := SoftSweep(p, lambdas, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 0} {
		got, err := SoftSweep(p, lambdas, WithWorkers(w))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i := range ref {
			for j := range ref[i].Solution.F {
				if got[i].Solution.F[j] != ref[i].Solution.F[j] {
					t.Fatalf("workers=%d λ=%v: F[%d] differs (must be bitwise-identical)", w, ref[i].Lambda, j)
				}
			}
		}
	}
}

// TestSoftSweepZeroInterleaving: λ=0 entries never enter the warm-start
// chain, so interleaving zeros anywhere leaves the λ>0 solutions unchanged.
func TestSoftSweepZeroInterleaving(t *testing.T) {
	p := softTestProblem(t, 27, 30, 9)
	plain, err := SoftSweep(p, []float64{0.05, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := SoftSweep(p, []float64{0, 0.05, 0, 0.5, 0})
	if err != nil {
		t.Fatal(err)
	}
	pos := 0
	for _, pt := range mixed {
		if pt.Lambda == 0 {
			continue
		}
		ref := plain[pos]
		pos++
		for j := range ref.Solution.F {
			if pt.Solution.F[j] != ref.Solution.F[j] {
				t.Fatalf("λ=%v: interleaved zeros changed the solution", pt.Lambda)
			}
		}
	}
	if pos != len(plain) {
		t.Fatalf("matched %d λ>0 points, want %d", pos, len(plain))
	}
}

// TestSoftSweepExplicitMethodFallback: non-CG methods delegate to the
// per-λ path and must match SolveSoft bitwise.
func TestSoftSweepExplicitMethodFallback(t *testing.T) {
	p := softTestProblem(t, 29, 20, 6)
	lambdas := []float64{0.1, 2}
	path, err := SoftSweep(p, lambdas, WithMethod(MethodLU))
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range lambdas {
		ref, err := SolveSoft(p, l, WithMethod(MethodLU))
		if err != nil {
			t.Fatal(err)
		}
		for j := range ref.F {
			if path[i].Solution.F[j] != ref.F[j] {
				t.Fatalf("λ=%v: LU fallback differs from SolveSoft", l)
			}
		}
	}
}

func TestSoftSweepValidation(t *testing.T) {
	p := softTestProblem(t, 31, 10, 4)
	if _, err := SoftSweep(p, nil); !errors.Is(err, ErrParam) {
		t.Fatalf("empty sweep: %v", err)
	}
	for _, l := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := SoftSweep(p, []float64{0.1, l}); !errors.Is(err, ErrParam) {
			t.Fatalf("λ=%v: %v", l, err)
		}
	}
}
