package core

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/kernel"
	"repro/internal/parallel"
	"repro/internal/spatial"
)

// nwPath selects how a predictor finds the anchors worth evaluating for a
// query point.
type nwPath uint8

const (
	// nwBrute scans every anchor (the Gaussian kernel, or small/high-dim
	// anchor sets).
	nwBrute nwPath = iota
	// nwGrid takes the uniform-grid candidate superset of the kernel
	// support (compact kernels, dim <= 6).
	nwGrid
	// nwRadius takes the KD-tree radius candidates (compact kernels,
	// dim <= 16).
	nwRadius
	// nwKNN restricts each query to its k nearest anchors (k-NN-built
	// fits, or serving-side top-m truncation).
	nwKNN
)

// String names the lookup path for diagnostics and the serving API.
func (p nwPath) String() string {
	switch p {
	case nwGrid:
		return "grid"
	case nwRadius:
		return "kdtree"
	case nwKNN:
		return "knn"
	default:
		return "brute"
	}
}

// NWPredictor is the frozen, inductive form of the paper's Eq. 6 estimator:
// a fixed set of anchor points with values, a kernel, and a spatial-lookup
// rule. Predict evaluates
//
//	f(x*) = Σ_j K_h(x*, X_j) v_j / Σ_j K_h(x*, X_j)
//
// over the anchors — Theorem II.1's Nadaraya–Watson form, which the
// hard-criterion solution converges to, extended to arbitrary query points.
// When the anchors are the labeled points in ascending node order with knn
// = 0, Predict at an in-sample unlabeled point is bitwise-identical to
// NadarayaWatson on a default-built graph: the accumulation runs in
// ascending anchor order with zero weights skipped, distances come from the
// shared bitwise-stable kernels, and the spatial indexes only prune exact
// zeros. With knn > 0 each query instead adopts its own k nearest anchors
// under the strict (distance, index) order — the inductive analogue of a
// k-NN-sparsified graph (the transductive graph symmetrizes neighbour sets
// across points, which has no out-of-sample counterpart).
//
// Every lookup path streams its distance evaluations through the multi-row
// SIMD kernel (kernel.Dist2Rows) in blocks of nwTileA anchors. The kernel's
// entries are bitwise-identical to per-pair kernel.Dist2 calls and the
// weighted accumulation still runs one anchor at a time in ascending order,
// so vectorization changes throughput, never bits — the same contract the
// pairwise-distance layer has kept since the parallel substrate landed.
//
// A predictor is immutable after construction and safe for concurrent use;
// per-goroutine mutable state lives in NWScratch (pooled internally, so
// passing a nil scratch stays allocation-free once warm).
type NWPredictor struct {
	dim  int
	k    *kernel.K
	x    [][]float64 // anchors, in accumulation order
	v    []float64   // anchor values, aligned with x
	knn  int
	path nwPath
	grid *spatial.Grid   // nwGrid
	tree *spatial.KDTree // nwRadius and nwKNN
	r2   float64         // nwRadius: squared support radius

	pool sync.Pool // *NWScratch
}

// nwMinIndexAnchors is the minimum anchor count before a compact-support
// predictor builds a spatial index; below it the brute scan is already
// cheap. It must equal the historical NadarayaWatsonPoints cutoff so the
// point estimator keeps choosing the same paths.
const nwMinIndexAnchors = 64

// NewNWPredictor freezes an inductive estimator over the given anchors and
// aligned values. Accumulation runs in the order anchors are passed, so
// callers wanting parity with the graph estimators must pass them in
// ascending node order. knn > 0 restricts each query to its k nearest
// anchors; knn = 0 uses the kernel's full support. The anchor slices are
// retained, not copied; callers must not mutate them afterwards. workers
// bounds index-construction parallelism only (queries are always
// deterministic).
func NewNWPredictor(anchors [][]float64, values []float64, k *kernel.K, knn, workers int) (*NWPredictor, error) {
	if k == nil {
		return nil, fmt.Errorf("core: nil kernel: %w", ErrParam)
	}
	if len(anchors) == 0 {
		return nil, fmt.Errorf("core: no anchor points: %w", ErrParam)
	}
	if len(values) != len(anchors) {
		return nil, fmt.Errorf("core: %d anchors but %d values: %w", len(anchors), len(values), ErrParam)
	}
	dim := len(anchors[0])
	if dim == 0 {
		return nil, fmt.Errorf("core: zero-dimensional anchors: %w", ErrParam)
	}
	for i, a := range anchors {
		if len(a) != dim {
			return nil, fmt.Errorf("core: anchor %d has dim %d, want %d: %w", i, len(a), dim, ErrParam)
		}
	}
	if knn < 0 {
		return nil, fmt.Errorf("core: knn=%d: %w", knn, ErrParam)
	}
	p := &NWPredictor{dim: dim, k: k, x: anchors, v: values, knn: knn, path: nwBrute}
	if knn > 0 && len(anchors) > knn {
		t, err := spatial.NewKDTree(anchors, workers)
		if err != nil {
			return nil, fmt.Errorf("core: nw kd-tree index: %w", err)
		}
		p.path, p.tree = nwKNN, t
		return p, nil
	}
	if h := k.Bandwidth(); knn == 0 && k.Kind().CompactSupport() && len(anchors) >= nwMinIndexAnchors {
		cell := h * (1 + 1e-6)
		if dim <= 6 && cell >= spatial.MinCell && cell <= spatial.MaxCell {
			g, err := spatial.NewGrid(anchors, cell)
			if err != nil {
				return nil, fmt.Errorf("core: nw grid index: %w", err)
			}
			p.path, p.grid = nwGrid, g
		} else if dim <= 16 {
			t, err := spatial.NewKDTree(anchors, workers)
			if err != nil {
				return nil, fmt.Errorf("core: nw kd-tree index: %w", err)
			}
			p.path, p.tree, p.r2 = nwRadius, t, h*h
		}
	}
	return p, nil
}

// AppendAnchors returns a new predictor extending this one with extra
// anchors (and aligned values) at the end of the accumulation order. The
// receiver is unchanged and remains valid; the two predictors share the
// existing anchor storage, and the result is exactly what NewNWPredictor
// would build from the concatenated slices — same kernel, same knn, same
// lookup-path resolution — so predictions match that from-scratch build
// bitwise. The extra slices are retained, not copied.
func (p *NWPredictor) AppendAnchors(extra [][]float64, values []float64, workers int) (*NWPredictor, error) {
	if len(extra) == 0 {
		return p, nil
	}
	if len(values) != len(extra) {
		return nil, fmt.Errorf("core: %d extra anchors but %d values: %w", len(extra), len(values), ErrParam)
	}
	x := make([][]float64, 0, len(p.x)+len(extra))
	x = append(append(x, p.x...), extra...)
	v := make([]float64, 0, len(p.v)+len(values))
	v = append(append(v, p.v...), values...)
	return NewNWPredictor(x, v, p.k, p.knn, workers)
}

// Dim returns the input dimension queries must have.
func (p *NWPredictor) Dim() int { return p.dim }

// NumAnchors returns the anchor count.
func (p *NWPredictor) NumAnchors() int { return len(p.x) }

// KNN returns the per-query neighbour restriction (0 = full support).
func (p *NWPredictor) KNN() int { return p.knn }

// Path names the anchor-lookup route this predictor resolved to: "brute",
// "grid", "kdtree" (radius ball rejection), or "knn" (top-k truncation).
func (p *NWPredictor) Path() string { return p.path.String() }

// NWScratch holds the per-goroutine mutable state of repeated predictions:
// the candidate buffer, the SIMD gather/distance tiles, and, for k-NN
// predictors, the reusable bounded priority queue. One scratch serves one
// goroutine at a time.
type NWScratch struct {
	buf  []int32
	knnq *spatial.KNNQuery
	rows [nwTileA][]float64 // gather tile for candidate-path SIMD blocks
	d2   [nwTileA]float64   // distance tile shared by all per-point paths

	// Diagnostics of the most recent prediction made with this scratch.
	pruned int     // anchors skipped without a distance evaluation
	bound  float64 // truncation residual-mass bound (0 = exact)
}

// NewScratch allocates prediction scratch sized for this predictor.
func (p *NWPredictor) NewScratch() *NWScratch {
	s := &NWScratch{}
	if p.path == nwKNN {
		s.knnq = p.tree.NewKNNQuery(p.knn)
	}
	return s
}

// GetScratch returns a pooled scratch (allocating only when the pool is
// empty). Pair with PutScratch to keep warm per-point prediction loops at
// zero heap allocations.
func (p *NWPredictor) GetScratch() *NWScratch {
	if s, ok := p.pool.Get().(*NWScratch); ok {
		return s
	}
	return p.NewScratch()
}

// PutScratch returns a scratch obtained from GetScratch to the pool.
func (p *NWPredictor) PutScratch(s *NWScratch) {
	if s != nil {
		p.pool.Put(s)
	}
}

// LastStats reports diagnostics of the most recent prediction made through
// this scratch: how many anchors the spatial index pruned (or the top-k
// truncation skipped) without evaluating a distance, and the residual-mass
// bound of that truncation. For the exact paths — brute, grid, and KD-tree
// radius, whose skipped anchors provably carry zero kernel weight — the
// bound is exactly 0. For the k-NN path the bound is
//
//	R / (den + R),   R = (N − m) · K_h(d_m),
//
// where d_m is the m-th nearest-anchor distance and den the selected kernel
// mass: every skipped anchor is at distance >= d_m, kernel profiles are
// non-increasing, so R bounds the skipped mass and the reported value
// bounds the fraction of total kernel mass the truncation can have
// discarded. |f_trunc − f_full| <= bound · max_j |v_j − f_trunc|.
func (s *NWScratch) LastStats() (pruned int, residualBound float64) {
	return s.pruned, s.bound
}

// NWStatus reports the outcome of one batched prediction.
type NWStatus uint8

const (
	// NWOK marks a well-defined estimate.
	NWOK NWStatus = iota
	// NWBadDim marks a query whose dimension does not match the anchors.
	NWBadDim
	// NWIsolated marks a query with zero similarity mass to every
	// (selected) anchor, where the estimator is undefined.
	NWIsolated
)

// NWBatchStats aggregates pruning diagnostics across one batched
// prediction. Counters are summed atomically, so one stats value can be
// shared across worker chunks (and across batches, for long-lived meters).
type NWBatchStats struct {
	// AnchorsPruned counts anchors skipped without a distance evaluation,
	// summed over all points of the batch.
	AnchorsPruned int64
}

// Predict evaluates the estimator at one query point. It returns ErrParam
// for a dimension mismatch and ErrIsolated when the query has zero
// similarity mass to every anchor. scratch may be nil (one is borrowed from
// the predictor's pool); passing one amortizes lookups across calls and
// exposes LastStats.
func (p *NWPredictor) Predict(q []float64, scratch *NWScratch) (float64, error) {
	if len(q) != p.dim {
		return 0, fmt.Errorf("core: query has dim %d, want %d: %w", len(q), p.dim, ErrParam)
	}
	if scratch == nil {
		scratch = p.GetScratch()
		defer p.PutScratch(scratch)
	}
	val, ok := p.predictOne(q, scratch)
	if !ok {
		return 0, fmt.Errorf("core: query point has no anchor within kernel support: %w", ErrIsolated)
	}
	return val, nil
}

// predictOne evaluates one dimension-checked query; ok = false means
// isolated.
func (p *NWPredictor) predictOne(q []float64, s *NWScratch) (float64, bool) {
	var num, den float64
	s.pruned, s.bound = 0, 0
	switch p.path {
	case nwBrute:
		num, den = p.bruteOne(q, s)
	case nwGrid:
		s.buf = p.grid.Candidates(q, s.buf[:0])
		s.pruned = len(p.x) - len(s.buf)
		num, den = p.accumulate(q, s.buf, true, s)
	case nwRadius:
		s.buf = p.tree.Radius(q, -1, p.r2, s.buf[:0])
		s.pruned = len(p.x) - len(s.buf)
		num, den = p.accumulate(q, s.buf, true, s)
	case nwKNN:
		s.buf = s.knnq.Do(q, -1, -1, s.buf[:0])
		s.pruned = len(p.x) - len(s.buf)
		num, den = p.accumulate(q, s.buf, false, s)
		if s.pruned > 0 {
			if worst := s.knnq.WorstDist2(); worst >= 0 {
				if r := float64(s.pruned) * p.k.WeightDist2(worst); r > 0 && den+r > 0 {
					s.bound = r / (den + r)
				}
			}
		}
	}
	if den == 0 {
		return 0, false
	}
	return num / den, true
}

// bruteOne is the full anchor scan of one query, streamed through the
// multi-row SIMD distance kernel in blocks of nwTileA rows (the anchor
// slice is contiguous, so no gather is needed). Per-anchor accumulation
// order and arithmetic match the historical scalar scan exactly, so the
// result is bitwise-identical on every backend.
func (p *NWPredictor) bruteOne(q []float64, s *NWScratch) (num, den float64) {
	nA := len(p.x)
	nBlk := nA - nA%nwTileA
	for a := 0; a < nBlk; a += nwTileA {
		kernel.Dist2Rows(q, p.x[a:a+nwTileA], s.d2[:])
		vals := p.v[a : a+nwTileA]
		for r, dd := range s.d2 {
			w := p.k.WeightDist2(dd)
			if w > 0 {
				num += w * vals[r]
				den += w
			}
		}
	}
	for a := nBlk; a < nA; a++ {
		w := p.k.WeightDist2(kernel.Dist2(q, p.x[a]))
		if w > 0 {
			num += w * p.v[a]
			den += w
		}
	}
	return num, den
}

// accumulate sums the weighted anchor values over the candidate positions,
// in ascending position order with zero weights skipped — the exact
// accumulation the graph estimator runs. Candidate rows are gathered into a
// tile and streamed through the SIMD distance kernel; Dist2Rows entries are
// bitwise-identical to per-pair Dist2 calls, so results never depend on the
// tiling. needSort re-sorts candidate sets whose producers return them
// unsorted.
func (p *NWPredictor) accumulate(q []float64, cand []int32, needSort bool, s *NWScratch) (num, den float64) {
	if needSort {
		slices.Sort(cand)
	}
	i := 0
	for ; i+nwTileA <= len(cand); i += nwTileA {
		for j := 0; j < nwTileA; j++ {
			s.rows[j] = p.x[cand[i+j]]
		}
		kernel.Dist2Rows(q, s.rows[:], s.d2[:])
		for j := 0; j < nwTileA; j++ {
			w := p.k.WeightDist2(s.d2[j])
			if w > 0 {
				c := cand[i+j]
				num += w * p.v[c]
				den += w
			}
		}
	}
	for ; i < len(cand); i++ {
		c := cand[i]
		w := p.k.WeightDist2(kernel.Dist2(q, p.x[c]))
		if w > 0 {
			num += w * p.v[c]
			den += w
		}
	}
	return num, den
}

// Batch-path tiling constants: anchor rows stream through the multi-row
// distance kernel in blocks of nwTileA while a tile of nwTileQ queries
// stays cache-resident, so one pass over the anchor matrix serves the whole
// query tile instead of one query. Per query the anchor order — and with it
// every floating-point accumulation — is identical to predictOne's scan, so
// tiling changes throughput, never bits.
const (
	nwTileQ = 16
	nwTileA = 8
)

// PredictBatch evaluates the estimator at every query point, writing
// estimates to dst and per-point outcomes to status (both sized len(qs)).
// Results are bitwise-identical to per-point Predict calls at every worker
// count; the brute path additionally tiles queries against anchor blocks,
// the cache- and SIMD-level win that makes server-side micro-batching pay.
func (p *NWPredictor) PredictBatch(dst []float64, status []NWStatus, qs [][]float64, workers int) {
	p.PredictBatchBounds(dst, status, nil, qs, workers, nil)
}

// PredictBatchBounds is PredictBatch with pruning diagnostics: when bounds
// is non-nil (sized len(qs)) it receives each point's truncation
// residual-mass bound (0 for exact paths; see NWScratch.LastStats for the
// bound's definition), and when stats is non-nil the batch's pruned-anchor
// total is added to it atomically. Estimates are bitwise-identical to
// PredictBatch and per-point Predict at every worker count.
func (p *NWPredictor) PredictBatchBounds(dst []float64, status []NWStatus, bounds []float64, qs [][]float64, workers int, stats *NWBatchStats) {
	if len(dst) != len(qs) || len(status) != len(qs) {
		panic(fmt.Errorf("core: PredictBatch dst/status length mismatch: %w", ErrParam))
	}
	if bounds != nil && len(bounds) != len(qs) {
		panic(fmt.Errorf("core: PredictBatch bounds length mismatch: %w", ErrParam))
	}
	if workers == 1 {
		// Serial fast path: no closure, no goroutines — the warm batch call
		// stays allocation-free (the serving hot-path contract).
		p.predictChunk(dst, status, bounds, qs, 0, len(qs), stats)
		return
	}
	parallel.For(workers, len(qs), func(lo, hi int) {
		p.predictChunk(dst, status, bounds, qs, lo, hi, stats)
	})
}

// predictChunk evaluates one contiguous chunk of a batch.
func (p *NWPredictor) predictChunk(dst []float64, status []NWStatus, bounds []float64, qs [][]float64, lo, hi int, stats *NWBatchStats) {
	for r := lo; r < hi; r++ {
		if len(qs[r]) != p.dim {
			status[r] = NWBadDim
		} else {
			status[r] = NWOK
		}
		if bounds != nil {
			bounds[r] = 0
		}
	}
	if p.path == nwBrute {
		p.bruteTiled(dst, status, qs, lo, hi)
		return
	}
	s := p.GetScratch()
	defer p.PutScratch(s)
	var pruned int64
	for r := lo; r < hi; r++ {
		if status[r] != NWOK {
			continue
		}
		val, ok := p.predictOne(qs[r], s)
		pruned += int64(s.pruned)
		if bounds != nil {
			bounds[r] = s.bound
		}
		if !ok {
			status[r] = NWIsolated
			continue
		}
		dst[r] = val
	}
	if stats != nil && pruned > 0 {
		stats.add(pruned)
	}
}

// add accumulates pruned-anchor counts; chunks of one batch run
// concurrently, so the sum is atomic.
func (st *NWBatchStats) add(n int64) {
	atomic.AddInt64(&st.AnchorsPruned, n)
}

// bruteTiled is the blocked brute-force batch kernel: queries in tiles of
// nwTileQ, anchors in blocks of nwTileA through the batched distance
// kernel. Each query still accumulates over anchors in strictly ascending
// order with zero weights skipped, so every output is bitwise-identical to
// the scalar scan in predictOne.
func (p *NWPredictor) bruteTiled(dst []float64, status []NWStatus, qs [][]float64, lo, hi int) {
	var (
		num, den [nwTileQ]float64
		d2       [nwTileA]float64
	)
	nA := len(p.x)
	nBlk := nA - nA%nwTileA
	for qlo := lo; qlo < hi; qlo += nwTileQ {
		qhi := qlo + nwTileQ
		if qhi > hi {
			qhi = hi
		}
		for i := range num {
			num[i], den[i] = 0, 0
		}
		for a := 0; a < nBlk; a += nwTileA {
			rows := p.x[a : a+nwTileA]
			vals := p.v[a : a+nwTileA]
			for qi := qlo; qi < qhi; qi++ {
				if status[qi] != NWOK {
					continue
				}
				kernel.Dist2Rows(qs[qi], rows, d2[:])
				t := qi - qlo
				for r, dd := range d2 {
					w := p.k.WeightDist2(dd)
					if w > 0 {
						num[t] += w * vals[r]
						den[t] += w
					}
				}
			}
		}
		for qi := qlo; qi < qhi; qi++ {
			if status[qi] != NWOK {
				continue
			}
			t := qi - qlo
			for a := nBlk; a < nA; a++ {
				w := p.k.WeightDist2(kernel.Dist2(qs[qi], p.x[a]))
				if w > 0 {
					num[t] += w * p.v[a]
					den[t] += w
				}
			}
			if den[t] == 0 {
				status[qi] = NWIsolated
				continue
			}
			dst[qi] = num[t] / den[t]
		}
	}
}
