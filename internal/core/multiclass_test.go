package core

import (
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/randx"
)

// threeClusterProblem builds 1-D data in three clusters with classLabels
// for the first nLabeled points.
func threeClusterProblem(t *testing.T, seed int64, perCluster, labeledPerCluster int) (*Problem, []int, []int) {
	t.Helper()
	rng := randx.New(seed)
	var pts []float64
	var classes []int
	centers := []float64{-6, 0, 6}
	// Interleave clusters so labeled prefix covers all three.
	for i := 0; i < perCluster; i++ {
		for c, ctr := range centers {
			pts = append(pts, ctr+rng.Norm()*0.4)
			classes = append(classes, c)
		}
	}
	nLabeled := 3 * labeledPerCluster
	x := make([][]float64, len(pts))
	for i, v := range pts {
		x[i] = []float64{v}
	}
	b, err := graph.NewBuilder(kernel.MustNew(kernel.Gaussian, 1.5))
	if err != nil {
		t.Fatal(err)
	}
	g, err := b.Build(x)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, nLabeled) // placeholder responses
	p, err := NewProblemLabeledFirst(g, y)
	if err != nil {
		t.Fatal(err)
	}
	return p, classes[:nLabeled], classes[nLabeled:]
}

func TestBuildMulticlassValidation(t *testing.T) {
	p, labels, _ := threeClusterProblem(t, 1, 6, 2)
	if _, err := BuildMulticlass(nil, labels); !errors.Is(err, ErrParam) {
		t.Fatal("nil problem must error")
	}
	if _, err := BuildMulticlass(p, labels[:2]); !errors.Is(err, ErrParam) {
		t.Fatal("label length mismatch must error")
	}
	bad := make([]int, len(labels))
	bad[0] = -1
	if _, err := BuildMulticlass(p, bad); !errors.Is(err, ErrParam) {
		t.Fatal("negative class must error")
	}
	one := make([]int, len(labels)) // all class 0
	if _, err := BuildMulticlass(p, one); !errors.Is(err, ErrParam) {
		t.Fatal("single class must error")
	}
}

func TestMulticlassClassesSorted(t *testing.T) {
	p, labels, _ := threeClusterProblem(t, 3, 6, 2)
	// Remap to non-contiguous ids 7, 3, 11.
	remap := map[int]int{0: 7, 1: 3, 2: 11}
	ml := make([]int, len(labels))
	for i, c := range labels {
		ml[i] = remap[c]
	}
	mp, err := BuildMulticlass(p, ml)
	if err != nil {
		t.Fatal(err)
	}
	cs := mp.Classes()
	if len(cs) != 3 || cs[0] != 3 || cs[1] != 7 || cs[2] != 11 {
		t.Fatalf("Classes = %v", cs)
	}
}

func TestMulticlassSolveSeparableClusters(t *testing.T) {
	p, labels, truth := threeClusterProblem(t, 5, 12, 3)
	mp, err := BuildMulticlass(p, labels)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := mp.Solve(0, false)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := sol.Accuracy(truth)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Fatalf("multiclass accuracy %v on separable clusters", acc)
	}
	if r, c := sol.Scores.Dims(); r != p.M() || c != 3 {
		t.Fatalf("scores dims (%d,%d)", r, c)
	}
	if sol.Lambda != 0 {
		t.Fatal("lambda not recorded")
	}
}

func TestMulticlassSolveWithCMN(t *testing.T) {
	p, labels, truth := threeClusterProblem(t, 7, 12, 3)
	mp, err := BuildMulticlass(p, labels)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := mp.Solve(0, true)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := sol.Accuracy(truth)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Fatalf("CMN multiclass accuracy %v", acc)
	}
}

func TestMulticlassSoftDegradesWithLargeLambda(t *testing.T) {
	p, labels, truth := threeClusterProblem(t, 9, 12, 3)
	mp, err := BuildMulticlass(p, labels)
	if err != nil {
		t.Fatal(err)
	}
	hard, err := mp.Solve(0, false)
	if err != nil {
		t.Fatal(err)
	}
	soft, err := mp.Solve(100, false)
	if err != nil {
		t.Fatal(err)
	}
	accHard, _ := hard.Accuracy(truth)
	accSoft, _ := soft.Accuracy(truth)
	if accHard < accSoft {
		t.Fatalf("hard %v below soft(λ=100) %v", accHard, accSoft)
	}
	// At λ=100 the one-vs-rest scores collapse toward the class priors;
	// with balanced priors the argmax becomes near-arbitrary, so the soft
	// accuracy should drop visibly below the hard criterion's.
	if accSoft > accHard-0.05 && accHard > 0.99 {
		t.Logf("note: soft still accurate (%v); collapse is gradual", accSoft)
	}
}

func TestMulticlassAccuracyValidation(t *testing.T) {
	p, labels, truth := threeClusterProblem(t, 11, 6, 2)
	mp, err := BuildMulticlass(p, labels)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := mp.Solve(0, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sol.Accuracy(truth[:1]); !errors.Is(err, ErrParam) {
		t.Fatal("mismatched truth must error")
	}
	if _, err := sol.Accuracy(nil); !errors.Is(err, ErrParam) {
		t.Fatal("empty truth must error")
	}
}

func TestClampPrior(t *testing.T) {
	if clampPrior(0) <= 0 || clampPrior(1) >= 1 {
		t.Fatal("clampPrior must keep (0,1)")
	}
	if clampPrior(0.5) != 0.5 {
		t.Fatal("interior priors unchanged")
	}
}
