package core

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// ContractionRate estimates the spectral radius ρ of the propagation
// iteration matrix D⁻¹W (restricted to the unlabeled block). The harmonic
// iteration f ← D⁻¹(B + W f) converges geometrically at rate ρ < 1 whenever
// every unlabeled component touches a labeled node; the paper's proof
// controls the same quantity through the "tiny elements" bound
// ‖D22⁻¹W22‖ ≤ mM/(n h^d).
//
// The estimate uses power iteration; D⁻¹W is nonnegative, so the iteration
// converges to the Perron root.
func ContractionRate(sys *PropagationSystem, maxIter int) (float64, error) {
	if sys == nil || sys.M() == 0 {
		return 0, fmt.Errorf("core: empty system: %w", ErrParam)
	}
	if maxIter <= 0 {
		maxIter = 5000
	}
	m := sys.M()
	x := mat.Ones(m)
	mat.ScaleVec(1/mat.Norm2(x), x)
	wx := make([]float64, m)
	var rho float64
	for it := 0; it < maxIter; it++ {
		if err := sys.W.MulVecTo(wx, x); err != nil {
			return 0, err
		}
		for i := range wx {
			wx[i] /= sys.D[i]
		}
		nrm := mat.Norm2(wx)
		if nrm == 0 {
			return 0, nil // no unlabeled-unlabeled mass at all
		}
		for i := range x {
			x[i] = wx[i] / nrm
		}
		if it > 5 && math.Abs(nrm-rho) <= 1e-12*math.Max(1, nrm) {
			return nrm, nil
		}
		rho = nrm
	}
	return rho, nil
}

// PredictedSupersteps returns the number of propagation supersteps needed
// to reduce the error by the factor tol at contraction rate rho, i.e.
// ⌈log(tol)/log(rho)⌉. It returns 1 for rho ≤ 0 and math.MaxInt for
// rho ≥ 1.
func PredictedSupersteps(rho, tol float64) int {
	if tol <= 0 || tol >= 1 {
		return 1
	}
	if rho <= 0 {
		return 1
	}
	if rho >= 1 {
		return math.MaxInt
	}
	return int(math.Ceil(math.Log(tol) / math.Log(rho)))
}
