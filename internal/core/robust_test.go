package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/randx"
	"repro/internal/sparse"
)

// gaussProblem builds a fully connected Gaussian-graph problem over random
// points: nLab labeled, nUnl unlabeled.
func gaussProblem(t *testing.T, seed int64, nLab, nUnl int) *Problem {
	t.Helper()
	rng := randx.New(seed)
	x := make([][]float64, nLab+nUnl)
	for i := range x {
		x[i] = []float64{rng.Norm(), rng.Norm()}
	}
	b, err := graph.NewBuilder(kernel.MustNew(kernel.Gaussian, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	g, err := b.Build(x)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, nLab)
	for i := range y {
		y[i] = rng.Bernoulli(0.5)
	}
	p, err := NewProblemLabeledFirst(g, y)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProbeHealthWellConditioned(t *testing.T) {
	p := gaussProblem(t, 3, 10, 20)
	sys, err := buildHardSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	h, err := ProbeHealth(sys.a)
	if err != nil {
		t.Fatal(err)
	}
	if h.Unknowns != 20 {
		t.Fatalf("unknowns = %d", h.Unknowns)
	}
	if h.ZeroDiagonal {
		t.Fatal("well-conditioned system flagged zero diagonal")
	}
	if h.JacobiSpectralRadius >= 1 {
		t.Fatalf("spectral radius %v >= 1 on an SPD hard system", h.JacobiSpectralRadius)
	}
	if math.IsInf(h.ConditionProxy, 1) || h.ConditionProxy < 1 {
		t.Fatalf("condition proxy %v implausible", h.ConditionProxy)
	}
	// D22 − W22 keeps the labeled mass on the diagonal, so it is strictly
	// diagonally dominant on this fully connected graph.
	if h.MinDiagDominance <= 1 {
		t.Fatalf("min dominance %v, want > 1", h.MinDiagDominance)
	}
}

func TestProbeHealthDeterministic(t *testing.T) {
	p := gaussProblem(t, 5, 8, 25)
	sys, err := buildHardSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := ProbeHealth(sys.a)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := ProbeHealth(sys.a)
	if err != nil {
		t.Fatal(err)
	}
	if h1.JacobiSpectralRadius != h2.JacobiSpectralRadius ||
		h1.ConditionProxy != h2.ConditionProxy ||
		h1.MinDiagDominance != h2.MinDiagDominance {
		t.Fatalf("probe not deterministic: %+v vs %+v", h1, h2)
	}
}

func TestProbeHealthZeroDiagonal(t *testing.T) {
	coo := sparse.NewCOO(3, 3)
	_ = coo.Add(0, 0, 1)
	_ = coo.Add(1, 1, 2)
	// Row 2 is entirely empty: an isolated node's system row.
	h, err := ProbeHealth(coo.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	if !h.ZeroDiagonal {
		t.Fatal("zero diagonal not flagged")
	}
	if len(h.Warnings) == 0 {
		t.Fatal("no warning raised for singular diagonal")
	}
	if !math.IsInf(h.ConditionProxy, 1) {
		t.Fatalf("condition proxy %v, want +Inf", h.ConditionProxy)
	}
}

func TestPlanAutoIsPureAndSizeGated(t *testing.T) {
	small, reason := planAuto(nil, 100, 2048)
	if len(small) != 2 || small[0] != MethodCholesky || small[1] != MethodLU {
		t.Fatalf("small plan = %v (%s)", small, reason)
	}
	healthy := &Health{JacobiSpectralRadius: 0.9, ConditionProxy: 19}
	large, _ := planAuto(healthy, 5000, 2048)
	if len(large) != 3 || large[0] != MethodCG {
		t.Fatalf("large plan = %v", large)
	}
	sick := &Health{JacobiSpectralRadius: 1.0, ConditionProxy: math.Inf(1)}
	demoted, _ := planAuto(sick, 5000, 2048)
	if demoted[0] == MethodCG {
		t.Fatalf("near-singular system still plans CG first: %v", demoted)
	}
	// Pure: same inputs, same plan.
	again, _ := planAuto(healthy, 5000, 2048)
	for i := range large {
		if large[i] != again[i] {
			t.Fatal("plan not reproducible")
		}
	}
}

// TestAutoFallbackChainCompletes forces the CG head of the chain to fail
// (one-iteration budget at tight tolerance) and checks the solve still
// completes via the dense fallback, with the escalation recorded.
func TestAutoFallbackChainCompletes(t *testing.T) {
	p := gaussProblem(t, 7, 10, 40)
	// Jacobi keeps the one-iteration budget insufficient; IC(0) is exact on
	// this dense-pattern system and would converge immediately.
	sol, err := SolveHard(p, WithAutoCutoff(1), WithMaxIter(1), WithTolerance(1e-14),
		WithPreconditioner(PrecondJacobi))
	if err != nil {
		t.Fatalf("chain did not complete: %v", err)
	}
	if sol.Method != MethodCholesky {
		t.Fatalf("chain settled on %v, want cholesky after CG failure", sol.Method)
	}
	tr := sol.Trace
	if tr == nil {
		t.Fatal("auto solve returned no trace")
	}
	if len(tr.Plan) != 3 || tr.Plan[0] != MethodCG {
		t.Fatalf("plan = %v", tr.Plan)
	}
	if len(tr.Fallbacks) != 1 || tr.Fallbacks[0].From != MethodCG || tr.Fallbacks[0].To != MethodCholesky {
		t.Fatalf("fallbacks = %+v", tr.Fallbacks)
	}
	if len(tr.Attempts) != 2 || tr.Attempts[0].Err == "" || tr.Attempts[1].Err != "" {
		t.Fatalf("attempts = %+v", tr.Attempts)
	}
	if tr.Health == nil {
		t.Fatal("large-plan auto solve carried no health probe")
	}

	// The fallback answer must match the directly chosen dense backend.
	want, err := SolveHard(p, WithMethod(MethodCholesky))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.FUnlabeled {
		if sol.FUnlabeled[i] != want.FUnlabeled[i] {
			t.Fatalf("fallback solution differs from cholesky at %d", i)
		}
	}
}

// TestAutoSmallSystemMatchesLegacyDense pins the compatibility contract:
// below the cutoff, MethodAuto is still Cholesky-with-LU-fallback, bitwise.
func TestAutoSmallSystemMatchesLegacyDense(t *testing.T) {
	p := gaussProblem(t, 9, 12, 30)
	auto, err := SolveHard(p)
	if err != nil {
		t.Fatal(err)
	}
	chol, err := SolveHard(p, WithMethod(MethodCholesky))
	if err != nil {
		t.Fatal(err)
	}
	if auto.Method != MethodCholesky {
		t.Fatalf("small auto chose %v", auto.Method)
	}
	for i := range chol.FUnlabeled {
		if auto.FUnlabeled[i] != chol.FUnlabeled[i] {
			t.Fatalf("auto differs from cholesky at %d", i)
		}
	}
}

// TestFallbackDecisionDeterministicAcrossWorkers reruns an auto solve that
// starts at CG under several worker counts: the plan, the chosen backend,
// and the scores must be identical.
func TestFallbackDecisionDeterministicAcrossWorkers(t *testing.T) {
	p := gaussProblem(t, 21, 15, 60)
	var ref *Solution
	for _, w := range []int{1, 2, 4} {
		sol, err := SolveHard(p, WithAutoCutoff(1), WithWorkers(w))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if sol.Trace == nil || len(sol.Trace.Plan) == 0 {
			t.Fatalf("workers=%d: missing trace", w)
		}
		if ref == nil {
			ref = sol
			continue
		}
		if sol.Method != ref.Method {
			t.Fatalf("workers=%d chose %v, workers=1 chose %v", w, sol.Method, ref.Method)
		}
		if len(sol.Trace.Fallbacks) != len(ref.Trace.Fallbacks) {
			t.Fatalf("workers=%d fallback count differs", w)
		}
		for i := range ref.FUnlabeled {
			if sol.FUnlabeled[i] != ref.FUnlabeled[i] {
				t.Fatalf("workers=%d: scores differ at %d", w, i)
			}
		}
	}
}

func TestSolveCancellation(t *testing.T) {
	p := gaussProblem(t, 31, 10, 40)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, m := range []Method{MethodAuto, MethodCG, MethodPropagation} {
		if _, err := SolveHard(p, WithMethod(m), WithContext(ctx)); !errors.Is(err, context.Canceled) {
			t.Fatalf("hard %v: err = %v, want context.Canceled", m, err)
		}
	}
	if _, err := SolveSoft(p, 0.5, WithContext(ctx)); !errors.Is(err, context.Canceled) {
		t.Fatalf("soft: err = %v, want context.Canceled", err)
	}
	if _, err := SoftSweep(p, []float64{0.1, 1}, WithContext(ctx)); !errors.Is(err, context.Canceled) {
		t.Fatalf("sweep: err = %v, want context.Canceled", err)
	}
}

// TestCancellationIsNotEscalated checks a canceled context aborts the auto
// chain instead of falling back to the next backend.
func TestCancellationIsNotEscalated(t *testing.T) {
	p := gaussProblem(t, 33, 10, 50)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SolveHard(p, WithAutoCutoff(1), WithContext(ctx))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestWithHealthProbeOnSmallAuto(t *testing.T) {
	p := gaussProblem(t, 35, 8, 20)
	sol, err := SolveHard(p, WithHealthProbe())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Trace == nil || sol.Trace.Health == nil {
		t.Fatal("WithHealthProbe did not attach a probe to the trace")
	}
	bare, err := SolveHard(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bare.FUnlabeled {
		if sol.FUnlabeled[i] != bare.FUnlabeled[i] {
			t.Fatal("probing changed the solution")
		}
	}
}
