package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/mat"
	"repro/internal/randx"
	"repro/internal/sparse"
)

func TestMethodString(t *testing.T) {
	tests := []struct {
		m    Method
		want string
	}{
		{MethodAuto, "auto"},
		{MethodCholesky, "cholesky"},
		{MethodLU, "lu"},
		{MethodCG, "cg"},
		{MethodPropagation, "propagation"},
		{Method(42), "Method(42)"},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

// TestHardChainInterpolation: on a unit chain with endpoints labeled 0 and 1,
// the harmonic solution is linear interpolation — the classic oracle for the
// hard criterion.
func TestHardChainInterpolation(t *testing.T) {
	g := chainGraph(t, 5)
	p, err := NewProblem(g, []int{0, 4}, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveHard(p)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if !mat.VecEqual(sol.F, want, 1e-10) {
		t.Fatalf("F = %v, want %v", sol.F, want)
	}
	if !mat.VecEqual(sol.FUnlabeled, []float64{0.25, 0.5, 0.75}, 1e-10) {
		t.Fatalf("FUnlabeled = %v", sol.FUnlabeled)
	}
	if sol.Lambda != 0 {
		t.Fatal("hard solution must report λ=0")
	}
}

// TestToyExampleSectionIII reproduces the paper's Section III toy example:
// identical inputs give w ≡ 1, and the hard solution is exactly the labeled
// mean on every unlabeled node and Y_i on labeled nodes.
func TestToyExampleSectionIII(t *testing.T) {
	const n, m = 4, 3
	// All points identical ⇒ RBF weights all 1 (self-loops included as in
	// the paper's W; they cancel in D−W).
	coo := sparse.NewCOO(n+m, n+m)
	for i := 0; i < n+m; i++ {
		for j := 0; j < n+m; j++ {
			_ = coo.Add(i, j, 1)
		}
	}
	g, err := graph.FromWeights(coo.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	y := []float64{1, 0, 1, 1}
	p, err := NewProblemLabeledFirst(g, y)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveHard(p)
	if err != nil {
		t.Fatal(err)
	}
	mean := 3.0 / 4.0
	for k, v := range sol.FUnlabeled {
		if math.Abs(v-mean) > 1e-12 {
			t.Fatalf("unlabeled %d: f = %v, want ȳ = %v", k, v, mean)
		}
	}
	for i := 0; i < n; i++ {
		if sol.F[i] != y[i] {
			t.Fatalf("labeled %d: f = %v, want %v", i, sol.F[i], y[i])
		}
	}
}

// TestToyExampleInverseFormula verifies the paper's closed form for
// (D22−W22)⁻¹ in the toy example: diagonal (n+1)/(n(m+n)),
// off-diagonal 1/(n(m+n)).
func TestToyExampleInverseFormula(t *testing.T) {
	const n, m = 5, 4
	total := n + m
	// D22 − W22 with all-ones weights: (m+n-1) on diag, -1 off-diag (m×m).
	a := mat.NewDense(m, m)
	a.Apply(func(i, j int, _ float64) float64 {
		if i == j {
			return float64(total - 1)
		}
		return -1
	})
	inv, err := mat.Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	diagWant := float64(n+1) / float64(n*total)
	offWant := 1.0 / float64(n*total)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			want := offWant
			if i == j {
				want = diagWant
			}
			if math.Abs(inv.At(i, j)-want) > 1e-12 {
				t.Fatalf("inv[%d,%d] = %v, want %v", i, j, inv.At(i, j), want)
			}
		}
	}
}

// TestHardMethodsAgree: every backend must produce the same solution.
func TestHardMethodsAgree(t *testing.T) {
	rng := randx.New(101)
	pts := make([]float64, 15)
	for i := range pts {
		pts[i] = rng.Norm()
	}
	g := fullGraph(t, pts, 1)
	y := make([]float64, 6)
	for i := range y {
		y[i] = rng.Bernoulli(0.5)
	}
	p, err := NewProblemLabeledFirst(g, y)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := SolveHard(p, WithMethod(MethodLU))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{MethodAuto, MethodCholesky, MethodCG, MethodPropagation} {
		sol, err := SolveHard(p, WithMethod(m), WithTolerance(1e-12))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !mat.VecEqual(sol.FUnlabeled, ref.FUnlabeled, 1e-6) {
			t.Fatalf("%v disagrees with LU: %v vs %v", m, sol.FUnlabeled, ref.FUnlabeled)
		}
	}
}

func TestHardUnknownMethod(t *testing.T) {
	g := chainGraph(t, 3)
	p, _ := NewProblem(g, []int{0}, []float64{1})
	if _, err := SolveHard(p, WithMethod(Method(77))); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
}

// TestHardMaximumPrinciple: harmonic solutions obey min(Y) ≤ f ≤ max(Y).
func TestHardMaximumPrinciple(t *testing.T) {
	rng := randx.New(103)
	for trial := 0; trial < 10; trial++ {
		pts := make([]float64, 12)
		for i := range pts {
			pts[i] = rng.Norm() * 2
		}
		g := fullGraph(t, pts, 0.8)
		y := make([]float64, 5)
		for i := range y {
			y[i] = rng.Float64()*4 - 2
		}
		p, err := NewProblemLabeledFirst(g, y)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := SolveHard(p)
		if err != nil {
			t.Fatal(err)
		}
		ymin, _ := mat.MinVec(y)
		ymax, _ := mat.MaxVec(y)
		for k, v := range sol.FUnlabeled {
			if v < ymin-1e-9 || v > ymax+1e-9 {
				t.Fatalf("trial %d: f[%d] = %v outside [%v,%v]", trial, k, v, ymin, ymax)
			}
		}
	}
}

// TestHardHarmonicProperty: at every unlabeled node the solution equals the
// weighted average of its neighbours (the harmonic property, which is the
// first-order condition of Eq. 1).
func TestHardHarmonicProperty(t *testing.T) {
	rng := randx.New(107)
	pts := make([]float64, 10)
	for i := range pts {
		pts[i] = rng.Norm()
	}
	g := fullGraph(t, pts, 1.2)
	y := []float64{1, 0, 1}
	p, err := NewProblemLabeledFirst(g, y)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveHard(p)
	if err != nil {
		t.Fatal(err)
	}
	w := g.Weights()
	for _, u := range p.Unlabeled() {
		cols, vals := w.RowNNZ(u)
		var num, den float64
		for c, j := range cols {
			if j == u {
				continue
			}
			num += vals[c] * sol.F[j]
			den += vals[c]
		}
		if math.Abs(sol.F[u]-num/den) > 1e-9 {
			t.Fatalf("node %d not harmonic: f=%v, avg=%v", u, sol.F[u], num/den)
		}
	}
}

// TestHardSingleLabeledNodeConstant: with one labeled node on a connected
// graph, the harmonic solution is constant equal to that label.
func TestHardSingleLabeledNodeConstant(t *testing.T) {
	g := chainGraph(t, 6)
	p, err := NewProblem(g, []int{2}, []float64{0.7})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveHard(p)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range sol.F {
		if math.Abs(v-0.7) > 1e-10 {
			t.Fatalf("f[%d] = %v, want 0.7", i, v)
		}
	}
}

// TestHardPermutationInvariance: relabeling node order must not change the
// prediction attached to each point.
func TestHardPermutationInvariance(t *testing.T) {
	pts := []float64{0, 0.5, 1, 1.5, 2, 2.5}
	g := fullGraph(t, pts, 1)
	p1, err := NewProblem(g, []int{0, 5}, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := SolveHard(p1)
	if err != nil {
		t.Fatal(err)
	}
	// Same geometry with labeled set given in reverse order.
	p2, err := NewProblem(g, []int{5, 0}, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := SolveHard(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.VecEqual(s1.F, s2.F, 1e-12) {
		t.Fatalf("label order changed the solution: %v vs %v", s1.F, s2.F)
	}
}

// TestHardDisconnectedComponentsSolveIndependently: with two connected
// components, each labeled, predictions stay within each component.
func TestHardDisconnectedComponentsSolveIndependently(t *testing.T) {
	coo := sparse.NewCOO(6, 6)
	_ = coo.AddSym(0, 1, 1)
	_ = coo.AddSym(1, 2, 1)
	_ = coo.AddSym(3, 4, 1)
	_ = coo.AddSym(4, 5, 1)
	g, err := graph.FromWeights(coo.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProblem(g, []int{0, 3}, []float64{1, -1})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveHard(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{1, 2} {
		if math.Abs(sol.F[i]-1) > 1e-10 {
			t.Fatalf("component A node %d = %v, want 1", i, sol.F[i])
		}
	}
	for _, i := range []int{4, 5} {
		if math.Abs(sol.F[i]+1) > 1e-10 {
			t.Fatalf("component B node %d = %v, want -1", i, sol.F[i])
		}
	}
}

func TestPropagationReportsIterations(t *testing.T) {
	g := chainGraph(t, 8)
	p, _ := NewProblem(g, []int{0, 7}, []float64{0, 1})
	sol, err := SolveHard(p, WithMethod(MethodPropagation), WithTolerance(1e-11))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Iterations <= 0 {
		t.Fatal("propagation must report iterations")
	}
	if sol.Method != MethodPropagation {
		t.Fatal("method not recorded")
	}
}

func TestPropagationMaxIterExceeded(t *testing.T) {
	g := chainGraph(t, 30)
	p, _ := NewProblem(g, []int{0, 29}, []float64{0, 1})
	if _, err := SolveHard(p, WithMethod(MethodPropagation), WithMaxIter(2), WithTolerance(1e-14)); !errors.Is(err, ErrSolver) {
		t.Fatalf("want ErrSolver on iteration cap, got %v", err)
	}
}

// TestHardSelfLoopInvariance: adding self-loops to W must not change the
// hard solution (they cancel in D22−W22 and add equally to b's denominator
// structure).
func TestHardSelfLoopInvariance(t *testing.T) {
	pts := []float64{0, 1, 2, 3, 4}
	x := make([][]float64, len(pts))
	for i, v := range pts {
		x[i] = []float64{v}
	}
	kb, _ := graph.NewBuilder(kernelGaussian(t, 1))
	kbLoops, _ := graph.NewBuilder(kernelGaussian(t, 1), graph.WithSelfLoops())
	g1, _ := kb.Build(x)
	g2, _ := kbLoops.Build(x)
	y := []float64{0, 1}
	p1, _ := NewProblemLabeledFirst(g1, y)
	p2, _ := NewProblemLabeledFirst(g2, y)
	s1, err := SolveHard(p1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := SolveHard(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.VecEqual(s1.FUnlabeled, s2.FUnlabeled, 1e-10) {
		t.Fatalf("self-loops changed the hard solution: %v vs %v", s1.FUnlabeled, s2.FUnlabeled)
	}
}
