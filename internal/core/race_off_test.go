//go:build !race

package core

// raceEnabled reports whether this binary was built with the race detector.
const raceEnabled = false
