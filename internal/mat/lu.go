package mat

import "math"

// LU is an LU factorization with partial (row) pivoting: P*A = L*U, with L
// unit lower triangular and U upper triangular, packed into a single matrix.
type LU struct {
	lu   *Dense
	piv  []int
	sign float64 // determinant sign from row swaps
}

// NewLU factors the square matrix a. It returns ErrSingular if a zero pivot
// is encountered (the factorization is then unusable for solving).
func NewLU(a *Dense) (*LU, error) {
	if !a.IsSquare() {
		return nil, ErrSquare
	}
	n := a.rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1.0
	for k := 0; k < n; k++ {
		// Select the pivot row by maximum absolute value in column k.
		p, pmax := k, math.Abs(lu.data[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.data[i*n+k]); a > pmax {
				p, pmax = i, a
			}
		}
		if pmax == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rk := lu.data[k*n : (k+1)*n]
			rp := lu.data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivVal := lu.data[k*n+k]
		for i := k + 1; i < n; i++ {
			m := lu.data[i*n+k] / pivVal
			lu.data[i*n+k] = m
			if m == 0 {
				continue
			}
			ri := lu.data[i*n : (i+1)*n]
			rk := lu.data[k*n : (k+1)*n]
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// Order returns the dimension of the factored matrix.
func (f *LU) Order() int { return f.lu.rows }

// Solve solves A x = b for a single right-hand side.
func (f *LU) Solve(b []float64) ([]float64, error) {
	x := make([]float64, f.lu.rows)
	if err := f.SolveTo(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveTo solves A x = b into dst without allocating. dst must not alias b:
// the pivot permutation reads b while dst is being written.
func (f *LU) SolveTo(dst, b []float64) error {
	n := f.lu.rows
	if len(b) != n || len(dst) != n {
		return ErrShape
	}
	x := dst
	// Apply the permutation: x = P b.
	for i, p := range f.piv {
		x[i] = b[p]
	}
	// Forward substitution with unit-diagonal L.
	for i := 1; i < n; i++ {
		row := f.lu.data[i*n : i*n+i]
		x[i] -= Dot(row, x[:i])
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.data[i*n : (i+1)*n]
		s := x[i] - Dot(row[i+1:], x[i+1:])
		x[i] = s / row[i]
	}
	return nil
}

// SolveMatrix solves A X = B column by column.
func (f *LU) SolveMatrix(b *Dense) (*Dense, error) {
	n := f.lu.rows
	if b.rows != n {
		return nil, ErrShape
	}
	out := NewDense(n, b.cols)
	col := make([]float64, n)
	for j := 0; j < b.cols; j++ {
		for i := 0; i < n; i++ {
			col[i] = b.data[i*b.cols+j]
		}
		x, err := f.Solve(col)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			out.data[i*out.cols+j] = x[i]
		}
	}
	return out, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	n := f.lu.rows
	d := f.sign
	for i := 0; i < n; i++ {
		d *= f.lu.data[i*n+i]
	}
	return d
}

// Inverse returns A⁻¹.
func (f *LU) Inverse() (*Dense, error) {
	return f.SolveMatrix(Eye(f.lu.rows))
}

// SolveLU is a convenience wrapper: factor a and solve a x = b.
func SolveLU(a *Dense, b []float64) ([]float64, error) {
	f, err := NewLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Inverse returns a⁻¹ via LU with partial pivoting.
func Inverse(a *Dense) (*Dense, error) {
	f, err := NewLU(a)
	if err != nil {
		return nil, err
	}
	return f.Inverse()
}

// Cond1 returns the 1-norm condition number κ₁(a) = ‖a‖₁ ‖a⁻¹‖₁ computed via
// an explicit inverse. Intended for diagnostics on the moderate sizes used in
// the experiments, not for very large systems.
func Cond1(a *Dense) (float64, error) {
	inv, err := Inverse(a)
	if err != nil {
		return math.Inf(1), err
	}
	return a.Norm1() * inv.Norm1(), nil
}
