// Package mat implements the dense and decompositional linear algebra used
// throughout the reproduction: a row-major dense matrix type, BLAS-style
// primitives, LU / Cholesky / QR factorizations, and a symmetric eigensolver.
//
// The package is deliberately small and stdlib-only. It favours clarity and
// numerical robustness (partial pivoting, Householder reflections, scaled
// norms) over peak throughput; matrices in the paper's experiments are at
// most a few thousand rows.
//
// All routines return errors rather than panicking, except for element
// accessors (At/Set), which panic on out-of-range indices like the built-in
// slice indexing they wrap.
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense matrix of float64 values.
//
// The zero value is an empty (0x0) matrix; use NewDense or NewDenseData to
// create a sized one.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zeroed r-by-c matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(ErrIndex)
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewDenseData returns an r-by-c matrix backed by a copy of data, which must
// hold exactly r*c values in row-major order.
func NewDenseData(r, c int, data []float64) (*Dense, error) {
	if len(data) != r*c {
		return nil, fmt.Errorf("mat: NewDenseData needs %d values, got %d: %w", r*c, len(data), ErrShape)
	}
	d := make([]float64, len(data))
	copy(d, data)
	return &Dense{rows: r, cols: c, data: d}, nil
}

// Eye returns the n-by-n identity matrix.
func Eye(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Diag returns a square matrix with v on the main diagonal.
func Diag(v []float64) *Dense {
	n := len(v)
	m := NewDense(n, n)
	for i, x := range v {
		m.data[i*n+i] = x
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// Dims returns the row and column counts.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// IsSquare reports whether the matrix is square.
func (m *Dense) IsSquare() bool { return m.rows == m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(ErrIndex)
	}
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(ErrIndex)
	}
	m.data[i*m.cols+j] = v
}

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(ErrIndex)
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(ErrIndex)
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow copies v into row i. len(v) must equal Cols.
func (m *Dense) SetRow(i int, v []float64) {
	if i < 0 || i >= m.rows || len(v) != m.cols {
		panic(ErrIndex)
	}
	copy(m.data[i*m.cols:(i+1)*m.cols], v)
}

// RawRow returns row i as a slice aliasing the matrix storage. Mutating the
// returned slice mutates the matrix. Intended for hot loops; most callers
// should prefer Row.
func (m *Dense) RawRow(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(ErrIndex)
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	d := make([]float64, len(m.data))
	copy(d, m.data)
	return &Dense{rows: m.rows, cols: m.cols, data: d}
}

// CopyFrom overwrites m with the contents of src, which must have the same
// dimensions.
func (m *Dense) CopyFrom(src *Dense) error {
	if m.rows != src.rows || m.cols != src.cols {
		return ErrShape
	}
	copy(m.data, src.data)
	return nil
}

// T returns a newly allocated transpose.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			t.data[j*t.cols+i] = v
		}
	}
	return t
}

// Submatrix returns a copy of the block with rows [r0,r1) and columns
// [c0,c1).
func (m *Dense) Submatrix(r0, r1, c0, c1 int) (*Dense, error) {
	if r0 < 0 || c0 < 0 || r1 > m.rows || c1 > m.cols || r0 > r1 || c0 > c1 {
		return nil, ErrIndex
	}
	s := NewDense(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(s.data[(i-r0)*s.cols:(i-r0+1)*s.cols], m.data[i*m.cols+c0:i*m.cols+c1])
	}
	return s, nil
}

// Fill sets every element to v.
func (m *Dense) Fill(v float64) {
	for i := range m.data {
		m.data[i] = v
	}
}

// Apply replaces each element x at (i, j) with fn(i, j, x).
func (m *Dense) Apply(fn func(i, j int, v float64) float64) {
	for i := 0; i < m.rows; i++ {
		base := i * m.cols
		for j := 0; j < m.cols; j++ {
			m.data[base+j] = fn(i, j, m.data[base+j])
		}
	}
}

// DiagVec returns a copy of the main diagonal.
func (m *Dense) DiagVec() []float64 {
	n := m.rows
	if m.cols < n {
		n = m.cols
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = m.data[i*m.cols+i]
	}
	return out
}

// Trace returns the sum of diagonal elements of a square matrix.
func (m *Dense) Trace() (float64, error) {
	if !m.IsSquare() {
		return 0, ErrSquare
	}
	var t float64
	for i := 0; i < m.rows; i++ {
		t += m.data[i*m.cols+i]
	}
	return t, nil
}

// MaxAbs returns max_ij |m_ij|; zero for an empty matrix.
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Norm1 returns the induced 1-norm (maximum absolute column sum).
func (m *Dense) Norm1() float64 {
	sums := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		base := i * m.cols
		for j := 0; j < m.cols; j++ {
			sums[j] += math.Abs(m.data[base+j])
		}
	}
	var mx float64
	for _, s := range sums {
		if s > mx {
			mx = s
		}
	}
	return mx
}

// NormInf returns the induced infinity-norm (maximum absolute row sum).
func (m *Dense) NormInf() float64 {
	var mx float64
	for i := 0; i < m.rows; i++ {
		var s float64
		for _, v := range m.data[i*m.cols : (i+1)*m.cols] {
			s += math.Abs(v)
		}
		if s > mx {
			mx = s
		}
	}
	return mx
}

// NormFrob returns the Frobenius norm.
func (m *Dense) NormFrob() float64 {
	var ss float64
	for _, v := range m.data {
		ss += v * v
	}
	return math.Sqrt(ss)
}

// IsSymmetric reports whether |m_ij - m_ji| <= tol for all i, j.
func (m *Dense) IsSymmetric(tol float64) bool {
	if !m.IsSquare() {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.data[i*m.cols+j]-m.data[j*m.cols+i]) > tol {
				return false
			}
		}
	}
	return true
}

// Equal reports whether m and b have the same shape and |m_ij - b_ij| <= tol
// everywhere.
func (m *Dense) Equal(b *Dense, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging; rows are truncated past 8 columns.
func (m *Dense) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Dense(%dx%d)", m.rows, m.cols)
	maxR, maxC := m.rows, m.cols
	const lim = 8
	if maxR > lim {
		maxR = lim
	}
	if maxC > lim {
		maxC = lim
	}
	for i := 0; i < maxR; i++ {
		sb.WriteString("\n[")
		for j := 0; j < maxC; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%.4g", m.data[i*m.cols+j])
		}
		if maxC < m.cols {
			sb.WriteString(" ...")
		}
		sb.WriteByte(']')
	}
	if maxR < m.rows {
		sb.WriteString("\n...")
	}
	return sb.String()
}
