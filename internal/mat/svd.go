package mat

import (
	"math"
	"sort"
)

// SVD is a thin singular value decomposition A = U diag(σ) Vᵀ of an m-by-n
// matrix with m >= n: U is m-by-n with orthonormal columns, V is n-by-n
// orthogonal, and the singular values are sorted descending.
type SVD struct {
	U      *Dense
	V      *Dense
	Values []float64
}

// NewSVD computes the thin SVD by the one-sided Jacobi method: columns of a
// working copy of A are orthogonalized by plane rotations; their final
// norms are the singular values. Numerically robust for the moderate sizes
// used here (m up to a few thousand, n up to a few hundred).
func NewSVD(a *Dense) (*SVD, error) {
	m, n := a.Dims()
	if m < n {
		return nil, ErrShape
	}
	if n == 0 {
		return nil, ErrShape
	}
	w := a.Clone()
	v := Eye(n)

	const maxSweeps = 60
	tol := 1e-14
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				// Gram entries for columns p and q.
				var app, aqq, apq float64
				for i := 0; i < m; i++ {
					cp := w.data[i*n+p]
					cq := w.data[i*n+q]
					app += cp * cp
					aqq += cq * cq
					apq += cp * cq
				}
				if math.Abs(apq) <= tol*math.Sqrt(app*aqq) {
					continue
				}
				off += math.Abs(apq)
				// Jacobi rotation zeroing the (p,q) Gram entry.
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				for i := 0; i < m; i++ {
					cp := w.data[i*n+p]
					cq := w.data[i*n+q]
					w.data[i*n+p] = c*cp - s*cq
					w.data[i*n+q] = s*cp + c*cq
				}
				for i := 0; i < n; i++ {
					vp := v.data[i*n+p]
					vq := v.data[i*n+q]
					v.data[i*n+p] = c*vp - s*vq
					v.data[i*n+q] = s*vp + c*vq
				}
			}
		}
		if off == 0 {
			break
		}
	}

	// Column norms are the singular values; normalize U's columns.
	type col struct {
		sigma float64
		idx   int
	}
	cols := make([]col, n)
	for j := 0; j < n; j++ {
		var ss float64
		for i := 0; i < m; i++ {
			cv := w.data[i*n+j]
			ss += cv * cv
		}
		cols[j] = col{sigma: math.Sqrt(ss), idx: j}
	}
	sort.Slice(cols, func(a, b int) bool { return cols[a].sigma > cols[b].sigma })

	u := NewDense(m, n)
	vOut := NewDense(n, n)
	values := make([]float64, n)
	for k, cl := range cols {
		values[k] = cl.sigma
		if cl.sigma > 0 {
			inv := 1 / cl.sigma
			for i := 0; i < m; i++ {
				u.data[i*n+k] = w.data[i*n+cl.idx] * inv
			}
		}
		for i := 0; i < n; i++ {
			vOut.data[i*n+k] = v.data[i*n+cl.idx]
		}
	}
	return &SVD{U: u, V: vOut, Values: values}, nil
}

// Rank returns the numerical rank at the given relative tolerance
// (singular values below tol·σ₁ count as zero; tol defaults to 1e-12).
func (s *SVD) Rank(tol float64) int {
	if len(s.Values) == 0 || s.Values[0] == 0 {
		return 0
	}
	if tol <= 0 {
		tol = 1e-12
	}
	thr := tol * s.Values[0]
	r := 0
	for _, v := range s.Values {
		if v > thr {
			r++
		}
	}
	return r
}

// Cond2 returns the 2-norm condition number σ₁/σₙ (infinity when rank
// deficient).
func (s *SVD) Cond2() float64 {
	n := len(s.Values)
	if n == 0 {
		return math.Inf(1)
	}
	if s.Values[n-1] == 0 {
		return math.Inf(1)
	}
	return s.Values[0] / s.Values[n-1]
}

// PCA projects the rows of x (mean-centered internally) onto the top-k
// principal components, returning the n-by-k score matrix and the fraction
// of variance captured by each component.
func PCA(x *Dense, k int) (*Dense, []float64, error) {
	n, d := x.Dims()
	if k < 1 || k > d || n < 2 {
		return nil, nil, ErrShape
	}
	// Center columns.
	centered := x.Clone()
	for j := 0; j < d; j++ {
		var mean float64
		for i := 0; i < n; i++ {
			mean += centered.At(i, j)
		}
		mean /= float64(n)
		for i := 0; i < n; i++ {
			centered.Set(i, j, centered.At(i, j)-mean)
		}
	}
	var (
		svd *SVD
		err error
	)
	if n >= d {
		svd, err = NewSVD(centered)
		if err != nil {
			return nil, nil, err
		}
	} else {
		// Wide matrix: decompose the transpose and swap factors.
		st, terr := NewSVD(centered.T())
		if terr != nil {
			return nil, nil, terr
		}
		svd = &SVD{U: st.V, V: st.U, Values: st.Values}
	}
	// Scores = U Σ restricted to k components.
	scores := NewDense(n, k)
	for i := 0; i < n; i++ {
		for c := 0; c < k; c++ {
			scores.Set(i, c, svd.U.At(i, c)*svd.Values[c])
		}
	}
	var total float64
	for _, v := range svd.Values {
		total += v * v
	}
	frac := make([]float64, k)
	if total > 0 {
		for c := 0; c < k; c++ {
			frac[c] = svd.Values[c] * svd.Values[c] / total
		}
	}
	return scores, frac, nil
}
