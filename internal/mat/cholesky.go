package mat

import "math"

// Cholesky is the factorization A = L Lᵀ of a symmetric positive definite
// matrix, with L lower triangular.
type Cholesky struct {
	l *Dense
}

// NewCholesky factors the symmetric positive definite matrix a. Only the
// lower triangle of a is read. ErrNotPositiveDefinite is returned when a
// non-positive pivot arises.
func NewCholesky(a *Dense) (*Cholesky, error) {
	if !a.IsSquare() {
		return nil, ErrSquare
	}
	n := a.rows
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		// Diagonal entry.
		d := a.data[j*n+j]
		lrow := l.data[j*n : j*n+j]
		d -= Dot(lrow, lrow)
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		ljj := math.Sqrt(d)
		l.data[j*n+j] = ljj
		// Column below the diagonal.
		for i := j + 1; i < n; i++ {
			s := a.data[i*n+j]
			s -= Dot(l.data[i*n:i*n+j], lrow)
			l.data[i*n+j] = s / ljj
		}
	}
	return &Cholesky{l: l}, nil
}

// Order returns the dimension of the factored matrix.
func (c *Cholesky) Order() int { return c.l.rows }

// L returns a copy of the lower-triangular factor.
func (c *Cholesky) L() *Dense { return c.l.Clone() }

// Solve solves A x = b.
func (c *Cholesky) Solve(b []float64) ([]float64, error) {
	x := make([]float64, c.l.rows)
	if err := c.SolveTo(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveTo solves A x = b into dst without allocating. dst may alias b (the
// substitution runs in place). Multi-RHS loops reuse one dst across
// columns.
func (c *Cholesky) SolveTo(dst, b []float64) error {
	n := c.l.rows
	if len(b) != n || len(dst) != n {
		return ErrShape
	}
	x := dst
	copy(x, b)
	// Forward: L y = b.
	for i := 0; i < n; i++ {
		row := c.l.data[i*n : i*n+i]
		x[i] = (x[i] - Dot(row, x[:i])) / c.l.data[i*n+i]
	}
	// Backward: Lᵀ x = y.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= c.l.data[k*n+i] * x[k]
		}
		x[i] = s / c.l.data[i*n+i]
	}
	return nil
}

// SolveMatrix solves A X = B column by column.
func (c *Cholesky) SolveMatrix(b *Dense) (*Dense, error) {
	n := c.l.rows
	if b.rows != n {
		return nil, ErrShape
	}
	out := NewDense(n, b.cols)
	col := make([]float64, n)
	for j := 0; j < b.cols; j++ {
		for i := 0; i < n; i++ {
			col[i] = b.data[i*b.cols+j]
		}
		x, err := c.Solve(col)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			out.data[i*out.cols+j] = x[i]
		}
	}
	return out, nil
}

// LogDet returns log det(A) = 2 Σ log L_ii.
func (c *Cholesky) LogDet() float64 {
	n := c.l.rows
	var s float64
	for i := 0; i < n; i++ {
		s += math.Log(c.l.data[i*n+i])
	}
	return 2 * s
}

// SolveSPD solves a x = b for symmetric positive definite a, falling back to
// LU with partial pivoting when the Cholesky factorization fails (e.g. a is
// only semidefinite up to rounding). This is the workhorse solver for the
// hard criterion's D22−W22 system and the soft criterion's V+λL system.
func SolveSPD(a *Dense, b []float64) ([]float64, error) {
	if c, err := NewCholesky(a); err == nil {
		return c.Solve(b)
	}
	return SolveLU(a, b)
}
