package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot length mismatch must panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); math.Abs(got-5) > 1e-15 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Fatalf("Norm2(nil) = %v, want 0", got)
	}
}

func TestNorm2OverflowSafe(t *testing.T) {
	big := 1e300
	got := Norm2([]float64{big, big})
	want := big * math.Sqrt(2)
	if math.IsInf(got, 1) || math.Abs(got-want)/want > 1e-14 {
		t.Fatalf("Norm2 overflow-unsafe: got %v, want %v", got, want)
	}
}

func TestNorm1NormInf(t *testing.T) {
	x := []float64{-1, 2, -3}
	if got := Norm1(x); got != 6 {
		t.Fatalf("Norm1 = %v", got)
	}
	if got := NormInf(x); got != 3 {
		t.Fatalf("NormInf = %v", got)
	}
}

func TestAXPYScale(t *testing.T) {
	y := []float64{1, 1}
	AXPY(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("AXPY = %v", y)
	}
	ScaleVec(0.5, y)
	if y[0] != 3.5 || y[1] != 4.5 {
		t.Fatalf("ScaleVec = %v", y)
	}
}

func TestAddSubVec(t *testing.T) {
	x, y := []float64{1, 2}, []float64{3, 5}
	if s := AddVec(x, y); s[0] != 4 || s[1] != 7 {
		t.Fatalf("AddVec = %v", s)
	}
	if d := SubVec(y, x); d[0] != 2 || d[1] != 3 {
		t.Fatalf("SubVec = %v", d)
	}
}

func TestCloneVecIndependent(t *testing.T) {
	x := []float64{1, 2}
	c := CloneVec(x)
	c[0] = 9
	if x[0] != 1 {
		t.Fatal("CloneVec must copy")
	}
}

func TestOnesConstant(t *testing.T) {
	o := Ones(3)
	for _, v := range o {
		if v != 1 {
			t.Fatalf("Ones = %v", o)
		}
	}
	c := Constant(2, 7)
	if c[0] != 7 || c[1] != 7 {
		t.Fatalf("Constant = %v", c)
	}
}

func TestSumMean(t *testing.T) {
	x := []float64{1, 2, 3}
	if SumVec(x) != 6 {
		t.Fatal("SumVec wrong")
	}
	if MeanVec(x) != 2 {
		t.Fatal("MeanVec wrong")
	}
	if !math.IsNaN(MeanVec(nil)) {
		t.Fatal("MeanVec(nil) must be NaN")
	}
}

func TestMinMaxVec(t *testing.T) {
	x := []float64{3, -1, 2}
	if mn, i := MinVec(x); mn != -1 || i != 1 {
		t.Fatalf("MinVec = %v,%d", mn, i)
	}
	if mx, i := MaxVec(x); mx != 3 || i != 0 {
		t.Fatalf("MaxVec = %v,%d", mx, i)
	}
	if _, i := MinVec(nil); i != -1 {
		t.Fatal("MinVec(nil) index must be -1")
	}
}

func TestDist(t *testing.T) {
	x, y := []float64{0, 0}, []float64{3, 4}
	if Dist2(x, y) != 25 {
		t.Fatal("Dist2 wrong")
	}
	if Dist(x, y) != 5 {
		t.Fatal("Dist wrong")
	}
}

func TestVecEqual(t *testing.T) {
	if !VecEqual([]float64{1, 2}, []float64{1, 2 + 1e-12}, 1e-9) {
		t.Fatal("VecEqual within tol failed")
	}
	if VecEqual([]float64{1}, []float64{1, 2}, 1) {
		t.Fatal("VecEqual with length mismatch must fail")
	}
}

// Property: the Cauchy–Schwarz inequality |<x,y>| <= ||x|| ||y|| holds.
func TestCauchySchwarzProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		half := len(raw) / 2
		x, y := raw[:half], raw[half:2*half]
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true // skip pathological inputs
			}
		}
		lhs := math.Abs(Dot(x, y))
		rhs := Norm2(x) * Norm2(y)
		return lhs <= rhs*(1+1e-10)+1e-300
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the triangle inequality ||x+y|| <= ||x|| + ||y|| holds.
func TestTriangleInequalityProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		half := len(raw) / 2
		x, y := raw[:half], raw[half:2*half]
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		return Norm2(AddVec(x, y)) <= Norm2(x)+Norm2(y)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
