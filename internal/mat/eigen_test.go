package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestEigenSymDiagonal(t *testing.T) {
	a := Diag([]float64{3, 1, 2})
	e, err := NewEigenSym(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqual(e.Values, []float64{1, 2, 3}, 1e-14) {
		t.Fatalf("Values = %v", e.Values)
	}
}

func TestEigenSymKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a, _ := NewDenseData(2, 2, []float64{2, 1, 1, 2})
	e, err := NewEigenSym(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqual(e.Values, []float64{1, 3}, 1e-12) {
		t.Fatalf("Values = %v", e.Values)
	}
}

func TestEigenSymReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 5; trial++ {
		n := 2 + rng.Intn(8)
		a := randSPD(rng, n)
		e, err := NewEigenSym(a, 0)
		if err != nil {
			t.Fatal(err)
		}
		// V diag(λ) Vᵀ must reconstruct A.
		vd, _ := MulDiagRight(e.Vectors, e.Values)
		rec, _ := Mul(vd, e.Vectors.T())
		if !rec.Equal(a, 1e-8*math.Max(1, a.MaxAbs())) {
			t.Fatalf("trial %d: reconstruction failed", trial)
		}
		// Eigenvectors must be orthonormal.
		vtv, _ := Mul(e.Vectors.T(), e.Vectors)
		if !vtv.Equal(Eye(n), 1e-10) {
			t.Fatalf("trial %d: eigenvectors not orthonormal", trial)
		}
		// Eigenvalues ascending.
		for i := 1; i < n; i++ {
			if e.Values[i] < e.Values[i-1] {
				t.Fatalf("trial %d: eigenvalues not sorted", trial)
			}
		}
	}
}

func TestEigenSymTraceAndDetInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := randSPD(rng, 6)
	e, err := NewEigenSym(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := a.Trace()
	if math.Abs(SumVec(e.Values)-tr) > 1e-9*math.Abs(tr) {
		t.Fatal("sum of eigenvalues != trace")
	}
	lu, _ := NewLU(a)
	det := lu.Det()
	prod := 1.0
	for _, v := range e.Values {
		prod *= v
	}
	if math.Abs(prod-det) > 1e-7*math.Abs(det) {
		t.Fatalf("product of eigenvalues %v != det %v", prod, det)
	}
}

func TestEigenSymRejectsAsymmetric(t *testing.T) {
	a, _ := NewDenseData(2, 2, []float64{1, 5, 0, 1})
	if _, err := NewEigenSym(a, 0); err == nil {
		t.Fatal("asymmetric input must error")
	}
	if _, err := NewEigenSym(NewDense(2, 3), 0); !errors.Is(err, ErrSquare) {
		t.Fatalf("want ErrSquare, got %v", err)
	}
}

func TestSpectralRadiusSym(t *testing.T) {
	a, _ := NewDenseData(2, 2, []float64{0, 2, 2, 0}) // eigenvalues ±2
	r, err := SpectralRadiusSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-2) > 1e-12 {
		t.Fatalf("SpectralRadiusSym = %v, want 2", r)
	}
}

func TestPowerIterationDiagonal(t *testing.T) {
	a := Diag([]float64{1, 5, 2})
	lam, vec, err := PowerIteration(a, nil, 1e-13, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lam-5) > 1e-9 {
		t.Fatalf("dominant eigenvalue = %v, want 5", lam)
	}
	// Eigenvector should concentrate on coordinate 1.
	if math.Abs(math.Abs(vec[1])-1) > 1e-6 {
		t.Fatalf("eigenvector = %v", vec)
	}
}

func TestPowerIterationAgreesWithJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := randSPD(rng, 8)
	lam, _, err := PowerIteration(a, nil, 1e-13, 50000)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEigenSym(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := e.Values[len(e.Values)-1] // SPD: largest magnitude = largest
	if math.Abs(lam-want) > 1e-6*want {
		t.Fatalf("power iteration %v vs Jacobi %v", lam, want)
	}
}

func TestPowerIterationErrors(t *testing.T) {
	if _, _, err := PowerIteration(NewDense(2, 3), nil, 0, 0); !errors.Is(err, ErrSquare) {
		t.Fatalf("want ErrSquare, got %v", err)
	}
	if _, _, err := PowerIteration(Eye(2), []float64{1}, 0, 0); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape for bad x0, got %v", err)
	}
	if _, _, err := PowerIteration(Eye(2), []float64{0, 0}, 0, 0); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape for zero x0, got %v", err)
	}
}

func TestPowerIterationZeroMatrix(t *testing.T) {
	lam, _, err := PowerIteration(NewDense(3, 3), nil, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if lam != 0 {
		t.Fatalf("zero matrix dominant eigenvalue = %v, want 0", lam)
	}
}
