package mat

import (
	"math"
	"sort"
)

// EigenSym holds the spectral decomposition A = V diag(λ) Vᵀ of a symmetric
// matrix, with eigenvalues sorted in ascending order and eigenvectors in the
// corresponding columns of V.
type EigenSym struct {
	Values  []float64
	Vectors *Dense
}

// NewEigenSym computes the eigendecomposition of the symmetric matrix a by
// the cyclic Jacobi method. symTol bounds the accepted asymmetry |a_ij−a_ji|;
// pass 0 to require exact symmetry up to 1e-10 of the max element.
func NewEigenSym(a *Dense, symTol float64) (*EigenSym, error) {
	if !a.IsSquare() {
		return nil, ErrSquare
	}
	if symTol <= 0 {
		symTol = 1e-10 * math.Max(1, a.MaxAbs())
	}
	if !a.IsSymmetric(symTol) {
		return nil, ErrShape
	}
	n := a.rows
	w := a.Clone()
	v := Eye(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Sum of off-diagonal magnitudes decides convergence.
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += math.Abs(w.data[i*n+j])
			}
		}
		if off == 0 || off < 1e-14*math.Max(1, w.MaxAbs())*float64(n*n) {
			return sortEigen(w, v), nil
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.data[p*n+q]
				if apq == 0 {
					continue
				}
				app := w.data[p*n+p]
				aqq := w.data[q*n+q]
				// Rotation angle from the standard Jacobi formulas.
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				tau := s / (1 + c)
				// Update W = Jᵀ W J.
				w.data[p*n+p] = app - t*apq
				w.data[q*n+q] = aqq + t*apq
				w.data[p*n+q] = 0
				w.data[q*n+p] = 0
				for i := 0; i < n; i++ {
					if i == p || i == q {
						continue
					}
					aip := w.data[i*n+p]
					aiq := w.data[i*n+q]
					w.data[i*n+p] = aip - s*(aiq+tau*aip)
					w.data[i*n+q] = aiq + s*(aip-tau*aiq)
					w.data[p*n+i] = w.data[i*n+p]
					w.data[q*n+i] = w.data[i*n+q]
				}
				// Accumulate eigenvectors V = V J.
				for i := 0; i < n; i++ {
					vip := v.data[i*n+p]
					viq := v.data[i*n+q]
					v.data[i*n+p] = vip - s*(viq+tau*vip)
					v.data[i*n+q] = viq + s*(vip-tau*viq)
				}
			}
		}
	}
	return nil, ErrNotConverged
}

func sortEigen(w, v *Dense) *EigenSym {
	n := w.rows
	type pair struct {
		val float64
		idx int
	}
	ps := make([]pair, n)
	for i := 0; i < n; i++ {
		ps[i] = pair{val: w.data[i*n+i], idx: i}
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].val < ps[b].val })
	vals := make([]float64, n)
	vecs := NewDense(n, n)
	for k, p := range ps {
		vals[k] = p.val
		for i := 0; i < n; i++ {
			vecs.data[i*n+k] = v.data[i*n+p.idx]
		}
	}
	return &EigenSym{Values: vals, Vectors: vecs}
}

// SpectralRadiusSym returns the largest absolute eigenvalue of a symmetric
// matrix, via the Jacobi decomposition.
func SpectralRadiusSym(a *Dense) (float64, error) {
	eig, err := NewEigenSym(a, 0)
	if err != nil {
		return 0, err
	}
	var r float64
	for _, v := range eig.Values {
		if a := math.Abs(v); a > r {
			r = a
		}
	}
	return r, nil
}

// PowerIteration estimates the dominant eigenvalue (by magnitude) and
// eigenvector of a general square matrix by power iteration starting from
// x0 (pass nil for the all-ones vector). It returns ErrNotConverged when the
// Rayleigh quotient has not stabilized within maxIter iterations.
func PowerIteration(a *Dense, x0 []float64, tol float64, maxIter int) (float64, []float64, error) {
	if !a.IsSquare() {
		return 0, nil, ErrSquare
	}
	n := a.rows
	if n == 0 {
		return 0, nil, ErrShape
	}
	x := x0
	if x == nil {
		x = Ones(n)
	} else {
		if len(x) != n {
			return 0, nil, ErrShape
		}
		x = CloneVec(x)
	}
	if tol <= 0 {
		tol = 1e-12
	}
	if maxIter <= 0 {
		maxIter = 10000
	}
	nrm := Norm2(x)
	if nrm == 0 {
		return 0, nil, ErrShape
	}
	ScaleVec(1/nrm, x)
	y := make([]float64, n)
	var lambda float64
	for it := 0; it < maxIter; it++ {
		if err := MulVecTo(y, a, x); err != nil {
			return 0, nil, err
		}
		newLambda := Dot(x, y)
		ny := Norm2(y)
		if ny == 0 {
			// x is in the kernel; dominant eigenvalue along this start is 0.
			return 0, x, nil
		}
		for i := range x {
			x[i] = y[i] / ny
		}
		if it > 0 && math.Abs(newLambda-lambda) <= tol*math.Max(1, math.Abs(newLambda)) {
			return newLambda, x, nil
		}
		lambda = newLambda
	}
	return lambda, x, ErrNotConverged
}
