package mat

import (
	"math"
	"math/rand"
	"testing"
)

func randDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	m.Apply(func(_, _ int, _ float64) float64 { return rng.NormFloat64() })
	return m
}

func TestAddSubScale(t *testing.T) {
	a, _ := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	b, _ := NewDenseData(2, 2, []float64{5, 6, 7, 8})
	s, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := NewDenseData(2, 2, []float64{6, 8, 10, 12})
	if !s.Equal(want, 0) {
		t.Fatalf("Add = %v", s)
	}
	d, err := Sub(b, a)
	if err != nil {
		t.Fatal(err)
	}
	want4, _ := NewDenseData(2, 2, []float64{4, 4, 4, 4})
	if !d.Equal(want4, 0) {
		t.Fatalf("Sub = %v", d)
	}
	sc := Scale(2, a)
	want2, _ := NewDenseData(2, 2, []float64{2, 4, 6, 8})
	if !sc.Equal(want2, 0) {
		t.Fatalf("Scale = %v", sc)
	}
	as, err := AddScaled(a, -1, a)
	if err != nil {
		t.Fatal(err)
	}
	if as.MaxAbs() != 0 {
		t.Fatalf("AddScaled(a,-1,a) = %v", as)
	}
}

func TestAddShapeError(t *testing.T) {
	if _, err := Add(NewDense(2, 2), NewDense(2, 3)); err == nil {
		t.Fatal("shape mismatch must error")
	}
	if _, err := Sub(NewDense(2, 2), NewDense(3, 2)); err == nil {
		t.Fatal("shape mismatch must error")
	}
	if _, err := AddScaled(NewDense(1, 2), 2, NewDense(2, 1)); err == nil {
		t.Fatal("shape mismatch must error")
	}
}

func TestMulKnown(t *testing.T) {
	a, _ := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b, _ := NewDenseData(3, 2, []float64{7, 8, 9, 10, 11, 12})
	p, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := NewDenseData(2, 2, []float64{58, 64, 139, 154})
	if !p.Equal(want, 1e-12) {
		t.Fatalf("Mul = %v, want %v", p, want)
	}
}

func TestMulShapeError(t *testing.T) {
	if _, err := Mul(NewDense(2, 3), NewDense(2, 3)); err == nil {
		t.Fatal("inner dimension mismatch must error")
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randDense(rng, 4, 4)
	p, err := Mul(a, Eye(4))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(a, 1e-14) {
		t.Fatal("A*I != A")
	}
	p2, err := Mul(Eye(4), a)
	if err != nil {
		t.Fatal(err)
	}
	if !p2.Equal(a, 1e-14) {
		t.Fatal("I*A != A")
	}
}

func TestMulAssociativityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		a := randDense(rng, 3, 4)
		b := randDense(rng, 4, 5)
		c := randDense(rng, 5, 2)
		ab, _ := Mul(a, b)
		abc1, _ := Mul(ab, c)
		bc, _ := Mul(b, c)
		abc2, _ := Mul(a, bc)
		if !abc1.Equal(abc2, 1e-10) {
			t.Fatalf("associativity violated on trial %d", trial)
		}
	}
}

func TestMulVec(t *testing.T) {
	a, _ := NewDenseData(2, 3, []float64{1, 0, -1, 2, 2, 2})
	y, err := MulVec(a, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != -2 || y[1] != 12 {
		t.Fatalf("MulVec = %v", y)
	}
	if _, err := MulVec(a, []float64{1}); err == nil {
		t.Fatal("MulVec shape mismatch must error")
	}
}

func TestMulVecTo(t *testing.T) {
	a, _ := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	dst := make([]float64, 2)
	if err := MulVecTo(dst, a, []float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 3 || dst[1] != 7 {
		t.Fatalf("MulVecTo = %v", dst)
	}
	if err := MulVecTo(dst[:1], a, []float64{1, 1}); err == nil {
		t.Fatal("short dst must error")
	}
}

func TestMulTVecMatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randDense(rng, 4, 3)
	x := []float64{1, -2, 0.5, 3}
	got, err := MulTVec(a, x)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := MulVec(a.T(), x)
	if !VecEqual(got, want, 1e-13) {
		t.Fatalf("MulTVec = %v, want %v", got, want)
	}
	if _, err := MulTVec(a, []float64{1}); err == nil {
		t.Fatal("MulTVec shape mismatch must error")
	}
}

func TestOuterProduct(t *testing.T) {
	op := OuterProduct([]float64{1, 2}, []float64{3, 4, 5})
	want, _ := NewDenseData(2, 3, []float64{3, 4, 5, 6, 8, 10})
	if !op.Equal(want, 0) {
		t.Fatalf("OuterProduct = %v", op)
	}
}

func TestMulDiag(t *testing.T) {
	a, _ := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	l, err := MulDiagLeft([]float64{2, 3}, a)
	if err != nil {
		t.Fatal(err)
	}
	wantL, _ := NewDenseData(2, 2, []float64{2, 4, 9, 12})
	if !l.Equal(wantL, 0) {
		t.Fatalf("MulDiagLeft = %v", l)
	}
	r, err := MulDiagRight(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	wantR, _ := NewDenseData(2, 2, []float64{2, 6, 6, 12})
	if !r.Equal(wantR, 0) {
		t.Fatalf("MulDiagRight = %v", r)
	}
	if _, err := MulDiagLeft([]float64{1}, a); err == nil {
		t.Fatal("MulDiagLeft shape mismatch must error")
	}
	if _, err := MulDiagRight(a, []float64{1}); err == nil {
		t.Fatal("MulDiagRight shape mismatch must error")
	}
}

func TestMulDiagAgreesWithDenseDiag(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randDense(rng, 3, 3)
	d := []float64{1.5, -2, 0.25}
	viaDense, _ := Mul(Diag(d), a)
	viaFast, _ := MulDiagLeft(d, a)
	if !viaDense.Equal(viaFast, 1e-14) {
		t.Fatal("MulDiagLeft disagrees with Diag multiply")
	}
}

func TestTransposeProductProperty(t *testing.T) {
	// (AB)ᵀ = BᵀAᵀ on random matrices.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		a := randDense(rng, 3, 4)
		b := randDense(rng, 4, 2)
		ab, _ := Mul(a, b)
		lhs := ab.T()
		rhs, _ := Mul(b.T(), a.T())
		if !lhs.Equal(rhs, 1e-12) {
			t.Fatalf("(AB)ᵀ != BᵀAᵀ on trial %d", trial)
		}
	}
}

func TestNormSubmultiplicative(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		a := randDense(rng, 4, 4)
		b := randDense(rng, 4, 4)
		ab, _ := Mul(a, b)
		if ab.Norm1() > a.Norm1()*b.Norm1()*(1+1e-12) {
			t.Fatalf("1-norm not submultiplicative on trial %d", trial)
		}
		if ab.NormFrob() > a.NormFrob()*b.NormFrob()*(1+1e-12) {
			t.Fatalf("Frobenius norm not submultiplicative on trial %d", trial)
		}
	}
}

func TestScaleNormHomogeneity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randDense(rng, 3, 5)
	s := Scale(-2.5, a)
	if math.Abs(s.NormFrob()-2.5*a.NormFrob()) > 1e-12 {
		t.Fatal("NormFrob not homogeneous under scaling")
	}
}
