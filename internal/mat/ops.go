package mat

// Matrix-level operations (the BLAS-2/3 layer). Operations allocate their
// results; in-place variants are provided where the reproduction's hot paths
// need them.

// Add returns a + b.
func Add(a, b *Dense) (*Dense, error) {
	if a.rows != b.rows || a.cols != b.cols {
		return nil, ErrShape
	}
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] += v
	}
	return out, nil
}

// Sub returns a - b.
func Sub(a, b *Dense) (*Dense, error) {
	if a.rows != b.rows || a.cols != b.cols {
		return nil, ErrShape
	}
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] -= v
	}
	return out, nil
}

// Scale returns alpha * a.
func Scale(alpha float64, a *Dense) *Dense {
	out := a.Clone()
	for i := range out.data {
		out.data[i] *= alpha
	}
	return out
}

// AddScaled returns a + alpha*b.
func AddScaled(a *Dense, alpha float64, b *Dense) (*Dense, error) {
	if a.rows != b.rows || a.cols != b.cols {
		return nil, ErrShape
	}
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] += alpha * v
	}
	return out, nil
}

// Mul returns the matrix product a*b.
//
// The inner loops run over contiguous rows of b (ikj ordering) so the access
// pattern stays cache-friendly without an explicit transpose.
func Mul(a, b *Dense) (*Dense, error) {
	if a.cols != b.rows {
		return nil, ErrShape
	}
	out := NewDense(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product a*x.
func MulVec(a *Dense, x []float64) ([]float64, error) {
	if a.cols != len(x) {
		return nil, ErrShape
	}
	out := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		out[i] = Dot(a.data[i*a.cols:(i+1)*a.cols], x)
	}
	return out, nil
}

// MulVecTo computes dst = a*x without allocating. dst must have length
// a.Rows() and must not alias x.
func MulVecTo(dst []float64, a *Dense, x []float64) error {
	if a.cols != len(x) || a.rows != len(dst) {
		return ErrShape
	}
	for i := 0; i < a.rows; i++ {
		dst[i] = Dot(a.data[i*a.cols:(i+1)*a.cols], x)
	}
	return nil
}

// MulTVec returns aᵀ*x.
func MulTVec(a *Dense, x []float64) ([]float64, error) {
	if a.rows != len(x) {
		return nil, ErrShape
	}
	out := make([]float64, a.cols)
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		row := a.data[i*a.cols : (i+1)*a.cols]
		for j, v := range row {
			out[j] += xv * v
		}
	}
	return out, nil
}

// OuterProduct returns x yᵀ.
func OuterProduct(x, y []float64) *Dense {
	out := NewDense(len(x), len(y))
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		row := out.data[i*out.cols : (i+1)*out.cols]
		for j, yv := range y {
			row[j] = xv * yv
		}
	}
	return out
}

// MulDiagLeft returns diag(d) * a, scaling row i of a by d[i].
func MulDiagLeft(d []float64, a *Dense) (*Dense, error) {
	if len(d) != a.rows {
		return nil, ErrShape
	}
	out := a.Clone()
	for i, s := range d {
		row := out.data[i*out.cols : (i+1)*out.cols]
		for j := range row {
			row[j] *= s
		}
	}
	return out, nil
}

// MulDiagRight returns a * diag(d), scaling column j of a by d[j].
func MulDiagRight(a *Dense, d []float64) (*Dense, error) {
	if len(d) != a.cols {
		return nil, ErrShape
	}
	out := a.Clone()
	for i := 0; i < out.rows; i++ {
		row := out.data[i*out.cols : (i+1)*out.cols]
		for j := range row {
			row[j] *= d[j]
		}
	}
	return out, nil
}
