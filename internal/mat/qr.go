package mat

import "math"

// QR is a Householder QR factorization A = Q R for an m-by-n matrix with
// m >= n. It supports least-squares solves min ‖A x − b‖₂.
type QR struct {
	qr   *Dense    // Householder vectors below the diagonal, R on and above
	tau  []float64 // scalar factors of the reflectors
	m, n int
}

// NewQR factors a (m-by-n, m >= n) using Householder reflections.
func NewQR(a *Dense) (*QR, error) {
	m, n := a.Dims()
	if m < n {
		return nil, ErrShape
	}
	qr := a.Clone()
	tau := make([]float64, n)
	for k := 0; k < n; k++ {
		// Build the reflector for column k, rows k..m-1.
		colNorm := 0.0
		for i := k; i < m; i++ {
			v := qr.data[i*n+k]
			colNorm += v * v
		}
		colNorm = math.Sqrt(colNorm)
		if colNorm == 0 {
			tau[k] = 0
			continue
		}
		akk := qr.data[k*n+k]
		alpha := -math.Copysign(colNorm, akk)
		// v = x - alpha e1, normalized so v[0] = 1.
		v0 := akk - alpha
		qr.data[k*n+k] = alpha // R diagonal
		// Store v[1:] scaled by 1/v0 below the diagonal.
		for i := k + 1; i < m; i++ {
			qr.data[i*n+k] /= v0
		}
		tau[k] = (alpha - akk) / alpha
		if tau[k] == 0 {
			continue
		}
		// Apply the reflector H = I - tau v vᵀ to the trailing columns.
		for j := k + 1; j < n; j++ {
			s := qr.data[k*n+j]
			for i := k + 1; i < m; i++ {
				s += qr.data[i*n+k] * qr.data[i*n+j]
			}
			s *= tau[k]
			qr.data[k*n+j] -= s
			for i := k + 1; i < m; i++ {
				qr.data[i*n+j] -= s * qr.data[i*n+k]
			}
		}
	}
	return &QR{qr: qr, tau: tau, m: m, n: n}, nil
}

// R returns the n-by-n upper triangular factor.
func (q *QR) R() *Dense {
	r := NewDense(q.n, q.n)
	for i := 0; i < q.n; i++ {
		for j := i; j < q.n; j++ {
			r.data[i*q.n+j] = q.qr.data[i*q.n+j]
		}
	}
	return r
}

// applyQT overwrites b (length m) with Qᵀ b.
func (q *QR) applyQT(b []float64) {
	for k := 0; k < q.n; k++ {
		if q.tau[k] == 0 {
			continue
		}
		s := b[k]
		for i := k + 1; i < q.m; i++ {
			s += q.qr.data[i*q.n+k] * b[i]
		}
		s *= q.tau[k]
		b[k] -= s
		for i := k + 1; i < q.m; i++ {
			b[i] -= s * q.qr.data[i*q.n+k]
		}
	}
}

// Solve returns the least-squares solution x of min ‖A x − b‖₂.
// ErrSingular is returned when R has a zero diagonal element (rank deficient).
func (q *QR) Solve(b []float64) ([]float64, error) {
	if len(b) != q.m {
		return nil, ErrShape
	}
	work := CloneVec(b)
	q.applyQT(work)
	// A diagonal of R that is negligibly small relative to the largest one
	// signals (numerical) rank deficiency.
	var maxDiag float64
	for i := 0; i < q.n; i++ {
		if a := math.Abs(q.qr.data[i*q.n+i]); a > maxDiag {
			maxDiag = a
		}
	}
	tol := 1e-12 * maxDiag * float64(q.n)
	x := make([]float64, q.n)
	for i := q.n - 1; i >= 0; i-- {
		s := work[i]
		for j := i + 1; j < q.n; j++ {
			s -= q.qr.data[i*q.n+j] * x[j]
		}
		d := q.qr.data[i*q.n+i]
		if math.Abs(d) <= tol {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// LeastSquares solves min ‖A x − b‖₂ via QR. Convenience wrapper.
func LeastSquares(a *Dense, b []float64) ([]float64, error) {
	f, err := NewQR(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}
