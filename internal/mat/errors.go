package mat

import "errors"

var (
	// ErrShape is returned when operand dimensions are incompatible.
	ErrShape = errors.New("mat: dimension mismatch")
	// ErrSingular is returned when a matrix is exactly or numerically singular.
	ErrSingular = errors.New("mat: matrix is singular")
	// ErrNotPositiveDefinite is returned by Cholesky when the matrix is not
	// symmetric positive definite.
	ErrNotPositiveDefinite = errors.New("mat: matrix is not positive definite")
	// ErrNotConverged is returned by iterative routines that exhaust their
	// iteration budget before reaching the requested tolerance.
	ErrNotConverged = errors.New("mat: iteration did not converge")
	// ErrIndex is returned on out-of-range element access.
	ErrIndex = errors.New("mat: index out of range")
	// ErrSquare is returned when a square matrix is required.
	ErrSquare = errors.New("mat: matrix must be square")
)
