package mat

import (
	"math"
	"strings"
	"testing"
)

func TestNewDenseZeroed(t *testing.T) {
	m := NewDense(3, 4)
	if r, c := m.Dims(); r != 3 || c != 4 {
		t.Fatalf("Dims() = (%d,%d), want (3,4)", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("At(%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewDenseDataShapeError(t *testing.T) {
	if _, err := NewDenseData(2, 2, []float64{1, 2, 3}); err == nil {
		t.Fatal("want error for wrong data length")
	}
}

func TestNewDenseDataCopies(t *testing.T) {
	src := []float64{1, 2, 3, 4}
	m, err := NewDenseData(2, 2, src)
	if err != nil {
		t.Fatal(err)
	}
	src[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("NewDenseData must copy its input")
	}
}

func TestSetAt(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range must panic")
		}
	}()
	NewDense(2, 2).At(2, 0)
}

func TestEye(t *testing.T) {
	id := Eye(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("Eye(3)[%d,%d] = %v, want %v", i, j, id.At(i, j), want)
			}
		}
	}
}

func TestDiag(t *testing.T) {
	d := Diag([]float64{1, 2, 3})
	if d.At(1, 1) != 2 || d.At(0, 1) != 0 {
		t.Fatalf("unexpected Diag content: %v", d)
	}
}

func TestRowColCopies(t *testing.T) {
	m, _ := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	r := m.Row(0)
	r[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("Row must return a copy")
	}
	c := m.Col(1)
	if c[0] != 2 || c[1] != 4 {
		t.Fatalf("Col(1) = %v, want [2 4]", c)
	}
	c[0] = 99
	if m.At(0, 1) != 2 {
		t.Fatal("Col must return a copy")
	}
}

func TestSetRow(t *testing.T) {
	m := NewDense(2, 2)
	m.SetRow(1, []float64{5, 6})
	if m.At(1, 0) != 5 || m.At(1, 1) != 6 {
		t.Fatal("SetRow did not write the row")
	}
}

func TestRawRowAliases(t *testing.T) {
	m := NewDense(2, 2)
	m.RawRow(0)[1] = 42
	if m.At(0, 1) != 42 {
		t.Fatal("RawRow must alias storage")
	}
}

func TestCloneIndependent(t *testing.T) {
	m, _ := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	n := m.Clone()
	n.Set(0, 0, 100)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestCopyFrom(t *testing.T) {
	m := NewDense(2, 2)
	src, _ := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	if err := m.CopyFrom(src); err != nil {
		t.Fatal(err)
	}
	if !m.Equal(src, 0) {
		t.Fatal("CopyFrom mismatch")
	}
	if err := m.CopyFrom(NewDense(3, 2)); err == nil {
		t.Fatal("CopyFrom shape mismatch must error")
	}
}

func TestTranspose(t *testing.T) {
	m, _ := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.T()
	if r, c := tr.Dims(); r != 3 || c != 2 {
		t.Fatalf("T dims = (%d,%d)", r, c)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestSubmatrix(t *testing.T) {
	m, _ := NewDenseData(3, 3, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	s, err := m.Submatrix(1, 3, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := NewDenseData(2, 2, []float64{4, 5, 7, 8})
	if !s.Equal(want, 0) {
		t.Fatalf("Submatrix = %v, want %v", s, want)
	}
	if _, err := m.Submatrix(0, 4, 0, 1); err == nil {
		t.Fatal("out-of-range Submatrix must error")
	}
}

func TestFillApply(t *testing.T) {
	m := NewDense(2, 2)
	m.Fill(3)
	m.Apply(func(i, j int, v float64) float64 { return v + float64(i+j) })
	if m.At(1, 1) != 5 || m.At(0, 0) != 3 {
		t.Fatalf("Apply result wrong: %v", m)
	}
}

func TestDiagVecTrace(t *testing.T) {
	m, _ := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	d := m.DiagVec()
	if d[0] != 1 || d[1] != 4 {
		t.Fatalf("DiagVec = %v", d)
	}
	tr, err := m.Trace()
	if err != nil || tr != 5 {
		t.Fatalf("Trace = %v, %v", tr, err)
	}
	if _, err := NewDense(2, 3).Trace(); err == nil {
		t.Fatal("Trace of non-square must error")
	}
}

func TestNorms(t *testing.T) {
	m, _ := NewDenseData(2, 2, []float64{1, -2, -3, 4})
	if got := m.Norm1(); got != 6 { // max column abs sum = |−2|+4
		t.Fatalf("Norm1 = %v, want 6", got)
	}
	if got := m.NormInf(); got != 7 { // row 1: 3+4
		t.Fatalf("NormInf = %v, want 7", got)
	}
	if got := m.NormFrob(); math.Abs(got-math.Sqrt(30)) > 1e-15 {
		t.Fatalf("NormFrob = %v, want sqrt(30)", got)
	}
	if got := m.MaxAbs(); got != 4 {
		t.Fatalf("MaxAbs = %v, want 4", got)
	}
}

func TestIsSymmetric(t *testing.T) {
	s, _ := NewDenseData(2, 2, []float64{1, 2, 2, 1})
	if !s.IsSymmetric(0) {
		t.Fatal("symmetric matrix reported asymmetric")
	}
	a, _ := NewDenseData(2, 2, []float64{1, 2, 2.5, 1})
	if a.IsSymmetric(0.1) {
		t.Fatal("asymmetric matrix reported symmetric")
	}
	if NewDense(2, 3).IsSymmetric(0) {
		t.Fatal("non-square cannot be symmetric")
	}
}

func TestEqual(t *testing.T) {
	a, _ := NewDenseData(1, 2, []float64{1, 2})
	b, _ := NewDenseData(1, 2, []float64{1, 2.0000001})
	if !a.Equal(b, 1e-5) {
		t.Fatal("Equal within tolerance failed")
	}
	if a.Equal(b, 1e-9) {
		t.Fatal("Equal beyond tolerance must fail")
	}
	if a.Equal(NewDense(2, 1), 1) {
		t.Fatal("Equal with different shapes must fail")
	}
}

func TestStringTruncates(t *testing.T) {
	m := NewDense(10, 10)
	s := m.String()
	if !strings.Contains(s, "Dense(10x10)") || !strings.Contains(s, "...") {
		t.Fatalf("String() = %q", s)
	}
}
