package mat

import "math"

// Vector helpers operate on plain []float64 slices. They are the BLAS-1
// layer of the package. Length mismatches panic, mirroring slice indexing.

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(ErrShape)
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x, guarding against overflow by
// scaling with the largest magnitude element.
func Norm2(x []float64) float64 {
	var scale, ssq float64
	ssq = 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Norm1 returns the sum of absolute values of x.
func Norm1(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// NormInf returns max_i |x_i|; zero for an empty slice.
func NormInf(x []float64) float64 {
	var mx float64
	for _, v := range x {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// AXPY computes y += alpha*x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(ErrShape)
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// ScaleVec multiplies x by alpha in place.
func ScaleVec(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// AddVec returns x + y as a new slice.
func AddVec(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic(ErrShape)
	}
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = v + y[i]
	}
	return out
}

// SubVec returns x - y as a new slice.
func SubVec(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic(ErrShape)
	}
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = v - y[i]
	}
	return out
}

// CloneVec returns a copy of x.
func CloneVec(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// Ones returns a length-n slice of ones.
func Ones(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

// Constant returns a length-n slice filled with v.
func Constant(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// SumVec returns the sum of the elements of x.
func SumVec(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// MeanVec returns the arithmetic mean of x; NaN for an empty slice.
func MeanVec(x []float64) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	return SumVec(x) / float64(len(x))
}

// MinVec returns the minimum element and its index; (+Inf, -1) when empty.
func MinVec(x []float64) (float64, int) {
	mn, idx := math.Inf(1), -1
	for i, v := range x {
		if v < mn {
			mn, idx = v, i
		}
	}
	return mn, idx
}

// MaxVec returns the maximum element and its index; (-Inf, -1) when empty.
func MaxVec(x []float64) (float64, int) {
	mx, idx := math.Inf(-1), -1
	for i, v := range x {
		if v > mx {
			mx, idx = v, i
		}
	}
	return mx, idx
}

// Dist2 returns the squared Euclidean distance between x and y.
func Dist2(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(ErrShape)
	}
	var s float64
	for i, v := range x {
		d := v - y[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between x and y.
func Dist(x, y []float64) float64 { return math.Sqrt(Dist2(x, y)) }

// VecEqual reports whether x and y have the same length and agree elementwise
// within tol.
func VecEqual(x, y []float64, tol float64) bool {
	if len(x) != len(y) {
		return false
	}
	for i, v := range x {
		if math.Abs(v-y[i]) > tol {
			return false
		}
	}
	return true
}
